/**
 * @file
 * Example: plugging your own workload into the simulator.
 *
 * Scenario: you have a proprietary key-value store whose access pattern
 * you want to evaluate against TEMPO before asking your CPU vendor for
 * the feature. Implement the Workload interface — here, a hash-table
 * lookup service with a hot key distribution and value chains — and
 * hand it to TempoSystem.
 *
 * Demonstrates: the Workload extension point, the IndirectStream helper
 * for IMP interoperability, and direct use of TempoSystem (rather than
 * the runWorkload convenience wrapper).
 */

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>

#include "core/tempo_system.hh"
#include "workloads/workload.hh"

namespace {

using namespace tempo;

/** A synthetic key-value store: bucket-array probe, then a short value
 * chain walk; 10% of requests are writes. */
class KvStoreWorkload : public RegionWorkload
{
  public:
    explicit KvStoreWorkload(std::uint64_t seed)
        : RegionWorkload("kvstore", 0x200000000000ull, 12ull << 30,
                         seed)
    {
    }

    unsigned mlpHint() const override { return 4; }

    MemRef
    next() override
    {
        MemRef ref;
        if (chainRemaining_ > 0) {
            // Walk the value chain: each hop lands anywhere in the
            // value heap (the second half of the region).
            --chainRemaining_;
            ref.vaddr = vaBase_ + (footprint_ / 2)
                + rng_.below(footprint_ / 2);
            ref.isWrite = isWrite_;
            ref.stream = 2;
            return ref;
        }
        // New request: hash a key to a bucket. 30% of requests target
        // the hot 1% of buckets (a realistic Zipf-ish skew).
        const Addr buckets = (footprint_ / 2) / kBucketBytes;
        const Addr bucket =
            rng_.skewedBelow(buckets, buckets / 100, 0.30);
        ref.vaddr = vaBase_ + bucket * kBucketBytes;
        isWrite_ = rng_.chance(0.1);
        chainRemaining_ = 1 + rng_.below(3);
        ref.stream = 1;
        return ref;
    }

  private:
    static constexpr Addr kBucketBytes = 64;
    unsigned chainRemaining_ = 0;
    bool isWrite_ = false;
};

} // namespace

int
main(int argc, char **argv)
{
    const std::uint64_t refs =
        argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 200000;

    SystemConfig base_cfg = SystemConfig::skylakeScaled();
    TempoSystem baseline(base_cfg,
                         std::make_unique<KvStoreWorkload>(42));
    const RunResult base = baseline.run(refs);

    SystemConfig tempo_cfg = SystemConfig::skylakeScaled();
    tempo_cfg.withTempo(true);
    TempoSystem enhanced(tempo_cfg,
                         std::make_unique<KvStoreWorkload>(42));
    const RunResult with_tempo = enhanced.run(refs);

    std::printf("kvstore (%llu requests' worth of references)\n",
                static_cast<unsigned long long>(refs));
    std::printf("  TLB miss rate            : %5.1f%%\n",
                100.0 * base.report.get("tlb.miss_rate"));
    std::printf("  DRAM refs that are PTWs  : %5.1f%%\n",
                100.0 * base.fracDramPtw());
    std::printf("  TEMPO performance gain   : %+5.1f%%\n",
                100.0 * with_tempo.speedupOver(base));
    std::printf("  TEMPO energy saving      : %+5.1f%%\n",
                100.0 * with_tempo.energySavingOver(base));
    std::printf("  replays served from LLC  : %llu of %llu eligible\n",
                static_cast<unsigned long long>(
                    with_tempo.core.replayLlcHits),
                static_cast<unsigned long long>(
                    with_tempo.core.replayAfterDramWalk));

    // Dump the full statistics report for deeper digging.
    if (argc > 2 && std::string(argv[2]) == "--full") {
        std::printf("\nfull baseline report:\n");
        base.report.printText(std::cout);
    }
    return 0;
}
