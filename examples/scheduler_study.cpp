/**
 * @file
 * Example: memory-scheduler bake-off for a multiprogrammed consolidation
 * scenario.
 *
 * Scenario: eight tenants — two big-data analytics jobs, two
 * medium-intensity batch jobs, four latency-tolerant small jobs — share
 * one memory controller. Compare FR-FCFS vs BLISS, with and without
 * TEMPO, on weighted speedup and worst-tenant slowdown.
 *
 * Demonstrates: MultiSystem, fairness metrics, scheduler selection, and
 * per-app statistics.
 */

#include <cstdio>
#include <cstdlib>

#include "core/multi_system.hh"

int
main(int argc, char **argv)
{
    using namespace tempo;

    const std::uint64_t refs_per_app =
        argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 60000;

    const std::vector<std::string> tenants = {
        "xsbench",       "graph500",     "lbm.medium",
        "milc.medium",   "astar.small",  "gcc.small",
        "hmmer.small",   "swaptions.small"};

    std::printf("8 tenants sharing one memory system, %llu refs each\n\n",
                static_cast<unsigned long long>(refs_per_app));

    struct Variant {
        const char *label;
        SchedKind sched;
        bool tempo;
    };
    const Variant variants[] = {
        {"FR-FCFS", SchedKind::FrFcfs, false},
        {"FR-FCFS + TEMPO", SchedKind::FrFcfs, true},
        {"BLISS", SchedKind::Bliss, false},
        {"BLISS + TEMPO", SchedKind::Bliss, true},
    };

    // Alone runtimes under the FR-FCFS machine are the common
    // denominator for all fairness metrics.
    SystemConfig alone_cfg = SystemConfig::skylakeScaled();
    const std::vector<Cycle> alone =
        aloneRuntimes(alone_cfg, tenants, refs_per_app);

    std::printf("%-18s %18s %14s %16s\n", "configuration",
                "weighted speedup", "max slowdown", "slowest tenant");
    for (const Variant &variant : variants) {
        SystemConfig cfg = SystemConfig::skylakeScaled();
        cfg.withSched(variant.sched).withTempo(variant.tempo);
        MultiSystem system(cfg, makeMix(tenants, cfg.seed));
        const MultiResult result = system.run(refs_per_app);

        // Identify the worst-slowed tenant by name.
        std::size_t worst = 0;
        double worst_slowdown = 0;
        for (std::size_t i = 0; i < tenants.size(); ++i) {
            const double slowdown =
                static_cast<double>(result.appFinish[i])
                / static_cast<double>(alone[i]);
            if (slowdown > worst_slowdown) {
                worst_slowdown = slowdown;
                worst = i;
            }
        }
        std::printf("%-18s %18.3f %14.2fx %16s\n", variant.label,
                    result.weightedSpeedup(alone),
                    result.maxSlowdown(alone), tenants[worst].c_str());
    }

    std::printf("\nHigher weighted speedup = better throughput; lower "
                "max slowdown = better fairness.\n");
    return 0;
}
