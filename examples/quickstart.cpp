/**
 * @file
 * Quickstart: run one big-data workload with and without TEMPO on the
 * default scaled-Skylake machine and print the headline numbers —
 * the 30-second tour of the library's public API.
 *
 * Usage: quickstart [workload] [refs]
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/tempo_system.hh"
#include "workloads/workload.hh"

int
main(int argc, char **argv)
{
    using namespace tempo;

    const std::string name = argc > 1 ? argv[1] : "xsbench";
    const std::uint64_t refs =
        argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 200000;

    // 1. Configure a machine. skylakeScaled() is the paper's baseline:
    //    FR-FCFS scheduling, adaptive row policy, one 8KB row buffer.
    SystemConfig base = SystemConfig::skylakeScaled();

    // 2. Run the baseline.
    std::printf("running %s for %llu refs (baseline)...\n", name.c_str(),
                static_cast<unsigned long long>(refs));
    const RunResult baseline = runWorkload(base, name, refs);

    // 3. Flip on TEMPO — one switch on the memory controller — and run
    //    the identical trace again.
    SystemConfig tempo_cfg = base;
    tempo_cfg.withTempo(true);
    std::printf("running %s for %llu refs (TEMPO)...\n", name.c_str(),
                static_cast<unsigned long long>(refs));
    const RunResult with_tempo = runWorkload(tempo_cfg, name, refs);

    // 4. Compare.
    std::printf("\n=== %s ===\n", name.c_str());
    std::printf("baseline runtime        : %llu cycles\n",
                static_cast<unsigned long long>(baseline.runtime));
    std::printf("TEMPO runtime           : %llu cycles\n",
                static_cast<unsigned long long>(with_tempo.runtime));
    std::printf("performance improvement : %.1f%%\n",
                100.0 * with_tempo.speedupOver(baseline));
    std::printf("energy saving           : %.1f%%\n",
                100.0 * with_tempo.energySavingOver(baseline));
    std::printf("superpage coverage      : %.0f%%\n",
                100.0 * baseline.superpageCoverage);
    std::printf("\nbaseline DRAM reference mix (paper Fig. 4):\n");
    std::printf("  page-table walks : %.1f%%\n",
                100.0 * baseline.fracDramPtw());
    std::printf("  replays          : %.1f%%\n",
                100.0 * baseline.fracDramReplay());
    std::printf("  other            : %.1f%%\n",
                100.0 * baseline.fracDramOther());
    std::printf("\nbaseline runtime attribution (paper Fig. 1):\n");
    std::printf("  DRAM-PTW-Access    : %.1f%%\n",
                100.0 * baseline.fracRuntimePtwDram());
    std::printf("  DRAM-Replay-Access : %.1f%%\n",
                100.0 * baseline.fracRuntimeReplayDram());
    std::printf("  DRAM-Other         : %.1f%%\n",
                100.0 * baseline.fracRuntimeOtherDram());

    const auto &tempo_core = with_tempo.core;
    std::printf("\nTEMPO replay service points (paper Fig. 11):\n");
    std::printf("  LLC hits        : %llu\n",
                static_cast<unsigned long long>(
                    tempo_core.replayLlcHits));
    std::printf("  row-buffer hits : %llu\n",
                static_cast<unsigned long long>(
                    tempo_core.replayRowHits));
    std::printf("  DRAM array      : %llu\n",
                static_cast<unsigned long long>(tempo_core.replayArray));
    std::printf("\nbaseline TLB miss rate  : %.2f%%\n",
                100.0 * baseline.report.get("tlb.miss_rate"));
    std::printf("walks w/ leaf PTE in DRAM: %llu of %llu\n",
                static_cast<unsigned long long>(
                    baseline.core.walksWithLeafDram),
                static_cast<unsigned long long>(baseline.core.walks));
    return 0;
}
