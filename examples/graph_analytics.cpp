/**
 * @file
 * Example: a graph-analytics capacity-planning study.
 *
 * Scenario: you run BFS-style graph workloads (graph500) on big-memory
 * servers and want to know where the time goes — and whether a
 * TEMPO-equipped memory controller would pay for itself — across page
 * table configurations your fleet actually uses (THP on/off, explicit
 * hugepages).
 *
 * Demonstrates: per-component statistics, the runtime-attribution API,
 * and sweeping OS-level page policies from application code.
 */

#include <cstdio>
#include <cstdlib>

#include "core/tempo_system.hh"
#include "workloads/workload.hh"

namespace {

void
study(const char *label, tempo::PagePolicy policy, double frag,
      std::uint64_t refs)
{
    using namespace tempo;

    SystemConfig base_cfg = SystemConfig::skylakeScaled();
    base_cfg.withPagePolicy(policy, frag);
    SystemConfig tempo_cfg = base_cfg;
    tempo_cfg.withTempo(true);

    const RunResult base = runWorkload(base_cfg, "graph500", refs);
    const RunResult with_tempo =
        runWorkload(tempo_cfg, "graph500", refs);

    std::printf("%-22s | cov %5.1f%% | TLB miss %5.1f%% | "
                "PTW-DRAM %4.1f%% replay-DRAM %4.1f%% | "
                "TEMPO: perf %+5.1f%% energy %+5.1f%%\n",
                label, 100.0 * base.superpageCoverage,
                100.0 * base.report.get("tlb.miss_rate"),
                100.0 * base.fracRuntimePtwDram(),
                100.0 * base.fracRuntimeReplayDram(),
                100.0 * with_tempo.speedupOver(base),
                100.0 * with_tempo.energySavingOver(base));
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace tempo;

    const std::uint64_t refs =
        argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 200000;

    std::printf("graph500 BFS on a scaled big-memory server "
                "(%llu refs per point)\n\n",
                static_cast<unsigned long long>(refs));

    study("THP (default fleet)", PagePolicy::Thp, 0.0, refs);
    study("THP, fragmented 50%", PagePolicy::Thp, 0.5, refs);
    study("4KB only (THP off)", PagePolicy::Base4K, 0.0, refs);
    study("hugetlbfs 2MB", PagePolicy::Hugetlbfs2M, 0.0, refs);

    std::printf("\nReading the row: 'PTW-DRAM' and 'replay-DRAM' are "
                "the runtime shares the paper's Figure 1 plots; TEMPO "
                "attacks the replay share.\n");
    return 0;
}
