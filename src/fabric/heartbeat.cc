#include "fabric/heartbeat.hh"

#include <algorithm>
#include <chrono>
#include <filesystem>

#include <unistd.h>

#include "fabric/claim.hh"

namespace tempo::fabric {

namespace fs = std::filesystem;

Heartbeat::Heartbeat(std::string dir, std::string workerId,
                     double periodSec)
    : dir_(std::move(dir)), worker_(std::move(workerId)),
      periodSec_(periodSec > 0 ? periodSec : 1.0)
{
    writeFileAtomic(path(dir_, worker_),
                    std::to_string(::getpid()) + "\n");
    thread_ = std::thread([this] { beatLoop(); });
}

Heartbeat::~Heartbeat()
{
    stop();
}

void
Heartbeat::stop()
{
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    cv_.notify_all();
    if (thread_.joinable())
        thread_.join();
}

void
Heartbeat::beatLoop()
{
    std::unique_lock<std::mutex> lock(mutex_);
    while (!stop_) {
        cv_.wait_for(lock, std::chrono::duration<double>(periodSec_),
                     [this] { return stop_; });
        if (stop_)
            return;
        lock.unlock();
        try {
            writeFileAtomic(path(dir_, worker_),
                            std::to_string(::getpid()) + "\n");
        } catch (const std::exception &) {
            // A transiently unwritable directory must not kill the
            // worker; the next beat retries, and persistent failure
            // just makes this worker look dead (safe direction).
        }
        lock.lock();
    }
}

std::string
Heartbeat::path(const std::string &dir, const std::string &workerId)
{
    return dir + "/hb_" + workerId;
}

double
Heartbeat::ageSec(const std::string &dir, const std::string &workerId)
{
    return fileAgeSec(path(dir, workerId));
}

std::vector<std::string>
Heartbeat::listWorkers(const std::string &dir)
{
    std::vector<std::string> workers;
    std::error_code ec;
    for (const auto &entry : fs::directory_iterator(dir, ec)) {
        const std::string name = entry.path().filename().string();
        if (name.rfind("hb_", 0) == 0)
            workers.push_back(name.substr(3));
    }
    std::sort(workers.begin(), workers.end());
    return workers;
}

} // namespace tempo::fabric
