/**
 * @file
 * A deliberately minimal embedded HTTP server for `tempo_sweep
 * --serve`: GET-only, one request per connection, serving exactly two
 * resources — the static HTML dashboard at "/" and the live snapshot
 * JSON at "/snapshot.json" (rebuilt by the provider callback on every
 * request, never cached). Plain POSIX sockets; no framework, no TLS,
 * no keep-alive. Meant for localhost or a trusted lab network.
 */

#ifndef TEMPO_FABRIC_HTTP_HH
#define TEMPO_FABRIC_HTTP_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>

namespace tempo::fabric {

class HttpServer
{
  public:
    /** Builds the snapshot JSON body; called per request from the
     * server thread, so it must be thread-safe. A throw becomes a
     * 500 response. */
    using Provider = std::function<std::string()>;

    /**
     * Bind @p host:@p port (port 0 picks an ephemeral port — see
     * port()) and start serving on a background thread.
     * @throws std::runtime_error when the socket cannot be bound.
     */
    HttpServer(const std::string &host, std::uint16_t port,
               Provider provider);
    ~HttpServer();

    HttpServer(const HttpServer &) = delete;
    HttpServer &operator=(const HttpServer &) = delete;

    /** Stop accepting and join the server thread (idempotent). */
    void stop();

    /** The actually-bound port (resolves port 0). */
    std::uint16_t port() const { return port_; }
    const std::string &host() const { return host_; }

  private:
    void serveLoop();
    void handleConnection(int fd);

    std::string host_;
    std::uint16_t port_ = 0;
    Provider provider_;
    int listenFd_ = -1;
    std::atomic<bool> stop_{false};
    std::thread thread_;
};

/** The self-contained ops dashboard page ("/"): progress bar, stat
 * tiles, worker table, failure feed, throughput sparkline; polls
 * snapshot.json every 2s. No external assets. */
std::string dashboardHtml();

} // namespace tempo::fabric

#endif // TEMPO_FABRIC_HTTP_HH
