#include "fabric/claim.hh"

#include <cerrno>
#include <charconv>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <stdexcept>
#include <system_error>

#include <unistd.h>

namespace tempo::fabric {

namespace fs = std::filesystem;

std::string
digestHex(std::uint64_t digest)
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(digest));
    return buf;
}

std::uint64_t
parseDigestHex(const std::string &text)
{
    std::uint64_t out = 0;
    const auto [p, ec] =
        std::from_chars(text.data(), text.data() + text.size(), out, 16);
    if (ec != std::errc() || p != text.data() + text.size() ||
        text.empty())
        throw std::runtime_error("fabric: bad digest " + text);
    return out;
}

void
writeFileAtomic(const std::string &path, const std::string &content)
{
    const std::string tmp =
        path + ".tmp." + std::to_string(::getpid());
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        out.write(content.data(),
                  static_cast<std::streamsize>(content.size()));
        out.flush();
        if (!out) {
            std::error_code ignore;
            fs::remove(tmp, ignore);
            throw std::runtime_error("cannot write " + tmp);
        }
    }
    std::error_code ec;
    fs::rename(tmp, path, ec);
    if (ec) {
        std::error_code ignore;
        fs::remove(tmp, ignore);
        throw std::runtime_error("cannot publish " + path + ": " +
                                 ec.message());
    }
}

double
fileAgeSec(const std::string &path)
{
    std::error_code ec;
    const fs::file_time_type written = fs::last_write_time(path, ec);
    if (ec)
        return std::numeric_limits<double>::infinity();
    const auto age = fs::file_time_type::clock::now() - written;
    return std::chrono::duration<double>(age).count();
}

ClaimDir::ClaimDir(std::string dir, std::string workerId)
    : dir_(std::move(dir)), worker_(std::move(workerId))
{
}

std::string
ClaimDir::path(std::uint64_t digest) const
{
    return dir_ + "/claim_" + digestHex(digest);
}

bool
ClaimDir::tryClaim(std::uint64_t digest) const
{
    // Publish by hard link: link(2) is the one primitive here that is
    // both atomic and exclusive on every POSIX filesystem (rename
    // clobbers, O_EXCL+close+rename is two steps).
    const std::string tmp =
        dir_ + "/tmp_claim_" + digestHex(digest) + "_" + worker_;
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        out << worker_ << '\n';
        out.flush();
        if (!out) {
            std::error_code ignore;
            fs::remove(tmp, ignore);
            throw std::runtime_error("cannot write claim temp " + tmp);
        }
    }
    std::error_code ec;
    fs::create_hard_link(tmp, path(digest), ec);
    std::error_code ignore;
    fs::remove(tmp, ignore);
    if (!ec)
        return true;
    if (ec == std::errc::file_exists)
        return false;
    throw std::runtime_error("cannot claim " + path(digest) + ": " +
                             ec.message());
}

std::string
ClaimDir::owner(std::uint64_t digest) const
{
    std::ifstream in(path(digest), std::ios::binary);
    if (!in)
        return "";
    std::string name;
    std::getline(in, name);
    return name;
}

double
ClaimDir::ageSec(std::uint64_t digest) const
{
    return fileAgeSec(path(digest));
}

void
ClaimDir::remove(std::uint64_t digest) const
{
    std::error_code ignore;
    fs::remove(path(digest), ignore);
}

} // namespace tempo::fabric
