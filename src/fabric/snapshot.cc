#include "fabric/snapshot.hh"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <numeric>
#include <set>
#include <sstream>

#include "fabric/claim.hh"
#include "fabric/coordinator.hh"
#include "fabric/heartbeat.hh"
#include "obs/obs.hh"

namespace tempo::fabric {

namespace fs = std::filesystem;
using stats::Json;
using stats::JsonValue;

namespace {

/** Cap on the failures array in snapshots (the dashboard feed; the
 * bench JSON still reports every failure). */
constexpr std::size_t kMaxSnapshotFailures = 50;

void
rollupTimeseries(
    std::map<std::string, std::pair<std::uint64_t, double>> &rollup,
    const RunResult &result)
{
    if (!result.obs)
        return;
    for (const auto &[column, values] : result.obs->timeseries.columns) {
        if (column == "cycle") // the x axis, not a metric
            continue;
        auto &[count, sum] = rollup[column];
        count += values.size();
        sum = std::accumulate(values.begin(), values.end(), sum);
    }
}

Json
timeseriesJson(
    const std::map<std::string, std::pair<std::uint64_t, double>> &rollup)
{
    Json out = Json::object();
    for (const auto &[column, stats] : rollup) {
        const auto &[count, sum] = stats;
        Json cell = Json::object();
        cell.set("count", count);
        cell.set("mean", count ? sum / static_cast<double>(count) : 0.0);
        out.set(column, std::move(cell));
    }
    return out;
}

Json
failureJson(const RunStatus &status)
{
    Json f = Json::object();
    f.set("digest", digestHex(status.digest));
    f.set("status", status.codeName());
    f.set("error", status.error);
    f.set("attempts", std::uint64_t(status.attempts));
    return f;
}

double
rate(double numerator, double seconds)
{
    return seconds > 0 ? numerator / seconds : 0.0;
}

} // namespace

void
WorkerTally::add(const RunResult &result, double pointWallSec)
{
    switch (result.status.code) {
      case RunStatus::Code::Ok: ++ok; break;
      case RunStatus::Code::Failed: ++failed; break;
      case RunStatus::Code::TimedOut: ++timedOut; break;
    }
    retries += result.status.attempts > 0 ? result.status.attempts - 1 : 0;
    ++pointsRun;
    refsDone += result.core.refs;
    wallSec += pointWallSec;
    lastWallSec = pointWallSec;
    rollupTimeseries(timeseries, result);
}

Json
WorkerTally::toJson() const
{
    Json doc = Json::object();
    doc.set("schema", "tempo-fabric-worker-1");
    doc.set("worker", worker);
    doc.set("sweep", sweep);
    doc.set("ok", ok);
    doc.set("failed", failed);
    doc.set("timed_out", timedOut);
    doc.set("retries", retries);
    doc.set("points_run", pointsRun);
    doc.set("refs_done", refsDone);
    doc.set("wall_sec", wallSec);
    doc.set("last_wall_sec", lastWallSec);
    doc.set("events_per_sec",
            rate(static_cast<double>(refsDone), wallSec));
    Json inflight = Json::array();
    for (std::uint64_t digest : inFlight)
        inflight.push(digestHex(digest));
    doc.set("in_flight", std::move(inflight));
    doc.set("timeseries", timeseriesJson(timeseries));
    return doc;
}

void
writeWorkerStatus(const std::string &dir, const WorkerTally &tally)
{
    writeFileAtomic(dir + "/status_" + tally.worker + ".json",
                    tally.toJson().dump());
}

void
SweepProgress::configure(const std::string &label, std::size_t total,
                         unsigned every)
{
    const std::lock_guard<std::mutex> lock(mutex_);
    label_ = label;
    total_ = total;
    every_ = every;
    if (!started_) {
        t0_ = std::chrono::steady_clock::now();
        started_ = true;
    }
}

void
SweepProgress::start(std::size_t)
{
    const std::lock_guard<std::mutex> lock(mutex_);
    ++inFlight_;
}

void
SweepProgress::done(std::size_t, const RunResult &result,
                    double wallSec, bool ran)
{
    const std::lock_guard<std::mutex> lock(mutex_);
    if (ran && inFlight_ > 0)
        --inFlight_;
    ++done_;
    switch (result.status.code) {
      case RunStatus::Code::Ok: ++ok_; break;
      case RunStatus::Code::Failed: ++failed_; break;
      case RunStatus::Code::TimedOut: ++timedOut_; break;
    }
    retries_ +=
        result.status.attempts > 0 ? result.status.attempts - 1 : 0;
    if (ran)
        refsDone_ += result.core.refs;
    if (!result.status.ok() && failures_.size() < kMaxSnapshotFailures) {
        RunStatus status = result.status;
        status.exception = nullptr; // snapshots never rethrow
        failures_.push_back(std::move(status));
    }
    rollupTimeseries(timeseries_, result);
    (void)wallSec;
    if (!haveGlobal_)
        maybePrint(done_, failed_ + timedOut_, total_,
                   done_ == total_);
}

void
SweepProgress::globalTick(std::size_t doneCount,
                          std::size_t failedCount, std::size_t total)
{
    const std::lock_guard<std::mutex> lock(mutex_);
    haveGlobal_ = true;
    globalDone_ = doneCount;
    globalFailed_ = failedCount;
    maybePrint(doneCount, failedCount, total, doneCount == total);
}

void
SweepProgress::maybePrint(std::size_t doneCount,
                          std::size_t failedCount, std::size_t total,
                          bool final)
{
    if (every_ == 0 || doneCount == 0)
        return;
    if (doneCount - printedAt_ < every_ && !(final && doneCount != printedAt_))
        return;
    printedAt_ = doneCount;
    const double elapsed = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - t0_)
                               .count();
    const double pps = rate(static_cast<double>(doneCount), elapsed);
    const double eta =
        pps > 0 ? static_cast<double>(total - doneCount) / pps : 0.0;
    std::fprintf(stderr,
                 "[%s] %zu/%zu done (%zu failed), elapsed %.1fs, "
                 "eta %.1fs\n",
                 label_.c_str(), doneCount, total, failedCount,
                 elapsed, eta);
}

std::string
SweepProgress::snapshotJson() const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    const double elapsed =
        started_ ? std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - t0_)
                       .count()
                 : 0.0;
    const std::size_t doneCapped = std::min(done_, total_);
    const std::size_t inflight =
        std::min(inFlight_, total_ - doneCapped);
    const std::size_t pending = total_ - doneCapped - inflight;
    const double pps = rate(static_cast<double>(doneCapped), elapsed);

    Json doc = Json::object();
    doc.set("schema", "tempo-fabric-snapshot-1");
    doc.set("sweep", label_);
    doc.set("points", std::uint64_t(total_));
    doc.set("ok", std::uint64_t(ok_));
    doc.set("failed", std::uint64_t(failed_));
    doc.set("timed_out", std::uint64_t(timedOut_));
    doc.set("in_flight", std::uint64_t(inflight));
    doc.set("pending", std::uint64_t(pending));
    doc.set("retries", retries_);
    doc.set("elapsed_sec", elapsed);
    doc.set("eta_sec",
            pps > 0 ? static_cast<double>(pending + inflight) / pps
                    : 0.0);
    doc.set("points_per_sec", pps);
    doc.set("events_per_sec",
            rate(static_cast<double>(refsDone_), elapsed));
    doc.set("workers", Json::array());
    Json failures = Json::array();
    std::vector<const RunStatus *> sorted;
    sorted.reserve(failures_.size());
    for (const RunStatus &status : failures_)
        sorted.push_back(&status);
    std::sort(sorted.begin(), sorted.end(),
              [](const RunStatus *a, const RunStatus *b) {
                  return a->digest < b->digest;
              });
    for (const RunStatus *status : sorted)
        failures.push(failureJson(*status));
    doc.set("failures", std::move(failures));
    doc.set("timeseries", timeseriesJson(timeseries_));
    return doc.dump();
}

std::string
buildDirSnapshotJson(const std::string &dir, double staleSec)
{
    Json doc = Json::object();
    doc.set("schema", "tempo-fabric-snapshot-1");

    Manifest manifest;
    double elapsed = 0;
    bool haveManifest = false;
    try {
        haveManifest = readManifest(dir, manifest, &elapsed);
    } catch (const std::exception &) {
        haveManifest = false; // unreadable manifest -> empty snapshot
    }
    doc.set("sweep", manifest.sweep);
    const std::size_t points = manifest.digests.size();
    doc.set("points", std::uint64_t(points));

    std::size_t okCount = 0, failedCount = 0, timedOutCount = 0;
    std::uint64_t retries = 0, refsDone = 0;
    std::vector<const RunStatus *> failures;
    std::set<std::uint64_t> doneSet;
    ShardScanner scanner(dir);
    std::map<std::string, std::pair<std::uint64_t, double>> rollup;
    if (haveManifest) {
        const std::set<std::uint64_t> wanted(manifest.digests.begin(),
                                             manifest.digests.end());
        try {
            scanner.poll();
        } catch (const std::exception &) {
            // A malformed shard line mid-write is a reader problem
            // only; report what parsed.
        }
        for (const auto &[digest, result] : scanner.done()) {
            if (!wanted.count(digest))
                continue;
            doneSet.insert(digest);
            switch (result.status.code) {
              case RunStatus::Code::Ok: ++okCount; break;
              case RunStatus::Code::Failed: ++failedCount; break;
              case RunStatus::Code::TimedOut: ++timedOutCount; break;
            }
            retries += result.status.attempts > 0
                           ? result.status.attempts - 1
                           : 0;
            refsDone += result.core.refs;
            rollupTimeseries(rollup, result);
            if (!result.status.ok() &&
                failures.size() < kMaxSnapshotFailures)
                failures.push_back(&result.status);
        }
        // In-flight: claimed manifest digests with no shard record.
        std::error_code ec;
        std::size_t claimed = 0;
        for (const auto &entry : fs::directory_iterator(dir, ec)) {
            const std::string name = entry.path().filename().string();
            if (name.rfind("claim_", 0) != 0)
                continue;
            std::uint64_t digest = 0;
            try {
                digest = parseDigestHex(name.substr(6));
            } catch (const std::exception &) {
                continue;
            }
            if (wanted.count(digest) && !doneSet.count(digest))
                ++claimed;
        }
        const std::size_t doneCount = doneSet.size();
        const std::size_t inflight =
            std::min(claimed, points - doneCount);
        const std::size_t pending = points - doneCount - inflight;
        doc.set("ok", std::uint64_t(okCount));
        doc.set("failed", std::uint64_t(failedCount));
        doc.set("timed_out", std::uint64_t(timedOutCount));
        doc.set("in_flight", std::uint64_t(inflight));
        doc.set("pending", std::uint64_t(pending));
        doc.set("retries", retries);
        const double pps =
            rate(static_cast<double>(doneCount), elapsed);
        doc.set("elapsed_sec", elapsed);
        doc.set("eta_sec",
                pps > 0
                    ? static_cast<double>(pending + inflight) / pps
                    : 0.0);
        doc.set("points_per_sec", pps);
        doc.set("events_per_sec",
                rate(static_cast<double>(refsDone), elapsed));
    } else {
        doc.set("ok", 0);
        doc.set("failed", 0);
        doc.set("timed_out", 0);
        doc.set("in_flight", 0);
        doc.set("pending", 0);
        doc.set("retries", 0);
        doc.set("elapsed_sec", 0.0);
        doc.set("eta_sec", 0.0);
        doc.set("points_per_sec", 0.0);
        doc.set("events_per_sec", 0.0);
    }

    // Workers: anyone with a heartbeat or a status file.
    std::set<std::string> ids;
    for (const std::string &id : Heartbeat::listWorkers(dir))
        ids.insert(id);
    {
        std::error_code ec;
        for (const auto &entry : fs::directory_iterator(dir, ec)) {
            const std::string name = entry.path().filename().string();
            if (name.rfind("status_", 0) == 0 &&
                name.size() > 12 &&
                name.compare(name.size() - 5, 5, ".json") == 0)
                ids.insert(name.substr(7, name.size() - 12));
        }
    }
    Json workers = Json::array();
    for (const std::string &id : ids) {
        Json w = Json::object();
        w.set("worker", id);
        const double hbAge = Heartbeat::ageSec(dir, id);
        const bool never = hbAge == std::numeric_limits<double>::infinity();
        w.set("alive", !never && hbAge <= staleSec);
        // -1 means "never heartbeat" (infinity is not valid JSON).
        w.set("heartbeat_age_sec", never ? -1.0 : hbAge);
        std::ifstream in(dir + "/status_" + id + ".json",
                         std::ios::binary);
        if (in) {
            std::ostringstream text;
            text << in.rdbuf();
            try {
                const JsonValue status = stats::parseJson(text.str());
                for (const auto &[key, value] : status.members) {
                    if (key == "schema" || key == "worker")
                        continue;
                    w.set(key, stats::toJson(value));
                }
            } catch (const std::exception &) {
                // Torn read of a status mid-publish: skip its fields.
            }
        }
        workers.push(std::move(w));
    }
    doc.set("workers", std::move(workers));

    std::sort(failures.begin(), failures.end(),
              [](const RunStatus *a, const RunStatus *b) {
                  return a->digest < b->digest;
              });
    Json failureArr = Json::array();
    for (const RunStatus *status : failures)
        failureArr.push(failureJson(*status));
    doc.set("failures", std::move(failureArr));
    doc.set("timeseries", timeseriesJson(rollup));
    return doc.dump();
}

} // namespace tempo::fabric
