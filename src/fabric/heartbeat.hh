/**
 * @file
 * Worker liveness for the sweep fabric: each worker rewrites
 * `hb_<workerId>` in the shared directory every period, and everyone
 * else judges liveness purely by that file's age. No sockets, no
 * registration — a worker that stops beating (crash, kill -9, network
 * partition from the shared filesystem) simply goes stale, and its
 * claims become reclaimable (see claim.hh).
 */

#ifndef TEMPO_FABRIC_HEARTBEAT_HH
#define TEMPO_FABRIC_HEARTBEAT_HH

#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace tempo::fabric {

/** Background heartbeat writer; beats once on construction so the
 * worker is visibly alive before it claims anything. */
class Heartbeat
{
  public:
    /** @throws std::runtime_error when the first beat cannot be
     * written (unwritable fabric directory). */
    Heartbeat(std::string dir, std::string workerId, double periodSec);
    ~Heartbeat();

    Heartbeat(const Heartbeat &) = delete;
    Heartbeat &operator=(const Heartbeat &) = delete;

    /** Stop beating (idempotent). The heartbeat file is left behind —
     * its age tells the story. */
    void stop();

    static std::string path(const std::string &dir,
                            const std::string &workerId);

    /** Seconds since @p workerId last beat; +infinity when it never
     * wrote a heartbeat. */
    static double ageSec(const std::string &dir,
                         const std::string &workerId);

    /** Every worker id that ever wrote a heartbeat here, sorted. */
    static std::vector<std::string> listWorkers(const std::string &dir);

  private:
    void beatLoop();

    std::string dir_;
    std::string worker_;
    double periodSec_;
    std::mutex mutex_;
    std::condition_variable cv_;
    bool stop_ = false;
    std::thread thread_;
};

} // namespace tempo::fabric

#endif // TEMPO_FABRIC_HEARTBEAT_HH
