/**
 * @file
 * The sweep fabric's execution core: the worker and coordinator loops
 * behind runFabric(), the sweep manifest, and the streaming shard
 * scanner that both roles (and the snapshot builder) merge results
 * with.
 *
 * Protocol recap (details in docs/MODEL.md "Sweep fabric"):
 *  - The point list is derived identically in every participant from
 *    the same CLI invocation; the manifest file pins its digest list
 *    so mismatched invocations fail fast instead of corrupting state.
 *  - Workers claim points by digest (claim.hh), run them behind the
 *    usual exception barrier, and append the full journal record —
 *    failures included, unlike the single-process resume journal — to
 *    their own `shard_<workerId>.jsonl`.
 *  - A record in any shard marks its digest done, permanently. Claims
 *    whose owner stopped heartbeating are erased and re-contested;
 *    the benign worst case is a double-run whose records are
 *    byte-identical (every point is deterministic), so the
 *    first-record-wins merge is order-independent.
 *  - When every digest has a record, each participant merges all
 *    shards and returns the complete result vector, so any of them
 *    emits the same bytes a single-process `--jobs N` run would.
 */

#ifndef TEMPO_FABRIC_COORDINATOR_HH
#define TEMPO_FABRIC_COORDINATOR_HH

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "core/experiment.hh"

namespace tempo::fabric {

class SweepProgress;

/** The sweep identity pinned into a fabric directory. */
struct Manifest {
    std::string sweep;
    std::vector<std::uint64_t> digests;
};

/** Manifest file path; the name embeds a hash of the digest list so a
 * directory reused for a different sweep is detectable. */
std::string manifestPath(const std::string &dir,
                         const std::vector<std::uint64_t> &digests);

/**
 * Idempotently publish the manifest for this sweep.
 * @throws std::runtime_error when the directory already holds a
 *         manifest for a DIFFERENT digest list.
 */
void writeManifest(const std::string &dir, const std::string &sweep,
                   const std::vector<std::uint64_t> &digests);

/** Load the directory's manifest; false when none exists yet. When
 * @p ageSec is non-null it receives the manifest file's age (the
 * sweep's elapsed wall-clock, as the snapshot reports it). */
bool readManifest(const std::string &dir, Manifest &out,
                  double *ageSec = nullptr);

/**
 * Incremental reader over every `shard_*.jsonl` in a fabric
 * directory. poll() consumes only complete newline-terminated lines —
 * a worker killed (or merely buffered) mid-append leaves a tail that
 * is simply not consumed yet — and folds records into a digest-keyed
 * map where the first record for a digest wins. Not thread-safe.
 */
class ShardScanner
{
  public:
    explicit ShardScanner(std::string dir);

    /** Scan for new records; returns how many new digests appeared. */
    std::size_t poll();

    const std::map<std::uint64_t, RunResult> &done() const
    {
        return done_;
    }

    /** Non-ok records seen so far (status carries digest/error). */
    std::size_t failedCount() const { return failed_; }

  private:
    std::string dir_;
    std::map<std::string, std::uint64_t> offsets_; //!< consumed bytes
    std::map<std::uint64_t, RunResult> done_;
    std::size_t failed_ = 0;
};

/**
 * Fabric-mode runExperiments() body: run @p runPoint for claimed
 * points (worker role) or just supervise (coordinator role), then
 * merge every shard and return all results in point order. Both roles
 * return the complete, identical result vector.
 * @throws std::runtime_error when the coordinator detects a stalled
 *         sweep (points remain but no worker has heartbeat recently).
 */
std::vector<RunResult>
runFabric(const ExperimentOptions &opts,
          const std::vector<std::uint64_t> &digests,
          const std::function<RunResult(std::size_t)> &runPoint,
          SweepProgress *progress);

} // namespace tempo::fabric

#endif // TEMPO_FABRIC_COORDINATOR_HH
