#include "fabric/http.hh"

// The ops dashboard for `tempo_sweep --serve`: one self-contained page
// (no external assets, works file-less over the embedded server) that
// polls /snapshot.json every 2 s. Visual language: status colors are
// reserved and always paired with a label+count (never color alone);
// all text wears the text tokens; dark mode is its own palette selected
// via prefers-color-scheme or an explicit data-theme attribute.

namespace tempo::fabric {

std::string
dashboardHtml()
{
    return R"HTML(<!doctype html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta name="viewport" content="width=device-width,initial-scale=1">
<title>tempo sweep</title>
<style>
:root{
  --surface:#fcfcfb;--raised:#f4f3f1;--border:#e3e2de;
  --text:#0b0b0b;--text2:#52514e;
  --ok:#008300;--failed:#e34948;--inflight:#2a78d6;--pending:#c9c8c3;
}
@media (prefers-color-scheme:dark){:root{
  --surface:#1a1a19;--raised:#242423;--border:#3a3936;
  --text:#ffffff;--text2:#c3c2b7;
  --ok:#008300;--failed:#e66767;--inflight:#3987e5;--pending:#3a3936;
}}
:root[data-theme=light]{
  --surface:#fcfcfb;--raised:#f4f3f1;--border:#e3e2de;
  --text:#0b0b0b;--text2:#52514e;
  --ok:#008300;--failed:#e34948;--inflight:#2a78d6;--pending:#c9c8c3;
}
:root[data-theme=dark]{
  --surface:#1a1a19;--raised:#242423;--border:#3a3936;
  --text:#ffffff;--text2:#c3c2b7;
  --ok:#008300;--failed:#e66767;--inflight:#3987e5;--pending:#3a3936;
}
*{box-sizing:border-box}
body{margin:0;padding:20px;background:var(--surface);color:var(--text);
  font:14px/1.45 system-ui,-apple-system,"Segoe UI",sans-serif;
  max-width:1080px;margin-inline:auto}
h1{font-size:18px;font-weight:650;margin:0}
header{display:flex;align-items:baseline;gap:12px;margin-bottom:16px}
.sub{color:var(--text2);font-size:12px}
.bar{display:flex;gap:2px;height:14px;border-radius:4px;overflow:hidden;
  background:var(--raised);margin-bottom:8px}
.bar span{height:100%;min-width:0;transition:flex-grow .4s}
.seg-ok{background:var(--ok)} .seg-failed{background:var(--failed)}
.seg-inflight{background:var(--inflight)} .seg-pending{background:var(--pending)}
.legend{display:flex;flex-wrap:wrap;gap:14px;color:var(--text2);
  font-size:12px;margin-bottom:18px}
.legend i{display:inline-block;width:9px;height:9px;border-radius:2px;
  margin-right:5px;vertical-align:baseline}
.legend b{color:var(--text);font-weight:600;font-variant-numeric:tabular-nums}
.tiles{display:grid;grid-template-columns:repeat(auto-fit,minmax(128px,1fr));
  gap:10px;margin-bottom:18px}
.tile{background:var(--raised);border:1px solid var(--border);
  border-radius:6px;padding:10px 12px}
.tile .v{font-size:22px;font-weight:650;font-variant-numeric:tabular-nums}
.tile .k{color:var(--text2);font-size:11px;text-transform:uppercase;
  letter-spacing:.04em;margin-top:2px}
.cards{display:grid;grid-template-columns:1fr 1fr;gap:10px;margin-bottom:18px}
@media (max-width:760px){.cards{grid-template-columns:1fr}}
.card{background:var(--raised);border:1px solid var(--border);
  border-radius:6px;padding:12px}
.card h2{font-size:12px;font-weight:600;color:var(--text2);margin:0 0 8px;
  text-transform:uppercase;letter-spacing:.04em}
svg{display:block;width:100%;height:64px}
.spark-line{fill:none;stroke:var(--inflight);stroke-width:2;
  vector-effect:non-scaling-stroke}
.spark-now{font-variant-numeric:tabular-nums;font-weight:600}
table{width:100%;border-collapse:collapse;font-variant-numeric:tabular-nums}
th{color:var(--text2);font-size:11px;font-weight:600;text-align:left;
  text-transform:uppercase;letter-spacing:.04em;padding:4px 8px;
  border-bottom:1px solid var(--border)}
td{padding:5px 8px;border-bottom:1px solid var(--border)}
tr:last-child td{border-bottom:0}
td.num,th.num{text-align:right}
.dot{display:inline-block;width:8px;height:8px;border-radius:50%;
  margin-right:6px}
.live .dot{background:var(--ok)} .stale .dot{background:var(--failed)}
#fails{list-style:none;margin:0;padding:0;max-height:220px;overflow:auto}
#fails li{padding:5px 0;border-bottom:1px solid var(--border);
  font-size:12px;overflow-wrap:anywhere}
#fails li:last-child{border-bottom:0}
#fails code{background:var(--surface);border:1px solid var(--border);
  border-radius:3px;padding:1px 4px;font-size:11px}
#fails .st{color:var(--failed);font-weight:600;margin:0 6px}
.empty{color:var(--text2);font-size:12px}
#err{color:var(--failed);font-size:12px;min-height:1em;margin-top:10px}
</style>
</head>
<body>
<header>
  <h1>tempo sweep <span id="sweep" class="sub"></span></h1>
  <span id="upd" class="sub">connecting&hellip;</span>
</header>

<div class="bar" aria-hidden="true">
  <span class="seg-ok" id="b-ok"></span>
  <span class="seg-failed" id="b-failed"></span>
  <span class="seg-inflight" id="b-inflight"></span>
  <span class="seg-pending" id="b-pending"></span>
</div>
<div class="legend">
  <span><i class="seg-ok"></i>ok <b id="l-ok">0</b></span>
  <span><i class="seg-failed"></i>failed <b id="l-failed">0</b></span>
  <span><i class="seg-inflight"></i>in flight <b id="l-inflight">0</b></span>
  <span><i class="seg-pending"></i>pending <b id="l-pending">0</b></span>
</div>

<section class="tiles">
  <div class="tile"><div class="v" id="t-done">&ndash;</div><div class="k">points done</div></div>
  <div class="tile"><div class="v" id="t-eps">&ndash;</div><div class="k">events / s</div></div>
  <div class="tile"><div class="v" id="t-pps">&ndash;</div><div class="k">points / s</div></div>
  <div class="tile"><div class="v" id="t-retries">&ndash;</div><div class="k">retries</div></div>
  <div class="tile"><div class="v" id="t-elapsed">&ndash;</div><div class="k">elapsed</div></div>
  <div class="tile"><div class="v" id="t-eta">&ndash;</div><div class="k">eta</div></div>
</section>

<section class="cards">
  <div class="card">
    <h2>throughput <span class="spark-now" id="spark-now"></span></h2>
    <svg viewBox="0 0 300 60" preserveAspectRatio="none" role="img"
         aria-label="events per second over time">
      <polyline class="spark-line" id="spark" points=""></polyline>
    </svg>
  </div>
  <div class="card">
    <h2>failures</h2>
    <ul id="fails"><li class="empty">none</li></ul>
  </div>
</section>

<div class="card">
  <h2>workers</h2>
  <table>
    <thead><tr>
      <th>worker</th><th>liveness</th>
      <th class="num">ok</th><th class="num">failed</th>
      <th class="num">in flight</th><th class="num">events/s</th>
      <th class="num">heartbeat</th>
    </tr></thead>
    <tbody id="workers">
      <tr><td colspan="7" class="empty">no workers yet</td></tr>
    </tbody>
  </table>
</div>
<div id="err"></div>

<script>
"use strict";
const $ = id => document.getElementById(id);
const hist = [];
function fmtN(x){
  if (x == null || !isFinite(x)) return "–";
  if (x >= 1e9) return (x/1e9).toFixed(1)+"G";
  if (x >= 1e6) return (x/1e6).toFixed(1)+"M";
  if (x >= 1e3) return (x/1e3).toFixed(1)+"k";
  return Number.isInteger(x) ? String(x) : x.toFixed(1);
}
function fmtDur(s){
  if (s == null || !isFinite(s) || s < 0) return "–";
  s = Math.round(s);
  if (s < 60) return s+"s";
  if (s < 3600) return Math.floor(s/60)+"m "+(s%60)+"s";
  return Math.floor(s/3600)+"h "+Math.floor(s%3600/60)+"m";
}
function esc(t){
  const d = document.createElement("div");
  d.textContent = t == null ? "" : String(t);
  return d.innerHTML;
}
function seg(id, n, total){
  $(id).style.flexGrow = total > 0 ? n/total : 0;
}
function render(s){
  const failedAll = (s.failed|0) + (s.timed_out|0);
  const done = (s.ok|0) + failedAll;
  $("sweep").textContent = s.sweep ? "· " + s.sweep : "";
  $("upd").textContent = "updated " + new Date().toLocaleTimeString();
  seg("b-ok", s.ok, s.points); seg("b-failed", failedAll, s.points);
  seg("b-inflight", s.in_flight, s.points);
  seg("b-pending", s.pending, s.points);
  $("l-ok").textContent = fmtN(s.ok);
  $("l-failed").textContent = fmtN(failedAll);
  $("l-inflight").textContent = fmtN(s.in_flight);
  $("l-pending").textContent = fmtN(s.pending);
  $("t-done").textContent = fmtN(done) + " / " + fmtN(s.points);
  $("t-eps").textContent = fmtN(s.events_per_sec);
  $("t-pps").textContent = fmtN(s.points_per_sec);
  $("t-retries").textContent = fmtN(s.retries);
  $("t-elapsed").textContent = fmtDur(s.elapsed_sec);
  $("t-eta").textContent = done >= s.points ? "done" : fmtDur(s.eta_sec);

  hist.push(s.events_per_sec || 0);
  if (hist.length > 150) hist.shift();
  const peak = Math.max(1, ...hist);
  $("spark").setAttribute("points", hist.map((v,i) =>
    (hist.length < 2 ? 150 : i*300/(hist.length-1)).toFixed(1) + "," +
    (56 - v/peak*52).toFixed(1)).join(" "));
  $("spark-now").textContent = fmtN(s.events_per_sec) + " ev/s";

  const fails = s.failures || [];
  $("fails").innerHTML = fails.length === 0
    ? '<li class="empty">none</li>'
    : fails.map(f =>
        "<li><code>" + esc(f.digest) + "</code>" +
        '<span class="st">' + esc(f.status) + "</span>" +
        esc(f.error) + "</li>").join("");

  const workers = s.workers || [];
  $("workers").innerHTML = workers.length === 0
    ? '<tr><td colspan="7" class="empty">no workers yet</td></tr>'
    : workers.map(w => {
        const cls = w.alive ? "live" : "stale";
        const word = w.alive ? "live" : "stale";
        const hb = (w.heartbeat_age_sec == null || w.heartbeat_age_sec < 0)
          ? "never" : w.heartbeat_age_sec.toFixed(1) + "s ago";
        const inflight = Array.isArray(w.in_flight) ? w.in_flight.length : 0;
        return "<tr><td>" + esc(w.worker) + "</td>" +
          '<td class="' + cls + '"><span class="dot"></span>' + word + "</td>" +
          '<td class="num">' + fmtN(w.ok|0) + "</td>" +
          '<td class="num">' + fmtN((w.failed|0)+(w.timed_out|0)) + "</td>" +
          '<td class="num">' + fmtN(inflight) + "</td>" +
          '<td class="num">' + fmtN(w.events_per_sec) + "</td>" +
          '<td class="num">' + hb + "</td></tr>";
      }).join("");
}
async function tick(){
  try {
    const r = await fetch("snapshot.json", {cache:"no-store"});
    if (!r.ok) throw new Error("HTTP " + r.status);
    render(await r.json());
    $("err").textContent = "";
  } catch (e) {
    $("err").textContent = "snapshot fetch failed: " + e;
  }
  setTimeout(tick, 2000);
}
tick();
</script>
</body>
</html>
)HTML";
}

} // namespace tempo::fabric
