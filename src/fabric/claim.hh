/**
 * @file
 * Point claiming for the scale-out sweep fabric, plus the small
 * filesystem helpers every fabric module shares (atomic file publish,
 * digest hex codec, file-age queries).
 *
 * A claim is a file `claim_<16-hex digest>` in the shared fabric
 * directory whose content names the owning worker. Publication is a
 * hard link from a private temp file: link(2) fails with EEXIST when
 * the target exists, so exactly one contender wins no matter how many
 * workers race — rename(2) would silently clobber. Claims are
 * intentionally never removed by their owner on completion; the shard
 * record is the durable "done" signal, and a claim whose owner stopped
 * heartbeating is evidence of a crash, which any worker may erase and
 * re-contest (see coordinator.cc for the reclaim policy).
 */

#ifndef TEMPO_FABRIC_CLAIM_HH
#define TEMPO_FABRIC_CLAIM_HH

#include <cstdint>
#include <string>

namespace tempo::fabric {

/** 16-hex-digit lowercase digest spelling (fabric file names and
 * snapshot JSON use the same spelling as the checkpoint journal). */
std::string digestHex(std::uint64_t digest);

/** Inverse of digestHex(). @throws std::runtime_error on bad input. */
std::uint64_t parseDigestHex(const std::string &text);

/** Write @p content to @p path via a process-unique temp file and
 * rename, so readers only ever see complete contents.
 * @throws std::runtime_error when the write fails. */
void writeFileAtomic(const std::string &path, const std::string &content);

/** Seconds since @p path was last written; +infinity when the file
 * does not exist (or cannot be queried). */
double fileAgeSec(const std::string &path);

/** The claim files of one fabric directory, from one worker's point
 * of view. All operations are lock-free filesystem races by design;
 * the worst race outcome is a benign double-run (both runs produce
 * identical bytes, and the shard merge is digest-keyed first-wins). */
class ClaimDir
{
  public:
    ClaimDir(std::string dir, std::string workerId);

    /** Atomically claim @p digest for this worker; false when some
     * worker (possibly a previous incarnation of this one) already
     * holds it. */
    bool tryClaim(std::uint64_t digest) const;

    /** Worker named inside the claim file; "" when unclaimed (or the
     * claim vanished mid-read). */
    std::string owner(std::uint64_t digest) const;

    /** Age of the claim file itself (fallback staleness signal when
     * the owner never wrote a heartbeat); +infinity when unclaimed. */
    double ageSec(std::uint64_t digest) const;

    /** Erase a claim believed stale so it can be re-contested. Safe to
     * race: at most one contender's subsequent tryClaim() wins. */
    void remove(std::uint64_t digest) const;

    std::string path(std::uint64_t digest) const;
    const std::string &workerId() const { return worker_; }

  private:
    std::string dir_;
    std::string worker_;
};

} // namespace tempo::fabric

#endif // TEMPO_FABRIC_CLAIM_HH
