#include "fabric/coordinator.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <thread>

#include <unistd.h>

#include "core/checkpoint.hh"
#include "fabric/claim.hh"
#include "fabric/heartbeat.hh"
#include "fabric/snapshot.hh"

namespace tempo::fabric {

namespace fs = std::filesystem;
using stats::Json;
using stats::JsonValue;

namespace {

std::uint64_t
fnv1a64(const void *data, std::size_t size, std::uint64_t h)
{
    const auto *bytes = static_cast<const unsigned char *>(data);
    for (std::size_t i = 0; i < size; ++i) {
        h ^= bytes[i];
        h *= 1099511628211ULL;
    }
    return h;
}

constexpr std::uint64_t kFnvBasis = 1469598103934665603ULL;

std::vector<std::string>
listManifests(const std::string &dir)
{
    std::vector<std::string> names;
    std::error_code ec;
    for (const auto &entry : fs::directory_iterator(dir, ec)) {
        const std::string name = entry.path().filename().string();
        if (name.rfind("manifest_", 0) == 0 && name.size() > 14 &&
            name.compare(name.size() - 5, 5, ".json") == 0)
            names.push_back(name);
    }
    std::sort(names.begin(), names.end());
    return names;
}

/** Poll period of idle workers and the coordinator. Fabric liveness
 * is heartbeat-file based, so nothing here needs to be faster than
 * the filesystem round trip. */
constexpr auto kPollPeriod = std::chrono::milliseconds(200);

} // namespace

std::string
manifestPath(const std::string &dir,
             const std::vector<std::uint64_t> &digests)
{
    std::uint64_t h = kFnvBasis;
    for (std::uint64_t digest : digests)
        h = fnv1a64(&digest, sizeof(digest), h);
    return dir + "/manifest_" + digestHex(h) + ".json";
}

void
writeManifest(const std::string &dir, const std::string &sweep,
              const std::vector<std::uint64_t> &digests)
{
    const std::string path = manifestPath(dir, digests);
    const std::string want =
        fs::path(path).filename().string();
    for (const std::string &name : listManifests(dir)) {
        if (name != want)
            throw std::runtime_error(
                "fabric: directory " + dir +
                " already holds a manifest for a different sweep (" +
                name + "); every participant must run the identical "
                "point list, and one directory serves one sweep");
    }
    if (fs::exists(path))
        return; // idempotent republish (workers race; content equal)
    Json doc = Json::object();
    doc.set("v", std::uint64_t(1));
    doc.set("sweep", sweep);
    doc.set("points", std::uint64_t(digests.size()));
    Json list = Json::array();
    for (std::uint64_t digest : digests)
        list.push(digestHex(digest));
    doc.set("digests", std::move(list));
    writeFileAtomic(path, doc.dump());
}

bool
readManifest(const std::string &dir, Manifest &out, double *ageSec)
{
    const std::vector<std::string> names = listManifests(dir);
    if (names.empty())
        return false;
    const std::string path = dir + "/" + names.front();
    std::ifstream in(path, std::ios::binary);
    std::ostringstream text;
    text << in.rdbuf();
    const JsonValue doc = stats::parseJson(text.str());
    out.sweep = doc.at("sweep").asString();
    out.digests.clear();
    for (const JsonValue &digest : doc.at("digests").elements)
        out.digests.push_back(parseDigestHex(digest.asString()));
    if (ageSec)
        *ageSec = fileAgeSec(path);
    return true;
}

ShardScanner::ShardScanner(std::string dir) : dir_(std::move(dir)) {}

std::size_t
ShardScanner::poll()
{
    const std::size_t before = done_.size();
    std::vector<std::string> files;
    std::error_code ec;
    for (const auto &entry : fs::directory_iterator(dir_, ec)) {
        const std::string name = entry.path().filename().string();
        if (name.rfind("shard_", 0) == 0 && name.size() > 12 &&
            name.compare(name.size() - 6, 6, ".jsonl") == 0)
            files.push_back(name);
    }
    std::sort(files.begin(), files.end());
    for (const std::string &name : files) {
        std::uint64_t &offset = offsets_[name];
        std::ifstream in(dir_ + "/" + name, std::ios::binary);
        if (!in)
            continue;
        in.seekg(static_cast<std::streamoff>(offset));
        std::ostringstream tail;
        tail << in.rdbuf();
        const std::string buf = tail.str();
        std::size_t pos = 0;
        for (;;) {
            const std::size_t nl = buf.find('\n', pos);
            if (nl == std::string::npos)
                break; // incomplete tail: leave for the next poll
            const std::string line = buf.substr(pos, nl - pos);
            pos = nl + 1;
            if (line.empty())
                continue;
            try {
                JournalRecord record = decodeJournalLine(line);
                const auto [it, inserted] = done_.emplace(
                    record.digest, std::move(record.result));
                if (inserted && !it->second.status.ok())
                    ++failed_;
            } catch (const std::exception &) {
                // A complete-but-corrupt line cannot happen through
                // AtomicAppendFile; skipping it leaves its point
                // "not done", so the fabric simply re-runs it.
            }
        }
        offset += pos;
    }
    return done_.size() - before;
}

namespace {

/** Shared view of sweep completion, updated from shard polls. */
struct DoneTracker {
    std::map<std::uint64_t, std::size_t> indexOf;
    std::vector<char> mask;
    std::size_t done = 0;
    std::size_t failed = 0;

    explicit DoneTracker(const std::vector<std::uint64_t> &digests)
        : mask(digests.size(), 0)
    {
        for (std::size_t i = 0; i < digests.size(); ++i)
            indexOf.emplace(digests[i], i);
    }

    void
    refresh(ShardScanner &scanner)
    {
        scanner.poll();
        for (const auto &[digest, result] : scanner.done()) {
            const auto it = indexOf.find(digest);
            if (it == indexOf.end() || mask[it->second])
                continue;
            mask[it->second] = 1;
            ++done;
            if (!result.status.ok())
                ++failed;
        }
    }
};

void
workerLoop(const ExperimentOptions &opts,
           const std::vector<std::uint64_t> &digests,
           const std::function<RunResult(std::size_t)> &runPoint,
           SweepProgress *progress, ShardScanner &scanner,
           const std::string &worker)
{
    const std::string &dir = opts.fabricDir;
    const std::size_t total = digests.size();
    ClaimDir claims(dir, worker);
    Heartbeat heartbeat(dir, worker, opts.fabricHeartbeatSec);
    AtomicAppendFile shard(dir + "/shard_" + worker + ".jsonl");

    std::mutex mutex; // scanner, tracker, tally, shard appends
    DoneTracker tracker(digests);
    WorkerTally tally;
    tally.worker = worker;
    tally.sweep = opts.progressLabel;
    writeWorkerStatus(dir, tally);

    std::atomic<bool> abort{false};
    std::exception_ptr firstError;
    std::mutex errorMutex;

    const std::uint64_t scanStart =
        total ? fnv1a64(worker.data(), worker.size(), kFnvBasis) % total
              : 0;

    auto body = [&] {
        while (!abort.load(std::memory_order_relaxed)) {
            std::size_t pick = std::numeric_limits<std::size_t>::max();
            {
                const std::lock_guard<std::mutex> lock(mutex);
                tracker.refresh(scanner);
                if (tracker.done >= total)
                    return;
                if (progress)
                    progress->globalTick(tracker.done, tracker.failed,
                                         total);
                // Start scanning at a per-worker offset so workers
                // racing from the same instant contend on different
                // points instead of serializing on claim files.
                for (std::size_t k = 0; k < total; ++k) {
                    const std::size_t i =
                        (scanStart + k) % total;
                    if (tracker.mask[i])
                        continue;
                    const std::uint64_t digest = digests[i];
                    if (tally.inFlight.count(digest))
                        continue; // this process is running it
                    const std::string owner = claims.owner(digest);
                    if (owner.empty()) {
                        if (!claims.tryClaim(digest))
                            continue; // lost the race
                    } else if (owner == worker) {
                        // Our previous incarnation died holding it
                        // (same worker id, not in our in-flight set).
                        claims.remove(digest);
                        if (!claims.tryClaim(digest))
                            continue;
                    } else {
                        const double hbAge =
                            Heartbeat::ageSec(dir, owner);
                        const bool stale =
                            hbAge ==
                                    std::numeric_limits<
                                        double>::infinity()
                                ? claims.ageSec(digest) >
                                      opts.fabricStaleSec
                                : hbAge > opts.fabricStaleSec;
                        if (!stale)
                            continue;
                        claims.remove(digest);
                        if (!claims.tryClaim(digest))
                            continue;
                    }
                    pick = i;
                    tally.inFlight.insert(digest);
                    writeWorkerStatus(dir, tally);
                    break;
                }
            }
            if (pick == std::numeric_limits<std::size_t>::max()) {
                std::this_thread::sleep_for(kPollPeriod);
                continue;
            }
            if (progress)
                progress->start(pick);
            const auto t0 = std::chrono::steady_clock::now();
            const RunResult result = runPoint(pick);
            const double wall = std::chrono::duration<double>(
                                    std::chrono::steady_clock::now() -
                                    t0)
                                    .count();
            const std::lock_guard<std::mutex> lock(mutex);
            shard.appendLine(
                encodeJournalLine(digests[pick], result));
            tally.inFlight.erase(digests[pick]);
            tally.add(result, wall);
            writeWorkerStatus(dir, tally);
            if (progress)
                progress->done(pick, result, wall, /*ran=*/true);
        }
    };

    const unsigned jobs = opts.jobs ? opts.jobs : defaultJobs();
    std::vector<std::thread> threads;
    threads.reserve(jobs);
    for (unsigned t = 0; t < jobs; ++t) {
        threads.emplace_back([&] {
            try {
                body();
            } catch (...) {
                {
                    const std::lock_guard<std::mutex> lock(errorMutex);
                    if (!firstError)
                        firstError = std::current_exception();
                }
                abort.store(true, std::memory_order_relaxed);
            }
        });
    }
    for (std::thread &thread : threads)
        thread.join();
    heartbeat.stop();
    if (firstError)
        std::rethrow_exception(firstError);
    const std::lock_guard<std::mutex> lock(mutex);
    tracker.refresh(scanner);
    writeWorkerStatus(dir, tally);
    if (progress)
        progress->globalTick(tracker.done, tracker.failed, total);
}

void
coordinatorLoop(const ExperimentOptions &opts,
                const std::vector<std::uint64_t> &digests,
                SweepProgress *progress, ShardScanner &scanner)
{
    const std::string &dir = opts.fabricDir;
    const std::size_t total = digests.size();
    DoneTracker tracker(digests);
    // A sweep with points left but no live worker for this long is
    // declared stalled: generous enough to ride out worker restarts
    // and slow shared filesystems, finite so CI cannot hang forever.
    const double stallLimit = std::max(30.0, opts.fabricStaleSec * 5);
    auto lastAlive = std::chrono::steady_clock::now();
    for (;;) {
        tracker.refresh(scanner);
        if (progress)
            progress->globalTick(tracker.done, tracker.failed, total);
        if (tracker.done >= total)
            return;
        bool alive = false;
        for (const std::string &id : Heartbeat::listWorkers(dir)) {
            if (Heartbeat::ageSec(dir, id) <= opts.fabricStaleSec) {
                alive = true;
                break;
            }
        }
        const auto now = std::chrono::steady_clock::now();
        if (alive)
            lastAlive = now;
        else if (std::chrono::duration<double>(now - lastAlive)
                     .count() > stallLimit)
            throw std::runtime_error(
                "fabric sweep stalled: " +
                std::to_string(total - tracker.done) +
                " points remain but no worker has heartbeat within " +
                std::to_string(stallLimit) + "s");
        std::this_thread::sleep_for(kPollPeriod);
    }
}

} // namespace

std::vector<RunResult>
runFabric(const ExperimentOptions &opts,
          const std::vector<std::uint64_t> &digests,
          const std::function<RunResult(std::size_t)> &runPoint,
          SweepProgress *progress)
{
    const std::string &dir = opts.fabricDir;
    fs::create_directories(dir);
    writeManifest(dir, opts.progressLabel, digests);

    ShardScanner scanner(dir);
    if (opts.fabricRole == ExperimentOptions::FabricRole::Coordinator)
        coordinatorLoop(opts, digests, progress, scanner);
    else {
        const std::string worker =
            opts.fabricWorkerId.empty()
                ? "w" + std::to_string(::getpid())
                : opts.fabricWorkerId;
        workerLoop(opts, digests, runPoint, progress, scanner, worker);
    }

    // Merge: every participant leaves with the complete result set,
    // so any of them can emit the canonical single-process bytes.
    scanner.poll();
    std::vector<RunResult> results(digests.size());
    for (std::size_t i = 0; i < digests.size(); ++i) {
        const auto it = scanner.done().find(digests[i]);
        if (it == scanner.done().end())
            throw std::runtime_error(
                "fabric: no shard record for point " +
                std::to_string(i) + " (digest " +
                digestHex(digests[i]) + ")");
        results[i] = it->second;
    }
    return results;
}

} // namespace tempo::fabric
