/**
 * @file
 * Sweep status observability: per-worker status files, the in-process
 * progress tracker behind `tempo_sweep --progress`, and the merged
 * "tempo-fabric-snapshot-1" JSON served by `tempo_sweep --serve`.
 *
 * Snapshot schema (all keys always present):
 *
 *   {
 *     "schema": "tempo-fabric-snapshot-1",
 *     "sweep": "<label>",
 *     "points": <uint>, "ok": <uint>, "failed": <uint>,
 *     "timed_out": <uint>, "in_flight": <uint>, "pending": <uint>,
 *     "retries": <uint>,
 *     "elapsed_sec": <num>, "eta_sec": <num>,
 *     "points_per_sec": <num>,
 *     "events_per_sec": <num>,   // simulated references per second
 *     "workers": [ { "worker": "<id>", "alive": <bool>,
 *                    "heartbeat_age_sec": <num>,
 *                    ...embedded tempo-fabric-worker-1 fields... } ],
 *     "failures": [ { "digest": "<16-hex>", "status": "...",
 *                     "error": "...", "attempts": <uint> } ],
 *     "timeseries": { "<column>": { "count": <uint>, "mean": <num> } }
 *   }
 *
 * Counting invariant (checked by CI at every poll): ok + failed +
 * timed_out + in_flight + pending == points, exactly. The snapshot
 * builder computes done counts from one shard scan, in-flight as
 * claimed-but-not-done, and pending as the remainder, so the identity
 * holds by construction even while workers race ahead of the poll.
 */

#ifndef TEMPO_FABRIC_SNAPSHOT_HH
#define TEMPO_FABRIC_SNAPSHOT_HH

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "core/tempo_system.hh"
#include "stats/json.hh"

namespace tempo::fabric {

/**
 * One worker's running tally, serialized to `status_<workerId>.json`
 * ("tempo-fabric-worker-1") after every completed point. Callers
 * provide their own locking.
 */
struct WorkerTally {
    std::string worker;
    std::string sweep;
    std::uint64_t ok = 0;
    std::uint64_t failed = 0;
    std::uint64_t timedOut = 0;
    std::uint64_t retries = 0;   //!< extra attempts consumed
    std::uint64_t pointsRun = 0; //!< points this worker executed
    std::uint64_t refsDone = 0;  //!< simulated references completed
    double wallSec = 0;          //!< summed per-point wall clock
    double lastWallSec = 0;
    std::set<std::uint64_t> inFlight; //!< digests being run right now
    /** Windowed obs rollup: column -> (sample count, sample sum). */
    std::map<std::string, std::pair<std::uint64_t, double>> timeseries;

    /** Fold one finished point in (status, refs, retries, obs). */
    void add(const RunResult &result, double pointWallSec);

    stats::Json toJson() const;
};

/** Atomically (re)write @p tally's status file in @p dir. */
void writeWorkerStatus(const std::string &dir, const WorkerTally &tally);

/**
 * Thread-safe sweep progress tracker. The experiment engine reports
 * point starts and completions into one; it prints a stderr line every
 * `every` completions and can render a snapshot JSON for the local
 * (non-fabric) `--serve` mode. Fabric loops additionally feed
 * globalTick() with directory-wide counts so a worker's progress line
 * reflects the whole sweep, not just its own share.
 */
class SweepProgress
{
  public:
    void configure(const std::string &label, std::size_t total,
                   unsigned every);

    /** A point began executing in this process. */
    void start(std::size_t index);

    /** A point finished. @p ran is false for checkpoint-restored
     * points, which never started and must not touch in-flight or
     * throughput accounting. */
    void done(std::size_t index, const RunResult &result,
              double wallSec, bool ran);

    /** Directory-wide completion counts (fabric mode); also prints the
     * progress line on period boundaries. */
    void globalTick(std::size_t doneCount, std::size_t failedCount,
                    std::size_t total);

    /** "tempo-fabric-snapshot-1" built from in-process state only
     * (workers is []); the --serve provider when no fabric dir. */
    std::string snapshotJson() const;

  private:
    void maybePrint(std::size_t doneCount, std::size_t failedCount,
                    std::size_t total, bool final);

    mutable std::mutex mutex_;
    std::string label_ = "sweep";
    std::size_t total_ = 0;
    unsigned every_ = 0;
    std::chrono::steady_clock::time_point t0_{};
    bool started_ = false;
    std::size_t printedAt_ = 0; //!< done count of the last line
    // Local (this-process) accounting.
    std::size_t done_ = 0;
    std::size_t ok_ = 0;
    std::size_t failed_ = 0;
    std::size_t timedOut_ = 0;
    std::size_t inFlight_ = 0;
    std::uint64_t retries_ = 0;
    std::uint64_t refsDone_ = 0;
    std::vector<RunStatus> failures_;
    std::map<std::string, std::pair<std::uint64_t, double>> timeseries_;
    // Directory-wide view (fabric), used for printing when present.
    bool haveGlobal_ = false;
    std::size_t globalDone_ = 0;
    std::size_t globalFailed_ = 0;
};

/**
 * Build the merged "tempo-fabric-snapshot-1" for a fabric directory:
 * one fresh scan of the manifest, every result shard, every claim,
 * heartbeat, and worker status file. Never throws — before the
 * manifest exists it reports an all-zero snapshot, and unreadable
 * worker files are skipped — so the HTTP thread can poll at any time.
 */
std::string buildDirSnapshotJson(const std::string &dir,
                                 double staleSec);

} // namespace tempo::fabric

#endif // TEMPO_FABRIC_SNAPSHOT_HH
