#include "fabric/http.hh"

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

namespace tempo::fabric {

namespace {

std::string
httpResponse(int code, const char *reason, const std::string &type,
             const std::string &body)
{
    std::string out = "HTTP/1.1 " + std::to_string(code) + " " +
                      reason + "\r\n";
    out += "Content-Type: " + type + "\r\n";
    out += "Content-Length: " + std::to_string(body.size()) + "\r\n";
    out += "Cache-Control: no-store\r\n";
    out += "Connection: close\r\n\r\n";
    out += body;
    return out;
}

void
sendAll(int fd, const std::string &data)
{
    std::size_t sent = 0;
    while (sent < data.size()) {
        const ssize_t n = ::send(fd, data.data() + sent,
                                 data.size() - sent, MSG_NOSIGNAL);
        if (n <= 0)
            return; // peer went away; nothing to clean up
        sent += static_cast<std::size_t>(n);
    }
}

} // namespace

HttpServer::HttpServer(const std::string &host, std::uint16_t port,
                       Provider provider)
    : host_(host.empty() ? "127.0.0.1" : host),
      provider_(std::move(provider))
{
    listenFd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listenFd_ < 0)
        throw std::runtime_error(std::string("socket: ") +
                                 std::strerror(errno));
    const int one = 1;
    ::setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one,
                 sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host_.c_str(), &addr.sin_addr) != 1) {
        ::close(listenFd_);
        listenFd_ = -1;
        throw std::runtime_error("--serve: bad address " + host_);
    }
    if (::bind(listenFd_, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(listenFd_, 16) != 0) {
        const std::string error = std::strerror(errno);
        ::close(listenFd_);
        listenFd_ = -1;
        throw std::runtime_error("--serve: cannot listen on " + host_ +
                                 ":" + std::to_string(port) + ": " +
                                 error);
    }
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    ::getsockname(listenFd_, reinterpret_cast<sockaddr *>(&bound),
                  &len);
    port_ = ntohs(bound.sin_port);
    thread_ = std::thread([this] { serveLoop(); });
}

HttpServer::~HttpServer()
{
    stop();
}

void
HttpServer::stop()
{
    stop_.store(true, std::memory_order_relaxed);
    if (thread_.joinable())
        thread_.join();
    if (listenFd_ >= 0) {
        ::close(listenFd_);
        listenFd_ = -1;
    }
}

void
HttpServer::serveLoop()
{
    while (!stop_.load(std::memory_order_relaxed)) {
        pollfd pfd{listenFd_, POLLIN, 0};
        const int ready = ::poll(&pfd, 1, 200);
        if (ready <= 0)
            continue; // timeout tick: re-check the stop flag
        const int fd = ::accept(listenFd_, nullptr, nullptr);
        if (fd < 0)
            continue;
        timeval timeout{2, 0};
        ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout,
                     sizeof(timeout));
        handleConnection(fd);
        ::close(fd);
    }
}

void
HttpServer::handleConnection(int fd)
{
    std::string request;
    char buf[2048];
    while (request.size() < 16384 &&
           request.find("\r\n\r\n") == std::string::npos) {
        const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
        if (n <= 0)
            break;
        request.append(buf, static_cast<std::size_t>(n));
    }
    const std::size_t lineEnd = request.find("\r\n");
    if (lineEnd == std::string::npos)
        return;
    const std::string line = request.substr(0, lineEnd);
    const std::size_t sp1 = line.find(' ');
    const std::size_t sp2 =
        sp1 == std::string::npos ? std::string::npos
                                 : line.find(' ', sp1 + 1);
    if (sp1 == std::string::npos || sp2 == std::string::npos)
        return;
    const std::string method = line.substr(0, sp1);
    std::string path = line.substr(sp1 + 1, sp2 - sp1 - 1);
    const std::size_t query = path.find('?');
    if (query != std::string::npos)
        path.resize(query);

    if (method != "GET" && method != "HEAD") {
        sendAll(fd, httpResponse(405, "Method Not Allowed",
                                 "text/plain", "GET only\n"));
        return;
    }
    std::string response;
    if (path == "/" || path == "/index.html") {
        response = httpResponse(200, "OK", "text/html; charset=utf-8",
                                dashboardHtml());
    } else if (path == "/snapshot.json") {
        try {
            response = httpResponse(200, "OK", "application/json",
                                    provider_());
        } catch (const std::exception &error) {
            response =
                httpResponse(500, "Internal Server Error",
                             "text/plain",
                             std::string(error.what()) + "\n");
        }
    } else {
        response = httpResponse(404, "Not Found", "text/plain",
                                "try / or /snapshot.json\n");
    }
    if (method == "HEAD")
        response.resize(response.find("\r\n\r\n") + 4);
    sendAll(fd, response);
}

} // namespace tempo::fabric
