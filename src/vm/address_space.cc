#include "vm/address_space.hh"

#include "common/log.hh"

namespace tempo {

AddressSpace::AddressSpace(OsMemory &os, const AddressSpaceConfig &cfg,
                           const TranslatorConfig &xlate_cfg)
    : os_(os), cfg_(cfg), table_(os), translator_(table_, xlate_cfg)
{
}

bool
AddressSpace::regionEligible(Addr region_base, double frac) const
{
    // Stable hash of (seed, region) -> [0,1): the same region always gets
    // the same answer, independent of touch order.
    std::uint64_t x = region_base ^ (cfg_.seed * 0x9e3779b97f4a7c15ull);
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdull;
    x ^= x >> 33;
    x *= 0xc4ceb9fe1a85ec53ull;
    x ^= x >> 33;
    return static_cast<double>(x >> 11) * 0x1.0p-53 < frac;
}

void
AddressSpace::installMapping(Addr vaddr)
{
    ++faults_;

    PageSize want = PageSize::Page4K;
    switch (cfg_.policy) {
      case PagePolicy::Base4K:
        break;
      case PagePolicy::Thp:
        if (regionEligible(alignDown(vaddr, kPage2MBytes),
                           cfg_.thpEligibleFrac)) {
            want = PageSize::Page2M;
        }
        break;
      case PagePolicy::Hugetlbfs2M:
        if (regionEligible(alignDown(vaddr, kPage2MBytes),
                           cfg_.hugetlbfs2MFrac)) {
            want = PageSize::Page2M;
        }
        break;
      case PagePolicy::Hugetlbfs1G:
        if (regionEligible(alignDown(vaddr, kPage1GBytes),
                           cfg_.hugetlbfs1GFrac)) {
            want = PageSize::Page1G;
        }
        break;
    }

    // A region that previously fell back to 4KB pages must stay 4KB:
    // part of it is already mapped at base-page granularity (the model
    // does not collapse pages the way khugepaged eventually might).
    if (want != PageSize::Page4K
        && demoted_.count(alignDown(vaddr, pageBytes(want)))) {
        want = PageSize::Page4K;
    }

    Addr frame = kInvalidAddr;
    if (want != PageSize::Page4K) {
        frame = os_.allocFrame(want);
        if (frame == kInvalidAddr) {
            demoted_.insert(alignDown(vaddr, pageBytes(want)));
            want = PageSize::Page4K; // fragmentation fallback
        }
    }
    if (want == PageSize::Page4K)
        frame = os_.allocFrame(PageSize::Page4K);
    TEMPO_ASSERT(frame != kInvalidAddr, "4KB allocation cannot fail");

    table_.map(alignDown(vaddr, pageBytes(want)), want, frame);
}

bool
AddressSpace::touch(Addr vaddr)
{
    // Memoized fast path: a live memo entry with the touched bit set
    // means this granule was already demand-paged and counted — the
    // common case for every reference after the first to a page.
    if (translator_.touchedFast(vaddr))
        return false;

    const Addr vpn = vpn4K(vaddr);
    if (seen4k_.count(vpn)) {
        translator_.noteTouched(vaddr);
        return false;
    }

    Translation xlate = table_.translate(vaddr);
    bool faulted = false;
    if (!xlate.valid) {
        installMapping(vaddr);
        xlate = table_.translate(vaddr);
        TEMPO_ASSERT(xlate.valid, "mapping just installed");
        faulted = true;
    }

    // One seen-set entry per 4KB granule (even inside superpages) so
    // the touched-footprint accounting is exact.
    seen4k_.insert(vpn);
    translator_.noteTouched(vaddr);

    ++touched4k_;
    if (xlate.size == PageSize::Page2M)
        ++touched4kIn2M_;
    else if (xlate.size == PageSize::Page1G)
        ++touched4kIn1G_;
    return faulted;
}

Translation
AddressSpace::translate(Addr vaddr) const
{
    return translator_.translate(vaddr);
}

double
AddressSpace::coverage2M() const
{
    return stats::ratio(touched4kIn2M_, touched4k_);
}

double
AddressSpace::coverage1G() const
{
    return stats::ratio(touched4kIn1G_, touched4k_);
}

double
AddressSpace::superpageCoverage() const
{
    return stats::ratio(touched4kIn2M_ + touched4kIn1G_, touched4k_);
}

void
AddressSpace::report(stats::Report &out) const
{
    out.add("touched_bytes", touchedBytes());
    out.add("faults", faults_);
    out.add("coverage_2m", coverage2M());
    out.add("coverage_1g", coverage1G());
    out.add("superpage_coverage", superpageCoverage());
    out.add("pt_nodes", table_.nodeCount());
}

} // namespace tempo
