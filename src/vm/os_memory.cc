#include "vm/os_memory.hh"

#include <cmath>

#include "common/log.hh"

namespace tempo {

OsMemory::OsMemory(const OsMemoryConfig &cfg)
    : cfg_(cfg), rng_(cfg.seed), nextBlockBase_(cfg.baseAddr)
{
    TEMPO_ASSERT(cfg.fragLevel >= 0.0 && cfg.fragLevel < 1.0,
                 "fragmentation level must be in [0,1)");
    TEMPO_ASSERT(cfg.baseAddr % kPage2MBytes == 0,
                 "partition base must be 2MB-aligned");
    TEMPO_ASSERT(cfg.baseAddr < cfg.physBytes,
                 "partition base past end of physical memory");
}

Addr
OsMemory::openBlock()
{
    while (true) {
        TEMPO_ASSERT(nextBlockBase_ + kPage2MBytes <= cfg_.physBytes,
                     "simulated physical memory exhausted");
        const Addr base = nextBlockBase_;
        nextBlockBase_ += kPage2MBytes;
        // memhog owns whole blocks with probability ~fragLevel/2 and
        // splinters others by consuming a random prefix of frames.
        if (cfg_.fragLevel > 0.0 && rng_.chance(cfg_.fragLevel * 0.5))
            continue; // fully hogged, skip
        open4kBase_ = base;
        open4kNext_ = 0;
        if (cfg_.fragLevel > 0.0 && rng_.chance(cfg_.fragLevel)) {
            // memhog took a few 4KB frames from this block already
            open4kNext_ =
                rng_.below(kPage2MBytes / kPageBytes / 2) * kPageBytes;
        }
        return base;
    }
}

Addr
OsMemory::allocFrame(PageSize size)
{
    switch (size) {
      case PageSize::Page4K: {
        if (open4kBase_ == kInvalidAddr
            || open4kNext_ >= kPage2MBytes) {
            openBlock();
        }
        const Addr frame = open4kBase_ + open4kNext_;
        open4kNext_ += kPageBytes;
        dataBytes_ += kPageBytes;
        ++frames4k_;
        return frame;
      }
      case PageSize::Page2M: {
        // A 2MB page needs one clean block; under memhog-style
        // fragmentation the candidate block is splintered with
        // probability fragLevel and the allocation fails (khugepaged
        // compaction is not modeled — a failed region stays 4KB).
        TEMPO_ASSERT(nextBlockBase_ + kPage2MBytes <= cfg_.physBytes,
                     "simulated physical memory exhausted");
        const Addr base = nextBlockBase_;
        nextBlockBase_ += kPage2MBytes;
        if (cfg_.fragLevel > 0.0 && rng_.chance(cfg_.fragLevel)) {
            ++superFailures_;
            return kInvalidAddr;
        }
        dataBytes_ += kPage2MBytes;
        ++frames2m_;
        return base;
      }
      case PageSize::Page1G: {
        // Needs 512 consecutive clean blocks; succeeds with probability
        // (1-f)^512 per attempt. Sampled directly rather than walking
        // blocks (they are materialized lazily).
        const double p_clean =
            std::pow(1.0 - cfg_.fragLevel, 512.0);
        if (!rng_.chance(p_clean)) {
            ++superFailures_;
            return kInvalidAddr;
        }
        const Addr base = alignUp(nextBlockBase_, kPage1GBytes);
        TEMPO_ASSERT(base + kPage1GBytes <= cfg_.physBytes,
                     "simulated physical memory exhausted");
        nextBlockBase_ = base + kPage1GBytes;
        dataBytes_ += kPage1GBytes;
        ++frames1g_;
        return base;
      }
    }
    TEMPO_PANIC("unknown page size");
}

Addr
OsMemory::allocPtNode()
{
    if (open4kBase_ == kInvalidAddr || open4kNext_ >= kPage2MBytes)
        openBlock();
    const Addr frame = open4kBase_ + open4kNext_;
    open4kNext_ += kPageBytes;
    ptBytes_ += kPageBytes;
    return frame;
}

std::uint64_t
OsMemory::framesAllocated(PageSize size) const
{
    switch (size) {
      case PageSize::Page4K: return frames4k_;
      case PageSize::Page2M: return frames2m_;
      case PageSize::Page1G: return frames1g_;
    }
    return 0;
}

void
OsMemory::report(stats::Report &out) const
{
    out.add("data_bytes", dataBytes_);
    out.add("pt_bytes", ptBytes_);
    out.add("frames_4k", frames4k_);
    out.add("frames_2m", frames2m_);
    out.add("frames_1g", frames1g_);
    out.add("superpage_failures", superFailures_);
}

} // namespace tempo
