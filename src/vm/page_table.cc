#include "vm/page_table.hh"

#include "common/log.hh"

namespace tempo {

PageTable::PageTable(OsMemory &os) : os_(os)
{
    root_ = std::make_unique<Node>();
    root_->physBase = os_.allocPtNode();
    nodeCount_ = 1;
}

PageTable::~PageTable() = default;

unsigned
PageTable::indexAt(Addr vaddr, int level)
{
    TEMPO_ASSERT(level >= 1 && level <= 4, "bad page table level ", level);
    const unsigned shift = 12 + 9 * static_cast<unsigned>(level - 1);
    return static_cast<unsigned>((vaddr >> shift) & 0x1ff);
}

PageTable::Node *
PageTable::ensureChild(Node *node, unsigned index)
{
    Entry &entry = node->entries[index];
    TEMPO_ASSERT(!entry.isLeaf,
                 "remapping a leaf PTE as an intermediate node");
    if (!entry.present) {
        entry.present = true;
        entry.child = std::make_unique<Node>();
        entry.child->physBase = os_.allocPtNode();
        ++nodeCount_;
    }
    return entry.child.get();
}

void
PageTable::map(Addr vaddr, PageSize size, Addr pframe, bool writable)
{
    TEMPO_ASSERT(pframe % pageBytes(size) == 0,
                 "frame not aligned to page size");
    const int leaf = leafLevel(size);
    Node *node = root_.get();
    for (int level = 4; level > leaf; --level)
        node = ensureChild(node, indexAt(vaddr, level));

    Entry &entry = node->entries[indexAt(vaddr, leaf)];
    if (entry.present && !entry.isLeaf && entry.child
        && !subtreeHasMapping(entry.child.get())) {
        // A superpage map over page-table structure whose leaves were
        // all unmapped: reclaim the empty subtree (a real OS reuses
        // freed PT pages when installing a hugepage). No translation
        // changes, so no epoch bump.
        nodeCount_ -= subtreeNodes(entry.child.get());
        entry.child.reset();
        entry.present = false;
    }
    TEMPO_ASSERT(!entry.present, "double mapping of vaddr ", vaddr);
    entry.present = true;
    entry.isLeaf = true;
    entry.writable = writable;
    entry.pframe = pframe;
    entry.size = size;
    // No epoch bump: a previously non-present range cannot have live
    // memo entries (negative results are never memoized).
}

PageTable::Entry *
PageTable::findLeaf(Addr vaddr)
{
    Node *node = root_.get();
    for (int level = 4; level >= 1; --level) {
        const auto it = node->entries.find(indexAt(vaddr, level));
        if (it == node->entries.end() || !it->second.present)
            return nullptr;
        if (it->second.isLeaf)
            return &it->second;
        node = it->second.child.get();
    }
    return nullptr;
}

bool
PageTable::subtreeHasMapping(const Node *node)
{
    for (const auto &[index, entry] : node->entries) {
        if (!entry.present)
            continue;
        if (entry.isLeaf)
            return true;
        if (entry.child && subtreeHasMapping(entry.child.get()))
            return true;
    }
    return false;
}

std::uint64_t
PageTable::subtreeNodes(const Node *node)
{
    std::uint64_t count = 1;
    for (const auto &[index, entry] : node->entries) {
        if (entry.child)
            count += subtreeNodes(entry.child.get());
    }
    return count;
}

bool
PageTable::unmap(Addr vaddr)
{
    Node *node = root_.get();
    for (int level = 4; level >= 1; --level) {
        const auto it = node->entries.find(indexAt(vaddr, level));
        if (it == node->entries.end() || !it->second.present)
            return false;
        if (it->second.isLeaf) {
            node->entries.erase(it);
            ++mutationEpoch_;
            return true;
        }
        node = it->second.child.get();
    }
    return false;
}

void
PageTable::remap(Addr vaddr, PageSize size, Addr pframe, bool writable)
{
    // unmap() bumps the epoch when a live mapping is replaced; a remap
    // of an unmapped page degenerates to a plain map.
    unmap(vaddr);
    map(alignDown(vaddr, pageBytes(size)), size, pframe, writable);
}

bool
PageTable::protect(Addr vaddr, bool writable)
{
    Entry *leaf = findLeaf(vaddr);
    if (leaf == nullptr)
        return false;
    if (leaf->writable != writable) {
        leaf->writable = writable;
        ++mutationEpoch_;
    }
    return true;
}

void
PageTable::promote(Addr vaddr, PageSize size, Addr pframe, bool writable)
{
    TEMPO_ASSERT(size != PageSize::Page4K,
                 "promotion target must be a superpage");
    TEMPO_ASSERT(pframe % pageBytes(size) == 0,
                 "frame not aligned to page size");
    const Addr base = alignDown(vaddr, pageBytes(size));
    const int leaf = leafLevel(size);
    Node *node = root_.get();
    for (int level = 4; level > leaf; --level)
        node = ensureChild(node, indexAt(base, level));

    Entry &entry = node->entries[indexAt(base, leaf)];
    if (entry.child) {
        nodeCount_ -= subtreeNodes(entry.child.get());
        entry.child.reset();
    }
    entry.present = true;
    entry.isLeaf = true;
    entry.writable = writable;
    entry.pframe = pframe;
    entry.size = size;
    ++mutationEpoch_;
}

Translation
PageTable::translate(Addr vaddr) const
{
    const Node *node = root_.get();
    for (int level = 4; level >= 1; --level) {
        const auto it = node->entries.find(indexAt(vaddr, level));
        if (it == node->entries.end() || !it->second.present)
            return Translation{};
        const Entry &entry = it->second;
        if (entry.isLeaf) {
            Translation result;
            result.valid = true;
            result.writable = entry.writable;
            result.pframe = entry.pframe;
            result.size = entry.size;
            return result;
        }
        node = entry.child.get();
    }
    return Translation{};
}

WalkResult
PageTable::walk(Addr vaddr) const
{
    WalkResult result;
    const Node *node = root_.get();
    for (int level = 4; level >= 1; --level) {
        const unsigned index = indexAt(vaddr, level);
        result.steps.push_back(
            WalkStep{level, node->physBase + index * kPteBytes});
        const auto it = node->entries.find(index);
        if (it == node->entries.end() || !it->second.present)
            return result; // fault: last step read a non-present PTE
        const Entry &entry = it->second;
        if (entry.isLeaf) {
            result.xlate.valid = true;
            result.xlate.writable = entry.writable;
            result.xlate.pframe = entry.pframe;
            result.xlate.size = entry.size;
            return result;
        }
        node = entry.child.get();
    }
    TEMPO_PANIC("walk descended past L1");
}

int
PageTable::walkInto(Addr vaddr, WalkStep steps[4],
                    Translation &xlate) const
{
    xlate = Translation{};
    int count = 0;
    const Node *node = root_.get();
    for (int level = 4; level >= 1; --level) {
        const unsigned index = indexAt(vaddr, level);
        steps[count++] =
            WalkStep{level, node->physBase + index * kPteBytes};
        const auto it = node->entries.find(index);
        if (it == node->entries.end() || !it->second.present)
            return count; // fault: last step read a non-present PTE
        const Entry &entry = it->second;
        if (entry.isLeaf) {
            xlate.valid = true;
            xlate.writable = entry.writable;
            xlate.pframe = entry.pframe;
            xlate.size = entry.size;
            return count;
        }
        node = entry.child.get();
    }
    TEMPO_PANIC("walk descended past L1");
}

Addr
PageTable::rootAddr() const
{
    return root_->physBase;
}

} // namespace tempo
