#include "vm/page_table.hh"

#include "common/log.hh"

namespace tempo {

PageTable::PageTable(OsMemory &os) : os_(os)
{
    root_ = std::make_unique<Node>();
    root_->physBase = os_.allocPtNode();
    nodeCount_ = 1;
}

PageTable::~PageTable() = default;

unsigned
PageTable::indexAt(Addr vaddr, int level)
{
    TEMPO_ASSERT(level >= 1 && level <= 4, "bad page table level ", level);
    const unsigned shift = 12 + 9 * static_cast<unsigned>(level - 1);
    return static_cast<unsigned>((vaddr >> shift) & 0x1ff);
}

PageTable::Node *
PageTable::ensureChild(Node *node, unsigned index)
{
    Entry &entry = node->entries[index];
    TEMPO_ASSERT(!entry.isLeaf,
                 "remapping a leaf PTE as an intermediate node");
    if (!entry.present) {
        entry.present = true;
        entry.child = std::make_unique<Node>();
        entry.child->physBase = os_.allocPtNode();
        ++nodeCount_;
    }
    return entry.child.get();
}

void
PageTable::map(Addr vaddr, PageSize size, Addr pframe)
{
    TEMPO_ASSERT(pframe % pageBytes(size) == 0,
                 "frame not aligned to page size");
    const int leaf = leafLevel(size);
    Node *node = root_.get();
    for (int level = 4; level > leaf; --level)
        node = ensureChild(node, indexAt(vaddr, level));

    Entry &entry = node->entries[indexAt(vaddr, leaf)];
    TEMPO_ASSERT(!entry.present, "double mapping of vaddr ", vaddr);
    entry.present = true;
    entry.isLeaf = true;
    entry.pframe = pframe;
    entry.size = size;
}

Translation
PageTable::translate(Addr vaddr) const
{
    const Node *node = root_.get();
    for (int level = 4; level >= 1; --level) {
        const auto it = node->entries.find(indexAt(vaddr, level));
        if (it == node->entries.end() || !it->second.present)
            return Translation{};
        const Entry &entry = it->second;
        if (entry.isLeaf) {
            Translation result;
            result.valid = true;
            result.pframe = entry.pframe;
            result.size = entry.size;
            return result;
        }
        node = entry.child.get();
    }
    return Translation{};
}

WalkResult
PageTable::walk(Addr vaddr) const
{
    WalkResult result;
    const Node *node = root_.get();
    for (int level = 4; level >= 1; --level) {
        const unsigned index = indexAt(vaddr, level);
        result.steps.push_back(
            WalkStep{level, node->physBase + index * kPteBytes});
        const auto it = node->entries.find(index);
        if (it == node->entries.end() || !it->second.present)
            return result; // fault: last step read a non-present PTE
        const Entry &entry = it->second;
        if (entry.isLeaf) {
            result.xlate.valid = true;
            result.xlate.pframe = entry.pframe;
            result.xlate.size = entry.size;
            return result;
        }
        node = entry.child.get();
    }
    TEMPO_PANIC("walk descended past L1");
}

Addr
PageTable::rootAddr() const
{
    return root_->physBase;
}

} // namespace tempo
