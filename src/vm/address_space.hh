/**
 * @file
 * A process address space: demand paging over the OS frame allocator,
 * with the page-size policies the paper evaluates (Sec. 6.2):
 *
 *  - Base4K       — transparent hugepages disabled;
 *  - Thp          — Linux-style transparent 2MB hugepages: an eligible
 *                   2MB virtual region gets a superpage if the allocator
 *                   can produce a clean 2MB block (fragmentation-limited);
 *  - Hugetlbfs2M  — explicitly requested 2MB pages (higher coverage);
 *  - Hugetlbfs1G  — explicitly requested 1GB pages for the bulk of the
 *                   heap, 4KB for the rest.
 */

#ifndef TEMPO_VM_ADDRESS_SPACE_HH
#define TEMPO_VM_ADDRESS_SPACE_HH

#include <cstdint>
#include <unordered_set>

#include "common/types.hh"
#include "stats/stats.hh"
#include "vm/os_memory.hh"
#include "vm/page_table.hh"
#include "vm/translator.hh"

namespace tempo {

enum class PagePolicy : std::uint8_t {
    Base4K,
    Thp,
    Hugetlbfs2M,
    Hugetlbfs1G,
};

inline const char *
pagePolicyName(PagePolicy policy)
{
    switch (policy) {
      case PagePolicy::Base4K: return "4K-only";
      case PagePolicy::Thp: return "THP-2M";
      case PagePolicy::Hugetlbfs2M: return "hugetlbfs-2M";
      case PagePolicy::Hugetlbfs1G: return "hugetlbfs-1G";
    }
    return "?";
}

struct AddressSpaceConfig {
    PagePolicy policy = PagePolicy::Thp;
    /** Fraction of 2MB regions THP considers huge-eligible (models vma
     * alignment/madvise coverage on a real system). */
    double thpEligibleFrac = 0.60;
    /** Same for explicitly requested hugetlbfs 2MB pages. */
    double hugetlbfs2MFrac = 0.95;
    /** Fraction of 1GB regions backed when using 1GB pages. */
    double hugetlbfs1GFrac = 0.85;
    std::uint64_t seed = 7;
};

class AddressSpace
{
  public:
    AddressSpace(OsMemory &os, const AddressSpaceConfig &cfg,
                 const TranslatorConfig &xlate_cfg = {});

    /**
     * Ensure the page containing @p vaddr is mapped (demand paging).
     * @return true if this touch faulted (a new mapping was created).
     */
    bool touch(Addr vaddr);

    /** Translation for @p vaddr; invalid if never touched. */
    Translation translate(Addr vaddr) const;

    /** The memoized translation front end over this space's table
     * (vm/translator.hh); the walker plans its walks through it. */
    Translator &translator() const { return translator_; }

    const PageTable &pageTable() const { return table_; }
    PageTable &pageTable() { return table_; }

    /** Distinct touched bytes (at 4KB granularity). */
    Addr touchedBytes() const { return touched4k_ * kPageBytes; }

    /** Fraction of the touched footprint backed by 2MB pages. */
    double coverage2M() const;
    /** Fraction of the touched footprint backed by 1GB pages. */
    double coverage1G() const;
    /** Fraction backed by any superpage (paper Fig. 10 right). */
    double superpageCoverage() const;

    std::uint64_t faults() const { return faults_; }

    void report(stats::Report &out) const;

  private:
    /** Deterministic per-region eligibility decision. */
    bool regionEligible(Addr region_base, double frac) const;

    /** Choose and install a mapping for a faulting vaddr. */
    void installMapping(Addr vaddr);

    OsMemory &os_;
    AddressSpaceConfig cfg_;
    PageTable table_;

    /** Memoized front end; mutable because memo fills are logically
     * const (translate() caches, it never changes the mapping). */
    mutable Translator translator_;

    /** 4KB granules already demand-paged and counted: the slow-path
     * seen-set behind the translator's touched-bit fast path. */
    std::unordered_set<Addr> seen4k_;

    /** Superpage regions that fell back to 4KB (stay 4KB forever). */
    std::unordered_set<Addr> demoted_;

    std::uint64_t touched4k_ = 0;
    std::uint64_t touched4kIn2M_ = 0;
    std::uint64_t touched4kIn1G_ = 0;
    std::uint64_t faults_ = 0;
};

} // namespace tempo

#endif // TEMPO_VM_ADDRESS_SPACE_HH
