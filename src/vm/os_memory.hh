/**
 * @file
 * The OS physical-memory model: a frame allocator over a large, sparsely
 * materialized physical address space, with superpage policies and
 * controllable external fragmentation.
 *
 * This stands in for the Linux buddy allocator + THP/libhugetlbfs +
 * memhog setup the paper measures on real hardware (Sec. 6.2). What TEMPO
 * cares about is (a) the resulting page-size distribution and (b) the
 * physical interleaving of page-table pages with data pages — both are
 * properties of this model:
 *
 *  - 4KB frames are carved sequentially out of 2MB blocks, so data pages
 *    and page-table node pages allocated close in time share DRAM rows,
 *    as they do under a real first-touch allocator;
 *  - a fragmentation level f (the memhog knob) splinters a fraction of
 *    blocks, making 2MB allocations fail with probability ~f and 1GB
 *    allocations fail with probability 1-(1-f)^512.
 */

#ifndef TEMPO_VM_OS_MEMORY_HH
#define TEMPO_VM_OS_MEMORY_HH

#include <cstdint>
#include <vector>

#include "common/rng.hh"
#include "common/types.hh"
#include "stats/stats.hh"

namespace tempo {

struct OsMemoryConfig {
    /** Addressable physical bytes (frames are materialized lazily). */
    Addr physBytes = 1ull << 40;
    /** memhog-style external fragmentation level in [0, 1). */
    double fragLevel = 0.0;
    std::uint64_t seed = 1;
    /** First byte the bump allocator hands out. Sharded runs give
     * each app a disjoint partition [baseAddr, physBytes) so per-app
     * allocation order is independent of cross-app event interleaving
     * (internal plumbing, not a user knob — excluded from digests). */
    Addr baseAddr = 0;
};

class OsMemory
{
  public:
    explicit OsMemory(const OsMemoryConfig &cfg);

    /**
     * Allocate one frame of the given size.
     * @return frame base physical address, or kInvalidAddr when a
     *         superpage-sized contiguous region is not available (the
     *         caller falls back to smaller pages).
     */
    Addr allocFrame(PageSize size);

    /** Allocate a 4KB frame for a page-table node. */
    Addr allocPtNode();

    /** Bytes handed out so far, split by consumer. */
    Addr dataBytesAllocated() const { return dataBytes_; }
    Addr ptBytesAllocated() const { return ptBytes_; }
    Addr bytesAllocated() const { return dataBytes_ + ptBytes_; }

    /** Frames handed out, by page size. */
    std::uint64_t framesAllocated(PageSize size) const;

    /** 2MB/1GB allocation attempts that failed due to fragmentation. */
    std::uint64_t superpageFailures() const { return superFailures_; }

    const OsMemoryConfig &config() const { return cfg_; }

    void report(stats::Report &out) const;

  private:
    /** Open a fresh 2MB block for 4KB carving; returns its base. */
    Addr openBlock();

    OsMemoryConfig cfg_;
    Rng rng_;

    Addr nextBlockBase_;       //!< bump pointer over 2MB blocks
    Addr open4kBase_ = kInvalidAddr; //!< current block for 4KB carving
    Addr open4kNext_ = 0;      //!< next free 4KB frame in that block

    Addr dataBytes_ = 0;
    Addr ptBytes_ = 0;
    std::uint64_t frames4k_ = 0;
    std::uint64_t frames2m_ = 0;
    std::uint64_t frames1g_ = 0;
    std::uint64_t superFailures_ = 0;
};

} // namespace tempo

#endif // TEMPO_VM_OS_MEMORY_HH
