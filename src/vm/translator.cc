#include "vm/translator.hh"

#include <cstdlib>

#include "common/log.hh"

namespace tempo {

namespace {

/** Test/CI knob: force the retained unmemoized reference path.
 * Results are bit-identical; only the lookup cost differs. */
bool
envReferenceTranslator()
{
    const char *v = std::getenv("TEMPO_REFERENCE_TRANSLATOR");
    return v != nullptr && v[0] != '\0'
        && !(v[0] == '0' && v[1] == '\0');
}

void
fillCachedWalk(CachedWalk &out, const WalkResult &full)
{
    out.xlate = full.xlate;
    TEMPO_ASSERT(full.steps.size() <= 4, "walk deeper than 4 levels");
    out.count = static_cast<int>(full.steps.size());
    for (int i = 0; i < out.count; ++i)
        out.steps[i] = full.steps[static_cast<std::size_t>(i)];
}

} // namespace

Translator::Translator(const PageTable &table, const TranslatorConfig &cfg)
    : table_(table), cfg_(cfg),
      useRef_(cfg.useReferenceTranslator || envReferenceTranslator())
{
    TEMPO_ASSERT(isPow2(cfg_.memoSlots), "memoSlots must be a power of 2");
    TEMPO_ASSERT(isPow2(cfg_.walkSlots), "walkSlots must be a power of 2");
    if (!useRef_) {
        slots_.resize(cfg_.memoSlots);
        wslots_.resize(cfg_.walkSlots);
    }
    slotMask_ = useRef_ ? 0 : cfg_.memoSlots - 1;
    wslotMask_ = useRef_ ? 0 : cfg_.walkSlots - 1;
}

void
Translator::refillLast(Addr vaddr, const Translation &xlate,
                       std::uint64_t stamp)
{
    const Addr bytes = pageBytes(xlate.size);
    last_.base = alignDown(vaddr, bytes);
    last_.pageMask = ~(bytes - 1);
    last_.stamp = stamp;
    last_.xlate = xlate;
}

Translation
Translator::translateMiss(Addr vaddr, Slot &slot, std::uint64_t stamp)
{
    const Translation xlate = table_.translate(vaddr);
    if (xlate.valid) {
        // Negative results are never memoized: map() does not bump the
        // mutation epoch, so a cached "unmapped" answer could go stale.
        slot.tag = vpn4K(vaddr);
        slot.stamp = stamp;
        slot.touched = 0;
        slot.xlate = xlate;
        refillLast(vaddr, xlate, stamp);
    }
    return xlate;
}

Translation
Translator::translate(Addr vaddr)
{
    if (useRef_)
        return table_.translate(vaddr);

    const std::uint64_t stamp = currentStamp();
    // Hit checks use non-short-circuit `&`: one predictable branch to
    // the refill path, no data-dependent control flow on the way.
    if (((vaddr & last_.pageMask) == last_.base)
        & (last_.stamp == stamp)) {
        ++hits_;
        return last_.xlate;
    }

    const Addr vpn = vpn4K(vaddr);
    Slot &slot = slotFor(vpn);
    if ((slot.tag == vpn) & (slot.stamp == stamp)) {
        ++hits_;
        refillLast(vaddr, slot.xlate, stamp);
        return slot.xlate;
    }

    ++misses_;
    return translateMiss(vaddr, slot, stamp);
}

const CachedWalk &
Translator::walk(Addr vaddr)
{
    if (useRef_) {
        fillCachedWalk(scratch_, table_.walk(vaddr));
        return scratch_;
    }

    const Addr vpn = vpn4K(vaddr);
    WalkSlot &slot = wslots_[vpn & wslotMask_];
    const std::uint64_t stamp = currentStamp();
    if ((slot.tag == vpn) & (slot.stamp == stamp)) {
        ++walkHits_;
        return slot.walk;
    }

    ++walkMisses_;
    // Refill via the vector-free walk: the TLB filters out most reuse
    // before it reaches the walker, so walk() misses dominate and must
    // not pay a heap allocation per descent like table_.walk() does.
    scratch_.count =
        table_.walkInto(vaddr, scratch_.steps, scratch_.xlate);
    if (!scratch_.xlate.valid) {
        // Faulting walks stay unmemoized (see translateMiss).
        return scratch_;
    }
    slot.tag = vpn;
    slot.stamp = stamp;
    slot.walk = scratch_;
    return slot.walk;
}

bool
Translator::touchedFast(Addr vaddr)
{
    if (useRef_)
        return false;
    const std::uint64_t stamp = currentStamp();
    const Addr vpn = vpn4K(vaddr);
    const Slot &slot = slotFor(vpn);
    const bool hit =
        (slot.tag == vpn) & (slot.stamp == stamp) & (slot.touched != 0);
    hits_ += hit;
    return hit;
}

void
Translator::noteTouched(Addr vaddr)
{
    if (useRef_)
        return;
    const std::uint64_t stamp = currentStamp();
    const Addr vpn = vpn4K(vaddr);
    Slot &slot = slotFor(vpn);
    if ((slot.tag != vpn) | (slot.stamp != stamp)) {
        ++misses_;
        if (!translateMiss(vaddr, slot, stamp).valid)
            return; // unmapped granule: nothing to mark
    }
    slot.touched = 1;
}

void
Translator::invalidateAll()
{
    ++gen_;
}

} // namespace tempo
