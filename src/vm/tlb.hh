/**
 * @file
 * Two-level TLB, Skylake-style: split L1 TLBs per page size, plus a
 * unified L2 (STLB) that holds 4KB and 2MB entries.
 */

#ifndef TEMPO_VM_TLB_HH
#define TEMPO_VM_TLB_HH

#include <cstdint>

#include "common/types.hh"
#include "stats/stats.hh"
#include "vm/assoc_array.hh"

namespace tempo {

struct TlbConfig {
    unsigned l1Entries4K = 64;
    unsigned l1Assoc4K = 4;
    unsigned l1Entries2M = 32;
    unsigned l1Assoc2M = 4;
    unsigned l1Entries1G = 4;
    unsigned l1Assoc1G = 4;
    unsigned l2Entries = 1536;
    unsigned l2Assoc = 12;
    Cycle l1Latency = 1;
    Cycle l2Latency = 7;
};

/** Outcome of a TLB probe. */
struct TlbResult {
    bool hit = false;
    Cycle latency = 0;     //!< probe cycles spent (L1, or L1+L2)
    PageSize size = PageSize::Page4K; //!< page size of the hit entry
};

class Tlb
{
  public:
    explicit Tlb(const TlbConfig &cfg, const CacheConfig &impl = {});

    /**
     * Probe for @p vaddr. The L1 sub-TLBs are probed in parallel (one L1
     * latency); on miss the unified L2 is probed for both 4KB and 2MB
     * keys. 1GB entries live only in their L1 sub-TLB, as on real parts.
     */
    TlbResult lookup(Addr vaddr);

    /** Install a translation after a walk. Fills L1 and (for 4K/2M) L2. */
    void fill(Addr vaddr, PageSize size);

    /** Drop everything (context switch). */
    void flush();

    /** Clear hit/miss counters, keeping entries (warmup support). */
    void resetStats();

    std::uint64_t l1Hits() const { return l1Hits_; }
    std::uint64_t l2Hits() const { return l2Hits_; }
    std::uint64_t misses() const { return misses_; }
    std::uint64_t lookups() const
    {
        return l1Hits_ + l2Hits_ + misses_;
    }
    double
    missRate() const
    {
        return stats::ratio(misses_, lookups());
    }

    void report(stats::Report &out) const;

  private:
    static std::uint64_t keyFor(Addr vaddr, PageSize size);

    TlbConfig cfg_;
    AssocArray<std::uint8_t> l14k_;
    AssocArray<std::uint8_t> l12m_;
    AssocArray<std::uint8_t> l11g_;
    /** Unified L2; payload = PageSize so 4K/2M keys cannot collide. */
    AssocArray<std::uint8_t> l2_;

    std::uint64_t l1Hits_ = 0;
    std::uint64_t l2Hits_ = 0;
    std::uint64_t misses_ = 0;
};

} // namespace tempo

#endif // TEMPO_VM_TLB_HH
