/**
 * @file
 * MMU caches (paging-structure caches): small associative caches of
 * upper-level page-table entries (L4, L3, L2), letting walks skip levels
 * (Barr et al. ISCA 2010; Bhattacharjee MICRO 2013). Leaf entries are
 * never held here — that is the TLB's job.
 */

#ifndef TEMPO_VM_MMU_CACHE_HH
#define TEMPO_VM_MMU_CACHE_HH

#include "common/types.hh"
#include "stats/stats.hh"
#include "vm/assoc_array.hh"

namespace tempo {

struct MmuCacheConfig {
    unsigned entriesPerLevel = 32;
    unsigned assoc = 4;
    Cycle latency = 1;
};

class MmuCache
{
  public:
    explicit MmuCache(const MmuCacheConfig &cfg,
                      const CacheConfig &impl = {});

    /**
     * Deepest level whose entry is cached for @p vaddr: returns 2, 3, or
     * 4 if the corresponding PT entry is cached (so the walk can start at
     * the level *below*), or 5 if nothing is cached (walk starts at L4).
     * E.g. a return of 2 means the L2 PTE is cached, so only the L1 PTE
     * must be fetched.
     */
    int deepestCached(Addr vaddr);

    /** Record that the walk observed the PT entry at @p level (2..4). */
    void fill(Addr vaddr, int level);

    void reset();

    /** Clear hit/miss counters, keeping entries (warmup support). */
    void resetStats();

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }

    void report(stats::Report &out) const;

  private:
    static std::uint64_t keyFor(Addr vaddr, int level);

    MmuCacheConfig cfg_;
    AssocArray<std::uint8_t> l2_; //!< caches L2 PT entries
    AssocArray<std::uint8_t> l3_; //!< caches L3 PT entries
    AssocArray<std::uint8_t> l4_; //!< caches L4 PT entries
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
};

} // namespace tempo

#endif // TEMPO_VM_MMU_CACHE_HH
