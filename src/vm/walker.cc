#include "vm/walker.hh"

#include "common/log.hh"
#include "common/profiler.hh"

namespace tempo {

Walker::Walker(Translator &translator, MmuCache &mmu)
    : translator_(translator), mmu_(mmu)
{
}

WalkPlan
Walker::plan(Addr vaddr)
{
    prof::Scope prof_scope(prof::Component::Walker);
    ++walks_;
    const CachedWalk &full = translator_.walk(vaddr);
    // deepestCached == L means the PT entry at level L is cached, so the
    // walk resumes at level L-1; 5 means start from the root (L4).
    const int deepest = mmu_.deepestCached(vaddr);

    WalkPlan plan;
    plan.xlate = full.xlate;
    plan.fetches.reserve(static_cast<std::size_t>(full.count));
    for (int i = 0; i < full.count; ++i) {
        const WalkStep &step = full.steps[i];
        if (step.level < deepest) {
            plan.fetches.push_back(step);
            ++ptRefs_;
        } else {
            ++ptRefsSkipped_;
            ++plan.skipped;
        }
    }
    // An MMU-cache hit can only exist for entries a previous walk
    // traversed, so a planned walk always has at least the leaf fetch.
    TEMPO_ASSERT(!plan.fetches.empty(),
                 "MMU cache claims to hold a leaf translation");
    return plan;
}

void
Walker::finish(Addr vaddr, const WalkPlan &plan)
{
    // Every fetch except the last resolved a present upper-level entry.
    for (std::size_t i = 0; i + 1 < plan.fetches.size(); ++i) {
        const int level = plan.fetches[i].level;
        if (level >= 2 && level <= 4)
            mmu_.fill(vaddr, level);
    }
}

} // namespace tempo
