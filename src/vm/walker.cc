#include "vm/walker.hh"

#include "common/log.hh"

namespace tempo {

Walker::Walker(const PageTable &table, MmuCache &mmu)
    : table_(table), mmu_(mmu)
{
}

WalkPlan
Walker::plan(Addr vaddr)
{
    ++walks_;
    const WalkResult full = table_.walk(vaddr);
    // deepestCached == L means the PT entry at level L is cached, so the
    // walk resumes at level L-1; 5 means start from the root (L4).
    const int deepest = mmu_.deepestCached(vaddr);

    WalkPlan plan;
    plan.xlate = full.xlate;
    for (const WalkStep &step : full.steps) {
        if (step.level < deepest) {
            plan.fetches.push_back(step);
            ++ptRefs_;
        } else {
            ++ptRefsSkipped_;
            ++plan.skipped;
        }
    }
    // An MMU-cache hit can only exist for entries a previous walk
    // traversed, so a planned walk always has at least the leaf fetch.
    TEMPO_ASSERT(!plan.fetches.empty(),
                 "MMU cache claims to hold a leaf translation");
    return plan;
}

void
Walker::finish(Addr vaddr, const WalkPlan &plan)
{
    // Every fetch except the last resolved a present upper-level entry.
    for (std::size_t i = 0; i + 1 < plan.fetches.size(); ++i) {
        const int level = plan.fetches[i].level;
        if (level >= 2 && level <= 4)
            mmu_.fill(vaddr, level);
    }
}

} // namespace tempo
