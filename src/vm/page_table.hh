/**
 * @file
 * An x86-64-style 4-level radix page table materialized in *simulated*
 * physical memory: every table node occupies a real 4KB frame obtained
 * from the OS model, so page-table walker references have physical
 * addresses that hit real DRAM rows and real cache sets — the property
 * TEMPO's whole mechanism rests on.
 *
 * Levels are numbered as in the paper: L4 is the root (CR3 points at it),
 * L1 is the leaf for 4KB pages. 2MB pages terminate at L2; 1GB at L3.
 */

#ifndef TEMPO_VM_PAGE_TABLE_HH
#define TEMPO_VM_PAGE_TABLE_HH

#include <array>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/types.hh"
#include "vm/os_memory.hh"

namespace tempo {

/** One page-table fetch the hardware walker must perform. */
struct WalkStep {
    int level;     //!< 4 (root) down to the leaf level
    Addr pteAddr;  //!< physical address of the 8-byte PTE
};

/** Result of translating a virtual address. */
struct Translation {
    bool valid = false;
    Addr pframe = kInvalidAddr; //!< physical frame base
    PageSize size = PageSize::Page4K;

    /** Physical address corresponding to @p vaddr under this mapping. */
    Addr
    physAddr(Addr vaddr) const
    {
        return pframe + (vaddr & (pageBytes(size) - 1));
    }
};

/** Full structural walk: the PTE fetch sequence plus the outcome. */
struct WalkResult {
    Translation xlate;
    /** PTE addresses from L4 down to the last level probed. For a valid
     * walk the last step is the leaf PTE; for a fault it is the first
     * non-present entry. */
    std::vector<WalkStep> steps;
};

class PageTable
{
  public:
    explicit PageTable(OsMemory &os);
    ~PageTable();

    PageTable(const PageTable &) = delete;
    PageTable &operator=(const PageTable &) = delete;

    /**
     * Install a mapping for the page containing @p vaddr.
     * @p pframe must be aligned to the page size. Intermediate nodes are
     * created (and given physical frames) on demand.
     */
    void map(Addr vaddr, PageSize size, Addr pframe);

    /** Translate without touching hardware structures. */
    Translation translate(Addr vaddr) const;

    /** Structural walk: exactly the PTE fetches a hardware walker makes. */
    WalkResult walk(Addr vaddr) const;

    /** Physical address of the root (CR3 contents). */
    Addr rootAddr() const;

    /** Number of table nodes (== 4KB frames consumed by this table). */
    std::uint64_t nodeCount() const { return nodeCount_; }

    /** Virtual-page index bits for @p level (9 bits per level). */
    static unsigned indexAt(Addr vaddr, int level);

  private:
    struct Node;
    struct Entry {
        bool present = false;
        bool isLeaf = false;
        Addr pframe = 0;               //!< leaf: frame base
        PageSize size = PageSize::Page4K;
        std::unique_ptr<Node> child;   //!< non-leaf: next level node
    };
    struct Node {
        Addr physBase;
        std::unordered_map<unsigned, Entry> entries;
    };

    Node *ensureChild(Node *node, unsigned index);

    OsMemory &os_;
    std::unique_ptr<Node> root_;
    std::uint64_t nodeCount_ = 0;
};

} // namespace tempo

#endif // TEMPO_VM_PAGE_TABLE_HH
