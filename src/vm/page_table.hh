/**
 * @file
 * An x86-64-style 4-level radix page table materialized in *simulated*
 * physical memory: every table node occupies a real 4KB frame obtained
 * from the OS model, so page-table walker references have physical
 * addresses that hit real DRAM rows and real cache sets — the property
 * TEMPO's whole mechanism rests on.
 *
 * Levels are numbered as in the paper: L4 is the root (CR3 points at it),
 * L1 is the leaf for 4KB pages. 2MB pages terminate at L2; 1GB at L3.
 */

#ifndef TEMPO_VM_PAGE_TABLE_HH
#define TEMPO_VM_PAGE_TABLE_HH

#include <array>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/types.hh"
#include "vm/os_memory.hh"

namespace tempo {

/** One page-table fetch the hardware walker must perform. */
struct WalkStep {
    int level;     //!< 4 (root) down to the leaf level
    Addr pteAddr;  //!< physical address of the 8-byte PTE
};

/** Result of translating a virtual address. */
struct Translation {
    bool valid = false;
    bool writable = true;       //!< permission bit carried by the PTE
    Addr pframe = kInvalidAddr; //!< physical frame base
    PageSize size = PageSize::Page4K;

    /** Physical address corresponding to @p vaddr under this mapping. */
    Addr
    physAddr(Addr vaddr) const
    {
        return pframe + (vaddr & (pageBytes(size) - 1));
    }
};

/** Full structural walk: the PTE fetch sequence plus the outcome. */
struct WalkResult {
    Translation xlate;
    /** PTE addresses from L4 down to the last level probed. For a valid
     * walk the last step is the leaf PTE; for a fault it is the first
     * non-present entry. */
    std::vector<WalkStep> steps;
};

class PageTable
{
  public:
    explicit PageTable(OsMemory &os);
    ~PageTable();

    PageTable(const PageTable &) = delete;
    PageTable &operator=(const PageTable &) = delete;

    /**
     * Install a mapping for the page containing @p vaddr.
     * @p pframe must be aligned to the page size. Intermediate nodes are
     * created (and given physical frames) on demand. A superpage map
     * over page-table structure whose leaves were all unmapped reclaims
     * the empty subtree, as a real OS reuses freed PT pages; mapping
     * over any *live* translation is still a hard error.
     *
     * map() never fires the mutation epoch: installing a mapping in a
     * previously non-present range cannot change any existing present
     * translation, and memoized translators never cache negative
     * results, so no memo entry can go stale (vm/translator.hh).
     */
    void map(Addr vaddr, PageSize size, Addr pframe,
             bool writable = true);

    /**
     * Remove the leaf mapping covering @p vaddr (any page size).
     * Intermediate nodes are kept, as a real OS keeps page-table pages
     * after pte_clear: a later walk faults at the first absent level
     * below them and a later map() reuses them. Bumps the mutation
     * epoch when a mapping was actually removed.
     * @return true iff a mapping existed.
     */
    bool unmap(Addr vaddr);

    /**
     * Replace the mapping covering @p vaddr with a new frame (unmap +
     * map). The page at the *new* size must be free after the unmap —
     * size-changing replacement of a partially mapped region goes
     * through promote() instead.
     */
    void remap(Addr vaddr, PageSize size, Addr pframe,
               bool writable = true);

    /**
     * Change the permission bit of the leaf covering @p vaddr. Bumps
     * the mutation epoch when the bit actually changed.
     * @return true iff a mapping existed.
     */
    bool protect(Addr vaddr, bool writable);

    /**
     * Superpage promotion: collapse whatever is mapped inside the
     * @p size-aligned region containing @p vaddr into one superpage
     * leaf at @p pframe. Any page-table subtree under the region (4KB
     * leaves of a 2MB region; 2MB/4KB leaves of a 1GB region) is
     * discarded; its node frames stay allocated in the OS model, as
     * with a real buddy allocator holding freed PT pages. Bumps the
     * mutation epoch.
     */
    void promote(Addr vaddr, PageSize size, Addr pframe,
                 bool writable = true);

    /** Translate without touching hardware structures. */
    Translation translate(Addr vaddr) const;

    /** Structural walk: exactly the PTE fetches a hardware walker makes. */
    WalkResult walk(Addr vaddr) const;

    /**
     * walk() without the heap: writes the same step sequence into
     * @p steps (at most 4) and the outcome into @p xlate, returns the
     * step count. The memoized translator's refill path uses this so a
     * walk miss never allocates.
     */
    int walkInto(Addr vaddr, WalkStep steps[4],
                 Translation &xlate) const;

    /** Physical address of the root (CR3 contents). */
    Addr rootAddr() const;

    /** Number of table nodes (== 4KB frames consumed by this table). */
    std::uint64_t nodeCount() const { return nodeCount_; }

    /**
     * Monotone counter bumped by every mutation that can change an
     * existing present translation — unmap, remap, protect, promote —
     * and never by map() (see there). This is the bulk-invalidation
     * hook memoized translators key their entries on: a stale entry
     * carries an older epoch and can never be served again.
     */
    std::uint64_t mutationEpoch() const { return mutationEpoch_; }

    /** Virtual-page index bits for @p level (9 bits per level). */
    static unsigned indexAt(Addr vaddr, int level);

  private:
    struct Node;
    struct Entry {
        bool present = false;
        bool isLeaf = false;
        bool writable = true;          //!< leaf: permission bit
        Addr pframe = 0;               //!< leaf: frame base
        PageSize size = PageSize::Page4K;
        std::unique_ptr<Node> child;   //!< non-leaf: next level node
    };
    struct Node {
        Addr physBase;
        std::unordered_map<unsigned, Entry> entries;
    };

    Node *ensureChild(Node *node, unsigned index);
    Entry *findLeaf(Addr vaddr);
    static bool subtreeHasMapping(const Node *node);
    static std::uint64_t subtreeNodes(const Node *node);

    OsMemory &os_;
    std::unique_ptr<Node> root_;
    std::uint64_t nodeCount_ = 0;
    std::uint64_t mutationEpoch_ = 0;
};

} // namespace tempo

#endif // TEMPO_VM_PAGE_TABLE_HH
