#include "vm/mmu_cache.hh"

#include "common/log.hh"

namespace tempo {

MmuCache::MmuCache(const MmuCacheConfig &cfg, const CacheConfig &impl)
    : cfg_(cfg),
      l2_(cfg.entriesPerLevel, cfg.assoc, impl),
      l3_(cfg.entriesPerLevel, cfg.assoc, impl),
      l4_(cfg.entriesPerLevel, cfg.assoc, impl)
{
}

std::uint64_t
MmuCache::keyFor(Addr vaddr, int level)
{
    // The entry at level L is indexed by the VPN bits of levels 4..L,
    // i.e. everything above the (L-1) boundary.
    const unsigned shift = 12 + 9 * static_cast<unsigned>(level - 1);
    return vaddr >> shift;
}

int
MmuCache::deepestCached(Addr vaddr)
{
    if (l2_.lookup(keyFor(vaddr, 2))) {
        ++hits_;
        return 2;
    }
    if (l3_.lookup(keyFor(vaddr, 3))) {
        ++hits_;
        return 3;
    }
    if (l4_.lookup(keyFor(vaddr, 4))) {
        ++hits_;
        return 4;
    }
    ++misses_;
    return 5;
}

void
MmuCache::fill(Addr vaddr, int level)
{
    TEMPO_ASSERT(level >= 2 && level <= 4,
                 "MMU caches hold upper levels only, got ", level);
    switch (level) {
      case 2: l2_.insert(keyFor(vaddr, 2)); break;
      case 3: l3_.insert(keyFor(vaddr, 3)); break;
      case 4: l4_.insert(keyFor(vaddr, 4)); break;
      default: break;
    }
}

void
MmuCache::resetStats()
{
    l2_.resetStats();
    l3_.resetStats();
    l4_.resetStats();
    hits_ = 0;
    misses_ = 0;
}

void
MmuCache::reset()
{
    l2_.reset();
    l3_.reset();
    l4_.reset();
    hits_ = 0;
    misses_ = 0;
}

void
MmuCache::report(stats::Report &out) const
{
    out.add("hits", hits_);
    out.add("misses", misses_);
    out.add("hit_rate", stats::ratio(hits_, hits_ + misses_));
}

} // namespace tempo
