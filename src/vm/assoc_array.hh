/**
 * @file
 * A small generic set-associative array of 64-bit keys with true LRU,
 * reused by the TLBs and MMU caches. Values are optional per-entry
 * payloads (e.g. the page size of a unified-TLB entry).
 *
 * Backed by the packed tag-array core (cache/tag_array.hh) by default;
 * the pre-packed linear-scan implementation is retained as the
 * differential-testing oracle behind CacheConfig::useReferenceCache /
 * the TEMPO_REFERENCE_CACHE env var. Hit/miss/victim sequences are
 * identical on both paths.
 */

#ifndef TEMPO_VM_ASSOC_ARRAY_HH
#define TEMPO_VM_ASSOC_ARRAY_HH

#include <cstdint>
#include <vector>

#include "cache/tag_array.hh"
#include "common/log.hh"
#include "common/types.hh"

namespace tempo {

template <typename Payload = std::uint8_t>
class AssocArray
{
  public:
    AssocArray(unsigned entries, unsigned assoc,
               const CacheConfig &impl = {})
        : assoc_(assoc)
    {
        TEMPO_ASSERT(entries > 0 && assoc > 0, "empty array");
        if (assoc_ > entries)
            assoc_ = entries;
        sets_ = entries / assoc_;
        if (sets_ == 0)
            sets_ = 1;
        TEMPO_ASSERT(isPow2(sets_), "set count must be a power of two, "
                     "got ", sets_, " from ", entries, "/", assoc);
        useRef_ = impl.useReferenceCache || envReferenceCache()
                  || !TagArray::packable(sets_, assoc_);
        if (useRef_) {
            slots_.resize(static_cast<std::size_t>(sets_) * assoc_);
        } else {
            tags_ = TagArray(sets_, assoc_);
            payloads_.resize(static_cast<std::size_t>(sets_) * assoc_);
        }
    }

    /** Look up @p key; on hit promotes to MRU and returns the payload. */
    const Payload *
    lookup(std::uint64_t key)
    {
        if (useRef_) {
            Slot *slot = find(key);
            if (!slot) {
                ++misses_;
                return nullptr;
            }
            slot->lastUse = ++tick_;
            ++hits_;
            return &slot->payload;
        }
        const unsigned set = setOf(key);
        const int way = tags_.find(set, key);
        if (way < 0) {
            ++misses_;
            return nullptr;
        }
        tags_.promote(set, static_cast<unsigned>(way), key);
        ++hits_;
        return &payloads_[static_cast<std::size_t>(set) * assoc_
                          + static_cast<unsigned>(way)];
    }

    /** Presence probe without LRU update or stats. */
    bool
    contains(std::uint64_t key) const
    {
        if (useRef_)
            return const_cast<AssocArray *>(this)->find(key) != nullptr;
        return tags_.find(setOf(key), key) >= 0;
    }

    /** Insert (or refresh) @p key with @p payload. */
    void
    insert(std::uint64_t key, const Payload &payload = Payload{})
    {
        if (useRef_) {
            refInsert(key, payload);
            return;
        }
        const unsigned set = setOf(key);
        const int hit = tags_.find(set, key);
        const unsigned way =
            hit >= 0 ? static_cast<unsigned>(hit) : tags_.victimWay(set);
        if (hit >= 0)
            tags_.promote(set, way, key);
        else
            tags_.install(set, way, key, false);
        payloads_[static_cast<std::size_t>(set) * assoc_ + way] =
            payload;
    }

    /** Remove @p key if present. */
    void
    invalidate(std::uint64_t key)
    {
        if (useRef_) {
            if (Slot *slot = find(key))
                slot->valid = false;
            return;
        }
        const unsigned set = setOf(key);
        const int way = tags_.find(set, key);
        if (way >= 0)
            tags_.invalidateWay(set, static_cast<unsigned>(way));
    }

    void
    reset()
    {
        if (useRef_) {
            for (auto &slot : slots_)
                slot.valid = false;
            tick_ = 0;
        } else {
            tags_.reset();
        }
        hits_ = 0;
        misses_ = 0;
    }

    /** Clear the hit/miss counters, keeping contents (warmup). */
    void
    resetStats()
    {
        hits_ = 0;
        misses_ = 0;
    }

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    double
    hitRate() const
    {
        const std::uint64_t total = hits_ + misses_;
        return total ? static_cast<double>(hits_)
                / static_cast<double>(total)
                     : 0.0;
    }

    unsigned capacity() const { return sets_ * assoc_; }
    bool usingReference() const { return useRef_; }

  private:
    /** Reference-path slot (array-of-structs, global-tick LRU). */
    struct Slot {
        bool valid = false;
        std::uint64_t key = 0;
        Payload payload{};
        std::uint64_t lastUse = 0;
    };

    unsigned setOf(std::uint64_t key) const { return key & (sets_ - 1); }

    Slot *
    find(std::uint64_t key)
    {
        const unsigned set = setOf(key);
        for (unsigned w = 0; w < assoc_; ++w) {
            Slot &slot =
                slots_[static_cast<std::size_t>(set) * assoc_ + w];
            if (slot.valid && slot.key == key)
                return &slot;
        }
        return nullptr;
    }

    void
    refInsert(std::uint64_t key, const Payload &payload)
    {
        const unsigned set = setOf(key);
        Slot *victim = nullptr;
        for (unsigned w = 0; w < assoc_; ++w) {
            Slot &slot = slots_[static_cast<std::size_t>(set) * assoc_
                                + w];
            if (slot.valid && slot.key == key) {
                slot.payload = payload;
                slot.lastUse = ++tick_;
                return;
            }
            if (!victim || !slot.valid
                || (victim->valid && slot.lastUse < victim->lastUse)) {
                victim = &slot;
            }
        }
        victim->valid = true;
        victim->key = key;
        victim->payload = payload;
        victim->lastUse = ++tick_;
    }

    unsigned assoc_;
    unsigned sets_;
    bool useRef_ = false;

    TagArray tags_;                 //!< packed path
    std::vector<Payload> payloads_; //!< packed path, set-major
    std::vector<Slot> slots_;       //!< reference path
    std::uint64_t tick_ = 0;        //!< reference path LRU clock

    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
};

} // namespace tempo

#endif // TEMPO_VM_ASSOC_ARRAY_HH
