/**
 * @file
 * A small generic set-associative array of 64-bit keys with true LRU,
 * reused by the TLBs and MMU caches. Values are optional per-entry
 * payloads (e.g. the page size of a unified-TLB entry).
 */

#ifndef TEMPO_VM_ASSOC_ARRAY_HH
#define TEMPO_VM_ASSOC_ARRAY_HH

#include <cstdint>
#include <vector>

#include "common/log.hh"
#include "common/types.hh"

namespace tempo {

template <typename Payload = std::uint8_t>
class AssocArray
{
  public:
    AssocArray(unsigned entries, unsigned assoc)
        : assoc_(assoc)
    {
        TEMPO_ASSERT(entries > 0 && assoc > 0, "empty array");
        if (assoc_ > entries)
            assoc_ = entries;
        sets_ = entries / assoc_;
        if (sets_ == 0)
            sets_ = 1;
        TEMPO_ASSERT(isPow2(sets_), "set count must be a power of two, "
                     "got ", sets_, " from ", entries, "/", assoc);
        slots_.resize(static_cast<std::size_t>(sets_) * assoc_);
    }

    /** Look up @p key; on hit promotes to MRU and returns the payload. */
    const Payload *
    lookup(std::uint64_t key)
    {
        Slot *slot = find(key);
        if (!slot) {
            ++misses_;
            return nullptr;
        }
        slot->lastUse = ++tick_;
        ++hits_;
        return &slot->payload;
    }

    /** Presence probe without LRU update or stats. */
    bool
    contains(std::uint64_t key) const
    {
        return const_cast<AssocArray *>(this)->find(key) != nullptr;
    }

    /** Insert (or refresh) @p key with @p payload. */
    void
    insert(std::uint64_t key, const Payload &payload = Payload{})
    {
        const unsigned set = setOf(key);
        Slot *victim = nullptr;
        for (unsigned w = 0; w < assoc_; ++w) {
            Slot &slot = slots_[static_cast<std::size_t>(set) * assoc_
                                + w];
            if (slot.valid && slot.key == key) {
                slot.payload = payload;
                slot.lastUse = ++tick_;
                return;
            }
            if (!victim || !slot.valid
                || (victim->valid && slot.lastUse < victim->lastUse)) {
                victim = &slot;
            }
        }
        victim->valid = true;
        victim->key = key;
        victim->payload = payload;
        victim->lastUse = ++tick_;
    }

    /** Remove @p key if present. */
    void
    invalidate(std::uint64_t key)
    {
        if (Slot *slot = find(key))
            slot->valid = false;
    }

    void
    reset()
    {
        for (auto &slot : slots_)
            slot.valid = false;
        hits_ = 0;
        misses_ = 0;
        tick_ = 0;
    }

    /** Clear the hit/miss counters, keeping contents (warmup). */
    void
    resetStats()
    {
        hits_ = 0;
        misses_ = 0;
    }

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    double
    hitRate() const
    {
        const std::uint64_t total = hits_ + misses_;
        return total ? static_cast<double>(hits_)
                / static_cast<double>(total)
                     : 0.0;
    }

    unsigned capacity() const { return sets_ * assoc_; }

  private:
    struct Slot {
        bool valid = false;
        std::uint64_t key = 0;
        Payload payload{};
        std::uint64_t lastUse = 0;
    };

    unsigned setOf(std::uint64_t key) const { return key & (sets_ - 1); }

    Slot *
    find(std::uint64_t key)
    {
        const unsigned set = setOf(key);
        for (unsigned w = 0; w < assoc_; ++w) {
            Slot &slot =
                slots_[static_cast<std::size_t>(set) * assoc_ + w];
            if (slot.valid && slot.key == key)
                return &slot;
        }
        return nullptr;
    }

    unsigned assoc_;
    unsigned sets_;
    std::vector<Slot> slots_;
    std::uint64_t tick_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
};

} // namespace tempo

#endif // TEMPO_VM_ASSOC_ARRAY_HH
