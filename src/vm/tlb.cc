#include "vm/tlb.hh"

namespace tempo {

Tlb::Tlb(const TlbConfig &cfg, const CacheConfig &impl)
    : cfg_(cfg),
      l14k_(cfg.l1Entries4K, cfg.l1Assoc4K, impl),
      l12m_(cfg.l1Entries2M, cfg.l1Assoc2M, impl),
      l11g_(cfg.l1Entries1G, cfg.l1Assoc1G, impl),
      l2_(cfg.l2Entries, cfg.l2Assoc, impl)
{
}

std::uint64_t
Tlb::keyFor(Addr vaddr, PageSize size)
{
    // Tag keys with the page size in the low bits so a unified array can
    // hold multiple sizes without aliasing.
    const Addr vpn = vaddr / pageBytes(size);
    return (vpn << 2) | static_cast<std::uint64_t>(size);
}

TlbResult
Tlb::lookup(Addr vaddr)
{
    TlbResult result;
    result.latency = cfg_.l1Latency;

    // All three L1 sub-TLBs probe in parallel.
    if (l14k_.lookup(keyFor(vaddr, PageSize::Page4K))) {
        result.hit = true;
        result.size = PageSize::Page4K;
    } else if (l12m_.lookup(keyFor(vaddr, PageSize::Page2M))) {
        result.hit = true;
        result.size = PageSize::Page2M;
    } else if (l11g_.lookup(keyFor(vaddr, PageSize::Page1G))) {
        result.hit = true;
        result.size = PageSize::Page1G;
    }
    if (result.hit) {
        ++l1Hits_;
        return result;
    }

    // Unified L2: probe with both 4KB and 2MB keys.
    result.latency += cfg_.l2Latency;
    if (l2_.lookup(keyFor(vaddr, PageSize::Page4K))) {
        result.hit = true;
        result.size = PageSize::Page4K;
        l14k_.insert(keyFor(vaddr, PageSize::Page4K));
    } else if (l2_.lookup(keyFor(vaddr, PageSize::Page2M))) {
        result.hit = true;
        result.size = PageSize::Page2M;
        l12m_.insert(keyFor(vaddr, PageSize::Page2M));
    }
    if (result.hit) {
        ++l2Hits_;
        return result;
    }

    ++misses_;
    return result;
}

void
Tlb::fill(Addr vaddr, PageSize size)
{
    switch (size) {
      case PageSize::Page4K:
        l14k_.insert(keyFor(vaddr, size));
        l2_.insert(keyFor(vaddr, size));
        break;
      case PageSize::Page2M:
        l12m_.insert(keyFor(vaddr, size));
        l2_.insert(keyFor(vaddr, size));
        break;
      case PageSize::Page1G:
        l11g_.insert(keyFor(vaddr, size));
        break;
    }
}

void
Tlb::resetStats()
{
    l14k_.resetStats();
    l12m_.resetStats();
    l11g_.resetStats();
    l2_.resetStats();
    l1Hits_ = 0;
    l2Hits_ = 0;
    misses_ = 0;
}

void
Tlb::flush()
{
    l14k_.reset();
    l12m_.reset();
    l11g_.reset();
    l2_.reset();
    l1Hits_ = 0;
    l2Hits_ = 0;
    misses_ = 0;
}

void
Tlb::report(stats::Report &out) const
{
    out.add("l1_hits", l1Hits_);
    out.add("l2_hits", l2Hits_);
    out.add("misses", misses_);
    out.add("miss_rate", missRate());
}

} // namespace tempo
