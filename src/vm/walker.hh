/**
 * @file
 * The hardware page-table walker's structural half: given a virtual
 * address, consult the MMU caches and produce the exact sequence of PTE
 * fetches the walk needs (the timing of those fetches through the cache
 * hierarchy and DRAM belongs to the system model).
 *
 * TEMPO's hardware change lives here conceptually: the walker tags the
 * *leaf* fetch and appends the replay's cache-line index (Sec. 4.1).
 */

#ifndef TEMPO_VM_WALKER_HH
#define TEMPO_VM_WALKER_HH

#include <vector>

#include "common/types.hh"
#include "vm/mmu_cache.hh"
#include "vm/page_table.hh"
#include "vm/translator.hh"

namespace tempo {

/** A planned page-table walk. */
struct WalkPlan {
    /** PTE fetches to perform, top level first. Levels already covered
     * by MMU cache hits are skipped. The last fetch is the leaf PTE (or,
     * on a fault, the first non-present entry). */
    std::vector<WalkStep> fetches;
    /** Final translation; !valid means the walk faults. */
    Translation xlate;
    /** Levels the MMU caches satisfied (fetches skipped). */
    int skipped = 0;
    /** Observability walk id assigned by the issuer (0 = none); carried
     * so PT memory requests can be joined back to their walk. */
    std::uint64_t obsWalkId = 0;
};

class Walker
{
  public:
    /** Plans walks through @p translator, the memoized (or reference)
     * front end over the page table (vm/translator.hh). The fetch
     * plans, MMU-cache probes and statistics are identical either way. */
    Walker(Translator &translator, MmuCache &mmu);

    /** Build the fetch plan for @p vaddr (probes the MMU caches). */
    WalkPlan plan(Addr vaddr);

    /** After the fetches complete, install upper-level entries into the
     * MMU caches (leaf entries go to the TLB, not here). */
    void finish(Addr vaddr, const WalkPlan &plan);

    std::uint64_t walks() const { return walks_; }
    std::uint64_t ptRefsIssued() const { return ptRefs_; }
    std::uint64_t ptRefsSkipped() const { return ptRefsSkipped_; }

  private:
    Translator &translator_;
    MmuCache &mmu_;
    std::uint64_t walks_ = 0;
    std::uint64_t ptRefs_ = 0;
    std::uint64_t ptRefsSkipped_ = 0;
};

} // namespace tempo

#endif // TEMPO_VM_WALKER_HH
