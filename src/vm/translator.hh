/**
 * @file
 * Memoized translation fast path: a flat last-translation slot plus
 * direct-mapped VPN-indexed software caches in front of the functional
 * PageTable lookups, in the spirit of HartModels'
 * CacheWrappedTranslator/BranchFreeTranslator.
 *
 * Every reference resolves its translation functionally (TLB-hit
 * physical address, walk planning, replay classification) by probing
 * the AddressSpace/PageTable maps; at steady state the answer almost
 * never changes, so the radix descent and hashing dominate the
 * translation front end's self time. The Translator memoizes:
 *
 *  - translate(): the leaf Translation per 4KB VPN, fronted by a flat
 *    "last translation" slot that covers same-page streaks of any page
 *    size with one compare;
 *  - walk(): the full structural walk (PTE fetch sequence + outcome)
 *    per 4KB VPN, in fixed-size slots so the hit path never allocates;
 *  - the AddressSpace touch() "already counted" bit, so the per-access
 *    demand-paging check skips its hash probe.
 *
 * The hit path is branch-free in spirit: tag and validity compares are
 * combined with non-short-circuit `&` into a single predictable branch
 * to the refill path.
 *
 * Invalidation protocol — the memo can never serve a stale PTE:
 *
 *  - every slot is stamped with PageTable::mutationEpoch() + a local
 *    generation at fill time; a lookup only hits when the stamp equals
 *    the current value, so any unmap/remap/protect/promote (which bump
 *    the epoch) bulk-invalidates every slot in O(1);
 *  - map() of a previously non-present range does not bump the epoch,
 *    and correspondingly the Translator NEVER memoizes negative
 *    results (invalid translations or faulting walks) — a later map
 *    cannot be masked by a stale negative entry;
 *  - invalidateAll() bumps the local generation for callers that want
 *    an explicit flush (context switch, tests).
 *
 * The timing model never sees this layer: MMU-cache probes, TLB fills,
 * walker fetch plans and all statistics are identical with the memo on
 * or off. The unmemoized path is retained behind
 * TranslatorConfig::useReferenceTranslator (or the
 * TEMPO_REFERENCE_TRANSLATOR env var) as the differential-testing
 * oracle, mirroring the PR-2 event-queue and PR-5 scheduler pattern.
 */

#ifndef TEMPO_VM_TRANSLATOR_HH
#define TEMPO_VM_TRANSLATOR_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "vm/page_table.hh"

namespace tempo {

struct TranslatorConfig {
    /** Force every lookup down the unmemoized reference path (also
     * forced by the TEMPO_REFERENCE_TRANSLATOR env var). Results are
     * bit-identical; only the lookup cost differs. */
    bool useReferenceTranslator = false;
    /** Direct-mapped translation memo slots (power of two). Sized to
     * keep the memo's host-cache footprint modest: bigger tables raise
     * the hit rate a little but evict the simulator's own hot state. */
    unsigned memoSlots = 1u << 13;
    /** Direct-mapped structural-walk memo slots (power of two). The
     * TLB filters most reuse before the walker, so walk hits are rare;
     * the table stays small and the miss path (vector-free walkInto
     * refill) carries the weight. */
    unsigned walkSlots = 1u << 10;
};

/** A memoized structural walk: WalkResult in fixed-size clothing. */
struct CachedWalk {
    Translation xlate;
    int count = 0;                //!< valid prefix of steps[]
    WalkStep steps[4] = {};       //!< top level first, leaf (or first
                                  //!< non-present entry) last
};

class Translator
{
  public:
    explicit Translator(const PageTable &table,
                        const TranslatorConfig &cfg = {});

    /** Functional translation for @p vaddr, memoized. Exactly equal to
     * PageTable::translate() at every instant. */
    Translation translate(Addr vaddr);

    /**
     * Structural walk for @p vaddr, memoized. Exactly equal to
     * PageTable::walk() at every instant. The reference stays valid
     * until the next walk() call on this translator (the miss/reference
     * path fills a scratch slot).
     */
    const CachedWalk &walk(Addr vaddr);

    /**
     * Fast path for AddressSpace::touch(): true iff the 4KB granule of
     * @p vaddr has a live memo entry whose touched bit is set — i.e.
     * the granule was already demand-paged and counted. False means
     * "consult the slow path", never "not touched".
     */
    bool touchedFast(Addr vaddr);

    /** Record that the granule of @p vaddr is mapped and counted: fill
     * the memo slot and set its touched bit. */
    void noteTouched(Addr vaddr);

    /** Explicit bulk flush of every memo slot, O(1). */
    void invalidateAll();

    bool usingReference() const { return useRef_; }
    const PageTable &table() const { return table_; }

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    std::uint64_t walkHits() const { return walkHits_; }
    std::uint64_t walkMisses() const { return walkMisses_; }

  private:
    struct Slot {
        Addr tag = kInvalidAddr;      //!< 4KB VPN, kInvalidAddr = empty
        std::uint64_t stamp = 0;
        std::uint8_t touched = 0;
        Translation xlate;
    };
    struct WalkSlot {
        Addr tag = kInvalidAddr;
        std::uint64_t stamp = 0;
        CachedWalk walk;
    };
    /** Flat last-translation slot: one compare covers the whole page,
     * so 2MB/1GB streaks hit without even indexing the memo. */
    struct LastSlot {
        Addr base = kInvalidAddr;     //!< page-aligned vaddr base
        Addr pageMask = 0;            //!< ~(pageBytes - 1)
        std::uint64_t stamp = 0;
        Translation xlate;
    };

    /** Slot validity stamp: mutation epoch + local generation. Both
     * are monotone, so a stale slot's stamp can never reappear. */
    std::uint64_t
    currentStamp() const
    {
        return table_.mutationEpoch() + gen_;
    }

    Slot &slotFor(Addr vpn) { return slots_[vpn & slotMask_]; }
    void refillLast(Addr vaddr, const Translation &xlate,
                    std::uint64_t stamp);
    Translation translateMiss(Addr vaddr, Slot &slot,
                              std::uint64_t stamp);

    const PageTable &table_;
    TranslatorConfig cfg_;
    bool useRef_ = false;
    std::uint64_t gen_ = 1;

    LastSlot last_;
    std::vector<Slot> slots_;
    std::vector<WalkSlot> wslots_;
    Addr slotMask_ = 0;
    Addr wslotMask_ = 0;
    CachedWalk scratch_;          //!< reference/faulting walk results

    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t walkHits_ = 0;
    std::uint64_t walkMisses_ = 0;
};

} // namespace tempo

#endif // TEMPO_VM_TRANSLATOR_HH
