#include "common/thread_pool.hh"

#include <cstdlib>

namespace tempo {

unsigned
ThreadPool::defaultThreads()
{
    if (const char *env = std::getenv("TEMPO_JOBS")) {
        const unsigned long parsed = std::strtoul(env, nullptr, 10);
        if (parsed > 0)
            return static_cast<unsigned>(parsed);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

ThreadPool::ThreadPool(unsigned num_threads)
{
    if (num_threads == 0)
        num_threads = defaultThreads();
    queues_.resize(num_threads);
    workers_.reserve(num_threads);
    for (std::size_t i = 0; i < num_threads; ++i)
        workers_.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    workCv_.notify_all();
    for (std::thread &worker : workers_)
        worker.join();
}

void
ThreadPool::submit(std::function<void()> task)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        queues_[nextQueue_].push_back(std::move(task));
        nextQueue_ = (nextQueue_ + 1) % queues_.size();
        ++pending_;
    }
    workCv_.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mutex_);
    idleCv_.wait(lock, [this] { return pending_ == 0; });
    if (error_) {
        std::exception_ptr error = std::exchange(error_, nullptr);
        lock.unlock();
        std::rethrow_exception(error);
    }
}

void
ThreadPool::workerLoop(std::size_t self)
{
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
        std::function<void()> task;
        if (!queues_[self].empty()) {
            // Own work first, oldest first.
            task = std::move(queues_[self].front());
            queues_[self].pop_front();
        } else {
            // Steal the newest task off the back of another deque.
            for (std::size_t k = 1; k < queues_.size() && !task; ++k) {
                auto &victim = queues_[(self + k) % queues_.size()];
                if (!victim.empty()) {
                    task = std::move(victim.back());
                    victim.pop_back();
                }
            }
        }

        if (task) {
            lock.unlock();
            std::exception_ptr raised;
            try {
                task();
            } catch (...) {
                raised = std::current_exception();
            }
            lock.lock();
            if (raised && !error_)
                error_ = raised;
            --pending_;
            if (pending_ == 0)
                idleCv_.notify_all();
            continue;
        }

        if (stop_)
            return;
        workCv_.wait(lock);
    }
}

} // namespace tempo
