/**
 * @file
 * The discrete-event scheduler: a bucketed calendar queue (timing
 * wheel) with an overflow tier for far-future events.
 *
 * Every timed interaction in the simulator — core issue slots, page table
 * walk steps, memory controller wakeups, DRAM command completions — is an
 * event on one global queue. Events at the same cycle execute in FIFO
 * insertion order, which keeps the simulation deterministic.
 *
 * Design (see docs/MODEL.md "Scheduler internals"):
 *  - Events within kWheelSlots cycles of now() live in a wheel of
 *    per-cycle FIFO buckets indexed by `when % kWheelSlots`; a two-level
 *    bitmap finds the next occupied slot in a handful of word scans.
 *  - Far-future events sit in a binary-heap overflow tier ordered by
 *    (when, seq) and are promoted into the wheel whenever now() advances,
 *    before any later insertion can target the same cycle — so global
 *    (when, insertion-seq) order is preserved exactly, bit-identical to
 *    a single ordered heap.
 *  - Event storage is allocation-free on the hot path: intrusive nodes
 *    with inline callback storage (InlineFunction), recycled through a
 *    freelist backed by a chunked arena.
 */

#ifndef TEMPO_COMMON_EVENT_QUEUE_HH
#define TEMPO_COMMON_EVENT_QUEUE_HH

#include <algorithm>
#include <bit>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/inline_function.hh"
#include "common/log.hh"
#include "common/types.hh"
#include "common/watchdog.hh"

namespace tempo {

/**
 * Time-ordered queue of callbacks. schedule() may be called from inside a
 * running callback (including for the current cycle).
 */
class EventQueue
{
  public:
    /** Inline capture capacity: sized so every hot-path event in the
     * simulator (issue slots, walk steps, MC kicks, completion slots,
     * and submit wrappers carrying a MemRequest) stays in the node. */
    static constexpr std::size_t kInlineBytes = 120;

    using Callback = InlineFunction<void(), kInlineBytes>;

    /** Wheel horizon in cycles. Most events are scheduled at most a few
     * hundred cycles out (≤ tRC plus queueing); anything further goes to
     * the overflow tier. Power of two for mask indexing. */
    static constexpr std::size_t kWheelSlots = 1024;

    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulation time. Monotonically non-decreasing. */
    Cycle now() const { return now_; }

    /** Schedule @p cb to run at absolute time @p when (>= now()). */
    void
    schedule(Cycle when, Callback cb)
    {
        TEMPO_ASSERT(when >= now_, "scheduling event in the past: ", when,
                     " < ", now_);
        Node *node = acquire();
        node->when = when;
        node->seq = seq_++;
        node->next = nullptr;
        node->cb = std::move(cb);
        if (when - now_ < kWheelSlots)
            appendToWheel(node);
        else
            pushOverflow(node);
    }

    /** Schedule @p cb to run @p delta cycles from now. */
    void
    scheduleIn(Cycle delta, Callback cb)
    {
        schedule(now_ + delta, std::move(cb));
    }

    /** True when no events remain. */
    bool empty() const { return wheelCount_ == 0 && overflow_.empty(); }

    /** Number of pending events. */
    std::size_t pending() const { return wheelCount_ + overflow_.size(); }

    /** Time of the next event; invalid to call when empty. */
    Cycle
    nextTime() const
    {
        TEMPO_ASSERT(!empty(), "nextTime on empty queue");
        if (wheelCount_ == 0)
            return overflow_.front()->when;
        return nextWheelTime();
    }

    /** Run one event. Returns false if the queue was empty. */
    bool
    step()
    {
        if (empty())
            return false;
        advanceTo(nextTime());

        Bucket &bucket = buckets_[now_ & kMask];
        Node *node = bucket.head;
        bucket.head = node->next;
        if (bucket.head == nullptr) {
            bucket.tail = nullptr;
            clearBit(now_ & kMask);
        }
        --wheelCount_;

        node->cb();
        ++executed_;
        release(node);
        return true;
    }

    /** Run until the queue drains. Polls the per-thread watchdog so a
     * runaway simulation can be cancelled by wall-clock deadline (the
     * disarmed fast path is a thread-local decrement). */
    void
    runAll()
    {
        while (step())
            watchdog::poll();
    }

    /** Run all events with time <= @p until; advances now() to @p until. */
    void
    runUntil(Cycle until)
    {
        while (!empty() && nextTime() <= until)
            step();
        if (now_ < until)
            advanceTo(until);
    }

    /** Total number of events executed (for diagnostics). */
    std::uint64_t executed() const { return executed_; }

  private:
    static constexpr Cycle kMask = kWheelSlots - 1;
    static constexpr std::size_t kWords = kWheelSlots / 64;
    static constexpr std::size_t kChunkNodes = 256;

    struct Node {
        Cycle when;
        std::uint64_t seq;
        Node *next;
        Callback cb;
    };

    struct Bucket {
        Node *head = nullptr;
        Node *tail = nullptr;
    };

    /** Pops min-(when, seq) first. */
    static bool
    overflowAfter(const Node *a, const Node *b)
    {
        if (a->when != b->when)
            return a->when > b->when;
        return a->seq > b->seq;
    }

    Node *
    acquire()
    {
        if (free_ == nullptr)
            grow();
        Node *node = free_;
        free_ = node->next;
        return node;
    }

    void
    release(Node *node)
    {
        node->cb.reset();
        node->next = free_;
        free_ = node;
    }

    void
    grow()
    {
        chunks_.push_back(std::make_unique<Node[]>(kChunkNodes));
        Node *chunk = chunks_.back().get();
        for (std::size_t i = 0; i < kChunkNodes; ++i) {
            chunk[i].next = free_;
            free_ = &chunk[i];
        }
    }

    void
    appendToWheel(Node *node)
    {
        Bucket &bucket = buckets_[node->when & kMask];
        if (bucket.tail == nullptr) {
            bucket.head = node;
            setBit(node->when & kMask);
        } else {
            bucket.tail->next = node;
        }
        bucket.tail = node;
        ++wheelCount_;
    }

    void
    pushOverflow(Node *node)
    {
        overflow_.push_back(node);
        std::push_heap(overflow_.begin(), overflow_.end(), overflowAfter);
    }

    /**
     * Move now() to @p t and pull newly in-horizon overflow events into
     * the wheel. Promotion happens on every advance, before any later
     * schedule() can insert directly at the same cycle, so same-cycle
     * FIFO order (global seq order) survives the tier crossing.
     */
    void
    advanceTo(Cycle t)
    {
        now_ = t;
        while (!overflow_.empty()
               && overflow_.front()->when - now_ < kWheelSlots) {
            std::pop_heap(overflow_.begin(), overflow_.end(),
                          overflowAfter);
            Node *node = overflow_.back();
            overflow_.pop_back();
            node->next = nullptr;
            appendToWheel(node);
        }
    }

    void setBit(std::size_t idx) { occupied_[idx / 64] |= 1ull << (idx % 64); }
    void
    clearBit(std::size_t idx)
    {
        occupied_[idx / 64] &= ~(1ull << (idx % 64));
    }

    /** Earliest event time in the wheel; wheelCount_ must be > 0. All
     * wheel events lie in [now_, now_ + kWheelSlots), so the first
     * occupied slot at circular distance d from now_ holds time
     * now_ + d. */
    Cycle
    nextWheelTime() const
    {
        const std::size_t start = now_ & kMask;
        std::size_t word = start / 64;
        std::uint64_t bits = occupied_[word] >> (start % 64);
        if (bits != 0)
            return now_ + std::countr_zero(bits);
        // Full words after the start word, wrapping once around; the
        // final iteration revisits the start word, whose remaining set
        // bits (if any) are all below start%64 — the partial scan above
        // would have caught the rest.
        std::size_t dist = 64 - start % 64;
        for (std::size_t i = 1; i <= kWords; ++i) {
            word = (start / 64 + i) % kWords;
            if (occupied_[word] != 0)
                return now_ + dist + std::countr_zero(occupied_[word]);
            dist += 64;
        }
        TEMPO_PANIC("wheelCount_ > 0 but no occupied slot");
    }

    Bucket buckets_[kWheelSlots];
    std::uint64_t occupied_[kWords] = {};
    std::size_t wheelCount_ = 0;
    std::vector<Node *> overflow_;

    std::vector<std::unique_ptr<Node[]>> chunks_;
    Node *free_ = nullptr;

    Cycle now_ = 0;
    std::uint64_t seq_ = 0;
    std::uint64_t executed_ = 0;
};

} // namespace tempo

#endif // TEMPO_COMMON_EVENT_QUEUE_HH
