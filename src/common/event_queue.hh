/**
 * @file
 * A minimal discrete-event scheduler.
 *
 * Every timed interaction in the simulator — core issue slots, page table
 * walk steps, memory controller wakeups, DRAM command completions — is an
 * event on one global queue. Events at the same cycle execute in FIFO
 * insertion order, which keeps the simulation deterministic.
 */

#ifndef TEMPO_COMMON_EVENT_QUEUE_HH
#define TEMPO_COMMON_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/log.hh"
#include "common/types.hh"

namespace tempo {

/**
 * Time-ordered queue of callbacks. schedule() may be called from inside a
 * running callback (including for the current cycle).
 */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    /** Current simulation time. Monotonically non-decreasing. */
    Cycle now() const { return now_; }

    /** Schedule @p cb to run at absolute time @p when (>= now()). */
    void
    schedule(Cycle when, Callback cb)
    {
        TEMPO_ASSERT(when >= now_, "scheduling event in the past: ", when,
                     " < ", now_);
        queue_.push(Event{when, seq_++, std::move(cb)});
    }

    /** Schedule @p cb to run @p delta cycles from now. */
    void
    scheduleIn(Cycle delta, Callback cb)
    {
        schedule(now_ + delta, std::move(cb));
    }

    /** True when no events remain. */
    bool empty() const { return queue_.empty(); }

    /** Number of pending events. */
    std::size_t pending() const { return queue_.size(); }

    /** Time of the next event; invalid to call when empty. */
    Cycle
    nextTime() const
    {
        TEMPO_ASSERT(!queue_.empty(), "nextTime on empty queue");
        return queue_.top().when;
    }

    /** Run one event. Returns false if the queue was empty. */
    bool
    step()
    {
        if (queue_.empty())
            return false;
        // Moving out of a priority_queue top requires a const_cast; the
        // element is popped immediately after so this is safe.
        Event ev = std::move(const_cast<Event &>(queue_.top()));
        queue_.pop();
        now_ = ev.when;
        ev.cb();
        ++executed_;
        return true;
    }

    /** Run until the queue drains. */
    void
    runAll()
    {
        while (step()) {
        }
    }

    /** Run all events with time <= @p until; advances now() to @p until. */
    void
    runUntil(Cycle until)
    {
        while (!queue_.empty() && queue_.top().when <= until)
            step();
        if (now_ < until)
            now_ = until;
    }

    /** Total number of events executed (for diagnostics). */
    std::uint64_t executed() const { return executed_; }

  private:
    struct Event {
        Cycle when;
        std::uint64_t seq;
        Callback cb;

        bool
        operator>(const Event &other) const
        {
            if (when != other.when)
                return when > other.when;
            return seq > other.seq;
        }
    };

    std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
    Cycle now_ = 0;
    std::uint64_t seq_ = 0;
    std::uint64_t executed_ = 0;
};

} // namespace tempo

#endif // TEMPO_COMMON_EVENT_QUEUE_HH
