#include "common/profiler.hh"

namespace tempo::prof {

namespace detail {

std::atomic<bool> globallyEnabled{false};

ThreadState &
state()
{
    static thread_local ThreadState st;
    return st;
}

} // namespace detail

void
setEnabled(bool on)
{
    detail::globallyEnabled.store(on, std::memory_order_relaxed);
}

bool
enabled()
{
    return detail::globallyEnabled.load(std::memory_order_relaxed);
}

void
beginWindow()
{
    detail::ThreadState &st = detail::state();
    st.totals = Totals{};
    st.current = Component::Scheduler;
    st.stamp = detail::clockNs();
    st.active = true;
}

Totals
endWindow()
{
    detail::ThreadState &st = detail::state();
    if (!st.active)
        return Totals{};
    detail::switchTo(st, Component::Scheduler);
    st.active = false;
    return st.totals;
}

} // namespace tempo::prof
