#include "common/watchdog.hh"

#include <chrono>
#include <limits>
#include <sstream>

namespace tempo::watchdog {

namespace {

using Clock = std::chrono::steady_clock;

std::string
describe(double budget_seconds)
{
    std::ostringstream os;
    os << "point exceeded its wall-clock budget of " << budget_seconds
       << "s";
    return os.str();
}

thread_local bool armedFlag = false;
thread_local Clock::time_point deadline{};
thread_local double budgetSeconds = 0;

} // namespace

namespace detail {

thread_local std::uint32_t countdown = kPollStride;

void
slowPoll()
{
    countdown = kPollStride;
    if (armedFlag && Clock::now() >= deadline) {
        const double budget = budgetSeconds;
        disarm();
        throw PointTimedOut(budget);
    }
}

} // namespace detail

PointTimedOut::PointTimedOut(double budget_seconds)
    : std::runtime_error(describe(budget_seconds)),
      budgetSeconds_(budget_seconds)
{
}

void
arm(double budget_seconds)
{
    if (budget_seconds <= 0) {
        disarm();
        return;
    }
    armedFlag = true;
    budgetSeconds = budget_seconds;
    deadline = Clock::now()
        + std::chrono::duration_cast<Clock::duration>(
            std::chrono::duration<double>(budget_seconds));
    detail::countdown = detail::kPollStride;
}

void
disarm()
{
    armedFlag = false;
    detail::countdown = detail::kPollStride;
}

bool
armed()
{
    return armedFlag;
}

} // namespace tempo::watchdog
