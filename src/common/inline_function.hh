/**
 * @file
 * InlineFunction: a move-only callable wrapper with small-buffer
 * storage, sized by the caller.
 *
 * std::function heap-allocates any capture larger than two pointers,
 * which made every scheduled event, MSHR waiter, and memory-request
 * completion in the simulator a malloc/free pair. InlineFunction stores
 * the callable inside the wrapper up to a caller-chosen capacity —
 * large enough for the simulator's hot-path captures — and falls back
 * to the heap only for oversized or over-aligned callables, so
 * correctness never depends on the capture fitting.
 */

#ifndef TEMPO_COMMON_INLINE_FUNCTION_HH
#define TEMPO_COMMON_INLINE_FUNCTION_HH

#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace tempo {

template <typename Signature, std::size_t Capacity>
class InlineFunction;

template <typename R, typename... Args, std::size_t Capacity>
class InlineFunction<R(Args...), Capacity>
{
    static_assert(Capacity >= sizeof(void *),
                  "capacity must hold at least the heap-fallback pointer");

  public:
    InlineFunction() noexcept = default;

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, InlineFunction>
                  && std::is_invocable_r_v<R, std::decay_t<F> &, Args...>>>
    InlineFunction(F &&fn)
    {
        emplace(std::forward<F>(fn));
    }

    InlineFunction(InlineFunction &&other) noexcept { moveFrom(other); }

    InlineFunction &
    operator=(InlineFunction &&other) noexcept
    {
        if (this != &other) {
            reset();
            moveFrom(other);
        }
        return *this;
    }

    InlineFunction(const InlineFunction &) = delete;
    InlineFunction &operator=(const InlineFunction &) = delete;

    ~InlineFunction() { reset(); }

    explicit operator bool() const noexcept { return ops_ != nullptr; }

    R
    operator()(Args... args)
    {
        return ops_->invoke(buf_, std::forward<Args>(args)...);
    }

    /** Destroy the held callable (no-op when empty). */
    void
    reset() noexcept
    {
        if (ops_) {
            ops_->destroy(buf_);
            ops_ = nullptr;
        }
    }

    /** True when the callable lives in the inline buffer (not heap). */
    bool inlineStored() const noexcept { return ops_ && ops_->isInline; }

  private:
    struct Ops {
        R (*invoke)(void *, Args &&...);
        void (*relocate)(void *dst, void *src) noexcept;
        void (*destroy)(void *) noexcept;
        bool isInline;
    };

    template <typename Fn>
    static constexpr bool storedInline =
        sizeof(Fn) <= Capacity && alignof(Fn) <= alignof(std::max_align_t)
        && std::is_nothrow_move_constructible_v<Fn>;

    template <typename Fn>
    struct InlineModel {
        static R
        invoke(void *p, Args &&...args)
        {
            return static_cast<R>(
                (*static_cast<Fn *>(p))(std::forward<Args>(args)...));
        }
        static void
        relocate(void *dst, void *src) noexcept
        {
            ::new (dst) Fn(std::move(*static_cast<Fn *>(src)));
            static_cast<Fn *>(src)->~Fn();
        }
        static void
        destroy(void *p) noexcept
        {
            static_cast<Fn *>(p)->~Fn();
        }
        static constexpr Ops ops{&invoke, &relocate, &destroy, true};
    };

    template <typename Fn>
    struct HeapModel {
        static Fn *
        held(void *p) noexcept
        {
            Fn *fn;
            std::memcpy(&fn, p, sizeof(fn));
            return fn;
        }
        static R
        invoke(void *p, Args &&...args)
        {
            return static_cast<R>(
                (*held(p))(std::forward<Args>(args)...));
        }
        static void
        relocate(void *dst, void *src) noexcept
        {
            std::memcpy(dst, src, sizeof(Fn *));
        }
        static void
        destroy(void *p) noexcept
        {
            delete held(p);
        }
        static constexpr Ops ops{&invoke, &relocate, &destroy, false};
    };

    template <typename F>
    void
    emplace(F &&fn)
    {
        using Fn = std::decay_t<F>;
        if constexpr (storedInline<Fn>) {
            ::new (static_cast<void *>(buf_)) Fn(std::forward<F>(fn));
            ops_ = &InlineModel<Fn>::ops;
        } else {
            Fn *heap = new Fn(std::forward<F>(fn));
            std::memcpy(buf_, &heap, sizeof(heap));
            ops_ = &HeapModel<Fn>::ops;
        }
    }

    void
    moveFrom(InlineFunction &other) noexcept
    {
        ops_ = other.ops_;
        if (ops_) {
            ops_->relocate(buf_, other.buf_);
            other.ops_ = nullptr;
        }
    }

    const Ops *ops_ = nullptr;
    alignas(std::max_align_t) unsigned char buf_[Capacity];
};

} // namespace tempo

#endif // TEMPO_COMMON_INLINE_FUNCTION_HH
