/**
 * @file
 * HeapEventQueue: the simulator's original binary-heap event scheduler,
 * retained as a reference implementation.
 *
 * Semantics are identical to EventQueue — global (when, insertion-seq)
 * execution order, FIFO for same-cycle events — but storage is a binary
 * heap of std::function callbacks, which heap-allocates every capture
 * larger than two pointers. It exists for two consumers:
 *
 *  - the randomized differential tests in tests/event_queue_test.cpp,
 *    which cross-check the calendar queue's execution order against it;
 *  - bench/perf_event_queue, which measures the calendar queue's
 *    events/sec against this baseline.
 *
 * Production code must use EventQueue.
 */

#ifndef TEMPO_COMMON_HEAP_EVENT_QUEUE_HH
#define TEMPO_COMMON_HEAP_EVENT_QUEUE_HH

#include <algorithm>
#include <cstdint>
#include <functional>
#include <vector>

#include "common/log.hh"
#include "common/types.hh"

namespace tempo {

class HeapEventQueue
{
  public:
    using Callback = std::function<void()>;

    Cycle now() const { return now_; }

    void
    schedule(Cycle when, Callback cb)
    {
        TEMPO_ASSERT(when >= now_, "scheduling event in the past: ", when,
                     " < ", now_);
        heap_.push_back(Event{when, seq_++, std::move(cb)});
        std::push_heap(heap_.begin(), heap_.end(), after);
    }

    void
    scheduleIn(Cycle delta, Callback cb)
    {
        schedule(now_ + delta, std::move(cb));
    }

    bool empty() const { return heap_.empty(); }
    std::size_t pending() const { return heap_.size(); }

    Cycle
    nextTime() const
    {
        TEMPO_ASSERT(!heap_.empty(), "nextTime on empty queue");
        return heap_.front().when;
    }

    bool
    step()
    {
        if (heap_.empty())
            return false;
        std::pop_heap(heap_.begin(), heap_.end(), after);
        Event ev = std::move(heap_.back());
        heap_.pop_back();
        now_ = ev.when;
        ev.cb();
        ++executed_;
        return true;
    }

    void
    runAll()
    {
        while (step()) {
        }
    }

    void
    runUntil(Cycle until)
    {
        while (!heap_.empty() && heap_.front().when <= until)
            step();
        if (now_ < until)
            now_ = until;
    }

    std::uint64_t executed() const { return executed_; }

  private:
    struct Event {
        Cycle when;
        std::uint64_t seq;
        Callback cb;
    };

    /** Min-heap order on (when, seq). */
    static bool
    after(const Event &a, const Event &b)
    {
        if (a.when != b.when)
            return a.when > b.when;
        return a.seq > b.seq;
    }

    std::vector<Event> heap_;
    Cycle now_ = 0;
    std::uint64_t seq_ = 0;
    std::uint64_t executed_ = 0;
};

} // namespace tempo

#endif // TEMPO_COMMON_HEAP_EVENT_QUEUE_HH
