/**
 * @file
 * A lightweight built-in profiler: wall-clock self-time attribution per
 * simulator component (event scheduler, core, page-table walker, memory
 * controller, DRAM device, workload generation).
 *
 * Off by default; the CLI's --profile flag enables it globally before
 * any run starts. When disabled, every instrumentation point costs one
 * relaxed atomic load and a predictable branch. When enabled, each run
 * opens a per-thread collection window, and prof::Scope RAII markers
 * attribute elapsed time to the innermost active component — self
 * time, not inclusive time: a Dram scope inside an Mc scope bills the
 * DRAM portion to Dram only. All mutable state is thread-local, so
 * profiling is thread-safe by construction: the parallel experiment
 * engine runs each point's window on one worker thread, and a sharded
 * point opens one window per shard worker and sums them with
 * Totals::add (barrier wait bills to Scheduler).
 *
 * Profile numbers are wall-clock and therefore NOT deterministic; they
 * are reported under the "profile." prefix only when --profile is on,
 * so default runs (and the golden-stats byte-identity checks) are
 * unaffected.
 */

#ifndef TEMPO_COMMON_PROFILER_HH
#define TEMPO_COMMON_PROFILER_HH

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>

namespace tempo::prof {

/** Attribution buckets, one per major simulator component. */
enum class Component : std::uint8_t {
    Scheduler, //!< event-queue machinery + un-attributed simulator code
    Core,      //!< SimCore reference state machine (TLB, MSHRs)
    Cache,     //!< cache-hierarchy tag lookups, fills, victim handling
    Walker,    //!< page-table walk chains
    Mc,        //!< memory controller queues, scheduling, completions
    Dram,      //!< DRAM device timing
    Workload,  //!< workload generation (address stream synthesis)
};

inline constexpr std::size_t kNumComponents = 7;

inline const char *
componentName(Component c)
{
    switch (c) {
      case Component::Scheduler: return "scheduler";
      case Component::Core: return "core";
      case Component::Cache: return "cache";
      case Component::Walker: return "walker";
      case Component::Mc: return "mc";
      case Component::Dram: return "dram";
      case Component::Workload: return "workload";
    }
    return "?";
}

/** One window's accumulated self-time and entry counts. */
struct Totals {
    std::uint64_t ns[kNumComponents] = {};
    std::uint64_t calls[kNumComponents] = {};

    /** Merge another window into this one (sharded runs open one
     * window per worker thread and sum them into a point total). */
    void
    add(const Totals &other)
    {
        for (std::size_t i = 0; i < kNumComponents; ++i) {
            ns[i] += other.ns[i];
            calls[i] += other.calls[i];
        }
    }
};

/** Global opt-in; set once (e.g. from the CLI) before runs start. */
void setEnabled(bool on);
bool enabled();

/** Reset this thread's totals and start attributing. */
void beginWindow();

/** Stop attributing on this thread and return the window's totals. */
Totals endWindow();

namespace detail {

struct ThreadState {
    bool active = false;
    Component current = Component::Scheduler;
    std::uint64_t stamp = 0;
    Totals totals;
};

ThreadState &state();

extern std::atomic<bool> globallyEnabled;

inline std::uint64_t
clockNs()
{
    return static_cast<std::uint64_t>(
        std::chrono::steady_clock::now().time_since_epoch().count());
}

inline void
switchTo(ThreadState &st, Component c)
{
    const std::uint64_t t = clockNs();
    st.totals.ns[static_cast<std::size_t>(st.current)] += t - st.stamp;
    st.stamp = t;
    st.current = c;
}

} // namespace detail

/**
 * RAII attribution marker: while alive, elapsed wall time bills to
 * @p c; on destruction attribution reverts to the enclosing component.
 */
class Scope
{
  public:
    explicit Scope(Component c)
    {
        if (!detail::globallyEnabled.load(std::memory_order_relaxed))
            return;
        detail::ThreadState &st = detail::state();
        if (!st.active)
            return;
        st_ = &st;
        prev_ = st.current;
        detail::switchTo(st, c);
        ++st.totals.calls[static_cast<std::size_t>(c)];
    }

    ~Scope()
    {
        if (st_)
            detail::switchTo(*st_, prev_);
    }

    Scope(const Scope &) = delete;
    Scope &operator=(const Scope &) = delete;

  private:
    detail::ThreadState *st_ = nullptr;
    Component prev_ = Component::Scheduler;
};

} // namespace tempo::prof

#endif // TEMPO_COMMON_PROFILER_HH
