#include "common/shard.hh"

#include <algorithm>
#include <thread>

#include "common/log.hh"
#include "common/watchdog.hh"

namespace tempo {

namespace {

/** Polite busy-wait hint; epochs are microseconds apart, so workers
 * spin rather than sleep, but they should not starve hyperthread
 * siblings while doing it. */
inline void
cpuPause()
{
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#elif defined(__aarch64__)
    asm volatile("yield");
#endif
}

} // namespace

thread_local ShardEngine::Domain *ShardEngine::tlsDomain_ = nullptr;

ShardEngine::ShardEngine(Cycle quantum, unsigned workers)
    : quantum_(quantum), workers_(std::max(1u, workers))
{
    TEMPO_ASSERT(quantum_ > 0, "shard quantum must be positive");
}

DomainId
ShardEngine::addDomain(EventQueue *eq)
{
    TEMPO_ASSERT(eq, "domain needs an event queue");
    TEMPO_ASSERT(!running_, "cannot add domains while running");
    domains_.push_back(Domain{eq, {}, 0});
    return static_cast<DomainId>(domains_.size() - 1);
}

void
ShardEngine::post(DomainId dst, Cycle when, MessageFn fn)
{
    Domain *src = tlsDomain_;
    TEMPO_ASSERT(src, "post() called outside a domain slice");
    TEMPO_ASSERT(dst < domains_.size(), "bad destination domain ", dst);
    TEMPO_ASSERT(when >= src->eq->now() + quantum_,
                 "cross-domain message under the lookahead quantum: ",
                 when, " < ", src->eq->now(), " + ", quantum_);
    src->outbox.push_back(
        Message{when, src->nextSeq++, dst, std::move(fn)});
}

ShardEngine::Barrier::Barrier(unsigned parties)
    : parties_(parties),
      // With a hardware thread per worker, spin tens of microseconds
      // before the first yield — descheduling costs more than a whole
      // epoch. Oversubscribed (fewer cores than workers), spinning
      // only burns the timeslice the straggler needs, so yield almost
      // immediately.
      spinLimit_(std::thread::hardware_concurrency() >= parties
                     ? (1u << 14)
                     : 16)
{
}

void
ShardEngine::Barrier::arriveAndWait()
{
    const std::uint32_t phase = phase_.load(std::memory_order_acquire);
    if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1
        == parties_) {
        arrived_.store(0, std::memory_order_relaxed);
        phase_.store(phase + 1, std::memory_order_release);
        return;
    }
    std::uint32_t spins = 0;
    while (phase_.load(std::memory_order_acquire) == phase) {
        cpuPause();
        if (++spins >= spinLimit_) {
            std::this_thread::yield();
            spins = 0;
        }
    }
}

unsigned
ShardEngine::ownerOf(DomainId d, unsigned num_workers) const
{
    // Pure load distribution — results never depend on placement. The
    // shared domain (id 0, the heaviest) gets a dedicated worker when
    // more than one is available; app domains round-robin over the
    // rest.
    if (num_workers == 1)
        return 0;
    if (d == 0)
        return 0;
    return 1 + (d - 1) % (num_workers - 1);
}

void
ShardEngine::run()
{
    TEMPO_ASSERT(!running_, "ShardEngine::run() re-entered");
    TEMPO_ASSERT(!domains_.empty(), "no domains registered");
    running_ = true;

    // First epoch starts at the earliest pending event anywhere.
    bool any = false;
    Cycle start = 0;
    for (const Domain &d : domains_) {
        if (d.eq->empty())
            continue;
        const Cycle t = d.eq->nextTime();
        if (!any || t < start)
            start = t;
        any = true;
    }
    if (!any) {
        running_ = false;
        return;
    }
    failed_.store(false, std::memory_order_relaxed);

    // More workers than domains would only spin at the barrier.
    const unsigned num_workers = static_cast<unsigned>(std::min(
        static_cast<std::size_t>(workers_), domains_.size()));
    workerError_.assign(num_workers, nullptr);
    routeScratch_.assign(num_workers, {});
    minNext_.assign(num_workers, kNoEvent);
    routedCount_.assign(num_workers, 0);

    Barrier barrier(num_workers);
    std::vector<std::thread> threads;
    threads.reserve(num_workers - 1);
    for (unsigned w = 1; w < num_workers; ++w) {
        threads.emplace_back([this, w, num_workers, start, &barrier] {
            workerLoop(w, num_workers, start, barrier);
        });
    }
    workerLoop(0, num_workers, start, barrier);
    for (std::thread &t : threads)
        t.join();
    running_ = false;

    for (const std::uint64_t count : routedCount_)
        stats_.messages += count;
    for (const std::exception_ptr &err : workerError_) {
        if (err)
            std::rethrow_exception(err);
    }
}

void
ShardEngine::workerLoop(unsigned worker, unsigned num_workers,
                        Cycle epoch_start, Barrier &barrier)
{
    const bool profile = collectProfile && prof::enabled();
    if (profile)
        prof::beginWindow();

    while (true) {
        if (!failed_.load(std::memory_order_relaxed)) {
            try {
                // Run this worker's domains through
                // [epoch_start, epoch_start + quantum): runUntil is
                // inclusive, so stop one cycle short. Domains with no
                // event inside the window are skipped without touching
                // their clocks — events execute at their own
                // timestamps, so a lagging idle clock is unobservable.
                const Cycle until = epoch_start + quantum_ - 1;
                for (DomainId d = 0; d < domains_.size(); ++d) {
                    if (ownerOf(d, num_workers) != worker)
                        continue;
                    Domain &dom = domains_[d];
                    // The previous routing phase consumed every
                    // outbox; reclaim the storage before refilling.
                    dom.outbox.clear();
                    if (dom.eq->empty() || dom.eq->nextTime() > until)
                        continue;
                    if (onEnterDomain)
                        onEnterDomain(d);
                    tlsDomain_ = &dom;
                    dom.eq->runUntil(until);
                }
                tlsDomain_ = nullptr;
            } catch (...) {
                tlsDomain_ = nullptr;
                workerError_[worker] = std::current_exception();
                failed_.store(true, std::memory_order_release);
            }
        }
        barrier.arriveAndWait();
        // Routing phase: every worker delivers the messages bound for
        // its own domains and publishes their min next-event time.
        if (!failed_.load(std::memory_order_relaxed)) {
            try {
                if (worker == 0)
                    watchdog::poll();
                routeFor(worker, num_workers);
            } catch (...) {
                if (!workerError_[worker])
                    workerError_[worker] = std::current_exception();
                failed_.store(true, std::memory_order_release);
            }
        }
        barrier.arriveAndWait();
        if (failed_.load(std::memory_order_acquire))
            break;
        // Distributed epoch advance: fold every worker's published
        // min. All workers compute the identical value, so the epoch
        // window needs no shared mutable state.
        Cycle next = kNoEvent;
        for (unsigned w = 0; w < num_workers; ++w)
            next = std::min(next, minNext_[w]);
        if (next == kNoEvent)
            break;
        epoch_start = next;
        if (worker == 0)
            ++stats_.epochs;
    }

    if (profile) {
        const prof::Totals totals = prof::endWindow();
        std::lock_guard<std::mutex> lock(profMutex_);
        profTotals_.add(totals);
    }
}

void
ShardEngine::routeFor(unsigned worker, unsigned num_workers)
{
    // Canonical per-destination message order: walk the outboxes in
    // domain-id order (entries within one outbox are already in
    // per-source generation order) and stable-sort by delivery time,
    // yielding (when, srcDomain, srcSeq) — a pure function of the
    // simulation state, independent of worker count. Outboxes are
    // read-shared here; only the fn of a message this worker owns is
    // moved, so workers never write the same bytes.
    std::vector<Message *> &scratch = routeScratch_[worker];
    scratch.clear();
    for (Domain &src : domains_) {
        for (Message &m : src.outbox) {
            if (ownerOf(m.dst, num_workers) == worker)
                scratch.push_back(&m);
        }
    }
    std::stable_sort(scratch.begin(), scratch.end(),
                     [](const Message *a, const Message *b) {
                         return a->when < b->when;
                     });
    routedCount_[worker] += scratch.size();
    for (Message *m : scratch)
        domains_[m->dst].eq->schedule(m->when, std::move(m->fn));
    scratch.clear();

    Cycle min_next = kNoEvent;
    for (DomainId d = 0; d < domains_.size(); ++d) {
        if (ownerOf(d, num_workers) != worker)
            continue;
        if (!domains_[d].eq->empty())
            min_next = std::min(min_next, domains_[d].eq->nextTime());
    }
    minNext_[worker] = min_next;
}

} // namespace tempo
