/**
 * @file
 * A small work-stealing thread pool for the experiment engine.
 *
 * Each worker owns a deque: it pops its own work from the front and,
 * when empty, steals from the back of the other workers' deques. Tasks
 * are full simulation points (seconds of work each), so contention on
 * the single pool mutex is irrelevant; what matters is that idle
 * workers drain whichever queue still has work, keeping all cores busy
 * through the uneven tail of a sweep.
 *
 * Determinism contract: the pool never hands tasks any shared mutable
 * state, so a task set whose tasks are independent (each simulation
 * point constructs its own system and RNG from an explicit seed)
 * produces bit-identical results regardless of thread count or
 * scheduling order. parallelFor() writes results by index, never by
 * completion order.
 *
 * Fault handling: the pool itself only offers fail-fast semantics —
 * wait() rethrows the first task exception after every task has run.
 * Per-point fault isolation (capturing a failure into the point's own
 * result instead of aborting the sweep) lives one layer up, in
 * core/experiment's exception barrier; tasks submitted through the
 * engine never leak exceptions into wait().
 */

#ifndef TEMPO_COMMON_THREAD_POOL_HH
#define TEMPO_COMMON_THREAD_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace tempo {

class ThreadPool
{
  public:
    /** @p num_threads 0 selects defaultThreads(). */
    explicit ThreadPool(unsigned num_threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueue a task (round-robin across worker deques). */
    void submit(std::function<void()> task);

    /**
     * Block until every submitted task has finished. Rethrows the
     * first exception a task raised, if any (remaining tasks still run
     * to completion first).
     */
    void wait();

    unsigned numThreads() const
    {
        return static_cast<unsigned>(workers_.size());
    }

    /** TEMPO_JOBS env var if set and positive, else all hardware
     * threads (at least 1). */
    static unsigned defaultThreads();

  private:
    void workerLoop(std::size_t self);

    // All pool state shares one mutex: tasks are coarse (whole
    // simulation points), so per-queue locks would buy nothing.
    std::mutex mutex_;
    std::condition_variable workCv_; //!< wakes workers
    std::condition_variable idleCv_; //!< wakes wait()
    std::vector<std::deque<std::function<void()>>> queues_;
    std::vector<std::thread> workers_;
    std::size_t nextQueue_ = 0; //!< round-robin submit cursor
    std::size_t pending_ = 0;   //!< submitted, not yet finished
    bool stop_ = false;
    std::exception_ptr error_;
};

/**
 * Run fn(0) .. fn(n-1) on @p jobs threads (0 = defaultThreads) and
 * block until all complete. The callable must only touch state owned
 * by its own index.
 */
template <typename Fn>
void
parallelFor(std::size_t n, unsigned jobs, Fn &&fn)
{
    ThreadPool pool(jobs);
    for (std::size_t i = 0; i < n; ++i)
        pool.submit([&fn, i] { fn(i); });
    pool.wait();
}

} // namespace tempo

#endif // TEMPO_COMMON_THREAD_POOL_HH
