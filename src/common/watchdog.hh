/**
 * @file
 * A per-thread wall-clock watchdog for runaway simulation points.
 *
 * The experiment engine runs each (workload, config) point wholly on
 * one worker thread, so a point that spins forever would otherwise
 * occupy its worker until the process is killed — and take every
 * completed point's results with it. The engine arms this watchdog
 * before an attempt and the event loop polls it; when the deadline
 * passes, poll() throws PointTimedOut, which unwinds the attempt
 * through the engine's exception barrier and frees the worker. Nothing
 * outside the timed-out point is disturbed.
 *
 * poll() is called once per executed event, so its fast path must be
 * nearly free: a thread-local counter decrement. Only every
 * kPollStride-th call touches the clock. All state is thread-local —
 * arming on one thread never affects another, matching the engine's
 * one-point-per-worker execution model.
 */

#ifndef TEMPO_COMMON_WATCHDOG_HH
#define TEMPO_COMMON_WATCHDOG_HH

#include <cstdint>
#include <stdexcept>

namespace tempo::watchdog {

/** Thrown from poll() when the armed deadline has passed. */
class PointTimedOut : public std::runtime_error
{
  public:
    explicit PointTimedOut(double budget_seconds);

    /** The budget that was exceeded, as passed to arm(). */
    double budgetSeconds() const { return budgetSeconds_; }

  private:
    double budgetSeconds_;
};

namespace detail {

/** Clock checks happen every this many poll() calls; between checks
 * the cost is one thread-local decrement and branch. */
inline constexpr std::uint32_t kPollStride = 8192;

extern thread_local std::uint32_t countdown;

/** Checks the deadline (or, when disarmed, just rewinds the counter). */
void slowPoll();

} // namespace detail

/**
 * Arm the calling thread's watchdog: poll() on this thread throws
 * PointTimedOut once @p budget_seconds of wall-clock time elapse.
 * Budgets <= 0 disarm instead.
 */
void arm(double budget_seconds);

/** Disarm the calling thread's watchdog. Idempotent. */
void disarm();

/** True when the calling thread has an armed deadline. */
bool armed();

/** Cheap cancellation point; sprinkled into the simulation main loop. */
inline void
poll()
{
    if (--detail::countdown == 0)
        detail::slowPoll();
}

} // namespace tempo::watchdog

#endif // TEMPO_COMMON_WATCHDOG_HH
