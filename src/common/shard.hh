/**
 * @file
 * ShardEngine: deterministic multi-domain event execution for one
 * simulation point.
 *
 * A sharded point partitions the machine into event-queue *domains* —
 * one per application (core + TLB + MMU caches + walker + private
 * caches + its own physical-memory partition) plus one shared-machine
 * domain (LLC + MC + DRAM + BLISS + TEMPO engine). Each domain owns a
 * calendar queue (common/event_queue.hh) and runs conservatively in
 * epochs of a fixed quantum Q, the minimum cross-domain latency (the
 * private-miss -> LLC port hop). Because every cross-domain message
 * carries at least Q cycles of latency, events inside the epoch window
 * [T, T+Q) can never be affected by a message generated in the same
 * epoch — the classic conservative-PDES lookahead argument — so the
 * domains execute their windows in parallel without ever seeing an
 * event out of order.
 *
 * Messages generated during an epoch collect in per-domain outboxes.
 * At the barrier every worker routes, in parallel, the messages bound
 * for ITS OWN domains in canonical (when, srcDomain, srcSeq) order:
 * it walks all outboxes in domain-id order (which fixes srcDomain and
 * srcSeq for equal timestamps), keeps the messages it owns, and
 * stable-sorts them by delivery time before insertion. Per-destination
 * delivery order is therefore a pure function of the simulation state,
 * never of thread scheduling or worker count, so results are
 * bit-identical at ANY worker count — one worker is the differential
 * oracle for eight. The next epoch start is a distributed reduction:
 * each worker publishes the min next-event time of its domains and
 * every worker independently folds the published values.
 *
 * Worker threads are dedicated to the engine for the duration of
 * run(). They deliberately do NOT run as tasks on the shared
 * work-stealing ThreadPool: an epoch is a few microseconds of work, so
 * per-epoch task dispatch would dominate, and barrier-waiting tasks
 * could deadlock a pool smaller than the shard count. A sense-counting
 * spin barrier (with yield backoff) keeps the epoch handoff in the
 * tens-of-nanoseconds range. The point-level watchdog stays on the
 * calling thread, polled once per epoch.
 */

#ifndef TEMPO_COMMON_SHARD_HH
#define TEMPO_COMMON_SHARD_HH

#include <atomic>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <vector>

#include "common/event_queue.hh"
#include "common/profiler.hh"
#include "common/types.hh"

namespace tempo {

/** Index of one event-queue domain within a ShardEngine. */
using DomainId = std::uint32_t;

class ShardEngine
{
  public:
    /** Deterministic engine counters (profiling the sharded run). */
    struct Stats {
        std::uint64_t epochs = 0;   //!< barrier rounds executed
        std::uint64_t messages = 0; //!< cross-domain messages routed
    };

    /** Deferred cross-domain work; runs as an event on the target
     * domain's queue at its delivery time. The 120-byte inline budget
     * matches EventQueue::Callback so routing moves the callable
     * without re-wrapping; oversized captures (a full MemRequest plus
     * its reply continuation) fall back to the heap. */
    using MessageFn = EventQueue::Callback;

    /**
     * @param quantum  epoch length = minimum cross-domain latency; every
     *                 post() must be at least this far in the future.
     * @param workers  threads that drive the domains (>= 1). The result
     *                 is bit-identical for every value; 1 keeps
     *                 everything on the calling thread.
     */
    ShardEngine(Cycle quantum, unsigned workers);

    ShardEngine(const ShardEngine &) = delete;
    ShardEngine &operator=(const ShardEngine &) = delete;

    /** Register a domain before run(). The engine never owns the
     * queue; it must outlive the engine's run(). Returns the domain's
     * id — ids are assigned densely in registration order. */
    DomainId addDomain(EventQueue *eq);

    /**
     * Post a cross-domain message from the currently-executing domain
     * (run() must be active on this thread) to @p dst, delivered at
     * absolute cycle @p when. Requires when >= sender now + quantum —
     * the lookahead contract that makes epochs safe.
     */
    void post(DomainId dst, Cycle when, MessageFn fn);

    /**
     * Invoked on the owning worker thread every time it is about to
     * execute a domain's slice of an epoch. Used to swap thread-local
     * observability/profiling context per domain.
     */
    std::function<void(DomainId)> onEnterDomain;

    /** Drive all domains to completion (every queue empty). Exceptions
     * thrown inside a domain (asserts, injected faults) or by the
     * watchdog abort the run and rethrow on the calling thread. */
    void run();

    Cycle quantum() const { return quantum_; }
    unsigned workers() const { return workers_; }
    std::size_t numDomains() const { return domains_.size(); }
    const Stats &stats() const { return stats_; }

    /** Collect per-worker profiler windows during run() (see
     * common/profiler.hh); totals from all workers are summed here.
     * Barrier wait bills to Scheduler — honest synchronization cost. */
    bool collectProfile = false;
    const prof::Totals &profTotals() const { return profTotals_; }

  private:
    struct Message {
        Cycle when;
        std::uint64_t seq; //!< per-source sequence (generation order)
        DomainId dst;
        MessageFn fn;
    };

    struct Domain {
        EventQueue *eq = nullptr;
        std::vector<Message> outbox;
        std::uint64_t nextSeq = 0;
    };

    /** Sense-counting spin barrier; parties fixed per run(). On a
     * machine with enough hardware threads it spins (a straggler is at
     * most one epoch slice away, and descheduling costs more than the
     * whole epoch); oversubscribed, it yields almost immediately so
     * the other workers can reach the barrier at all. */
    class Barrier
    {
      public:
        explicit Barrier(unsigned parties);
        void arriveAndWait();

      private:
        unsigned parties_;
        std::uint32_t spinLimit_;
        std::atomic<std::uint32_t> arrived_{0};
        std::atomic<std::uint32_t> phase_{0};
    };

    /** Load-distribution map from domain to the worker that drives it;
     * results never depend on it. */
    unsigned ownerOf(DomainId d, unsigned num_workers) const;
    /** One worker's epoch loop (worker 0 = the calling thread). */
    void workerLoop(unsigned worker, unsigned num_workers,
                    Cycle epoch_start, Barrier &barrier);
    /** Parallel routing phase: deliver the messages bound for this
     * worker's domains and publish their min next-event time. */
    void routeFor(unsigned worker, unsigned num_workers);

    Cycle quantum_;
    unsigned workers_;
    std::vector<Domain> domains_;
    /** Per-worker routing scratch (message pointers into outboxes). */
    std::vector<std::vector<Message *>> routeScratch_;
    /** Per-worker min next-event time after routing (kNoEvent = none);
     * written by its worker between the barriers, read by every worker
     * after the second barrier for the distributed epoch advance. */
    std::vector<Cycle> minNext_;
    /** Per-worker routed-message counters, summed into stats_. */
    std::vector<std::uint64_t> routedCount_;

    static constexpr Cycle kNoEvent = ~Cycle{0};

    std::atomic<bool> failed_{false};
    std::vector<std::exception_ptr> workerError_;

    Stats stats_;
    prof::Totals profTotals_;
    std::mutex profMutex_;

    //! Currently-executing domain on this thread (message source).
    static thread_local Domain *tlsDomain_;

    bool running_ = false;
};

} // namespace tempo

#endif // TEMPO_COMMON_SHARD_HH
