/**
 * @file
 * Error-reporting helpers in the spirit of gem5's logging.hh.
 *
 * panic()  — an internal invariant was violated: a simulator bug. Aborts.
 * fatal()  — the configuration or input is unusable: a user error. Exits.
 * warn()   — something is suspicious but simulation can continue.
 */

#ifndef TEMPO_COMMON_LOG_HH
#define TEMPO_COMMON_LOG_HH

#include <sstream>
#include <string>

namespace tempo {

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const char *file, int line, const std::string &msg);

namespace detail {

inline std::string
formatMessage()
{
    return {};
}

template <typename First, typename... Rest>
std::string
formatMessage(const First &first, const Rest &...rest)
{
    std::ostringstream os;
    os << first;
    return os.str() + formatMessage(rest...);
}

} // namespace detail
} // namespace tempo

/** Abort with a message: an invariant the simulator itself must uphold
 * was violated. */
#define TEMPO_PANIC(...)                                                   \
    ::tempo::panicImpl(__FILE__, __LINE__,                                 \
                       ::tempo::detail::formatMessage(__VA_ARGS__))

/** Exit with a message: the user supplied an impossible configuration. */
#define TEMPO_FATAL(...)                                                   \
    ::tempo::fatalImpl(__FILE__, __LINE__,                                 \
                       ::tempo::detail::formatMessage(__VA_ARGS__))

/** Print a warning and continue. */
#define TEMPO_WARN(...)                                                    \
    ::tempo::warnImpl(__FILE__, __LINE__,                                  \
                      ::tempo::detail::formatMessage(__VA_ARGS__))

/** Panic unless @p cond holds. */
#define TEMPO_ASSERT(cond, ...)                                            \
    do {                                                                   \
        if (!(cond)) {                                                     \
            TEMPO_PANIC("assertion failed: " #cond " ",                    \
                        ::tempo::detail::formatMessage(__VA_ARGS__));      \
        }                                                                  \
    } while (0)

#endif // TEMPO_COMMON_LOG_HH
