/**
 * @file
 * Fundamental scalar types and address-arithmetic helpers shared by every
 * TEMPO module.
 */

#ifndef TEMPO_COMMON_TYPES_HH
#define TEMPO_COMMON_TYPES_HH

#include <cstdint>
#include <string>

namespace tempo {

/** A virtual or physical memory address (byte granularity). */
using Addr = std::uint64_t;

/** A simulation timestamp, in core clock cycles. */
using Cycle = std::uint64_t;

/** Identifier of an application (core) in a multiprogrammed mix. */
using AppId = std::uint32_t;

/** Sentinel for "no address". */
inline constexpr Addr kInvalidAddr = ~Addr{0};

/** Cache line size used throughout (x86-64 convention). */
inline constexpr Addr kLineBytes = 64;

/** Base page size (x86-64 4KB pages). */
inline constexpr Addr kPageBytes = 4096;

/** 2MB superpage size. */
inline constexpr Addr kPage2MBytes = 2ull << 20;

/** 1GB superpage size. */
inline constexpr Addr kPage1GBytes = 1ull << 30;

/** Bytes occupied by one page table entry (x86-64). */
inline constexpr Addr kPteBytes = 8;

/** Number of PTEs per page table node (x86-64: 4KB node / 8B PTE). */
inline constexpr Addr kPtesPerNode = kPageBytes / kPteBytes;

/** Supported page sizes, named after the leaf page table level. */
enum class PageSize : std::uint8_t {
    Page4K,  //!< mapped at the L1 PT (leaf level 1)
    Page2M,  //!< mapped at the L2 PT (leaf level 2)
    Page1G,  //!< mapped at the L3 PT (leaf level 3)
};

/** Number of bytes spanned by a page of the given size. */
constexpr Addr
pageBytes(PageSize size)
{
    switch (size) {
      case PageSize::Page4K: return kPageBytes;
      case PageSize::Page2M: return kPage2MBytes;
      case PageSize::Page1G: return kPage1GBytes;
    }
    return kPageBytes;
}

/** Page table level (1 = leaf for 4KB pages, 4 = root) that maps a page
 * of the given size. */
constexpr int
leafLevel(PageSize size)
{
    switch (size) {
      case PageSize::Page4K: return 1;
      case PageSize::Page2M: return 2;
      case PageSize::Page1G: return 3;
    }
    return 1;
}

/** Human-readable page size name. */
inline const char *
pageSizeName(PageSize size)
{
    switch (size) {
      case PageSize::Page4K: return "4KB";
      case PageSize::Page2M: return "2MB";
      case PageSize::Page1G: return "1GB";
    }
    return "?";
}

/** Align @p addr down to a multiple of @p align (power of two). */
constexpr Addr
alignDown(Addr addr, Addr align)
{
    return addr & ~(align - 1);
}

/** Align @p addr up to a multiple of @p align (power of two). */
constexpr Addr
alignUp(Addr addr, Addr align)
{
    return (addr + align - 1) & ~(align - 1);
}

/** Cache-line address (line-aligned) of @p addr. */
constexpr Addr
lineAddr(Addr addr)
{
    return alignDown(addr, kLineBytes);
}

/** Index of the cache line holding @p addr within its 4KB page (0..63). */
constexpr unsigned
lineInPage(Addr addr)
{
    return static_cast<unsigned>((addr & (kPageBytes - 1)) / kLineBytes);
}

/** Virtual page number for a 4KB page. */
constexpr Addr
vpn4K(Addr vaddr)
{
    return vaddr / kPageBytes;
}

/** floor(log2(x)) for a power-of-two x. */
constexpr unsigned
log2Exact(Addr x)
{
    unsigned n = 0;
    while (x > 1) {
        x >>= 1;
        ++n;
    }
    return n;
}

/** True iff x is a (nonzero) power of two. */
constexpr bool
isPow2(Addr x)
{
    return x != 0 && (x & (x - 1)) == 0;
}

} // namespace tempo

#endif // TEMPO_COMMON_TYPES_HH
