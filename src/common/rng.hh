/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Every stochastic choice in the simulator (workload address streams, OS
 * fragmentation, tie-breaking) draws from an Rng seeded explicitly, so two
 * runs with the same configuration produce bit-identical statistics.
 */

#ifndef TEMPO_COMMON_RNG_HH
#define TEMPO_COMMON_RNG_HH

#include <cstdint>

namespace tempo {

/**
 * xoshiro256** generator. Small, fast, and good enough statistical quality
 * for workload synthesis; decidedly not cryptographic.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed via splitmix64 expansion. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull)
    {
        std::uint64_t x = seed;
        for (auto &word : state_) {
            x += 0x9e3779b97f4a7c15ull;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
            word = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). @p bound must be nonzero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        // Lemire's nearly-divisionless bounded generation, without the
        // rejection step: bias is < 2^-40 for the bounds we use.
        const unsigned __int128 m =
            static_cast<unsigned __int128>(next()) * bound;
        return static_cast<std::uint64_t>(m >> 64);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli trial with probability @p p of returning true. */
    bool chance(double p) { return uniform() < p; }

    /**
     * Geometric-ish "hot set" pick: with probability @p hot_frac return an
     * index in the first @p hot_count elements, otherwise anywhere in
     * [0, count). Used to synthesize skewed reuse distributions.
     */
    std::uint64_t
    skewedBelow(std::uint64_t count, std::uint64_t hot_count,
                double hot_frac)
    {
        if (hot_count > 0 && hot_count < count && chance(hot_frac))
            return below(hot_count);
        return below(count);
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4];
};

} // namespace tempo

#endif // TEMPO_COMMON_RNG_HH
