// EventQueue is header-only; this translation unit exists so the build
// system has a home for it and to catch header self-sufficiency problems.
#include "common/event_queue.hh"
