// EventQueue and friends are header-only; this translation unit exists
// so the build system has a home for them and to catch header
// self-sufficiency problems.
#include "common/event_queue.hh"
#include "common/heap_event_queue.hh"
#include "common/inline_function.hh"
