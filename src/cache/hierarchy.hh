/**
 * @file
 * A three-level cache hierarchy: private L1D and L2 per core, shared LLC.
 *
 * Lookups are structural (tag arrays) with additive lookup latencies; the
 * caller turns a miss into a memory-controller request. Fill installs the
 * line at every level (inclusive hierarchy). The LLC exposes a prefetch
 * fill port for TEMPO (paper Sec. 3: prefetched lines land in the LLC
 * only, so they cannot pollute the small private levels).
 */

#ifndef TEMPO_CACHE_HIERARCHY_HH
#define TEMPO_CACHE_HIERARCHY_HH

#include <memory>
#include <vector>

#include "cache/set_assoc.hh"
#include "common/types.hh"
#include "stats/stats.hh"

namespace tempo {

/** Geometry and latency of one cache level. */
struct CacheLevelConfig {
    Addr sizeBytes;
    unsigned assoc;
    Cycle latency; //!< lookup latency of this level
};

/** Configuration of a core's view of the hierarchy. */
struct CacheHierarchyConfig {
    CacheLevelConfig l1{32 * 1024, 8, 4};
    CacheLevelConfig l2{128 * 1024, 8, 14};
    CacheLevelConfig llc{512 * 1024, 16, 42};
};

/** Where an access was satisfied. */
enum class CacheLevel : std::uint8_t { L1, L2, LLC, Memory };

inline const char *
cacheLevelName(CacheLevel level)
{
    switch (level) {
      case CacheLevel::L1: return "L1";
      case CacheLevel::L2: return "L2";
      case CacheLevel::LLC: return "LLC";
      case CacheLevel::Memory: return "memory";
    }
    return "?";
}

/** Outcome of a hierarchy access. */
struct CacheOutcome {
    CacheLevel level;   //!< where the line was found (Memory = miss)
    Cycle latency;      //!< cycles to reach that answer (sequential)
};

/** The shared last-level cache, used by one or many cores. */
class SharedLlc
{
  public:
    explicit SharedLlc(const CacheLevelConfig &cfg,
                       const CacheConfig &impl = {});

    SetAssocCache &cache() { return cache_; }
    const SetAssocCache &cache() const { return cache_; }
    Cycle latency() const { return latency_; }

    /** TEMPO prefetch fill port: install without a demand access.
     * @return the dirty victim line that must be written back, or
     *         kInvalidAddr. */
    Addr prefetchFill(Addr addr);

    std::uint64_t prefetchFills() const { return prefetchFills_; }

    /** Clear counters, keeping contents (warmup support). */
    void
    resetStats()
    {
        cache_.resetStats();
        prefetchFills_ = 0;
    }

  private:
    SetAssocCache cache_;
    Cycle latency_;
    std::uint64_t prefetchFills_ = 0;
};

/**
 * One core's cache path (private L1/L2 plus a reference to the shared
 * LLC). Data and page-table lines share these arrays, as on real x86.
 */
class CacheHierarchy
{
  public:
    CacheHierarchy(const CacheHierarchyConfig &cfg, SharedLlc *llc,
                   const CacheConfig &impl = {});

    /**
     * Demand access. Walks L1 -> L2 -> LLC; on a full miss the returned
     * latency covers all three lookups and the caller goes to memory.
     * Does NOT fill — call fill() when the memory response arrives.
     * Writes mark the line dirty at the hit level (and in the LLC, so
     * the writeback surfaces wherever the line finally leaves chip).
     */
    CacheOutcome access(Addr addr, bool is_write = false);

    /**
     * Install the line at all levels (inclusive fill on miss return).
     * @return a dirty LLC victim that must be written back to memory,
     *         or kInvalidAddr.
     */
    Addr fill(Addr addr, bool is_write = false);

    /** Install into the private levels only (used for L1 prefetchers'
     * fills and MSHR-merged responses). */
    void fillPrivate(Addr addr);

    /**
     * Private-levels-only probe for sharded execution: walks L1 -> L2
     * and never touches the shared LLC (which lives in another event
     * domain). A miss returns CacheLevel::Memory with the private
     * lookup latency only — the caller sends a port message for the
     * LLC probe. Dirty private victims are appended to
     * @p dirty_victims instead of marking the LLC copy dirty; the
     * caller forwards them as explicit writeback messages
     * (non-inclusive writeback model on the sharded path).
     */
    CacheOutcome accessPrivate(Addr addr, bool is_write,
                               std::vector<Addr> &dirty_victims);

    /** Sharded-path fill of the private levels only; dirty victims
     * are collected like accessPrivate(). */
    void fillPrivateCollect(Addr addr, bool is_write,
                            std::vector<Addr> &dirty_victims);

    /** Dirty L1/L2 victims whose line was no longer in the LLC (the
     * writeback is dropped by the model; see DESIGN.md). */
    std::uint64_t droppedWritebacks() const
    {
        return droppedWritebacks_;
    }

    SetAssocCache &l1() { return l1_; }
    SetAssocCache &l2() { return l2_; }
    SharedLlc &llc() { return *llc_; }

    void report(stats::Report &out) const;

    /** Clear private-level counters, keeping contents. Does NOT touch
     * the shared LLC (other cores may still be measuring). */
    void
    resetStats()
    {
        l1_.resetStats();
        l2_.resetStats();
    }

  private:
    /** Propagate a victim evicted from a private level: dirty lines
     * mark their LLC copy dirty so the eventual LLC eviction writes
     * back. */
    void propagateVictim(const SetAssocCache::Victim &victim);

    CacheHierarchyConfig cfg_;
    SetAssocCache l1_;
    SetAssocCache l2_;
    SharedLlc *llc_;
    std::uint64_t droppedWritebacks_ = 0;
};

} // namespace tempo

#endif // TEMPO_CACHE_HIERARCHY_HH
