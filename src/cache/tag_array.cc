#include "cache/tag_array.hh"

#include <cstdlib>

namespace tempo {

bool
envReferenceCache()
{
    const char *v = std::getenv("TEMPO_REFERENCE_CACHE");
    return v != nullptr && v[0] != '\0'
        && !(v[0] == '0' && v[1] == '\0');
}

} // namespace tempo
