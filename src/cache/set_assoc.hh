/**
 * @file
 * A set-associative cache of 64-byte line tags with true-LRU replacement.
 *
 * The simulator only needs hit/miss behaviour and victim selection — data
 * contents are never materialized. Timing is the caller's business.
 */

#ifndef TEMPO_CACHE_SET_ASSOC_HH
#define TEMPO_CACHE_SET_ASSOC_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace tempo {

class SetAssocCache
{
  public:
    /**
     * @param size_bytes total capacity (power of two)
     * @param assoc ways per set
     */
    SetAssocCache(Addr size_bytes, unsigned assoc);

    /** Outcome of insertTracked(): the evicted victim, if any. */
    struct Victim {
        Addr addr = kInvalidAddr;
        bool dirty = false;
    };

    /** Look up the line holding @p addr; promotes to MRU on hit. */
    bool lookup(Addr addr);

    /** Mark the line holding @p addr dirty; returns false if absent. */
    bool markDirty(Addr addr);

    /** Is the line present and dirty? (no LRU update) */
    bool isDirty(Addr addr) const;

    /** Non-destructive presence probe (no LRU update). */
    bool contains(Addr addr) const;

    /**
     * Install the line holding @p addr.
     * @return the evicted line address, or kInvalidAddr if none.
     */
    Addr insert(Addr addr);

    /** Install with dirtiness tracking: returns the victim (address
     * kInvalidAddr if none) and whether it was dirty. */
    Victim insertTracked(Addr addr, bool dirty);

    /** Remove the line holding @p addr if present. */
    void invalidate(Addr addr);

    /** Drop all contents. */
    void reset();

    /** Clear hit/miss counters, keeping contents (warmup support). */
    void resetStats();

    Addr sizeBytes() const { return sizeBytes_; }
    unsigned assoc() const { return assoc_; }
    unsigned numSets() const { return numSets_; }

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    double
    hitRate() const
    {
        const std::uint64_t total = hits_ + misses_;
        return total ? static_cast<double>(hits_)
                / static_cast<double>(total)
                     : 0.0;
    }

  private:
    struct Line {
        bool valid = false;
        bool dirty = false;
        Addr tag = 0;
        std::uint64_t lastUse = 0;
    };

    unsigned setIndex(Addr addr) const;
    Addr tagOf(Addr addr) const;

    Addr sizeBytes_;
    unsigned assoc_;
    unsigned numSets_;
    std::vector<Line> lines_;
    std::uint64_t tick_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
};

} // namespace tempo

#endif // TEMPO_CACHE_SET_ASSOC_HH
