/**
 * @file
 * A set-associative cache of 64-byte line tags with true-LRU replacement.
 *
 * The simulator only needs hit/miss behaviour and victim selection — data
 * contents are never materialized. Timing is the caller's business.
 *
 * Two implementations share this interface (cache/tag_array.hh): the
 * packed tag-array fast path (default) and the retained linear-scan
 * reference oracle (CacheConfig::useReferenceCache or the
 * TEMPO_REFERENCE_CACHE env var). Hit/miss/victim sequences are
 * identical by construction; only the lookup cost differs.
 */

#ifndef TEMPO_CACHE_SET_ASSOC_HH
#define TEMPO_CACHE_SET_ASSOC_HH

#include <cstdint>
#include <vector>

#include "cache/tag_array.hh"
#include "common/types.hh"

namespace tempo {

class SetAssocCache
{
  public:
    /**
     * @param size_bytes total capacity (power of two)
     * @param assoc ways per set
     * @param impl packed vs reference selection (geometry the packed
     *        path cannot encode — more than TagArray::kMaxWays ways —
     *        falls back to the reference path automatically)
     */
    SetAssocCache(Addr size_bytes, unsigned assoc,
                  const CacheConfig &impl = {});

    /** Outcome of insertTracked(): the evicted victim, if any. */
    struct Victim {
        Addr addr = kInvalidAddr;
        bool dirty = false;
    };

    /** Look up the line holding @p addr; promotes to MRU on hit. */
    bool lookup(Addr addr);

    /** Mark the line holding @p addr dirty; returns false if absent. */
    bool markDirty(Addr addr);

    /** Is the line present and dirty? (no LRU update) */
    bool isDirty(Addr addr) const;

    /** Non-destructive presence probe (no LRU update). */
    bool contains(Addr addr) const;

    /**
     * Install the line holding @p addr.
     * @return the evicted line address, or kInvalidAddr if none.
     */
    Addr insert(Addr addr);

    /** Install with dirtiness tracking: returns the victim (address
     * kInvalidAddr if none) and whether it was dirty. */
    Victim insertTracked(Addr addr, bool dirty);

    /**
     * Remove the line holding @p addr if present.
     * @return true iff the line was present AND dirty — i.e. its
     *         writeback is being dropped and the caller must issue it
     *         (or consciously discard it).
     */
    bool invalidate(Addr addr);

    /** Drop all contents. */
    void reset();

    /** Clear hit/miss counters, keeping contents (warmup support). */
    void resetStats();

    Addr sizeBytes() const { return sizeBytes_; }
    unsigned assoc() const { return assoc_; }
    unsigned numSets() const { return numSets_; }
    bool usingReference() const { return useRef_; }

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    double
    hitRate() const
    {
        const std::uint64_t total = hits_ + misses_;
        return total ? static_cast<double>(hits_)
                / static_cast<double>(total)
                     : 0.0;
    }

  private:
    /** Reference-path line state (array-of-structs, true LRU via a
     * global tick counter); unused on the packed path. */
    struct Line {
        bool valid = false;
        bool dirty = false;
        Addr tag = 0;
        std::uint64_t lastUse = 0;
    };

    unsigned setIndex(Addr addr) const;
    Addr tagOf(Addr addr) const;

    bool refLookup(Addr addr);
    bool refMarkDirty(Addr addr);
    bool refIsDirty(Addr addr) const;
    bool refContains(Addr addr) const;
    Victim refInsertTracked(Addr addr, bool dirty);
    bool refInvalidate(Addr addr);

    Addr sizeBytes_;
    unsigned assoc_;
    unsigned numSets_;
    unsigned setShift_ = 0; //!< log2(numSets_)
    bool useRef_ = false;

    TagArray tags_;           //!< packed path
    std::vector<Line> lines_; //!< reference path
    std::uint64_t tick_ = 0;  //!< reference path LRU clock

    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
};

} // namespace tempo

#endif // TEMPO_CACHE_SET_ASSOC_HH
