#include "cache/set_assoc.hh"

#include "common/log.hh"

namespace tempo {

namespace {
constexpr unsigned kLineShift = 6;
static_assert(kLineBytes == (Addr{1} << kLineShift));
} // namespace

SetAssocCache::SetAssocCache(Addr size_bytes, unsigned assoc,
                             const CacheConfig &impl)
    : sizeBytes_(size_bytes), assoc_(assoc)
{
    TEMPO_ASSERT(assoc > 0, "associativity must be positive");
    const Addr lines = size_bytes / kLineBytes;
    TEMPO_ASSERT(lines >= assoc, "cache smaller than one set");
    numSets_ = static_cast<unsigned>(lines / assoc);
    TEMPO_ASSERT(isPow2(numSets_), "set count must be a power of two: ",
                 numSets_);
    setShift_ = log2Exact(numSets_);
    useRef_ = impl.useReferenceCache || envReferenceCache()
              || !TagArray::packable(numSets_, assoc_);
    if (useRef_) {
        lines_.resize(static_cast<std::size_t>(numSets_) * assoc_);
    } else {
        tags_ = TagArray(numSets_, assoc_);
    }
}

unsigned
SetAssocCache::setIndex(Addr addr) const
{
    return static_cast<unsigned>((addr >> kLineShift)
                                 & (numSets_ - 1));
}

Addr
SetAssocCache::tagOf(Addr addr) const
{
    return (addr >> kLineShift) >> setShift_;
}

bool
SetAssocCache::lookup(Addr addr)
{
    if (useRef_)
        return refLookup(addr);
    const unsigned set = setIndex(addr);
    const Addr tag = tagOf(addr);
    const int way = tags_.find(set, tag);
    if (way >= 0) {
        tags_.promote(set, static_cast<unsigned>(way), tag);
        ++hits_;
        return true;
    }
    ++misses_;
    return false;
}

bool
SetAssocCache::contains(Addr addr) const
{
    if (useRef_)
        return refContains(addr);
    return tags_.find(setIndex(addr), tagOf(addr)) >= 0;
}

Addr
SetAssocCache::insert(Addr addr)
{
    return insertTracked(addr, false).addr;
}

SetAssocCache::Victim
SetAssocCache::insertTracked(Addr addr, bool dirty)
{
    if (useRef_)
        return refInsertTracked(addr, dirty);
    const unsigned set = setIndex(addr);
    const Addr tag = tagOf(addr);
    const int hit = tags_.find(set, tag);
    if (hit >= 0) { // already present: refresh
        tags_.promote(set, static_cast<unsigned>(hit), tag);
        if (dirty)
            tags_.markDirtyWay(set, static_cast<unsigned>(hit));
        return Victim{};
    }
    const unsigned way = tags_.victimWay(set);
    Victim evicted;
    if (tags_.validWay(set, way)) {
        evicted.addr = ((tags_.tagOfWay(set, way) << setShift_) | set)
                       << kLineShift;
        evicted.dirty = tags_.dirtyWay(set, way);
    }
    tags_.install(set, way, tag, dirty);
    return evicted;
}

bool
SetAssocCache::markDirty(Addr addr)
{
    if (useRef_)
        return refMarkDirty(addr);
    const unsigned set = setIndex(addr);
    const int way = tags_.find(set, tagOf(addr));
    if (way < 0)
        return false;
    tags_.markDirtyWay(set, static_cast<unsigned>(way));
    return true;
}

bool
SetAssocCache::isDirty(Addr addr) const
{
    if (useRef_)
        return refIsDirty(addr);
    const unsigned set = setIndex(addr);
    const int way = tags_.find(set, tagOf(addr));
    return way >= 0 && tags_.dirtyWay(set, static_cast<unsigned>(way));
}

bool
SetAssocCache::invalidate(Addr addr)
{
    if (useRef_)
        return refInvalidate(addr);
    const unsigned set = setIndex(addr);
    const int way = tags_.find(set, tagOf(addr));
    if (way < 0)
        return false;
    return tags_.invalidateWay(set, static_cast<unsigned>(way));
}

void
SetAssocCache::resetStats()
{
    hits_ = 0;
    misses_ = 0;
}

void
SetAssocCache::reset()
{
    if (useRef_) {
        for (auto &line : lines_)
            line.valid = false;
        tick_ = 0;
    } else {
        tags_.reset();
    }
    hits_ = 0;
    misses_ = 0;
}

// --- Reference path (the pre-packed implementation, kept verbatim as
// the differential-testing oracle) ---

bool
SetAssocCache::refLookup(Addr addr)
{
    const unsigned set = setIndex(addr);
    const Addr tag = tagOf(addr);
    for (unsigned w = 0; w < assoc_; ++w) {
        Line &line = lines_[static_cast<std::size_t>(set) * assoc_ + w];
        if (line.valid && line.tag == tag) {
            line.lastUse = ++tick_;
            ++hits_;
            return true;
        }
    }
    ++misses_;
    return false;
}

bool
SetAssocCache::refContains(Addr addr) const
{
    const unsigned set = setIndex(addr);
    const Addr tag = tagOf(addr);
    for (unsigned w = 0; w < assoc_; ++w) {
        const Line &line =
            lines_[static_cast<std::size_t>(set) * assoc_ + w];
        if (line.valid && line.tag == tag)
            return true;
    }
    return false;
}

SetAssocCache::Victim
SetAssocCache::refInsertTracked(Addr addr, bool dirty)
{
    const unsigned set = setIndex(addr);
    const Addr tag = tagOf(addr);
    Line *victim = nullptr;
    for (unsigned w = 0; w < assoc_; ++w) {
        Line &line = lines_[static_cast<std::size_t>(set) * assoc_ + w];
        if (line.valid && line.tag == tag) {
            line.lastUse = ++tick_; // already present: refresh
            line.dirty = line.dirty || dirty;
            return Victim{};
        }
        if (!victim || !line.valid
            || (victim->valid && line.lastUse < victim->lastUse)) {
            victim = &line;
        }
    }
    Victim evicted;
    if (victim->valid) {
        evicted.addr = (victim->tag * numSets_ + set) * kLineBytes;
        evicted.dirty = victim->dirty;
    }
    victim->valid = true;
    victim->dirty = dirty;
    victim->tag = tag;
    victim->lastUse = ++tick_;
    return evicted;
}

bool
SetAssocCache::refMarkDirty(Addr addr)
{
    const unsigned set = setIndex(addr);
    const Addr tag = tagOf(addr);
    for (unsigned w = 0; w < assoc_; ++w) {
        Line &line = lines_[static_cast<std::size_t>(set) * assoc_ + w];
        if (line.valid && line.tag == tag) {
            line.dirty = true;
            return true;
        }
    }
    return false;
}

bool
SetAssocCache::refIsDirty(Addr addr) const
{
    const unsigned set = setIndex(addr);
    const Addr tag = tagOf(addr);
    for (unsigned w = 0; w < assoc_; ++w) {
        const Line &line =
            lines_[static_cast<std::size_t>(set) * assoc_ + w];
        if (line.valid && line.tag == tag)
            return line.dirty;
    }
    return false;
}

bool
SetAssocCache::refInvalidate(Addr addr)
{
    const unsigned set = setIndex(addr);
    const Addr tag = tagOf(addr);
    for (unsigned w = 0; w < assoc_; ++w) {
        Line &line = lines_[static_cast<std::size_t>(set) * assoc_ + w];
        if (line.valid && line.tag == tag) {
            line.valid = false;
            return line.dirty;
        }
    }
    return false;
}

} // namespace tempo
