#include "cache/set_assoc.hh"

#include "common/log.hh"

namespace tempo {

SetAssocCache::SetAssocCache(Addr size_bytes, unsigned assoc)
    : sizeBytes_(size_bytes), assoc_(assoc)
{
    TEMPO_ASSERT(assoc > 0, "associativity must be positive");
    const Addr lines = size_bytes / kLineBytes;
    TEMPO_ASSERT(lines >= assoc, "cache smaller than one set");
    numSets_ = static_cast<unsigned>(lines / assoc);
    TEMPO_ASSERT(isPow2(numSets_), "set count must be a power of two: ",
                 numSets_);
    lines_.resize(static_cast<std::size_t>(numSets_) * assoc_);
}

unsigned
SetAssocCache::setIndex(Addr addr) const
{
    return static_cast<unsigned>((addr / kLineBytes) & (numSets_ - 1));
}

Addr
SetAssocCache::tagOf(Addr addr) const
{
    return (addr / kLineBytes) / numSets_;
}

bool
SetAssocCache::lookup(Addr addr)
{
    const unsigned set = setIndex(addr);
    const Addr tag = tagOf(addr);
    for (unsigned w = 0; w < assoc_; ++w) {
        Line &line = lines_[static_cast<std::size_t>(set) * assoc_ + w];
        if (line.valid && line.tag == tag) {
            line.lastUse = ++tick_;
            ++hits_;
            return true;
        }
    }
    ++misses_;
    return false;
}

bool
SetAssocCache::contains(Addr addr) const
{
    const unsigned set = setIndex(addr);
    const Addr tag = tagOf(addr);
    for (unsigned w = 0; w < assoc_; ++w) {
        const Line &line =
            lines_[static_cast<std::size_t>(set) * assoc_ + w];
        if (line.valid && line.tag == tag)
            return true;
    }
    return false;
}

Addr
SetAssocCache::insert(Addr addr)
{
    return insertTracked(addr, false).addr;
}

SetAssocCache::Victim
SetAssocCache::insertTracked(Addr addr, bool dirty)
{
    const unsigned set = setIndex(addr);
    const Addr tag = tagOf(addr);
    Line *victim = nullptr;
    for (unsigned w = 0; w < assoc_; ++w) {
        Line &line = lines_[static_cast<std::size_t>(set) * assoc_ + w];
        if (line.valid && line.tag == tag) {
            line.lastUse = ++tick_; // already present: refresh
            line.dirty = line.dirty || dirty;
            return Victim{};
        }
        if (!victim || !line.valid
            || (victim->valid && line.lastUse < victim->lastUse)) {
            victim = &line;
        }
    }
    Victim evicted;
    if (victim->valid) {
        evicted.addr = (victim->tag * numSets_ + set) * kLineBytes;
        evicted.dirty = victim->dirty;
    }
    victim->valid = true;
    victim->dirty = dirty;
    victim->tag = tag;
    victim->lastUse = ++tick_;
    return evicted;
}

bool
SetAssocCache::markDirty(Addr addr)
{
    const unsigned set = setIndex(addr);
    const Addr tag = tagOf(addr);
    for (unsigned w = 0; w < assoc_; ++w) {
        Line &line = lines_[static_cast<std::size_t>(set) * assoc_ + w];
        if (line.valid && line.tag == tag) {
            line.dirty = true;
            return true;
        }
    }
    return false;
}

bool
SetAssocCache::isDirty(Addr addr) const
{
    const unsigned set = setIndex(addr);
    const Addr tag = tagOf(addr);
    for (unsigned w = 0; w < assoc_; ++w) {
        const Line &line =
            lines_[static_cast<std::size_t>(set) * assoc_ + w];
        if (line.valid && line.tag == tag)
            return line.dirty;
    }
    return false;
}

void
SetAssocCache::invalidate(Addr addr)
{
    const unsigned set = setIndex(addr);
    const Addr tag = tagOf(addr);
    for (unsigned w = 0; w < assoc_; ++w) {
        Line &line = lines_[static_cast<std::size_t>(set) * assoc_ + w];
        if (line.valid && line.tag == tag) {
            line.valid = false;
            return;
        }
    }
}

void
SetAssocCache::resetStats()
{
    hits_ = 0;
    misses_ = 0;
}

void
SetAssocCache::reset()
{
    for (auto &line : lines_)
        line.valid = false;
    tick_ = 0;
    hits_ = 0;
    misses_ = 0;
}

} // namespace tempo
