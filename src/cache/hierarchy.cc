#include "cache/hierarchy.hh"

#include "common/log.hh"
#include "common/profiler.hh"

namespace tempo {

SharedLlc::SharedLlc(const CacheLevelConfig &cfg,
                     const CacheConfig &impl)
    : cache_(cfg.sizeBytes, cfg.assoc, impl), latency_(cfg.latency)
{
}

Addr
SharedLlc::prefetchFill(Addr addr)
{
    prof::Scope scope(prof::Component::Cache);
    const SetAssocCache::Victim victim =
        cache_.insertTracked(lineAddr(addr), false);
    ++prefetchFills_;
    return victim.dirty ? victim.addr : kInvalidAddr;
}

CacheHierarchy::CacheHierarchy(const CacheHierarchyConfig &cfg,
                               SharedLlc *llc, const CacheConfig &impl)
    : cfg_(cfg), l1_(cfg.l1.sizeBytes, cfg.l1.assoc, impl),
      l2_(cfg.l2.sizeBytes, cfg.l2.assoc, impl), llc_(llc)
{
    TEMPO_ASSERT(llc_, "hierarchy needs a shared LLC");
}

void
CacheHierarchy::propagateVictim(const SetAssocCache::Victim &victim)
{
    if (victim.addr == kInvalidAddr || !victim.dirty)
        return;
    if (!llc_->cache().markDirty(victim.addr))
        ++droppedWritebacks_;
}

CacheOutcome
CacheHierarchy::access(Addr addr, bool is_write)
{
    prof::Scope scope(prof::Component::Cache);
    const Addr line = lineAddr(addr);
    Cycle latency = cfg_.l1.latency;
    if (l1_.lookup(line)) {
        if (is_write)
            l1_.markDirty(line);
        return {CacheLevel::L1, latency};
    }

    latency += cfg_.l2.latency;
    if (l2_.lookup(line)) {
        if (is_write)
            l2_.markDirty(line);
        propagateVictim(l1_.insertTracked(line, is_write));
        return {CacheLevel::L2, latency};
    }

    latency += llc_->latency();
    if (llc_->cache().lookup(line)) {
        if (is_write)
            llc_->cache().markDirty(line);
        propagateVictim(l2_.insertTracked(line, is_write));
        propagateVictim(l1_.insertTracked(line, is_write));
        return {CacheLevel::LLC, latency};
    }

    return {CacheLevel::Memory, latency};
}

Addr
CacheHierarchy::fill(Addr addr, bool is_write)
{
    prof::Scope scope(prof::Component::Cache);
    const Addr line = lineAddr(addr);
    const SetAssocCache::Victim llc_victim =
        llc_->cache().insertTracked(line, is_write);
    propagateVictim(l2_.insertTracked(line, is_write));
    propagateVictim(l1_.insertTracked(line, is_write));
    return llc_victim.dirty ? llc_victim.addr : kInvalidAddr;
}

void
CacheHierarchy::fillPrivate(Addr addr)
{
    prof::Scope scope(prof::Component::Cache);
    const Addr line = lineAddr(addr);
    propagateVictim(l2_.insertTracked(line, false));
    propagateVictim(l1_.insertTracked(line, false));
}

namespace {

void
collectVictim(const SetAssocCache::Victim &victim,
              std::vector<Addr> &dirty_victims)
{
    if (victim.addr != kInvalidAddr && victim.dirty)
        dirty_victims.push_back(victim.addr);
}

} // namespace

CacheOutcome
CacheHierarchy::accessPrivate(Addr addr, bool is_write,
                              std::vector<Addr> &dirty_victims)
{
    prof::Scope scope(prof::Component::Cache);
    const Addr line = lineAddr(addr);
    Cycle latency = cfg_.l1.latency;
    if (l1_.lookup(line)) {
        if (is_write)
            l1_.markDirty(line);
        return {CacheLevel::L1, latency};
    }

    latency += cfg_.l2.latency;
    if (l2_.lookup(line)) {
        if (is_write)
            l2_.markDirty(line);
        collectVictim(l1_.insertTracked(line, is_write),
                      dirty_victims);
        return {CacheLevel::L2, latency};
    }

    return {CacheLevel::Memory, latency};
}

void
CacheHierarchy::fillPrivateCollect(Addr addr, bool is_write,
                                   std::vector<Addr> &dirty_victims)
{
    prof::Scope scope(prof::Component::Cache);
    const Addr line = lineAddr(addr);
    collectVictim(l2_.insertTracked(line, is_write), dirty_victims);
    collectVictim(l1_.insertTracked(line, is_write), dirty_victims);
}

void
CacheHierarchy::report(stats::Report &out) const
{
    out.add("l1.hits", l1_.hits());
    out.add("l1.misses", l1_.misses());
    out.add("l1.hit_rate", l1_.hitRate());
    out.add("l2.hits", l2_.hits());
    out.add("l2.misses", l2_.misses());
    out.add("l2.hit_rate", l2_.hitRate());
    out.add("llc.hits", llc_->cache().hits());
    out.add("llc.misses", llc_->cache().misses());
    out.add("llc.hit_rate", llc_->cache().hitRate());
    out.add("llc.prefetch_fills", llc_->prefetchFills());
}

} // namespace tempo
