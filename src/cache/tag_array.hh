/**
 * @file
 * The packed associative tag-array core shared by the data caches
 * (cache/set_assoc.hh) and the TLB / MMU-cache arrays
 * (vm/assoc_array.hh).
 *
 * Layout is structure-of-arrays, tuned so one set probe touches one
 * host cache line of metadata instead of a strided walk over
 * array-of-struct entries:
 *
 *  - all per-set metadata lives in a single 64-byte, line-aligned
 *    block: 16-bit partial tags (four to a 64-bit word) scanned with
 *    a branch-free SWAR zero-lane match, valid and dirty as 16-way
 *    bitmasks, the LRU rank word, and the MRU way;
 *  - the MRU way is probed first (one load + compare): set probes are
 *    heavily biased toward the most recently used line, and find()
 *    has no side effects, so the shortcut cannot change behaviour;
 *  - full 64-bit tags in their own flat array, read only on a
 *    candidate hit and on victim reconstruction;
 *  - true LRU as a packed per-set rank word: one byte lane per way
 *    holding the way's recency rank (0 = LRU .. assoc-1 = MRU). A hit
 *    promotes in O(1): every lane ranked above the hit way is
 *    decremented with one SWAR compare-and-subtract, then the hit
 *    lane is set to MRU. This replaces the reference implementation's
 *    per-line 8-byte lastUse timestamp and global tick counter.
 *
 * Because the rank word is only ever permuted (promotion preserves the
 * relative order of all other ways), rank order always equals
 * promotion-recency order, and the victim sequence is exactly the
 * reference's true-LRU sequence. Which *physical* way holds a tag is
 * unobservable through the public API (victims are reconstructed from
 * tag + set), so hit/miss/victim streams — and therefore every
 * simulator statistic — are byte-identical to the linear-scan
 * reference path retained in set_assoc.cc / assoc_array.hh.
 *
 * Geometry: power-of-two set counts and at most kMaxWays ways. Wider
 * arrays (and any future non-pow2 geometry) automatically fall back to
 * the reference implementation, per instance.
 */

#ifndef TEMPO_CACHE_TAG_ARRAY_HH
#define TEMPO_CACHE_TAG_ARRAY_HH

#include <bit>
#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace tempo {

/**
 * Cache/TLB tag-array implementation selection. Hit/miss/victim
 * sequences are identical on both paths by construction (the packed
 * path is order-equivalent true LRU), so this knob is stats-neutral
 * and stays out of SystemConfig::digest(), like the scheduler and
 * translator reference switches.
 */
struct CacheConfig {
    /** Force every SetAssocCache and AssocArray in the system onto the
     * retained linear-scan reference implementation (also forced by
     * the TEMPO_REFERENCE_CACHE env var, or per-run by
     * `tempo_sim --reference-cache`). */
    bool useReferenceCache = false;
};

/** Test/CI knob: TEMPO_REFERENCE_CACHE set to a non-empty value other
 * than "0" forces the reference path everywhere. */
bool envReferenceCache();

class TagArray
{
  private:
    /** One set's complete metadata: exactly one host cache line. The
     * MRU way's full tag is cached here so the most common probe —
     * hit the most recently used line again — touches only this
     * line. */
    struct alignas(64) SetMeta {
        std::uint64_t ptag[4] = {};  //!< 16 x 16-bit partial tags
        std::uint64_t rank[2] = {};  //!< 16 x 8-bit LRU ranks
        std::uint64_t mruTag = 0;    //!< full tag of the MRU way
        std::uint16_t valid = 0;
        std::uint16_t dirty = 0;
        std::uint8_t mru = 0;        //!< last promoted way
    };
    static_assert(sizeof(SetMeta) == 64);

  public:
    /** 16 partial-tag lanes and 16 rank lanes fill the 64-byte
     * per-set metadata block, so 16 ways is the packed ceiling. */
    static constexpr unsigned kMaxWays = 16;

    static bool
    packable(unsigned sets, unsigned assoc)
    {
        return isPow2(sets) && assoc >= 1 && assoc <= kMaxWays;
    }

    TagArray() = default;

    TagArray(unsigned sets, unsigned assoc)
        : sets_(sets), assoc_(assoc),
          words_(static_cast<std::uint8_t>((assoc + 3) / 4))
    {
        // Padding lanes hold 0x7f: never promoted (masked out of the
        // compare), never zero (invisible to the LRU zero-byte scan).
        for (unsigned w = 0; w < kMaxWays; ++w) {
            const std::uint64_t lane = w < assoc_ ? w : 0x7f;
            init_.rank[w >> 3] |= lane << (8 * (w & 7));
        }
        for (unsigned w = 0; w < assoc_; ++w)
            rankHi_[w >> 3] |= std::uint64_t{0x80} << (8 * (w & 7));
        meta_.assign(sets_, init_);
        tags_.assign(static_cast<std::size_t>(sets_) * assoc_, 0);
    }

    /** Way holding @p tag in @p set, or -1. No LRU update, no stats. */
    int
    find(unsigned set, std::uint64_t tag) const
    {
        const SetMeta &s = meta_[set];
        const std::uint64_t *stags =
            &tags_[static_cast<std::size_t>(set) * assoc_];
        // The confirm loads depend on the SWAR scan of the metadata
        // block; kick off the (independent) tag-line fetch now so the
        // two host cache misses overlap instead of serializing.
        prefetchLine(stags);
        // MRU shortcut: the most recently promoted way is by far the
        // likeliest hit, and its full tag is cached in the metadata
        // block, so this settles without touching the tag array.
        if (s.mruTag == tag && ((s.valid >> s.mru) & 1))
            return static_cast<int>(s.mru);
        const std::uint64_t lanes = kLaneOnes * partialTag(tag);
        // words_ is fixed per instance, so these branches predict
        // perfectly and each arm is straight-line SWAR code. The
        // common case — no lane matches — needs no loads beyond the
        // metadata block and no candidate bookkeeping at all.
        switch (words_) {
          case 1:
            return confirm(s, stags, tag,
                           zeroLanes(s.ptag[0] ^ lanes), 0);
          case 2: {
            const std::uint64_t z0 = zeroLanes(s.ptag[0] ^ lanes);
            if (z0) {
                const int way = confirm(s, stags, tag, z0, 0);
                if (way >= 0)
                    return way;
            }
            return confirm(s, stags, tag,
                           zeroLanes(s.ptag[1] ^ lanes), 4);
          }
          default:
            for (unsigned i = 0; i < words_; ++i) {
                const std::uint64_t z =
                    zeroLanes(s.ptag[i] ^ lanes);
                if (z) {
                    const int way = confirm(s, stags, tag, z, 4 * i);
                    if (way >= 0)
                        return way;
                }
            }
            return -1;
        }
    }

    /** Promote @p way — which holds @p tag — to MRU in O(1). */
    void
    promote(unsigned set, unsigned way, std::uint64_t tag)
    {
        SetMeta &m = meta_[set];
        m.mru = static_cast<std::uint8_t>(way);
        m.mruTag = tag;
        const unsigned shift = 8 * (way & 7);
        const std::uint64_t r = (m.rank[way >> 3] >> shift) & 0xff;
        const std::uint64_t mru_rank = assoc_ - 1;
        if (r == mru_rank)
            return;
        // Demote every way ranked above r by one. Lane values are
        // <= 0x7f, so v + (127 - r) overflows bit 7 exactly when
        // v > r and never carries into the next lane.
        const std::uint64_t k = (127 - r) * kByteOnes;
        m.rank[0] -= ((m.rank[0] + k) & rankHi_[0]) >> 7;
        if (assoc_ > 8)
            m.rank[1] -= ((m.rank[1] + k) & rankHi_[1]) >> 7;
        m.rank[way >> 3] =
            (m.rank[way >> 3] & ~(std::uint64_t{0xff} << shift))
            | (mru_rank << shift);
    }

    /**
     * Replacement choice: an invalid way if one exists, else the
     * rank-0 (true LRU) way. As in the reference scan, which invalid
     * way gets filled is unobservable, so the lowest is used.
     */
    unsigned
    victimWay(unsigned set) const
    {
        const SetMeta &m = meta_[set];
        const unsigned inv = static_cast<unsigned>(~m.valid & 0xffffu)
                             & ((1u << assoc_) - 1);
        if (inv)
            return static_cast<unsigned>(std::countr_zero(inv));
        // All ways valid: the rank word is a permutation of
        // 0..assoc-1, so exactly one real lane is zero. Scan low word
        // first — borrow-induced false positives only appear above a
        // true zero lane, so the lowest hit is exact.
        const std::uint64_t z0 = (m.rank[0] - kByteOnes) & ~m.rank[0]
                                 & rankHi_[0];
        if (z0)
            return static_cast<unsigned>(std::countr_zero(z0)) >> 3;
        const std::uint64_t z1 = (m.rank[1] - kByteOnes) & ~m.rank[1]
                                 & rankHi_[1];
        return 8 + (static_cast<unsigned>(std::countr_zero(z1)) >> 3);
    }

    bool
    validWay(unsigned set, unsigned way) const
    {
        return (meta_[set].valid >> way) & 1;
    }

    bool
    dirtyWay(unsigned set, unsigned way) const
    {
        return (meta_[set].dirty >> way) & 1;
    }

    std::uint64_t
    tagOfWay(unsigned set, unsigned way) const
    {
        return tags_[static_cast<std::size_t>(set) * assoc_ + way];
    }

    void
    markDirtyWay(unsigned set, unsigned way)
    {
        meta_[set].dirty |= static_cast<std::uint16_t>(1u << way);
    }

    /** Install @p tag into @p way (overwriting any victim's state,
     * including its dirty bit) and promote it to MRU. */
    void
    install(unsigned set, unsigned way, std::uint64_t tag, bool dirty)
    {
        tags_[static_cast<std::size_t>(set) * assoc_ + way] = tag;
        SetMeta &m = meta_[set];
        const unsigned shift = 16 * (way & 3);
        std::uint64_t &word = m.ptag[way >> 2];
        word = (word & ~(std::uint64_t{0xffff} << shift))
               | (static_cast<std::uint64_t>(partialTag(tag)) << shift);
        m.valid |= static_cast<std::uint16_t>(1u << way);
        m.dirty = static_cast<std::uint16_t>(
            (m.dirty & ~(1u << way))
            | (static_cast<unsigned>(dirty) << way));
        promote(set, way, tag);
    }

    /** Drop @p way; returns whether the dropped line was dirty (the
     * caller owns the lost-writeback decision). Ranks are untouched —
     * invalid lanes are skipped by victimWay() and re-promoted on
     * refill, so the permutation invariant holds. */
    bool
    invalidateWay(unsigned set, unsigned way)
    {
        SetMeta &m = meta_[set];
        const bool was_dirty = (m.dirty >> way) & 1;
        m.valid &= static_cast<std::uint16_t>(~(1u << way));
        m.dirty &= static_cast<std::uint16_t>(~(1u << way));
        return was_dirty;
    }

    void
    reset()
    {
        meta_.assign(sets_, init_);
        tags_.assign(tags_.size(), 0);
    }

    unsigned sets() const { return sets_; }
    unsigned assoc() const { return assoc_; }

  private:
    static constexpr std::uint64_t kLaneOnes = 0x0001000100010001ull;
    static constexpr std::uint64_t kLaneHighs = 0x8000800080008000ull;
    static constexpr std::uint64_t kByteOnes = 0x0101010101010101ull;

    static void
    prefetchLine(const void *p)
    {
#if defined(__GNUC__) || defined(__clang__)
        __builtin_prefetch(p, 0, 3);
#else
        (void)p;
#endif
    }

    /** SWAR zero-lane detect: bit 15+16k set iff 16-bit lane k of
     * @p x is zero. Borrows across lanes can only add false
     * positives; the caller's full-tag confirm rejects them. */
    static std::uint64_t
    zeroLanes(std::uint64_t x)
    {
        return (x - kLaneOnes) & ~x & kLaneHighs;
    }

    /** Check @p z's candidate lanes (ways @p base..base+3) against
     * the full tags; -1 if none survives. */
    int
    confirm(const SetMeta &s, const std::uint64_t *stags,
            std::uint64_t tag, std::uint64_t z, unsigned base) const
    {
        while (z) {
            // Lane k's detect bit sits at 15 + 16k.
            const unsigned way =
                base
                + (static_cast<unsigned>(std::countr_zero(z)) >> 4);
            if (((s.valid >> way) & 1) && stags[way] == tag)
                return static_cast<int>(way);
            z &= z - 1;
        }
        return -1;
    }

    /** 16-bit partial tag: a multiplicative fold of all 64 tag bits.
     * Distinct tags may collide (the full-tag confirm settles it);
     * the fold just has to keep collisions rare. */
    static std::uint16_t
    partialTag(std::uint64_t tag)
    {
        return static_cast<std::uint16_t>(
            (tag * 0x9e3779b97f4a7c15ull) >> 48);
    }

    unsigned sets_ = 0;
    unsigned assoc_ = 0;
    std::uint8_t words_ = 0; //!< partial-tag words per set
    std::uint64_t rankHi_[2] = {0, 0};
    SetMeta init_;
    std::vector<SetMeta> meta_;
    std::vector<std::uint64_t> tags_; //!< full tags, set-major
};

} // namespace tempo

#endif // TEMPO_CACHE_TAG_ARRAY_HH
