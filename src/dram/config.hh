/**
 * @file
 * DRAM device geometry, timing, and energy parameters.
 *
 * Timing values are expressed in *core* clock cycles (we simulate a single
 * clock domain). Defaults model a DDR3-class part behind a ~4GHz core:
 * row-buffer hits land at ~15ns and conflicts at ~37ns, matching the
 * 10-15ns vs 30-50ns split quoted in the paper (Sec. 2.3).
 */

#ifndef TEMPO_DRAM_CONFIG_HH
#define TEMPO_DRAM_CONFIG_HH

#include "common/types.hh"

namespace tempo {

/** Row-buffer management strategy (paper Sec. 4.3). */
enum class RowPolicyKind : std::uint8_t {
    Open,     //!< leave rows open until a conflict forces a precharge
    Closed,   //!< precharge immediately after every access
    Adaptive, //!< prediction-cache driven (Awasthi et al., PACT 2011)
};

inline const char *
rowPolicyName(RowPolicyKind kind)
{
    switch (kind) {
      case RowPolicyKind::Open: return "open";
      case RowPolicyKind::Closed: return "closed";
      case RowPolicyKind::Adaptive: return "adaptive";
    }
    return "?";
}

/** Sub-row buffer allocation policy (Gulur et al., ICS 2012). */
enum class SubRowAlloc : std::uint8_t {
    None, //!< single monolithic row buffer per bank
    FOA,  //!< Fairness Oriented Allocation: per-app partitions
    POA,  //!< Performance Oriented Allocation: demand-proportional
};

inline const char *
subRowAllocName(SubRowAlloc alloc)
{
    switch (alloc) {
      case SubRowAlloc::None: return "none";
      case SubRowAlloc::FOA: return "foa";
      case SubRowAlloc::POA: return "poa";
    }
    return "?";
}

/** Full DRAM configuration. */
struct DramConfig {
    unsigned channels = 2;
    unsigned ranksPerChannel = 1;
    unsigned banksPerRank = 8;

    /** Bytes latched per activation (per paper: 8KB rows). */
    Addr rowBufferBytes = 8192;

    /** Row-buffer management policy. */
    RowPolicyKind rowPolicy = RowPolicyKind::Adaptive;

    /** Sub-row buffering: None keeps one full-row buffer per bank. */
    SubRowAlloc subRowAlloc = SubRowAlloc::None;
    unsigned subRowCount = 8;          //!< sub-row buffers per bank
    unsigned subRowsForPrefetch = 0;   //!< dedicated to TEMPO prefetches

    // --- Timing (core cycles; ~4GHz core vs DDR3-1600-class part) ---
    Cycle tRCD = 44;    //!< ACT to column command
    Cycle tRP = 44;     //!< PRECHARGE
    Cycle tCAS = 44;    //!< column access strobe
    Cycle tBurst = 16;  //!< data burst occupancy of the channel bus
    Cycle tRAS = 112;   //!< minimum ACT-to-PRECHARGE

    // --- Refresh (per bank; DDR3-class 7.8us tREFI, 350ns tRFC) ---
    bool refreshEnabled = true;
    Cycle tREFI = 31200; //!< refresh interval
    Cycle tRFC = 1400;   //!< refresh cycle time (bank unavailable)

    // --- Energy per event (normalized units; relative weights matter) ---
    double eAct = 2.0;
    double ePre = 1.5;
    double eColRead = 1.2;
    double eColWrite = 1.4;
    double eRefresh = 8.0;
    /** Background (static) power per core cycle for the whole device. */
    double pStatic = 0.02;

    /** Adaptive policy prediction cache geometry (paper Sec. 5). */
    unsigned predictorSets = 2048;
    unsigned predictorWays = 4;

    unsigned totalBanks() const { return channels * ranksPerChannel
            * banksPerRank; }

    /** Latency of a row-buffer hit (column access + burst). */
    Cycle hitLatency() const { return tCAS + tBurst; }
    /** Latency when the bank was precharged (row closed). */
    Cycle missLatency() const { return tRCD + tCAS + tBurst; }
    /** Latency when another row occupies the buffer. */
    Cycle conflictLatency() const { return tRP + tRCD + tCAS + tBurst; }
};

} // namespace tempo

#endif // TEMPO_DRAM_CONFIG_HH
