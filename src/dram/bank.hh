/**
 * @file
 * One DRAM bank: row-buffer (or sub-row-buffer) state plus bank timing.
 *
 * A bank services one access at a time (readyAt gating). The row buffer is
 * either monolithic (one Slot) or split into sub-row buffers (Gulur et
 * al.), where each Slot caches a 1/N segment of some row and TEMPO may
 * reserve the first K slots for its prefetches.
 *
 * TEMPO's "anticipation delay" and "grace period" (paper Sec. 4.3) are
 * modeled with per-slot holds: a held slot is not closed by the policy and
 * delays any access that would evict it until the hold expires.
 */

#ifndef TEMPO_DRAM_BANK_HH
#define TEMPO_DRAM_BANK_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "common/types.hh"
#include "dram/config.hh"
#include "dram/row_policy.hh"

namespace tempo {

/**
 * Observer for row-buffer transitions. The memory controller's indexed
 * transaction queue subscribes so its per-bank row-hit lookaside tracks
 * exactly the rows a scheduler-time wouldHit() would see: a slot counts
 * as open from the activation inside access() until the precharge that
 * closes it (policy close, conflict eviction, or refresh).
 */
class RowTransitionListener
{
  public:
    virtual ~RowTransitionListener() = default;
    virtual void rowOpened(unsigned flat_bank, Addr row,
                           unsigned segment) = 0;
    virtual void rowClosed(unsigned flat_bank, Addr row,
                           unsigned segment) = 0;
};

/** What the row buffer did for an access. */
enum class RowEvent : std::uint8_t {
    Hit,      //!< requested data already latched
    Miss,     //!< bank was precharged; one ACT needed
    Conflict, //!< another row occupied the buffer; PRE + ACT needed
};

inline const char *
rowEventName(RowEvent event)
{
    switch (event) {
      case RowEvent::Hit: return "hit";
      case RowEvent::Miss: return "miss";
      case RowEvent::Conflict: return "conflict";
    }
    return "?";
}

/** Per-device DRAM energy event counters. */
struct EnergyCounters {
    std::uint64_t activates = 0;
    std::uint64_t precharges = 0;
    std::uint64_t colReads = 0;
    std::uint64_t colWrites = 0;
    std::uint64_t refreshes = 0;

    void
    merge(const EnergyCounters &other)
    {
        activates += other.activates;
        precharges += other.precharges;
        colReads += other.colReads;
        colWrites += other.colWrites;
        refreshes += other.refreshes;
    }
};

/** Outcome of Bank::access(). */
struct BankAccess {
    RowEvent event;
    Cycle start;    //!< when the bank began servicing
    Cycle complete; //!< when the data burst finishes
};

class Bank
{
  public:
    /**
     * @param cfg device configuration
     * @param bank_id flat bank index (used to salt predictor keys)
     * @param policy shared row policy/predictor (owned by the device)
     */
    Bank(const DramConfig &cfg, unsigned bank_id, RowPolicy *policy);

    /** Would an access to (row, segment) be a row-buffer hit now? */
    bool wouldHit(Addr row, unsigned segment) const;

    /** Earliest cycle the bank can begin a new access. */
    Cycle readyAt() const { return readyAt_; }

    /**
     * Perform an access.
     *
     * @param row row id within this bank
     * @param segment sub-row segment (ignored for monolithic buffers)
     * @param is_write column write rather than read
     * @param is_prefetch TEMPO prefetch (routed to dedicated sub-rows)
     * @param app requesting application (sub-row ownership)
     * @param when earliest start time (scheduler pick time)
     * @param hold_for keep the row open at least this long after
     *        completion, overriding the close policy (0 = policy decides)
     * @param energy event counters to charge
     */
    BankAccess access(Addr row, unsigned segment, bool is_write,
                      bool is_prefetch, AppId app, Cycle when,
                      Cycle hold_for, EnergyCounters &energy);

    /** Number of row-buffer slots (1 for monolithic). */
    unsigned numSlots() const { return static_cast<unsigned>(
            slots_.size()); }

    /** Row currently open in slot @p i, or kInvalidAddr. */
    Addr openRow(unsigned i) const;

    /** Subscribe to row open/close transitions (nullptr detaches). */
    void setListener(RowTransitionListener *listener)
    {
        listener_ = listener;
    }

    /** Invoke @p fn(row, segment) for each currently-latched slot, so a
     * listener attached mid-run can synchronize its open-row view. */
    void visitOpenSlots(
        const std::function<void(Addr, unsigned)> &fn) const;

  private:
    struct Slot {
        bool valid = false;
        Addr row = 0;
        unsigned segment = 0;
        AppId owner = 0;
        Cycle lastUse = 0;
        Cycle holdUntil = 0;
        Cycle actAt = 0;          //!< when this row was activated
        unsigned hitsWhileOpen = 0;
    };

    /** Find a slot currently latching (row, segment); nullptr if none. */
    Slot *findSlot(Addr row, unsigned segment);
    const Slot *findSlot(Addr row, unsigned segment) const;

    /** Pick the victim slot for a new activation. */
    Slot *pickVictim(bool is_prefetch, AppId app);

    /** Predictor key unique across banks. */
    Addr predictorKey(Addr row) const;

    /** Close @p slot at cycle @p when (counts a precharge, informs the
     * policy, records the row-close trace event). */
    void closeSlot(Slot &slot, Cycle when, EnergyCounters &energy);

    /** Apply any refreshes due before @p when: rows close, the bank is
     * unavailable for tRFC per refresh. */
    void applyRefresh(Cycle when, EnergyCounters &energy);

    const DramConfig &cfg_;
    unsigned bankId_;
    RowPolicy *policy_;
    RowTransitionListener *listener_ = nullptr;
    std::vector<Slot> slots_;
    Cycle readyAt_ = 0;
    Cycle nextRefreshAt_ = 0;
};

} // namespace tempo

#endif // TEMPO_DRAM_BANK_HH
