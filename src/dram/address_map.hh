/**
 * @file
 * Physical-address to DRAM-coordinate decomposition.
 *
 * Bit layout (LSB first): line offset | column | channel | bank | rank |
 * row. Keeping the column bits lowest means an aligned region the size of
 * one row buffer maps to a single row — e.g. with 8KB rows and 4KB pages,
 * two spatially-adjacent physical pages share a row, exactly the layout
 * the paper's Figure 8 scheduling discussion assumes.
 */

#ifndef TEMPO_DRAM_ADDRESS_MAP_HH
#define TEMPO_DRAM_ADDRESS_MAP_HH

#include "common/types.hh"
#include "dram/config.hh"

namespace tempo {

/** Coordinates of one cache-line-sized DRAM access. */
struct DramCoord {
    unsigned channel;
    unsigned rank;
    unsigned bank;
    Addr row;      //!< globally-unique row id within the bank
    unsigned col;  //!< column (line index within the row)

    /** Flat bank index across the whole device. */
    unsigned flatBank(const DramConfig &cfg) const
    {
        return (channel * cfg.ranksPerChannel + rank) * cfg.banksPerRank
            + bank;
    }

    bool
    operator==(const DramCoord &other) const
    {
        return channel == other.channel && rank == other.rank
            && bank == other.bank && row == other.row
            && col == other.col;
    }
};

/** Stateless decoder from physical addresses to DRAM coordinates. */
class AddressMap
{
  public:
    explicit AddressMap(const DramConfig &cfg);

    /** Decode a physical (byte) address. */
    DramCoord decode(Addr paddr) const;

    /** True iff two physical addresses fall in the same row of the same
     * bank (i.e. the second enjoys a row-buffer hit after the first). */
    bool sameRow(Addr a, Addr b) const;

    /** Sub-row segment index of an address: which 1/N-th of the row it
     * falls into, for @p sub_rows sub-row buffers per bank. */
    unsigned segment(Addr paddr, unsigned sub_rows) const;

    /** segment() for a caller that already decoded the column — skips
     * re-decoding the whole address. */
    unsigned segmentOfCol(unsigned col, unsigned sub_rows) const;

    unsigned colBits() const { return colBits_; }

  private:
    unsigned colBits_;
    unsigned channelBits_;
    unsigned bankBits_;
    unsigned rankBits_;
    unsigned channels_;
    unsigned banks_;
    unsigned ranks_;
    Addr rowBytes_;
};

} // namespace tempo

#endif // TEMPO_DRAM_ADDRESS_MAP_HH
