/**
 * @file
 * The DRAM device: banks behind an address map, plus energy accounting.
 *
 * The device is a passive timing model — the memory controller decides
 * *when* and *in what order* accesses happen; the device answers what each
 * access costs given current row-buffer state.
 */

#ifndef TEMPO_DRAM_DRAM_HH
#define TEMPO_DRAM_DRAM_HH

#include <memory>
#include <vector>

#include "common/types.hh"
#include "dram/address_map.hh"
#include "dram/bank.hh"
#include "dram/config.hh"
#include "dram/row_policy.hh"
#include "stats/stats.hh"

namespace tempo {

/** Timing outcome of one device access. */
struct DramResult {
    RowEvent event;
    Cycle start;
    Cycle complete;
};

class DramDevice
{
  public:
    explicit DramDevice(const DramConfig &cfg);

    /**
     * Access the line at @p paddr.
     * @param when earliest start (after scheduling + bus availability)
     * @param hold_for TEMPO row-hold after completion (0 = none)
     */
    DramResult access(Addr paddr, bool is_write, bool is_prefetch,
                      AppId app, Cycle when, Cycle hold_for);

    /** Would @p paddr row-hit right now? (scheduler FR-FCFS test) */
    bool wouldRowHit(Addr paddr) const;

    /** Earliest cycle the bank owning @p paddr can start an access. */
    Cycle bankReadyAt(Addr paddr) const;

    /** Same, by flat bank index — lets a caller that already decoded the
     * address (the indexed Tx queue) skip the decode. */
    Cycle bankReadyAtFlat(unsigned flat_bank) const
    {
        return banks_[flat_bank].readyAt();
    }

    /**
     * Subscribe @p listener to row open/close transitions across all
     * banks (nullptr detaches). Listener callbacks receive the flat bank
     * index. One listener at a time; the memory controller's transaction
     * queue owns the slot.
     */
    void setRowListener(RowTransitionListener *listener);

    /** Invoke @p fn(flat_bank, row, segment) for every currently-open
     * row, so a listener attached mid-run starts synchronized. */
    void visitOpenRows(
        const std::function<void(unsigned, Addr, unsigned)> &fn) const;

    const AddressMap &map() const { return map_; }
    const DramConfig &config() const { return cfg_; }

    const EnergyCounters &energy() const { return energy_; }

    /** Dynamic energy consumed so far (config's per-event weights). */
    double dynamicEnergy() const;

    /** Row-buffer event totals. */
    std::uint64_t rowHits() const { return rowHits_; }
    std::uint64_t rowMisses() const { return rowMisses_; }
    std::uint64_t rowConflicts() const { return rowConflicts_; }
    std::uint64_t accesses() const
    {
        return rowHits_ + rowMisses_ + rowConflicts_;
    }

    void report(stats::Report &out) const;

    /** Clear event/energy counters, keeping row-buffer state
     * (warmup support). */
    void resetStats();

  private:
    DramConfig cfg_;
    AddressMap map_;
    std::unique_ptr<RowPolicy> policy_;
    std::vector<Bank> banks_;
    EnergyCounters energy_;
    std::uint64_t rowHits_ = 0;
    std::uint64_t rowMisses_ = 0;
    std::uint64_t rowConflicts_ = 0;
};

} // namespace tempo

#endif // TEMPO_DRAM_DRAM_HH
