#include "dram/address_map.hh"

#include "common/log.hh"

namespace tempo {

AddressMap::AddressMap(const DramConfig &cfg)
    : channels_(cfg.channels),
      banks_(cfg.banksPerRank),
      ranks_(cfg.ranksPerChannel),
      rowBytes_(cfg.rowBufferBytes)
{
    TEMPO_ASSERT(isPow2(cfg.rowBufferBytes), "row size must be 2^n");
    TEMPO_ASSERT(isPow2(cfg.channels) && isPow2(cfg.banksPerRank)
                 && isPow2(cfg.ranksPerChannel),
                 "DRAM geometry must be powers of two");
    colBits_ = log2Exact(cfg.rowBufferBytes / kLineBytes);
    channelBits_ = log2Exact(cfg.channels);
    bankBits_ = log2Exact(cfg.banksPerRank);
    rankBits_ = log2Exact(cfg.ranksPerChannel);
}

DramCoord
AddressMap::decode(Addr paddr) const
{
    Addr bits = paddr >> log2Exact(kLineBytes);
    DramCoord coord{};
    coord.col = static_cast<unsigned>(bits & ((1ull << colBits_) - 1));
    bits >>= colBits_;
    coord.channel = static_cast<unsigned>(bits & (channels_ - 1));
    bits >>= channelBits_;
    coord.bank = static_cast<unsigned>(bits & (banks_ - 1));
    bits >>= bankBits_;
    coord.rank = static_cast<unsigned>(bits & (ranks_ - 1));
    bits >>= rankBits_;
    coord.row = bits;
    return coord;
}

bool
AddressMap::sameRow(Addr a, Addr b) const
{
    const DramCoord ca = decode(a);
    const DramCoord cb = decode(b);
    return ca.channel == cb.channel && ca.rank == cb.rank
        && ca.bank == cb.bank && ca.row == cb.row;
}

unsigned
AddressMap::segment(Addr paddr, unsigned sub_rows) const
{
    return segmentOfCol(decode(paddr).col, sub_rows);
}

unsigned
AddressMap::segmentOfCol(unsigned col, unsigned sub_rows) const
{
    TEMPO_ASSERT(sub_rows > 0 && isPow2(sub_rows),
                 "sub-row count must be a nonzero power of two");
    const unsigned cols_per_segment =
        static_cast<unsigned>((rowBytes_ / kLineBytes) / sub_rows);
    return col / cols_per_segment;
}

} // namespace tempo
