#include "dram/row_policy.hh"

#include "common/log.hh"

namespace tempo {

RowPredictor::RowPredictor(unsigned sets, unsigned ways)
    : sets_(sets), ways_(ways), entries_(sets * ways)
{
    TEMPO_ASSERT(sets > 0 && ways > 0, "empty predictor");
}

const RowPredictor::Entry *
RowPredictor::find(Addr row) const
{
    ++lookups_;
    const unsigned set = static_cast<unsigned>(row % sets_);
    for (unsigned w = 0; w < ways_; ++w) {
        const Entry &e = entries_[set * ways_ + w];
        if (e.valid && e.row == row)
            return &e;
    }
    return nullptr;
}

RowPredictor::Entry *
RowPredictor::findOrAllocate(Addr row)
{
    const unsigned set = static_cast<unsigned>(row % sets_);
    Entry *victim = nullptr;
    for (unsigned w = 0; w < ways_; ++w) {
        Entry &e = entries_[set * ways_ + w];
        if (e.valid && e.row == row)
            return &e;
        if (!victim || !e.valid
            || (victim->valid && e.lastUse < victim->lastUse)) {
            victim = &e;
        }
    }
    victim->valid = true;
    victim->row = row;
    victim->counter = 2;
    return victim;
}

bool
RowPredictor::predictKeepOpen(Addr row) const
{
    const Entry *e = find(row);
    if (!e)
        return true; // optimistic default
    return e->counter >= 2;
}

void
RowPredictor::update(Addr row, unsigned hits)
{
    Entry *e = findOrAllocate(row);
    e->lastUse = ++tick_;
    if (hits > 0) {
        if (e->counter < 3)
            ++e->counter;
    } else {
        if (e->counter > 0)
            --e->counter;
    }
}

RowPolicy::RowPolicy(const DramConfig &cfg)
    : kind_(cfg.rowPolicy),
      predictor_(cfg.predictorSets, cfg.predictorWays)
{
}

bool
RowPolicy::keepOpenAfterAccess(Addr row)
{
    switch (kind_) {
      case RowPolicyKind::Open:
        return true;
      case RowPolicyKind::Closed:
        return false;
      case RowPolicyKind::Adaptive:
        return predictor_.predictKeepOpen(row);
    }
    return true;
}

void
RowPolicy::rowClosed(Addr row, unsigned hits)
{
    if (kind_ == RowPolicyKind::Adaptive)
        predictor_.update(row, hits);
}

} // namespace tempo
