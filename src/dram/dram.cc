#include "dram/dram.hh"

#include "common/log.hh"
#include "common/profiler.hh"

namespace tempo {

DramDevice::DramDevice(const DramConfig &cfg)
    : cfg_(cfg), map_(cfg), policy_(std::make_unique<RowPolicy>(cfg))
{
    banks_.reserve(cfg.totalBanks());
    for (unsigned i = 0; i < cfg.totalBanks(); ++i)
        banks_.emplace_back(cfg_, i, policy_.get());
}

DramResult
DramDevice::access(Addr paddr, bool is_write, bool is_prefetch, AppId app,
                   Cycle when, Cycle hold_for)
{
    prof::Scope prof_scope(prof::Component::Dram);
    const DramCoord coord = map_.decode(paddr);
    Bank &bank = banks_[coord.flatBank(cfg_)];
    const unsigned segment =
        cfg_.subRowAlloc == SubRowAlloc::None
            ? 0
            : map_.segment(paddr, cfg_.subRowCount);

    const BankAccess access = bank.access(coord.row, segment, is_write,
                                          is_prefetch, app, when, hold_for,
                                          energy_);
    switch (access.event) {
      case RowEvent::Hit: ++rowHits_; break;
      case RowEvent::Miss: ++rowMisses_; break;
      case RowEvent::Conflict: ++rowConflicts_; break;
    }
    return DramResult{access.event, access.start, access.complete};
}

bool
DramDevice::wouldRowHit(Addr paddr) const
{
    const DramCoord coord = map_.decode(paddr);
    const Bank &bank = banks_[coord.flatBank(cfg_)];
    const unsigned segment =
        cfg_.subRowAlloc == SubRowAlloc::None
            ? 0
            : map_.segment(paddr, cfg_.subRowCount);
    return bank.wouldHit(coord.row, segment);
}

Cycle
DramDevice::bankReadyAt(Addr paddr) const
{
    const DramCoord coord = map_.decode(paddr);
    return banks_[coord.flatBank(cfg_)].readyAt();
}

void
DramDevice::setRowListener(RowTransitionListener *listener)
{
    for (Bank &bank : banks_)
        bank.setListener(listener);
}

void
DramDevice::visitOpenRows(
    const std::function<void(unsigned, Addr, unsigned)> &fn) const
{
    for (unsigned i = 0; i < banks_.size(); ++i) {
        banks_[i].visitOpenSlots([&](Addr row, unsigned segment) {
            fn(i, row, segment);
        });
    }
}

double
DramDevice::dynamicEnergy() const
{
    return static_cast<double>(energy_.activates) * cfg_.eAct
        + static_cast<double>(energy_.precharges) * cfg_.ePre
        + static_cast<double>(energy_.colReads) * cfg_.eColRead
        + static_cast<double>(energy_.colWrites) * cfg_.eColWrite
        + static_cast<double>(energy_.refreshes) * cfg_.eRefresh;
}

void
DramDevice::resetStats()
{
    energy_ = EnergyCounters{};
    rowHits_ = 0;
    rowMisses_ = 0;
    rowConflicts_ = 0;
}

void
DramDevice::report(stats::Report &out) const
{
    out.add("row_hits", rowHits_);
    out.add("row_misses", rowMisses_);
    out.add("row_conflicts", rowConflicts_);
    out.add("row_hit_rate", stats::ratio(rowHits_, accesses()));
    out.add("activates", energy_.activates);
    out.add("precharges", energy_.precharges);
    out.add("col_reads", energy_.colReads);
    out.add("col_writes", energy_.colWrites);
    out.add("refreshes", energy_.refreshes);
    out.add("dynamic_energy", dynamicEnergy());
}

} // namespace tempo
