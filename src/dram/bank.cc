#include "dram/bank.hh"

#include <algorithm>

#include "common/log.hh"
#include "obs/obs.hh"

namespace tempo {

Bank::Bank(const DramConfig &cfg, unsigned bank_id, RowPolicy *policy)
    : cfg_(cfg), bankId_(bank_id), policy_(policy)
{
    // Stagger refresh across banks so they do not all block at once,
    // as real controllers do.
    if (cfg.refreshEnabled)
        nextRefreshAt_ = cfg.tREFI + bank_id * (cfg.tREFI
                                                / cfg.totalBanks());
    const unsigned slots =
        cfg.subRowAlloc == SubRowAlloc::None ? 1u : cfg.subRowCount;
    TEMPO_ASSERT(slots >= 1, "bank needs at least one row buffer slot");
    TEMPO_ASSERT(cfg.subRowsForPrefetch < slots
                     || cfg.subRowAlloc == SubRowAlloc::None
                     || cfg.subRowsForPrefetch == 0
                     || cfg.subRowsForPrefetch < cfg.subRowCount,
                 "cannot dedicate every sub-row to prefetches");
    slots_.resize(slots);
}

Addr
Bank::predictorKey(Addr row) const
{
    return row * 4096 + bankId_;
}

Bank::Slot *
Bank::findSlot(Addr row, unsigned segment)
{
    const bool monolithic = slots_.size() == 1;
    for (auto &slot : slots_) {
        if (slot.valid && slot.row == row
            && (monolithic || slot.segment == segment)) {
            return &slot;
        }
    }
    return nullptr;
}

const Bank::Slot *
Bank::findSlot(Addr row, unsigned segment) const
{
    return const_cast<Bank *>(this)->findSlot(row, segment);
}

bool
Bank::wouldHit(Addr row, unsigned segment) const
{
    return findSlot(row, segment) != nullptr;
}

Addr
Bank::openRow(unsigned i) const
{
    const Slot &slot = slots_.at(i);
    return slot.valid ? slot.row : kInvalidAddr;
}

void
Bank::visitOpenSlots(const std::function<void(Addr, unsigned)> &fn) const
{
    for (const Slot &slot : slots_) {
        if (slot.valid)
            fn(slot.row, slot.segment);
    }
}

Bank::Slot *
Bank::pickVictim(bool is_prefetch, AppId app)
{
    if (slots_.size() == 1)
        return &slots_[0];

    const unsigned dedicated = std::min<unsigned>(
        cfg_.subRowsForPrefetch, static_cast<unsigned>(slots_.size()) - 1);

    unsigned lo = 0;
    unsigned hi = static_cast<unsigned>(slots_.size());
    if (dedicated > 0) {
        if (is_prefetch) {
            hi = dedicated; // prefetches use the reserved slots
        } else {
            lo = dedicated; // demand uses the rest
        }
    }

    // FOA statically partitions the demand slots across apps; POA lets
    // usage decide (global LRU, so hungrier apps hold more slots).
    if (cfg_.subRowAlloc == SubRowAlloc::FOA && !is_prefetch
        && hi - lo > 1) {
        const unsigned span = hi - lo;
        const unsigned preferred = lo + (app % span);
        Slot &own = slots_[preferred];
        if (!own.valid)
            return &own;
        // Fall back to any invalid slot in range before evicting our own.
        for (unsigned i = lo; i < hi; ++i) {
            if (!slots_[i].valid)
                return &slots_[i];
        }
        return &own;
    }

    Slot *victim = nullptr;
    for (unsigned i = lo; i < hi; ++i) {
        Slot &slot = slots_[i];
        if (!slot.valid)
            return &slot;
        if (!victim || slot.lastUse < victim->lastUse)
            victim = &slot;
    }
    TEMPO_ASSERT(victim, "no victim slot in [", lo, ",", hi, ")");
    return victim;
}

void
Bank::closeSlot(Slot &slot, Cycle when, EnergyCounters &energy)
{
    if (!slot.valid)
        return;
    ++energy.precharges;
    policy_->rowClosed(predictorKey(slot.row), slot.hitsWhileOpen);
    if (auto *o = obs::session())
        o->rowClose(when, bankId_, slot.row);
    if (listener_)
        listener_->rowClosed(bankId_, slot.row, slot.segment);
    slot.valid = false;
    slot.hitsWhileOpen = 0;
    slot.holdUntil = 0;
}

void
Bank::applyRefresh(Cycle when, EnergyCounters &energy)
{
    if (!cfg_.refreshEnabled)
        return;
    while (nextRefreshAt_ <= when) {
        // Refresh auto-precharges every open row and occupies the bank
        // for tRFC.
        for (Slot &slot : slots_) {
            if (slot.valid) {
                policy_->rowClosed(predictorKey(slot.row),
                                   slot.hitsWhileOpen);
                if (auto *o = obs::session())
                    o->rowClose(nextRefreshAt_, bankId_, slot.row);
                if (listener_)
                    listener_->rowClosed(bankId_, slot.row, slot.segment);
                slot.valid = false;
                slot.hitsWhileOpen = 0;
                slot.holdUntil = 0;
            }
        }
        ++energy.refreshes;
        readyAt_ = std::max(readyAt_, nextRefreshAt_ + cfg_.tRFC);
        nextRefreshAt_ += cfg_.tREFI;
    }
}

BankAccess
Bank::access(Addr row, unsigned segment, bool is_write, bool is_prefetch,
             AppId app, Cycle when, Cycle hold_for,
             EnergyCounters &energy)
{
    applyRefresh(when, energy);
    Cycle start = std::max(when, readyAt_);
    BankAccess result{};

    Slot *slot = findSlot(row, segment);
    if (slot) {
        result.event = RowEvent::Hit;
        result.start = start;
        result.complete = start + cfg_.hitLatency();
        ++slot->hitsWhileOpen;
    } else {
        slot = pickVictim(is_prefetch, app);
        if (slot->valid) {
            // Conflict: must wait out any TEMPO hold, then PRE + ACT.
            if (slot->holdUntil > start)
                start = slot->holdUntil;
            // Honor tRAS: a row cannot be precharged too soon after ACT.
            const Cycle earliest_pre = slot->actAt + cfg_.tRAS;
            if (earliest_pre > start)
                start = earliest_pre;
            result.event = RowEvent::Conflict;
            result.start = start;
            result.complete = start + cfg_.conflictLatency();
            closeSlot(*slot, start, energy);
        } else {
            result.event = RowEvent::Miss;
            result.start = start;
            result.complete = start + cfg_.missLatency();
        }
        ++energy.activates;
        slot->valid = true;
        slot->row = row;
        slot->segment = segment;
        slot->hitsWhileOpen = 0;
        slot->actAt = result.start;
        if (auto *o = obs::session())
            o->rowOpen(result.start, bankId_, row);
        if (listener_)
            listener_->rowOpened(bankId_, row, segment);
    }

    if (is_write)
        ++energy.colWrites;
    else
        ++energy.colReads;

    slot->owner = app;
    slot->lastUse = result.complete;
    slot->holdUntil = hold_for > 0 ? result.complete + hold_for : 0;

    // Post-access policy decision: keep the row open or precharge now.
    const bool hold_active = slot->holdUntil > result.complete;
    const bool keep_open =
        hold_active || policy_->keepOpenAfterAccess(predictorKey(row));

    if (keep_open) {
        readyAt_ = result.complete;
    } else {
        // Background precharge: off the critical path of this access but
        // the bank cannot re-activate until it finishes (and tRAS is met).
        const Cycle pre_start =
            std::max(result.complete, result.start + cfg_.tRAS);
        closeSlot(*slot, pre_start, energy);
        readyAt_ = pre_start + cfg_.tRP;
    }

    return result;
}

} // namespace tempo
