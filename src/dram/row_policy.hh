/**
 * @file
 * Row-buffer management policies.
 *
 * The open and closed policies are stateless. The adaptive policy follows
 * Awasthi et al. (PACT 2011): a set-associative *prediction cache* indexed
 * by row id remembers whether a row attracted extra hits the last time it
 * was open, and predicts whether to keep it open this time.
 */

#ifndef TEMPO_DRAM_ROW_POLICY_HH
#define TEMPO_DRAM_ROW_POLICY_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "dram/config.hh"

namespace tempo {

/**
 * Prediction cache for the adaptive row policy. Each entry holds a 2-bit
 * saturating counter: >=2 means "this row historically earned row-buffer
 * hits while open — keep it open".
 */
class RowPredictor
{
  public:
    RowPredictor(unsigned sets, unsigned ways);

    /** Should a just-accessed instance of @p row stay open? Unknown rows
     * default to open (optimistic, like the original proposal). */
    bool predictKeepOpen(Addr row) const;

    /** Learn from a closed row: it saw @p hits row-buffer hits while it
     * was open. */
    void update(Addr row, unsigned hits);

    std::uint64_t lookups() const { return lookups_; }

  private:
    struct Entry {
        bool valid = false;
        Addr row = 0;
        std::uint8_t counter = 2; // weakly keep-open
        std::uint64_t lastUse = 0;
    };

    const Entry *find(Addr row) const;
    Entry *findOrAllocate(Addr row);

    unsigned sets_;
    unsigned ways_;
    std::vector<Entry> entries_;
    std::uint64_t tick_ = 0;
    mutable std::uint64_t lookups_ = 0;
};

/**
 * Facade combining the policy kind with the predictor. Banks ask it one
 * question after each access: keep the row open or precharge it now?
 */
class RowPolicy
{
  public:
    explicit RowPolicy(const DramConfig &cfg);

    /** Decision made right after an access to @p row completes. */
    bool keepOpenAfterAccess(Addr row);

    /** Feedback when a row finally closes having seen @p hits hits. */
    void rowClosed(Addr row, unsigned hits);

    RowPolicyKind kind() const { return kind_; }

  private:
    RowPolicyKind kind_;
    RowPredictor predictor_;
};

} // namespace tempo

#endif // TEMPO_DRAM_ROW_POLICY_HH
