#include "cli/strings.hh"

#include <stdexcept>

namespace tempo::cli {

std::string
trim(const std::string &s)
{
    const char *ws = " \t\r\n";
    const std::size_t begin = s.find_first_not_of(ws);
    if (begin == std::string::npos)
        return {};
    const std::size_t end = s.find_last_not_of(ws);
    return s.substr(begin, end - begin + 1);
}

std::vector<std::string>
splitCommas(const std::string &s)
{
    std::vector<std::string> out;
    std::size_t begin = 0;
    for (;;) {
        const std::size_t comma = s.find(',', begin);
        const std::string raw = comma == std::string::npos
            ? s.substr(begin)
            : s.substr(begin, comma - begin);
        const std::string value = trim(raw);
        if (value.empty())
            throw std::invalid_argument(
                "empty value in comma-separated list '" + s + "'");
        out.push_back(value);
        if (comma == std::string::npos)
            break;
        begin = comma + 1;
    }
    return out;
}

} // namespace tempo::cli
