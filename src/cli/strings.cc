#include "cli/strings.hh"

#include <stdexcept>

namespace tempo::cli {

std::string
trim(const std::string &s)
{
    const char *ws = " \t\r\n";
    const std::size_t begin = s.find_first_not_of(ws);
    if (begin == std::string::npos)
        return {};
    const std::size_t end = s.find_last_not_of(ws);
    return s.substr(begin, end - begin + 1);
}

std::vector<std::string>
splitCommas(const std::string &s)
{
    std::vector<std::string> out;
    std::size_t begin = 0;
    for (;;) {
        const std::size_t comma = s.find(',', begin);
        const std::string raw = comma == std::string::npos
            ? s.substr(begin)
            : s.substr(begin, comma - begin);
        const std::string value = trim(raw);
        if (value.empty())
            throw std::invalid_argument(
                "empty value in comma-separated list '" + s + "'");
        out.push_back(value);
        if (comma == std::string::npos)
            break;
        begin = comma + 1;
    }
    return out;
}

std::pair<std::string, std::uint16_t>
splitHostPort(const std::string &s, const std::string &defaultHost,
              std::uint16_t defaultPort)
{
    const std::string text = trim(s);
    auto parsePort = [&](const std::string &token) -> std::uint16_t {
        if (token.empty() ||
            token.find_first_not_of("0123456789") != std::string::npos)
            throw std::invalid_argument("bad port '" + token +
                                        "' in address '" + s + "'");
        const unsigned long port = std::stoul(token);
        if (port > 65535)
            throw std::invalid_argument("port " + token +
                                        " out of range in '" + s + "'");
        return static_cast<std::uint16_t>(port);
    };
    if (text.empty())
        return {defaultHost, defaultPort};
    const std::size_t colon = text.rfind(':');
    if (colon == std::string::npos) {
        // Bare token: all digits reads as a port, else as a host.
        if (text.find_first_not_of("0123456789") == std::string::npos)
            return {defaultHost, parsePort(text)};
        return {text, defaultPort};
    }
    const std::string host = trim(text.substr(0, colon));
    return {host.empty() ? defaultHost : host,
            parsePort(trim(text.substr(colon + 1)))};
}

} // namespace tempo::cli
