/**
 * @file
 * Small string parsing helpers shared by the CLI tools, so each tool
 * does not grow its own subtly-different copy.
 */

#ifndef TEMPO_CLI_STRINGS_HH
#define TEMPO_CLI_STRINGS_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace tempo::cli {

/** Strip leading/trailing ASCII whitespace. */
std::string trim(const std::string &s);

/**
 * Parse a listen address: "host:port", ":port", a bare "port" (all
 * digits), a bare "host", or "" — absent pieces take the defaults.
 * @throws std::invalid_argument on a non-numeric or out-of-range port.
 */
std::pair<std::string, std::uint16_t>
splitHostPort(const std::string &s, const std::string &defaultHost,
              std::uint16_t defaultPort);

/**
 * Split a comma-separated list into trimmed values.
 * @throws std::invalid_argument when the list is empty or any value
 *         is empty ("a,,b", trailing comma, lone whitespace).
 */
std::vector<std::string> splitCommas(const std::string &s);

} // namespace tempo::cli

#endif // TEMPO_CLI_STRINGS_HH
