#include "cli/options.hh"

#include "cli/config_file.hh"
#include "obs/obs.hh"
#include "prefetch/registry.hh"

#include <stdexcept>

namespace tempo::cli {
namespace {

[[noreturn]] void
bad(const std::string &message)
{
    throw std::invalid_argument(message);
}

std::uint64_t
parseU64(const std::string &flag, const std::string &value)
{
    std::size_t consumed = 0;
    std::uint64_t parsed = 0;
    try {
        parsed = std::stoull(value, &consumed);
    } catch (const std::exception &) {
        bad(flag + " expects a number, got '" + value + "'");
    }
    if (consumed != value.size())
        bad(flag + " expects a number, got '" + value + "'");
    return parsed;
}

double
parseDouble(const std::string &flag, const std::string &value)
{
    std::size_t consumed = 0;
    double parsed = 0;
    try {
        parsed = std::stod(value, &consumed);
    } catch (const std::exception &) {
        bad(flag + " expects a number, got '" + value + "'");
    }
    if (consumed != value.size())
        bad(flag + " expects a number, got '" + value + "'");
    return parsed;
}

} // namespace

std::string
usage()
{
    return
        "tempo_sim — run the TEMPO simulator on one workload\n"
        "\n"
        "usage: tempo_sim [options]\n"
        "  --workload NAME     workload generator (default xsbench);\n"
        "                      see README for the full list\n"
        "  --refs N            references to simulate (default 300000)\n"
        "  --tempo             enable TEMPO\n"
        "  --compare           run baseline AND TEMPO, print the delta\n"
        "  --imp               enable the IMP indirect prefetcher\n"
        "  --prefetcher LIST   comma-separated core prefetch engines\n"
        "                      (stride,imp,tskid,misb,temporal; \"none\"\n"
        "                      disables all); selecting engines this way\n"
        "                      also reports the per-engine\n"
        "                      prefetch.<name>.* taxonomy\n"
        "  --sched S           frfcfs | bliss (default frfcfs)\n"
        "  --row-policy P      open | closed | adaptive (default "
        "adaptive)\n"
        "  --page-policy P     4k | thp | hugetlbfs2m | hugetlbfs1g\n"
        "  --frag F            memhog fragmentation level in [0,1)\n"
        "  --subrow A          none | foa | poa sub-row buffers\n"
        "  --subrow-dedicated N  sub-rows reserved for prefetches\n"
        "  --seed N            RNG seed (default 42)\n"
        "  --shards N          run each point on the sharded engine\n"
        "                      with N worker threads (also via\n"
        "                      TEMPO_SHARDS; 0 = legacy inline engine;\n"
        "                      output is identical for every N >= 1)\n"
        "  --jobs N            worker threads for --compare runs\n"
        "                      (default: all cores, or TEMPO_JOBS)\n"
        "  --retries N         re-run a failed point up to N times with\n"
        "                      a reseeded workload (default 0)\n"
        "  --point-timeout S   mark a point timed_out after S seconds\n"
        "                      of wall-clock time (default: none)\n"
        "  --checkpoint PATH   journal completed points to PATH and\n"
        "                      skip them when re-run after a crash\n"
        "  --full-report       dump every statistic\n"
        "  --csv PATH          write the full report as CSV\n"
        "  --json PATH         write results as tempo-bench-1 JSON\n"
        "  --trace-in PATH     replay a recorded trace file\n"
        "  --trace-out PATH    record the workload to a trace file and "
        "exit\n"
        "  --trace PATH        write a deterministic pipeline trace\n"
        "                      (Chrome trace-event JSON; load in "
        "Perfetto)\n"
        "  --trace-filter C    comma-separated trace categories:\n"
        "                      walk,pt,txq,prefetch,replay,row,bliss,"
        "all\n"
        "  --timeseries-window N  sample time-series metrics every N\n"
        "                      cycles into the bench JSON (default "
        "off)\n"
        "  --config PATH       apply an INI config file (see "
        "src/cli/config_file.hh)\n"
        "  --profile           report per-component wall-clock "
        "attribution\n"
        "                      (profile.* keys; nondeterministic)\n"
        "  --reference-translator  resolve translations through the\n"
        "                      unmemoized functional walk (also via\n"
        "                      TEMPO_REFERENCE_TRANSLATOR=1); results\n"
        "                      are bit-identical, only slower\n"
        "  --reference-cache   run cache/TLB tag arrays on the\n"
        "                      linear-scan reference path (also via\n"
        "                      TEMPO_REFERENCE_CACHE=1); results are\n"
        "                      bit-identical, only slower\n"
        "  --help              this text\n";
}

Options
parse(const std::vector<std::string> &args)
{
    Options options;
    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string &arg = args[i];
        auto next = [&](const char *flag) -> const std::string & {
            if (i + 1 >= args.size())
                bad(std::string(flag) + " needs a value");
            return args[++i];
        };

        if (arg == "--help" || arg == "-h") {
            options.help = true;
        } else if (arg == "--workload") {
            options.workload = next("--workload");
        } else if (arg == "--refs") {
            options.refs = parseU64(arg, next("--refs"));
            if (options.refs == 0)
                bad("--refs must be positive");
        } else if (arg == "--tempo") {
            options.tempo = true;
        } else if (arg == "--compare") {
            options.compare = true;
        } else if (arg == "--imp") {
            options.imp = true;
        } else if (arg == "--prefetcher") {
            options.prefetcher = next("--prefetcher");
        } else if (arg.rfind("--prefetcher=", 0) == 0) {
            options.prefetcher = arg.substr(13);
            if (options.prefetcher.empty())
                bad("--prefetcher needs a value");
        } else if (arg == "--sched") {
            options.sched = next("--sched");
            if (options.sched != "frfcfs" && options.sched != "bliss")
                bad("--sched must be frfcfs or bliss");
        } else if (arg == "--row-policy") {
            options.rowPolicy = next("--row-policy");
            if (options.rowPolicy != "open"
                && options.rowPolicy != "closed"
                && options.rowPolicy != "adaptive") {
                bad("--row-policy must be open, closed, or adaptive");
            }
        } else if (arg == "--page-policy") {
            options.pagePolicy = next("--page-policy");
            if (options.pagePolicy != "4k"
                && options.pagePolicy != "thp"
                && options.pagePolicy != "hugetlbfs2m"
                && options.pagePolicy != "hugetlbfs1g") {
                bad("--page-policy must be 4k, thp, hugetlbfs2m, or "
                    "hugetlbfs1g");
            }
        } else if (arg == "--frag") {
            options.frag = parseDouble(arg, next("--frag"));
            if (options.frag < 0.0 || options.frag >= 1.0)
                bad("--frag must be in [0,1)");
        } else if (arg == "--subrow") {
            options.subrow = next("--subrow");
            if (options.subrow != "none" && options.subrow != "foa"
                && options.subrow != "poa") {
                bad("--subrow must be none, foa, or poa");
            }
        } else if (arg == "--subrow-dedicated") {
            options.subrowDedicated = static_cast<unsigned>(
                parseU64(arg, next("--subrow-dedicated")));
        } else if (arg == "--seed") {
            options.seed = parseU64(arg, next("--seed"));
        } else if (arg == "--shards") {
            options.shards =
                static_cast<unsigned>(parseU64(arg, next("--shards")));
        } else if (arg == "--jobs") {
            options.jobs =
                static_cast<unsigned>(parseU64(arg, next("--jobs")));
        } else if (arg == "--retries") {
            options.retries =
                static_cast<unsigned>(parseU64(arg, next("--retries")));
        } else if (arg == "--point-timeout") {
            options.pointTimeout =
                parseDouble(arg, next("--point-timeout"));
            if (options.pointTimeout < 0)
                bad("--point-timeout must be >= 0");
        } else if (arg == "--checkpoint") {
            options.checkpointPath = next("--checkpoint");
        } else if (arg == "--full-report") {
            options.fullReport = true;
        } else if (arg == "--csv") {
            options.csvPath = next("--csv");
        } else if (arg == "--json") {
            options.jsonPath = next("--json");
        } else if (arg == "--trace-in") {
            options.traceIn = next("--trace-in");
        } else if (arg == "--trace-out") {
            options.traceOut = next("--trace-out");
        } else if (arg == "--trace") {
            options.tracePath = next("--trace");
        } else if (arg.rfind("--trace=", 0) == 0) {
            options.tracePath = arg.substr(8);
            if (options.tracePath.empty())
                bad("--trace needs a value");
        } else if (arg == "--trace-filter") {
            options.traceFilter = next("--trace-filter");
        } else if (arg.rfind("--trace-filter=", 0) == 0) {
            options.traceFilter = arg.substr(15);
        } else if (arg == "--timeseries-window") {
            options.timeseriesWindow =
                parseU64(arg, next("--timeseries-window"));
        } else if (arg.rfind("--timeseries-window=", 0) == 0) {
            options.timeseriesWindow =
                parseU64("--timeseries-window", arg.substr(20));
        } else if (arg == "--config") {
            options.configPath = next("--config");
        } else if (arg == "--profile") {
            options.profile = true;
        } else if (arg == "--reference-translator") {
            options.referenceTranslator = true;
        } else if (arg == "--reference-cache") {
            options.referenceCache = true;
        } else {
            bad("unknown option '" + arg + "' (try --help)");
        }
    }
    if (options.tempo && options.compare)
        bad("--tempo and --compare are mutually exclusive "
            "(--compare runs both)");
    // Validate the filter at parse time so typos fail before a long run
    // (throws std::invalid_argument, the same contract as bad()).
    if (!options.traceFilter.empty())
        obs::parseCategories(options.traceFilter);
    if (!options.prefetcher.empty())
        parsePrefetcherList(options.prefetcher);
    return options;
}

SystemConfig
toConfig(const Options &options)
{
    SystemConfig cfg = SystemConfig::skylakeScaled();
    cfg.withSeed(options.seed);
    cfg.withTempo(options.tempo);
    cfg.withImp(options.imp);
    cfg.withSched(options.sched == "bliss" ? SchedKind::Bliss
                                           : SchedKind::FrFcfs);
    if (options.rowPolicy == "open")
        cfg.withRowPolicy(RowPolicyKind::Open);
    else if (options.rowPolicy == "closed")
        cfg.withRowPolicy(RowPolicyKind::Closed);
    else
        cfg.withRowPolicy(RowPolicyKind::Adaptive);

    PagePolicy policy = PagePolicy::Thp;
    if (options.pagePolicy == "4k")
        policy = PagePolicy::Base4K;
    else if (options.pagePolicy == "hugetlbfs2m")
        policy = PagePolicy::Hugetlbfs2M;
    else if (options.pagePolicy == "hugetlbfs1g")
        policy = PagePolicy::Hugetlbfs1G;
    cfg.withPagePolicy(policy, options.frag);

    if (options.subrow == "foa")
        cfg.withSubRows(SubRowAlloc::FOA, options.subrowDedicated);
    else if (options.subrow == "poa")
        cfg.withSubRows(SubRowAlloc::POA, options.subrowDedicated);

    cfg.translator.useReferenceTranslator = options.referenceTranslator;
    cfg.cache.useReferenceCache = options.referenceCache;
    cfg.withShards(options.shards);

    if (!options.prefetcher.empty()) {
        cfg.withPrefetchers(options.prefetcher);
        if (cfg.prefetch.engines.empty()) {
            // "--prefetcher none" means explicitly no engines — it
            // overrides --imp rather than falling back to the flags.
            cfg.imp.enabled = false;
            cfg.stride.enabled = false;
        }
    }

    // Config files layer on top of (and can override) the flags.
    if (!options.configPath.empty())
        applyConfigFile(options.configPath, cfg);

    return cfg;
}

} // namespace tempo::cli
