/**
 * @file
 * Command-line options for the tempo_sim driver, in a library so the
 * parsing logic is unit-testable. See tools/tempo_sim.cpp for usage.
 */

#ifndef TEMPO_CLI_OPTIONS_HH
#define TEMPO_CLI_OPTIONS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/config.hh"

namespace tempo::cli {

struct Options {
    std::string workload = "xsbench";
    std::uint64_t refs = 300000;
    bool tempo = false;
    /** Run baseline and TEMPO back-to-back and print the comparison. */
    bool compare = false;
    bool imp = false;
    /** Explicit registry engine list ("stride,tskid"; "none" = no
     * engines; "" = legacy --imp / [stride] flag resolution). */
    std::string prefetcher;
    std::string sched = "frfcfs";      //!< frfcfs | bliss
    std::string rowPolicy = "adaptive"; //!< open | closed | adaptive
    std::string pagePolicy = "thp";    //!< 4k | thp | hugetlbfs2m |
                                       //!< hugetlbfs1g
    double frag = 0.0;                 //!< memhog fragmentation level
    std::string subrow = "none";       //!< none | foa | poa
    unsigned subrowDedicated = 0;
    std::uint64_t seed = 42;
    /** Sharded in-point engine: 0 = legacy inline engine (default),
     * N >= 1 = run each point on the sharded multi-domain engine with
     * N workers (also via TEMPO_SHARDS). Results are bit-identical for
     * every N >= 1 but form their own timing model — see
     * docs/MODEL.md "Sharded execution". */
    unsigned shards = 0;
    /** Worker threads for parallel runs (--compare); 0 = all cores
     * (or the TEMPO_JOBS env var). */
    unsigned jobs = 0;
    /** Extra attempts for a failed/timed-out point (reseeded). */
    unsigned retries = 0;
    /** Per-point wall-clock budget in seconds; 0 = no watchdog. */
    double pointTimeout = 0;
    /** Completed-point journal for kill/resume; "" = off. */
    std::string checkpointPath;
    bool fullReport = false;
    std::string csvPath;    //!< write the full report as CSV here
    std::string jsonPath;   //!< write results as tempo-bench-1 JSON
    std::string traceIn;    //!< replay this trace file instead of the
                            //!< named generator
    std::string traceOut;   //!< record the workload to this file and
                            //!< exit without simulating
    /** Pipeline trace (Chrome trace-event JSON) output path; "" = off.
     * Unrelated to --trace-in/--trace-out workload traces. */
    std::string tracePath;
    /** Comma-separated trace categories ("" = all). */
    std::string traceFilter;
    /** Time-series sampling window in cycles; 0 = off. */
    std::uint64_t timeseriesWindow = 0;
    std::string configPath; //!< INI file applied on top of the preset
    /** Collect wall-clock per-component attribution and report it under
     * the "profile." prefix (numbers are nondeterministic). */
    bool profile = false;
    /** Bypass the memoized translation fast path and resolve every
     * translation through the functional page-table walk (also forced
     * by TEMPO_REFERENCE_TRANSLATOR). Results are bit-identical. */
    bool referenceTranslator = false;
    /** Run every cache/TLB tag array on the linear-scan reference
     * implementation instead of the packed tag-array core (also forced
     * by TEMPO_REFERENCE_CACHE). Results are bit-identical. */
    bool referenceCache = false;
    bool help = false;
};

/**
 * Parse argv-style arguments (excluding the program name).
 * @throws std::invalid_argument with a user-readable message on bad
 *         input (the tool prints it and exits with status 2).
 */
Options parse(const std::vector<std::string> &args);

/** The --help text. */
std::string usage();

/** Build the SystemConfig an Options selection describes. */
SystemConfig toConfig(const Options &options);

} // namespace tempo::cli

#endif // TEMPO_CLI_OPTIONS_HH
