/**
 * @file
 * INI-style configuration files for the simulator, so experiments can
 * be captured as reviewable text instead of long command lines:
 *
 *   # scaled machine with a bigger LLC and open rows
 *   [caches]
 *   llc_bytes = 2097152
 *   llc_assoc = 16
 *   [dram]
 *   row_policy = open
 *   channels = 4
 *   [mc]
 *   tempo = true
 *   pt_row_hold = 10
 *
 * Unknown keys are an error (typos must not silently do nothing).
 * Values are bool ("true"/"false"/"1"/"0"), integers, floats, or the
 * enum spellings used by the CLI.
 */

#ifndef TEMPO_CLI_CONFIG_FILE_HH
#define TEMPO_CLI_CONFIG_FILE_HH

#include <string>

#include "core/config.hh"

namespace tempo::cli {

/**
 * Apply @p ini_text (INI syntax, see file comment) on top of @p cfg.
 * @throws std::invalid_argument naming the offending line on errors.
 */
void applyConfigText(const std::string &ini_text, SystemConfig &cfg);

/** Load @p path and apply it. @throws std::invalid_argument. */
void applyConfigFile(const std::string &path, SystemConfig &cfg);

} // namespace tempo::cli

#endif // TEMPO_CLI_CONFIG_FILE_HH
