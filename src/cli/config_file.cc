#include "cli/config_file.hh"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "prefetch/registry.hh"

namespace tempo::cli {
namespace {

[[noreturn]] void
bad(int line_no, const std::string &message)
{
    throw std::invalid_argument("config line "
                                + std::to_string(line_no) + ": "
                                + message);
}

std::string
trim(const std::string &s)
{
    const auto begin = s.find_first_not_of(" \t\r");
    if (begin == std::string::npos)
        return {};
    const auto end = s.find_last_not_of(" \t\r");
    return s.substr(begin, end - begin + 1);
}

bool
parseBool(int line_no, const std::string &value)
{
    if (value == "true" || value == "1")
        return true;
    if (value == "false" || value == "0")
        return false;
    bad(line_no, "expected a boolean, got '" + value + "'");
}

std::uint64_t
parseUnsigned(int line_no, const std::string &value)
{
    try {
        std::size_t consumed = 0;
        const std::uint64_t parsed = std::stoull(value, &consumed);
        if (consumed == value.size())
            return parsed;
    } catch (const std::exception &) {
    }
    bad(line_no, "expected an integer, got '" + value + "'");
}

double
parseFloat(int line_no, const std::string &value)
{
    try {
        std::size_t consumed = 0;
        const double parsed = std::stod(value, &consumed);
        if (consumed == value.size())
            return parsed;
    } catch (const std::exception &) {
    }
    bad(line_no, "expected a number, got '" + value + "'");
}

void
applyKey(int line_no, SystemConfig &cfg, const std::string &section,
         const std::string &key, const std::string &value)
{
    auto u = [&] { return parseUnsigned(line_no, value); };
    auto f = [&] { return parseFloat(line_no, value); };
    auto b = [&] { return parseBool(line_no, value); };

    if (section == "caches") {
        if (key == "l1_bytes") cfg.caches.l1.sizeBytes = u();
        else if (key == "l1_assoc") cfg.caches.l1.assoc = u();
        else if (key == "l1_latency") cfg.caches.l1.latency = u();
        else if (key == "l2_bytes") cfg.caches.l2.sizeBytes = u();
        else if (key == "l2_assoc") cfg.caches.l2.assoc = u();
        else if (key == "l2_latency") cfg.caches.l2.latency = u();
        else if (key == "llc_bytes") cfg.caches.llc.sizeBytes = u();
        else if (key == "llc_assoc") cfg.caches.llc.assoc = u();
        else if (key == "llc_latency") cfg.caches.llc.latency = u();
        else if (key == "reference_cache")
            cfg.cache.useReferenceCache = b();
        else bad(line_no, "unknown [caches] key '" + key + "'");
    } else if (section == "tlb") {
        if (key == "l1_entries_4k") cfg.tlb.l1Entries4K = u();
        else if (key == "l1_entries_2m") cfg.tlb.l1Entries2M = u();
        else if (key == "l1_entries_1g") cfg.tlb.l1Entries1G = u();
        else if (key == "l2_entries") cfg.tlb.l2Entries = u();
        else if (key == "l2_assoc") cfg.tlb.l2Assoc = u();
        else if (key == "l1_latency") cfg.tlb.l1Latency = u();
        else if (key == "l2_latency") cfg.tlb.l2Latency = u();
        else bad(line_no, "unknown [tlb] key '" + key + "'");
    } else if (section == "mmu") {
        if (key == "entries_per_level") cfg.mmu.entriesPerLevel = u();
        else if (key == "assoc") cfg.mmu.assoc = u();
        else bad(line_no, "unknown [mmu] key '" + key + "'");
    } else if (section == "dram") {
        if (key == "channels") cfg.dram.channels = u();
        else if (key == "ranks") cfg.dram.ranksPerChannel = u();
        else if (key == "banks") cfg.dram.banksPerRank = u();
        else if (key == "row_bytes") cfg.dram.rowBufferBytes = u();
        else if (key == "trcd") cfg.dram.tRCD = u();
        else if (key == "trp") cfg.dram.tRP = u();
        else if (key == "tcas") cfg.dram.tCAS = u();
        else if (key == "tburst") cfg.dram.tBurst = u();
        else if (key == "tras") cfg.dram.tRAS = u();
        else if (key == "refresh") cfg.dram.refreshEnabled = b();
        else if (key == "trefi") cfg.dram.tREFI = u();
        else if (key == "trfc") cfg.dram.tRFC = u();
        else if (key == "row_policy") {
            if (value == "open") cfg.dram.rowPolicy = RowPolicyKind::Open;
            else if (value == "closed")
                cfg.dram.rowPolicy = RowPolicyKind::Closed;
            else if (value == "adaptive")
                cfg.dram.rowPolicy = RowPolicyKind::Adaptive;
            else bad(line_no, "unknown row_policy '" + value + "'");
        } else if (key == "subrow_alloc") {
            if (value == "none") cfg.dram.subRowAlloc = SubRowAlloc::None;
            else if (value == "foa") cfg.dram.subRowAlloc = SubRowAlloc::FOA;
            else if (value == "poa") cfg.dram.subRowAlloc = SubRowAlloc::POA;
            else bad(line_no, "unknown subrow_alloc '" + value + "'");
        } else if (key == "subrow_count") {
            cfg.dram.subRowCount = u();
        } else if (key == "subrows_for_prefetch") {
            cfg.dram.subRowsForPrefetch = u();
        } else {
            bad(line_no, "unknown [dram] key '" + key + "'");
        }
    } else if (section == "mc") {
        if (key == "tempo") cfg.mc.tempoEnabled = b();
        else if (key == "llc_fill") cfg.mc.tempoLlcFill = b();
        else if (key == "pt_row_hold") cfg.mc.tempoPtRowHold = u();
        else if (key == "grace_period") cfg.mc.tempoGracePeriod = u();
        else if (key == "grouping") cfg.mc.tempoGrouping = b();
        else if (key == "engine_delay") cfg.mc.prefetchEngineDelay = u();
        else if (key == "drop_depth") cfg.mc.prefetchDropDepth = u();
        else if (key == "sched") {
            if (value == "frfcfs") cfg.mc.sched = SchedKind::FrFcfs;
            else if (value == "bliss") cfg.mc.sched = SchedKind::Bliss;
            else bad(line_no, "unknown sched '" + value + "'");
        } else if (key == "bliss_threshold") {
            cfg.mc.scheduler.blissThreshold = u();
        } else if (key == "bliss_prefetch_weight") {
            cfg.mc.scheduler.blissPrefetchWeight = u();
        } else {
            bad(line_no, "unknown [mc] key '" + key + "'");
        }
    } else if (section == "vm") {
        if (key == "page_policy") {
            if (value == "4k") cfg.vm.policy = PagePolicy::Base4K;
            else if (value == "thp") cfg.vm.policy = PagePolicy::Thp;
            else if (value == "hugetlbfs2m")
                cfg.vm.policy = PagePolicy::Hugetlbfs2M;
            else if (value == "hugetlbfs1g")
                cfg.vm.policy = PagePolicy::Hugetlbfs1G;
            else bad(line_no, "unknown page_policy '" + value + "'");
        } else if (key == "frag") {
            cfg.os.fragLevel = f();
        } else if (key == "thp_eligible") {
            cfg.vm.thpEligibleFrac = f();
        } else if (key == "reference_translator") {
            cfg.translator.useReferenceTranslator = b();
        } else if (key == "translator_slots") {
            cfg.translator.memoSlots = static_cast<unsigned>(u());
            if (!isPow2(cfg.translator.memoSlots))
                bad(line_no, "translator_slots must be a power of 2");
        } else {
            bad(line_no, "unknown [vm] key '" + key + "'");
        }
    } else if (section == "imp") {
        if (key == "enabled") cfg.imp.enabled = b();
        else if (key == "coverage") cfg.imp.coverage = f();
        else if (key == "accuracy") cfg.imp.accuracy = f();
        else if (key == "distance") cfg.imp.prefetchDistance = u();
        else if (key == "table_entries")
            cfg.imp.prefetchTableEntries = u();
        else bad(line_no, "unknown [imp] key '" + key + "'");
    } else if (section == "prefetch") {
        if (key == "engines") {
            try {
                cfg.prefetch.engines = parsePrefetcherList(value);
            } catch (const std::invalid_argument &e) {
                bad(line_no, e.what());
            }
            if (cfg.prefetch.engines.empty()) {
                // "engines = none": explicitly no core prefetchers,
                // overriding any imp/stride enable flags.
                cfg.imp.enabled = false;
                cfg.stride.enabled = false;
            }
        } else {
            bad(line_no, "unknown [prefetch] key '" + key + "'");
        }
    } else if (section == "stride") {
        if (key == "enabled") cfg.stride.enabled = b();
        else if (key == "table_entries") cfg.stride.tableEntries = u();
        else if (key == "confidence_threshold")
            cfg.stride.confidenceThreshold = u();
        else if (key == "degree") cfg.stride.degree = u();
        else if (key == "distance") cfg.stride.distance = u();
        else bad(line_no, "unknown [stride] key '" + key + "'");
    } else if (section == "tskid") {
        if (key == "table_entries") cfg.tskid.tableEntries = u();
        else if (key == "confidence_threshold")
            cfg.tskid.confidenceThreshold = u();
        else if (key == "degree") cfg.tskid.degree = u();
        else if (key == "distance") cfg.tskid.distance = u();
        else if (key == "lead_cycles") cfg.tskid.leadCycles = u();
        else if (key == "max_pending") cfg.tskid.maxPending = u();
        else bad(line_no, "unknown [tskid] key '" + key + "'");
    } else if (section == "misb") {
        if (key == "pair_entries") cfg.misb.pairEntries = u();
        else if (key == "metadata_cache_entries")
            cfg.misb.metadataCacheEntries = u();
        else if (key == "degree") cfg.misb.degree = u();
        else if (key == "train_threshold") cfg.misb.trainThreshold = u();
        else if (key == "max_metadata_inflight")
            cfg.misb.maxMetadataInflight = u();
        else bad(line_no, "unknown [misb] key '" + key + "'");
    } else if (section == "temporal") {
        if (key == "table_entries") cfg.temporal.tableEntries = u();
        else if (key == "confidence_threshold")
            cfg.temporal.confidenceThreshold = u();
        else if (key == "degree") cfg.temporal.degree = u();
        else if (key == "train_threshold")
            cfg.temporal.trainThreshold = u();
        else bad(line_no, "unknown [temporal] key '" + key + "'");
    } else if (section == "core") {
        if (key == "mlp_window") {
            cfg.mlpWindow = u();
            cfg.useWorkloadMlpHint = false;
        } else if (key == "issue_gap") {
            cfg.issueGap = u();
        } else if (key == "tlb_fill_latency") {
            cfg.tlbFillLatency = u();
        } else if (key == "seed") {
            cfg.withSeed(u());
        } else {
            bad(line_no, "unknown [core] key '" + key + "'");
        }
    } else {
        bad(line_no, "unknown section [" + section + "]");
    }
}

} // namespace

void
applyConfigText(const std::string &ini_text, SystemConfig &cfg)
{
    std::istringstream stream(ini_text);
    std::string raw;
    std::string section;
    int line_no = 0;
    while (std::getline(stream, raw)) {
        ++line_no;
        std::string line = raw;
        const auto comment = line.find_first_of("#;");
        if (comment != std::string::npos)
            line.resize(comment);
        line = trim(line);
        if (line.empty())
            continue;
        if (line.front() == '[') {
            if (line.back() != ']')
                bad(line_no, "malformed section header");
            section = trim(line.substr(1, line.size() - 2));
            continue;
        }
        const auto eq = line.find('=');
        if (eq == std::string::npos)
            bad(line_no, "expected 'key = value'");
        const std::string key = trim(line.substr(0, eq));
        const std::string value = trim(line.substr(eq + 1));
        if (key.empty() || value.empty())
            bad(line_no, "expected 'key = value'");
        if (section.empty())
            bad(line_no, "key before any [section]");
        applyKey(line_no, cfg, section, key, value);
    }
}

void
applyConfigFile(const std::string &path, SystemConfig &cfg)
{
    std::ifstream file(path);
    if (!file)
        throw std::invalid_argument("cannot open config file: " + path);
    std::ostringstream content;
    content << file.rdbuf();
    applyConfigText(content.str(), cfg);
}

} // namespace tempo::cli
