/**
 * @file
 * One simulated core running one application: the reference state
 * machine that ties the TLB, MMU caches, page table walker, cache
 * hierarchy, IMP prefetcher, and memory controller together.
 *
 * Timing model: the core issues one memory reference per issueGap cycles
 * and keeps up to `window` references in flight (an ROB-style MLP
 * window). Each reference runs the paper's Figure 5 timeline:
 *
 *   TLB probe -> (miss) MMU-cache probe -> serial PTE fetches through
 *   the caches and DRAM (the leaf fetch TEMPO-tagged) -> TLB fill ->
 *   replay through the caches and DRAM.
 *
 * Runtime-attribution: each reference accumulates the DRAM portions of
 * its walk and replay; the Figure 1 runtime split reports each
 * category's share of total reference cycles.
 */

#ifndef TEMPO_CORE_SIM_CORE_HH
#define TEMPO_CORE_SIM_CORE_HH

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "cache/hierarchy.hh"
#include "core/machine.hh"
#include "prefetch/prefetcher.hh"
#include "stats/stats.hh"
#include "vm/address_space.hh"
#include "vm/mmu_cache.hh"
#include "vm/tlb.hh"
#include "vm/walker.hh"
#include "workloads/workload.hh"

namespace tempo {

/**
 * Lifecycle taxonomy for one registry prefetch engine. Every issued
 * prefetch ends up in exactly one bucket:
 *
 *   useful  - a demand reference later hit the prefetched line while it
 *             was still resident;
 *   late    - a demand reference arrived while the prefetch fill was
 *             still in flight and merged with it (partial overlap);
 *   useless - issued but never referenced (computed at report time as
 *             issued - useful - late, so the three always sum back).
 *
 * `dropped` counts targets discarded before issue (in-flight cap or
 * metadata-port cap) and is disjoint from `issued`.
 */
struct PrefetchEngineStats {
    std::string name;
    std::uint64_t issued = 0;
    std::uint64_t useful = 0;
    std::uint64_t late = 0;
    std::uint64_t dropped = 0;
    std::uint64_t faults = 0; //!< chains dropped at unmapped pages
    std::uint64_t metadataFetches = 0; //!< off-chip metadata reads

    std::uint64_t
    useless() const
    {
        return issued - useful - late;
    }
};

/** Everything a run measures, per core. */
struct CoreStats {
    std::uint64_t refs = 0;
    std::uint64_t pageFaults = 0;

    // Page-table walk traffic.
    std::uint64_t walks = 0;
    std::uint64_t ptDramAccesses = 0;     //!< all PT fetches from DRAM
    std::uint64_t leafPtDramAccesses = 0; //!< ... that were leaf PTEs
    std::uint64_t walksWithLeafDram = 0;  //!< walks whose leaf hit DRAM
    std::uint64_t ptDramByLevel[5] = {};  //!< DRAM PT fetches per level
    std::uint64_t leafPtL1Hits = 0;       //!< leaf PTE found in L1D
    std::uint64_t leafPtL2Hits = 0;       //!< leaf PTE found in L2
    std::uint64_t leafPtLlcHits = 0;      //!< leaf PTE found in the LLC

    // Demand DRAM traffic.
    std::uint64_t replayDramAccesses = 0;  //!< replays that reached DRAM
    std::uint64_t regularDramAccesses = 0; //!< TLB-hit refs from DRAM

    // The paper's 98% observation and Fig. 11 breakdown: replays whose
    // walk needed DRAM, and where they were ultimately serviced.
    std::uint64_t replayAfterDramWalk = 0;
    std::uint64_t replayDramAfterDramWalk = 0;
    std::uint64_t replayLlcHits = 0;     //!< serviced by LLC (TEMPO fill)
    std::uint64_t replayPrivateHits = 0; //!< L1/L2 hit (rare)
    std::uint64_t replayMerged = 0;      //!< merged with in-flight prefetch
    std::uint64_t replayRowHits = 0;     //!< DRAM row-buffer hit
    std::uint64_t replayArray = 0;       //!< full DRAM array access

    // MSHR merges: references that piggybacked on an in-flight fill of
    // the same line instead of issuing a duplicate DRAM access.
    std::uint64_t ptMshrMerges = 0;
    std::uint64_t dataMshrMerges = 0;

    // IMP/stride prefetcher chains.
    std::uint64_t impIssued = 0;
    std::uint64_t strideIssued = 0;
    std::uint64_t impDroppedInflight = 0;
    std::uint64_t impFaults = 0; //!< prefetch walks that hit unmapped PTEs
    std::uint64_t tlbPrefetches = 0; //!< next-page TLB prefetch chains

    // Per-engine taxonomy, one slot per registry engine in dispatch
    // order. Tracked unconditionally (it is timing-neutral); the
    // prefetch.<name>.* report keys are emitted only when the engine
    // list was explicit, so legacy-config output stays byte-identical.
    std::vector<PrefetchEngineStats> prefetchEngines;
    bool prefetchEngineKeys = false;

    // Runtime attribution (cycles summed over references).
    double cyclesPtwDram = 0;
    double cyclesReplayDram = 0;
    double cyclesOtherDram = 0;
    double cyclesTotal = 0;

    Cycle lastFinish = 0;

    void report(stats::Report &out) const;
};

class SimCore
{
    // Sharded-mode ownership, declared before everything else:
    // addressSpace below binds whichever OsMemory these resolve to, so
    // they must be constructed first. Null in legacy inline mode.
    std::unique_ptr<EventQueue> ownEq_;
    std::unique_ptr<OsMemory> ownOs_;

  public:
    SimCore(Machine &machine, AppId app,
            std::unique_ptr<Workload> workload);

    /** Begin issuing; the machine's event queue drives everything. */
    void start(std::uint64_t num_refs);

    bool done() const { return completed_ >= target_ && target_ > 0; }
    Cycle finishTime() const { return stats_.lastFinish; }

    const CoreStats &stats() const { return stats_; }
    Workload &workload() { return *workload_; }
    AppId app() const { return app_; }

    /** The event queue driving this core: its own domain queue when
     * sharded, the machine's single queue otherwise. */
    EventQueue &eq() { return ownEq_ ? *ownEq_ : machine_.eq; }
    const EventQueue &
    eq() const
    {
        return ownEq_ ? *ownEq_ : machine_.eq;
    }

    /** The OS pool this core allocates from: its private partition
     * when sharded, the machine's shared pool otherwise. */
    const OsMemory &
    osMemory() const
    {
        return ownOs_ ? *ownOs_ : machine_.os;
    }

    // Per-core components, exposed for reporting and tests.
    Tlb tlb;
    MmuCache mmu;
    CacheHierarchy caches;
    AddressSpace addressSpace;
    Walker walker;

    /** Registry prefetch engines driving this core, in dispatch order
     * (prefetch/registry.hh resolves them from the config). */
    std::vector<const Prefetcher *> prefetchEngines() const;

    /** Invoked once when the last reference completes. */
    std::function<void()> onDone;

    /**
     * Warmup support: invoke @p callback once, when the @p after -th
     * reference completes (callers typically reset statistics there).
     * Must be set before start().
     */
    void setWarmupCallback(std::uint64_t after,
                           std::function<void()> callback);

    /** Clear this core's statistics (counters only; all architectural
     * state — TLB/cache/table contents — is preserved). */
    void resetStats();

    /** Demand page-table walks currently in flight (for sampling). */
    std::uint64_t outstandingWalks() const { return walksOutstanding_; }

  private:
    struct RefContext;
    using RefPtr = std::shared_ptr<RefContext>;

    /** Issue references until the window is full. */
    void pump();
    void beginRef();
    /** Run one PTE fetch of a planned walk; recurses via events. */
    void walkAsync(Addr vaddr, std::shared_ptr<WalkPlan> plan,
                   std::size_t step, bool for_prefetch,
                   std::function<void(Cycle, double, bool)> done);
    void dataAccess(const RefPtr &ctx);
    /** Miss handling once the LLC lookup completes: late-prefetch hit
     * detection, MSHR merge, or a real memory-controller request. */
    void memoryAccess(const RefPtr &ctx);
    /** Sharded replacement for memoryAccess(): MSHR merge locally,
     * otherwise a port request to the shared domain; the reply point
     * (LLC hit / prefetch merge / DRAM) drives the same statistics. */
    void shardedMemoryAccess(const RefPtr &ctx);
    void finishRef(const RefPtr &ctx);

    /** Cache probe for the issue path: full L1->L2->LLC walk in legacy
     * mode, private levels only (plus victim collection) sharded. */
    CacheOutcome probeCaches(Addr addr, bool is_write);
    /** Install a returned line into the private levels (legacy
     * fillPrivate, or the collecting variant sharded). */
    void fillPrivateLevels(Addr addr, bool is_write = false);
    /** Forward collected dirty private victims as port writebacks. */
    void flushVictims();
    /** Run every engine's observe+drain on @p ref and dispatch the
     * resulting actions (the registry replacement for the hard-wired
     * maybeImpPrefetch/maybeStridePrefetch pair). */
    void runPrefetchers(const MemRef &ref);
    /** Dispatch engine @p idx's actions from actionScratch_: data
     * prefetches launch chains under the in-flight cap (legacy
     * semantics: one impDroppedInflight per capped batch), metadata
     * actions become uncached DRAM reads. */
    void dispatchActions(std::size_t idx);
    /** Model one off-chip metadata read for engine @p idx (MISB):
     * an uncached DRAM access that never touches the caches. */
    void metadataFetch(std::size_t idx, Addr addr);
    /** Launch a core-prefetcher chain for engine @p idx: translate the
     * target (possibly walking, without demand paging) and fetch its
     * line into the caches. */
    void prefetchChain(Addr target, std::size_t idx);
    void impData(Addr paddr, std::size_t idx);

    // Prefetch-usefulness classification. All four are pure counter
    // bookkeeping — no events, no cache mutations — so legacy-config
    // timing is untouched.
    /** A prefetch fill completed: remember the line as resident. */
    void notePrefetchFill(Addr line);
    /** A demand reference hit @p line in the caches. */
    void classifyDemandHit(Addr line);
    /** A demand reference merged with an in-flight fill of @p line. */
    void classifyDemandMerge(Addr line);
    /** A demand reference missed all caches for @p line: any resident
     * record for it is stale (the line was evicted since). */
    void classifyDemandMiss(Addr line);
    /** Extension: prefetch the next page's translation into the TLB. */
    void maybeTlbPrefetch(Addr vaddr, PageSize size);

    /** Allocation-free MSHR waiter: typical captures (this, a ref
     * context, a submit time) stay inline; oversized walk-chain
     * continuations fall back to the heap. */
    using MshrWaiter = InlineFunction<void(Cycle), kCompletionInlineBytes>;

    /** True when a fill of @p line is outstanding. */
    bool mshrPending(Addr line) const { return mshr_.count(line) > 0; }
    /** MSHR: if a fill of @p line is in flight, queue @p waiter for its
     * completion and return true. */
    bool mshrWait(Addr line, MshrWaiter waiter);
    /** Register an outstanding fill of @p line. */
    void mshrOpen(Addr line);
    /** Complete the fill: release all waiters at @p when. */
    void mshrClose(Addr line, Cycle when);

    Machine &machine_;
    const SystemConfig &cfg_;
    AppId app_;
    std::unique_ptr<Workload> workload_;

    std::uint64_t target_ = 0;
    std::uint64_t issued_ = 0;
    std::uint64_t completed_ = 0;
    unsigned inflight_ = 0;
    unsigned window_ = 8;
    Cycle nextIssueAt_ = 0;
    unsigned impInflight_ = 0;
    unsigned metadataInflight_ = 0;

    /** Outstanding line fills -> waiters (miss-status holding regs). */
    std::unordered_map<Addr, std::vector<MshrWaiter>> mshr_;

    /** One slot per registry engine, in dispatch order. */
    struct EngineSlot {
        std::unique_ptr<Prefetcher> engine;
        bool isImp = false;    //!< feeds the legacy impIssued counter
        bool isStride = false; //!< feeds the legacy strideIssued counter
    };
    std::vector<EngineSlot> engines_;

    /** Prefetch fills in flight: line -> issuing engine slot. */
    std::unordered_map<Addr, std::size_t> pendingPf_;
    /** Direct-mapped record of resident prefetched lines (usefulness
     * tracking only; the caches remain the source of truth). */
    struct ResidentPf {
        Addr tag = kInvalidAddr;
        std::size_t engine = 0;
    };
    std::vector<ResidentPf> pfResident_;

    std::vector<PrefetchAction> actionScratch_; //!< observe/drain out
    std::vector<Addr> victimScratch_; //!< sharded dirty-victim scratch
    DomainId domain_ = 0;             //!< this core's shard domain id

    std::uint64_t warmupAfter_ = 0;
    std::function<void()> warmupCallback_;
    std::uint64_t walksOutstanding_ = 0;

    CoreStats stats_;
};

} // namespace tempo

#endif // TEMPO_CORE_SIM_CORE_HH
