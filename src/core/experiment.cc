#include "core/experiment.hh"

#include <chrono>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "common/thread_pool.hh"
#include "common/watchdog.hh"
#include "core/checkpoint.hh"
#include "fabric/coordinator.hh"
#include "fabric/snapshot.hh"

namespace tempo {

std::uint64_t
derivedSeed(std::uint64_t base, std::uint64_t index)
{
    std::uint64_t z = base + (index + 1) * 0x9e3779b97f4a7c15ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

unsigned
defaultJobs()
{
    return ThreadPool::defaultThreads();
}

namespace {

/** Retry attempts reseed far away from the per-point index series so a
 * retried point never collides with another point's derived seed. */
constexpr std::uint64_t kRetrySalt = 0x7265747279ull; // "retry"

std::uint64_t
mix(std::uint64_t h, std::uint64_t v)
{
    const auto *p = reinterpret_cast<const unsigned char *>(&v);
    for (std::size_t i = 0; i < sizeof(v); ++i) {
        h ^= p[i];
        h *= 1099511628211ull;
    }
    return h;
}

std::uint64_t
mix(std::uint64_t h, const std::string &s)
{
    for (const char c : s) {
        h ^= static_cast<unsigned char>(c);
        h *= 1099511628211ull;
    }
    return mix(h, s.size());
}

/** Honor a FaultInjection targeting @p index, if any. Runs inside the
 * barrier with the watchdog already armed. */
void
maybeInject(const ExperimentOptions &opts, std::size_t index)
{
    for (const FaultInjection &fault : opts.inject) {
        if (fault.index != index)
            continue;
        if (fault.kind == FaultInjection::Kind::Throw)
            throw std::runtime_error("injected fault");
        // Hang: burn wall-clock time while staying cancellable, the
        // shape of a real runaway point. Without an armed watchdog
        // this would hang the suite for real, so fail loudly instead.
        if (!watchdog::armed())
            throw std::runtime_error(
                "injected hang without --point-timeout");
        while (true) {
            watchdog::detail::slowPoll();
            std::this_thread::sleep_for(std::chrono::milliseconds(10));
        }
    }
}

/**
 * The per-point exception barrier and retry loop, shared by single-app
 * and mix points. @p attempt runs one attempt from a seed and returns
 * a fully-populated result; Result must have a RunStatus `status`.
 */
template <typename Result, typename Attempt>
Result
runPointGuarded(const ExperimentOptions &opts, std::size_t index,
                std::uint64_t base_seed, std::uint64_t digest,
                Attempt &&attempt)
{
    Result result{};
    for (unsigned k = 0; k <= opts.retries; ++k) {
        const std::uint64_t seed =
            k == 0 ? base_seed : derivedSeed(base_seed, kRetrySalt + k);
        auto captureFailure = [&](RunStatus::Code code,
                                  const std::string &error) {
            // Failed attempts report a zeroed result, never a partial
            // one: the status carries everything a caller may use.
            result = Result{};
            result.status.code = code;
            result.status.error = error;
            result.status.attempts = k + 1;
            result.status.seedUsed = seed;
            result.status.digest = digest;
            result.status.exception = std::current_exception();
        };
        try {
            if (opts.pointTimeoutSec > 0)
                watchdog::arm(opts.pointTimeoutSec);
            maybeInject(opts, index);
            result = attempt(seed);
            watchdog::disarm();
            result.status = RunStatus{};
            result.status.attempts = k + 1;
            result.status.seedUsed = seed;
            result.status.digest = digest;
            return result;
        } catch (const watchdog::PointTimedOut &e) {
            watchdog::disarm();
            captureFailure(RunStatus::Code::TimedOut, e.what());
        } catch (const std::exception &e) {
            watchdog::disarm();
            captureFailure(RunStatus::Code::Failed, e.what());
        } catch (...) {
            watchdog::disarm();
            captureFailure(RunStatus::Code::Failed, "unknown exception");
        }
    }
    return result;
}

/** Rethrow the first (lowest-index) captured failure, for the legacy
 * entry points whose callers expect exceptions to propagate. */
template <typename Result>
void
rethrowFirstFailure(const std::vector<Result> &results)
{
    for (const Result &result : results) {
        if (result.status.ok())
            continue;
        if (result.status.exception)
            std::rethrow_exception(result.status.exception);
        throw std::runtime_error(result.status.error);
    }
}

} // namespace

std::uint64_t
pointDigest(const ExperimentPoint &point, std::size_t index)
{
    std::uint64_t h = 1469598103934665603ull; // FNV-1a offset basis
    h = mix(h, point.workload);
    h = mix(h, point.refs);
    h = mix(h, point.warmup);
    h = mix(h, std::uint64_t(point.seed.has_value()));
    h = mix(h, point.seed.value_or(0));
    h = mix(h, point.config.digest());
    h = mix(h, std::uint64_t(index));
    return h;
}

ExperimentOptions
ExperimentOptions::fromEnv()
{
    ExperimentOptions opts;
    if (const char *env = std::getenv("TEMPO_RETRIES"))
        opts.retries =
            static_cast<unsigned>(std::strtoul(env, nullptr, 10));
    if (const char *env = std::getenv("TEMPO_POINT_TIMEOUT"))
        opts.pointTimeoutSec = std::strtod(env, nullptr);
    if (const char *env = std::getenv("TEMPO_SHARDS"))
        opts.shards =
            static_cast<unsigned>(std::strtoul(env, nullptr, 10));
    if (const char *env = std::getenv("TEMPO_FABRIC_DIR"))
        opts.fabricDir = env;
    if (const char *env = std::getenv("TEMPO_FABRIC_ROLE")) {
        const std::string role = env;
        if (role == "worker")
            opts.fabricRole = FabricRole::Worker;
        else if (role == "coordinator")
            opts.fabricRole = FabricRole::Coordinator;
        else if (!role.empty())
            throw std::invalid_argument(
                "TEMPO_FABRIC_ROLE: expected worker or coordinator, "
                "got " + role);
    }
    if (const char *env = std::getenv("TEMPO_FABRIC_WORKER"))
        opts.fabricWorkerId = env;
    if (const char *env = std::getenv("TEMPO_FABRIC_STALE_SEC"))
        opts.fabricStaleSec = std::strtod(env, nullptr);
    if (const char *env = std::getenv("TEMPO_FABRIC_HEARTBEAT_SEC"))
        opts.fabricHeartbeatSec = std::strtod(env, nullptr);
    if (const char *env = std::getenv("TEMPO_PROGRESS"))
        opts.progressEvery =
            static_cast<unsigned>(std::strtoul(env, nullptr, 10));
    if (const char *env = std::getenv("TEMPO_FAULT_INJECT")) {
        // "<index>:throw,<index>:hang" — a test hook, so malformed
        // specs fail fast rather than silently injecting nothing.
        const std::string spec = env;
        std::size_t pos = 0;
        while (pos < spec.size()) {
            std::size_t end = spec.find(',', pos);
            if (end == std::string::npos)
                end = spec.size();
            const std::string token = spec.substr(pos, end - pos);
            const std::size_t colon = token.find(':');
            if (colon == std::string::npos)
                throw std::invalid_argument(
                    "TEMPO_FAULT_INJECT: bad token " + token);
            FaultInjection fault;
            fault.index = std::strtoul(token.c_str(), nullptr, 10);
            const std::string kind = token.substr(colon + 1);
            if (kind == "throw")
                fault.kind = FaultInjection::Kind::Throw;
            else if (kind == "hang")
                fault.kind = FaultInjection::Kind::Hang;
            else
                throw std::invalid_argument(
                    "TEMPO_FAULT_INJECT: unknown kind " + kind);
            opts.inject.push_back(fault);
            pos = end + 1;
        }
    }
    return opts;
}

std::vector<RunResult>
runExperiments(const std::vector<ExperimentPoint> &raw_points,
               const ExperimentOptions &opts)
{
    // The TEMPO_SHARDS override rewrites the points BEFORE digests are
    // computed, so checkpoint journals key on the engine that actually
    // ran (the sharded engine is its own timing model).
    std::vector<ExperimentPoint> points = raw_points;
    if (opts.shards) {
        for (ExperimentPoint &point : points)
            point.config.withShards(*opts.shards);
    }

    std::vector<std::uint64_t> digests(points.size());
    for (std::size_t i = 0; i < points.size(); ++i)
        digests[i] = pointDigest(points[i], i);

    // One attempt of point i, behind the exception barrier — shared by
    // the in-process pool and the fabric worker loop.
    auto run_one = [&](std::size_t i) -> RunResult {
        const ExperimentPoint &point = points[i];
        const std::uint64_t base_seed =
            point.seed ? *point.seed : point.config.seed;
        return runPointGuarded<RunResult>(
            opts, i, base_seed, digests[i], [&](std::uint64_t seed) {
                auto workload = point.makeWorkloadFn
                    ? point.makeWorkloadFn()
                    : makeWorkload(point.workload, seed);
                TempoSystem system(point.config, std::move(workload));
                return system.run(point.refs, point.warmup);
            });
    };

    // Progress tracker: the caller's (tempo_sweep --serve), or an
    // internal one when only --progress / TEMPO_PROGRESS is set.
    fabric::SweepProgress local_progress;
    fabric::SweepProgress *progress = opts.progress
        ? opts.progress
        : (opts.progressEvery > 0 ? &local_progress : nullptr);
    if (progress)
        progress->configure(opts.progressLabel, points.size(),
                            opts.progressEvery);

    // Fabric execution: claims, shard streaming, and the merge replace
    // the in-process pool entirely (checkpointPath is ignored — the
    // per-worker shard files are the journal; see src/fabric/).
    if (opts.fabricActive())
        return fabric::runFabric(opts, digests, run_one, progress);

    std::vector<RunResult> results(points.size());
    std::vector<char> restored(points.size(), 0);

    std::unique_ptr<SweepJournal> journal;
    if (!opts.checkpointPath.empty())
        journal = std::make_unique<SweepJournal>(opts.checkpointPath);

    for (std::size_t i = 0; i < points.size(); ++i) {
        if (journal && journal->restore(digests[i], results[i]))
            restored[i] = 1;
    }

    std::mutex done_mutex;
    parallelFor(points.size(), opts.jobs, [&](std::size_t i) {
        double wall_sec = 0;
        if (!restored[i]) {
            if (progress)
                progress->start(i);
            const auto t0 = std::chrono::steady_clock::now();
            results[i] = run_one(i);
            wall_sec = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - t0)
                           .count();
        }
        const std::lock_guard<std::mutex> lock(done_mutex);
        // Only ok points are journaled; see core/checkpoint.hh.
        if (journal && !restored[i] && results[i].status.ok())
            journal->record(digests[i], results[i]);
        if (progress)
            progress->done(i, results[i], wall_sec,
                           /*ran=*/restored[i] == 0);
        if (opts.onPointDone)
            opts.onPointDone(i, results[i]);
    });
    return results;
}

std::vector<RunResult>
runExperiments(const std::vector<ExperimentPoint> &points, unsigned jobs)
{
    ExperimentOptions opts;
    opts.jobs = jobs;
    std::vector<RunResult> results = runExperiments(points, opts);
    rethrowFirstFailure(results);
    return results;
}

std::vector<MultiResult>
runMixExperiments(const std::vector<MixPoint> &raw_points,
                  const ExperimentOptions &opts)
{
    // Mixes are fault-isolated like single-app points but neither
    // checkpoint nor report onPointDone (the callback carries a
    // RunResult); see docs/MODEL.md.
    std::vector<MixPoint> points = raw_points;
    if (opts.shards) {
        for (MixPoint &point : points)
            point.config.withShards(*opts.shards);
    }
    std::vector<MultiResult> results(points.size());
    parallelFor(points.size(), opts.jobs, [&](std::size_t i) {
        const MixPoint &point = points[i];
        results[i] = runPointGuarded<MultiResult>(
            opts, i, point.config.seed, /*digest=*/0,
            [&](std::uint64_t seed) {
                MultiSystem system(point.config,
                                   makeMix(point.workloads, seed));
                return system.run(point.refsPerApp, point.warmupPerApp);
            });
    });
    return results;
}

std::vector<MultiResult>
runMixExperiments(const std::vector<MixPoint> &points, unsigned jobs)
{
    ExperimentOptions opts;
    opts.jobs = jobs;
    std::vector<MultiResult> results = runMixExperiments(points, opts);
    rethrowFirstFailure(results);
    return results;
}

stats::BenchPoint
toBenchPoint(const std::string &workload,
             std::vector<std::pair<std::string, std::string>> config,
             const RunResult &result)
{
    stats::BenchPoint point;
    point.workload = workload;
    point.config = std::move(config);
    point.status = result.status.codeName();
    point.error = result.status.error;
    point.attempts = result.status.attempts;
    point.seedUsed = result.status.seedUsed;
    point.digest = result.status.digest;
    point.runtimeCycles = result.runtime;
    point.energy = {
        {"core_static", result.energy.coreStatic},
        {"dram_static", result.energy.dramStatic},
        {"dram_dynamic", result.energy.dramDynamic},
        {"mc_dynamic", result.energy.mcDynamic},
        {"total", result.energy.total()},
    };

    // Headline counters first (the golden-stats regression surface),
    // then the complete per-component report.
    const CoreStats &core = result.core;
    point.counters = {
        {"walks", static_cast<double>(core.walks)},
        {"leaf_pt_dram_accesses",
         static_cast<double>(core.leafPtDramAccesses)},
        {"replay_after_dram_walk",
         static_cast<double>(core.replayAfterDramWalk)},
        {"replay_llc_hit_rate",
         stats::ratio(core.replayLlcHits, core.replayAfterDramWalk)},
        {"dram_ptw", static_cast<double>(result.dramPtw)},
        {"dram_replay", static_cast<double>(result.dramReplay)},
        {"dram_other", static_cast<double>(result.dramOther)},
        {"superpage_coverage", result.superpageCoverage},
        {"coverage_2m", result.coverage2M},
        {"coverage_1g", result.coverage1G},
    };
    for (const auto &[name, value] : result.report.entries())
        point.counters.emplace_back("report." + name, value);

    if (result.obs && !result.obs->timeseries.empty()) {
        point.timeseriesWindow = result.obs->timeseries.windowCycles;
        point.timeseries = result.obs->timeseries.columns;
    }
    return point;
}

} // namespace tempo
