#include "core/experiment.hh"

#include "common/thread_pool.hh"

namespace tempo {

std::uint64_t
derivedSeed(std::uint64_t base, std::uint64_t index)
{
    std::uint64_t z = base + (index + 1) * 0x9e3779b97f4a7c15ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

unsigned
defaultJobs()
{
    return ThreadPool::defaultThreads();
}

std::vector<RunResult>
runExperiments(const std::vector<ExperimentPoint> &points, unsigned jobs)
{
    std::vector<RunResult> results(points.size());
    parallelFor(points.size(), jobs, [&](std::size_t i) {
        const ExperimentPoint &point = points[i];
        const std::uint64_t seed =
            point.seed ? point.seed : point.config.seed;
        auto workload = point.makeWorkloadFn
            ? point.makeWorkloadFn()
            : makeWorkload(point.workload, seed);
        TempoSystem system(point.config, std::move(workload));
        results[i] = system.run(point.refs, point.warmup);
    });
    return results;
}

std::vector<MultiResult>
runMixExperiments(const std::vector<MixPoint> &points, unsigned jobs)
{
    std::vector<MultiResult> results(points.size());
    parallelFor(points.size(), jobs, [&](std::size_t i) {
        const MixPoint &point = points[i];
        MultiSystem system(point.config,
                           makeMix(point.workloads, point.config.seed));
        results[i] = system.run(point.refsPerApp, point.warmupPerApp);
    });
    return results;
}

stats::BenchPoint
toBenchPoint(const std::string &workload,
             std::vector<std::pair<std::string, std::string>> config,
             const RunResult &result)
{
    stats::BenchPoint point;
    point.workload = workload;
    point.config = std::move(config);
    point.runtimeCycles = result.runtime;
    point.energy = {
        {"core_static", result.energy.coreStatic},
        {"dram_static", result.energy.dramStatic},
        {"dram_dynamic", result.energy.dramDynamic},
        {"mc_dynamic", result.energy.mcDynamic},
        {"total", result.energy.total()},
    };

    // Headline counters first (the golden-stats regression surface),
    // then the complete per-component report.
    const CoreStats &core = result.core;
    point.counters = {
        {"walks", static_cast<double>(core.walks)},
        {"leaf_pt_dram_accesses",
         static_cast<double>(core.leafPtDramAccesses)},
        {"replay_after_dram_walk",
         static_cast<double>(core.replayAfterDramWalk)},
        {"replay_llc_hit_rate",
         stats::ratio(core.replayLlcHits, core.replayAfterDramWalk)},
        {"dram_ptw", static_cast<double>(result.dramPtw)},
        {"dram_replay", static_cast<double>(result.dramReplay)},
        {"dram_other", static_cast<double>(result.dramOther)},
        {"superpage_coverage", result.superpageCoverage},
        {"coverage_2m", result.coverage2M},
        {"coverage_1g", result.coverage1G},
    };
    for (const auto &[name, value] : result.report.entries())
        point.counters.emplace_back("report." + name, value);
    return point;
}

} // namespace tempo
