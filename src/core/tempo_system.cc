#include "core/tempo_system.hh"

#include <atomic>
#include <cstdio>

#include "common/log.hh"
#include "common/profiler.hh"

namespace tempo {

double
RunResult::fracRuntimePtwDram() const
{
    return stats::ratio(core.cyclesPtwDram, core.cyclesTotal);
}

double
RunResult::fracRuntimeReplayDram() const
{
    return stats::ratio(core.cyclesReplayDram, core.cyclesTotal);
}

double
RunResult::fracRuntimeOtherDram() const
{
    return stats::ratio(core.cyclesOtherDram, core.cyclesTotal);
}

double
RunResult::fracDramPtw() const
{
    return stats::ratio(dramPtw, dramPtw + dramReplay + dramOther);
}

double
RunResult::fracDramReplay() const
{
    return stats::ratio(dramReplay, dramPtw + dramReplay + dramOther);
}

double
RunResult::fracDramOther() const
{
    return stats::ratio(dramOther, dramPtw + dramReplay + dramOther);
}

double
RunResult::speedupOver(const RunResult &baseline) const
{
    if (baseline.runtime == 0)
        return 0;
    return 1.0
        - static_cast<double>(runtime)
        / static_cast<double>(baseline.runtime);
}

double
RunResult::energySavingOver(const RunResult &baseline) const
{
    if (baseline.energy.total() == 0)
        return 0;
    return 1.0 - energy.total() / baseline.energy.total();
}

TempoSystem::TempoSystem(const SystemConfig &cfg,
                         std::unique_ptr<Workload> workload)
    : machine_(cfg)
{
    if (cfg.shards > 0) {
        engine_ = std::make_unique<ShardEngine>(machine_.portLatency(),
                                                cfg.shards);
        machine_.attachShardEngine(engine_.get(), 1);
    }
    core_ = std::make_unique<SimCore>(machine_, 0, std::move(workload));
}

RunResult
TempoSystem::run(std::uint64_t num_refs, std::uint64_t warmup_refs)
{
    // One observability session spans the whole run (created only when
    // globally enabled; disabled runs pay one relaxed load per hook).
    obs::ScopedRun obs_run;

    // Sharded runs give the shared-machine domain its own session so
    // two domains never record into one session concurrently; the app
    // session absorbs it before finish().
    std::unique_ptr<obs::Session> shared_session;
    if (engine_ && obs_run.session())
        shared_session = std::make_unique<obs::Session>(obs::config());

    Cycle measure_from = 0;
    if (warmup_refs > 0) {
        core_->setWarmupCallback(warmup_refs, [this, &measure_from] {
            measure_from = core_->eq().now();
            core_->resetStats();
            if (auto *o = obs::session())
                o->resetCounters();
            if (engine_) {
                // The shared side (MC/DRAM/LLC stats and its obs
                // session) resets when this notification arrives,
                // one port hop later.
                machine_.portWarmupNotify(core_->eq().now());
                return;
            }
            machine_.mc.resetStats();
            machine_.dram.resetStats();
            machine_.llc.resetStats();
        });
        if (engine_) {
            machine_.onSharedWarmed = [&shared_session] {
                if (shared_session)
                    shared_session->resetCounters();
            };
        }
    }
    const bool profiling = prof::enabled();
    if (profiling && !engine_)
        prof::beginWindow();
    if (obs::Session *s = obs_run.session()) {
        const Cycle window = obs::config().timeseriesWindow;
        // The sampler reads shared-side state (Tx-Q occupancy, DRAM
        // row counters) from the app domain, so it stays off under
        // sharding; "timeseries_windows" reports 0 there.
        if (window > 0 && !engine_)
            scheduleObsSample(s, window);
        else if (window > 0 && engine_) {
            static std::atomic<bool> warned{false};
            if (!warned.exchange(true))
                std::fprintf(
                    stderr,
                    "warning: time-series sampling "
                    "(timeseries-window) is disabled under the "
                    "sharded engine (shards > 0); the sampler reads "
                    "shared-side state that sharded domains cannot "
                    "touch safely\n");
        }
    }
    core_->start(num_refs + warmup_refs);
    prof::Totals prof_totals;
    if (engine_) {
        engine_->collectProfile = profiling;
        obs::Session *app_session = obs_run.session();
        if (app_session) {
            engine_->onEnterDomain =
                [this, app_session,
                 shared = shared_session.get()](DomainId d) {
                    obs::detail::tlsSession =
                        d == machine_.sharedDomain() ? shared
                                                     : app_session;
                };
        }
        engine_->run();
        // Workers leave tlsSession at whichever domain they ran last;
        // restore the app session before finish().
        obs::detail::tlsSession = app_session;
        if (profiling)
            prof_totals = engine_->profTotals();
    } else {
        machine_.eq.runAll();
        if (profiling)
            prof_totals = prof::endWindow();
    }
    TEMPO_ASSERT(core_->done(), "event queue drained before completion");

    RunResult result;
    result.core = core_->stats();
    result.runtime = result.core.lastFinish - measure_from;
    result.energy =
        computeEnergy(machine_.config.energy, result.runtime,
                      machine_.dram, machine_.mcRequests(),
                      machine_.config.mc.tempoEnabled);
    result.superpageCoverage =
        core_->addressSpace.superpageCoverage();
    result.coverage2M = core_->addressSpace.coverage2M();
    result.coverage1G = core_->addressSpace.coverage1G();

    result.dramPtw = machine_.mc.served(ReqKind::PtWalk);
    result.dramReplay = machine_.mc.served(ReqKind::Replay);
    result.dramOther = machine_.mc.served(ReqKind::Regular)
        + machine_.mc.served(ReqKind::ImpPrefetch)
        + machine_.mc.served(ReqKind::Writeback);

    result.core.report(result.report);
    // Engine-internal model stats (table hit rates, pending queues...)
    // ride under "prefetch.<name>.model." so they can never collide
    // with the core's "prefetch.<name>.issued"-style taxonomy keys.
    // Like those, they appear only for explicit engine lists.
    if (result.core.prefetchEngineKeys) {
        for (const Prefetcher *engine : core_->prefetchEngines()) {
            stats::Report engine_report;
            engine->report(engine_report);
            result.report.merge(
                "prefetch." + engine->name() + ".model.", engine_report);
        }
    }
    stats::Report dram_report;
    machine_.dram.report(dram_report);
    result.report.merge("dram.", dram_report);
    stats::Report mc_report;
    machine_.mc.report(mc_report);
    result.report.merge("mc.", mc_report);
    stats::Report tlb_report;
    core_->tlb.report(tlb_report);
    result.report.merge("tlb.", tlb_report);
    stats::Report mmu_report;
    core_->mmu.report(mmu_report);
    result.report.merge("mmu.", mmu_report);
    stats::Report cache_report;
    core_->caches.report(cache_report);
    result.report.merge("cache.", cache_report);
    stats::Report vm_report;
    core_->addressSpace.report(vm_report);
    result.report.merge("vm.", vm_report);
    stats::Report os_report;
    core_->osMemory().report(os_report);
    result.report.merge("os.", os_report);
    stats::Report energy_report;
    result.energy.report(energy_report);
    result.report.merge("energy.", energy_report);

    if (obs_run.session()) {
        if (shared_session)
            obs_run.session()->absorb(*shared_session);
        stats::Report obs_report;
        result.obs = obs_run.finish(obs_report);
        // Per-engine lifecycle taxonomy in the audit namespace. The
        // TEMPO engine's obs.prefetch_* counters are untouched — they
        // keep summing to mc.tempo.prefetches_issued.
        if (result.core.prefetchEngineKeys) {
            for (const auto &e : result.core.prefetchEngines) {
                const std::string prefix = "prefetch." + e.name + ".";
                obs_report.add(prefix + "issued", e.issued);
                obs_report.add(prefix + "useful", e.useful);
                obs_report.add(prefix + "late", e.late);
                obs_report.add(prefix + "useless", e.useless());
                obs_report.add(prefix + "dropped", e.dropped);
            }
        }
        result.report.merge("obs.", obs_report);
    }

    if (profiling) {
        // Wall-clock attribution: nondeterministic, so only emitted when
        // --profile explicitly asked for it (keeps goldens byte-stable).
        stats::Report prof_report;
        std::uint64_t total_ns = 0;
        for (std::size_t i = 0; i < prof::kNumComponents; ++i) {
            const auto c = static_cast<prof::Component>(i);
            const std::string name = prof::componentName(c);
            prof_report.add(name + "_ms",
                            static_cast<double>(prof_totals.ns[i]) / 1e6);
            prof_report.add(name + "_calls", prof_totals.calls[i]);
            total_ns += prof_totals.ns[i];
        }
        prof_report.add("total_ms", static_cast<double>(total_ns) / 1e6);
        prof_report.add("events_executed",
                        machine_.eq.executed()
                            + (engine_ ? core_->eq().executed() : 0));
        result.report.merge("profile.", prof_report);
    }

    return result;
}

void
TempoSystem::scheduleObsSample(obs::Session *s, Cycle window)
{
    machine_.eq.scheduleIn(window, [this, s, window] {
        s->timeseriesSample(machine_.eq.now(),
                            machine_.mc.queueOccupancy(),
                            machine_.mc.pendingPrefetchCount(),
                            core_->outstandingWalks(),
                            machine_.dram.rowHits(),
                            machine_.dram.accesses());
        if (!core_->done())
            scheduleObsSample(s, window);
    });
}

RunResult
runWorkload(const SystemConfig &cfg, const std::string &name,
            std::uint64_t refs)
{
    TempoSystem system(cfg, makeWorkload(name, cfg.seed));
    return system.run(refs);
}

} // namespace tempo
