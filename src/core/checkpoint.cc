#include "core/checkpoint.hh"

#include <charconv>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <stdexcept>

#include <fcntl.h>
#include <unistd.h>

namespace tempo {

namespace {

using stats::Json;
using stats::JsonValue;

std::string
hex16(std::uint64_t v)
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

std::uint64_t
parseHex16(const std::string &text)
{
    std::uint64_t out = 0;
    const auto [p, ec] =
        std::from_chars(text.data(), text.data() + text.size(), out, 16);
    if (ec != std::errc() || p != text.data() + text.size())
        throw std::runtime_error("journal: bad digest " + text);
    return out;
}

/**
 * One field-visitor enumerates CoreStats for both encode and decode so
 * the two cannot drift apart. The visitor receives (name, reference);
 * doubles and uint64s are distinguished by overload.
 */
template <typename Stats, typename Fn>
void
visitCoreStats(Stats &s, Fn &&fn)
{
    fn("refs", s.refs);
    fn("page_faults", s.pageFaults);
    fn("walks", s.walks);
    fn("pt_dram_accesses", s.ptDramAccesses);
    fn("leaf_pt_dram_accesses", s.leafPtDramAccesses);
    fn("walks_with_leaf_dram", s.walksWithLeafDram);
    fn("pt_dram_l0", s.ptDramByLevel[0]);
    fn("pt_dram_l1", s.ptDramByLevel[1]);
    fn("pt_dram_l2", s.ptDramByLevel[2]);
    fn("pt_dram_l3", s.ptDramByLevel[3]);
    fn("pt_dram_l4", s.ptDramByLevel[4]);
    fn("leaf_pt_l1_hits", s.leafPtL1Hits);
    fn("leaf_pt_l2_hits", s.leafPtL2Hits);
    fn("leaf_pt_llc_hits", s.leafPtLlcHits);
    fn("replay_dram_accesses", s.replayDramAccesses);
    fn("regular_dram_accesses", s.regularDramAccesses);
    fn("replay_after_dram_walk", s.replayAfterDramWalk);
    fn("replay_dram_after_dram_walk", s.replayDramAfterDramWalk);
    fn("replay_llc_hits", s.replayLlcHits);
    fn("replay_private_hits", s.replayPrivateHits);
    fn("replay_merged", s.replayMerged);
    fn("replay_row_hits", s.replayRowHits);
    fn("replay_array", s.replayArray);
    fn("pt_mshr_merges", s.ptMshrMerges);
    fn("data_mshr_merges", s.dataMshrMerges);
    fn("imp_issued", s.impIssued);
    fn("stride_issued", s.strideIssued);
    fn("imp_dropped_inflight", s.impDroppedInflight);
    fn("imp_faults", s.impFaults);
    fn("tlb_prefetches", s.tlbPrefetches);
    fn("cycles_ptw_dram", s.cyclesPtwDram);
    fn("cycles_replay_dram", s.cyclesReplayDram);
    fn("cycles_other_dram", s.cyclesOtherDram);
    fn("cycles_total", s.cyclesTotal);
    fn("last_finish", s.lastFinish);
}

struct CoreEncoder {
    Json &obj;
    void operator()(const char *name, std::uint64_t v) { obj.set(name, v); }
    void operator()(const char *name, double v) { obj.set(name, v); }
};

struct CoreDecoder {
    const JsonValue &obj;
    void
    operator()(const char *name, std::uint64_t &v)
    {
        v = obj.at(name).asUint64();
    }
    void
    operator()(const char *name, double &v)
    {
        v = obj.at(name).asDouble();
    }
};

} // namespace

stats::Json
encodeRunResult(const RunResult &result)
{
    Json doc = Json::object();
    doc.set("runtime", result.runtime);

    Json energy = Json::object();
    energy.set("core_static", result.energy.coreStatic);
    energy.set("dram_static", result.energy.dramStatic);
    energy.set("dram_dynamic", result.energy.dramDynamic);
    energy.set("mc_dynamic", result.energy.mcDynamic);
    doc.set("energy", std::move(energy));

    Json core = Json::object();
    CoreEncoder enc{core};
    visitCoreStats(result.core, enc);
    doc.set("core", std::move(core));

    doc.set("superpage_coverage", result.superpageCoverage);
    doc.set("coverage_2m", result.coverage2M);
    doc.set("coverage_1g", result.coverage1G);
    doc.set("dram_ptw", result.dramPtw);
    doc.set("dram_replay", result.dramReplay);
    doc.set("dram_other", result.dramOther);

    // The report is ordered name/value pairs; order matters (it is the
    // emission order of "report.*" counters in the bench JSON).
    Json report = Json::array();
    for (const auto &[name, value] : result.report.entries()) {
        Json entry = Json::array();
        entry.push(name);
        entry.push(value);
        report.push(std::move(entry));
    }
    doc.set("report", std::move(report));

    // Optional time-series payload: only present when the run sampled.
    // Trace events are NOT journaled (a resumed point rereads counters
    // but cannot regenerate a trace file).
    if (result.obs && !result.obs->timeseries.empty()) {
        Json timeseries = Json::object();
        timeseries.set("window_cycles",
                       result.obs->timeseries.windowCycles);
        for (const auto &[column, values] : result.obs->timeseries.columns) {
            Json samples = Json::array();
            for (double v : values)
                samples.push(v);
            timeseries.set(column, std::move(samples));
        }
        doc.set("timeseries", std::move(timeseries));
    }
    return doc;
}

RunResult
decodeRunResult(const stats::JsonValue &value)
{
    RunResult result;
    result.runtime = value.at("runtime").asUint64();

    const JsonValue &energy = value.at("energy");
    result.energy.coreStatic = energy.at("core_static").asDouble();
    result.energy.dramStatic = energy.at("dram_static").asDouble();
    result.energy.dramDynamic = energy.at("dram_dynamic").asDouble();
    result.energy.mcDynamic = energy.at("mc_dynamic").asDouble();

    CoreDecoder dec{value.at("core")};
    visitCoreStats(result.core, dec);

    result.superpageCoverage = value.at("superpage_coverage").asDouble();
    result.coverage2M = value.at("coverage_2m").asDouble();
    result.coverage1G = value.at("coverage_1g").asDouble();
    result.dramPtw = value.at("dram_ptw").asUint64();
    result.dramReplay = value.at("dram_replay").asUint64();
    result.dramOther = value.at("dram_other").asUint64();

    const JsonValue &report = value.at("report");
    if (report.kind != JsonValue::Kind::Array)
        throw std::runtime_error("journal: report is not an array");
    for (const JsonValue &entry : report.elements) {
        if (entry.kind != JsonValue::Kind::Array ||
            entry.elements.size() != 2)
            throw std::runtime_error("journal: bad report entry");
        result.report.add(entry.elements[0].asString(),
                          entry.elements[1].asDouble());
    }

    if (const JsonValue *timeseries = value.find("timeseries")) {
        // Restored observability carries the time series only; cfg stays
        // default (trace=false), so resume never rewrites trace files.
        auto obs = std::make_shared<obs::RunObs>();
        for (const auto &[key, column] : timeseries->members) {
            if (key == "window_cycles") {
                obs->timeseries.windowCycles = column.asUint64();
                continue;
            }
            std::vector<double> values;
            values.reserve(column.elements.size());
            for (const JsonValue &v : column.elements)
                values.push_back(v.asDouble());
            obs->timeseries.columns.emplace_back(key, std::move(values));
        }
        result.obs = std::move(obs);
    }
    return result;
}

std::string
encodeJournalLine(std::uint64_t digest, const RunResult &result)
{
    Json doc = Json::object();
    doc.set("v", std::uint64_t(1));
    doc.set("digest", hex16(digest));
    if (!result.status.ok()) {
        doc.set("status", result.status.codeName());
        doc.set("error", result.status.error);
    }
    doc.set("attempts", std::uint64_t(result.status.attempts));
    doc.set("seed", result.status.seedUsed);
    doc.set("result", encodeRunResult(result));
    return doc.dumpCompact();
}

JournalRecord
decodeJournalLine(const std::string &line)
{
    const JsonValue doc = stats::parseJson(line);
    JournalRecord record;
    record.digest = parseHex16(doc.at("digest").asString());
    record.result = decodeRunResult(doc.at("result"));
    RunStatus &status = record.result.status;
    if (const JsonValue *code = doc.find("status")) {
        const std::string &name = code->asString();
        if (name == "ok")
            status.code = RunStatus::Code::Ok;
        else if (name == "failed")
            status.code = RunStatus::Code::Failed;
        else if (name == "timed_out")
            status.code = RunStatus::Code::TimedOut;
        else
            throw std::runtime_error("journal: unknown status " + name);
        if (const JsonValue *error = doc.find("error"))
            status.error = error->asString();
    }
    status.attempts =
        static_cast<unsigned>(doc.at("attempts").asUint64());
    status.seedUsed = doc.at("seed").asUint64();
    status.digest = record.digest;
    return record;
}

AtomicAppendFile::AtomicAppendFile(std::string path)
    : path_(std::move(path))
{
    fd_ = ::open(path_.c_str(), O_WRONLY | O_APPEND | O_CREAT | O_CLOEXEC,
                 0644);
    if (fd_ < 0)
        throw std::runtime_error("cannot open " + path_ + ": " +
                                 std::strerror(errno));
}

AtomicAppendFile::~AtomicAppendFile()
{
    if (fd_ >= 0)
        ::close(fd_);
}

void
AtomicAppendFile::appendLine(const std::string &line)
{
    std::string buf = line;
    buf += '\n';
    // One write covers the whole line. Regular-file O_APPEND writes
    // land atomically at EOF; a genuinely short write (disk full,
    // signal) is an error — retrying would interleave with concurrent
    // appenders, exactly what this class exists to prevent.
    const ssize_t wrote = ::write(fd_, buf.data(), buf.size());
    if (wrote != static_cast<ssize_t>(buf.size()))
        throw std::runtime_error("short write to " + path_);
}

SweepJournal::SweepJournal(std::string path) : path_(std::move(path))
{
    // Load whatever is already there. Any malformed line — in practice
    // only the truncated tail a kill leaves — ends the useful prefix.
    std::ifstream in(path_, std::ios::binary);
    bool clean = true;
    std::uintmax_t good_end = 0;
    if (in) {
        std::string line;
        while (std::getline(in, line)) {
            if (line.empty()) {
                good_end += 1;
                continue;
            }
            try {
                JournalRecord record = decodeJournalLine(line);
                loaded_[record.digest] = std::move(record.result);
            } catch (const std::exception &) {
                clean = false;
                break;
            }
            good_end += line.size() + 1;
        }
        in.close();
        // Drop the broken tail before appending: a new record written
        // right after a half line would corrupt BOTH on the next load.
        if (!clean)
            std::filesystem::resize_file(path_, good_end);
    }
    try {
        out_ = std::make_unique<AtomicAppendFile>(path_);
    } catch (const std::exception &error) {
        throw std::runtime_error(
            std::string("cannot open checkpoint journal ") + path_ +
            ": " + error.what());
    }
}

bool
SweepJournal::restore(std::uint64_t digest, RunResult &out) const
{
    const auto it = loaded_.find(digest);
    if (it == loaded_.end())
        return false;
    out = it->second;
    return true;
}

void
SweepJournal::record(std::uint64_t digest, const RunResult &result)
{
    const std::string line = encodeJournalLine(digest, result);
    const std::lock_guard<std::mutex> lock(mutex_);
    out_->appendLine(line);
}

} // namespace tempo
