#include "core/multi_system.hh"

#include <algorithm>

#include "common/log.hh"
#include "common/thread_pool.hh"
#include "core/tempo_system.hh"

namespace tempo {

double
MultiResult::weightedSpeedup(const std::vector<Cycle> &alone) const
{
    // Tolerate ragged input (an alone-run that failed or was skipped
    // leaves a zero or a missing entry): such apps contribute 0 instead
    // of poisoning the sum with inf/NaN or tripping an assert.
    const std::size_t n = std::min(alone.size(), appFinish.size());
    double ws = 0;
    for (std::size_t i = 0; i < n; ++i) {
        if (alone[i] > 0 && appFinish[i] > 0) {
            ws += static_cast<double>(alone[i])
                / static_cast<double>(appFinish[i]);
        }
    }
    return ws;
}

double
MultiResult::maxSlowdown(const std::vector<Cycle> &alone) const
{
    const std::size_t n = std::min(alone.size(), appFinish.size());
    double worst = 0;
    for (std::size_t i = 0; i < n; ++i) {
        if (alone[i] > 0 && appFinish[i] > 0) {
            worst = std::max(worst,
                             static_cast<double>(appFinish[i])
                                 / static_cast<double>(alone[i]));
        }
    }
    return worst;
}

MultiSystem::MultiSystem(const SystemConfig &cfg,
                         std::vector<std::unique_ptr<Workload>> workloads)
    : machine_(cfg)
{
    TEMPO_ASSERT(!workloads.empty(), "empty workload mix");
    if (cfg.shards > 0) {
        engine_ = std::make_unique<ShardEngine>(machine_.portLatency(),
                                                cfg.shards);
        machine_.attachShardEngine(
            engine_.get(), static_cast<unsigned>(workloads.size()));
    }
    AppId app = 0;
    for (auto &workload : workloads) {
        cores_.push_back(std::make_unique<SimCore>(machine_, app++,
                                                   std::move(workload)));
    }
}

MultiResult
MultiSystem::run(std::uint64_t refs_per_app,
                 std::uint64_t warmup_per_app)
{
    std::size_t warmed = 0;
    std::vector<Cycle> measure_from(cores_.size(), 0);
    if (warmup_per_app > 0) {
        for (std::size_t i = 0; i < cores_.size(); ++i) {
            cores_[i]->setWarmupCallback(
                warmup_per_app, [this, i, &warmed, &measure_from] {
                    cores_[i]->resetStats();
                    measure_from[i] = cores_[i]->eq().now();
                    if (engine_) {
                        // The shared machine resets when the LAST
                        // core's notification arrives (Machine counts
                        // them in the shared domain).
                        machine_.portWarmupNotify(
                            cores_[i]->eq().now());
                        return;
                    }
                    if (++warmed == cores_.size()) {
                        machine_.mc.resetStats();
                        machine_.dram.resetStats();
                        machine_.llc.resetStats();
                    }
                });
        }
    }
    for (auto &core : cores_)
        core->start(refs_per_app + warmup_per_app);
    if (engine_)
        engine_->run();
    else
        machine_.eq.runAll();

    MultiResult result;
    for (std::size_t i = 0; i < cores_.size(); ++i) {
        auto &core = cores_[i];
        TEMPO_ASSERT(core->done(), "core did not finish");
        result.appFinish.push_back(core->finishTime()
                                   - measure_from[i]);
        result.appStats.push_back(core->stats());
        result.runtime = std::max(result.runtime,
                                  result.appFinish.back());
    }
    result.energy =
        computeEnergy(machine_.config.energy, result.runtime,
                      machine_.dram, machine_.mcRequests(),
                      machine_.config.mc.tempoEnabled);
    return result;
}

std::vector<Cycle>
aloneRuntimes(const SystemConfig &cfg,
              const std::vector<std::string> &names,
              std::uint64_t refs_per_app, std::uint64_t warmup_per_app)
{
    // Each alone run is an independent simulation, so they execute
    // concurrently; results land by index, seeds stay per-workload
    // (same per-workload trace seed as makeMix() so the alone and
    // shared runs execute identical reference streams).
    std::vector<Cycle> alone(names.size());
    parallelFor(names.size(), 0, [&](std::size_t i) {
        TempoSystem system(cfg, makeWorkload(names[i], cfg.seed + 13 * i));
        alone[i] = system.run(refs_per_app, warmup_per_app).runtime;
    });
    return alone;
}

std::vector<std::unique_ptr<Workload>>
makeMix(const std::vector<std::string> &names, std::uint64_t seed)
{
    std::vector<std::unique_ptr<Workload>> mix;
    mix.reserve(names.size());
    for (std::size_t i = 0; i < names.size(); ++i)
        mix.push_back(makeWorkload(names[i], seed + 13 * i));
    return mix;
}

} // namespace tempo
