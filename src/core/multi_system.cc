#include "core/multi_system.hh"

#include <algorithm>

#include "common/log.hh"
#include "common/thread_pool.hh"
#include "core/tempo_system.hh"

namespace tempo {

double
MultiResult::weightedSpeedup(const std::vector<Cycle> &alone) const
{
    TEMPO_ASSERT(alone.size() == appFinish.size(),
                 "alone/shared size mismatch");
    double ws = 0;
    for (std::size_t i = 0; i < alone.size(); ++i) {
        if (appFinish[i] > 0) {
            ws += static_cast<double>(alone[i])
                / static_cast<double>(appFinish[i]);
        }
    }
    return ws;
}

double
MultiResult::maxSlowdown(const std::vector<Cycle> &alone) const
{
    TEMPO_ASSERT(alone.size() == appFinish.size(),
                 "alone/shared size mismatch");
    double worst = 0;
    for (std::size_t i = 0; i < alone.size(); ++i) {
        if (alone[i] > 0) {
            worst = std::max(worst,
                             static_cast<double>(appFinish[i])
                                 / static_cast<double>(alone[i]));
        }
    }
    return worst;
}

MultiSystem::MultiSystem(const SystemConfig &cfg,
                         std::vector<std::unique_ptr<Workload>> workloads)
    : machine_(cfg)
{
    TEMPO_ASSERT(!workloads.empty(), "empty workload mix");
    AppId app = 0;
    for (auto &workload : workloads) {
        cores_.push_back(std::make_unique<SimCore>(machine_, app++,
                                                   std::move(workload)));
    }
}

MultiResult
MultiSystem::run(std::uint64_t refs_per_app,
                 std::uint64_t warmup_per_app)
{
    std::size_t warmed = 0;
    std::vector<Cycle> measure_from(cores_.size(), 0);
    if (warmup_per_app > 0) {
        for (std::size_t i = 0; i < cores_.size(); ++i) {
            cores_[i]->setWarmupCallback(
                warmup_per_app, [this, i, &warmed, &measure_from] {
                    cores_[i]->resetStats();
                    measure_from[i] = machine_.eq.now();
                    if (++warmed == cores_.size()) {
                        machine_.mc.resetStats();
                        machine_.dram.resetStats();
                        machine_.llc.resetStats();
                    }
                });
        }
    }
    for (auto &core : cores_)
        core->start(refs_per_app + warmup_per_app);
    machine_.eq.runAll();

    MultiResult result;
    for (std::size_t i = 0; i < cores_.size(); ++i) {
        auto &core = cores_[i];
        TEMPO_ASSERT(core->done(), "core did not finish");
        result.appFinish.push_back(core->finishTime()
                                   - measure_from[i]);
        result.appStats.push_back(core->stats());
        result.runtime = std::max(result.runtime,
                                  result.appFinish.back());
    }
    result.energy =
        computeEnergy(machine_.config.energy, result.runtime,
                      machine_.dram, machine_.mcRequests(),
                      machine_.config.mc.tempoEnabled);
    return result;
}

std::vector<Cycle>
aloneRuntimes(const SystemConfig &cfg,
              const std::vector<std::string> &names,
              std::uint64_t refs_per_app, std::uint64_t warmup_per_app)
{
    // Each alone run is an independent simulation, so they execute
    // concurrently; results land by index, seeds stay per-workload
    // (same per-workload trace seed as makeMix() so the alone and
    // shared runs execute identical reference streams).
    std::vector<Cycle> alone(names.size());
    parallelFor(names.size(), 0, [&](std::size_t i) {
        TempoSystem system(cfg, makeWorkload(names[i], cfg.seed + 13 * i));
        alone[i] = system.run(refs_per_app, warmup_per_app).runtime;
    });
    return alone;
}

std::vector<std::unique_ptr<Workload>>
makeMix(const std::vector<std::string> &names, std::uint64_t seed)
{
    std::vector<std::unique_ptr<Workload>> mix;
    mix.reserve(names.size());
    for (std::size_t i = 0; i < names.size(); ++i)
        mix.push_back(makeWorkload(names[i], seed + 13 * i));
    return mix;
}

} // namespace tempo
