/**
 * @file
 * Top-level system configuration: every knob of every substrate, plus
 * named presets. The default preset is a scaled-down Skylake-class
 * big-memory server (see DESIGN.md Sec. 2 for the scaling rationale:
 * footprint/TLB-reach and PTE-working-set/LLC ratios match the paper's
 * 4TB regime, absolute sizes do not).
 */

#ifndef TEMPO_CORE_CONFIG_HH
#define TEMPO_CORE_CONFIG_HH

#include <cstdint>

#include "cache/hierarchy.hh"
#include "dram/config.hh"
#include "mc/memory_controller.hh"
#include "prefetch/imp.hh"
#include "prefetch/misb.hh"
#include "prefetch/prefetcher.hh"
#include "prefetch/stride.hh"
#include "prefetch/temporal.hh"
#include "prefetch/tskid.hh"
#include "vm/address_space.hh"
#include "vm/mmu_cache.hh"
#include "vm/os_memory.hh"
#include "vm/tlb.hh"
#include "vm/translator.hh"

namespace tempo {

/** Energy model parameters (relative units; ratios drive the results). */
struct EnergyConfig {
    /** Static power of the cores + uncore, per cycle. Runtime reduction
     * saves this — the paper's dominant energy mechanism (Sec. 6.1). */
    double corePowerPerCycle = 0.25;
    /** Memory-controller dynamic energy per serviced request. */
    double mcEnergyPerRequest = 0.1;
    /** TEMPO hardware adders from the paper's synthesis (Sec. 4.1). */
    double tempoMcAreaOverhead = 0.03;   //!< +3% memory controller
    double tempoWalkerAreaOverhead = 0.005; //!< +0.5% page table walker
};

struct SystemConfig {
    TlbConfig tlb;
    MmuCacheConfig mmu;
    CacheHierarchyConfig caches;
    DramConfig dram;
    McConfig mc;
    OsMemoryConfig os;
    AddressSpaceConfig vm;
    /** Memoized translation fast path (vm/translator.hh). Stats-neutral
     * by construction, so its knobs stay out of digest() — like the
     * scheduler's useReferenceScheduler. */
    TranslatorConfig translator;
    /** Tag-array implementation selection (cache/tag_array.hh) for
     * every SetAssocCache and TLB/MMU-cache array. Both paths produce
     * identical hit/miss/victim sequences, so this too is
     * stats-neutral and stays out of digest(). */
    CacheConfig cache;
    ImpConfig imp;
    StrideConfig stride;
    /** Registry engine selection (prefetch/registry.hh). Empty list =
     * legacy resolution from imp.enabled / stride.enabled with runs
     * byte-identical to the pre-registry simulator; a non-empty list
     * builds the named engines in order and switches on the per-engine
     * useful/late/useless/dropped taxonomy keys. */
    PrefetchConfig prefetch;
    TskidConfig tskid;
    MisbConfig misb;
    TemporalConfig temporal;
    EnergyConfig energy;

    /** Outstanding memory references the core overlaps (ROB-window
     * proxy). Workloads may override via their mlpHint. */
    unsigned mlpWindow = 8;
    /** Honor each workload's mlpHint() instead of mlpWindow. */
    bool useWorkloadMlpHint = true;
    /** Core cycles between successive reference issues (models the
     * non-memory instructions between memory instructions). */
    Cycle issueGap = 4;
    /** Latency from walk completion to the replay re-probing the caches
     * (TLB fill + pipeline replay). Together with the L1/L2 lookups this
     * forms the paper's ~120-cycle slack window (Sec. 3) in which the
     * TEMPO prefetch must land. */
    Cycle tlbFillLatency = 100;
    /** Cost charged for a minor page fault (0: steady-state traces). */
    Cycle pageFaultLatency = 0;
    /** Maximum concurrent IMP/stride prefetch chains in flight. */
    unsigned impMaxInflight = 48;
    /** Extension (not in the paper): after a demand walk, prefetch the
     * translation of the next virtual page into the TLB. */
    bool tlbPrefetchNext = false;

    /**
     * Sharded in-point parallelism: 0 (default) runs the legacy inline
     * engine on one event queue; N >= 1 partitions the point into
     * per-app domains plus a shared-machine domain driven by a
     * ShardEngine with N worker threads. Output is bit-identical for
     * any N >= 1 (N = 1 is the single-threaded oracle) but the sharded
     * engine is its own timing model, distinct from the legacy
     * schedule (docs/MODEL.md "Sharded execution").
     */
    unsigned shards = 0;

    std::uint64_t seed = 42;

    /**
     * The baseline machine used throughout the evaluation: FR-FCFS with
     * an adaptive row policy and a single 8KB row buffer (paper Sec. 6
     * opening), TEMPO off.
     */
    static SystemConfig skylakeScaled();

    /**
     * A stable fingerprint of every configuration knob: two configs
     * compare equal iff (modulo hash collisions) they digest equally,
     * across processes and runs of the same build. Keys sweep
     * checkpoints (core/checkpoint.hh) and failure reports.
     */
    std::uint64_t digest() const;

    /** Fluent helpers for the benches. */
    SystemConfig &withTempo(bool on);
    SystemConfig &withRowPolicy(RowPolicyKind kind);
    SystemConfig &withSched(SchedKind kind);
    SystemConfig &withPagePolicy(PagePolicy policy, double frag = 0.0);
    SystemConfig &withImp(bool on);
    /** Select registry engines by name ("" or "none" = legacy flags). */
    SystemConfig &withPrefetchers(const std::string &csv);
    SystemConfig &withSubRows(SubRowAlloc alloc, unsigned dedicated);
    SystemConfig &withSeed(std::uint64_t seed);
    SystemConfig &withShards(unsigned shards);
};

} // namespace tempo

#endif // TEMPO_CORE_CONFIG_HH
