/**
 * @file
 * Per-point completion status for the experiment engine's fault
 * isolation: instead of a failing (workload, config) point unwinding
 * the whole sweep, the engine captures what happened into the result
 * itself. A default-constructed status reads "ok" so code that builds
 * results directly (TempoSystem::run and friends) needs no changes.
 */

#ifndef TEMPO_CORE_RUN_STATUS_HH
#define TEMPO_CORE_RUN_STATUS_HH

#include <cstdint>
#include <exception>
#include <string>

namespace tempo {

struct RunStatus {
    enum class Code {
        Ok,       //!< the point ran to completion; stats are valid
        Failed,   //!< an attempt threw; stats are zero
        TimedOut, //!< the wall-clock watchdog cancelled it; stats zero
    };

    Code code = Code::Ok;
    /** what() of the exception that ended the final attempt. */
    std::string error;
    /** Attempts made (1 + retries actually used). */
    unsigned attempts = 1;
    /** Workload seed of the final attempt (retries are reseeded). */
    std::uint64_t seedUsed = 0;
    /** Stable point digest (workload, config, refs, seed, index); 0
     * when the result did not come through the experiment engine. */
    std::uint64_t digest = 0;
    /** The exception that ended the final attempt, for callers that
     * want legacy rethrow semantics. Never serialized. */
    std::exception_ptr exception;

    bool ok() const { return code == Code::Ok; }

    const char *
    codeName() const
    {
        switch (code) {
          case Code::Ok: return "ok";
          case Code::Failed: return "failed";
          case Code::TimedOut: return "timed_out";
        }
        return "unknown";
    }
};

} // namespace tempo

#endif // TEMPO_CORE_RUN_STATUS_HH
