#include "core/machine.hh"

#include "common/log.hh"

namespace tempo {

void
Machine::attachShardEngine(ShardEngine *engine, unsigned num_apps)
{
    TEMPO_ASSERT(engine, "null shard engine");
    TEMPO_ASSERT(!shardEngine_, "shard engine already attached");
    TEMPO_ASSERT(engine->quantum() == portLatency(),
                 "shard quantum must equal the port latency");
    TEMPO_ASSERT(num_apps > 0, "sharded machine needs apps");
    shardEngine_ = engine;
    shardApps_ = num_apps;
    sharedDomain_ = engine->addDomain(&eq);
}

DomainId
Machine::registerAppDomain(EventQueue *app_eq)
{
    TEMPO_ASSERT(shardEngine_, "no shard engine attached");
    return shardEngine_->addDomain(app_eq);
}

void
Machine::portRequest(DomainId src, Cycle send_at, MemRequest req,
                     PortReplyFn reply)
{
    shardEngine_->post(
        sharedDomain_, send_at + portLatency(),
        [this, src, req = std::move(req),
         reply = std::move(reply)]() mutable {
            handleRequest(src, std::move(req), std::move(reply));
        });
}

void
Machine::portWriteback(Cycle send_at, Addr line, AppId app)
{
    shardEngine_->post(sharedDomain_, send_at + portLatency(),
                       [this, line, app] { submitWriteback(line, app); });
}

void
Machine::portWarmupNotify(Cycle send_at)
{
    shardEngine_->post(sharedDomain_, send_at + portLatency(), [this] {
        TEMPO_ASSERT(warmedApps_ < shardApps_, "warmup over-notified");
        if (++warmedApps_ == shardApps_) {
            mc.resetStats();
            dram.resetStats();
            llc.resetStats();
            if (onSharedWarmed)
                onSharedWarmed();
        }
    });
}

void
Machine::portUncachedRead(DomainId src, Cycle send_at, MemRequest req,
                          PortReplyFn reply)
{
    shardEngine_->post(
        sharedDomain_, send_at + portLatency(),
        [this, src, req = std::move(req),
         reply = std::move(reply)]() mutable {
            req.onComplete = [this, src, reply = std::move(reply)](
                                 const MemResult &res) mutable {
                PortReply r;
                r.point = PortReply::Point::Dram;
                r.res = res;
                r.res.complete = res.complete + portLatency();
                sendReply(src, std::move(reply), r);
            };
            mc.submit(std::move(req));
        });
}

void
Machine::sendReply(DomainId dst, PortReplyFn reply, const PortReply &r)
{
    shardEngine_->post(dst, r.res.complete,
                       [reply = std::move(reply), r]() mutable {
                           reply(r);
                       });
}

void
Machine::handleRequest(DomainId src, MemRequest req, PortReplyFn reply)
{
    const Cycle arrival = eq.now();
    const Addr line = lineAddr(req.paddr);

    // The LLC probe happens here, in the shared domain. This also
    // covers the legacy "prefetch landed while the lookup was in
    // flight" case: any fill that completed before arrival is visible.
    if (llc.cache().lookup(line)) {
        if (req.isWrite)
            llc.cache().markDirty(line);
        PortReply r;
        r.point = PortReply::Point::Llc;
        r.res.complete = arrival + portLatency();
        sendReply(src, std::move(reply), r);
        return;
    }

    // Replays merge with an in-flight TEMPO prefetch of their line
    // (the paper's partial-overlap case). The predicate check avoids
    // constructing the waiter speculatively: a failed merge destroys
    // the moved-in waiter, and the reply continuation with it.
    if (req.kind == ReqKind::Replay && mc.hasPendingPrefetch(line)) {
        const bool merged = mc.mergeWithPendingPrefetch(
            line, [this, src, reply = std::move(reply)](
                      Cycle done) mutable {
                PortReply r;
                r.point = PortReply::Point::Merged;
                r.res.complete = done + portLatency();
                sendReply(src, std::move(reply), r);
            });
        TEMPO_ASSERT(merged, "pending prefetch vanished mid-call");
        return;
    }

    // Full memory-controller round trip. The LLC fill happens here at
    // DRAM completion (the core fills its private levels when the
    // reply arrives); a dirty LLC victim becomes a writeback.
    const AppId app = req.app;
    const bool is_write = req.isWrite;
    req.onComplete = [this, src, line, is_write, app,
                      reply = std::move(reply)](
                         const MemResult &res) mutable {
        const SetAssocCache::Victim victim =
            llc.cache().insertTracked(line, is_write);
        if (victim.addr != kInvalidAddr && victim.dirty)
            submitWriteback(victim.addr, app);
        PortReply r;
        r.point = PortReply::Point::Dram;
        r.res = res;
        r.res.complete = res.complete + portLatency();
        sendReply(src, std::move(reply), r);
    };
    mc.submit(std::move(req));
}

} // namespace tempo
