/**
 * @file
 * The shared half of a simulated machine: one event queue, one DRAM
 * device, one memory controller, one shared LLC, and one OS physical
 * memory pool. SimCores (one per application) plug into it.
 */

#ifndef TEMPO_CORE_MACHINE_HH
#define TEMPO_CORE_MACHINE_HH

#include "cache/hierarchy.hh"
#include "common/event_queue.hh"
#include "core/config.hh"
#include "dram/dram.hh"
#include "mc/memory_controller.hh"
#include "vm/os_memory.hh"

namespace tempo {

class Machine
{
  public:
    explicit Machine(const SystemConfig &cfg)
        : config(cfg), dram(cfg.dram), mc(eq, dram, cfg.mc),
          llc(cfg.caches.llc), os(cfg.os)
    {
        // TEMPO's LLC prefetch port: prefetched replay lines land in the
        // shared LLC (paper Sec. 3). A dirty victim becomes a DRAM
        // writeback.
        mc.onTempoPrefetchFill = [this](Addr paddr, AppId app) {
            const Addr writeback = llc.prefetchFill(paddr);
            if (writeback != kInvalidAddr)
                submitWriteback(writeback, app);
        };
    }

    Machine(const Machine &) = delete;
    Machine &operator=(const Machine &) = delete;

    const SystemConfig config;
    EventQueue eq;
    DramDevice dram;
    MemoryController mc;
    SharedLlc llc;
    OsMemory os;

    /** Queue a fire-and-forget writeback of a dirty evicted line. */
    void
    submitWriteback(Addr line, AppId app)
    {
        MemRequest req;
        req.paddr = lineAddr(line);
        req.isWrite = true;
        req.kind = ReqKind::Writeback;
        req.app = app;
        mc.submit(std::move(req));
    }

    /** Total requests the MC serviced (for the energy model). */
    std::uint64_t
    mcRequests() const
    {
        std::uint64_t total = 0;
        for (ReqKind kind :
             {ReqKind::Regular, ReqKind::Replay, ReqKind::PtWalk,
              ReqKind::TempoPrefetch, ReqKind::ImpPrefetch,
              ReqKind::Writeback}) {
            total += mc.served(kind);
        }
        return total;
    }
};

} // namespace tempo

#endif // TEMPO_CORE_MACHINE_HH
