/**
 * @file
 * The shared half of a simulated machine: one event queue, one DRAM
 * device, one memory controller, one shared LLC, and one OS physical
 * memory pool. SimCores (one per application) plug into it.
 *
 * Two execution modes:
 *
 *  - Legacy inline (config.shards == 0): every component shares the
 *    machine's single event queue; cores call straight into the LLC
 *    and memory controller. This is the historical engine and its
 *    schedule; golden stats are pinned to it.
 *
 *  - Sharded (config.shards >= 1): a ShardEngine partitions the point
 *    into per-app domains plus this shared domain (LLC + MC + DRAM +
 *    TEMPO engine, driven by the machine's queue). Cores reach the
 *    shared side only through the timestamped port messages below;
 *    every hop costs portLatency() — the engine's lookahead quantum.
 *    Output is bit-identical at any worker count (but is its own
 *    timing model, distinct from the legacy schedule; see
 *    docs/MODEL.md "Sharded execution").
 */

#ifndef TEMPO_CORE_MACHINE_HH
#define TEMPO_CORE_MACHINE_HH

#include "cache/hierarchy.hh"
#include "common/event_queue.hh"
#include "common/shard.hh"
#include "core/config.hh"
#include "dram/dram.hh"
#include "mc/memory_controller.hh"
#include "vm/os_memory.hh"

namespace tempo {

/** Inline capture budget for port-reply continuations: fits the demand
 * path's (this, ref-context, submit-time) captures; walk-chain
 * continuations fall back to the heap. */
inline constexpr std::size_t kPortReplyInlineBytes = 96;

/** Shared-domain answer to a core's port request. */
struct PortReply {
    enum class Point : std::uint8_t {
        Llc,    //!< line was resident in the LLC at arrival
        Merged, //!< replay merged with an in-flight TEMPO prefetch
        Dram,   //!< full memory-controller round trip
    };
    Point point = Point::Dram;
    /** As the legacy MemResult, with complete advanced to the reply's
     * delivery time at the core (includes the return port hop). */
    MemResult res{};
};

/** Reply continuation, invoked in the requesting core's domain. */
using PortReplyFn =
    InlineFunction<void(const PortReply &), kPortReplyInlineBytes>;

class Machine
{
  public:
    explicit Machine(const SystemConfig &cfg)
        : config(cfg), dram(cfg.dram), mc(eq, dram, cfg.mc),
          llc(cfg.caches.llc, cfg.cache), os(cfg.os)
    {
        // TEMPO's LLC prefetch port: prefetched replay lines land in the
        // shared LLC (paper Sec. 3). A dirty victim becomes a DRAM
        // writeback.
        mc.onTempoPrefetchFill = [this](Addr paddr, AppId app) {
            const Addr writeback = llc.prefetchFill(paddr);
            if (writeback != kInvalidAddr)
                submitWriteback(writeback, app);
        };
    }

    Machine(const Machine &) = delete;
    Machine &operator=(const Machine &) = delete;

    const SystemConfig config;
    EventQueue eq;
    DramDevice dram;
    MemoryController mc;
    SharedLlc llc;
    OsMemory os;

    /** Queue a fire-and-forget writeback of a dirty evicted line. */
    void
    submitWriteback(Addr line, AppId app)
    {
        MemRequest req;
        req.paddr = lineAddr(line);
        req.isWrite = true;
        req.kind = ReqKind::Writeback;
        req.app = app;
        mc.submit(std::move(req));
    }

    /** Total requests the MC serviced (for the energy model). */
    std::uint64_t
    mcRequests() const
    {
        std::uint64_t total = 0;
        for (ReqKind kind :
             {ReqKind::Regular, ReqKind::Replay, ReqKind::PtWalk,
              ReqKind::TempoPrefetch, ReqKind::ImpPrefetch,
              ReqKind::Writeback}) {
            total += mc.served(kind);
        }
        return total;
    }

    // --- Sharded execution ---

    bool sharded() const { return shardEngine_ != nullptr; }

    /** One port hop's latency — the LLC lookup latency (the minimum
     * cross-domain distance) and therefore the engine's quantum. */
    Cycle portLatency() const { return llc.latency(); }

    /** Wire a shard engine to this machine. The machine's own queue
     * becomes the shared domain; @p num_apps cores will register. */
    void attachShardEngine(ShardEngine *engine, unsigned num_apps);

    /** Register one core's domain queue; returns its domain id. */
    DomainId registerAppDomain(EventQueue *app_eq);

    DomainId sharedDomain() const { return sharedDomain_; }
    unsigned shardApps() const { return shardApps_; }

    /**
     * Core -> shared-machine request (the sharded replacement for a
     * direct LLC probe + mc.submit). Sent from domain @p src at cycle
     * @p send_at (>= the sender's now); it arrives at the shared
     * domain one port hop later, probes the LLC, merges replays with
     * in-flight prefetches, or goes through the memory controller.
     * @p reply is invoked back in the sender's domain at
     * reply.res.complete.
     */
    void portRequest(DomainId src, Cycle send_at, MemRequest req,
                     PortReplyFn reply);

    /**
     * Core -> DRAM read that bypasses the LLC entirely (prefetcher
     * metadata traffic: MISB-style off-chip metadata is never cached
     * in the data hierarchy). Same port timing as portRequest; the
     * reply point is always Dram.
     */
    void portUncachedRead(DomainId src, Cycle send_at, MemRequest req,
                          PortReplyFn reply);

    /** Fire-and-forget dirty-victim writeback from a core's private
     * levels, delivered to the shared domain one port hop after
     * @p send_at. */
    void portWriteback(Cycle send_at, Addr line, AppId app);

    /**
     * Warmup handshake: each core notifies the shared domain when it
     * crosses its warmup boundary; when the last one arrives the
     * shared statistics (MC, DRAM, LLC) reset and onSharedWarmed runs
     * (in the shared domain — systems hook their obs session resets
     * there).
     */
    void portWarmupNotify(Cycle send_at);

    std::function<void()> onSharedWarmed;

  private:
    /** Shared-domain service of one port request. */
    void handleRequest(DomainId src, MemRequest req, PortReplyFn reply);
    /** Post @p reply back to @p dst at reply.res.complete. */
    void sendReply(DomainId dst, PortReplyFn reply, const PortReply &r);

    ShardEngine *shardEngine_ = nullptr;
    DomainId sharedDomain_ = 0;
    unsigned shardApps_ = 0;
    unsigned warmedApps_ = 0;
};

} // namespace tempo

#endif // TEMPO_CORE_MACHINE_HH
