/**
 * @file
 * System energy model.
 *
 * The paper's energy savings come overwhelmingly from runtime reduction
 * (static energy) with a small dynamic component; TEMPO's added hardware
 * charges a fixed area/power overhead on the memory controller (+3%) and
 * walker (+0.5%) from the Verilog synthesis in Sec. 5. The model here
 * reproduces exactly that structure.
 */

#ifndef TEMPO_CORE_ENERGY_HH
#define TEMPO_CORE_ENERGY_HH

#include "core/config.hh"
#include "dram/dram.hh"
#include "stats/stats.hh"

namespace tempo {

/** Energy breakdown of a finished run. */
struct EnergyBreakdown {
    double coreStatic = 0;
    double dramStatic = 0;
    double dramDynamic = 0;
    double mcDynamic = 0;

    double
    total() const
    {
        return coreStatic + dramStatic + dramDynamic + mcDynamic;
    }

    void
    report(stats::Report &out) const
    {
        out.add("core_static", coreStatic);
        out.add("dram_static", dramStatic);
        out.add("dram_dynamic", dramDynamic);
        out.add("mc_dynamic", mcDynamic);
        out.add("total", total());
    }
};

/**
 * Compute the energy of a run.
 * @param cfg energy parameters
 * @param runtime total cycles
 * @param dram the DRAM device after the run (dynamic energy counters)
 * @param mc_requests total requests the memory controller serviced
 * @param tempo_enabled charges TEMPO's hardware overhead when true
 */
EnergyBreakdown computeEnergy(const EnergyConfig &cfg, Cycle runtime,
                              const DramDevice &dram,
                              std::uint64_t mc_requests,
                              bool tempo_enabled);

} // namespace tempo

#endif // TEMPO_CORE_ENERGY_HH
