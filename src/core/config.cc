#include "core/config.hh"

namespace tempo {

SystemConfig
SystemConfig::skylakeScaled()
{
    SystemConfig cfg;

    // Scaled cache hierarchy: the LLC is deliberately small relative to
    // the workloads' leaf-PTE working sets (DESIGN.md Sec. 2).
    cfg.caches.l1 = {32 * 1024, 8, 4};
    cfg.caches.l2 = {128 * 1024, 8, 14};
    cfg.caches.llc = {256 * 1024, 16, 42};

    // Skylake-style TLBs and MMU caches.
    cfg.tlb = TlbConfig{};
    cfg.mmu = MmuCacheConfig{};

    // DRAM: adaptive row policy, 8KB rows, FR-FCFS (paper Sec. 6 intro).
    cfg.dram = DramConfig{};
    cfg.dram.rowPolicy = RowPolicyKind::Adaptive;

    cfg.mc = McConfig{};
    cfg.mc.sched = SchedKind::FrFcfs;
    cfg.mc.tempoEnabled = false;

    cfg.os = OsMemoryConfig{};
    cfg.vm = AddressSpaceConfig{};
    cfg.vm.policy = PagePolicy::Thp;

    return cfg;
}

SystemConfig &
SystemConfig::withTempo(bool on)
{
    mc.tempoEnabled = on;
    return *this;
}

SystemConfig &
SystemConfig::withRowPolicy(RowPolicyKind kind)
{
    dram.rowPolicy = kind;
    return *this;
}

SystemConfig &
SystemConfig::withSched(SchedKind kind)
{
    mc.sched = kind;
    return *this;
}

SystemConfig &
SystemConfig::withPagePolicy(PagePolicy policy, double frag)
{
    vm.policy = policy;
    os.fragLevel = frag;
    return *this;
}

SystemConfig &
SystemConfig::withImp(bool on)
{
    imp.enabled = on;
    return *this;
}

SystemConfig &
SystemConfig::withSubRows(SubRowAlloc alloc, unsigned dedicated)
{
    dram.subRowAlloc = alloc;
    dram.subRowsForPrefetch = dedicated;
    return *this;
}

SystemConfig &
SystemConfig::withSeed(std::uint64_t new_seed)
{
    seed = new_seed;
    os.seed = new_seed + 1;
    vm.seed = new_seed + 2;
    return *this;
}

} // namespace tempo
