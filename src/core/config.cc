#include "core/config.hh"

#include <bit>

#include "prefetch/registry.hh"

namespace tempo {

namespace {

/** FNV-1a accumulator for the config digest. Doubles are hashed by
 * bit pattern, so any representable change to a knob changes the
 * digest and two equal configs always agree. */
struct Fnv1a {
    std::uint64_t state = 1469598103934665603ull;

    void
    bytes(const void *data, std::size_t n)
    {
        const auto *p = static_cast<const unsigned char *>(data);
        for (std::size_t i = 0; i < n; ++i) {
            state ^= p[i];
            state *= 1099511628211ull;
        }
    }

    void
    u64(std::uint64_t v)
    {
        bytes(&v, sizeof(v));
    }

    void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

    template <typename E>
    void
    e(E v)
    {
        u64(static_cast<std::uint64_t>(v));
    }
};

void
hashCacheLevel(Fnv1a &h, const CacheLevelConfig &c)
{
    h.u64(c.sizeBytes);
    h.u64(c.assoc);
    h.u64(c.latency);
}

} // namespace

std::uint64_t
SystemConfig::digest() const
{
    // Every knob of every substrate feeds the hash. A new config field
    // must be added here, or two configs differing only in that field
    // would share a digest and a sweep checkpoint could restore a
    // stale point for it (see core/checkpoint.hh).
    Fnv1a h;

    h.u64(tlb.l1Entries4K);
    h.u64(tlb.l1Assoc4K);
    h.u64(tlb.l1Entries2M);
    h.u64(tlb.l1Assoc2M);
    h.u64(tlb.l1Entries1G);
    h.u64(tlb.l1Assoc1G);
    h.u64(tlb.l2Entries);
    h.u64(tlb.l2Assoc);
    h.u64(tlb.l1Latency);
    h.u64(tlb.l2Latency);

    h.u64(mmu.entriesPerLevel);
    h.u64(mmu.assoc);
    h.u64(mmu.latency);

    hashCacheLevel(h, caches.l1);
    hashCacheLevel(h, caches.l2);
    hashCacheLevel(h, caches.llc);

    h.u64(dram.channels);
    h.u64(dram.ranksPerChannel);
    h.u64(dram.banksPerRank);
    h.u64(dram.rowBufferBytes);
    h.e(dram.rowPolicy);
    h.e(dram.subRowAlloc);
    h.u64(dram.subRowCount);
    h.u64(dram.subRowsForPrefetch);
    h.u64(dram.tRCD);
    h.u64(dram.tRP);
    h.u64(dram.tCAS);
    h.u64(dram.tBurst);
    h.u64(dram.tRAS);
    h.e(dram.refreshEnabled);
    h.u64(dram.tREFI);
    h.u64(dram.tRFC);
    h.f64(dram.eAct);
    h.f64(dram.ePre);
    h.f64(dram.eColRead);
    h.f64(dram.eColWrite);
    h.f64(dram.eRefresh);
    h.f64(dram.pStatic);
    h.u64(dram.predictorSets);
    h.u64(dram.predictorWays);

    h.e(mc.sched);
    h.e(mc.tempoEnabled);
    h.e(mc.tempoLlcFill);
    h.u64(mc.tempoPtRowHold);
    h.u64(mc.tempoGracePeriod);
    h.e(mc.tempoGrouping);
    h.u64(mc.prefetchEngineDelay);
    h.u64(mc.prefetchDropDepth);
    h.u64(mc.scheduler.starvationLimit);
    h.e(mc.scheduler.tempoGrouping);
    h.u64(mc.scheduler.blissThreshold);
    h.u64(mc.scheduler.blissClearInterval);
    h.u64(mc.scheduler.blissNormalWeight);
    h.u64(mc.scheduler.blissPrefetchWeight);
    h.e(mc.scheduler.blissTempoAffinity);

    h.u64(os.physBytes);
    h.f64(os.fragLevel);
    h.u64(os.seed);

    h.e(vm.policy);
    h.f64(vm.thpEligibleFrac);
    h.f64(vm.hugetlbfs2MFrac);
    h.f64(vm.hugetlbfs1GFrac);
    h.u64(vm.seed);

    // translator.* is deliberately not hashed: the memoized and
    // reference translation paths produce bit-identical results (the
    // TranslatorByteIdentity ctest pins this), so two configs differing
    // only there describe the same experiment point — same rule as
    // mc.scheduler.useReferenceScheduler.

    h.e(imp.enabled);
    h.u64(imp.prefetchTableEntries);
    h.u64(imp.ipdEntries);
    h.u64(imp.maxIndirectLevels);
    h.u64(imp.prefetchDistance);
    h.u64(imp.trainThreshold);
    h.f64(imp.coverage);
    h.f64(imp.accuracy);
    h.u64(imp.seed);

    h.e(stride.enabled);
    h.u64(stride.tableEntries);
    h.u64(stride.confidenceThreshold);
    h.u64(stride.degree);
    h.u64(stride.distance);

    h.u64(prefetch.engines.size());
    for (const auto &name : prefetch.engines)
        h.bytes(name.data(), name.size());

    h.u64(tskid.tableEntries);
    h.u64(tskid.confidenceThreshold);
    h.u64(tskid.degree);
    h.u64(tskid.distance);
    h.u64(tskid.leadCycles);
    h.u64(tskid.maxPending);

    h.u64(misb.pairEntries);
    h.u64(misb.metadataCacheEntries);
    h.u64(misb.degree);
    h.u64(misb.trainThreshold);
    h.u64(misb.maxMetadataInflight);

    h.u64(temporal.tableEntries);
    h.u64(temporal.confidenceThreshold);
    h.u64(temporal.degree);
    h.u64(temporal.trainThreshold);

    h.f64(energy.corePowerPerCycle);
    h.f64(energy.mcEnergyPerRequest);
    h.f64(energy.tempoMcAreaOverhead);
    h.f64(energy.tempoWalkerAreaOverhead);

    h.u64(mlpWindow);
    h.e(useWorkloadMlpHint);
    h.u64(issueGap);
    h.u64(tlbFillLatency);
    h.u64(pageFaultLatency);
    h.u64(impMaxInflight);
    h.e(tlbPrefetchNext);
    h.u64(seed);

    // Sharding is hashed as an engine flag only: results depend on
    // WHETHER the sharded engine runs, never on how many workers drive
    // it, so shards=1/2/8 share a digest (and legacy digests are
    // unchanged because zero contributes nothing).
    if (shards)
        h.u64(1);

    return h.state;
}

SystemConfig
SystemConfig::skylakeScaled()
{
    SystemConfig cfg;

    // Scaled cache hierarchy: the LLC is deliberately small relative to
    // the workloads' leaf-PTE working sets (DESIGN.md Sec. 2).
    cfg.caches.l1 = {32 * 1024, 8, 4};
    cfg.caches.l2 = {128 * 1024, 8, 14};
    cfg.caches.llc = {256 * 1024, 16, 42};

    // Skylake-style TLBs and MMU caches.
    cfg.tlb = TlbConfig{};
    cfg.mmu = MmuCacheConfig{};

    // DRAM: adaptive row policy, 8KB rows, FR-FCFS (paper Sec. 6 intro).
    cfg.dram = DramConfig{};
    cfg.dram.rowPolicy = RowPolicyKind::Adaptive;

    cfg.mc = McConfig{};
    cfg.mc.sched = SchedKind::FrFcfs;
    cfg.mc.tempoEnabled = false;

    cfg.os = OsMemoryConfig{};
    cfg.vm = AddressSpaceConfig{};
    cfg.vm.policy = PagePolicy::Thp;

    return cfg;
}

SystemConfig &
SystemConfig::withTempo(bool on)
{
    mc.tempoEnabled = on;
    return *this;
}

SystemConfig &
SystemConfig::withRowPolicy(RowPolicyKind kind)
{
    dram.rowPolicy = kind;
    return *this;
}

SystemConfig &
SystemConfig::withSched(SchedKind kind)
{
    mc.sched = kind;
    return *this;
}

SystemConfig &
SystemConfig::withPagePolicy(PagePolicy policy, double frag)
{
    vm.policy = policy;
    os.fragLevel = frag;
    return *this;
}

SystemConfig &
SystemConfig::withImp(bool on)
{
    imp.enabled = on;
    return *this;
}

SystemConfig &
SystemConfig::withPrefetchers(const std::string &csv)
{
    prefetch.engines = parsePrefetcherList(csv);
    return *this;
}

SystemConfig &
SystemConfig::withSubRows(SubRowAlloc alloc, unsigned dedicated)
{
    dram.subRowAlloc = alloc;
    dram.subRowsForPrefetch = dedicated;
    return *this;
}

SystemConfig &
SystemConfig::withSeed(std::uint64_t new_seed)
{
    seed = new_seed;
    os.seed = new_seed + 1;
    vm.seed = new_seed + 2;
    return *this;
}

SystemConfig &
SystemConfig::withShards(unsigned new_shards)
{
    shards = new_shards;
    return *this;
}

} // namespace tempo
