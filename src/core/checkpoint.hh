/**
 * @file
 * Sweep checkpointing: a JSONL journal of completed experiment points,
 * so an interrupted sweep resumes without re-simulating what already
 * finished.
 *
 * Format: one line per completed point,
 *
 *   {"v": 1, "digest": "<16-hex pointDigest>", "attempts": <uint>,
 *    "seed": <uint>, "result": { <full RunResult encoding> }}
 *
 * Only ok points are journaled. Failures are deliberately re-run on
 * resume: a deterministic failure reproduces (so the merged output —
 * including the failures array — is byte-identical to an uninterrupted
 * run), and a transient one gets another chance. The reader tolerates
 * a truncated final line, which is exactly what a kill mid-append
 * leaves behind; everything before it is still used.
 *
 * The journal stores the complete RunResult (every CoreStats counter
 * and every report entry), not just the flattened BenchPoint, so both
 * the bench text tables and the JSON reproduce exactly from a restore.
 */

#ifndef TEMPO_CORE_CHECKPOINT_HH
#define TEMPO_CORE_CHECKPOINT_HH

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "core/tempo_system.hh"
#include "stats/json.hh"

namespace tempo {

/** Encode a finished run for the journal (everything but the
 * exception_ptr, which cannot cross a process boundary). */
stats::Json encodeRunResult(const RunResult &result);

/**
 * Rebuild a RunResult from encodeRunResult() output.
 * @throws std::runtime_error on schema mismatch.
 */
RunResult decodeRunResult(const stats::JsonValue &value);

/**
 * Encode one complete journal record as a single JSONL line (no
 * trailing newline). Ok points emit exactly the pre-fabric journal
 * format; failed/timed-out points — which the fabric's per-worker
 * shard files journal too, unlike the resume journal — additionally
 * carry "status" and "error" between "digest" and "attempts".
 */
std::string encodeJournalLine(std::uint64_t digest,
                              const RunResult &result);

/**
 * Decode one journal/shard line back into (digest, result). The
 * result's status fields (code, error, attempts, seedUsed, digest) are
 * fully restored; absent "status" reads ok.
 * @throws std::runtime_error on malformed input.
 */
struct JournalRecord {
    std::uint64_t digest = 0;
    RunResult result;
};
JournalRecord decodeJournalLine(const std::string &line);

/**
 * Append-only file whose appendLine() issues one O_APPEND write(2) per
 * line. Concurrent writers — two processes sharing a resume journal,
 * or a fabric coordinator tailing a worker's shard mid-append — never
 * observe interleaved bytes within a line, only whole lines (plus at
 * most one truncated tail after a kill).
 */
class AtomicAppendFile
{
  public:
    /** @throws std::runtime_error when @p path cannot be opened. */
    explicit AtomicAppendFile(std::string path);
    ~AtomicAppendFile();

    AtomicAppendFile(const AtomicAppendFile &) = delete;
    AtomicAppendFile &operator=(const AtomicAppendFile &) = delete;

    /** Append @p line plus '\n' as one write; not thread-safe (callers
     * serialize), but safe against concurrent writers of the same
     * file. @throws std::runtime_error on a short or failed write. */
    void appendLine(const std::string &line);

    const std::string &path() const { return path_; }

  private:
    std::string path_;
    int fd_ = -1;
};

/**
 * The append-only journal. Construction loads whatever complete lines
 * an existing file holds (ignoring a truncated tail), then reopens it
 * for appending. record() is thread-safe and writes each point as one
 * append, so a kill loses at most the line being written.
 */
class SweepJournal
{
  public:
    explicit SweepJournal(std::string path);

    /** Restore the journaled result for @p digest; false if absent. */
    bool restore(std::uint64_t digest, RunResult &out) const;

    /** Append one completed ok point. */
    void record(std::uint64_t digest, const RunResult &result);

    /** Points loaded from a pre-existing file. */
    std::size_t loadedCount() const { return loaded_.size(); }

  private:
    std::string path_;
    std::map<std::uint64_t, RunResult> loaded_;
    std::unique_ptr<AtomicAppendFile> out_;
    std::mutex mutex_;
};

} // namespace tempo

#endif // TEMPO_CORE_CHECKPOINT_HH
