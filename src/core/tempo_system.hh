/**
 * @file
 * TempoSystem: the single-application simulator facade used by most of
 * the paper's experiments, and RunResult: everything a bench needs to
 * print one paper figure.
 */

#ifndef TEMPO_CORE_TEMPO_SYSTEM_HH
#define TEMPO_CORE_TEMPO_SYSTEM_HH

#include <memory>

#include "core/energy.hh"
#include "core/machine.hh"
#include "core/run_status.hh"
#include "core/sim_core.hh"
#include "obs/obs.hh"
#include "workloads/workload.hh"

namespace tempo {

/** Everything measured by one single-app run. */
struct RunResult {
    /** How the point ended. Results built outside the experiment
     * engine are always ok; engine results may carry a captured
     * failure, in which case every other field is zero. */
    RunStatus status;

    Cycle runtime = 0;
    EnergyBreakdown energy;
    CoreStats core;

    // Page-size distribution (paper Fig. 10 right / Fig. 13 x-axis).
    double superpageCoverage = 0;
    double coverage2M = 0;
    double coverage1G = 0;

    // DRAM reference counts (paper Fig. 4).
    std::uint64_t dramPtw = 0;
    std::uint64_t dramReplay = 0;
    std::uint64_t dramOther = 0;

    stats::Report report;

    /** Observability payload (trace events, time series); null unless
     * the run executed with observability enabled. */
    std::shared_ptr<obs::RunObs> obs;

    /** Fig. 1 splits: category share of total reference cycles. */
    double fracRuntimePtwDram() const;
    double fracRuntimeReplayDram() const;
    double fracRuntimeOtherDram() const;

    /** Fig. 4 splits: category share of DRAM references. */
    double fracDramPtw() const;
    double fracDramReplay() const;
    double fracDramOther() const;

    /** Improvement of this run over @p baseline (runtime). Positive =
     * this run is faster. Matches the paper's "fraction of baseline
     * execution" metric. */
    double speedupOver(const RunResult &baseline) const;
    /** Same for energy. */
    double energySavingOver(const RunResult &baseline) const;
};

class TempoSystem
{
  public:
    TempoSystem(const SystemConfig &cfg,
                std::unique_ptr<Workload> workload);

    /**
     * Run @p num_refs measured references to completion and collect
     * results. When @p warmup_refs > 0, that many references execute
     * first with statistics discarded at the boundary (architectural
     * state — caches, TLBs, page tables, row buffers — carries over),
     * so the measured window reflects steady-state behaviour.
     */
    RunResult run(std::uint64_t num_refs, std::uint64_t warmup_refs = 0);

    Machine &machine() { return machine_; }
    SimCore &core() { return *core_; }

  private:
    /** Re-arm the periodic time-series sample event. */
    void scheduleObsSample(obs::Session *s, Cycle window);

    Machine machine_;
    /** Present iff cfg.shards > 0; must outlive core_ (the core
     * registers its domain queue with it). */
    std::unique_ptr<ShardEngine> engine_;
    std::unique_ptr<SimCore> core_;
};

/** Convenience: run workload @p name under @p cfg for @p refs. */
RunResult runWorkload(const SystemConfig &cfg, const std::string &name,
                      std::uint64_t refs);

} // namespace tempo

#endif // TEMPO_CORE_TEMPO_SYSTEM_HH
