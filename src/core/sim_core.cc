#include "core/sim_core.hh"

#include <algorithm>

#include "common/log.hh"
#include "common/profiler.hh"
#include "obs/obs.hh"
#include "prefetch/registry.hh"

namespace tempo {

void
CoreStats::report(stats::Report &out) const
{
    out.add("refs", refs);
    out.add("page_faults", pageFaults);
    out.add("walks", walks);
    out.add("pt_dram_accesses", ptDramAccesses);
    out.add("leaf_pt_dram_accesses", leafPtDramAccesses);
    out.add("leaf_fraction_of_pt_dram",
            stats::ratio(leafPtDramAccesses, ptDramAccesses));
    out.add("walks_with_leaf_dram", walksWithLeafDram);
    out.add("pt_dram_l1", ptDramByLevel[1]);
    out.add("pt_dram_l2", ptDramByLevel[2]);
    out.add("pt_dram_l3", ptDramByLevel[3]);
    out.add("pt_dram_l4", ptDramByLevel[4]);
    out.add("leaf_pt_l1_hits", leafPtL1Hits);
    out.add("leaf_pt_l2_hits", leafPtL2Hits);
    out.add("leaf_pt_llc_hits", leafPtLlcHits);
    out.add("replay_dram_accesses", replayDramAccesses);
    out.add("regular_dram_accesses", regularDramAccesses);
    out.add("replay_after_dram_walk", replayAfterDramWalk);
    out.add("replay_dram_after_dram_walk", replayDramAfterDramWalk);
    out.add("replay_follows_ptw_frac",
            stats::ratio(replayDramAfterDramWalk + replayLlcHits
                             + replayPrivateHits,
                         replayAfterDramWalk));
    out.add("replay_llc_hits", replayLlcHits);
    out.add("replay_private_hits", replayPrivateHits);
    out.add("replay_merged", replayMerged);
    out.add("replay_row_hits", replayRowHits);
    out.add("replay_array", replayArray);
    out.add("pt_mshr_merges", ptMshrMerges);
    out.add("data_mshr_merges", dataMshrMerges);
    out.add("imp_issued", impIssued);
    out.add("stride_issued", strideIssued);
    out.add("tlb_prefetches", tlbPrefetches);
    out.add("imp_dropped_inflight", impDroppedInflight);
    out.add("imp_faults", impFaults);
    out.add("cycles_ptw_dram", cyclesPtwDram);
    out.add("cycles_replay_dram", cyclesReplayDram);
    out.add("cycles_other_dram", cyclesOtherDram);
    out.add("cycles_total", cyclesTotal);
    out.add("last_finish", lastFinish);

    // Per-engine taxonomy, emitted only for explicit engine lists so
    // legacy-config output stays byte-identical. useless is derived, so
    // useful + late + useless == issued by construction.
    if (prefetchEngineKeys) {
        for (const auto &e : prefetchEngines) {
            const std::string prefix = "prefetch." + e.name + ".";
            out.add(prefix + "issued", e.issued);
            out.add(prefix + "useful", e.useful);
            out.add(prefix + "late", e.late);
            out.add(prefix + "useless", e.useless());
            out.add(prefix + "dropped", e.dropped);
            out.add(prefix + "faults", e.faults);
            out.add(prefix + "metadata_fetches", e.metadataFetches);
        }
    }
}

/** Per-reference in-flight state. */
struct SimCore::RefContext {
    MemRef ref;
    Addr paddr = kInvalidAddr;
    Cycle issueAt = 0;
    bool tlbMiss = false;
    bool walkLeafDram = false;
    double ptwDramCycles = 0;
    double replayDramCycles = 0;
    std::uint64_t walkId = 0; //!< observability walk id (0 = none)
};

namespace {

/** Direct-mapped resident-prefetch tracking table size (per core).
 * Far larger than the private caches' line capacity, so conflict
 * aliasing only costs tracking accuracy under extreme pressure. */
constexpr std::size_t kPfResidentEntries = 4096;

/** Sharded mode gives each app a disjoint slice of physical memory so
 * its allocation order cannot depend on cross-app event interleaving.
 * The seed is unchanged: a single-app sharded run draws the same
 * allocation sequence as the legacy shared pool. */
OsMemoryConfig
shardOsConfig(const OsMemoryConfig &base, AppId app, unsigned num_apps)
{
    OsMemoryConfig cfg = base;
    const Addr slice =
        alignDown(base.physBytes / num_apps, kPage2MBytes);
    cfg.baseAddr = static_cast<Addr>(app) * slice;
    cfg.physBytes = cfg.baseAddr + slice;
    return cfg;
}

} // namespace

SimCore::SimCore(Machine &machine, AppId app,
                 std::unique_ptr<Workload> workload)
    : ownEq_(machine.sharded() ? std::make_unique<EventQueue>()
                               : nullptr),
      ownOs_(machine.sharded()
                 ? std::make_unique<OsMemory>(shardOsConfig(
                       machine.config.os, app, machine.shardApps()))
                 : nullptr),
      tlb(machine.config.tlb, machine.config.cache),
      mmu(machine.config.mmu, machine.config.cache),
      caches(machine.config.caches, &machine.llc, machine.config.cache),
      addressSpace(ownOs_ ? *ownOs_ : machine.os, [&] {
          AddressSpaceConfig vm_cfg = machine.config.vm;
          vm_cfg.seed += app * 97; // decorrelate per-app decisions
          return vm_cfg;
      }(), machine.config.translator),
      walker(addressSpace.translator(), mmu),
      machine_(machine),
      cfg_(machine.config),
      app_(app),
      workload_(std::move(workload))
{
    TEMPO_ASSERT(workload_, "core needs a workload");
    window_ = cfg_.useWorkloadMlpHint ? workload_->mlpHint()
                                      : cfg_.mlpWindow;
    window_ = std::max(1u, window_);
    if (machine_.sharded())
        domain_ = machine_.registerAppDomain(ownEq_.get());

    for (auto &engine : buildPrefetchers(cfg_)) {
        EngineSlot slot;
        slot.isImp = engine->name() == "imp";
        slot.isStride = engine->name() == "stride";
        slot.engine = std::move(engine);
        engines_.push_back(std::move(slot));
    }
    stats_.prefetchEngineKeys = !cfg_.prefetch.engines.empty();
    for (const auto &slot : engines_)
        stats_.prefetchEngines.push_back({slot.engine->name()});
    if (!engines_.empty())
        pfResident_.resize(kPfResidentEntries);
}

std::vector<const Prefetcher *>
SimCore::prefetchEngines() const
{
    std::vector<const Prefetcher *> out;
    out.reserve(engines_.size());
    for (const auto &slot : engines_)
        out.push_back(slot.engine.get());
    return out;
}

void
SimCore::start(std::uint64_t num_refs)
{
    TEMPO_ASSERT(target_ == 0, "start() called twice");
    TEMPO_ASSERT(num_refs > 0, "empty run");
    target_ = num_refs;
    nextIssueAt_ = eq().now();
    pump();
}

bool
SimCore::mshrWait(Addr line, MshrWaiter waiter)
{
    const auto it = mshr_.find(line);
    if (it == mshr_.end())
        return false;
    it->second.push_back(std::move(waiter));
    return true;
}

void
SimCore::mshrOpen(Addr line)
{
    mshr_.try_emplace(line);
}

void
SimCore::mshrClose(Addr line, Cycle when)
{
    const auto it = mshr_.find(line);
    if (it == mshr_.end())
        return;
    auto waiters = std::move(it->second);
    mshr_.erase(it);
    for (auto &waiter : waiters)
        waiter(when);
}

void
SimCore::pump()
{
    while (inflight_ < window_ && issued_ < target_) {
        const Cycle when = std::max(eq().now(), nextIssueAt_);
        nextIssueAt_ = when + cfg_.issueGap;
        ++inflight_;
        ++issued_;
        eq().schedule(when, [this] { beginRef(); });
    }
}

void
SimCore::beginRef()
{
    prof::Scope prof_scope(prof::Component::Core);
    auto ctx = std::make_shared<RefContext>();
    {
        prof::Scope workload_scope(prof::Component::Workload);
        ctx->ref = workload_->next();
    }
    ctx->issueAt = eq().now();
    ++stats_.refs;

    // Demand paging: the OS maps the page on first touch.
    Cycle fault_penalty = 0;
    if (addressSpace.touch(ctx->ref.vaddr)) {
        ++stats_.pageFaults;
        fault_penalty = cfg_.pageFaultLatency;
    }

    runPrefetchers(ctx->ref);

    const TlbResult tlb_result = tlb.lookup(ctx->ref.vaddr);
    const Cycle after_tlb =
        eq().now() + tlb_result.latency + fault_penalty;

    if (tlb_result.hit) {
        ctx->paddr =
            addressSpace.translate(ctx->ref.vaddr).physAddr(
                ctx->ref.vaddr);
        eq().schedule(after_tlb, [this, ctx] { dataAccess(ctx); });
        return;
    }

    // TLB miss: plan and execute the page table walk.
    ctx->tlbMiss = true;
    ++stats_.walks;
    ++walksOutstanding_;
    auto plan = std::make_shared<WalkPlan>(walker.plan(ctx->ref.vaddr));
    TEMPO_ASSERT(plan->xlate.valid, "demand reference walk must resolve");
    if (auto *o = obs::session()) {
        ctx->walkId = o->walkBegin(eq().now(), ctx->ref.vaddr,
                                   obs::WalkKind::Demand,
                                   plan->fetches.size(), plan->skipped);
        plan->obsWalkId = ctx->walkId;
    }

    const Cycle walk_start = after_tlb + cfg_.mmu.latency;
    const Addr vaddr = ctx->ref.vaddr;
    eq().schedule(walk_start, [this, ctx, plan, vaddr] {
        walkAsync(vaddr, plan, 0, false,
                  [this, ctx, plan, vaddr](Cycle when, double dram_cycles,
                                           bool leaf_dram) {
                      ctx->ptwDramCycles = dram_cycles;
                      ctx->walkLeafDram = leaf_dram;
                      if (leaf_dram)
                          ++stats_.walksWithLeafDram;
                      --walksOutstanding_;
                      if (auto *o = obs::session())
                          o->walkEnd(when, ctx->walkId, leaf_dram);
                      walker.finish(vaddr, *plan);
                      tlb.fill(vaddr, plan->xlate.size);
                      maybeTlbPrefetch(vaddr, plan->xlate.size);
                      ctx->paddr = plan->xlate.physAddr(vaddr);
                      eq().schedule(
                          when + cfg_.tlbFillLatency,
                          [this, ctx] { dataAccess(ctx); });
                  });
    });
}

void
SimCore::walkAsync(Addr vaddr, std::shared_ptr<WalkPlan> plan,
                   std::size_t step, bool for_prefetch,
                   std::function<void(Cycle, double, bool)> done)
{
    prof::Scope prof_scope(prof::Component::Walker);
    // Walk finished (or faulted at the last fetched level).
    if (step >= plan->fetches.size()) {
        done(eq().now(), 0, false);
        return;
    }

    const WalkStep &fetch = plan->fetches[step];
    const bool is_leaf = step + 1 == plan->fetches.size();
    const CacheOutcome outcome = probeCaches(fetch.pteAddr, false);
    const Cycle after_caches = eq().now() + outcome.latency;
    if (auto *o = obs::session()) {
        o->walkStep(eq().now(), plan->obsWalkId, fetch.level,
                    fetch.pteAddr,
                    static_cast<std::uint8_t>(outcome.level));
    }

    if (outcome.level != CacheLevel::Memory) {
        if (is_leaf) {
            switch (outcome.level) {
              case CacheLevel::L1: ++stats_.leafPtL1Hits; break;
              case CacheLevel::L2: ++stats_.leafPtL2Hits; break;
              default: ++stats_.leafPtLlcHits; break;
            }
        }
        eq().schedule(
            after_caches,
            [this, vaddr, plan, step, for_prefetch,
             done = std::move(done)]() mutable {
                walkAsync(vaddr, plan, step + 1, for_prefetch,
                          std::move(done));
            });
        return;
    }

    // A fill of this PTE line may already be in flight (bursty walks to
    // neighbouring pages share PTE lines): merge in the MSHR instead of
    // issuing a duplicate DRAM access. The merged walk does not count
    // as a leaf-from-DRAM trigger — only the original request carries
    // the TEMPO tag.
    const Addr pte_line = lineAddr(fetch.pteAddr);
    if (mshrPending(pte_line)) {
        mshrWait(pte_line,
                 [this, vaddr, plan, step, for_prefetch,
                  submit = after_caches,
                  done = std::move(done)](Cycle when) mutable {
                     ++stats_.ptMshrMerges;
                     const double waited = when > submit
                         ? static_cast<double>(when - submit)
                         : 0.0;
                     auto chained =
                         [waited, done = std::move(done)](
                             Cycle t, double more, bool leaf) {
                             done(t, waited + more, leaf);
                         };
                     walkAsync(vaddr, plan, step + 1, for_prefetch,
                               std::move(chained));
                 });
        return;
    }
    mshrOpen(pte_line);

    // PTE fetch goes to DRAM. The walker tags leaf fetches and appends
    // the replay's target line (paper Sec. 4.1) — the tag carries the
    // resolved replay address (or marks a fault, suppressing prefetch).
    MemRequest req;
    req.paddr = lineAddr(fetch.pteAddr);
    req.isWrite = false;
    req.kind = ReqKind::PtWalk;
    req.app = app_;
    req.walkId = plan->obsWalkId;
    if (is_leaf) {
        req.tempo.tagged = true;
        req.tempo.pteValid = plan->xlate.valid;
        if (plan->xlate.valid) {
            req.tempo.replayPaddr =
                lineAddr(plan->xlate.physAddr(vaddr));
        }
        if (auto *o = obs::session()) {
            o->ptAccessTag(eq().now(), plan->obsWalkId,
                           lineAddr(fetch.pteAddr),
                           req.tempo.replayPaddr, plan->xlate.valid);
        }
    }

    const Cycle submit_at = after_caches;
    const Addr pte_addr = fetch.pteAddr;

    if (machine_.sharded()) {
        // Port round trip: the shared domain probes the LLC and falls
        // through to the memory controller; the reply point tells us
        // which. An LLC hit surfaces here, not at probe time.
        const std::uint8_t level = plan->fetches[step].level;
        machine_.portRequest(
            domain_, submit_at, std::move(req),
            [this, vaddr, plan, step, for_prefetch, is_leaf, submit_at,
             pte_addr, level,
             done = std::move(done)](const PortReply &pr) mutable {
                fillPrivateLevels(pte_addr);
                mshrClose(lineAddr(pte_addr), pr.res.complete);
                double dram_cycles = 0;
                const bool leaf_dram =
                    is_leaf && pr.point == PortReply::Point::Dram;
                if (pr.point == PortReply::Point::Dram) {
                    ++stats_.ptDramAccesses;
                    ++stats_.ptDramByLevel[level];
                    if (is_leaf)
                        ++stats_.leafPtDramAccesses;
                    dram_cycles = static_cast<double>(
                        pr.res.complete - submit_at);
                } else if (is_leaf) {
                    ++stats_.leafPtLlcHits;
                }
                auto chained =
                    [dram_cycles, leaf_dram, done = std::move(done)](
                        Cycle when, double more, bool leaf) {
                        done(when, dram_cycles + more,
                             leaf || leaf_dram);
                    };
                walkAsync(vaddr, plan, step + 1, for_prefetch,
                          std::move(chained));
            });
        return;
    }

    req.onComplete = [this, vaddr, plan, step, for_prefetch, is_leaf,
                      submit_at, pte_addr,
                      done = std::move(done)](
                         const MemResult &res) mutable {
        const Addr writeback = caches.fill(pte_addr);
        if (writeback != kInvalidAddr)
            machine_.submitWriteback(writeback, app_);
        mshrClose(lineAddr(pte_addr), res.complete);
        ++stats_.ptDramAccesses;
        ++stats_.ptDramByLevel[plan->fetches[step].level];
        if (is_leaf)
            ++stats_.leafPtDramAccesses;
        const double dram_cycles =
            static_cast<double>(res.complete - submit_at);
        // Chain to the next level; accumulate DRAM time and leaf flag.
        auto chained = [dram_cycles, is_leaf, done = std::move(done)](
                           Cycle when, double more, bool leaf) {
            done(when, dram_cycles + more, leaf || is_leaf);
        };
        walkAsync(vaddr, plan, step + 1, for_prefetch,
                  std::move(chained));
    };

    machine_.eq.schedule(submit_at, [this, req = std::move(req)]() mutable {
        machine_.mc.submit(std::move(req));
    });
}

void
SimCore::dataAccess(const RefPtr &ctx)
{
    prof::Scope prof_scope(prof::Component::Core);
    TEMPO_ASSERT(ctx->paddr != kInvalidAddr, "data access untranslated");
    if (ctx->tlbMiss) {
        if (auto *o = obs::session())
            o->replayBegin(eq().now(), ctx->walkId, ctx->paddr);
    }
    const CacheOutcome outcome =
        probeCaches(ctx->paddr, ctx->ref.isWrite);
    const Cycle after_caches = eq().now() + outcome.latency;

    if (outcome.level != CacheLevel::Memory) {
        classifyDemandHit(lineAddr(ctx->paddr));
        if (ctx->tlbMiss) {
            const bool llc = outcome.level == CacheLevel::LLC;
            if (ctx->walkLeafDram) {
                ++stats_.replayAfterDramWalk;
                if (llc)
                    ++stats_.replayLlcHits;
                else
                    ++stats_.replayPrivateHits;
            }
            if (auto *o = obs::session()) {
                o->replayEnd(after_caches, ctx->walkId,
                             llc ? obs::ReplayClass::LlcHit
                                 : obs::ReplayClass::PrivateHit);
            }
        }
        eq().schedule(after_caches, [this, ctx] { finishRef(ctx); });
        return;
    }

    // Full cache miss. The decision point is when the LLC lookup
    // completes (after_caches): a TEMPO prefetch landing within the
    // lookup latency still counts as an LLC hit (hit during miss
    // handling), and one still in flight is merged with MSHR-style
    // instead of issuing a duplicate DRAM access (the paper's
    // partial-overlap case, Sec. 3). On the sharded path the LLC
    // probe itself happens in the shared domain, so the miss hands
    // off at the private-level boundary instead.
    if (machine_.sharded()) {
        eq().schedule(after_caches,
                      [this, ctx] { shardedMemoryAccess(ctx); });
        return;
    }
    machine_.eq.schedule(after_caches,
                         [this, ctx] { memoryAccess(ctx); });
}

void
SimCore::memoryAccess(const RefPtr &ctx)
{
    prof::Scope prof_scope(prof::Component::Core);
    const Addr line = lineAddr(ctx->paddr);

    if (ctx->tlbMiss && machine_.llc.cache().contains(line)) {
        // The prefetch filled the LLC while our lookup was in flight.
        classifyDemandHit(line);
        machine_.llc.cache().lookup(line); // LRU touch
        caches.fillPrivate(line);
        if (ctx->walkLeafDram) {
            ++stats_.replayAfterDramWalk;
            ++stats_.replayLlcHits;
        }
        if (auto *o = obs::session()) {
            o->replayEnd(machine_.eq.now(), ctx->walkId,
                         obs::ReplayClass::LlcHit);
        }
        finishRef(ctx);
        return;
    }

    if (ctx->tlbMiss
        && machine_.mc.mergeWithPendingPrefetch(
            line, [this, ctx, submit = machine_.eq.now()](Cycle done) {
                caches.fillPrivate(ctx->paddr);
                ++stats_.replayDramAccesses;
                ctx->replayDramCycles = done > submit
                    ? static_cast<double>(done - submit)
                    : 0.0;
                if (ctx->walkLeafDram) {
                    ++stats_.replayAfterDramWalk;
                    ++stats_.replayMerged;
                }
                if (auto *o = obs::session()) {
                    o->replayEnd(done, ctx->walkId,
                                 obs::ReplayClass::Merged);
                }
                // The waiter runs at the prefetch's completion event,
                // which is never before `submit`.
                finishRef(ctx);
            })) {
        return;
    }

    // A demand fill of this line may already be outstanding (another
    // reference or an IMP chain): wait on it rather than duplicating.
    if (mshrWait(line, [this, ctx,
                        submit = machine_.eq.now()](Cycle when) {
            ++stats_.dataMshrMerges;
            caches.fillPrivate(ctx->paddr);
            ctx->replayDramCycles = 0;
            const double waited = when > submit
                ? static_cast<double>(when - submit)
                : 0.0;
            if (ctx->tlbMiss) {
                ++stats_.replayDramAccesses;
                ctx->replayDramCycles = waited;
                if (ctx->walkLeafDram) {
                    ++stats_.replayAfterDramWalk;
                    // The replay waited on a DRAM array fill of its own
                    // line: it "needed DRAM" in the paper's sense.
                    ++stats_.replayDramAfterDramWalk;
                    ++stats_.replayArray;
                }
                if (auto *o = obs::session()) {
                    o->replayEnd(when, ctx->walkId,
                                 obs::ReplayClass::Array);
                }
            } else {
                stats_.cyclesOtherDram += waited;
            }
            finishRef(ctx);
        })) {
        classifyDemandMerge(line);
        return;
    }
    mshrOpen(line);
    classifyDemandMiss(line);

    MemRequest req;
    req.paddr = line;
    req.isWrite = ctx->ref.isWrite;
    req.kind = ctx->tlbMiss ? ReqKind::Replay : ReqKind::Regular;
    req.app = app_;
    req.walkId = ctx->walkId;
    const Cycle submit_at = machine_.eq.now();
    req.onComplete = [this, ctx, submit_at](const MemResult &res) {
        const Addr writeback =
            caches.fill(ctx->paddr, ctx->ref.isWrite);
        if (writeback != kInvalidAddr)
            machine_.submitWriteback(writeback, app_);
        mshrClose(lineAddr(ctx->paddr), res.complete);
        const double dram_cycles =
            static_cast<double>(res.complete - submit_at);
        if (ctx->tlbMiss) {
            ++stats_.replayDramAccesses;
            ctx->replayDramCycles = dram_cycles;
            const bool row_hit = res.rowEvent
                == static_cast<std::uint8_t>(RowEvent::Hit);
            if (ctx->walkLeafDram) {
                ++stats_.replayAfterDramWalk;
                ++stats_.replayDramAfterDramWalk;
                if (row_hit) {
                    ++stats_.replayRowHits;
                } else {
                    ++stats_.replayArray;
                }
            }
            if (auto *o = obs::session()) {
                o->replayEnd(res.complete, ctx->walkId,
                             row_hit ? obs::ReplayClass::RowHit
                                     : obs::ReplayClass::Array);
            }
        } else {
            ++stats_.regularDramAccesses;
            stats_.cyclesOtherDram += dram_cycles;
        }
        finishRef(ctx);
    };

    machine_.mc.submit(std::move(req));
}

void
SimCore::shardedMemoryAccess(const RefPtr &ctx)
{
    prof::Scope prof_scope(prof::Component::Core);
    const Addr line = lineAddr(ctx->paddr);

    // A demand fill of this line may already be outstanding in this
    // core (another reference or an IMP chain): wait on it rather than
    // sending a duplicate port request. LLC-presence and prefetch-merge
    // checks happen in the shared domain when the request arrives.
    if (mshrWait(line, [this, ctx, submit = eq().now()](Cycle when) {
            ++stats_.dataMshrMerges;
            fillPrivateLevels(ctx->paddr, ctx->ref.isWrite);
            ctx->replayDramCycles = 0;
            const double waited = when > submit
                ? static_cast<double>(when - submit)
                : 0.0;
            if (ctx->tlbMiss) {
                ++stats_.replayDramAccesses;
                ctx->replayDramCycles = waited;
                if (ctx->walkLeafDram) {
                    ++stats_.replayAfterDramWalk;
                    ++stats_.replayDramAfterDramWalk;
                    ++stats_.replayArray;
                }
                if (auto *o = obs::session()) {
                    o->replayEnd(when, ctx->walkId,
                                 obs::ReplayClass::Array);
                }
            } else {
                stats_.cyclesOtherDram += waited;
            }
            finishRef(ctx);
        })) {
        classifyDemandMerge(line);
        return;
    }
    mshrOpen(line);

    MemRequest req;
    req.paddr = line;
    req.isWrite = ctx->ref.isWrite;
    req.kind = ctx->tlbMiss ? ReqKind::Replay : ReqKind::Regular;
    req.app = app_;
    req.walkId = ctx->walkId;
    const Cycle submit_at = eq().now();
    machine_.portRequest(
        domain_, submit_at, std::move(req),
        [this, ctx, submit_at](const PortReply &pr) {
            fillPrivateLevels(ctx->paddr, ctx->ref.isWrite);
            mshrClose(lineAddr(ctx->paddr), pr.res.complete);
            const double dram_cycles =
                static_cast<double>(pr.res.complete - submit_at);
            if (pr.point == PortReply::Point::Llc)
                classifyDemandHit(lineAddr(ctx->paddr));
            else
                classifyDemandMiss(lineAddr(ctx->paddr));
            switch (pr.point) {
              case PortReply::Point::Llc:
                // The line was resident (a TEMPO prefetch landed, or
                // another core pulled it in). Mirrors the legacy
                // hit-during-miss-handling path.
                if (ctx->tlbMiss) {
                    if (ctx->walkLeafDram) {
                        ++stats_.replayAfterDramWalk;
                        ++stats_.replayLlcHits;
                    }
                    if (auto *o = obs::session()) {
                        o->replayEnd(pr.res.complete, ctx->walkId,
                                     obs::ReplayClass::LlcHit);
                    }
                }
                break;
              case PortReply::Point::Merged:
                ++stats_.replayDramAccesses;
                ctx->replayDramCycles = dram_cycles;
                if (ctx->walkLeafDram) {
                    ++stats_.replayAfterDramWalk;
                    ++stats_.replayMerged;
                }
                if (auto *o = obs::session()) {
                    o->replayEnd(pr.res.complete, ctx->walkId,
                                 obs::ReplayClass::Merged);
                }
                break;
              case PortReply::Point::Dram: {
                const bool row_hit = pr.res.rowEvent
                    == static_cast<std::uint8_t>(RowEvent::Hit);
                if (ctx->tlbMiss) {
                    ++stats_.replayDramAccesses;
                    ctx->replayDramCycles = dram_cycles;
                    if (ctx->walkLeafDram) {
                        ++stats_.replayAfterDramWalk;
                        ++stats_.replayDramAfterDramWalk;
                        if (row_hit)
                            ++stats_.replayRowHits;
                        else
                            ++stats_.replayArray;
                    }
                    if (auto *o = obs::session()) {
                        o->replayEnd(pr.res.complete, ctx->walkId,
                                     row_hit
                                         ? obs::ReplayClass::RowHit
                                         : obs::ReplayClass::Array);
                    }
                } else {
                    ++stats_.regularDramAccesses;
                    stats_.cyclesOtherDram += dram_cycles;
                }
                break;
              }
            }
            finishRef(ctx);
        });
}

CacheOutcome
SimCore::probeCaches(Addr addr, bool is_write)
{
    if (!machine_.sharded())
        return caches.access(addr, is_write);
    const CacheOutcome outcome =
        caches.accessPrivate(addr, is_write, victimScratch_);
    flushVictims();
    return outcome;
}

void
SimCore::fillPrivateLevels(Addr addr, bool is_write)
{
    if (!machine_.sharded()) {
        caches.fillPrivate(addr);
        return;
    }
    caches.fillPrivateCollect(addr, is_write, victimScratch_);
    flushVictims();
}

void
SimCore::flushVictims()
{
    if (victimScratch_.empty())
        return;
    const Cycle now = eq().now();
    for (const Addr line : victimScratch_)
        machine_.portWriteback(now, line, app_);
    victimScratch_.clear();
}

void
SimCore::finishRef(const RefPtr &ctx)
{
    prof::Scope prof_scope(prof::Component::Core);
    const Cycle now = eq().now();
    stats_.cyclesPtwDram += ctx->ptwDramCycles;
    stats_.cyclesReplayDram += ctx->replayDramCycles;
    stats_.cyclesTotal += static_cast<double>(now - ctx->issueAt);
    stats_.lastFinish = std::max(stats_.lastFinish, now);

    TEMPO_ASSERT(inflight_ > 0, "finish without inflight");
    --inflight_;
    ++completed_;
    if (warmupCallback_ && completed_ == warmupAfter_) {
        auto callback = std::move(warmupCallback_);
        warmupCallback_ = nullptr;
        callback();
    }
    if (completed_ == target_) {
        if (onDone)
            onDone();
        return;
    }
    pump();
}

void
SimCore::setWarmupCallback(std::uint64_t after,
                           std::function<void()> callback)
{
    TEMPO_ASSERT(target_ == 0, "set the warmup callback before start()");
    warmupAfter_ = after;
    warmupCallback_ = std::move(callback);
}

void
SimCore::resetStats()
{
    stats_ = CoreStats{};
    stats_.prefetchEngineKeys = !cfg_.prefetch.engines.empty();
    for (const auto &slot : engines_)
        stats_.prefetchEngines.push_back({slot.engine->name()});
    // Usefulness tracking restarts with the counters: prefetches issued
    // before the warmup boundary never classify into the measured
    // window (mirrors the obs session's epoch discipline).
    pendingPf_.clear();
    for (auto &slot : pfResident_)
        slot.tag = kInvalidAddr;
    tlb.resetStats();
    mmu.resetStats();
    caches.resetStats();
}

void
SimCore::runPrefetchers(const MemRef &ref)
{
    const Cycle now = eq().now();
    for (std::size_t i = 0; i < engines_.size(); ++i) {
        actionScratch_.clear();
        engines_[i].engine->observe(ref, now, actionScratch_);
        engines_[i].engine->drain(now, actionScratch_);
        if (!actionScratch_.empty())
            dispatchActions(i);
    }
}

void
SimCore::dispatchActions(std::size_t idx)
{
    const EngineSlot &slot = engines_[idx];
    PrefetchEngineStats &es = stats_.prefetchEngines[idx];
    for (std::size_t a = 0; a < actionScratch_.size(); ++a) {
        const PrefetchAction &act = actionScratch_[a];
        if (act.kind == PrefetchAction::Kind::Metadata) {
            metadataFetch(idx, act.addr);
            continue;
        }
        if (impInflight_ >= cfg_.impMaxInflight) {
            // Legacy semantics: one impDroppedInflight per capped
            // batch; the per-engine count covers every lost target.
            ++stats_.impDroppedInflight;
            for (std::size_t r = a; r < actionScratch_.size(); ++r) {
                if (actionScratch_[r].kind
                    == PrefetchAction::Kind::Data)
                    ++es.dropped;
            }
            if (auto *o = obs::session())
                o->corePrefetchDrop(eq().now(), lineAddr(act.addr));
            break;
        }
        ++impInflight_;
        if (slot.isImp)
            ++stats_.impIssued;
        if (slot.isStride)
            ++stats_.strideIssued;
        ++es.issued;
        if (auto *o = obs::session())
            o->corePrefetchIssue(eq().now(), lineAddr(act.addr));
        prefetchChain(act.addr, idx);
    }
}

void
SimCore::metadataFetch(std::size_t idx, Addr addr)
{
    PrefetchEngineStats &es = stats_.prefetchEngines[idx];
    if (metadataInflight_ >= cfg_.misb.maxMetadataInflight) {
        ++es.dropped;
        return;
    }
    ++metadataInflight_;
    ++es.metadataFetches;

    // Metadata lives in a reserved physical region the data hierarchy
    // never caches: hash the trigger line to a stable DRAM address and
    // fetch it uncached (MISB's off-chip metadata traffic; it rides
    // the ImpPrefetch request class so it bills as prefetch traffic).
    const Addr paddr =
        lineAddr((addr * 0x9E3779B97F4A7C15ull) % cfg_.os.physBytes);
    MemRequest req;
    req.paddr = paddr;
    req.isWrite = false;
    req.kind = ReqKind::ImpPrefetch;
    req.app = app_;

    if (machine_.sharded()) {
        machine_.portUncachedRead(domain_, eq().now(), std::move(req),
                                  [this](const PortReply &) {
                                      --metadataInflight_;
                                  });
        return;
    }
    req.onComplete = [this](const MemResult &) { --metadataInflight_; };
    machine_.eq.schedule(machine_.eq.now(),
                         [this, req = std::move(req)]() mutable {
                             machine_.mc.submit(std::move(req));
                         });
}

void
SimCore::notePrefetchFill(Addr line)
{
    const auto it = pendingPf_.find(line);
    if (it == pendingPf_.end())
        return; // a demand merged with the fill: already counted late
    ResidentPf &slot =
        pfResident_[(line / kLineBytes) % pfResident_.size()];
    slot.tag = line;
    slot.engine = it->second;
    pendingPf_.erase(it);
}

void
SimCore::classifyDemandHit(Addr line)
{
    if (pfResident_.empty())
        return;
    ResidentPf &slot =
        pfResident_[(line / kLineBytes) % pfResident_.size()];
    if (slot.tag != line)
        return;
    ++stats_.prefetchEngines[slot.engine].useful;
    slot.tag = kInvalidAddr; // count first use only
}

void
SimCore::classifyDemandMerge(Addr line)
{
    if (pendingPf_.empty())
        return;
    const auto it = pendingPf_.find(line);
    if (it == pendingPf_.end())
        return;
    ++stats_.prefetchEngines[it->second].late;
    pendingPf_.erase(it); // the fill must not re-count it as resident
}

void
SimCore::classifyDemandMiss(Addr line)
{
    if (pfResident_.empty())
        return;
    ResidentPf &slot =
        pfResident_[(line / kLineBytes) % pfResident_.size()];
    if (slot.tag == line)
        slot.tag = kInvalidAddr; // evicted since the fill: stale
}

void
SimCore::prefetchChain(Addr target, std::size_t idx)
{
    // Core prefetches translate through the same TLB and walker as
    // demand references — this is precisely why aggressive prefetching
    // thrashes the TLB and why TEMPO composes so well with it (paper
    // Sec. 4.2). Chains do NOT demand-page: a prefetch to an unmapped
    // page is dropped, exercising TEMPO's page-fault suppression
    // (Sec. 4.5).
    const TlbResult tlb_result = tlb.lookup(target);
    const Cycle after_tlb = eq().now() + tlb_result.latency;

    if (tlb_result.hit) {
        const Translation xlate = addressSpace.translate(target);
        TEMPO_ASSERT(xlate.valid, "TLB hit for unmapped page");
        eq().schedule(after_tlb, [this, idx, paddr =
                                      xlate.physAddr(target)] {
            impData(paddr, idx);
        });
        return;
    }

    auto plan = std::make_shared<WalkPlan>(walker.plan(target));
    if (auto *o = obs::session()) {
        plan->obsWalkId =
            o->walkBegin(eq().now(), target,
                         obs::WalkKind::CorePrefetch,
                         plan->fetches.size(), plan->skipped);
    }
    eq().schedule(
        after_tlb + cfg_.mmu.latency, [this, plan, target, idx] {
            walkAsync(target, plan, 0, true,
                      [this, plan, target, idx](Cycle when, double,
                                                bool leaf_dram) {
                          if (auto *o = obs::session()) {
                              o->walkEnd(when, plan->obsWalkId,
                                         leaf_dram);
                          }
                          if (!plan->xlate.valid) {
                              ++stats_.impFaults;
                              ++stats_.prefetchEngines[idx].faults;
                              --impInflight_;
                              return;
                          }
                          walker.finish(target, *plan);
                          tlb.fill(target, plan->xlate.size);
                          eq().schedule(
                              when + cfg_.tlbFillLatency,
                              [this, idx, paddr = plan->xlate.physAddr(
                                   target)] { impData(paddr, idx); });
                      });
        });
}

void
SimCore::maybeTlbPrefetch(Addr vaddr, PageSize size)
{
    if (!cfg_.tlbPrefetchNext)
        return;
    // Extension: speculatively walk the next virtual page so a future
    // sequential access finds its translation resident. Runs off the
    // critical path; an unmapped neighbour simply drops the chain.
    const Addr next = alignDown(vaddr, pageBytes(size))
        + pageBytes(size);
    if (tlb.lookup(next).hit)
        return;
    ++stats_.tlbPrefetches;
    auto plan = std::make_shared<WalkPlan>(walker.plan(next));
    if (auto *o = obs::session()) {
        plan->obsWalkId =
            o->walkBegin(eq().now(), next,
                         obs::WalkKind::TlbPrefetch,
                         plan->fetches.size(), plan->skipped);
    }
    eq().scheduleIn(cfg_.mmu.latency, [this, plan, next] {
        walkAsync(next, plan, 0, true,
                  [this, plan, next](Cycle when, double,
                                     bool leaf_dram) {
                      if (auto *o = obs::session()) {
                          o->walkEnd(when, plan->obsWalkId,
                                     leaf_dram);
                      }
                      if (!plan->xlate.valid)
                          return;
                      walker.finish(next, *plan);
                      tlb.fill(next, plan->xlate.size);
                  });
    });
}

void
SimCore::impData(Addr paddr, std::size_t idx)
{
    const CacheOutcome outcome = probeCaches(paddr, false);
    if (outcome.level != CacheLevel::Memory) {
        // Already resident: the chain was redundant (it stays in the
        // issued-but-never-classified bucket, i.e. useless).
        --impInflight_;
        return;
    }
    if (mshrWait(lineAddr(paddr), [this](Cycle) { --impInflight_; }))
        return;
    mshrOpen(lineAddr(paddr));
    pendingPf_.try_emplace(lineAddr(paddr), idx);

    MemRequest req;
    req.paddr = lineAddr(paddr);
    req.isWrite = false;
    req.kind = ReqKind::ImpPrefetch;
    req.app = app_;

    if (machine_.sharded()) {
        machine_.portRequest(
            domain_, eq().now() + outcome.latency, std::move(req),
            [this, paddr](const PortReply &pr) {
                fillPrivateLevels(paddr);
                mshrClose(lineAddr(paddr), pr.res.complete);
                notePrefetchFill(lineAddr(paddr));
                --impInflight_;
            });
        return;
    }

    req.onComplete = [this, paddr](const MemResult &res) {
        // IMP fills into L1 (inclusive hierarchy).
        const Addr writeback = caches.fill(paddr);
        if (writeback != kInvalidAddr)
            machine_.submitWriteback(writeback, app_);
        mshrClose(lineAddr(paddr), res.complete);
        notePrefetchFill(lineAddr(paddr));
        --impInflight_;
    };
    machine_.eq.schedule(
        machine_.eq.now() + outcome.latency,
        [this, req = std::move(req)]() mutable {
            machine_.mc.submit(std::move(req));
        });
}

} // namespace tempo
