#include "core/energy.hh"

namespace tempo {

EnergyBreakdown
computeEnergy(const EnergyConfig &cfg, Cycle runtime,
              const DramDevice &dram, std::uint64_t mc_requests,
              bool tempo_enabled)
{
    EnergyBreakdown e;
    const double cycles = static_cast<double>(runtime);

    double core_power = cfg.corePowerPerCycle;
    double mc_per_req = cfg.mcEnergyPerRequest;
    if (tempo_enabled) {
        // TEMPO's extra gates burn power in the MC and walker whether or
        // not they fire; the walker is folded into core static power.
        core_power *= 1.0 + cfg.tempoWalkerAreaOverhead;
        mc_per_req *= 1.0 + cfg.tempoMcAreaOverhead;
    }

    e.coreStatic = cycles * core_power;
    e.dramStatic = cycles * dram.config().pStatic;
    e.dramDynamic = dram.dynamicEnergy();
    e.mcDynamic = static_cast<double>(mc_requests) * mc_per_req;
    return e;
}

} // namespace tempo
