/**
 * @file
 * The parallel experiment engine: run independent (workload, config)
 * simulation points concurrently on a work-stealing thread pool and
 * return their results in submission order.
 *
 * Determinism: every point constructs its own TempoSystem/MultiSystem
 * and draws all randomness from an explicit per-point seed, so a batch
 * produces bit-identical results at any thread count. Callers that want
 * distinct seeds per point derive them with derivedSeed() — never from
 * a shared RNG, whose draw order would depend on scheduling.
 *
 * Fault isolation (ISSUE 3): one faulting point must not kill the
 * sweep. Each point runs behind an exception barrier; whatever it
 * throws — including a watchdog timeout — is captured into the
 * result's RunStatus, and every other point still completes. A bounded
 * retry policy can re-run a failed point with a decorrelated seed, and
 * a checkpoint journal lets an interrupted sweep resume without
 * re-simulating finished points (core/checkpoint.hh).
 */

#ifndef TEMPO_CORE_EXPERIMENT_HH
#define TEMPO_CORE_EXPERIMENT_HH

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "core/multi_system.hh"
#include "core/tempo_system.hh"
#include "stats/json.hh"

namespace tempo {

namespace fabric {
class SweepProgress;
} // namespace fabric

/** One single-application simulation point. */
struct ExperimentPoint {
    /** Workload generator name (makeWorkload), or a label when
     * makeWorkloadFn is set. */
    std::string workload;
    SystemConfig config;
    std::uint64_t refs = 0;
    std::uint64_t warmup = 0;
    /** Workload seed override; nullopt selects config.seed. An
     * explicit 0 is a real seed (historically 0 meant "unset", which
     * silently made seed 0 unusable). */
    std::optional<std::uint64_t> seed;
    /** Optional factory override (e.g. trace replay). Must be safe to
     * invoke from a worker thread. */
    std::function<std::unique_ptr<Workload>()> makeWorkloadFn;
};

/** One multiprogrammed simulation point. */
struct MixPoint {
    std::vector<std::string> workloads;
    SystemConfig config;
    std::uint64_t refsPerApp = 0;
    std::uint64_t warmupPerApp = 0;
};

/** splitmix64 finalizer: a decorrelated seed for point @p index. */
std::uint64_t derivedSeed(std::uint64_t base, std::uint64_t index);

/** Job count used when a caller passes jobs == 0: the TEMPO_JOBS env
 * var if positive, else all hardware threads. */
unsigned defaultJobs();

/** Deterministic fault injection for tests and the CI fault-smoke job:
 * make point @p index throw or hang at the start of its run. */
struct FaultInjection {
    enum class Kind {
        Throw, //!< throw std::runtime_error("injected fault")
        Hang,  //!< spin (polling the watchdog) until timed out
    };
    std::size_t index = 0;
    Kind kind = Kind::Throw;
};

/** Knobs of one engine invocation. */
struct ExperimentOptions {
    /** Worker threads; 0 = defaultJobs(). */
    unsigned jobs = 0;
    /** Extra attempts for a failed/timed-out point. Attempt k > 0
     * re-runs with derivedSeed(seed, k) so a seed-sensitive crash can
     * side-step the bad draw; a deterministic bug fails every
     * attempt. 0 = fail fast (the default: retries change results, so
     * they are opt-in). */
    unsigned retries = 0;
    /** Per-point wall-clock budget in seconds; a point exceeding it is
     * marked timed_out and its worker freed. 0 = no watchdog. */
    double pointTimeoutSec = 0;
    /** Completed-point journal path; "" disables checkpointing. On
     * start, points whose digest is already journaled are restored
     * instead of re-run; each newly finished ok point is appended. */
    std::string checkpointPath;
    /** Sharded-engine override: when set, every point runs with
     * config.shards forced to this value (0 = legacy inline engine).
     * Applied before point digests are computed so checkpoint journals
     * key on the engine that actually ran. Set from TEMPO_SHARDS by
     * fromEnv(). */
    std::optional<unsigned> shards;
    /** Test hook: injected faults (see FaultInjection). */
    std::vector<FaultInjection> inject;
    /** Progress callback, invoked under the engine lock as each point
     * finishes (in completion order, not index order). Under fabric
     * execution it fires for the points THIS process ran, not for
     * points other workers completed. */
    std::function<void(std::size_t index, const RunResult &)> onPointDone;

    // --- Scale-out sweep fabric (src/fabric/, ISSUE 9) ---

    /** Which side of the fabric protocol this process plays. */
    enum class FabricRole {
        None,        //!< single-process execution (the default)
        Worker,      //!< claim points, run them, stream shard records
        Coordinator, //!< run nothing; wait for workers and merge
    };

    /** Shared fabric directory (claims, heartbeats, per-worker result
     * shards, status snapshots). Empty = fabric off. When a fabric
     * role is active, checkpointPath is ignored: the shard files ARE
     * the journal, and a restarted sweep resumes from them. */
    std::string fabricDir;
    FabricRole fabricRole = FabricRole::None;
    /** Stable worker identity (names the heartbeat/shard/status
     * files); "" derives "w<pid>". */
    std::string fabricWorkerId;
    /** A claim whose owner has not heartbeat for this long is presumed
     * dead and reclaimed by another worker. */
    double fabricStaleSec = 30.0;
    /** Liveness heartbeat period for fabric workers. */
    double fabricHeartbeatSec = 1.0;

    // --- Progress reporting (tempo_sweep --progress / --serve) ---

    /** Emit a stderr progress line (done/failed/total, elapsed, ETA)
     * every this many completed points; 0 = silent. */
    unsigned progressEvery = 0;
    /** Label for progress lines, fabric manifests, and snapshots. */
    std::string progressLabel = "sweep";
    /** Optional external tracker (tempo_sweep --serve feeds its local
     * snapshot endpoint from one); the engine reports point starts and
     * completions into it. When null and progressEvery > 0 the engine
     * uses an internal tracker. Not owned. */
    fabric::SweepProgress *progress = nullptr;

    /**
     * Environment overrides, applied by the benches so CI can inject
     * faults without per-binary flags: TEMPO_RETRIES,
     * TEMPO_POINT_TIMEOUT (seconds), TEMPO_SHARDS (worker count for
     * the sharded engine), TEMPO_FAULT_INJECT
     * ("<index>:throw,<index>:hang"), TEMPO_PROGRESS (progress line
     * period), and the fabric: TEMPO_FABRIC_DIR, TEMPO_FABRIC_ROLE
     * ("worker" | "coordinator"), TEMPO_FABRIC_WORKER,
     * TEMPO_FABRIC_STALE_SEC, TEMPO_FABRIC_HEARTBEAT_SEC.
     */
    static ExperimentOptions fromEnv();

    bool
    fabricActive() const
    {
        return !fabricDir.empty() && fabricRole != FabricRole::None;
    }
};

/**
 * A stable identity for a point within a sweep: hashes the workload
 * name, refs/warmup, seed override, the full config digest, and the
 * point's index. Keys checkpoint journals and failure reports.
 */
std::uint64_t pointDigest(const ExperimentPoint &point, std::size_t index);

/**
 * Run all @p points and return results in point order, bit-identical
 * for any job count. Never throws for a point failure: each result's
 * status records how the point ended, and failed/timed-out results
 * have every measured field zero. A checkpoint-resumed sweep returns
 * exactly the bytes an uninterrupted one would.
 */
std::vector<RunResult>
runExperiments(const std::vector<ExperimentPoint> &points,
               const ExperimentOptions &opts);

/**
 * Back-compat wrapper: run with default options and rethrow the first
 * (lowest-index) captured failure, preserving the pre-ISSUE-3
 * contract that exceptions propagate after all points complete.
 */
std::vector<RunResult>
runExperiments(const std::vector<ExperimentPoint> &points,
               unsigned jobs = 0);

/** Multiprogrammed counterpart of runExperiments(). Fault-isolated
 * the same way; mixes do not checkpoint (checkpointPath is ignored —
 * see docs/MODEL.md). */
std::vector<MultiResult>
runMixExperiments(const std::vector<MixPoint> &points,
                  const ExperimentOptions &opts);

/** Back-compat wrapper, rethrows the first captured failure. */
std::vector<MultiResult>
runMixExperiments(const std::vector<MixPoint> &points, unsigned jobs = 0);

/**
 * Flatten a finished point into the "tempo-bench-1" JSON schema:
 * runtime, the full energy breakdown, and the headline counters
 * (walks, prefetch issue/drop, replay service points, DRAM mix,
 * coverage, TLB miss rate) plus every report entry, and the status /
 * failure fields.
 */
stats::BenchPoint
toBenchPoint(const std::string &workload,
             std::vector<std::pair<std::string, std::string>> config,
             const RunResult &result);

} // namespace tempo

#endif // TEMPO_CORE_EXPERIMENT_HH
