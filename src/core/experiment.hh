/**
 * @file
 * The parallel experiment engine: run independent (workload, config)
 * simulation points concurrently on a work-stealing thread pool and
 * return their results in submission order.
 *
 * Determinism: every point constructs its own TempoSystem/MultiSystem
 * and draws all randomness from an explicit per-point seed, so a batch
 * produces bit-identical results at any thread count. Callers that want
 * distinct seeds per point derive them with derivedSeed() — never from
 * a shared RNG, whose draw order would depend on scheduling.
 */

#ifndef TEMPO_CORE_EXPERIMENT_HH
#define TEMPO_CORE_EXPERIMENT_HH

#include <functional>
#include <string>
#include <vector>

#include "core/multi_system.hh"
#include "core/tempo_system.hh"
#include "stats/json.hh"

namespace tempo {

/** One single-application simulation point. */
struct ExperimentPoint {
    /** Workload generator name (makeWorkload), or a label when
     * makeWorkloadFn is set. */
    std::string workload;
    SystemConfig config;
    std::uint64_t refs = 0;
    std::uint64_t warmup = 0;
    /** Workload seed; 0 selects config.seed. */
    std::uint64_t seed = 0;
    /** Optional factory override (e.g. trace replay). Must be safe to
     * invoke from a worker thread. */
    std::function<std::unique_ptr<Workload>()> makeWorkloadFn;
};

/** One multiprogrammed simulation point. */
struct MixPoint {
    std::vector<std::string> workloads;
    SystemConfig config;
    std::uint64_t refsPerApp = 0;
    std::uint64_t warmupPerApp = 0;
};

/** splitmix64 finalizer: a decorrelated seed for point @p index. */
std::uint64_t derivedSeed(std::uint64_t base, std::uint64_t index);

/** Job count used when a caller passes jobs == 0: the TEMPO_JOBS env
 * var if positive, else all hardware threads. */
unsigned defaultJobs();

/**
 * Run all @p points on @p jobs threads (0 = defaultJobs()) and return
 * results in point order. Results are bit-identical for any job count.
 * Exceptions from point construction or execution propagate to the
 * caller (first one wins; remaining points still complete).
 */
std::vector<RunResult>
runExperiments(const std::vector<ExperimentPoint> &points,
               unsigned jobs = 0);

/** Multiprogrammed counterpart of runExperiments(). */
std::vector<MultiResult>
runMixExperiments(const std::vector<MixPoint> &points, unsigned jobs = 0);

/**
 * Flatten a finished point into the "tempo-bench-1" JSON schema:
 * runtime, the full energy breakdown, and the headline counters
 * (walks, prefetch issue/drop, replay service points, DRAM mix,
 * coverage, TLB miss rate) plus every report entry.
 */
stats::BenchPoint
toBenchPoint(const std::string &workload,
             std::vector<std::pair<std::string, std::string>> config,
             const RunResult &result);

} // namespace tempo

#endif // TEMPO_CORE_EXPERIMENT_HH
