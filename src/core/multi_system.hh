/**
 * @file
 * MultiSystem: multiprogrammed runs — N applications on N cores sharing
 * the LLC, memory controller, and DRAM — plus the weighted-speedup and
 * maximum-slowdown fairness metrics the paper uses for its BLISS and
 * sub-row experiments (Sec. 6.3/6.4).
 */

#ifndef TEMPO_CORE_MULTI_SYSTEM_HH
#define TEMPO_CORE_MULTI_SYSTEM_HH

#include <memory>
#include <vector>

#include "core/energy.hh"
#include "core/machine.hh"
#include "core/run_status.hh"
#include "core/sim_core.hh"
#include "workloads/workload.hh"

namespace tempo {

/** Result of one multiprogrammed run. */
struct MultiResult {
    /** How the point ended (see RunResult::status). */
    RunStatus status;
    /** Cycle at which each app finished its reference quota. */
    std::vector<Cycle> appFinish;
    Cycle runtime = 0; //!< finish of the slowest app
    EnergyBreakdown energy;
    std::vector<CoreStats> appStats;

    /**
     * Weighted speedup versus per-app alone runtimes:
     * sum_i (t_alone_i / t_shared_i). Higher is better. Robust against
     * degenerate inputs rather than asserting: apps beyond the shorter
     * of the two vectors and apps with a zero (missing) runtime on
     * either side contribute nothing, so the result is always finite.
     */
    double weightedSpeedup(const std::vector<Cycle> &alone) const;

    /** Maximum slowdown: max_i (t_shared_i / t_alone_i). Lower is
     * better. Degenerate entries are skipped as in weightedSpeedup(). */
    double maxSlowdown(const std::vector<Cycle> &alone) const;
};

class MultiSystem
{
  public:
    MultiSystem(const SystemConfig &cfg,
                std::vector<std::unique_ptr<Workload>> workloads);

    /**
     * Every app executes @p refs_per_app measured references. With
     * @p warmup_per_app > 0, each core's statistics reset after its
     * own warmup quota, and the shared machine's statistics reset when
     * the LAST core crosses its warmup boundary (shared-resource stats
     * cannot be split per core earlier than that).
     */
    MultiResult run(std::uint64_t refs_per_app,
                    std::uint64_t warmup_per_app = 0);

    Machine &machine() { return machine_; }
    SimCore &core(std::size_t i) { return *cores_.at(i); }
    std::size_t numCores() const { return cores_.size(); }

  private:
    Machine machine_;
    /** Present iff cfg.shards > 0; must outlive cores_ (each core
     * registers its domain queue with it). */
    std::unique_ptr<ShardEngine> engine_;
    std::vector<std::unique_ptr<SimCore>> cores_;
};

/**
 * Per-app alone runtimes for a mix: each workload runs by itself on the
 * same machine configuration (the denominator of the fairness metrics).
 */
std::vector<Cycle> aloneRuntimes(const SystemConfig &cfg,
                                 const std::vector<std::string> &names,
                                 std::uint64_t refs_per_app,
                                 std::uint64_t warmup_per_app = 0);

/** Build workload instances for a mix of names. */
std::vector<std::unique_ptr<Workload>>
makeMix(const std::vector<std::string> &names, std::uint64_t seed);

} // namespace tempo

#endif // TEMPO_CORE_MULTI_SYSTEM_HH
