/**
 * @file
 * A classical per-stream stride prefetcher (reference-prediction-table
 * style). Unlike the IMP model, which needs the generator's index
 * stream, stride detection here is done the way hardware does it:
 * per-stream last-address + stride + 2-bit confidence. The paper's
 * Sec. 4.2 argues TEMPO is orthogonal to classical prefetching; this
 * unit lets the ablation bench demonstrate that.
 */

#ifndef TEMPO_PREFETCH_STRIDE_HH
#define TEMPO_PREFETCH_STRIDE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"
#include "prefetch/prefetcher.hh"
#include "stats/stats.hh"

namespace tempo {

struct StrideConfig {
    bool enabled = false;
    unsigned tableEntries = 64;
    unsigned confidenceThreshold = 2; //!< matches before prefetching
    unsigned degree = 2;              //!< lines prefetched per trigger
    unsigned distance = 4;            //!< strides ahead of the demand
};

class StridePrefetcher : public Prefetcher
{
  public:
    explicit StridePrefetcher(const StrideConfig &cfg);

    /**
     * Observe a demand reference; returns up to cfg.degree addresses to
     * prefetch (empty when not confident). @p out is cleared first.
     */
    void observe(std::uint32_t stream, Addr vaddr,
                 std::vector<Addr> &out);

    // Prefetcher interface (wraps the legacy observe above).
    const std::string &name() const override;
    void observe(const MemRef &ref, Cycle now,
                 std::vector<PrefetchAction> &out) override;

    std::uint64_t issued() const { return issued_; }
    std::uint64_t confidentStreams() const;

    void report(stats::Report &out) const override;

  private:
    struct Entry {
        bool valid = false;
        /** A demand at vaddr 0 is real history: tracked explicitly
         * instead of abusing lastAddr == 0 as the empty sentinel. */
        bool hasHistory = false;
        std::uint32_t stream = 0;
        Addr lastAddr = 0;
        std::int64_t stride = 0;
        unsigned confidence = 0;
        std::uint64_t lastUse = 0;
    };

    Entry *findOrAllocate(std::uint32_t stream);

    StrideConfig cfg_;
    std::vector<Entry> table_;
    std::uint64_t tick_ = 0;
    std::uint64_t issued_ = 0;
    std::uint64_t wrapDropped_ = 0; //!< targets outside [0, 2^64)
    std::vector<Addr> scratch_;     //!< for the Prefetcher adapter
};

} // namespace tempo

#endif // TEMPO_PREFETCH_STRIDE_HH
