/**
 * @file
 * A T-SKID-style delayed stride prefetcher (Kondguli & Huang's
 * "T-SKID: Timing Skid Prefetcher" lineage): stride detection identical
 * in spirit to prefetch/stride.hh, plus per-stream *issue-time*
 * learning. Instead of firing the moment a stream turns confident, the
 * engine estimates when the predicted address will actually be used
 * (last-use interval EWMA x strides ahead) and holds the prefetch until
 * `leadCycles` before that point.
 *
 * Why it earns a slot in the TEMPO matrix: a timing-aware prefetcher
 * shifts its memory traffic off the demand-miss burst, so its page
 * table walks (every prefetch still translates) interleave differently
 * with TEMPO's PT-triggered replays than the fire-immediately stride
 * engine — a distinct point on the interference spectrum.
 *
 * Held prefetches live in a bounded time-ordered queue released by
 * drain(); see docs/MODEL.md "Prefetcher zoo" for the drain-granularity
 * simplification.
 */

#ifndef TEMPO_PREFETCH_TSKID_HH
#define TEMPO_PREFETCH_TSKID_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/types.hh"
#include "prefetch/prefetcher.hh"
#include "stats/stats.hh"

namespace tempo {

struct TskidConfig {
    unsigned tableEntries = 64;
    unsigned confidenceThreshold = 2; //!< matches before prefetching
    unsigned degree = 2;              //!< lines prefetched per trigger
    unsigned distance = 4;            //!< strides ahead of the demand
    /** Target lead time: release a prefetch this many cycles before
     * its predicted use (covers DRAM latency plus the translation). */
    Cycle leadCycles = 400;
    /** Bound on prefetches held back awaiting their release time. */
    unsigned maxPending = 64;
};

class TskidPrefetcher : public Prefetcher
{
  public:
    explicit TskidPrefetcher(const TskidConfig &cfg);

    const std::string &name() const override;
    void observe(const MemRef &ref, Cycle now,
                 std::vector<PrefetchAction> &out) override;
    void drain(Cycle now, std::vector<PrefetchAction> &out) override;

    std::uint64_t scheduled() const { return scheduled_; }
    std::uint64_t released() const { return released_; }
    std::uint64_t pendingDrops() const { return pendingDrops_; }

    void report(stats::Report &out) const override;

  private:
    struct Entry {
        bool valid = false;
        bool hasHistory = false;
        bool hasInterval = false;
        std::uint32_t stream = 0;
        Addr lastAddr = 0;
        std::int64_t stride = 0;
        unsigned confidence = 0;
        Cycle lastTouch = 0;
        Cycle intervalEwma = 0; //!< cycles between touches (EWMA)
        std::uint64_t lastUse = 0;
    };

    Entry *findOrAllocate(std::uint32_t stream);

    TskidConfig cfg_;
    std::vector<Entry> table_;
    /** Held prefetches, ordered by release cycle. std::multimap keeps
     * equal keys in insertion order, so drains are deterministic. */
    std::multimap<Cycle, Addr> pending_;
    std::uint64_t tick_ = 0;
    std::uint64_t scheduled_ = 0;
    std::uint64_t released_ = 0;
    std::uint64_t pendingDrops_ = 0;
    std::uint64_t wrapDropped_ = 0;
};

} // namespace tempo

#endif // TEMPO_PREFETCH_TSKID_HH
