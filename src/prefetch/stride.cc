#include "prefetch/stride.hh"

namespace tempo {

StridePrefetcher::StridePrefetcher(const StrideConfig &cfg)
    : cfg_(cfg), table_(cfg.tableEntries)
{
}

StridePrefetcher::Entry *
StridePrefetcher::findOrAllocate(std::uint32_t stream)
{
    Entry *victim = nullptr;
    for (auto &entry : table_) {
        if (entry.valid && entry.stream == stream)
            return &entry;
        if (!victim || !entry.valid
            || (victim->valid && entry.lastUse < victim->lastUse)) {
            victim = &entry;
        }
    }
    *victim = Entry{};
    victim->valid = true;
    victim->stream = stream;
    return victim;
}

void
StridePrefetcher::observe(std::uint32_t stream, Addr vaddr,
                          std::vector<Addr> &out)
{
    out.clear();
    if (!cfg_.enabled)
        return;

    Entry *entry = findOrAllocate(stream);
    entry->lastUse = ++tick_;

    const auto observed =
        static_cast<std::int64_t>(vaddr)
        - static_cast<std::int64_t>(entry->lastAddr);
    const bool had_history = entry->lastAddr != 0;
    entry->lastAddr = vaddr;

    if (!had_history)
        return;
    if (observed == entry->stride && observed != 0) {
        if (entry->confidence < 3)
            ++entry->confidence;
    } else {
        entry->stride = observed;
        entry->confidence = 0;
        return;
    }

    if (entry->confidence < cfg_.confidenceThreshold)
        return;

    // Confident: prefetch `degree` consecutive stride steps, starting
    // `distance` strides ahead of the demand address.
    for (unsigned d = 0; d < cfg_.degree; ++d) {
        const std::int64_t steps =
            static_cast<std::int64_t>(cfg_.distance + d);
        const std::int64_t target =
            static_cast<std::int64_t>(vaddr) + entry->stride * steps;
        if (target <= 0)
            break;
        out.push_back(static_cast<Addr>(target));
        ++issued_;
    }
}

std::uint64_t
StridePrefetcher::confidentStreams() const
{
    std::uint64_t count = 0;
    for (const auto &entry : table_) {
        if (entry.valid && entry.confidence >= cfg_.confidenceThreshold)
            ++count;
    }
    return count;
}

void
StridePrefetcher::report(stats::Report &out) const
{
    out.add("issued", issued_);
    out.add("confident_streams", confidentStreams());
}

} // namespace tempo
