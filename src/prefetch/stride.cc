#include "prefetch/stride.hh"

namespace tempo {

StridePrefetcher::StridePrefetcher(const StrideConfig &cfg)
    : cfg_(cfg), table_(cfg.tableEntries)
{
}

const std::string &
StridePrefetcher::name() const
{
    static const std::string name = "stride";
    return name;
}

StridePrefetcher::Entry *
StridePrefetcher::findOrAllocate(std::uint32_t stream)
{
    Entry *victim = nullptr;
    for (auto &entry : table_) {
        if (entry.valid && entry.stream == stream)
            return &entry;
        if (!victim || !entry.valid
            || (victim->valid && entry.lastUse < victim->lastUse)) {
            victim = &entry;
        }
    }
    *victim = Entry{};
    victim->valid = true;
    victim->stream = stream;
    return victim;
}

void
StridePrefetcher::observe(std::uint32_t stream, Addr vaddr,
                          std::vector<Addr> &out)
{
    out.clear();
    if (!cfg_.enabled)
        return;

    Entry *entry = findOrAllocate(stream);
    entry->lastUse = ++tick_;

    const auto observed =
        static_cast<std::int64_t>(vaddr)
        - static_cast<std::int64_t>(entry->lastAddr);
    const bool had_history = entry->hasHistory;
    entry->lastAddr = vaddr;
    entry->hasHistory = true;

    if (!had_history)
        return;
    if (observed == entry->stride && observed != 0) {
        if (entry->confidence < 3)
            ++entry->confidence;
    } else {
        entry->stride = observed;
        entry->confidence = 0;
        return;
    }

    if (entry->confidence < cfg_.confidenceThreshold)
        return;

    // Confident: prefetch `degree` consecutive stride steps, starting
    // `distance` strides ahead of the demand address. The target is
    // computed in unsigned arithmetic with explicit wrap checks: a
    // positive stride must advance the address (else it wrapped past
    // 2^64) and a negative stride must retreat it (else it underflowed
    // below 0) — the address space has no sign, so vaddrs at or above
    // 2^63 prefetch like any others.
    for (unsigned d = 0; d < cfg_.degree; ++d) {
        const std::uint64_t steps = cfg_.distance + d;
        const Addr delta =
            static_cast<Addr>(entry->stride) * steps;
        const Addr target = vaddr + delta; // mod 2^64
        const bool wrapped = entry->stride > 0 ? target < vaddr
                                               : target > vaddr;
        if (wrapped) {
            ++wrapDropped_;
            break;
        }
        out.push_back(target);
        ++issued_;
    }
}

void
StridePrefetcher::observe(const MemRef &ref, Cycle now,
                          std::vector<PrefetchAction> &out)
{
    (void)now;
    observe(ref.stream, ref.vaddr, scratch_);
    for (const Addr target : scratch_)
        out.push_back(PrefetchAction::data(target));
}

std::uint64_t
StridePrefetcher::confidentStreams() const
{
    std::uint64_t count = 0;
    for (const auto &entry : table_) {
        if (entry.valid && entry.confidence >= cfg_.confidenceThreshold)
            ++count;
    }
    return count;
}

void
StridePrefetcher::report(stats::Report &out) const
{
    out.add("issued", issued_);
    out.add("confident_streams", confidentStreams());
    out.add("wrap_dropped", wrapDropped_);
}

} // namespace tempo
