/**
 * @file
 * A Triangel-style temporal pair-correlation prefetcher (Ainsworth &
 * Mukkara, ISCA 2024, arXiv 2406.10627): the Markov-1 "last successor"
 * table with the two Triangel refinements that matter at model scale —
 * saturating per-pair confidence (a pair must re-confirm before its
 * successor is trusted again after a mispredict) and a per-stream
 * training sampler that withholds predictions from streams without
 * enough history to justify the table traffic.
 *
 * Unlike the MISB model, all metadata here is on-chip (Triangel reuses
 * spare LLC capacity); the cost axis is therefore table reach, not
 * off-chip metadata bandwidth. Together the two span the irregular-
 * prefetcher design space the TEMPO interaction matrix probes.
 */

#ifndef TEMPO_PREFETCH_TEMPORAL_HH
#define TEMPO_PREFETCH_TEMPORAL_HH

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/types.hh"
#include "prefetch/prefetcher.hh"
#include "stats/stats.hh"

namespace tempo {

struct TemporalConfig {
    unsigned tableEntries = 8192;     //!< pair-correlation table size
    unsigned confidenceThreshold = 1; //!< confirmations before trusting
    unsigned degree = 2;              //!< successor-chain depth
    /** Per-stream observations before the stream may predict. */
    unsigned trainThreshold = 4;
};

class TemporalPrefetcher : public Prefetcher
{
  public:
    explicit TemporalPrefetcher(const TemporalConfig &cfg);

    const std::string &name() const override;
    void observe(const MemRef &ref, Cycle now,
                 std::vector<PrefetchAction> &out) override;

    std::uint64_t predictions() const { return predictions_; }

    void report(stats::Report &out) const override;

  private:
    struct Entry {
        Addr tag = kInvalidAddr; //!< trigger line
        Addr next = kInvalidAddr;
        std::uint8_t confidence = 0; //!< saturating, 0..3
    };

    std::size_t
    index(Addr line) const
    {
        return (line / kLineBytes) % table_.size();
    }

    TemporalConfig cfg_;
    std::vector<Entry> table_;
    std::unordered_map<std::uint32_t, Addr> lastLine_;
    std::unordered_map<std::uint32_t, std::uint64_t> streamObs_;
    std::uint64_t pairsRecorded_ = 0;
    std::uint64_t evictions_ = 0;
    std::uint64_t predictions_ = 0;
};

} // namespace tempo

#endif // TEMPO_PREFETCH_TEMPORAL_HH
