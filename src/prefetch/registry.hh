/**
 * @file
 * The prefetcher registry: maps engine names to constructors and
 * resolves a SystemConfig's engine selection into live Prefetcher
 * instances. Two resolution modes (see PrefetchConfig in
 * prefetcher.hh):
 *
 *  - legacy: prefetch.engines empty — the imp.enabled / stride.enabled
 *    flags select engines, imp first (matching the pre-registry
 *    dispatch order in SimCore), and runs stay byte-identical to the
 *    hard-wired simulator;
 *  - explicit: prefetch.engines lists names — built in list order,
 *    each forced enabled, per-engine taxonomy keys switched on.
 */

#ifndef TEMPO_PREFETCH_REGISTRY_HH
#define TEMPO_PREFETCH_REGISTRY_HH

#include <memory>
#include <string>
#include <vector>

#include "prefetch/prefetcher.hh"

namespace tempo {

struct SystemConfig;

/** Every engine name the registry can build, in registration order. */
const std::vector<std::string> &registeredPrefetcherNames();

bool isRegisteredPrefetcher(const std::string &name);

/**
 * Parse a CLI-style comma-separated engine list ("stride,tskid";
 * "none" or "" yields an empty list = legacy resolution).
 * @throws std::invalid_argument on unknown or duplicate names.
 */
std::vector<std::string> parsePrefetcherList(const std::string &csv);

/**
 * Build the engines @p cfg selects, in dispatch order.
 * @throws std::invalid_argument on unknown or duplicate names in an
 *         explicit engine list.
 */
std::vector<std::unique_ptr<Prefetcher>>
buildPrefetchers(const SystemConfig &cfg);

} // namespace tempo

#endif // TEMPO_PREFETCH_REGISTRY_HH
