#include "prefetch/registry.hh"

#include <algorithm>
#include <stdexcept>

#include "core/config.hh"
#include "prefetch/imp.hh"
#include "prefetch/misb.hh"
#include "prefetch/stride.hh"
#include "prefetch/temporal.hh"
#include "prefetch/tskid.hh"

namespace tempo {

namespace {

std::unique_ptr<Prefetcher>
buildOne(const std::string &name, const SystemConfig &cfg)
{
    if (name == "stride") {
        StrideConfig engine_cfg = cfg.stride;
        engine_cfg.enabled = true;
        return std::make_unique<StridePrefetcher>(engine_cfg);
    }
    if (name == "imp") {
        ImpConfig engine_cfg = cfg.imp;
        engine_cfg.enabled = true;
        return std::make_unique<ImpPrefetcher>(engine_cfg);
    }
    if (name == "tskid")
        return std::make_unique<TskidPrefetcher>(cfg.tskid);
    if (name == "misb")
        return std::make_unique<MisbPrefetcher>(cfg.misb);
    if (name == "temporal")
        return std::make_unique<TemporalPrefetcher>(cfg.temporal);
    throw std::invalid_argument("unknown prefetcher '" + name
                                + "' (known: stride, imp, tskid, misb, "
                                  "temporal)");
}

} // namespace

const std::vector<std::string> &
registeredPrefetcherNames()
{
    static const std::vector<std::string> names = {
        "stride", "imp", "tskid", "misb", "temporal",
    };
    return names;
}

bool
isRegisteredPrefetcher(const std::string &name)
{
    const auto &names = registeredPrefetcherNames();
    return std::find(names.begin(), names.end(), name) != names.end();
}

std::vector<std::string>
parsePrefetcherList(const std::string &csv)
{
    std::vector<std::string> engines;
    if (csv.empty() || csv == "none")
        return engines;
    std::size_t begin = 0;
    while (begin <= csv.size()) {
        const std::size_t comma = csv.find(',', begin);
        const std::string name = csv.substr(
            begin, comma == std::string::npos ? std::string::npos
                                              : comma - begin);
        if (name.empty())
            throw std::invalid_argument(
                "empty engine name in prefetcher list '" + csv + "'");
        if (!isRegisteredPrefetcher(name))
            throw std::invalid_argument(
                "unknown prefetcher '" + name
                + "' (known: stride, imp, tskid, misb, temporal)");
        if (std::find(engines.begin(), engines.end(), name)
            != engines.end()) {
            throw std::invalid_argument("duplicate prefetcher '" + name
                                        + "'");
        }
        engines.push_back(name);
        if (comma == std::string::npos)
            break;
        begin = comma + 1;
    }
    return engines;
}

std::vector<std::unique_ptr<Prefetcher>>
buildPrefetchers(const SystemConfig &cfg)
{
    std::vector<std::unique_ptr<Prefetcher>> engines;
    if (!cfg.prefetch.engines.empty()) {
        for (const std::string &name : cfg.prefetch.engines) {
            for (const auto &built : engines) {
                if (built->name() == name)
                    throw std::invalid_argument(
                        "duplicate prefetcher '" + name + "'");
            }
            engines.push_back(buildOne(name, cfg));
        }
        return engines;
    }
    // Legacy resolution: flags, imp before stride — the pre-registry
    // SimCore dispatch order, which the byte-identity goldens pin.
    if (cfg.imp.enabled)
        engines.push_back(std::make_unique<ImpPrefetcher>(cfg.imp));
    if (cfg.stride.enabled)
        engines.push_back(std::make_unique<StridePrefetcher>(cfg.stride));
    return engines;
}

} // namespace tempo
