#include "prefetch/imp.hh"

namespace tempo {

ImpPrefetcher::ImpPrefetcher(const ImpConfig &cfg)
    : cfg_(cfg), table_(cfg.prefetchTableEntries), rng_(cfg.seed)
{
}

const std::string &
ImpPrefetcher::name() const
{
    static const std::string name = "imp";
    return name;
}

ImpPrefetcher::Entry *
ImpPrefetcher::findOrAllocate(std::uint32_t stream)
{
    Entry *victim = nullptr;
    for (auto &entry : table_) {
        if (entry.valid && entry.stream == stream)
            return &entry;
        if (!victim || !entry.valid
            || (victim->valid && entry.lastUse < victim->lastUse)) {
            victim = &entry;
        }
    }
    victim->valid = true;
    victim->stream = stream;
    victim->observations = 0;
    return victim;
}

Addr
ImpPrefetcher::observe(std::uint32_t stream, bool indirect,
                       Addr future_target)
{
    if (!cfg_.enabled || !indirect)
        return kInvalidAddr;

    Entry *entry = findOrAllocate(stream);
    entry->lastUse = ++tick_;
    if (entry->observations < cfg_.trainThreshold) {
        // Still training in the indirect pattern detector.
        if (++entry->observations == cfg_.trainThreshold)
            ++trainEvents_;
        return kInvalidAddr;
    }
    if (future_target == kInvalidAddr)
        return kInvalidAddr;
    if (!rng_.chance(cfg_.coverage))
        return kInvalidAddr;
    ++issued_;
    if (!rng_.chance(cfg_.accuracy)) {
        // Mispredicted indirect address: lands on a wrong nearby page.
        // The prefetch still translates (thrashing the TLB) and still
        // moves a line, but the demand reference gets no benefit.
        ++mispredicted_;
        const Addr skew = (1 + rng_.below(63)) * kPageBytes;
        return future_target + skew;
    }
    return future_target;
}

void
ImpPrefetcher::observe(const MemRef &ref, Cycle now,
                       std::vector<PrefetchAction> &out)
{
    (void)now;
    const Addr target =
        observe(ref.stream, ref.indirect, ref.indirectFuture);
    if (target != kInvalidAddr)
        out.push_back(PrefetchAction::data(target));
}

std::uint64_t
ImpPrefetcher::trainedStreams() const
{
    std::uint64_t count = 0;
    for (const auto &entry : table_) {
        if (entry.valid && entry.observations >= cfg_.trainThreshold)
            ++count;
    }
    return count;
}

void
ImpPrefetcher::report(stats::Report &out) const
{
    out.add("issued", issued_);
    out.add("trained_streams", trainedStreams());
    out.add("train_events", trainEvents_);
    out.add("mispredicted", mispredicted_);
}

} // namespace tempo
