#include "prefetch/tskid.hh"

namespace tempo {

TskidPrefetcher::TskidPrefetcher(const TskidConfig &cfg)
    : cfg_(cfg), table_(cfg.tableEntries ? cfg.tableEntries : 1)
{
}

const std::string &
TskidPrefetcher::name() const
{
    static const std::string name = "tskid";
    return name;
}

TskidPrefetcher::Entry *
TskidPrefetcher::findOrAllocate(std::uint32_t stream)
{
    Entry *victim = nullptr;
    for (auto &entry : table_) {
        if (entry.valid && entry.stream == stream)
            return &entry;
        if (!victim || !entry.valid
            || (victim->valid && entry.lastUse < victim->lastUse)) {
            victim = &entry;
        }
    }
    *victim = Entry{};
    victim->valid = true;
    victim->stream = stream;
    return victim;
}

void
TskidPrefetcher::observe(const MemRef &ref, Cycle now,
                         std::vector<PrefetchAction> &out)
{
    (void)out; // issue happens via drain(), at the learned time
    Entry *entry = findOrAllocate(ref.stream);
    entry->lastUse = ++tick_;

    // Issue-time learning: EWMA of the stream's inter-touch interval.
    if (entry->hasHistory) {
        const Cycle interval =
            now >= entry->lastTouch ? now - entry->lastTouch : 0;
        entry->intervalEwma = entry->hasInterval
            ? (3 * entry->intervalEwma + interval) / 4
            : interval;
        entry->hasInterval = true;
    }
    entry->lastTouch = now;

    // Stride training (same discipline as the plain stride engine).
    const auto observed =
        static_cast<std::int64_t>(ref.vaddr)
        - static_cast<std::int64_t>(entry->lastAddr);
    const bool had_history = entry->hasHistory;
    entry->lastAddr = ref.vaddr;
    entry->hasHistory = true;

    if (!had_history)
        return;
    if (observed == entry->stride && observed != 0) {
        if (entry->confidence < 3)
            ++entry->confidence;
    } else {
        entry->stride = observed;
        entry->confidence = 0;
        return;
    }
    if (entry->confidence < cfg_.confidenceThreshold)
        return;

    for (unsigned d = 0; d < cfg_.degree; ++d) {
        const std::uint64_t steps = cfg_.distance + d;
        const Addr delta = static_cast<Addr>(entry->stride) * steps;
        const Addr target = ref.vaddr + delta; // mod 2^64
        const bool wrapped = entry->stride > 0 ? target < ref.vaddr
                                               : target > ref.vaddr;
        if (wrapped) {
            ++wrapDropped_;
            break;
        }
        // Predicted use: `steps` inter-touch intervals from now. Hold
        // the prefetch until leadCycles before that (clamped to now:
        // a slow-to-predict stream degrades to fire-immediately).
        const Cycle until = entry->intervalEwma * steps;
        const Cycle release = until > cfg_.leadCycles
            ? now + (until - cfg_.leadCycles)
            : now;
        if (pending_.size() >= cfg_.maxPending) {
            ++pendingDrops_;
            break;
        }
        pending_.emplace(release, target);
        ++scheduled_;
    }
}

void
TskidPrefetcher::drain(Cycle now, std::vector<PrefetchAction> &out)
{
    while (!pending_.empty() && pending_.begin()->first <= now) {
        out.push_back(PrefetchAction::data(pending_.begin()->second));
        pending_.erase(pending_.begin());
        ++released_;
    }
}

void
TskidPrefetcher::report(stats::Report &out) const
{
    out.add("scheduled", scheduled_);
    out.add("released", released_);
    out.add("still_pending", pending_.size());
    out.add("pending_drops", pendingDrops_);
    out.add("wrap_dropped", wrapDropped_);
}

} // namespace tempo
