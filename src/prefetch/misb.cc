#include "prefetch/misb.hh"

namespace tempo {

MisbPrefetcher::MisbPrefetcher(const MisbConfig &cfg)
    : cfg_(cfg),
      pairs_(cfg.pairEntries ? cfg.pairEntries : 1),
      metaCache_(cfg.metadataCacheEntries ? cfg.metadataCacheEntries : 1,
                 kInvalidAddr)
{
}

const std::string &
MisbPrefetcher::name() const
{
    static const std::string name = "misb";
    return name;
}

void
MisbPrefetcher::observe(const MemRef &ref, Cycle now,
                        std::vector<PrefetchAction> &out)
{
    (void)now;
    const Addr line = lineAddr(ref.vaddr);

    // Record the temporal pair (previous line -> this line).
    const auto last = lastLine_.find(ref.stream);
    if (last != lastLine_.end() && last->second != line) {
        PairEntry &pair = pairs_[pairIndex(last->second)];
        if (pair.tag != last->second && pair.tag != kInvalidAddr)
            ++pairEvictions_;
        pair.tag = last->second;
        pair.next = line;
        ++pairsRecorded_;
    }
    lastLine_[ref.stream] = line;

    // Triangel-style sampler: streams predict only once they have
    // shown enough history to be worth the metadata traffic.
    if (++streamObs_[ref.stream] < cfg_.trainThreshold)
        return;

    // Chase the successor chain. Each hop needs its trigger line's
    // metadata on chip; a miss costs an off-chip metadata fetch and
    // stops the chain (the successor issues on a later trigger).
    Addr cursor = line;
    for (unsigned d = 0; d < cfg_.degree; ++d) {
        const PairEntry &pair = pairs_[pairIndex(cursor)];
        if (pair.tag != cursor || pair.next == kInvalidAddr)
            break;
        Addr &cached = metaCache_[metaIndex(cursor)];
        if (cached != cursor) {
            cached = cursor;
            ++metadataMisses_;
            out.push_back(PrefetchAction::metadata(cursor));
            break;
        }
        ++metadataHits_;
        out.push_back(PrefetchAction::data(pair.next));
        cursor = pair.next;
    }
}

void
MisbPrefetcher::report(stats::Report &out) const
{
    out.add("pairs_recorded", pairsRecorded_);
    out.add("pair_evictions", pairEvictions_);
    out.add("metadata_hits", metadataHits_);
    out.add("metadata_misses", metadataMisses_);
}

} // namespace tempo
