#include "prefetch/temporal.hh"

namespace tempo {

TemporalPrefetcher::TemporalPrefetcher(const TemporalConfig &cfg)
    : cfg_(cfg), table_(cfg.tableEntries ? cfg.tableEntries : 1)
{
}

const std::string &
TemporalPrefetcher::name() const
{
    static const std::string name = "temporal";
    return name;
}

void
TemporalPrefetcher::observe(const MemRef &ref, Cycle now,
                            std::vector<PrefetchAction> &out)
{
    (void)now;
    const Addr line = lineAddr(ref.vaddr);

    // Train: update the previous line's successor with saturating
    // confidence (Triangel's re-confirmation discipline).
    const auto last = lastLine_.find(ref.stream);
    if (last != lastLine_.end() && last->second != line) {
        Entry &entry = table_[index(last->second)];
        if (entry.tag == last->second) {
            if (entry.next == line) {
                if (entry.confidence < 3)
                    ++entry.confidence;
            } else if (entry.confidence > 0) {
                --entry.confidence;
            } else {
                entry.next = line;
            }
        } else {
            if (entry.tag != kInvalidAddr)
                ++evictions_;
            entry.tag = last->second;
            entry.next = line;
            entry.confidence = 1;
            ++pairsRecorded_;
        }
    }
    lastLine_[ref.stream] = line;

    // Sampler: only streams with enough history may predict.
    if (++streamObs_[ref.stream] < cfg_.trainThreshold)
        return;

    // Predict: chase confident successors up to `degree` hops.
    Addr cursor = line;
    for (unsigned d = 0; d < cfg_.degree; ++d) {
        const Entry &entry = table_[index(cursor)];
        if (entry.tag != cursor || entry.next == kInvalidAddr
            || entry.confidence < cfg_.confidenceThreshold) {
            break;
        }
        out.push_back(PrefetchAction::data(entry.next));
        ++predictions_;
        cursor = entry.next;
    }
}

void
TemporalPrefetcher::report(stats::Report &out) const
{
    out.add("pairs_recorded", pairsRecorded_);
    out.add("evictions", evictions_);
    out.add("predictions", predictions_);
}

} // namespace tempo
