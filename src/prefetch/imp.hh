/**
 * @file
 * A model of the Indirect Memory Prefetcher (Yu et al., MICRO 2015),
 * which captures A[B[i]] access patterns.
 *
 * In the trace-driven setting, the workload generator knows its own index
 * stream, so each indirect reference carries the virtual address the
 * stream will touch `distance` iterations ahead. IMP's *detection*
 * behaviour is modeled faithfully to its structure: a stream must first
 * train in the small indirect-pattern detector, and only a bounded number
 * of streams fit in the prefetch table (LRU). Its *address computation*
 * is modeled as exact once trained, matching the high accuracy the
 * original paper reports.
 *
 * What matters for TEMPO (paper Sec. 4.2) is preserved: IMP prefetches
 * cross page boundaries and therefore generate TLB misses and page-table
 * walks of their own, and successful IMP prefetches remove many ordinary
 * DRAM accesses, concentrating the remaining stall time on translation.
 */

#ifndef TEMPO_PREFETCH_IMP_HH
#define TEMPO_PREFETCH_IMP_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "common/types.hh"
#include "prefetch/prefetcher.hh"
#include "stats/stats.hh"

namespace tempo {

struct ImpConfig {
    bool enabled = false;
    unsigned prefetchTableEntries = 16; //!< concurrent streams tracked
    unsigned ipdEntries = 4;            //!< indirect pattern detector
    unsigned maxIndirectLevels = 2;
    unsigned prefetchDistance = 16;
    unsigned trainThreshold = 4; //!< observations before a stream is live
    /** Fraction of trained-stream observations that yield a prefetch
     * (index-fetch bandwidth and confidence limits). */
    double coverage = 0.7;
    /** Fraction of issued prefetches whose computed address is right;
     * the rest land on nearby-but-wrong pages — wasted traffic that
     * still costs translations (how IMP "easily thrashes TLBs",
     * TEMPO paper Sec. 4.2). */
    double accuracy = 0.8;
    std::uint64_t seed = 1234;
};

class ImpPrefetcher : public Prefetcher
{
  public:
    explicit ImpPrefetcher(const ImpConfig &cfg);

    /**
     * Observe one demand reference.
     * @param stream workload stream id of the reference
     * @param indirect true if the reference is part of an indirect
     *        (A[B[i]]) pattern
     * @param future_target vaddr the stream touches `distance` ahead
     * @return the vaddr to prefetch now, or kInvalidAddr
     */
    Addr observe(std::uint32_t stream, bool indirect, Addr future_target);

    // Prefetcher interface (wraps the legacy observe above).
    const std::string &name() const override;
    void observe(const MemRef &ref, Cycle now,
                 std::vector<PrefetchAction> &out) override;

    std::uint64_t issued() const { return issued_; }
    /** Streams currently resident AND trained — an evicted stream
     * leaves this count when it loses its table entry. */
    std::uint64_t trainedStreams() const;
    /** Training completions, cumulatively: an evicted-then-retrained
     * stream counts once per completion (the old "trained_streams"
     * stat conflated the two and double-counted retrains). */
    std::uint64_t trainEvents() const { return trainEvents_; }
    std::uint64_t mispredicted() const { return mispredicted_; }

    void report(stats::Report &out) const override;

  private:
    struct Entry {
        bool valid = false;
        std::uint32_t stream = 0;
        unsigned observations = 0;
        std::uint64_t lastUse = 0;
    };

    Entry *findOrAllocate(std::uint32_t stream);

    ImpConfig cfg_;
    std::vector<Entry> table_;
    Rng rng_;
    std::uint64_t tick_ = 0;
    std::uint64_t issued_ = 0;
    std::uint64_t trainEvents_ = 0;
    std::uint64_t mispredicted_ = 0;
};

} // namespace tempo

#endif // TEMPO_PREFETCH_IMP_HH
