/**
 * @file
 * A MISB-style irregular prefetcher (Managed Irregular Stream Buffer,
 * Wenisch et al. lineage): temporal pair correlation over cache lines,
 * with the defining MISB property modeled explicitly — the correlation
 * metadata is too large for on-chip storage, so it lives off-chip and
 * is demand-cached on chip. A prediction whose metadata misses the
 * on-chip metadata cache cannot issue immediately: it costs an extra
 * off-chip *metadata fetch* first, surfaced to the core as a
 * PrefetchAction::Kind::Metadata and modeled as an uncached DRAM read
 * (bandwidth + queue occupancy, no cache fill).
 *
 * Why it earns a slot in the TEMPO matrix: MISB covers the irregular
 * access patterns stride engines miss, but pays for coverage with
 * metadata traffic that competes with TEMPO's PT-triggered prefetches
 * for DRAM bandwidth — the interaction the matrix bench measures.
 *
 * Simplifications (docs/MODEL.md "Prefetcher zoo"): the structural
 * address space is collapsed to a direct-mapped physical pair table of
 * bounded size, and a metadata fetch enables predictions from its line
 * immediately after installation rather than after the fetch's DRAM
 * round trip.
 */

#ifndef TEMPO_PREFETCH_MISB_HH
#define TEMPO_PREFETCH_MISB_HH

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/types.hh"
#include "prefetch/prefetcher.hh"
#include "stats/stats.hh"

namespace tempo {

struct MisbConfig {
    /** Total pair-correlation metadata entries (the off-chip store;
     * bounded so the model stays finite). */
    unsigned pairEntries = 8192;
    /** On-chip metadata cache entries; misses cost a metadata fetch. */
    unsigned metadataCacheEntries = 256;
    unsigned degree = 2; //!< successor-chain depth per trigger
    /** Per-stream observations before the stream may predict. */
    unsigned trainThreshold = 2;
    /** Outstanding off-chip metadata reads the core allows (enforced
     * by SimCore, which models the DRAM traffic). */
    unsigned maxMetadataInflight = 8;
};

class MisbPrefetcher : public Prefetcher
{
  public:
    explicit MisbPrefetcher(const MisbConfig &cfg);

    const std::string &name() const override;
    void observe(const MemRef &ref, Cycle now,
                 std::vector<PrefetchAction> &out) override;

    std::uint64_t pairsRecorded() const { return pairsRecorded_; }
    std::uint64_t metadataHits() const { return metadataHits_; }
    std::uint64_t metadataMisses() const { return metadataMisses_; }

    void report(stats::Report &out) const override;

  private:
    struct PairEntry {
        Addr tag = kInvalidAddr; //!< trigger line
        Addr next = kInvalidAddr;
    };

    std::size_t
    pairIndex(Addr line) const
    {
        return (line / kLineBytes) % pairs_.size();
    }

    std::size_t
    metaIndex(Addr line) const
    {
        return (line / kLineBytes) % metaCache_.size();
    }

    MisbConfig cfg_;
    std::vector<PairEntry> pairs_;
    std::vector<Addr> metaCache_; //!< cached-metadata line tags
    std::unordered_map<std::uint32_t, Addr> lastLine_;
    std::unordered_map<std::uint32_t, std::uint64_t> streamObs_;
    std::uint64_t pairsRecorded_ = 0;
    std::uint64_t pairEvictions_ = 0;
    std::uint64_t metadataHits_ = 0;
    std::uint64_t metadataMisses_ = 0;
};

} // namespace tempo

#endif // TEMPO_PREFETCH_MISB_HH
