/**
 * @file
 * The pluggable prefetcher interface behind src/prefetch/.
 *
 * Every core-side prefetch engine — the classical stride table, the IMP
 * indirect model, and the newer timing-aware (T-SKID), metadata-managed
 * (MISB) and temporal (Triangel-style) engines — implements the same
 * observe/drain/report lifecycle:
 *
 *  - observe(): called once per demand reference, before the TLB
 *    lookup. The engine trains on the reference and APPENDS any
 *    prefetch actions it wants issued now.
 *  - drain(): called right after observe() with the current cycle; an
 *    engine that holds prefetches back (T-SKID) releases the ones whose
 *    time has come. Engines with no timing state use the default no-op.
 *    Drain granularity is per-observe, not per-cycle — a deliberate
 *    simplification (docs/MODEL.md "Prefetcher zoo"): a held prefetch
 *    is released at the first reference at-or-after its release time.
 *  - report(): engine-internal statistics, merged into the run report
 *    under "prefetch.<name>.model." when an explicit engine list is
 *    configured.
 *
 * Engines never touch the memory system directly: they emit
 * PrefetchActions and SimCore translates/dispatches them through the
 * same TLB/walker/cache path demand references use (which is why
 * aggressive prefetching thrashes the TLB and why TEMPO composes with
 * it, paper Sec. 4.2). Actions come in two kinds:
 *
 *  - Data: prefetch the line holding this virtual address.
 *  - Metadata: an off-chip metadata fetch (MISB's backing store),
 *    modeled as an extra uncached DRAM read — bandwidth cost, no fill.
 */

#ifndef TEMPO_PREFETCH_PREFETCHER_HH
#define TEMPO_PREFETCH_PREFETCHER_HH

#include <string>
#include <vector>

#include "common/types.hh"
#include "stats/stats.hh"
#include "workloads/workload.hh"

namespace tempo {

/** What a prefetch engine asks the core to do. */
struct PrefetchAction {
    enum class Kind : std::uint8_t {
        Data,     //!< prefetch the line at this virtual address
        Metadata, //!< off-chip metadata fetch keyed by this address
    };
    Kind kind = Kind::Data;
    Addr addr = 0;

    static PrefetchAction
    data(Addr vaddr)
    {
        return PrefetchAction{Kind::Data, vaddr};
    }

    static PrefetchAction
    metadata(Addr key)
    {
        return PrefetchAction{Kind::Metadata, key};
    }
};

/** Abstract core-side prefetch engine (see file comment for the
 * lifecycle contract). */
class Prefetcher
{
  public:
    virtual ~Prefetcher() = default;

    /** Registry name ("stride", "imp", "tskid", "misb", "temporal");
     * keys the per-engine config section and the report/obs stats. */
    virtual const std::string &name() const = 0;

    /** Train on one demand reference and APPEND prefetch actions to
     * @p out (never clear it — the core batches engines). */
    virtual void observe(const MemRef &ref, Cycle now,
                         std::vector<PrefetchAction> &out) = 0;

    /** Release time-gated prefetches due at @p now (default: none). */
    virtual void
    drain(Cycle now, std::vector<PrefetchAction> &out)
    {
        (void)now;
        (void)out;
    }

    /** Engine-internal statistics (training state, model counters). */
    virtual void report(stats::Report &out) const = 0;
};

/**
 * Engine selection. An empty list means legacy resolution: the
 * imp.enabled / stride.enabled flags pick the engines (in that order),
 * and the run's report carries only the legacy imp_- and stride_-
 * prefixed keys — byte-identical to the pre-registry simulator. A
 * non-empty list builds
 * the named engines in order (each forced enabled) and switches on the
 * per-engine "prefetch.<name>.*" taxonomy keys.
 */
struct PrefetchConfig {
    std::vector<std::string> engines;
};

} // namespace tempo

#endif // TEMPO_PREFETCH_PREFETCHER_HH
