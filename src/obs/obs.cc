#include "obs/obs.hh"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>

namespace tempo::obs {

namespace detail {

std::atomic<bool> globallyEnabled{false};
thread_local Session *tlsSession = nullptr;

} // namespace detail

namespace {

Config &
globalConfig()
{
    static Config cfg;
    return cfg;
}

} // namespace

const char *
replayClassName(ReplayClass cls)
{
    switch (cls) {
      case ReplayClass::PrivateHit: return "private_hit";
      case ReplayClass::LlcHit: return "llc_hit";
      case ReplayClass::Merged: return "merged";
      case ReplayClass::RowHit: return "row_hit";
      case ReplayClass::Array: return "array";
    }
    return "?";
}

std::uint32_t
parseCategories(const std::string &csv)
{
    std::uint32_t mask = 0;
    std::size_t start = 0;
    while (start <= csv.size()) {
        std::size_t end = csv.find(',', start);
        if (end == std::string::npos)
            end = csv.size();
        const std::string name = csv.substr(start, end - start);
        if (name == "walk")
            mask |= kWalk;
        else if (name == "pt")
            mask |= kPt;
        else if (name == "txq")
            mask |= kTxq;
        else if (name == "prefetch")
            mask |= kPrefetch;
        else if (name == "replay")
            mask |= kReplay;
        else if (name == "row")
            mask |= kRow;
        else if (name == "bliss")
            mask |= kBliss;
        else if (name == "all")
            mask |= kAllCategories;
        else
            throw std::invalid_argument(
                "unknown trace category '" + name
                + "' (walk, pt, txq, prefetch, replay, row, bliss, all)");
        start = end + 1;
        if (end == csv.size())
            break;
    }
    return mask;
}

void
configure(const Config &cfg)
{
    globalConfig() = cfg;
    detail::globallyEnabled.store(cfg.enabled(),
                                  std::memory_order_relaxed);
}

const Config &
config()
{
    return globalConfig();
}

Config
configFromEnv()
{
    Config cfg = globalConfig();
    if (const char *dir = std::getenv("TEMPO_TRACE_DIR")) {
        if (dir[0] != '\0') {
            cfg.trace = true;
            cfg.traceDir = dir;
        }
    }
    if (const char *filter = std::getenv("TEMPO_TRACE_FILTER")) {
        if (filter[0] != '\0')
            cfg.categories = parseCategories(filter);
    }
    if (const char *window = std::getenv("TEMPO_TIMESERIES_WINDOW"))
        cfg.timeseriesWindow = std::strtoull(window, nullptr, 10);
    if (const char *cap = std::getenv("TEMPO_TRACE_CAPACITY")) {
        const std::uint64_t parsed = std::strtoull(cap, nullptr, 10);
        if (parsed > 0)
            cfg.traceCapacity = static_cast<std::size_t>(parsed);
    }
    return cfg;
}

Session::Session(const Config &cfg)
    : cfg_(cfg), replayHist_(50.0, 16)
{
    if (cfg_.trace && cfg_.traceCapacity > 0)
        ring_.reserve(cfg_.traceCapacity);
    walks_.reserve(4096);
    ts_.windowCycles = cfg_.timeseriesWindow;
    if (cfg_.timeseriesWindow > 0) {
        ts_.columns = {
            {"cycle", {}},
            {"txq_occupancy", {}},
            {"prefetch_slots", {}},
            {"outstanding_walks", {}},
            {"row_hit_rate", {}},
            {"replay_latency_avg", {}},
        };
    }
}

void
Session::record(Category cat, EventType type, Cycle ts,
                std::uint64_t walk_id, std::uint64_t a, std::uint64_t b,
                std::uint8_t arg)
{
    if (!cfg_.trace || !(cfg_.categories & cat)
        || cfg_.traceCapacity == 0) {
        return;
    }
    TraceEvent event;
    event.ts = ts;
    event.walkId = walk_id;
    event.a = a;
    event.b = b;
    event.type = type;
    event.arg = arg;
    if (ring_.size() < cfg_.traceCapacity) {
        ring_.push_back(event);
        return;
    }
    // Ring full: overwrite the oldest event (keep the most recent
    // window of activity; the exporter repairs any orphaned end/begin).
    ring_[ringNext_] = event;
    ringNext_ = (ringNext_ + 1) % cfg_.traceCapacity;
    ringWrapped_ = true;
    ++dropped_;
}

Session::WalkRecord *
Session::walk(std::uint64_t id)
{
    if (id == 0 || id > walks_.size())
        return nullptr;
    return &walks_[id - 1];
}

std::uint64_t
Session::walkBegin(Cycle now, Addr vaddr, WalkKind kind,
                   std::size_t planned_steps, std::size_t skipped_steps)
{
    walks_.emplace_back();
    WalkRecord &rec = walks_.back();
    rec.kind = kind;
    const std::uint64_t id = walks_.size();

    switch (kind) {
      case WalkKind::Demand: ++counters_.walks; break;
      case WalkKind::CorePrefetch: ++counters_.walksPrefetch; break;
      case WalkKind::TlbPrefetch: ++counters_.walksTlbPrefetch; break;
    }
    counters_.walkSteps += planned_steps;
    counters_.walkStepsSkipped += skipped_steps;

    record(kWalk, EventType::WalkBegin, now, id, vaddr,
           (static_cast<std::uint64_t>(planned_steps) << 16)
               | (skipped_steps & 0xffff),
           static_cast<std::uint8_t>(kind));
    return id;
}

void
Session::walkStep(Cycle now, std::uint64_t id, int level, Addr pte_addr,
                  std::uint8_t found_level)
{
    record(kWalk, EventType::WalkStep, now, id, pte_addr,
           static_cast<std::uint64_t>(level), found_level);
}

void
Session::ptAccessTag(Cycle now, std::uint64_t id, Addr pte_line,
                     Addr replay_line, bool pte_valid)
{
    record(kPt, EventType::PtAccessTag, now, id, pte_line, replay_line,
           pte_valid ? 1 : 0);
}

void
Session::walkEnd(Cycle now, std::uint64_t id, bool leaf_dram)
{
    if (WalkRecord *rec = walk(id)) {
        rec->leafDram = leaf_dram;
        if (leaf_dram)
            ++counters_.walksLeafDram;
    }
    record(kWalk, EventType::WalkEnd, now, id, 0, 0, leaf_dram ? 1 : 0);
}

void
Session::replayBegin(Cycle now, std::uint64_t id, Addr paddr)
{
    if (WalkRecord *rec = walk(id))
        rec->replayStart = now;
    record(kReplay, EventType::ReplayBegin, now, id, paddr, 0, 0);
}

void
Session::replayEnd(Cycle when, std::uint64_t id, ReplayClass cls)
{
    WalkRecord *rec = walk(id);
    if (rec) {
        // Count only what CoreStats counts (replays whose walk's leaf
        // came from DRAM) so obs.replay_* sums to replay_after_dram_walk.
        if (rec->leafDram && rec->kind == WalkKind::Demand) {
            ++counters_.replay[static_cast<std::size_t>(cls)];
            const double latency = when >= rec->replayStart
                ? static_cast<double>(when - rec->replayStart)
                : 0.0;
            replayLat_[static_cast<std::size_t>(cls)].sample(latency);
            windowLat_.sample(latency);
            replayHist_.sample(latency);
        }
        // Prefetch timeliness: the replay is this prefetch's consumer.
        if (rec->pfIssued && !rec->pfClassified
            && rec->pfEpoch == epoch_) {
            rec->pfClassified = true;
            if (cls == ReplayClass::Merged)
                ++counters_.prefetchLate;
            else if (cls == ReplayClass::LlcHit
                     || cls == ReplayClass::RowHit)
                ++counters_.prefetchUseful;
            else
                ++counters_.prefetchUseless;
        }
    }
    record(kReplay, EventType::ReplayEnd, when, id, 0, 0,
           static_cast<std::uint8_t>(cls));
}

void
Session::txqEnqueue(Cycle now, unsigned channel, std::uint8_t kind,
                    std::uint64_t walk_id, std::size_t occupancy)
{
    record(kTxq, EventType::TxqEnqueue, now, walk_id, channel, occupancy,
           kind);
}

void
Session::txqSplit(Cycle now, unsigned channel, std::uint64_t walk_id)
{
    record(kTxq, EventType::TxqSplit, now, walk_id, channel, 0, 0);
}

void
Session::txqDispatch(Cycle now, std::uint8_t kind, std::uint64_t walk_id,
                     Addr paddr)
{
    record(kTxq, EventType::TxqDispatch, now, walk_id, paddr, 0, kind);
}

void
Session::prefetchIssue(Cycle now, std::uint64_t walk_id, Addr line)
{
    ++counters_.prefetchIssued;
    if (WalkRecord *rec = walk(walk_id)) {
        rec->pfIssued = true;
        rec->pfClassified = false;
        rec->pfEpoch = epoch_;
    }
    record(kPrefetch, EventType::PrefetchIssue, now, walk_id, line, 0, 0);
}

void
Session::prefetchDrop(Cycle now, std::uint64_t walk_id, Addr line)
{
    ++counters_.prefetchDropped;
    record(kPrefetch, EventType::PrefetchDrop, now, walk_id, line, 0, 0);
}

void
Session::corePrefetchIssue(Cycle now, Addr line)
{
    record(kPrefetch, EventType::PrefetchIssue, now, 0, line, 1, 0);
}

void
Session::corePrefetchDrop(Cycle now, Addr line)
{
    record(kPrefetch, EventType::PrefetchDrop, now, 0, line, 1, 0);
}

void
Session::prefetchFault(Cycle now, std::uint64_t walk_id)
{
    ++counters_.prefetchFaults;
    record(kPrefetch, EventType::PrefetchFault, now, walk_id, 0, 0, 0);
}

void
Session::prefetchActivate(Cycle when, std::uint64_t walk_id, Addr line,
                          std::uint8_t row_event)
{
    record(kPrefetch, EventType::PrefetchActivate, when, walk_id, line, 0,
           row_event);
}

void
Session::prefetchFill(Cycle when, std::uint64_t walk_id, Addr line)
{
    record(kPrefetch, EventType::PrefetchFill, when, walk_id, line, 0, 0);
}

void
Session::rowOpen(Cycle when, unsigned bank, Addr row)
{
    record(kRow, EventType::RowOpen, when, 0, bank, row, 0);
}

void
Session::rowClose(Cycle when, unsigned bank, Addr row)
{
    record(kRow, EventType::RowClose, when, 0, bank, row, 0);
}

void
Session::blissBlacklist(Cycle now, AppId app)
{
    ++counters_.blissBlacklists;
    record(kBliss, EventType::BlissBlacklist, now, 0, app, 0, 0);
}

void
Session::timeseriesSample(Cycle now, std::size_t txq_occupancy,
                          std::size_t prefetch_slots,
                          std::uint64_t outstanding_walks,
                          std::uint64_t row_hits,
                          std::uint64_t row_accesses)
{
    if (ts_.columns.empty())
        return;
    // DRAM stats may have been reset at the warmup boundary since the
    // last sample; a shrinking cumulative count restarts the deltas.
    if (row_hits < prevRowHits_ || row_accesses < prevRowAccesses_) {
        prevRowHits_ = 0;
        prevRowAccesses_ = 0;
    }
    const std::uint64_t hits = row_hits - prevRowHits_;
    const std::uint64_t accesses = row_accesses - prevRowAccesses_;
    prevRowHits_ = row_hits;
    prevRowAccesses_ = row_accesses;

    ts_.columns[0].second.push_back(static_cast<double>(now));
    ts_.columns[1].second.push_back(
        static_cast<double>(txq_occupancy));
    ts_.columns[2].second.push_back(
        static_cast<double>(prefetch_slots));
    ts_.columns[3].second.push_back(
        static_cast<double>(outstanding_walks));
    ts_.columns[4].second.push_back(stats::ratio(hits, accesses));
    ts_.columns[5].second.push_back(windowLat_.mean());

    // Fold the window's latency distribution into the run total; the
    // merge is min/max-safe even when the window saw no replays.
    totalLat_.merge(windowLat_);
    windowLat_.reset();
}

void
Session::resetCounters()
{
    counters_ = Counters{};
    for (auto &dist : replayLat_)
        dist.reset();
    windowLat_.reset();
    totalLat_.reset();
    replayHist_.reset();
    ++epoch_;
}

void
Session::absorb(Session &other)
{
    counters_.walks += other.counters_.walks;
    counters_.walksPrefetch += other.counters_.walksPrefetch;
    counters_.walksTlbPrefetch += other.counters_.walksTlbPrefetch;
    counters_.walksLeafDram += other.counters_.walksLeafDram;
    counters_.walkSteps += other.counters_.walkSteps;
    counters_.walkStepsSkipped += other.counters_.walkStepsSkipped;
    for (std::size_t i = 0; i < kNumReplayClasses; ++i)
        counters_.replay[i] += other.counters_.replay[i];
    counters_.prefetchIssued += other.counters_.prefetchIssued;
    counters_.prefetchUseful += other.counters_.prefetchUseful;
    counters_.prefetchLate += other.counters_.prefetchLate;
    counters_.prefetchUseless += other.counters_.prefetchUseless;
    counters_.prefetchDropped += other.counters_.prefetchDropped;
    counters_.prefetchFaults += other.counters_.prefetchFaults;
    counters_.blissBlacklists += other.counters_.blissBlacklists;

    for (std::size_t i = 0; i < kNumReplayClasses; ++i)
        replayLat_[i].merge(other.replayLat_[i]);
    other.totalLat_.merge(other.windowLat_);
    other.windowLat_.reset();
    totalLat_.merge(other.totalLat_);
    replayHist_.merge(other.replayHist_);
    dropped_ += other.dropped_;

    // Buffer the other ring's events oldest-first; finish() interleaves
    // them with this session's by timestamp.
    if (other.ringWrapped_) {
        for (std::size_t i = 0; i < other.ring_.size(); ++i) {
            absorbed_.push_back(
                other.ring_[(other.ringNext_ + i)
                            % other.ring_.size()]);
        }
    } else {
        absorbed_.insert(absorbed_.end(), other.ring_.begin(),
                         other.ring_.end());
    }
    other.ring_.clear();
    other.ring_ = {};
    other.counters_ = Counters{};
    other.dropped_ = 0;
}

std::shared_ptr<RunObs>
Session::finish(stats::Report &audit)
{
    // Prefetches issued in the measured window but never consumed by
    // their walk's replay (prefetch-chain and TLB-prefetch walks, or
    // replays that never ran) were fetched for nothing: useless.
    for (WalkRecord &rec : walks_) {
        if (rec.pfIssued && !rec.pfClassified && rec.pfEpoch == epoch_) {
            rec.pfClassified = true;
            ++counters_.prefetchUseless;
        }
    }
    totalLat_.merge(windowLat_);
    windowLat_.reset();

    audit.add("walks", counters_.walks);
    audit.add("walks_prefetch", counters_.walksPrefetch);
    audit.add("walks_tlb_prefetch", counters_.walksTlbPrefetch);
    audit.add("walks_leaf_dram", counters_.walksLeafDram);
    audit.add("walk_steps", counters_.walkSteps);
    audit.add("walk_steps_skipped", counters_.walkStepsSkipped);
    for (std::size_t i = 0; i < kNumReplayClasses; ++i) {
        const auto cls = static_cast<ReplayClass>(i);
        audit.add(std::string("replay_") + replayClassName(cls),
                  counters_.replay[i]);
    }
    for (std::size_t i = 0; i < kNumReplayClasses; ++i) {
        const auto cls = static_cast<ReplayClass>(i);
        const std::string prefix =
            std::string("replay_latency_") + replayClassName(cls);
        audit.add(prefix + "_avg", replayLat_[i].mean());
        audit.add(prefix + "_max", replayLat_[i].max());
    }
    audit.add("replay_latency_avg", totalLat_.mean());
    audit.add("replay_latency_max", totalLat_.max());
    replayHist_.addTo(audit, "replay_latency_hist.");
    audit.add("prefetch_issued", counters_.prefetchIssued);
    audit.add("prefetch_useful", counters_.prefetchUseful);
    audit.add("prefetch_late", counters_.prefetchLate);
    audit.add("prefetch_useless", counters_.prefetchUseless);
    audit.add("prefetch_dropped", counters_.prefetchDropped);
    audit.add("prefetch_fault_suppressed", counters_.prefetchFaults);
    audit.add("bliss_blacklists", counters_.blissBlacklists);
    audit.add("trace_events", static_cast<std::uint64_t>(
                                  ring_.size() + absorbed_.size()));
    audit.add("trace_dropped", dropped_);
    audit.add("timeseries_windows",
              static_cast<std::uint64_t>(
                  ts_.columns.empty() ? 0 : ts_.columns[0].second.size()));

    auto run = std::make_shared<RunObs>();
    run->cfg = cfg_;
    run->droppedEvents = dropped_;
    run->timeseries = std::move(ts_);
    // Unroll the ring into chronological order (oldest first).
    if (ringWrapped_) {
        run->events.reserve(ring_.size());
        for (std::size_t i = 0; i < ring_.size(); ++i) {
            run->events.push_back(
                ring_[(ringNext_ + i) % ring_.size()]);
        }
        ring_.clear();
    } else {
        run->events = std::move(ring_);
    }
    ring_ = {};
    ts_ = TimeSeries{};

    // Interleave events absorbed from other domains' sessions. The
    // stable sort keeps this session's events first within a cycle and
    // preserves each ring's internal order, so the result is a pure
    // function of the simulated schedule (worker-count independent).
    if (!absorbed_.empty()) {
        run->events.insert(run->events.end(), absorbed_.begin(),
                           absorbed_.end());
        std::stable_sort(run->events.begin(), run->events.end(),
                         [](const TraceEvent &x, const TraceEvent &y) {
                             return x.ts < y.ts;
                         });
        absorbed_ = {};
    }
    return run;
}

ScopedRun::ScopedRun()
{
    if (detail::globallyEnabled.load(std::memory_order_relaxed)) {
        session_ = std::make_unique<Session>(config());
        detail::tlsSession = session_.get();
    }
}

ScopedRun::~ScopedRun()
{
    if (session_ && detail::tlsSession == session_.get())
        detail::tlsSession = nullptr;
}

std::shared_ptr<RunObs>
ScopedRun::finish(stats::Report &audit)
{
    if (!session_)
        return nullptr;
    return session_->finish(audit);
}

} // namespace tempo::obs
