/**
 * @file
 * Deterministic, simulator-time observability: a ring-buffered trace
 * recorder, a windowed time-series sampler, and a per-walk lifecycle
 * audit, all cycle-stamped so output is bit-identical across runs and
 * thread counts (unlike the wall-clock profiler).
 *
 * Three cooperating pieces:
 *
 *  - Trace recorder: typed events (walk start/step/finish, PT-access
 *    tag, Tx-Q enqueue/split/dispatch, prefetch issue/activate/fill/
 *    drop, replay classification, row open/close, BLISS blacklist)
 *    land in a pre-reserved ring buffer; when full, the oldest events
 *    are overwritten and counted as dropped. writeChromeTrace() exports
 *    the ring as Chrome trace-event JSON (Perfetto-loadable), with one
 *    thread track per walk id so walker, prefetch-engine, and replay
 *    events join visually.
 *
 *  - Time-series sampler: every `timeseriesWindow` cycles TempoSystem
 *    snapshots Tx-Q occupancy, prefetch slots in use, outstanding
 *    walks, the row-buffer hit rate over the window, and the window's
 *    mean replay latency. The samples surface as a "timeseries" section
 *    of the tempo-bench-1 JSON and as counter tracks in the trace.
 *
 *  - Lifecycle audit: events are joined by walk id into a replay-latency
 *    breakdown (LLC hit / private hit / merged / row-buffer hit / array
 *    access) and a prefetch taxonomy (useful / late / useless /
 *    dropped), reported as "obs.*" stats. The breakdown counts exactly
 *    the replays the core counts, so obs.replay_* sums to
 *    replay_after_dram_walk and the prefetch taxonomy sums to
 *    mc.tempo.prefetches_issued.
 *
 * Cost discipline (mirrors common/profiler.hh): every instrumentation
 * site is `if (auto *s = obs::session())` — one relaxed atomic load and
 * a predictable branch when observability is off, so default runs stay
 * byte-identical to a build without the hooks. Sessions are
 * thread_local and created only by TempoSystem::run (the parallel
 * engine runs each point entirely on one worker thread); MultiSystem
 * runs are not instrumented and record nothing.
 */

#ifndef TEMPO_OBS_OBS_HH
#define TEMPO_OBS_OBS_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/types.hh"
#include "stats/stats.hh"

namespace tempo::obs {

/** Trace event categories, selectable via --trace-filter. */
enum Category : std::uint32_t {
    kWalk = 1u << 0,     //!< walk begin/step/end
    kPt = 1u << 1,       //!< leaf PT-access tagging
    kTxq = 1u << 2,      //!< transaction-queue enqueue/split/dispatch
    kPrefetch = 1u << 3, //!< prefetch issue/activate/fill/drop/fault
    kReplay = 1u << 4,   //!< replay begin + classification
    kRow = 1u << 5,      //!< DRAM row open/close
    kBliss = 1u << 6,    //!< BLISS blacklist events
    kAllCategories = (1u << 7) - 1,
};

/**
 * Parse a comma-separated category list ("walk,prefetch,replay"; "all"
 * selects everything).
 * @throws std::invalid_argument on an unknown category name.
 */
std::uint32_t parseCategories(const std::string &csv);

/** Typed trace events; see chrome_trace.cc for the export mapping. */
enum class EventType : std::uint8_t {
    WalkBegin,        //!< walker planned a walk (a=vaddr, b=steps<<16|skipped, arg=WalkKind)
    WalkStep,         //!< one PTE fetch (a=pteAddr, b=level, arg=CacheLevel found)
    PtAccessTag,      //!< leaf PT access tagged for TEMPO (a=pteLine, b=replayLine, arg=pteValid)
    WalkEnd,          //!< walk finished (arg=leaf-from-DRAM)
    TxqEnqueue,       //!< request entered a Tx-Q (a=channel, b=occupancy, arg=ReqKind)
    TxqSplit,         //!< tagged PT request took a second Tx-Q slot (a=channel)
    TxqDispatch,      //!< scheduler dispatched a request (a=paddr, arg=ReqKind)
    PrefetchIssue,    //!< Prefetch Engine accepted a trigger (a=line)
    PrefetchActivate, //!< prefetch reached DRAM (a=line, arg=RowEvent)
    PrefetchFill,     //!< prefetch data arrived / LLC filled (a=line)
    PrefetchDrop,     //!< dropped: queue too deep (a=line)
    PrefetchFault,    //!< suppressed: PTE marked a page fault
    ReplayBegin,      //!< replay issued after TLB fill (a=paddr)
    ReplayEnd,        //!< replay serviced (arg=ReplayClass)
    RowOpen,          //!< bank activated a row (a=bank, b=row)
    RowClose,         //!< bank precharged a row (a=bank, b=row)
    BlissBlacklist,   //!< BLISS blacklisted an app (a=app)
};

/** Where a replay was ultimately serviced (joins CoreStats's classes). */
enum class ReplayClass : std::uint8_t {
    PrivateHit, //!< L1/L2 hit
    LlcHit,     //!< LLC hit (TEMPO fill or resident line)
    Merged,     //!< merged with the in-flight TEMPO prefetch
    RowHit,     //!< DRAM row-buffer hit
    Array,      //!< full DRAM array access (incl. demand-MSHR waits)
};

inline constexpr std::size_t kNumReplayClasses = 5;

const char *replayClassName(ReplayClass cls);

/** What kind of translation started a walk. */
enum class WalkKind : std::uint8_t {
    Demand,       //!< demand reference (has a replay)
    CorePrefetch, //!< IMP/stride prefetch chain
    TlbPrefetch,  //!< next-page TLB prefetch chain
};

/** One recorded event: a fixed 40-byte POD, so the ring never
 * allocates past its up-front reservation. */
struct TraceEvent {
    Cycle ts = 0;
    std::uint64_t walkId = 0; //!< 0 when the event has no walk
    std::uint64_t a = 0;
    std::uint64_t b = 0;
    EventType type = EventType::WalkBegin;
    std::uint8_t arg = 0;
};

/** Global observability configuration (off by default). */
struct Config {
    /** Record trace events (enables the whole subsystem). */
    bool trace = false;
    /** Category mask for trace events (audit counters ignore it). */
    std::uint32_t categories = kAllCategories;
    /** Ring capacity in events; oldest events are overwritten (and
     * counted) when a run produces more. Reserved up front so steady-
     * state recording never allocates. */
    std::size_t traceCapacity = 1u << 20;
    /** Sample the time-series every this many cycles; 0 = off. */
    Cycle timeseriesWindow = 0;
    /** Bench pass-through: when set (TEMPO_TRACE_DIR), bench drivers
     * and tools write TRACE_<name>_<index>.json files here. */
    std::string traceDir;

    bool enabled() const { return trace || timeseriesWindow > 0; }
};

/** Install @p cfg globally. Call between runs, not during one. */
void configure(const Config &cfg);

/** The active global configuration. */
const Config &config();

/** Build a Config from TEMPO_TRACE_DIR / TEMPO_TRACE_FILTER /
 * TEMPO_TIMESERIES_WINDOW / TEMPO_TRACE_CAPACITY (without installing
 * it); unset variables leave the defaults. */
Config configFromEnv();

/** Windowed time-series samples: parallel per-metric columns. */
struct TimeSeries {
    Cycle windowCycles = 0;
    /** (metric name, one value per window), all columns equal length.
     * The first column is "cycle": the sample timestamps. */
    std::vector<std::pair<std::string, std::vector<double>>> columns;

    bool
    empty() const
    {
        return columns.empty() || columns.front().second.empty();
    }
};

/** Everything one observed run produced. */
struct RunObs {
    Config cfg;                     //!< config the run recorded under
    std::vector<TraceEvent> events; //!< ring contents, oldest first
    std::uint64_t droppedEvents = 0;
    TimeSeries timeseries;
};

class Session;

namespace detail {

extern std::atomic<bool> globallyEnabled;
extern thread_local Session *tlsSession;

} // namespace detail

/**
 * The active session for this thread, or nullptr. The disabled path is
 * one relaxed atomic load plus a predictable branch — the contract every
 * instrumentation site relies on.
 */
inline Session *
session()
{
    if (!detail::globallyEnabled.load(std::memory_order_relaxed))
        return nullptr;
    return detail::tlsSession;
}

/**
 * Per-run recording state. Instrumentation hooks call into the session
 * returned by obs::session(); TempoSystem::run owns one via ScopedRun.
 */
class Session
{
  public:
    explicit Session(const Config &cfg);

    // --- Walker lifecycle (SimCore) ---
    /** Register a planned walk; returns its dense 1-based id. */
    std::uint64_t walkBegin(Cycle now, Addr vaddr, WalkKind kind,
                            std::size_t planned_steps,
                            std::size_t skipped_steps);
    void walkStep(Cycle now, std::uint64_t id, int level, Addr pte_addr,
                  std::uint8_t found_level);
    void ptAccessTag(Cycle now, std::uint64_t id, Addr pte_line,
                     Addr replay_line, bool pte_valid);
    void walkEnd(Cycle now, std::uint64_t id, bool leaf_dram);

    // --- Replay lifecycle (SimCore) ---
    void replayBegin(Cycle now, std::uint64_t id, Addr paddr);
    /** Classify the replay; @p when is its service-completion cycle. */
    void replayEnd(Cycle when, std::uint64_t id, ReplayClass cls);

    // --- Memory controller ---
    void txqEnqueue(Cycle now, unsigned channel, std::uint8_t kind,
                    std::uint64_t walk_id, std::size_t occupancy);
    void txqSplit(Cycle now, unsigned channel, std::uint64_t walk_id);
    void txqDispatch(Cycle now, std::uint8_t kind, std::uint64_t walk_id,
                     Addr paddr);

    // --- Prefetch engine ---
    void prefetchIssue(Cycle now, std::uint64_t walk_id, Addr line);
    void prefetchDrop(Cycle now, std::uint64_t walk_id, Addr line);
    void prefetchFault(Cycle now, std::uint64_t walk_id);
    void prefetchActivate(Cycle when, std::uint64_t walk_id, Addr line,
                          std::uint8_t row_event);
    void prefetchFill(Cycle when, std::uint64_t walk_id, Addr line);

    // --- Core prefetch engines (prefetch/registry.hh) ---
    // Trace-only: the events land in the ring (b = 1 marks them as
    // core-engine, distinguishing them from the TEMPO engine's b = 0)
    // but touch no audit counters, so obs.prefetch_* keeps summing to
    // mc.tempo.prefetches_issued exactly as before.
    void corePrefetchIssue(Cycle now, Addr line);
    void corePrefetchDrop(Cycle now, Addr line);

    // --- DRAM / scheduler ---
    void rowOpen(Cycle when, unsigned bank, Addr row);
    void rowClose(Cycle when, unsigned bank, Addr row);
    void blissBlacklist(Cycle now, AppId app);

    /** Append one time-series sample (TempoSystem's sampler). */
    void timeseriesSample(Cycle now, std::size_t txq_occupancy,
                          std::size_t prefetch_slots,
                          std::uint64_t outstanding_walks,
                          std::uint64_t row_hits,
                          std::uint64_t row_accesses);

    /**
     * Warmup boundary: zero the audit counters and latency stats (the
     * system resets core/MC/DRAM stats here too) and start a new epoch
     * so prefetches issued before the boundary never classify into the
     * measured window. Recorded trace events and time-series samples
     * are kept — they are timestamped history, not counters.
     */
    void resetCounters();

    /** Finalize: classify leftover prefetches, fill the "obs." report,
     * and hand the recorded data out. The session becomes inert. */
    std::shared_ptr<RunObs> finish(stats::Report &audit);

    /**
     * Fold another session into this one (sharded runs keep one
     * session per event domain; the app session absorbs the shared
     * domain's before finish()). Counters and latency statistics sum;
     * @p other's trace events are buffered and interleaved by
     * timestamp at finish(). Walk records are NOT transferred — the
     * cross-domain prefetch timeliness taxonomy (useful/late/useless)
     * is not maintained under sharding and reports zero. @p other is
     * drained and must not record afterwards.
     */
    void absorb(Session &other);

  private:
    friend class ScopedRun;

    struct WalkRecord {
        Cycle replayStart = 0;
        std::uint32_t pfEpoch = 0;
        WalkKind kind = WalkKind::Demand;
        bool leafDram = false;
        bool pfIssued = false;
        bool pfClassified = false;
    };

    /** Audit counters; all reset at the warmup boundary. */
    struct Counters {
        std::uint64_t walks = 0;
        std::uint64_t walksPrefetch = 0;
        std::uint64_t walksTlbPrefetch = 0;
        std::uint64_t walksLeafDram = 0;
        std::uint64_t walkSteps = 0;
        std::uint64_t walkStepsSkipped = 0;
        std::uint64_t replay[kNumReplayClasses] = {};
        std::uint64_t prefetchIssued = 0;
        std::uint64_t prefetchUseful = 0;
        std::uint64_t prefetchLate = 0;
        std::uint64_t prefetchUseless = 0;
        std::uint64_t prefetchDropped = 0;
        std::uint64_t prefetchFaults = 0;
        std::uint64_t blissBlacklists = 0;
    };

    void record(Category cat, EventType type, Cycle ts,
                std::uint64_t walk_id, std::uint64_t a, std::uint64_t b,
                std::uint8_t arg);
    WalkRecord *walk(std::uint64_t id);

    Config cfg_;
    std::vector<TraceEvent> ring_;
    std::size_t ringNext_ = 0;     //!< next write position
    bool ringWrapped_ = false;
    std::uint64_t dropped_ = 0;

    std::vector<WalkRecord> walks_; //!< indexed by walk id - 1
    Counters counters_;
    std::uint32_t epoch_ = 0;

    /** Events absorbed from other domains' sessions, merged into the
     * ring's chronology at finish(). */
    std::vector<TraceEvent> absorbed_;

    stats::Distribution replayLat_[kNumReplayClasses];
    stats::Distribution windowLat_; //!< current window's replay latency
    stats::Distribution totalLat_;  //!< folded windows (Distribution::merge)
    stats::Histogram replayHist_;

    TimeSeries ts_;
    std::uint64_t prevRowHits_ = 0;
    std::uint64_t prevRowAccesses_ = 0;
};

/**
 * RAII guard TempoSystem::run uses: creates a thread-local session when
 * observability is enabled and guarantees the thread-local slot is
 * cleared on scope exit (including exception unwinds from watchdog
 * timeouts or injected faults).
 */
class ScopedRun
{
  public:
    ScopedRun();
    ~ScopedRun();

    ScopedRun(const ScopedRun &) = delete;
    ScopedRun &operator=(const ScopedRun &) = delete;

    Session *session() const { return session_.get(); }

    /** Finalize and detach the session's data (see Session::finish). */
    std::shared_ptr<RunObs> finish(stats::Report &audit);

  private:
    std::unique_ptr<Session> session_;
};

/**
 * Export a run's ring as Chrome trace-event JSON: pid 1 = walks (one
 * tid per walk id), pid 2 = memory controller, pid 3 = prefetch engine
 * (tid per walk id), pid 4 = DRAM banks, pid 5 = time-series counters.
 * Per-track timestamps are clamped monotone and unmatched begin/end
 * events (ring overwrites, rows still open at exit) are repaired, so
 * the output always nests cleanly.
 */
void writeChromeTrace(std::ostream &os, const RunObs &run);

/** @throws std::runtime_error when @p path cannot be written. */
void writeChromeTrace(const std::string &path, const RunObs &run);

} // namespace tempo::obs

#endif // TEMPO_OBS_OBS_HH
