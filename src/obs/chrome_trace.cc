/**
 * @file
 * Chrome trace-event JSON export of an observed run (the
 * https://perfetto.dev "JSON trace" flavour).
 *
 * Track layout:
 *   pid 1 "walks"      — one tid per walk id: B/E "walk" and "replay"
 *                        spans, "pt_step"/"pt_tag" instants
 *   pid 2 "mc"         — Tx-Q instants, one tid per channel (+ tid 0
 *                        for dispatch/blacklist instants)
 *   pid 3 "prefetch"   — one tid per walk id: B "tempo_prefetch" at
 *                        issue, E at fill, activate/drop/fault instants
 *   pid 4 "dram"       — one tid per flat bank id: B/E "row" spans
 *   pid 5 "timeseries" — one counter ("C") track per sampled metric
 *
 * Timestamps are simulation cycles written as microseconds. Bank events
 * carry future service times and refreshes close rows retroactively, so
 * the writer clamps each track's timestamps monotone, drops end events
 * whose begin was overwritten in the ring, and closes any span still
 * open at the end — every emitted track nests cleanly.
 */

#include "obs/obs.hh"

#include <cstdio>
#include <fstream>
#include <map>
#include <ostream>
#include <stdexcept>
#include <utility>

namespace tempo::obs {

namespace {

struct TrackState {
    Cycle lastTs = 0;
    bool any = false;
    /** Open span names, innermost last (tiny: depth is at most 1-2). */
    std::vector<const char *> open;
};

class Writer
{
  public:
    explicit Writer(std::ostream &os) : os_(os) { os_ << "{\n\"traceEvents\": [\n"; }

    void
    meta(int pid, const char *name)
    {
        sep();
        os_ << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << pid
            << ",\"tid\":0,\"args\":{\"name\":\"" << name << "\"}}";
    }

    /** Begin a span; tracks nesting for close(). */
    void
    begin(const char *name, const char *cat, int pid, std::uint64_t tid,
          Cycle ts, const std::string &args)
    {
        TrackState &track = this->track(pid, tid);
        emit(name, cat, 'B', pid, tid, clamp(track, ts), args);
        track.open.push_back(name);
    }

    /** End the innermost span; dropped silently when nothing is open
     * (its begin event was overwritten in the ring). */
    void
    end(const char *cat, int pid, std::uint64_t tid, Cycle ts,
        const std::string &args)
    {
        TrackState &track = this->track(pid, tid);
        if (track.open.empty())
            return;
        const char *name = track.open.back();
        track.open.pop_back();
        emit(name, cat, 'E', pid, tid, clamp(track, ts), args);
    }

    void
    instant(const char *name, const char *cat, int pid, std::uint64_t tid,
            Cycle ts, const std::string &args)
    {
        TrackState &track = this->track(pid, tid);
        emit(name, cat, 'i', pid, tid, clamp(track, ts), args);
    }

    void
    counter(const char *name, int pid, Cycle ts, double value)
    {
        TrackState &track = this->track(pid, 0);
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.17g", value);
        emit(name, "timeseries", 'C', pid, 0, clamp(track, ts),
             std::string("{\"value\":") + buf + "}");
    }

    /** Close every span still open, then finish the document. */
    void
    close()
    {
        for (auto &[key, track] : tracks_) {
            while (!track.open.empty()) {
                const char *name = track.open.back();
                track.open.pop_back();
                emit(name, "end", 'E', key.first, key.second,
                     track.lastTs, "{}");
            }
        }
        os_ << "\n],\n\"displayTimeUnit\": \"ns\"\n}\n";
    }

  private:
    TrackState &
    track(int pid, std::uint64_t tid)
    {
        return tracks_[{pid, tid}];
    }

    Cycle
    clamp(TrackState &track, Cycle ts)
    {
        if (track.any && ts < track.lastTs)
            ts = track.lastTs;
        track.lastTs = ts;
        track.any = true;
        return ts;
    }

    void
    sep()
    {
        if (first_)
            first_ = false;
        else
            os_ << ",\n";
    }

    void
    emit(const char *name, const char *cat, char ph, int pid,
         std::uint64_t tid, Cycle ts, const std::string &args)
    {
        sep();
        os_ << "{\"name\":\"" << name << "\",\"cat\":\"" << cat
            << "\",\"ph\":\"" << ph << "\",\"ts\":" << ts
            << ",\"pid\":" << pid << ",\"tid\":" << tid
            << ",\"args\":" << args << "}";
    }

    std::ostream &os_;
    bool first_ = true;
    std::map<std::pair<int, std::uint64_t>, TrackState> tracks_;
};

std::string
hex(std::uint64_t v)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "\"0x%llx\"",
                  static_cast<unsigned long long>(v));
    return buf;
}

std::string
u64(std::uint64_t v)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(v));
    return buf;
}

const char *
walkKindName(std::uint8_t kind)
{
    switch (static_cast<WalkKind>(kind)) {
      case WalkKind::Demand: return "demand";
      case WalkKind::CorePrefetch: return "core_prefetch";
      case WalkKind::TlbPrefetch: return "tlb_prefetch";
    }
    return "?";
}

constexpr int kPidWalks = 1;
constexpr int kPidMc = 2;
constexpr int kPidPrefetch = 3;
constexpr int kPidDram = 4;
constexpr int kPidTimeseries = 5;

} // namespace

void
writeChromeTrace(std::ostream &os, const RunObs &run)
{
    Writer w(os);
    w.meta(kPidWalks, "walks");
    w.meta(kPidMc, "mc");
    w.meta(kPidPrefetch, "prefetch");
    w.meta(kPidDram, "dram");
    w.meta(kPidTimeseries, "timeseries");

    for (const TraceEvent &e : run.events) {
        switch (e.type) {
          case EventType::WalkBegin:
            w.begin("walk", "walk", kPidWalks, e.walkId, e.ts,
                    "{\"vaddr\":" + hex(e.a) + ",\"kind\":\""
                        + walkKindName(e.arg) + "\",\"steps\":"
                        + u64(e.b >> 16) + ",\"skipped\":"
                        + u64(e.b & 0xffff) + "}");
            break;
          case EventType::WalkStep:
            w.instant("pt_step", "walk", kPidWalks, e.walkId, e.ts,
                      "{\"pte\":" + hex(e.a) + ",\"level\":" + u64(e.b)
                          + ",\"found_level\":" + u64(e.arg) + "}");
            break;
          case EventType::PtAccessTag:
            w.instant("pt_tag", "pt", kPidWalks, e.walkId, e.ts,
                      "{\"pte_line\":" + hex(e.a) + ",\"replay_line\":"
                          + hex(e.b) + ",\"pte_valid\":"
                          + (e.arg ? "true" : "false") + "}");
            break;
          case EventType::WalkEnd:
            w.end("walk", kPidWalks, e.walkId, e.ts,
                  std::string("{\"leaf_dram\":")
                      + (e.arg ? "true" : "false") + "}");
            break;
          case EventType::ReplayBegin:
            w.begin("replay", "replay", kPidWalks, e.walkId, e.ts,
                    "{\"paddr\":" + hex(e.a) + "}");
            break;
          case EventType::ReplayEnd:
            w.end("replay", kPidWalks, e.walkId, e.ts,
                  std::string("{\"class\":\"")
                      + replayClassName(static_cast<ReplayClass>(e.arg))
                      + "\"}");
            break;
          case EventType::TxqEnqueue:
            w.instant("txq_enqueue", "txq", kPidMc, e.a, e.ts,
                      "{\"occupancy\":" + u64(e.b) + ",\"walk\":"
                          + u64(e.walkId) + "}");
            break;
          case EventType::TxqSplit:
            w.instant("txq_split", "txq", kPidMc, e.a, e.ts,
                      "{\"walk\":" + u64(e.walkId) + "}");
            break;
          case EventType::TxqDispatch:
            w.instant("txq_dispatch", "txq", kPidMc, 0, e.ts,
                      "{\"paddr\":" + hex(e.a) + ",\"walk\":"
                          + u64(e.walkId) + "}");
            break;
          case EventType::PrefetchIssue:
            w.begin("tempo_prefetch", "prefetch", kPidPrefetch, e.walkId,
                    e.ts, "{\"line\":" + hex(e.a) + "}");
            break;
          case EventType::PrefetchActivate:
            w.instant("prefetch_activate", "prefetch", kPidPrefetch,
                      e.walkId, e.ts,
                      "{\"line\":" + hex(e.a) + ",\"row_event\":"
                          + u64(e.arg) + "}");
            break;
          case EventType::PrefetchFill:
            w.end("prefetch", kPidPrefetch, e.walkId, e.ts,
                  "{\"line\":" + hex(e.a) + "}");
            break;
          case EventType::PrefetchDrop:
            w.instant("prefetch_drop", "prefetch", kPidPrefetch,
                      e.walkId, e.ts, "{\"line\":" + hex(e.a) + "}");
            break;
          case EventType::PrefetchFault:
            w.instant("prefetch_fault", "prefetch", kPidPrefetch,
                      e.walkId, e.ts, "{}");
            break;
          case EventType::RowOpen:
            w.begin("row", "row", kPidDram, e.a, e.ts,
                    "{\"row\":" + hex(e.b) + "}");
            break;
          case EventType::RowClose:
            w.end("row", kPidDram, e.a, e.ts,
                  "{\"row\":" + hex(e.b) + "}");
            break;
          case EventType::BlissBlacklist:
            w.instant("bliss_blacklist", "bliss", kPidMc, 0, e.ts,
                      "{\"app\":" + u64(e.a) + "}");
            break;
        }
    }

    // Time-series counter tracks (column 0 is the cycle axis).
    const TimeSeries &ts = run.timeseries;
    if (!ts.empty()) {
        const std::vector<double> &cycles = ts.columns[0].second;
        // Sample-major order: all counter tracks share one (pid, tid)
        // clamp state, so emission must be globally time-ordered.
        for (std::size_t i = 0; i < cycles.size(); ++i) {
            for (std::size_t c = 1; c < ts.columns.size(); ++c) {
                w.counter(ts.columns[c].first.c_str(), kPidTimeseries,
                          static_cast<Cycle>(cycles[i]),
                          ts.columns[c].second[i]);
            }
        }
    }

    w.close();
}

void
writeChromeTrace(const std::string &path, const RunObs &run)
{
    std::ofstream os(path, std::ios::binary);
    if (!os)
        throw std::runtime_error("cannot write trace file " + path);
    writeChromeTrace(os, run);
    os.flush();
    if (!os)
        throw std::runtime_error("short write to trace file " + path);
}

} // namespace tempo::obs
