/**
 * @file
 * Minimal JSON emission for machine-readable experiment results.
 *
 * Two layers:
 *  - Json: an ordered, write-only JSON document builder (objects keep
 *    insertion order; doubles print as shortest round-trip so emission
 *    is byte-deterministic for identical values).
 *  - The bench result schema ("tempo-bench-1"): one file per bench
 *    binary / tool invocation, listing every simulation point with its
 *    workload, config overrides, runtime, energy breakdown, and
 *    headline counters. This is what BENCH_<name>.json files contain
 *    and what the golden-stats regression test validates.
 *
 * Schema (all keys always present, points in run order):
 *
 *   {
 *     "schema": "tempo-bench-1",
 *     "bench": "<binary or tool name>",
 *     "refs": <measured references per point>,
 *     "seed": <base RNG seed>,
 *     "experiment": {
 *       "points": <uint>, "ok": <uint>, "failed": <uint>,
 *       "timed_out": <uint>, "retries": <uint>,
 *       "shards": <uint>   // max per-point "shards" config value
 *                          // (sharded-engine domain count; 0 = every
 *                          // point ran on the legacy inline engine)
 *     },
 *     "points": [
 *       {
 *         "workload": "<name or mix label>",
 *         "config": { "<section.key>": "<value>", ... },
 *         "status": "ok" | "failed" | "timed_out",
 *         "runtime_cycles": <uint>,
 *         "energy": { "core_static": <num>, ..., "total": <num> },
 *         "counters": { "<name>": <num>, ... },
 *         "timeseries": {            // only when sampling was enabled
 *           "window_cycles": <uint>,
 *           "<column>": [ <num>, ... ], ...
 *         }
 *       }, ...
 *     ],
 *     "failures": [
 *       {
 *         "point": <index into points>,
 *         "workload": "<name>",
 *         "config": { ... },
 *         "status": "failed" | "timed_out",
 *         "error": "<exception what()>",
 *         "attempts": <uint>,
 *         "seed": <seed of the final attempt>,
 *         "digest": "<16-hex-digit point digest>"
 *       }, ...
 *     ]
 *   }
 *
 * The "experiment" and "failures" keys are always present (failures is
 * [] on a clean run), and every value is a deterministic function of
 * the points, so emission stays byte-identical across thread counts
 * and across checkpoint-resumed runs.
 */

#ifndef TEMPO_STATS_JSON_HH
#define TEMPO_STATS_JSON_HH

#include <cstdint>
#include <memory>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace tempo::stats {

/** Ordered write-only JSON value. */
class Json
{
  public:
    Json() : kind_(Kind::Null) {}
    Json(bool v) : kind_(Kind::Bool), bool_(v) {}
    Json(std::uint64_t v) : kind_(Kind::Uint), uint_(v) {}
    Json(int v) : kind_(Kind::Uint), uint_(static_cast<std::uint64_t>(v)) {}
    Json(double v) : kind_(Kind::Double), double_(v) {}
    Json(std::string v) : kind_(Kind::String), string_(std::move(v)) {}
    Json(const char *v) : kind_(Kind::String), string_(v) {}

    static Json object();
    static Json array();

    /** Append a key/value pair; panics unless this is an object. */
    Json &set(const std::string &key, Json value);
    /** Append an element; panics unless this is an array. */
    Json &push(Json value);

    /** Pretty-print with 2-space indentation and a trailing newline at
     * top level. Deterministic: same document, same bytes. */
    void write(std::ostream &os) const;
    std::string dump() const;

    /** Single-line emission with no whitespace (for JSONL journals).
     * Same determinism guarantee as write(); no trailing newline. */
    void writeCompact(std::ostream &os) const;
    std::string dumpCompact() const;

  private:
    enum class Kind { Null, Bool, Uint, Double, String, Array, Object };

    void writeIndented(std::ostream &os, int depth) const;

    Kind kind_;
    bool bool_ = false;
    std::uint64_t uint_ = 0;
    double double_ = 0;
    std::string string_;
    std::vector<Json> elements_;                        // array
    std::vector<std::pair<std::string, Json>> members_; // object
};

/** JSON string escaping (quotes not included). */
std::string jsonEscape(const std::string &raw);

/**
 * A parsed (read-only) JSON value, the counterpart of Json for reading
 * back what this module wrote — primarily sweep checkpoint journals.
 *
 * Numbers keep their raw token so both integer and floating consumers
 * get an exact round-trip: asUint64() on "4984" returns exactly 4984,
 * asDouble() on a shortest-round-trip double token returns the bit-
 * identical double that produced it.
 */
struct JsonValue {
    enum class Kind { Null, Bool, Number, String, Array, Object };

    Kind kind = Kind::Null;
    bool boolean = false;
    std::string text; //!< string contents, or the raw number token
    std::vector<JsonValue> elements;
    std::vector<std::pair<std::string, JsonValue>> members;

    /** Member lookup; nullptr when absent or not an object. */
    const JsonValue *find(const std::string &key) const;

    /** Member lookup; throws std::runtime_error when absent. */
    const JsonValue &at(const std::string &key) const;

    /** Exact integer value; throws on non-numbers or overflow. */
    std::uint64_t asUint64() const;

    /** Round-trip-exact double; throws on non-numbers. */
    double asDouble() const;

    /** String contents; throws on non-strings. */
    const std::string &asString() const;
};

/**
 * Parse one JSON document (objects, arrays, strings, numbers, bools,
 * null; the subset Json emits).
 * @throws std::runtime_error with position info on malformed input.
 */
JsonValue parseJson(const std::string &text);

/**
 * Rebuild a writable Json from a parsed JsonValue, so a document can be
 * read, augmented, and re-emitted (the fabric coordinator embeds worker
 * status files into its merged snapshot this way). Number tokens
 * without '.', 'e' or '-' re-emit as exact integers; everything else
 * round-trips through the shortest-round-trip double path, so
 * re-emitting a document this module wrote reproduces its bytes.
 */
Json toJson(const JsonValue &value);

/** One simulation point of a bench result file. */
struct BenchPoint {
    std::string workload;
    /** Config overrides relative to the preset, "section.key" form. */
    std::vector<std::pair<std::string, std::string>> config;
    std::uint64_t runtimeCycles = 0;
    std::vector<std::pair<std::string, double>> energy;
    std::vector<std::pair<std::string, double>> counters;

    /** Windowed time-series sampling (ISSUE 4). Emitted as an optional
     * per-point "timeseries" object when windowCycles > 0; absent from
     * default runs so seed output stays byte-identical. */
    std::uint64_t timeseriesWindow = 0;
    std::vector<std::pair<std::string, std::vector<double>>> timeseries;

    // Fault-isolation fields (ISSUE 3). For "ok" points the error is
    // empty and the measured fields above are real; for "failed" /
    // "timed_out" points the measurements are zero.
    std::string status = "ok"; //!< "ok" | "failed" | "timed_out"
    std::string error;         //!< what() of the captured exception
    unsigned attempts = 1;     //!< 1 + retries consumed
    std::uint64_t seedUsed = 0; //!< seed of the final attempt
    std::uint64_t digest = 0;   //!< stable point digest (checkpoint key)
};

/** Build a "tempo-bench-1" document. */
Json benchJson(const std::string &bench, std::uint64_t refs,
               std::uint64_t seed, const std::vector<BenchPoint> &points);

/**
 * Write a "tempo-bench-1" file to @p path.
 * @throws std::runtime_error when the file cannot be written.
 */
void writeBenchJson(const std::string &path, const std::string &bench,
                    std::uint64_t refs, std::uint64_t seed,
                    const std::vector<BenchPoint> &points);

} // namespace tempo::stats

#endif // TEMPO_STATS_JSON_HH
