#include "stats/stats.hh"

#include <cassert>
#include <iomanip>

#include "common/log.hh"

namespace tempo::stats {

void
Histogram::addTo(Report &report, const std::string &prefix) const
{
    for (std::size_t i = 0; i < buckets_.size(); ++i)
        report.add(prefix + "bucket_" + std::to_string(i), buckets_[i]);
    report.add(prefix + "overflow", overflow_);
    report.add(prefix + "count", count_);
    report.add(prefix + "bucket_width", bucketWidth_);
}

void
Report::add(const std::string &name, double value)
{
    entries_.emplace_back(name, value);
}

void
Report::add(const std::string &name, std::uint64_t value)
{
    // A double holds integers exactly only up to 2^53 (see stats.hh).
    assert(value <= (std::uint64_t{1} << 53)
           && "counter exceeds double's exact-integer range");
    entries_.emplace_back(name, static_cast<double>(value));
}

void
Report::merge(const std::string &prefix, const Report &other)
{
    for (const auto &[name, value] : other.entries_)
        entries_.emplace_back(prefix + name, value);
}

double
Report::get(const std::string &name) const
{
    for (const auto &[entry_name, value] : entries_) {
        if (entry_name == name)
            return value;
    }
    TEMPO_PANIC("no stat named '", name, "'");
}

bool
Report::has(const std::string &name) const
{
    for (const auto &[entry_name, value] : entries_) {
        (void)value;
        if (entry_name == name)
            return true;
    }
    return false;
}

void
Report::printText(std::ostream &os) const
{
    for (const auto &[name, value] : entries_) {
        os << std::left << std::setw(44) << name << " = "
           << std::setprecision(6) << value << '\n';
    }
}

void
Report::printCsv(std::ostream &os) const
{
    bool first = true;
    for (const auto &[name, value] : entries_) {
        (void)value;
        os << (first ? "" : ",") << name;
        first = false;
    }
    os << '\n';
    first = true;
    for (const auto &[name, value] : entries_) {
        (void)name;
        os << (first ? "" : ",") << std::setprecision(10) << value;
        first = false;
    }
    os << '\n';
}

} // namespace tempo::stats
