#include "stats/json.hh"

#include <charconv>
#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "common/log.hh"

namespace tempo::stats {

Json
Json::object()
{
    Json j;
    j.kind_ = Kind::Object;
    return j;
}

Json
Json::array()
{
    Json j;
    j.kind_ = Kind::Array;
    return j;
}

Json &
Json::set(const std::string &key, Json value)
{
    TEMPO_ASSERT(kind_ == Kind::Object, "Json::set on non-object");
    members_.emplace_back(key, std::move(value));
    return *this;
}

Json &
Json::push(Json value)
{
    TEMPO_ASSERT(kind_ == Kind::Array, "Json::push on non-array");
    elements_.push_back(std::move(value));
    return *this;
}

std::string
jsonEscape(const std::string &raw)
{
    std::string out;
    out.reserve(raw.size());
    for (const char c : raw) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

namespace {

/** Shortest round-trip double representation (JSON has no NaN/Inf;
 * those become 0 — they never appear in valid results). */
std::string
formatDouble(double v)
{
    if (!std::isfinite(v))
        v = 0.0;
    char buf[32];
    const auto [ptr, ec] =
        std::to_chars(buf, buf + sizeof(buf), v);
    TEMPO_ASSERT(ec == std::errc(), "double format failed");
    std::string out(buf, ptr);
    // Bare integers ("42") are valid JSON numbers but ambiguous about
    // intent; keep them as emitted — parsers do not care.
    return out;
}

std::string
indentOf(int depth)
{
    return std::string(static_cast<std::size_t>(depth) * 2, ' ');
}

} // namespace

void
Json::writeIndented(std::ostream &os, int depth) const
{
    switch (kind_) {
      case Kind::Null:
        os << "null";
        break;
      case Kind::Bool:
        os << (bool_ ? "true" : "false");
        break;
      case Kind::Uint:
        os << uint_;
        break;
      case Kind::Double:
        os << formatDouble(double_);
        break;
      case Kind::String:
        os << '"' << jsonEscape(string_) << '"';
        break;
      case Kind::Array:
        if (elements_.empty()) {
            os << "[]";
            break;
        }
        os << "[\n";
        for (std::size_t i = 0; i < elements_.size(); ++i) {
            os << indentOf(depth + 1);
            elements_[i].writeIndented(os, depth + 1);
            os << (i + 1 < elements_.size() ? ",\n" : "\n");
        }
        os << indentOf(depth) << ']';
        break;
      case Kind::Object:
        if (members_.empty()) {
            os << "{}";
            break;
        }
        os << "{\n";
        for (std::size_t i = 0; i < members_.size(); ++i) {
            os << indentOf(depth + 1) << '"'
               << jsonEscape(members_[i].first) << "\": ";
            members_[i].second.writeIndented(os, depth + 1);
            os << (i + 1 < members_.size() ? ",\n" : "\n");
        }
        os << indentOf(depth) << '}';
        break;
    }
}

void
Json::write(std::ostream &os) const
{
    writeIndented(os, 0);
    os << '\n';
}

std::string
Json::dump() const
{
    std::ostringstream os;
    write(os);
    return os.str();
}

Json
benchJson(const std::string &bench, std::uint64_t refs,
          std::uint64_t seed, const std::vector<BenchPoint> &points)
{
    Json doc = Json::object();
    doc.set("schema", "tempo-bench-1");
    doc.set("bench", bench);
    doc.set("refs", refs);
    doc.set("seed", seed);

    Json point_array = Json::array();
    for (const BenchPoint &point : points) {
        Json p = Json::object();
        p.set("workload", point.workload);
        Json config = Json::object();
        for (const auto &[key, value] : point.config)
            config.set(key, value);
        p.set("config", std::move(config));
        p.set("runtime_cycles", point.runtimeCycles);
        Json energy = Json::object();
        for (const auto &[key, value] : point.energy)
            energy.set(key, value);
        p.set("energy", std::move(energy));
        Json counters = Json::object();
        for (const auto &[key, value] : point.counters)
            counters.set(key, value);
        p.set("counters", std::move(counters));
        point_array.push(std::move(p));
    }
    doc.set("points", std::move(point_array));
    return doc;
}

void
writeBenchJson(const std::string &path, const std::string &bench,
               std::uint64_t refs, std::uint64_t seed,
               const std::vector<BenchPoint> &points)
{
    std::ofstream os(path);
    if (!os)
        throw std::runtime_error("cannot write " + path);
    benchJson(bench, refs, seed, points).write(os);
    if (!os)
        throw std::runtime_error("short write to " + path);
}

} // namespace tempo::stats
