#include "stats/json.hh"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "common/log.hh"

namespace tempo::stats {

Json
Json::object()
{
    Json j;
    j.kind_ = Kind::Object;
    return j;
}

Json
Json::array()
{
    Json j;
    j.kind_ = Kind::Array;
    return j;
}

Json &
Json::set(const std::string &key, Json value)
{
    TEMPO_ASSERT(kind_ == Kind::Object, "Json::set on non-object");
    members_.emplace_back(key, std::move(value));
    return *this;
}

Json &
Json::push(Json value)
{
    TEMPO_ASSERT(kind_ == Kind::Array, "Json::push on non-array");
    elements_.push_back(std::move(value));
    return *this;
}

std::string
jsonEscape(const std::string &raw)
{
    std::string out;
    out.reserve(raw.size());
    for (const char c : raw) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

namespace {

/** Shortest round-trip double representation (JSON has no NaN/Inf;
 * those become 0 — they never appear in valid results). */
std::string
formatDouble(double v)
{
    if (!std::isfinite(v))
        v = 0.0;
    char buf[32];
    const auto [ptr, ec] =
        std::to_chars(buf, buf + sizeof(buf), v);
    TEMPO_ASSERT(ec == std::errc(), "double format failed");
    std::string out(buf, ptr);
    // Bare integers ("42") are valid JSON numbers but ambiguous about
    // intent; keep them as emitted — parsers do not care.
    return out;
}

std::string
indentOf(int depth)
{
    return std::string(static_cast<std::size_t>(depth) * 2, ' ');
}

} // namespace

void
Json::writeIndented(std::ostream &os, int depth) const
{
    switch (kind_) {
      case Kind::Null:
        os << "null";
        break;
      case Kind::Bool:
        os << (bool_ ? "true" : "false");
        break;
      case Kind::Uint:
        os << uint_;
        break;
      case Kind::Double:
        os << formatDouble(double_);
        break;
      case Kind::String:
        os << '"' << jsonEscape(string_) << '"';
        break;
      case Kind::Array:
        if (elements_.empty()) {
            os << "[]";
            break;
        }
        os << "[\n";
        for (std::size_t i = 0; i < elements_.size(); ++i) {
            os << indentOf(depth + 1);
            elements_[i].writeIndented(os, depth + 1);
            os << (i + 1 < elements_.size() ? ",\n" : "\n");
        }
        os << indentOf(depth) << ']';
        break;
      case Kind::Object:
        if (members_.empty()) {
            os << "{}";
            break;
        }
        os << "{\n";
        for (std::size_t i = 0; i < members_.size(); ++i) {
            os << indentOf(depth + 1) << '"'
               << jsonEscape(members_[i].first) << "\": ";
            members_[i].second.writeIndented(os, depth + 1);
            os << (i + 1 < members_.size() ? ",\n" : "\n");
        }
        os << indentOf(depth) << '}';
        break;
    }
}

void
Json::write(std::ostream &os) const
{
    writeIndented(os, 0);
    os << '\n';
}

std::string
Json::dump() const
{
    std::ostringstream os;
    write(os);
    return os.str();
}

void
Json::writeCompact(std::ostream &os) const
{
    switch (kind_) {
      case Kind::Null:
        os << "null";
        break;
      case Kind::Bool:
        os << (bool_ ? "true" : "false");
        break;
      case Kind::Uint:
        os << uint_;
        break;
      case Kind::Double:
        os << formatDouble(double_);
        break;
      case Kind::String:
        os << '"' << jsonEscape(string_) << '"';
        break;
      case Kind::Array:
        os << '[';
        for (std::size_t i = 0; i < elements_.size(); ++i) {
            if (i)
                os << ',';
            elements_[i].writeCompact(os);
        }
        os << ']';
        break;
      case Kind::Object:
        os << '{';
        for (std::size_t i = 0; i < members_.size(); ++i) {
            if (i)
                os << ',';
            os << '"' << jsonEscape(members_[i].first) << "\":";
            members_[i].second.writeCompact(os);
        }
        os << '}';
        break;
    }
}

std::string
Json::dumpCompact() const
{
    std::ostringstream os;
    writeCompact(os);
    return os.str();
}

namespace {

/** Recursive-descent parser for the subset Json emits. */
struct Parser {
    const std::string &text;
    std::size_t pos = 0;

    [[noreturn]] void
    fail(const std::string &what) const
    {
        throw std::runtime_error("JSON parse error at offset " +
                                 std::to_string(pos) + ": " + what);
    }

    void
    skipWs()
    {
        while (pos < text.size() &&
               (text[pos] == ' ' || text[pos] == '\t' ||
                text[pos] == '\n' || text[pos] == '\r'))
            ++pos;
    }

    char
    peek()
    {
        if (pos >= text.size())
            fail("unexpected end of input");
        return text[pos];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "'");
        ++pos;
    }

    bool
    consumeWord(const char *word)
    {
        const std::size_t n = std::char_traits<char>::length(word);
        if (text.compare(pos, n, word) != 0)
            return false;
        pos += n;
        return true;
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        while (true) {
            if (pos >= text.size())
                fail("unterminated string");
            const char c = text[pos++];
            if (c == '"')
                return out;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos >= text.size())
                fail("unterminated escape");
            const char e = text[pos++];
            switch (e) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'u': {
                if (pos + 4 > text.size())
                    fail("truncated \\u escape");
                unsigned code = 0;
                const auto [p, ec] = std::from_chars(
                    text.data() + pos, text.data() + pos + 4, code, 16);
                if (ec != std::errc() || p != text.data() + pos + 4)
                    fail("bad \\u escape");
                pos += 4;
                // The writer only escapes control characters < 0x20;
                // larger code points pass through raw, so a one-byte
                // decode covers everything we emit.
                if (code > 0xff)
                    fail("unsupported \\u escape beyond U+00FF");
                out += static_cast<char>(code);
                break;
              }
              default:
                fail("unknown escape");
            }
        }
    }

    JsonValue
    parseValue()
    {
        skipWs();
        JsonValue v;
        const char c = peek();
        if (c == '{') {
            ++pos;
            v.kind = JsonValue::Kind::Object;
            skipWs();
            if (peek() == '}') {
                ++pos;
                return v;
            }
            while (true) {
                skipWs();
                std::string key = parseString();
                skipWs();
                expect(':');
                v.members.emplace_back(std::move(key), parseValue());
                skipWs();
                if (peek() == ',') {
                    ++pos;
                    continue;
                }
                expect('}');
                return v;
            }
        }
        if (c == '[') {
            ++pos;
            v.kind = JsonValue::Kind::Array;
            skipWs();
            if (peek() == ']') {
                ++pos;
                return v;
            }
            while (true) {
                v.elements.push_back(parseValue());
                skipWs();
                if (peek() == ',') {
                    ++pos;
                    continue;
                }
                expect(']');
                return v;
            }
        }
        if (c == '"') {
            v.kind = JsonValue::Kind::String;
            v.text = parseString();
            return v;
        }
        if (consumeWord("true")) {
            v.kind = JsonValue::Kind::Bool;
            v.boolean = true;
            return v;
        }
        if (consumeWord("false")) {
            v.kind = JsonValue::Kind::Bool;
            v.boolean = false;
            return v;
        }
        if (consumeWord("null"))
            return v;
        if (c == '-' || (c >= '0' && c <= '9')) {
            const std::size_t start = pos;
            if (c == '-')
                ++pos;
            auto digits = [&] {
                const std::size_t first = pos;
                while (pos < text.size() && text[pos] >= '0' &&
                       text[pos] <= '9')
                    ++pos;
                if (pos == first)
                    fail("expected digits");
            };
            digits();
            if (pos < text.size() && text[pos] == '.') {
                ++pos;
                digits();
            }
            if (pos < text.size() &&
                (text[pos] == 'e' || text[pos] == 'E')) {
                ++pos;
                if (pos < text.size() &&
                    (text[pos] == '+' || text[pos] == '-'))
                    ++pos;
                digits();
            }
            v.kind = JsonValue::Kind::Number;
            v.text = text.substr(start, pos - start);
            return v;
        }
        fail("unexpected character");
    }
};

} // namespace

const JsonValue *
JsonValue::find(const std::string &key) const
{
    if (kind != Kind::Object)
        return nullptr;
    for (const auto &[k, v] : members)
        if (k == key)
            return &v;
    return nullptr;
}

const JsonValue &
JsonValue::at(const std::string &key) const
{
    const JsonValue *v = find(key);
    if (!v)
        throw std::runtime_error("JSON: missing key \"" + key + "\"");
    return *v;
}

std::uint64_t
JsonValue::asUint64() const
{
    if (kind != Kind::Number)
        throw std::runtime_error("JSON: not a number");
    std::uint64_t out = 0;
    const auto [p, ec] =
        std::from_chars(text.data(), text.data() + text.size(), out);
    if (ec != std::errc() || p != text.data() + text.size())
        throw std::runtime_error("JSON: not a uint64: " + text);
    return out;
}

double
JsonValue::asDouble() const
{
    if (kind != Kind::Number)
        throw std::runtime_error("JSON: not a number");
    double out = 0;
    const auto [p, ec] =
        std::from_chars(text.data(), text.data() + text.size(), out);
    if (ec != std::errc() || p != text.data() + text.size())
        throw std::runtime_error("JSON: not a double: " + text);
    return out;
}

const std::string &
JsonValue::asString() const
{
    if (kind != Kind::String)
        throw std::runtime_error("JSON: not a string");
    return text;
}

JsonValue
parseJson(const std::string &text)
{
    Parser p{text};
    JsonValue v = p.parseValue();
    p.skipWs();
    if (p.pos != text.size())
        p.fail("trailing garbage");
    return v;
}

Json
toJson(const JsonValue &value)
{
    switch (value.kind) {
      case JsonValue::Kind::Null:
        return Json();
      case JsonValue::Kind::Bool:
        return Json(value.boolean);
      case JsonValue::Kind::Number:
        // Plain digit runs re-emit as exact integers; anything with a
        // sign, fraction, or exponent goes through the double path
        // (shortest round-trip, so re-emission is stable).
        if (value.text.size() <= 19 &&
            value.text.find_first_not_of("0123456789") ==
                std::string::npos)
            return Json(value.asUint64());
        return Json(value.asDouble());
      case JsonValue::Kind::String:
        return Json(value.text);
      case JsonValue::Kind::Array: {
        Json array = Json::array();
        for (const JsonValue &element : value.elements)
            array.push(toJson(element));
        return array;
      }
      case JsonValue::Kind::Object: {
        Json object = Json::object();
        for (const auto &[key, member] : value.members)
            object.set(key, toJson(member));
        return object;
      }
    }
    return Json();
}

namespace {

std::string
hexDigest(std::uint64_t digest)
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(digest));
    return buf;
}

Json
configObject(const BenchPoint &point)
{
    Json config = Json::object();
    for (const auto &[key, value] : point.config)
        config.set(key, value);
    return config;
}

} // namespace

Json
benchJson(const std::string &bench, std::uint64_t refs,
          std::uint64_t seed, const std::vector<BenchPoint> &points)
{
    Json doc = Json::object();
    doc.set("schema", "tempo-bench-1");
    doc.set("bench", bench);
    doc.set("refs", refs);
    doc.set("seed", seed);

    // Experiment counters: a pure function of the points, so resumed
    // and uninterrupted runs emit identical bytes.
    std::uint64_t num_ok = 0, num_failed = 0, num_timed_out = 0;
    std::uint64_t num_retries = 0;
    // "shards" summarizes the sharded engine across points: the
    // maximum per-point "shards" config value (the domain count, which
    // is worker-count-invariant), or 0 when every point ran on the
    // legacy inline engine. Always emitted, like the other keys.
    std::uint64_t num_shards = 0;
    for (const BenchPoint &point : points) {
        if (point.status == "ok")
            ++num_ok;
        else if (point.status == "timed_out")
            ++num_timed_out;
        else
            ++num_failed;
        num_retries += point.attempts > 0 ? point.attempts - 1 : 0;
        for (const auto &[key, value] : point.config) {
            if (key == "shards")
                num_shards = std::max(
                    num_shards,
                    std::uint64_t(std::strtoull(value.c_str(), nullptr,
                                                10)));
        }
    }
    Json experiment = Json::object();
    experiment.set("points", std::uint64_t(points.size()));
    experiment.set("ok", num_ok);
    experiment.set("failed", num_failed);
    experiment.set("timed_out", num_timed_out);
    experiment.set("retries", num_retries);
    experiment.set("shards", num_shards);
    doc.set("experiment", std::move(experiment));

    Json point_array = Json::array();
    for (const BenchPoint &point : points) {
        Json p = Json::object();
        p.set("workload", point.workload);
        p.set("config", configObject(point));
        p.set("status", point.status);
        p.set("runtime_cycles", point.runtimeCycles);
        Json energy = Json::object();
        for (const auto &[key, value] : point.energy)
            energy.set(key, value);
        p.set("energy", std::move(energy));
        Json counters = Json::object();
        for (const auto &[key, value] : point.counters)
            counters.set(key, value);
        p.set("counters", std::move(counters));
        if (point.timeseriesWindow > 0) {
            Json timeseries = Json::object();
            timeseries.set("window_cycles", point.timeseriesWindow);
            for (const auto &[column, values] : point.timeseries) {
                Json samples = Json::array();
                for (double v : values)
                    samples.push(v);
                timeseries.set(column, std::move(samples));
            }
            p.set("timeseries", std::move(timeseries));
        }
        point_array.push(std::move(p));
    }
    doc.set("points", std::move(point_array));

    Json failures = Json::array();
    for (std::size_t i = 0; i < points.size(); ++i) {
        const BenchPoint &point = points[i];
        if (point.status == "ok")
            continue;
        Json f = Json::object();
        f.set("point", std::uint64_t(i));
        f.set("workload", point.workload);
        f.set("config", configObject(point));
        f.set("status", point.status);
        f.set("error", point.error);
        f.set("attempts", std::uint64_t(point.attempts));
        f.set("seed", point.seedUsed);
        f.set("digest", hexDigest(point.digest));
        failures.push(std::move(f));
    }
    doc.set("failures", std::move(failures));
    return doc;
}

void
writeBenchJson(const std::string &path, const std::string &bench,
               std::uint64_t refs, std::uint64_t seed,
               const std::vector<BenchPoint> &points)
{
    std::ofstream os(path);
    if (!os)
        throw std::runtime_error("cannot write " + path);
    benchJson(bench, refs, seed, points).write(os);
    if (!os)
        throw std::runtime_error("short write to " + path);
}

} // namespace tempo::stats
