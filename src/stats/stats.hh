/**
 * @file
 * Lightweight statistics: named scalar counters, ratios, and histograms,
 * grouped per component and dumpable as text or CSV.
 */

#ifndef TEMPO_STATS_STATS_HH
#define TEMPO_STATS_STATS_HH

#include <cmath>
#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace tempo::stats {

class Report;

/** A named 64-bit event counter. */
class Scalar
{
  public:
    Scalar() = default;

    void inc(std::uint64_t n = 1) { value_ += n; }
    void set(std::uint64_t v) { value_ = v; }
    void reset() { value_ = 0; }
    std::uint64_t value() const { return value_; }

    Scalar &operator++() { ++value_; return *this; }
    Scalar &operator+=(std::uint64_t n) { value_ += n; return *this; }

  private:
    std::uint64_t value_ = 0;
};

/** Running mean/min/max of a sampled quantity (e.g. latency). */
class Distribution
{
  public:
    void
    sample(double v)
    {
        // NaN would poison sum/min/max for the rest of the run; a
        // windowed sampler can legitimately feed a NaN-producing ratio
        // from an empty window, so ignore it rather than assert.
        if (std::isnan(v))
            return;
        sum_ += v;
        ++count_;
        if (count_ == 1 || v < min_)
            min_ = v;
        if (count_ == 1 || v > max_)
            max_ = v;
    }

    /**
     * Fold another distribution into this one. An empty side contributes
     * nothing — in particular its zero-initialised min/max never leak
     * into the merged extrema.
     */
    void
    merge(const Distribution &other)
    {
        if (other.count_ == 0)
            return;
        if (count_ == 0) {
            *this = other;
            return;
        }
        sum_ += other.sum_;
        count_ += other.count_;
        if (other.min_ < min_)
            min_ = other.min_;
        if (other.max_ > max_)
            max_ = other.max_;
    }

    void
    reset()
    {
        sum_ = 0;
        count_ = 0;
        min_ = 0;
        max_ = 0;
    }

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    double min() const { return min_; }
    double max() const { return max_; }

  private:
    double sum_ = 0;
    std::uint64_t count_ = 0;
    double min_ = 0;
    double max_ = 0;
};

/** Fixed-bucket histogram over [0, bucketWidth * numBuckets). */
class Histogram
{
  public:
    Histogram(double bucket_width = 1.0, std::size_t num_buckets = 16)
        : bucketWidth_(bucket_width), buckets_(num_buckets, 0)
    {
    }

    void
    sample(double v)
    {
        // Range-check in double BEFORE converting: casting a negative
        // or out-of-range double to an unsigned integer is undefined
        // behaviour. Negative samples clamp to bucket 0; oversized
        // ones land in a dedicated overflow bucket so out-of-range
        // mass stays visible instead of inflating the last bin.
        std::size_t idx = 0;
        if (v > 0.0) {
            const double scaled = v / bucketWidth_;
            if (scaled >= static_cast<double>(buckets_.size())) {
                ++overflow_;
                ++count_;
                return;
            }
            idx = static_cast<std::size_t>(scaled);
        }
        ++buckets_[idx];
        ++count_;
    }

    std::uint64_t count() const { return count_; }
    std::uint64_t bucket(std::size_t i) const { return buckets_.at(i); }
    std::uint64_t overflow() const { return overflow_; }
    std::size_t numBuckets() const { return buckets_.size(); }
    double bucketWidth() const { return bucketWidth_; }

    /**
     * Append "<prefix>bucket_<i>" per bin plus "<prefix>overflow",
     * "<prefix>count" and "<prefix>bucket_width" to a report, so
     * histograms show up in text/CSV/JSON dumps alongside scalars.
     */
    void addTo(Report &report, const std::string &prefix) const;

    void
    reset()
    {
        for (auto &b : buckets_)
            b = 0;
        overflow_ = 0;
        count_ = 0;
    }

    /**
     * Fold another histogram into this one. Requires identical
     * geometry (bucket width and count) — the only merges in the tree
     * are between sessions built from the same configuration.
     */
    void
    merge(const Histogram &other)
    {
        if (other.count_ == 0)
            return;
        if (bucketWidth_ == other.bucketWidth_
            && buckets_.size() == other.buckets_.size()) {
            for (std::size_t i = 0; i < buckets_.size(); ++i)
                buckets_[i] += other.buckets_[i];
            overflow_ += other.overflow_;
            count_ += other.count_;
            return;
        }
        // Geometry mismatch: re-bin by bucket midpoint rather than
        // silently mixing incompatible bins.
        for (std::size_t i = 0; i < other.buckets_.size(); ++i) {
            const double mid =
                (static_cast<double>(i) + 0.5) * other.bucketWidth_;
            for (std::uint64_t n = 0; n < other.buckets_[i]; ++n)
                sample(mid);
        }
        overflow_ += other.overflow_;
        count_ += other.overflow_;
    }

  private:
    double bucketWidth_;
    std::vector<std::uint64_t> buckets_;
    std::uint64_t overflow_ = 0;
    std::uint64_t count_ = 0;
};

/** Safe ratio helper: 0 when the denominator is 0. */
inline double
ratio(std::uint64_t num, std::uint64_t den)
{
    return den ? static_cast<double>(num) / static_cast<double>(den) : 0.0;
}

inline double
ratio(double num, double den)
{
    return den != 0.0 ? num / den : 0.0;
}

/**
 * An ordered collection of named values for reporting. Components expose a
 * report() method that fills one of these; the harness prints them.
 */
class Report
{
  public:
    void add(const std::string &name, double value);
    /**
     * Stored as double, so integers above 2^53 lose precision (IEEE 754
     * doubles have a 53-bit significand). Simulator counters stay far
     * below that — ~9e15, i.e. millions of years of simulated cycles —
     * and a debug-build assert in stats.cc enforces it.
     */
    void add(const std::string &name, std::uint64_t value);

    /** Merge another report under a prefix ("dram." etc.). */
    void merge(const std::string &prefix, const Report &other);

    const std::vector<std::pair<std::string, double>> &
    entries() const
    {
        return entries_;
    }

    /** Value by exact name; panics if absent. */
    double get(const std::string &name) const;

    /** True when a value with the exact name exists. */
    bool has(const std::string &name) const;

    /** Pretty text dump, one "name = value" per line. */
    void printText(std::ostream &os) const;

    /** CSV dump: header row of names, then one row of values. */
    void printCsv(std::ostream &os) const;

  private:
    std::vector<std::pair<std::string, double>> entries_;
};

} // namespace tempo::stats

#endif // TEMPO_STATS_STATS_HH
