/**
 * @file
 * mcf (SPEC CPU): network-simplex minimum-cost flow. Memory signature:
 * pointer chasing over a large node/arc graph with a skewed hot set
 * (basis-tree nodes are revisited, the arc array is scanned in bursts),
 * low memory-level parallelism (the chase is serial).
 */

#include "workloads/generators.hh"

namespace tempo {
namespace {

class McfWorkload : public RegionWorkload
{
  public:
    explicit McfWorkload(std::uint64_t seed)
        : RegionWorkload("mcf", 0x100000000000ull, 24ull << 30, seed)
    {
    }

    unsigned mlpHint() const override { return 2; }

    MemRef
    next() override
    {
        MemRef ref;
        if (scanRemaining_ > 0) {
            // Arc-array scan burst: sequential 64B strides.
            --scanRemaining_;
            scanCursor_ += kLineBytes;
            if (scanCursor_ >= footprint_)
                scanCursor_ = 0;
            ref.vaddr = vaBase_ + scanCursor_;
            ref.isWrite = rng_.chance(0.1);
            ref.stream = 1;
            return ref;
        }
        if (rng_.chance(0.15)) {
            // Start a new arc scan burst somewhere in the arc array.
            scanRemaining_ = 8 + rng_.below(24);
            scanCursor_ = alignDown(rng_.below(footprint_), kLineBytes);
            ref.vaddr = vaBase_ + scanCursor_;
            ref.stream = 1;
            return ref;
        }
        // Pointer chase through nodes: skewed reuse — ~30% of chases
        // land in the hot 1% (basis tree), the rest roam the graph.
        const Addr node =
            rng_.skewedBelow(footprint_ / kNodeBytes,
                             footprint_ / kNodeBytes / 100, 0.30);
        ref.vaddr = vaBase_ + node * kNodeBytes + rng_.below(kNodeBytes);
        ref.isWrite = rng_.chance(0.2);
        ref.stream = 2;
        return ref;
    }

  private:
    static constexpr Addr kNodeBytes = 128;
    unsigned scanRemaining_ = 0;
    Addr scanCursor_ = 0;
};

} // namespace

std::unique_ptr<Workload>
makeMcf(std::uint64_t seed)
{
    return std::make_unique<McfWorkload>(seed);
}

} // namespace tempo
