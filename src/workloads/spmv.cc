/**
 * @file
 * spmv: sparse matrix-vector multiply (CSR). Memory signature: the
 * classic A[B[i]] indirection — sequential sweeps over the col_idx and
 * values arrays, plus an indirect gather x[col_idx[i]] scattered over
 * the dense vector. The indirect stream is what IMP (paper Sec. 4.2)
 * feeds on.
 */

#include "workloads/generators.hh"

namespace tempo {
namespace {

class SpmvWorkload : public RegionWorkload
{
  public:
    explicit SpmvWorkload(std::uint64_t seed)
        : RegionWorkload("spmv", 0x130000000000ull, 24ull << 30, seed),
          gather_([this] {
              // x[col]: columns of a sparse matrix scatter uniformly
              // over the dense vector region.
              return vaBase_ + vectorOff_
                  + rng_.below(footprint_ - vectorOff_);
          })
    {
    }

    unsigned mlpHint() const override { return 6; }

    MemRef
    next() override
    {
        MemRef ref;
        switch (phase_) {
          case 0: { // col_idx[i]: sequential int array
            ref.vaddr = vaBase_ + idxCursor_;
            idxCursor_ = (idxCursor_ + 4) % matrixOff_;
            ref.stream = 1;
            phase_ = 1;
            break;
          }
          case 1: { // values[i]: sequential double array
            ref.vaddr = vaBase_ + matrixOff_ + valCursor_;
            valCursor_ = (valCursor_ + 8) % (vectorOff_ - matrixOff_);
            ref.stream = 2;
            phase_ = 2;
            break;
          }
          default: { // x[col_idx[i]]: the indirect gather
            const auto [current, future] = gather_.next();
            ref.vaddr = current;
            ref.stream = 3;
            ref.indirect = true;
            ref.indirectFuture = future;
            // Occasionally the row ends: y[row] store.
            if (rng_.chance(0.2))
                ref.isWrite = false;
            phase_ = 0;
            break;
          }
        }
        return ref;
    }

  private:
    /** Layout: [0, matrixOff): col_idx; [matrixOff, vectorOff): values;
     * [vectorOff, footprint): the dense x vector. */
    const Addr matrixOff_ = 6ull << 30;
    const Addr vectorOff_ = 12ull << 30;
    int phase_ = 0;
    Addr idxCursor_ = 0;
    Addr valCursor_ = 0;
    IndirectStream gather_;
};

} // namespace

std::unique_ptr<Workload>
makeSpmv(std::uint64_t seed)
{
    return std::make_unique<SpmvWorkload>(seed);
}

} // namespace tempo
