/**
 * @file
 * sgms: symmetric Gauss-Seidel smoother — forward and backward
 * triangular solves. Memory signature: a sweeping sequential row cursor
 * with, per row, a handful of indirect reads of previously-computed
 * unknowns at sparse off-diagonal positions (moderate locality: the
 * off-diagonals cluster near the diagonal but have a long tail).
 */

#include "workloads/generators.hh"

namespace tempo {
namespace {

class SgmsWorkload : public RegionWorkload
{
  public:
    explicit SgmsWorkload(std::uint64_t seed)
        : RegionWorkload("sgms", 0x140000000000ull, 16ull << 30, seed),
          offdiag_([this] { return offDiagTarget(); })
    {
    }

    unsigned mlpHint() const override { return 3; }

    MemRef
    next() override
    {
        MemRef ref;
        if (rowReads_ > 0) {
            --rowReads_;
            const auto [current, future] = offdiag_.next();
            ref.vaddr = current;
            ref.stream = 2;
            ref.indirect = true;
            ref.indirectFuture = future;
            return ref;
        }

        // Advance the sweep cursor (forward, then backward).
        if (forward_) {
            row_ += kRowBytes;
            if (row_ + kRowBytes >= footprint_ / 2)
                forward_ = false;
        } else {
            if (row_ < kRowBytes) {
                forward_ = true;
                row_ = 0;
            } else {
                row_ -= kRowBytes;
            }
        }
        ref.vaddr = vaBase_ + row_;
        ref.isWrite = true; // x[row] update
        ref.stream = 1;
        rowReads_ = 2 + rng_.below(4);
        return ref;
    }

  private:
    Addr
    offDiagTarget()
    {
        // 60% of off-diagonals are within a 64MB band of the cursor;
        // the rest scatter over the whole unknown vector.
        if (rng_.chance(0.6)) {
            const Addr band = 64ull << 20;
            const Addr lo = row_ > band ? row_ - band : 0;
            return vaBase_ + lo + rng_.below(band);
        }
        return vaBase_ + (footprint_ / 2)
            + rng_.below(footprint_ / 2);
    }

    static constexpr Addr kRowBytes = 8;
    bool forward_ = true;
    Addr row_ = 0;
    unsigned rowReads_ = 0;
    IndirectStream offdiag_;
};

} // namespace

std::unique_ptr<Workload>
makeSgms(std::uint64_t seed)
{
    return std::make_unique<SgmsWorkload>(seed);
}

} // namespace tempo
