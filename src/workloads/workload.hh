/**
 * @file
 * Workload trace generators.
 *
 * The paper collects Pin traces of real 3-4TB applications; we substitute
 * deterministic generators that reproduce each application's *memory
 * access signature* — touched footprint, pointer-chasing vs. streaming
 * mix, reuse skew, and indirection structure. TEMPO's behaviour depends
 * only on these properties (TLB miss rate, leaf-PTE reuse, replay
 * locality), so the signatures are what must be faithful, not the
 * computation.
 *
 * Each generator emits an endless stream of MemRef records. Indirect
 * (A[B[i]]) references also carry the address the stream will touch
 * `impDistance` iterations ahead, feeding the IMP prefetcher model.
 */

#ifndef TEMPO_WORKLOADS_WORKLOAD_HH
#define TEMPO_WORKLOADS_WORKLOAD_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.hh"
#include "common/types.hh"

namespace tempo {

/** One trace record: a memory instruction's data reference. */
struct MemRef {
    Addr vaddr = 0;
    bool isWrite = false;
    /** Stream id for the IMP model (which access stream this belongs
     * to); 0 = no stream. */
    std::uint32_t stream = 0;
    /** True when the reference follows an indirect A[B[i]] pattern. */
    bool indirect = false;
    /** For indirect refs: the vaddr this stream touches `impDistance`
     * iterations ahead (kInvalidAddr if unknown). */
    Addr indirectFuture = kInvalidAddr;
};

/** Abstract trace generator. */
class Workload
{
  public:
    virtual ~Workload() = default;

    /** Short name, matching the paper's workload labels. */
    virtual const std::string &name() const = 0;

    /** Produce the next trace record. */
    virtual MemRef next() = 0;

    /** Nominal touched footprint in bytes (sizing documentation). */
    virtual Addr footprintBytes() const = 0;

    /** Suggested memory-level-parallelism window for this workload. */
    virtual unsigned mlpHint() const { return 8; }
};

/** Lookahead distance generators use for MemRef::indirectFuture. */
inline constexpr unsigned kImpDistance = 16;

/**
 * Helper base class: a virtual-address region plus a ring buffer that
 * turns any deterministic index stream into (current, +distance ahead)
 * pairs for IMP.
 */
class RegionWorkload : public Workload
{
  public:
    RegionWorkload(std::string name, Addr va_base, Addr footprint,
                   std::uint64_t seed);

    const std::string &name() const override { return name_; }
    Addr footprintBytes() const override { return footprint_; }

  protected:
    /** A random byte address within [vaBase, vaBase+footprint). */
    Addr randomInRegion();

    /** Address of element @p index in an array of @p stride -byte
     * elements starting at offset @p base_off within the region. */
    Addr
    element(Addr base_off, Addr index, Addr stride) const
    {
        return vaBase_ + base_off + index * stride;
    }

    std::string name_;
    Addr vaBase_;
    Addr footprint_;
    Rng rng_;
};

/**
 * Helper for indirect (A[B[i]]) streams: buffers a deterministic target
 * generator so each emitted reference also knows the target kImpDistance
 * iterations ahead — the information a trained IMP computes from the
 * index array contents.
 */
class IndirectStream
{
  public:
    template <typename Gen>
    explicit IndirectStream(Gen gen, unsigned distance = kImpDistance)
        : gen_(std::move(gen)), distance_(distance)
    {
    }

    /** Next (current target, target `distance` ahead) pair. */
    std::pair<Addr, Addr>
    next()
    {
        while (buffer_.size() <= distance_)
            buffer_.push_back(gen_());
        const Addr current = buffer_.front();
        buffer_.pop_front();
        return {current, buffer_[distance_ - 1]};
    }

  private:
    std::function<Addr()> gen_;
    std::deque<Addr> buffer_;
    unsigned distance_;
};

/** Factory: construct the named workload ("mcf", "xsbench", ...). */
std::unique_ptr<Workload> makeWorkload(const std::string &name,
                                       std::uint64_t seed);

/** The paper's eight big-data workloads (Fig. 1/4/10-15 x-axes). */
const std::vector<std::string> &bigDataWorkloadNames();

/** Small-footprint Spec/Parsec-style workloads (Fig. 11 right). */
const std::vector<std::string> &smallWorkloadNames();

} // namespace tempo

#endif // TEMPO_WORKLOADS_WORKLOAD_HH
