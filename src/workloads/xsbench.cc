/**
 * @file
 * xsbench: Monte Carlo neutron-transport macroscopic cross-section
 * lookups. Memory signature: the worst locality of the suite — each
 * lookup binary-searches the multi-GB unionized energy grid (only the
 * top tree levels are hot), then gathers one cross-section entry per
 * nuclide at uniformly random locations in a huge table. The paper
 * singles xsbench out as the workload with the most frequent DRAM
 * page-table accesses (Sec. 6.1).
 */

#include "workloads/generators.hh"

namespace tempo {
namespace {

class XsbenchWorkload : public RegionWorkload
{
  public:
    explicit XsbenchWorkload(std::uint64_t seed)
        : RegionWorkload("xsbench", 0x160000000000ull, 48ull << 30,
                         seed),
          gather_([this] {
              return vaBase_ + gridBytes_
                  + rng_.below(footprint_ - gridBytes_);
          })
    {
    }

    unsigned mlpHint() const override { return 4; }

    MemRef
    next() override
    {
        MemRef ref;
        if (gridProbes_ > 0) {
            // Binary search of the unionized energy grid: the top tree
            // levels are hot and cache-resident, the lower probes land
            // anywhere in the multi-GB grid.
            --gridProbes_;
            if (rng_.chance(0.5)) {
                ref.vaddr = vaBase_ + rng_.below(kHotGridBytes);
            } else {
                ref.vaddr = vaBase_ + rng_.below(gridBytes_);
            }
            ref.stream = 1;
            return ref;
        }
        if (nuclideGathers_ > 0) {
            --nuclideGathers_;
            const auto [current, future] = gather_.next();
            ref.vaddr = current;
            ref.stream = 2;
            ref.indirect = true;
            ref.indirectFuture = future;
            return ref;
        }
        // New lookup: a couple of grid probes, then many gathers.
        gridProbes_ = 2;
        nuclideGathers_ = 4 + rng_.below(8);
        ref.vaddr = vaBase_ + rng_.below(kHotGridBytes);
        ref.stream = 1;
        return ref;
    }

  private:
    /** Top of the grid search tree: hot and cache-resident. */
    static constexpr Addr kHotGridBytes = 64ull << 10;
    /** Full unionized energy grid. */
    const Addr gridBytes_ = 2ull << 30;
    unsigned gridProbes_ = 0;
    unsigned nuclideGathers_ = 0;
    IndirectStream gather_;
};

} // namespace

std::unique_ptr<Workload>
makeXsbench(std::uint64_t seed)
{
    return std::make_unique<XsbenchWorkload>(seed);
}

} // namespace tempo
