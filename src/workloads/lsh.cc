/**
 * @file
 * lsh: locality-sensitive hashing for nearest-neighbour search. Memory
 * signature: uniform-random bucket probes (hashes scatter by design),
 * a short sequential scan of the bucket's entries, then fetches of a few
 * candidate feature vectors far away in the corpus.
 */

#include "workloads/generators.hh"

namespace tempo {
namespace {

class LshWorkload : public RegionWorkload
{
  public:
    explicit LshWorkload(std::uint64_t seed)
        : RegionWorkload("lsh", 0x120000000000ull, 32ull << 30, seed)
    {
    }

    unsigned mlpHint() const override { return 4; }

    MemRef
    next() override
    {
        MemRef ref;
        if (bucketScan_ > 0) {
            --bucketScan_;
            cursor_ += kLineBytes;
            ref.vaddr = cursor_;
            ref.stream = 1;
            return ref;
        }
        if (candidates_ > 0) {
            --candidates_;
            // Candidate vectors: uniform over the corpus half.
            ref.vaddr = vaBase_ + corpusOff_
                + rng_.below(footprint_ - corpusOff_);
            ref.stream = 2;
            return ref;
        }
        // New query: hash to a uniformly random bucket.
        const Addr buckets = corpusOff_ / kBucketBytes;
        cursor_ = vaBase_ + rng_.below(buckets) * kBucketBytes;
        ref.vaddr = cursor_;
        ref.stream = 1;
        bucketScan_ = 2 + rng_.below(6);
        candidates_ = 1 + rng_.below(3);
        return ref;
    }

  private:
    static constexpr Addr kBucketBytes = 512;
    /** First half: hash tables; second half: feature-vector corpus. */
    const Addr corpusOff_ = 16ull << 30;
    Addr cursor_ = 0;
    unsigned bucketScan_ = 0;
    unsigned candidates_ = 0;
};

} // namespace

std::unique_ptr<Workload>
makeLsh(std::uint64_t seed)
{
    return std::make_unique<LshWorkload>(seed);
}

} // namespace tempo
