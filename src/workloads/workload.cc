#include "workloads/workload.hh"

#include "common/log.hh"
#include "workloads/generators.hh"

namespace tempo {

RegionWorkload::RegionWorkload(std::string name, Addr va_base,
                               Addr footprint, std::uint64_t seed)
    : name_(std::move(name)), vaBase_(va_base), footprint_(footprint),
      rng_(seed)
{
    TEMPO_ASSERT(footprint > 0, "empty footprint");
}

Addr
RegionWorkload::randomInRegion()
{
    return vaBase_ + rng_.below(footprint_);
}

std::unique_ptr<Workload>
makeWorkload(const std::string &name, std::uint64_t seed)
{
    if (name == "mcf")
        return makeMcf(seed);
    if (name == "canneal")
        return makeCanneal(seed);
    if (name == "lsh")
        return makeLsh(seed);
    if (name == "spmv")
        return makeSpmv(seed);
    if (name == "sgms")
        return makeSgms(seed);
    if (name == "graph500")
        return makeGraph500(seed);
    if (name == "xsbench")
        return makeXsbench(seed);
    if (name == "illustris")
        return makeIllustris(seed);
    if (isSmallFootprintName(name))
        return makeSmallFootprint(name, seed);
    TEMPO_FATAL("unknown workload '", name, "'");
}

const std::vector<std::string> &
bigDataWorkloadNames()
{
    static const std::vector<std::string> names = {
        "mcf", "canneal", "lsh", "spmv",
        "sgms", "graph500", "xsbench", "illustris"};
    return names;
}

const std::vector<std::string> &
smallWorkloadNames()
{
    static const std::vector<std::string> names = {
        "astar.small",    "bzip2.small",        "gcc.small",
        "gobmk.small",    "hmmer.small",        "x264.small",
        "swaptions.small", "ferret.small",      "perlbench.small",
        "sjeng.small",    "namd.small",         "povray.small",
        "blackscholes.small", "bodytrack.small", "freqmine.small",
        "fluidanimate.small"};
    return names;
}

} // namespace tempo
