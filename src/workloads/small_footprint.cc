/**
 * @file
 * Small-footprint Spec/Parsec-style workloads (paper Fig. 11 right):
 * footprints of tens to a couple hundred MB with strong locality, so
 * DRAM page-table accesses are rare. The paper uses them to show TEMPO
 * does no harm; we parameterize one generator family by per-workload
 * footprint, hot-set geometry, and streaming share.
 */

#include "workloads/generators.hh"

#include <unordered_map>

#include "common/log.hh"

namespace tempo {
namespace {

struct SmallParams {
    Addr footprint;
    double hotFraction;   //!< probability a reference hits the hot set
    Addr hotBytes;        //!< hot-set size
    double streamShare;   //!< probability of sequential-burst mode
    double writeShare;
    unsigned mlp;
};

const std::unordered_map<std::string, SmallParams> &
paramTable()
{
    static const std::unordered_map<std::string, SmallParams> table = {
        // name                fp          hot%  hotB        str   wr    mlp
        {"astar.small",     {96ull << 20, 0.75, 4ull << 20, 0.20, 0.15, 4}},
        {"bzip2.small",     {64ull << 20, 0.80, 8ull << 20, 0.50, 0.30, 6}},
        {"gcc.small",       {128ull << 20, 0.85, 6ull << 20, 0.30, 0.25, 6}},
        {"gobmk.small",     {32ull << 20, 0.90, 2ull << 20, 0.15, 0.20, 4}},
        {"hmmer.small",     {48ull << 20, 0.85, 4ull << 20, 0.60, 0.20, 8}},
        {"x264.small",      {160ull << 20, 0.70, 8ull << 20, 0.65, 0.35, 8}},
        {"swaptions.small", {24ull << 20, 0.95, 2ull << 20, 0.40, 0.25, 6}},
        {"ferret.small",    {192ull << 20, 0.65, 8ull << 20, 0.35, 0.15, 8}},
        {"perlbench.small", {48ull << 20, 0.88, 4ull << 20, 0.25, 0.30, 6}},
        {"sjeng.small",     {40ull << 20, 0.92, 2ull << 20, 0.10, 0.20, 4}},
        {"namd.small",      {56ull << 20, 0.80, 6ull << 20, 0.55, 0.25, 8}},
        {"povray.small",    {16ull << 20, 0.95, 2ull << 20, 0.30, 0.15, 6}},
        {"blackscholes.small", {24ull << 20, 0.70, 2ull << 20, 0.85, 0.20, 10}},
        {"bodytrack.small", {64ull << 20, 0.75, 4ull << 20, 0.45, 0.25, 8}},
        {"freqmine.small",  {96ull << 20, 0.80, 8ull << 20, 0.35, 0.20, 6}},
        {"fluidanimate.small", {112ull << 20, 0.70, 8ull << 20, 0.60, 0.35, 8}},
        // A memory-hungrier tier used to give BLISS mixes a range of
        // intensities (paper Sec. 6.3: "a range of memory intensities").
        {"lbm.medium",      {1536ull << 20, 0.30, 16ull << 20, 0.70, 0.40, 10}},
        {"milc.medium",     {1024ull << 20, 0.35, 8ull << 20, 0.40, 0.30, 8}},
        {"libquantum.medium", {768ull << 20, 0.25, 4ull << 20, 0.90, 0.30, 12}},
        {"omnetpp.medium",  {640ull << 20, 0.45, 8ull << 20, 0.20, 0.30, 4}},
        {"soplex.medium",   {896ull << 20, 0.40, 8ull << 20, 0.50, 0.30, 6}},
        {"streamcluster.medium", {512ull << 20, 0.30, 4ull << 20, 0.80, 0.25, 10}},
    };
    return table;
}

class SmallFootprintWorkload : public RegionWorkload
{
  public:
    SmallFootprintWorkload(const std::string &name,
                           const SmallParams &params, std::uint64_t seed)
        : RegionWorkload(name,
                         0x180000000000ull
                             + (std::hash<std::string>{}(name) & 0xffull)
                                   * (1ull << 38),
                         params.footprint, seed),
          params_(params)
    {
    }

    unsigned mlpHint() const override { return params_.mlp; }

    MemRef
    next() override
    {
        MemRef ref;
        ref.stream = 1;
        if (burstRemaining_ > 0) {
            --burstRemaining_;
            cursor_ += kLineBytes;
            if (cursor_ >= footprint_)
                cursor_ = 0;
            ref.vaddr = vaBase_ + cursor_;
            ref.isWrite = rng_.chance(params_.writeShare);
            return ref;
        }
        if (rng_.chance(params_.streamShare)) {
            burstRemaining_ = 8 + rng_.below(56);
            cursor_ = alignDown(rng_.below(footprint_), kLineBytes);
            ref.vaddr = vaBase_ + cursor_;
            return ref;
        }
        if (rng_.chance(params_.hotFraction)) {
            ref.vaddr = vaBase_ + rng_.below(params_.hotBytes);
        } else {
            ref.vaddr = randomInRegion();
        }
        ref.isWrite = rng_.chance(params_.writeShare);
        return ref;
    }

  private:
    SmallParams params_;
    Addr cursor_ = 0;
    unsigned burstRemaining_ = 0;
};

} // namespace

bool
isSmallFootprintName(const std::string &name)
{
    return paramTable().count(name) > 0;
}

std::unique_ptr<Workload>
makeSmallFootprint(const std::string &name, std::uint64_t seed)
{
    const auto it = paramTable().find(name);
    TEMPO_ASSERT(it != paramTable().end(), "unknown small workload '",
                 name, "'");
    return std::make_unique<SmallFootprintWorkload>(name, it->second,
                                                    seed);
}

} // namespace tempo
