/**
 * @file
 * illustris: cosmological simulation analysis. Memory signature: octree
 * traversals — serial pointer chases of ~6 levels, each landing
 * uniformly at random in a huge particle/tree arena — with rare
 * sequential particle-block reads. Lowest MLP of the suite; its access
 * locality is so poor that closed-row policies beat open-row (paper
 * Sec. 6.3).
 */

#include "workloads/generators.hh"

namespace tempo {
namespace {

class IllustrisWorkload : public RegionWorkload
{
  public:
    explicit IllustrisWorkload(std::uint64_t seed)
        : RegionWorkload("illustris", 0x170000000000ull, 48ull << 30,
                         seed)
    {
    }

    unsigned mlpHint() const override { return 2; }

    MemRef
    next() override
    {
        MemRef ref;
        if (chaseRemaining_ > 0) {
            // Descend one tree level: the child node is anywhere.
            --chaseRemaining_;
            ref.vaddr = randomInRegion();
            ref.stream = 1;
            return ref;
        }
        if (blockRemaining_ > 0) {
            --blockRemaining_;
            blockCursor_ += kLineBytes;
            ref.vaddr = blockCursor_;
            ref.isWrite = rng_.chance(0.25);
            ref.stream = 2;
            return ref;
        }
        if (rng_.chance(0.15)) {
            // Read a particle block sequentially.
            blockCursor_ = vaBase_
                + alignDown(rng_.below(footprint_), kLineBytes);
            blockRemaining_ = 4 + rng_.below(12);
            ref.vaddr = blockCursor_;
            ref.stream = 2;
            return ref;
        }
        // Start a new octree descent.
        chaseRemaining_ = 4 + rng_.below(4);
        ref.vaddr = randomInRegion();
        ref.stream = 1;
        return ref;
    }

  private:
    unsigned chaseRemaining_ = 0;
    unsigned blockRemaining_ = 0;
    Addr blockCursor_ = 0;
};

} // namespace

std::unique_ptr<Workload>
makeIllustris(std::uint64_t seed)
{
    return std::make_unique<IllustrisWorkload>(seed);
}

} // namespace tempo
