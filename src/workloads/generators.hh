/**
 * @file
 * Internal factory functions for the individual workload generators.
 * External code uses makeWorkload() from workload.hh.
 */

#ifndef TEMPO_WORKLOADS_GENERATORS_HH
#define TEMPO_WORKLOADS_GENERATORS_HH

#include <cstdint>
#include <memory>
#include <string>

#include "workloads/workload.hh"

namespace tempo {

std::unique_ptr<Workload> makeMcf(std::uint64_t seed);
std::unique_ptr<Workload> makeCanneal(std::uint64_t seed);
std::unique_ptr<Workload> makeLsh(std::uint64_t seed);
std::unique_ptr<Workload> makeSpmv(std::uint64_t seed);
std::unique_ptr<Workload> makeSgms(std::uint64_t seed);
std::unique_ptr<Workload> makeGraph500(std::uint64_t seed);
std::unique_ptr<Workload> makeXsbench(std::uint64_t seed);
std::unique_ptr<Workload> makeIllustris(std::uint64_t seed);

/** Small-footprint Spec/Parsec-style workloads, selected by name. */
std::unique_ptr<Workload> makeSmallFootprint(const std::string &name,
                                             std::uint64_t seed);
bool isSmallFootprintName(const std::string &name);

} // namespace tempo

#endif // TEMPO_WORKLOADS_GENERATORS_HH
