/**
 * @file
 * canneal (PARSEC): simulated annealing for chip routing. Memory
 * signature: random element-pair swaps (read A, read B, write both) over
 * a large netlist, with occasional spatially-adjacent neighbour reads —
 * the sharing that makes canneal favour open-row policies (paper
 * Sec. 6.3).
 */

#include "workloads/generators.hh"

namespace tempo {
namespace {

class CannealWorkload : public RegionWorkload
{
  public:
    explicit CannealWorkload(std::uint64_t seed)
        : RegionWorkload("canneal", 0x110000000000ull, 16ull << 30, seed)
    {
    }

    unsigned mlpHint() const override { return 4; }

    MemRef
    next() override
    {
        MemRef ref;
        switch (phase_) {
          case 0: // read element A
            elemA_ = pickElement();
            ref.vaddr = elemA_;
            phase_ = 1;
            break;
          case 1: // read element B
            elemB_ = pickElement();
            ref.vaddr = elemB_;
            phase_ = 2;
            break;
          case 2: // write element A
            ref.vaddr = elemA_;
            ref.isWrite = true;
            phase_ = 3;
            break;
          case 3: // write element B, maybe queue neighbour reads
            ref.vaddr = elemB_;
            ref.isWrite = true;
            neighbours_ = rng_.chance(0.4) ? 2 + rng_.below(3) : 0;
            phase_ = neighbours_ ? 4 : 0;
            break;
          default: // spatially-adjacent neighbour reads around B
            ref.vaddr = alignDown(elemB_, kPageBytes)
                + rng_.below(kPageBytes);
            if (--neighbours_ == 0)
                phase_ = 0;
            break;
        }
        ref.stream = 1;
        return ref;
    }

  private:
    Addr
    pickElement()
    {
        const Addr elems = footprint_ / kElemBytes;
        // Mild skew: annealing revisits a warm working set.
        const Addr idx = rng_.skewedBelow(elems, elems / 50, 0.25);
        return vaBase_ + idx * kElemBytes;
    }

    static constexpr Addr kElemBytes = 64;
    int phase_ = 0;
    unsigned neighbours_ = 0;
    Addr elemA_ = 0;
    Addr elemB_ = 0;
};

} // namespace

std::unique_ptr<Workload>
makeCanneal(std::uint64_t seed)
{
    return std::make_unique<CannealWorkload>(seed);
}

} // namespace tempo
