/**
 * @file
 * graph500: BFS over a scale-free graph. Memory signature: sequential
 * frontier-queue reads, sequential adjacency-list bursts starting at
 * random offsets (CSR edge array), and uniform-random visited-bitmap /
 * vertex probes for each neighbour — the indirect stream.
 */

#include "workloads/generators.hh"

namespace tempo {
namespace {

class Graph500Workload : public RegionWorkload
{
  public:
    explicit Graph500Workload(std::uint64_t seed)
        : RegionWorkload("graph500", 0x150000000000ull, 32ull << 30,
                         seed),
          neighbour_([this] {
              // Scale-free target: a few hub vertices absorb much of
              // the traffic, the tail is uniform.
              const Addr vertices = vertexBytes_ / kVertexBytes;
              const Addr idx =
                  rng_.skewedBelow(vertices, vertices / 200, 0.25);
              return vaBase_ + idx * kVertexBytes;
          })
    {
    }

    unsigned mlpHint() const override { return 4; }

    MemRef
    next() override
    {
        MemRef ref;
        if (edgeBurst_ > 0) {
            // Walk the adjacency list sequentially...
            --edgeBurst_;
            edgeCursor_ += kEdgeBytes;
            ref.vaddr = edgeCursor_;
            ref.stream = 2;
            // ...and probe the neighbour vertex it names.
            pendingVisits_ += 1;
            return ref;
        }
        if (pendingVisits_ > 0) {
            --pendingVisits_;
            const auto [current, future] = neighbour_.next();
            ref.vaddr = current;
            ref.stream = 3;
            ref.indirect = true;
            ref.indirectFuture = future;
            ref.isWrite = rng_.chance(0.3); // visited-bitmap update
            return ref;
        }
        // Pop the next frontier vertex (queue is sequential).
        frontierCursor_ += kVertexBytes;
        if (frontierCursor_ >= vertexBytes_)
            frontierCursor_ = 0;
        ref.vaddr = vaBase_ + frontierCursor_;
        ref.stream = 1;
        // Its adjacency list starts at a random edge-array offset.
        edgeCursor_ = vaBase_ + vertexBytes_
            + alignDown(rng_.below(footprint_ - vertexBytes_),
                        kLineBytes);
        edgeBurst_ = 2 + rng_.below(14);
        return ref;
    }

  private:
    static constexpr Addr kVertexBytes = 16;
    static constexpr Addr kEdgeBytes = 8;
    /** Layout: [0, vertexBytes): vertices; rest: CSR edge array. */
    const Addr vertexBytes_ = 8ull << 30;
    Addr frontierCursor_ = 0;
    Addr edgeCursor_ = 0;
    unsigned edgeBurst_ = 0;
    unsigned pendingVisits_ = 0;
    IndirectStream neighbour_;
};

} // namespace

std::unique_ptr<Workload>
makeGraph500(std::uint64_t seed)
{
    return std::make_unique<Graph500Workload>(seed);
}

} // namespace tempo
