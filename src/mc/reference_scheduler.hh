/**
 * @file
 * Flat-scan reference schedulers: the original O(N)-per-pick FR-FCFS and
 * BLISS implementations, retained as the behavioral oracle for the
 * indexed TxQueue paths (mirroring how heap_event_queue.hh keeps the
 * binary-heap EventQueue around).
 *
 * Every pick walks the channel's seq-ordered list, re-decoding row-hit
 * and bank-ready state per entry — the honest old cost, measured by
 * bench/perf_txq. The ordering key is the shared, widened SchedKey, so
 * the reference and indexed paths are bit-identical by construction;
 * tests/tx_queue_test.cpp checks that on randomized request streams, and
 * the CI perf-smoke job checks end-to-end JSON byte-identity with
 * TEMPO_REFERENCE_SCHEDULER=1.
 */

#ifndef TEMPO_MC_REFERENCE_SCHEDULER_HH
#define TEMPO_MC_REFERENCE_SCHEDULER_HH

#include "mc/bliss.hh"
#include "mc/scheduler.hh"

namespace tempo {

/** FR-FCFS via full flat rescans of the channel. */
class RefFrFcfsScheduler : public FrFcfsScheduler
{
  public:
    using FrFcfsScheduler::FrFcfsScheduler;

    std::uint32_t pick(const TxQueue &txq, unsigned ch,
                       const DramDevice &dram, Cycle now) override;
};

/** BLISS via full flat rescans of the channel. */
class RefBlissScheduler : public BlissScheduler
{
  public:
    using BlissScheduler::BlissScheduler;

    std::uint32_t pick(const TxQueue &txq, unsigned ch,
                       const DramDevice &dram, Cycle now) override;
};

} // namespace tempo

#endif // TEMPO_MC_REFERENCE_SCHEDULER_HH
