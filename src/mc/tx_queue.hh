/**
 * @file
 * The indexed transaction queue: a freelist-backed slot arena shared by
 * all channels, threaded onto intrusive per-(bank, app, kind-group)
 * FIFOs plus a per-bank row-hit lookaside keyed by the currently open
 * rows. The DRAM coordinates of a request are decoded exactly once, at
 * enqueue, and cached in the slot.
 *
 * The point of the structure is that an FR-FCFS/BLISS pick no longer
 * rescans every queued request: within one (bank, app, group) sub-FIFO
 * every entry shares its kind group, its application (and therefore its
 * BLISS blacklist status), and its bank-ready state, so the only two
 * entries that can win the (klass, seq) argmax are
 *
 *   - the sub-FIFO head (oldest of the group), and
 *   - per currently-open row of the bank, the oldest entry of the group
 *     that would row-hit it (the lookaside list head).
 *
 * A pick therefore inspects O(non-empty (bank, app, group) sub-FIFOs)
 * heads instead of O(N) entries, and provably selects the same argmax as
 * the
 * retained flat-scan reference scheduler (see reference_scheduler.hh
 * and the randomized differential test in tests/tx_queue_test.cpp):
 * heads are scored with their true key, non-head FIFO candidates are
 * dominated by their head, and a head that actually row-hits is also
 * enumerated through the lookaside with its higher row-hit class.
 *
 * Starvation needs no extra index: arrival times are monotone in seq
 * within a sub-FIFO, so if any entry is starved the head is starved
 * too, and all starved entries share one priority class.
 *
 * Dispatch unlinks a slot from the index but keeps it in the arena as
 * the in-flight record until completion releases it, so a request is
 * never copied or memmoved between submit and completion.
 */

#ifndef TEMPO_MC_TX_QUEUE_HH
#define TEMPO_MC_TX_QUEUE_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/log.hh"
#include "common/types.hh"
#include "dram/dram.hh"
#include "mc/request.hh"

namespace tempo {

/** Kind groups the candidate index separates (paper Sec. 4.3(b)). */
enum TxGroup : std::uint8_t {
    kGroupPt = 0,      //!< page-table walker references
    kGroupTempoPf = 1, //!< TEMPO post-translation prefetches
    kGroupOther = 2,   //!< everything else (demand, IMP, writebacks)
};
inline constexpr unsigned kNumTxGroups = 3;

inline TxGroup
txGroupOf(ReqKind kind)
{
    if (kind == ReqKind::PtWalk)
        return kGroupPt;
    if (kind == ReqKind::TempoPrefetch)
        return kGroupTempoPf;
    return kGroupOther;
}

class TxQueue : public RowTransitionListener
{
  public:
    static constexpr std::uint32_t kNone = 0xffffffffu;

    /**
     * Registers as the device's row-transition listener and snapshots
     * any rows that are already open.
     *
     * @param per_app_index split sub-FIFOs by application. Required by
     *     BLISS (entries of one sub-FIFO must share their blacklist
     *     status, and the affinity rule needs per-app prefetch heads);
     *     unnecessary overhead for plain FR-FCFS, whose ordering never
     *     looks at the application.
     */
    explicit TxQueue(DramDevice &dram, bool per_app_index = true);
    ~TxQueue() override;

    /** Does this queue maintain per-application sub-FIFOs? */
    bool perAppIndex() const { return perAppIndex_; }

    TxQueue(const TxQueue &) = delete;
    TxQueue &operator=(const TxQueue &) = delete;

    /**
     * Enqueue @p entry, decoding its DRAM coordinates once. Entries of
     * one channel must arrive in strictly increasing seq and
     * non-decreasing arrival order (the index relies on sub-FIFOs being
     * age-sorted). Returns the slot id.
     */
    std::uint32_t enqueue(QueuedRequest entry)
    {
        const DramCoord coord = dram_.map().decode(entry.req.paddr);
        return enqueue(std::move(entry), coord);
    }

    /** Enqueue with a coordinate the caller already decoded (the
     * prefetch engine decodes the target for its drop check). */
    std::uint32_t enqueue(QueuedRequest entry, const DramCoord &coord);

    /**
     * Unlink slot @p id from every scheduling index; the slot stays
     * allocated as the in-flight record until release()/take().
     */
    void remove(std::uint32_t id);

    /** Return a dispatched slot to the freelist. */
    void release(std::uint32_t id);

    /** Move the request out of a dispatched slot and release it. Safe
     * against re-entrant enqueue from completion callbacks. */
    QueuedRequest take(std::uint32_t id);

    QueuedRequest &entry(std::uint32_t id) { return slots_[id].entry; }
    const QueuedRequest &entry(std::uint32_t id) const
    {
        return slots_[id].entry;
    }
    /** Coordinates cached at enqueue (decoded exactly once). */
    const DramCoord &coord(std::uint32_t id) const
    {
        return slots_[id].coord;
    }

    unsigned channels() const
    {
        return static_cast<unsigned>(channels_.size());
    }
    /** Queued entries in @p ch (one per request, no tagged split). */
    std::size_t size(unsigned ch) const { return channels_[ch].count; }
    bool empty(unsigned ch) const { return channels_[ch].count == 0; }
    /** Queued slots in @p ch counting tagged PT entries twice (the
     * paper's two-slot split encoding). Maintained incrementally. */
    std::size_t occupancy(unsigned ch) const
    {
        return channels_[ch].occupancy;
    }
    /** Sum of occupancy(ch) over all channels. O(1), for sampling. */
    std::size_t totalOccupancy() const { return totalOccupancy_; }
    /** Total queued entries across channels. */
    std::size_t totalSize() const { return totalCount_; }

    /** O(N) recount of totalOccupancy() for tests: walks the per-channel
     * seq lists and re-derives the tagged split from each entry. */
    std::size_t bruteForceOccupancy() const;

    // --- Seq-ordered iteration (flat-scan reference path, tests) ---
    std::uint32_t seqHead(unsigned ch) const
    {
        return channels_[ch].seqHead;
    }
    std::uint32_t seqNext(std::uint32_t id) const
    {
        return slots_[id].seqNext;
    }

    /**
     * Enumerate the candidate heads of channel @p ch: for each active
     * bank, each non-empty (app, group) sub-FIFO head — scored by the
     * caller as a non-row-hit — and, per open row of the bank, the
     * row-hit lookaside head. @p fn is invoked as
     * fn(id, entry, row_hit, bank_ready).
     *
     * The FIFO head is visited exactly once, with its true row-hit
     * status checked directly against the bank's open rows: an entry
     * enqueued into an empty FIFO never joins a row bucket (the lazy-
     * bucket invariant — at most one non-bucket entry per FIFO, always
     * the head), so the head cannot be assumed to appear under a
     * bucket. A bucket head equal to the FIFO head is skipped: the
     * direct visit already scored it as a row-hit.
     */
    template <typename Fn>
    void
    forEachCandidate(unsigned ch, Cycle now, Fn &&fn) const
    {
        for (const std::uint32_t fb : activeBanks_[ch]) {
            const BankIndex &bank = banks_[fb];
            const bool bank_ready = dram_.bankReadyAtFlat(fb) <= now;
            for (const std::uint32_t pi : bank.activePairs) {
                const Pair &pair = bank.pairs[pi];
                const std::uint32_t head = pair.fifo.head;
                const std::uint64_t head_key = slots_[head].rowKey;
                bool head_hit = false;
                for (const std::uint64_t row_key : bank.openRows)
                    head_hit |= row_key == head_key;
                fn(head, slots_[head].entry, head_hit, bank_ready);
                if (pair.rows.empty())
                    continue;
                for (const std::uint64_t row_key : bank.openRows) {
                    for (const RowBucket &bucket : pair.rows) {
                        if (bucket.key != row_key)
                            continue;
                        const std::uint32_t hit = bucket.list.head;
                        if (hit != head)
                            fn(hit, slots_[hit].entry, /*row_hit=*/true,
                               bank_ready);
                        break;
                    }
                }
            }
        }
    }

    /** Oldest queued TEMPO prefetch of @p app in channel @p ch, or
     * kNone (the BLISS stream-switch affinity rule). */
    std::uint32_t minSeqPrefetch(unsigned ch, AppId app) const;

    // --- RowTransitionListener ---
    void rowOpened(unsigned flat_bank, Addr row,
                   unsigned segment) override;
    void rowClosed(unsigned flat_bank, Addr row,
                   unsigned segment) override;

  private:
    struct List {
        std::uint32_t head = kNone;
        std::uint32_t tail = kNone;
    };

    struct Slot {
        QueuedRequest entry;
        DramCoord coord{};
        std::uint64_t rowKey = 0; //!< row * subRowFactor + segment
        std::uint32_t flatBank = 0;
        std::uint16_t appIdx = 0;
        std::uint8_t group = kGroupOther;
        bool queued = false;
        /** In a row-hit lookaside bucket? An entry enqueued into an
         * empty FIFO skips bucket insertion (it is the head, whose
         * row-hit status forEachCandidate checks directly); everything
         * else joins the bucket for its rowKey. */
        bool inRowBucket = false;
        // Intrusive links: channel seq order, (bank, app, group) FIFO,
        // and the (row, app, group) lookaside list.
        std::uint32_t seqPrev = kNone, seqNext = kNone;
        std::uint32_t fifoPrev = kNone, fifoNext = kNone;
        std::uint32_t rowPrev = kNone, rowNext = kNone;
        std::uint32_t nextFree = kNone;
    };

    struct ChannelIndex {
        std::uint32_t seqHead = kNone;
        std::uint32_t seqTail = kNone;
        std::size_t count = 0;
        std::size_t occupancy = 0;
    };

    /** Row-hit lookaside bucket: the age-ordered entries of one
     * (bank, app, group) that target one rowKey. A small contiguous
     * vector per pair beats a hash map here — a pair rarely spreads
     * over more than a handful of distinct rows at once. */
    struct RowBucket {
        std::uint64_t key;
        List list;
    };

    /** One (app, group) sub-queue of a bank. */
    struct Pair {
        List fifo;
        std::vector<RowBucket> rows;
        std::uint32_t count = 0;
        std::uint32_t activePos = kNone;
    };

    struct BankIndex {
        /** Indexed appIdx * kNumTxGroups + group; grows as apps
         * appear. */
        std::vector<Pair> pairs;
        /** Indices into pairs with count > 0 — what a pick visits. */
        std::vector<std::uint32_t> activePairs;
        /** Row keys currently latched in this bank's buffer slots,
         * mirrored from the device via the row-transition listener. */
        std::vector<std::uint64_t> openRows;
        std::size_t count = 0;
        std::uint32_t activePos = kNone;
    };

    std::uint32_t alloc();
    std::uint16_t appIndex(AppId app);

    std::uint64_t
    rowKeyOf(Addr row, unsigned segment) const
    {
        return row * subRowFactor_ + segment;
    }

    DramDevice &dram_;
    std::uint64_t subRowFactor_;
    bool perAppIndex_;
    std::vector<Slot> slots_;
    std::uint32_t freeHead_ = kNone;
    std::vector<ChannelIndex> channels_;
    std::vector<BankIndex> banks_;
    /** Per channel: flat ids of banks with at least one queued entry. */
    std::vector<std::vector<std::uint32_t>> activeBanks_;
    std::unordered_map<AppId, std::uint16_t> appIdx_;
    std::size_t totalCount_ = 0;
    std::size_t totalOccupancy_ = 0;
};

} // namespace tempo

#endif // TEMPO_MC_TX_QUEUE_HH
