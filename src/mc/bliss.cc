#include "mc/bliss.hh"

#include "common/log.hh"
#include "obs/obs.hh"

namespace tempo {

BlissScheduler::BlissScheduler(const SchedulerConfig &cfg)
    : FrFcfsScheduler(cfg)
{
}

bool
BlissScheduler::isBlacklisted(AppId app) const
{
    return blacklist_.count(app) > 0;
}

void
BlissScheduler::maybeClear(Cycle now)
{
    if (now - lastClear_ >= cfg_.blissClearInterval) {
        blacklist_.clear();
        lastClear_ = now;
    }
}

std::size_t
BlissScheduler::pick(const std::vector<QueuedRequest> &queue,
                     const DramDevice &dram, Cycle now)
{
    TEMPO_ASSERT(!queue.empty(), "pick on empty queue");
    maybeClear(now);

    // TEMPO stream-switch rule: the prefetch triggered by the PT access we
    // just served goes first, regardless of blacklisting.
    if (pendingPrefetchAffinity_) {
        for (std::size_t i = 0; i < queue.size(); ++i) {
            const MemRequest &req = queue[i].req;
            if (req.kind == ReqKind::TempoPrefetch
                && req.app == affinityApp_) {
                return i;
            }
        }
    }

    std::size_t best = 0;
    std::uint64_t best_score = 0;
    for (std::size_t i = 0; i < queue.size(); ++i) {
        // Non-blacklisted apps outrank blacklisted ones; within each group
        // the FR-FCFS base order applies. baseScore's class field tops out
        // at 15, so shifting by a whole class byte keeps ordering intact.
        const std::uint64_t base = baseScore(queue[i], dram, now);
        const std::uint64_t score =
            base | (isBlacklisted(queue[i].req.app) ? 0ull : 1ull << 40);
        if (i == 0 || score > best_score) {
            best = i;
            best_score = score;
        }
    }
    return best;
}

void
BlissScheduler::served(const QueuedRequest &entry, Cycle now)
{
    Scheduler::served(entry, now); // dispatch trace hook
    maybeClear(now);

    const unsigned weight = isPrefetchKind(entry.req.kind)
        ? cfg_.blissPrefetchWeight
        : cfg_.blissNormalWeight;

    if (entry.req.app == lastApp_) {
        consecutive_ += weight;
    } else if (weight > 0) {
        lastApp_ = entry.req.app;
        consecutive_ = weight;
    }
    // A zero-weight request (prefetch weight 0) from a different app
    // is invisible to the BLISS counter: it must neither claim stream
    // ownership nor reset the current app's consecutive count —
    // otherwise free prefetches would launder a hog's streak.

    if (consecutive_ >= cfg_.blissThreshold) {
        if (blacklist_.insert(entry.req.app).second) {
            ++blacklistEvents_;
            if (auto *o = obs::session())
                o->blissBlacklist(now, entry.req.app);
        }
        consecutive_ = 0;
    }

    pendingPrefetchAffinity_ = cfg_.blissTempoAffinity
        && entry.req.kind == ReqKind::PtWalk && entry.req.tempo.tagged;
    affinityApp_ = entry.req.app;
}

} // namespace tempo
