#include "mc/bliss.hh"

#include <algorithm>

#include "common/log.hh"
#include "obs/obs.hh"

namespace tempo {

BlissScheduler::BlissScheduler(const SchedulerConfig &cfg)
    : FrFcfsScheduler(cfg)
{
}

bool
BlissScheduler::isBlacklisted(AppId app) const
{
    return app < blacklist_.size() && blacklist_[app] != 0;
}

void
BlissScheduler::maybeClear(Cycle now)
{
    if (now - lastClear_ >= cfg_.blissClearInterval) {
        std::fill(blacklist_.begin(), blacklist_.end(), 0);
        lastClear_ = now;
    }
}

std::uint32_t
BlissScheduler::pick(const TxQueue &txq, unsigned ch,
                     const DramDevice &dram, Cycle now)
{
    (void)dram;
    TEMPO_ASSERT(!txq.empty(ch), "pick on empty queue");
    TEMPO_ASSERT(txq.perAppIndex(),
                 "BLISS needs per-app sub-FIFOs: entries of one "
                 "candidate FIFO must share their blacklist status");
    maybeClear(now); // before the fast path: lastClear_ must advance on
                     // the same cadence as the reference scheduler's
    // Shallow queues dominate real runs: a single queued request is
    // the argmax by definition, no scoring needed.
    if (txq.size(ch) == 1)
        return txq.seqHead(ch);

    // TEMPO stream-switch rule: the prefetch triggered by the PT access we
    // just served goes first, regardless of blacklisting.
    if (pendingPrefetchAffinity_) {
        const std::uint32_t pf = txq.minSeqPrefetch(ch, affinityApp_);
        if (pf != TxQueue::kNone)
            return pf;
    }

    // Non-blacklisted apps outrank blacklisted ones; within each group
    // the FR-FCFS base order applies. Entries of one (bank, app, group)
    // sub-FIFO share their blacklist status, so the index's candidate
    // heads still cover the argmax.
    std::uint32_t best = TxQueue::kNone;
    unsigned __int128 best_key = 0; // loses to every real packed key
    txq.forEachCandidate(
        ch, now,
        [&](std::uint32_t id, const QueuedRequest &entry, bool row_hit,
            bool bank_ready) {
            const unsigned __int128 key =
                blissKey(entry, row_hit, bank_ready, now).packed();
            if (key > best_key) {
                best = id;
                best_key = key;
            }
        });
    TEMPO_ASSERT(best != TxQueue::kNone, "no candidate in non-empty queue");
    return best;
}

void
BlissScheduler::served(const QueuedRequest &entry, Cycle now)
{
    Scheduler::served(entry, now); // dispatch trace hook
    maybeClear(now);

    const unsigned weight = isPrefetchKind(entry.req.kind)
        ? cfg_.blissPrefetchWeight
        : cfg_.blissNormalWeight;

    if (entry.req.app == lastApp_) {
        consecutive_ += weight;
    } else if (weight > 0) {
        lastApp_ = entry.req.app;
        consecutive_ = weight;
    }
    // A zero-weight request (prefetch weight 0) from a different app
    // is invisible to the BLISS counter: it must neither claim stream
    // ownership nor reset the current app's consecutive count —
    // otherwise free prefetches would launder a hog's streak.

    if (consecutive_ >= cfg_.blissThreshold) {
        if (entry.req.app >= blacklist_.size())
            blacklist_.resize(entry.req.app + 1u, 0);
        if (blacklist_[entry.req.app] == 0) {
            blacklist_[entry.req.app] = 1;
            ++blacklistEvents_;
            if (auto *o = obs::session())
                o->blissBlacklist(now, entry.req.app);
        }
        consecutive_ = 0;
    }

    pendingPrefetchAffinity_ = cfg_.blissTempoAffinity
        && entry.req.kind == ReqKind::PtWalk && entry.req.tempo.tagged;
    affinityApp_ = entry.req.app;
}

} // namespace tempo
