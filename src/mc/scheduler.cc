#include "mc/scheduler.hh"

#include "common/log.hh"
#include "obs/obs.hh"

namespace tempo {

void
Scheduler::served(const QueuedRequest &entry, Cycle now)
{
    if (auto *o = obs::session()) {
        o->txqDispatch(now, static_cast<std::uint8_t>(entry.req.kind),
                       entry.req.walkId, entry.req.paddr);
    }
}

FrFcfsScheduler::FrFcfsScheduler(const SchedulerConfig &cfg) : cfg_(cfg) {}

std::uint64_t
FrFcfsScheduler::baseScore(const QueuedRequest &entry,
                           const DramDevice &dram, Cycle now) const
{
    // Priority classes, highest first. Encoded as class * 2^32 + recency
    // bonus so that within a class, older requests win.
    const bool row_hit = dram.wouldRowHit(entry.req.paddr);
    const bool bank_ready = dram.bankReadyAt(entry.req.paddr) <= now;
    const bool is_pt = entry.req.kind == ReqKind::PtWalk;
    const bool is_tempo_pf = entry.req.kind == ReqKind::TempoPrefetch;

    std::uint64_t klass;
    if (cfg_.tempoGrouping) {
        // Paper Sec. 4.3(b): PT accesses first (same-row groups form
        // naturally because row-hitting PT accesses outrank the rest),
        // then TEMPO prefetches grouped by row, then ordinary FR-FCFS.
        if (is_pt && row_hit)
            klass = 7;
        else if (is_pt)
            klass = 6;
        else if (is_tempo_pf && row_hit)
            klass = 5;
        else if (is_tempo_pf)
            klass = 4; // prefetch timeliness beats ordinary row hits
        else if (row_hit)
            klass = 3;
        else
            klass = 2;
    } else {
        klass = row_hit ? 4 : 2;
    }

    // Requests to busy banks lose one class step: serving them stalls the
    // pipeline for no benefit while a ready bank waits.
    if (!bank_ready && klass > 0)
        --klass;

    // Starvation guard dominates everything.
    if (now - entry.arrival > cfg_.starvationLimit)
        klass = 15;

    // Age bonus: older (smaller seq) scores higher within the class.
    const std::uint64_t age_bonus = ~entry.seq & 0xffffffffull;
    return (klass << 32) | age_bonus;
}

std::size_t
FrFcfsScheduler::pick(const std::vector<QueuedRequest> &queue,
                      const DramDevice &dram, Cycle now)
{
    TEMPO_ASSERT(!queue.empty(), "pick on empty queue");
    std::size_t best = 0;
    std::uint64_t best_score = baseScore(queue[0], dram, now);
    for (std::size_t i = 1; i < queue.size(); ++i) {
        const std::uint64_t score = baseScore(queue[i], dram, now);
        if (score > best_score) {
            best = i;
            best_score = score;
        }
    }
    return best;
}

} // namespace tempo
