#include "mc/scheduler.hh"

#include "common/log.hh"
#include "obs/obs.hh"

namespace tempo {

void
Scheduler::served(const QueuedRequest &entry, Cycle now)
{
    if (auto *o = obs::session()) {
        o->txqDispatch(now, static_cast<std::uint8_t>(entry.req.kind),
                       entry.req.walkId, entry.req.paddr);
    }
}

FrFcfsScheduler::FrFcfsScheduler(const SchedulerConfig &cfg) : cfg_(cfg) {}

std::uint32_t
FrFcfsScheduler::pick(const TxQueue &txq, unsigned ch,
                      const DramDevice &dram, Cycle now)
{
    (void)dram; // bank-ready state comes through the index
    TEMPO_ASSERT(!txq.empty(ch), "pick on empty queue");
    // Shallow queues dominate real runs: a single queued request is
    // the argmax by definition, no scoring needed.
    if (txq.size(ch) == 1)
        return txq.seqHead(ch);
    std::uint32_t best = TxQueue::kNone;
    unsigned __int128 best_key = 0; // loses to every real packed key
    txq.forEachCandidate(
        ch, now,
        [&](std::uint32_t id, const QueuedRequest &entry, bool row_hit,
            bool bank_ready) {
            const unsigned __int128 key =
                scoreKey(entry, row_hit, bank_ready, now).packed();
            if (key > best_key) {
                best = id;
                best_key = key;
            }
        });
    TEMPO_ASSERT(best != TxQueue::kNone, "no candidate in non-empty queue");
    return best;
}

} // namespace tempo
