// MemRequest is a plain struct; this file anchors the header in the build.
#include "mc/request.hh"
