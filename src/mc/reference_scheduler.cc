#include "mc/reference_scheduler.hh"

#include "common/log.hh"

namespace tempo {

std::uint32_t
RefFrFcfsScheduler::pick(const TxQueue &txq, unsigned ch,
                         const DramDevice &dram, Cycle now)
{
    TEMPO_ASSERT(!txq.empty(ch), "pick on empty queue");
    std::uint32_t best = TxQueue::kNone;
    SchedKey best_key{};
    for (std::uint32_t id = txq.seqHead(ch); id != TxQueue::kNone;
         id = txq.seqNext(id)) {
        const QueuedRequest &entry = txq.entry(id);
        const bool row_hit = dram.wouldRowHit(entry.req.paddr);
        const bool bank_ready = dram.bankReadyAt(entry.req.paddr) <= now;
        const SchedKey key = scoreKey(entry, row_hit, bank_ready, now);
        if (best == TxQueue::kNone || key > best_key) {
            best = id;
            best_key = key;
        }
    }
    TEMPO_ASSERT(best != TxQueue::kNone, "no candidate in non-empty queue");
    return best;
}

std::uint32_t
RefBlissScheduler::pick(const TxQueue &txq, unsigned ch,
                        const DramDevice &dram, Cycle now)
{
    TEMPO_ASSERT(!txq.empty(ch), "pick on empty queue");
    maybeClear(now);

    if (pendingPrefetchAffinity_) {
        for (std::uint32_t id = txq.seqHead(ch); id != TxQueue::kNone;
             id = txq.seqNext(id)) {
            const QueuedRequest &entry = txq.entry(id);
            if (entry.req.kind == ReqKind::TempoPrefetch
                && entry.req.app == affinityApp_)
                return id;
        }
    }

    std::uint32_t best = TxQueue::kNone;
    SchedKey best_key{};
    for (std::uint32_t id = txq.seqHead(ch); id != TxQueue::kNone;
         id = txq.seqNext(id)) {
        const QueuedRequest &entry = txq.entry(id);
        const bool row_hit = dram.wouldRowHit(entry.req.paddr);
        const bool bank_ready = dram.bankReadyAt(entry.req.paddr) <= now;
        const SchedKey key = blissKey(entry, row_hit, bank_ready, now);
        if (best == TxQueue::kNone || key > best_key) {
            best = id;
            best_key = key;
        }
    }
    TEMPO_ASSERT(best != TxQueue::kNone, "no candidate in non-empty queue");
    return best;
}

} // namespace tempo
