/**
 * @file
 * The BLISS blacklisting memory scheduler (Subramanian et al., ICCD 2014 /
 * TPDS 2016) with the paper's TEMPO adaptations (Sec. 4.3):
 *
 *  - applications issuing too many *consecutive* requests are blacklisted
 *    for a clearing interval, deprioritizing interference-causing apps;
 *  - TEMPO prefetches increment the consecutive counter at a reduced,
 *    configurable weight (the paper finds half weight best — Fig. 16L);
 *  - after a page-table access is served, its TEMPO prefetch is served
 *    before the controller switches to another application's stream.
 *
 * Picks are incremental: the affinity rule resolves through the TxQueue
 * per-app prefetch heads, and the blacklist-aware argmax scores the same
 * candidate heads as FR-FCFS — every entry of one (bank, app, group)
 * sub-FIFO shares its blacklist status, so heads still dominate.
 */

#ifndef TEMPO_MC_BLISS_HH
#define TEMPO_MC_BLISS_HH

#include <vector>

#include "mc/scheduler.hh"

namespace tempo {

class BlissScheduler : public FrFcfsScheduler
{
  public:
    explicit BlissScheduler(const SchedulerConfig &cfg);

    std::uint32_t pick(const TxQueue &txq, unsigned ch,
                       const DramDevice &dram, Cycle now) override;

    void served(const QueuedRequest &entry, Cycle now) override;

    /** Is @p app currently blacklisted? (exposed for tests) */
    bool isBlacklisted(AppId app) const;

    /** Number of blacklisting episodes so far. */
    std::uint64_t blacklistEvents() const { return blacklistEvents_; }

  protected:
    void maybeClear(Cycle now);

    /** scoreKey with the not-blacklisted bit folded in above every base
     * class (blacklisting dominates even the starvation class, as in
     * the original bit-packed encoding). */
    SchedKey
    blissKey(const QueuedRequest &entry, bool row_hit, bool bank_ready,
             Cycle now) const
    {
        SchedKey key = scoreKey(entry, row_hit, bank_ready, now);
        if (!isBlacklisted(entry.req.app))
            key.klass |= kNotBlacklistedBit;
        return key;
    }

    static constexpr std::uint64_t kNotBlacklistedBit = 1ull << 8;

    /** Blacklist as a flat per-app flag array: isBlacklisted runs once
     * per pick candidate, so it must be an indexed load, not a hash
     * probe. Grown on demand; app ids are small dense integers. */
    std::vector<std::uint8_t> blacklist_;
    AppId lastApp_ = ~AppId{0};
    unsigned consecutive_ = 0;
    Cycle lastClear_ = 0;
    std::uint64_t blacklistEvents_ = 0;

    /** Set when the last served request was a PT access: serve that app's
     * TEMPO prefetch next (paper's stream-switch rule). */
    bool pendingPrefetchAffinity_ = false;
    AppId affinityApp_ = 0;
};

} // namespace tempo

#endif // TEMPO_MC_BLISS_HH
