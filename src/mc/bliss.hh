/**
 * @file
 * The BLISS blacklisting memory scheduler (Subramanian et al., ICCD 2014 /
 * TPDS 2016) with the paper's TEMPO adaptations (Sec. 4.3):
 *
 *  - applications issuing too many *consecutive* requests are blacklisted
 *    for a clearing interval, deprioritizing interference-causing apps;
 *  - TEMPO prefetches increment the consecutive counter at a reduced,
 *    configurable weight (the paper finds half weight best — Fig. 16L);
 *  - after a page-table access is served, its TEMPO prefetch is served
 *    before the controller switches to another application's stream.
 */

#ifndef TEMPO_MC_BLISS_HH
#define TEMPO_MC_BLISS_HH

#include <unordered_map>
#include <unordered_set>

#include "mc/scheduler.hh"

namespace tempo {

class BlissScheduler : public FrFcfsScheduler
{
  public:
    explicit BlissScheduler(const SchedulerConfig &cfg);

    std::size_t pick(const std::vector<QueuedRequest> &queue,
                     const DramDevice &dram, Cycle now) override;

    void served(const QueuedRequest &entry, Cycle now) override;

    /** Is @p app currently blacklisted? (exposed for tests) */
    bool isBlacklisted(AppId app) const;

    /** Number of blacklisting episodes so far. */
    std::uint64_t blacklistEvents() const { return blacklistEvents_; }

  private:
    void maybeClear(Cycle now);

    std::unordered_set<AppId> blacklist_;
    AppId lastApp_ = ~AppId{0};
    unsigned consecutive_ = 0;
    Cycle lastClear_ = 0;
    std::uint64_t blacklistEvents_ = 0;

    /** Set when the last served request was a PT access: serve that app's
     * TEMPO prefetch next (paper's stream-switch rule). */
    bool pendingPrefetchAffinity_ = false;
    AppId affinityApp_ = 0;
};

} // namespace tempo

#endif // TEMPO_MC_BLISS_HH
