/**
 * @file
 * The memory controller: an indexed per-channel transaction queue, a
 * pluggable scheduler, and TEMPO's additions — the PT? detector that
 * recognizes tagged leaf page-table requests, and the Prefetch Engine FSM
 * that turns a completed PT read into a post-translation prefetch (paper
 * Sec. 4.1).
 *
 * Requests live in one TxQueue slot from submit to completion: the queue
 * decodes DRAM coordinates once at enqueue, dispatch unlinks the slot
 * from the scheduling index but keeps it as the in-flight record, and the
 * completion event releases it. Nothing is copied or compacted in
 * between.
 */

#ifndef TEMPO_MC_MEMORY_CONTROLLER_HH
#define TEMPO_MC_MEMORY_CONTROLLER_HH

#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/event_queue.hh"
#include "common/types.hh"
#include "dram/dram.hh"
#include "mc/bliss.hh"
#include "mc/request.hh"
#include "mc/scheduler.hh"
#include "mc/tx_queue.hh"
#include "stats/stats.hh"

namespace tempo {

/** Which scheduling policy the controller uses. */
enum class SchedKind : std::uint8_t { FrFcfs, Bliss };

/** Memory controller configuration, including all TEMPO knobs. */
struct McConfig {
    SchedKind sched = SchedKind::FrFcfs;

    /** Master TEMPO switch: detect tagged PT requests and prefetch. */
    bool tempoEnabled = false;
    /** Also push the prefetched line into the LLC (vs row-buffer only). */
    bool tempoLlcFill = true;
    /** Anticipation delay: cycles a PT row stays open after an access in
     * case more PT requests to the same row arrive (Fig. 15; best 10). */
    Cycle tempoPtRowHold = 10;
    /** Grace period: cycles a prefetched row stays open so the replay can
     * row-hit (Fig. 16 right; best 15). */
    Cycle tempoGracePeriod = 15;
    /** Use the Sec. 4.3(b) PT-group / prefetch-group queue ordering. */
    bool tempoGrouping = true;
    /** Cycles the Prefetch Engine needs to extract the PPN and form the
     * prefetch address. */
    Cycle prefetchEngineDelay = 2;
    /** Prefetches are dropped when a channel's queue is deeper than this
     * (the paper's "pathological" case, Sec. 6.1). */
    std::size_t prefetchDropDepth = 48;

    SchedulerConfig scheduler;
};

/**
 * The controller proper. All timing flows through the shared EventQueue:
 * submit() enqueues a request, the channel kick loop dispatches one
 * transaction per tBurst, and completion callbacks fire in event order.
 */
class MemoryController
{
  public:
    MemoryController(EventQueue &eq, DramDevice &dram,
                     const McConfig &cfg);

    /** Enqueue @p req now. The onComplete callback fires at completion. */
    void submit(MemRequest req);

    /** Allocation-free waiter for prefetch-merge completion. */
    using Waiter = InlineFunction<void(Cycle), kCompletionInlineBytes>;

    /**
     * Hook invoked when a TEMPO prefetch's data arrives: the system
     * installs the line into the LLC here. Arguments: line paddr, app.
     */
    std::function<void(Addr, AppId)> onTempoPrefetchFill;

    /**
     * MSHR-style merge: if a TEMPO prefetch for @p line is currently in
     * flight, register @p waiter to be called at its completion time and
     * return true; the caller must then NOT issue a duplicate demand
     * request. Returns false when no such prefetch is pending.
     */
    bool mergeWithPendingPrefetch(Addr line, Waiter waiter);

    /** True when a TEMPO prefetch for @p line is currently in flight
     * (a mergeWithPendingPrefetch() call would succeed). Lets callers
     * avoid constructing a waiter speculatively: the merge consumes
     * the waiter even when it returns false. */
    bool
    hasPendingPrefetch(Addr line) const
    {
        return pendingPrefetch_.find(lineAddr(line))
            != pendingPrefetch_.end();
    }

    // --- Statistics ---
    std::uint64_t served(ReqKind kind) const;
    std::uint64_t tempoPrefetchesIssued() const { return pfIssued_; }
    std::uint64_t tempoPrefetchesDropped() const { return pfDropped_; }
    std::uint64_t tempoFaultSuppressed() const { return pfFaults_; }
    std::uint64_t rowHitsFor(ReqKind kind) const;
    double avgQueueDelay(ReqKind kind) const;
    std::size_t queueHighWater() const { return highWater_; }

    /** Current Tx-Q occupancy in slots across all channels, counting
     * tagged PT entries twice (the paper's two-slot encoding). O(1):
     * served from the queue's incrementally maintained counter. */
    std::size_t queueOccupancy() const;
    /** TEMPO prefetch-engine slots currently in use. For sampling. */
    std::size_t pendingPrefetchCount() const
    {
        return pendingPrefetch_.size();
    }

    void report(stats::Report &out) const;

    /** Clear served/row/delay counters (warmup support). */
    void resetStats();

    const McConfig &config() const { return cfg_; }

    /** The active scheduler (exposed for tests). */
    Scheduler &scheduler() { return *sched_; }

    /** The indexed transaction queue (exposed for tests). */
    const TxQueue &txQueue() const { return txq_; }

  private:
    struct Channel {
        Cycle busFreeAt = 0;
        bool kickPending = false;
    };

    /** Submit with the target's DRAM coordinates already decoded (the
     * prefetch engine decodes once for its drop check and reuses it). */
    void submitDecoded(MemRequest req, const DramCoord &coord);

    void kick(unsigned ch);
    void scheduleKick(unsigned ch, Cycle when);
    void dispatch(unsigned ch, std::uint32_t id);
    void completed(std::uint32_t slot, const DramResult &result);
    void firePrefetch(const QueuedRequest &pt_entry, Cycle when);

    EventQueue &eq_;
    DramDevice &dram_;
    McConfig cfg_;
    std::unique_ptr<Scheduler> sched_;
    TxQueue txq_;
    std::vector<Channel> channels_;
    std::uint64_t seq_ = 0;

    /** In-flight TEMPO prefetch lines -> replays waiting on them. */
    std::unordered_map<Addr, std::vector<Waiter>> pendingPrefetch_;

    // Statistics, indexed by ReqKind.
    static constexpr std::size_t kKinds = 6;
    std::uint64_t servedCount_[kKinds] = {};
    std::uint64_t rowHitCount_[kKinds] = {};
    std::uint64_t rowMissCount_[kKinds] = {};
    std::uint64_t rowConflictCount_[kKinds] = {};
    double queueDelaySum_[kKinds] = {};
    std::uint64_t pfIssued_ = 0;
    std::uint64_t pfDropped_ = 0;
    std::uint64_t pfFaults_ = 0;
    std::size_t highWater_ = 0;
};

} // namespace tempo

#endif // TEMPO_MC_MEMORY_CONTROLLER_HH
