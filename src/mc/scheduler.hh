/**
 * @file
 * Transaction-queue scheduling policies.
 *
 * FrFcfsScheduler implements classic FR-FCFS (Rixner et al., ISCA 2000):
 * among queued requests prefer row-buffer hits, break ties by age, with a
 * starvation age cap. When TEMPO grouping is enabled it additionally
 * implements the paper's Sec. 4.3(b) ordering: queued page-table requests
 * are drained first, grouped by DRAM row, then TEMPO prefetches grouped by
 * row, then everything else.
 *
 * Both policies pick incrementally from the indexed TxQueue: they score
 * only the candidate heads the index exposes (O(banks) of them) rather
 * than rescanning every queued request. The original flat scans survive
 * in reference_scheduler.hh as the differential-testing oracle.
 *
 * BlissScheduler (see bliss.hh) layers application blacklisting on top.
 */

#ifndef TEMPO_MC_SCHEDULER_HH
#define TEMPO_MC_SCHEDULER_HH

#include <cstdint>

#include "common/types.hh"
#include "dram/dram.hh"
#include "mc/request.hh"
#include "mc/tx_queue.hh"

namespace tempo {

/** Scheduler tuning knobs shared by all policies. */
struct SchedulerConfig {
    /** Requests older than this always win (starvation guard). */
    Cycle starvationLimit = 4000;
    /** Enable the paper's PT-group-first / prefetch-group-next order. */
    bool tempoGrouping = false;
    /** Use the retained flat-scan reference schedulers instead of the
     * indexed ones (test/CI byte-identity knob; results are identical,
     * only pick cost differs). Also forced by the environment variable
     * TEMPO_REFERENCE_SCHEDULER. */
    bool useReferenceScheduler = false;

    // --- BLISS (Subramanian et al., ICCD 2014) ---
    unsigned blissThreshold = 8;      //!< blacklist at this count
    Cycle blissClearInterval = 10000; //!< clear blacklist this often
    unsigned blissNormalWeight = 2;   //!< counter weight, demand
    unsigned blissPrefetchWeight = 1; //!< counter weight, prefetch
    /** Serve a PT access' prefetch before switching app streams. */
    bool blissTempoAffinity = false;
};

/**
 * Scheduling order key, widest priority first: higher klass wins, and
 * within a klass the smaller (older) seq wins. Replaces the old packed
 * `klass << 32 | (~seq & 0xffffffff)` encoding, whose age bonus wrapped
 * after 2^32 submissions and made new requests look oldest; here the
 * class compares above a full-width 64-bit age key. BLISS folds its
 * not-blacklisted bit into klass above every base class.
 */
struct SchedKey {
    std::uint64_t klass = 0;
    std::uint64_t seq = 0;

    /** The key as one 128-bit word — klass above a full-width ~seq —
     * so the hot argmax loop compares branch-free and can carry the
     * incumbent in packed form. Inverting all 64 seq bits is safe
     * where the old 32-bit `~seq & 0xffffffff` was not: it cannot
     * wrap into the klass field. Packed zero loses to every real key
     * (real klass is >= 1: the lowest base class is 2 and the
     * busy-bank step subtracts at most 1), so 0 is the no-candidate
     * sentinel. */
    unsigned __int128
    packed() const
    {
        return (static_cast<unsigned __int128>(klass) << 64) | ~seq;
    }

    friend bool
    operator>(const SchedKey &a, const SchedKey &b)
    {
        return a.packed() > b.packed();
    }
};

/**
 * Scheduling policy interface: given one channel of the indexed
 * transaction queue, pick the slot id to serve next.
 */
class Scheduler
{
  public:
    virtual ~Scheduler() = default;

    /** Pick the next request of channel @p ch; the channel is
     * non-empty. Returns a TxQueue slot id. */
    virtual std::uint32_t pick(const TxQueue &txq, unsigned ch,
                               const DramDevice &dram, Cycle now) = 0;

    /** Informed after the chosen request is dispatched. */
    virtual void served(const QueuedRequest &entry, Cycle now);
};

/** FR-FCFS, optionally with TEMPO's PT/prefetch row grouping. */
class FrFcfsScheduler : public Scheduler
{
  public:
    explicit FrFcfsScheduler(const SchedulerConfig &cfg);

    std::uint32_t pick(const TxQueue &txq, unsigned ch,
                       const DramDevice &dram, Cycle now) override;

  protected:
    /**
     * Score one candidate: the shared base ordering used by the indexed
     * and reference paths, and extended by BLISS. Defined inline so
     * every pick loop — including subclasses in other translation
     * units — can fold it into the candidate walk (it runs once per
     * candidate, and an out-of-line call here costs a measurable
     * fraction of an incremental pick).
     */
    SchedKey
    scoreKey(const QueuedRequest &entry, bool row_hit, bool bank_ready,
             Cycle now) const
    {
        // Priority classes, highest first; within a class, older
        // (smaller seq) requests win (SchedKey's full-width age
        // comparison). Kept branch-free on the request kind: the kind
        // mix is effectively random, so a compare ladder mispredicts
        // once per candidate and dominates an incremental pick.
        std::uint64_t klass;
        if (cfg_.tempoGrouping) {
            // Paper Sec. 4.3(b): PT accesses first (same-row groups form
            // naturally because row-hitting PT accesses outrank the
            // rest, base 6 + row_hit = 7), then TEMPO prefetches grouped
            // by row (4/5 — prefetch timeliness beats ordinary row
            // hits), then ordinary FR-FCFS (2/3).
            static constexpr std::uint64_t kBase[] = {
                2, // Regular
                2, // Replay
                6, // PtWalk
                4, // TempoPrefetch
                2, // ImpPrefetch
                2, // Writeback
            };
            klass = kBase[static_cast<std::size_t>(entry.req.kind)]
                + (row_hit ? 1 : 0);
        } else {
            klass = row_hit ? 4 : 2;
        }

        // Requests to busy banks lose one class step: serving them
        // stalls the pipeline for no benefit while a ready bank waits.
        // Every base class is >= 2, so the step never underflows.
        klass -= bank_ready ? 0 : 1;

        // Starvation guard dominates everything.
        if (now - entry.arrival > cfg_.starvationLimit)
            klass = 15;

        return SchedKey{klass, entry.seq};
    }

    SchedulerConfig cfg_;
};

} // namespace tempo

#endif // TEMPO_MC_SCHEDULER_HH
