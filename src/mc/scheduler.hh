/**
 * @file
 * Transaction-queue scheduling policies.
 *
 * FrFcfsScheduler implements classic FR-FCFS (Rixner et al., ISCA 2000):
 * among queued requests prefer row-buffer hits, break ties by age, with a
 * starvation age cap. When TEMPO grouping is enabled it additionally
 * implements the paper's Sec. 4.3(b) ordering: queued page-table requests
 * are drained first, grouped by DRAM row, then TEMPO prefetches grouped by
 * row, then everything else.
 *
 * BlissScheduler (see bliss.hh) layers application blacklisting on top.
 */

#ifndef TEMPO_MC_SCHEDULER_HH
#define TEMPO_MC_SCHEDULER_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "dram/dram.hh"
#include "mc/request.hh"

namespace tempo {

/** A request sitting in a channel's transaction queue. */
struct QueuedRequest {
    MemRequest req;
    Cycle arrival = 0;
    std::uint64_t seq = 0; //!< global submission order (age tie-break)
};

/** Scheduler tuning knobs shared by all policies. */
struct SchedulerConfig {
    /** Requests older than this always win (starvation guard). */
    Cycle starvationLimit = 4000;
    /** Enable the paper's PT-group-first / prefetch-group-next order. */
    bool tempoGrouping = false;

    // --- BLISS (Subramanian et al., ICCD 2014) ---
    unsigned blissThreshold = 8;      //!< blacklist at this count
    Cycle blissClearInterval = 10000; //!< clear blacklist this often
    unsigned blissNormalWeight = 2;   //!< counter weight, demand
    unsigned blissPrefetchWeight = 1; //!< counter weight, prefetch
    /** Serve a PT access' prefetch before switching app streams. */
    bool blissTempoAffinity = false;
};

/**
 * Scheduling policy interface: given the queued requests of one channel,
 * pick the index to serve next.
 */
class Scheduler
{
  public:
    virtual ~Scheduler() = default;

    /** Pick the next request; @p queue is non-empty. */
    virtual std::size_t pick(const std::vector<QueuedRequest> &queue,
                             const DramDevice &dram, Cycle now) = 0;

    /** Informed after the chosen request is dispatched. */
    virtual void served(const QueuedRequest &entry, Cycle now);
};

/** FR-FCFS, optionally with TEMPO's PT/prefetch row grouping. */
class FrFcfsScheduler : public Scheduler
{
  public:
    explicit FrFcfsScheduler(const SchedulerConfig &cfg);

    std::size_t pick(const std::vector<QueuedRequest> &queue,
                     const DramDevice &dram, Cycle now) override;

  protected:
    /**
     * Score one candidate: higher wins. Exposed to subclasses so BLISS
     * can combine its blacklisting with the same base ordering.
     */
    std::uint64_t baseScore(const QueuedRequest &entry,
                            const DramDevice &dram, Cycle now) const;

    SchedulerConfig cfg_;
};

} // namespace tempo

#endif // TEMPO_MC_SCHEDULER_HH
