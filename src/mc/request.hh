/**
 * @file
 * Memory requests as seen by the memory controller.
 *
 * A leaf page-table request may carry a TEMPO tag: the paper's hardware
 * appends the replay's cache-line index to the walker's request and the
 * Prefetch Engine later combines it with the physical page number read
 * from the PTE (Sec. 4.1). In the simulator the page-table model resolves
 * the PTE at request-creation time, so the tag carries the final replay
 * physical address directly; the two-slot transaction-queue encoding is
 * accounted for in the occupancy statistics.
 */

#ifndef TEMPO_MC_REQUEST_HH
#define TEMPO_MC_REQUEST_HH

#include <cstdint>

#include "common/inline_function.hh"
#include "common/types.hh"

namespace tempo {

/** Who generated a memory request. */
enum class ReqKind : std::uint8_t {
    Regular,       //!< demand access after a TLB hit
    Replay,        //!< demand access replayed after a page table walk
    PtWalk,        //!< page table walker reference
    TempoPrefetch, //!< TEMPO's post-translation prefetch
    ImpPrefetch,   //!< indirect memory prefetcher traffic
    Writeback,     //!< dirty-line eviction from the LLC
};

inline const char *
reqKindName(ReqKind kind)
{
    switch (kind) {
      case ReqKind::Regular: return "regular";
      case ReqKind::Replay: return "replay";
      case ReqKind::PtWalk: return "pt_walk";
      case ReqKind::TempoPrefetch: return "tempo_prefetch";
      case ReqKind::ImpPrefetch: return "imp_prefetch";
      case ReqKind::Writeback: return "writeback";
    }
    return "?";
}

inline bool
isPrefetchKind(ReqKind kind)
{
    return kind == ReqKind::TempoPrefetch || kind == ReqKind::ImpPrefetch;
}

/** TEMPO trigger information attached to leaf page-table requests. */
struct TempoTag {
    bool tagged = false;      //!< walker marked this as a leaf PT access
    bool pteValid = false;    //!< false = page fault: must not prefetch
    Addr replayPaddr = kInvalidAddr; //!< line the replay will fetch
};

/** Result handed to the requester on completion. */
struct MemResult {
    Cycle complete;       //!< data available at the controller
    Cycle queueDelay;     //!< cycles spent waiting in the Tx Q
    std::uint8_t rowEvent; //!< RowEvent as integer (hit/miss/conflict)
};

/** Inline capture capacity for completion callbacks: fits the demand
 * path's (this, context, submit-time) captures without touching the
 * heap; larger captures (walk-chain continuations) fall back. */
inline constexpr std::size_t kCompletionInlineBytes = 64;

/** One request into the memory controller. Move-only: the completion
 * callback is an InlineFunction, so queuing and dispatching a request
 * never heap-allocates for typical captures. */
struct MemRequest {
    Addr paddr = 0;
    bool isWrite = false;
    ReqKind kind = ReqKind::Regular;
    AppId app = 0;
    TempoTag tempo;

    /** Observability walk id this request belongs to (0 = none). Lets
     * the trace recorder join MC and DRAM events back to the walk that
     * caused them; carried but otherwise ignored by the controller. */
    std::uint64_t walkId = 0;

    /** Invoked when the access completes (may be empty). */
    InlineFunction<void(const MemResult &), kCompletionInlineBytes>
        onComplete;
};

/** A request sitting in a channel's transaction queue. */
struct QueuedRequest {
    MemRequest req;
    Cycle arrival = 0;
    std::uint64_t seq = 0; //!< global submission order (age tie-break)
};

} // namespace tempo

#endif // TEMPO_MC_REQUEST_HH
