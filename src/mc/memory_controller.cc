#include "mc/memory_controller.hh"

#include <algorithm>
#include <cstdlib>

#include "common/log.hh"
#include "common/profiler.hh"
#include "mc/reference_scheduler.hh"
#include "obs/obs.hh"

namespace tempo {

namespace {

/** Test/CI knob: force the retained flat-scan reference schedulers.
 * Results are bit-identical; only the pick cost differs. */
bool
envReferenceScheduler()
{
    const char *v = std::getenv("TEMPO_REFERENCE_SCHEDULER");
    return v != nullptr && v[0] != '\0'
        && !(v[0] == '0' && v[1] == '\0');
}

} // namespace

MemoryController::MemoryController(EventQueue &eq, DramDevice &dram,
                                   const McConfig &cfg)
    : eq_(eq), dram_(dram), cfg_(cfg),
      txq_(dram, /*per_app_index=*/cfg.sched == SchedKind::Bliss)
{
    SchedulerConfig sched_cfg = cfg.scheduler;
    sched_cfg.tempoGrouping = cfg.tempoEnabled && cfg.tempoGrouping;
    sched_cfg.blissTempoAffinity = cfg.tempoEnabled;
    const bool use_ref =
        sched_cfg.useReferenceScheduler || envReferenceScheduler();
    switch (cfg.sched) {
      case SchedKind::FrFcfs:
        if (use_ref)
            sched_ = std::make_unique<RefFrFcfsScheduler>(sched_cfg);
        else
            sched_ = std::make_unique<FrFcfsScheduler>(sched_cfg);
        break;
      case SchedKind::Bliss:
        if (use_ref)
            sched_ = std::make_unique<RefBlissScheduler>(sched_cfg);
        else
            sched_ = std::make_unique<BlissScheduler>(sched_cfg);
        break;
    }
    channels_.resize(dram.config().channels);
}

void
MemoryController::submit(MemRequest req)
{
    const DramCoord coord = dram_.map().decode(req.paddr);
    submitDecoded(std::move(req), coord);
}

void
MemoryController::submitDecoded(MemRequest req, const DramCoord &coord)
{
    prof::Scope prof_scope(prof::Component::Mc);
    const unsigned ch = coord.channel;
    Channel &channel = channels_[ch];

    QueuedRequest entry;
    entry.req = std::move(req);
    entry.arrival = eq_.now();
    entry.seq = seq_++;
    const std::uint32_t id = txq_.enqueue(std::move(entry), coord);
    const QueuedRequest &queued = txq_.entry(id);

    // A TEMPO-tagged PT request occupies two Tx Q slots (the paper splits
    // it rather than widening the queue). The high-water mark keeps its
    // historical accounting — channel depth plus the split of the entry
    // just added — while queueOccupancy() reports every split.
    const std::size_t occupancy =
        txq_.size(ch) + (queued.req.tempo.tagged ? 1 : 0);
    highWater_ = std::max(highWater_, occupancy);

    if (auto *o = obs::session()) {
        o->txqEnqueue(eq_.now(), ch,
                      static_cast<std::uint8_t>(queued.req.kind),
                      queued.req.walkId, occupancy);
        if (queued.req.tempo.tagged)
            o->txqSplit(eq_.now(), ch, queued.req.walkId);
    }

    scheduleKick(ch, std::max(eq_.now(), channel.busFreeAt));
}

void
MemoryController::scheduleKick(unsigned ch, Cycle when)
{
    Channel &channel = channels_[ch];
    if (channel.kickPending)
        return;
    channel.kickPending = true;
    eq_.schedule(when, [this, ch] {
        channels_[ch].kickPending = false;
        kick(ch);
    });
}

void
MemoryController::kick(unsigned ch)
{
    prof::Scope prof_scope(prof::Component::Mc);
    Channel &channel = channels_[ch];
    if (txq_.empty(ch))
        return;
    const Cycle now = eq_.now();
    if (now < channel.busFreeAt) {
        scheduleKick(ch, channel.busFreeAt);
        return;
    }
    const std::uint32_t id = sched_->pick(txq_, ch, dram_, now);
    dispatch(ch, id);
    if (!txq_.empty(ch))
        scheduleKick(ch, channel.busFreeAt);
}

void
MemoryController::dispatch(unsigned ch, std::uint32_t id)
{
    Channel &channel = channels_[ch];
    // Unlink from the scheduling index; the slot stays allocated as the
    // in-flight record until completed() takes it. No submit can happen
    // between here and the event schedule below, so the reference is
    // stable.
    txq_.remove(id);
    const QueuedRequest &entry = txq_.entry(id);

    const Cycle now = eq_.now();
    sched_->served(entry, now);

    // TEMPO row holds: PT rows linger for the anticipation delay; rows
    // opened by prefetches linger for the grace period (Sec. 4.3).
    Cycle hold = 0;
    if (cfg_.tempoEnabled) {
        if (entry.req.kind == ReqKind::PtWalk)
            hold = cfg_.tempoPtRowHold;
        else if (entry.req.kind == ReqKind::TempoPrefetch)
            hold = cfg_.tempoGracePeriod;
    }

    const DramResult result = dram_.access(
        entry.req.paddr, entry.req.isWrite,
        entry.req.kind == ReqKind::TempoPrefetch, entry.req.app, now,
        hold);

    if (entry.req.kind == ReqKind::TempoPrefetch) {
        if (auto *o = obs::session()) {
            o->prefetchActivate(now, entry.req.walkId, entry.req.paddr,
                                static_cast<std::uint8_t>(result.event));
        }
    }

    // One transaction occupies the channel's command/data path per burst.
    channel.busFreeAt = now + dram_.config().tBurst;

    eq_.schedule(result.complete,
                 [this, id, result] { completed(id, result); });
}

void
MemoryController::completed(std::uint32_t slot, const DramResult &result)
{
    prof::Scope prof_scope(prof::Component::Mc);
    // Move the request out and free the slot first: the callbacks below
    // may re-entrantly submit() and grow the arena.
    QueuedRequest entry = txq_.take(slot);

    const auto kind_idx = static_cast<std::size_t>(entry.req.kind);
    TEMPO_ASSERT(kind_idx < kKinds, "bad kind");
    ++servedCount_[kind_idx];
    switch (result.event) {
      case RowEvent::Hit: ++rowHitCount_[kind_idx]; break;
      case RowEvent::Miss: ++rowMissCount_[kind_idx]; break;
      case RowEvent::Conflict: ++rowConflictCount_[kind_idx]; break;
    }
    const Cycle queue_delay = result.start - entry.arrival;
    queueDelaySum_[kind_idx] += static_cast<double>(queue_delay);

    // PT? detector + Prefetch Engine: a completed, tagged leaf PT read
    // yields the PTE contents; prefetch the replay's line (Sec. 4.1b).
    if (cfg_.tempoEnabled && entry.req.tempo.tagged) {
        if (!entry.req.tempo.pteValid) {
            ++pfFaults_; // page fault: suppressed (Sec. 4.5)
            if (auto *o = obs::session())
                o->prefetchFault(result.complete, entry.req.walkId);
        } else {
            firePrefetch(entry, result.complete);
        }
    }

    if (entry.req.kind == ReqKind::TempoPrefetch) {
        if (auto *o = obs::session()) {
            o->prefetchFill(result.complete, entry.req.walkId,
                            entry.req.paddr);
        }
        if (onTempoPrefetchFill && cfg_.tempoLlcFill)
            onTempoPrefetchFill(entry.req.paddr, entry.req.app);
        // Release any replay that merged with this prefetch.
        const auto it = pendingPrefetch_.find(entry.req.paddr);
        if (it != pendingPrefetch_.end()) {
            auto waiters = std::move(it->second);
            pendingPrefetch_.erase(it);
            for (auto &waiter : waiters)
                waiter(result.complete);
        }
    }

    if (entry.req.onComplete) {
        MemResult res;
        res.complete = result.complete;
        res.queueDelay = queue_delay;
        res.rowEvent = static_cast<std::uint8_t>(result.event);
        entry.req.onComplete(res);
    }
}

void
MemoryController::firePrefetch(const QueuedRequest &pt_entry, Cycle when)
{
    const Addr target = pt_entry.req.tempo.replayPaddr;
    TEMPO_ASSERT(target != kInvalidAddr, "tagged PT without target");

    // Decode the prefetch line once: the drop check and the delayed
    // submit share the coordinates (lineAddr only clears offset bits
    // below the column field, so the decode matches the full target's).
    const Addr line = lineAddr(target);
    const DramCoord coord = dram_.map().decode(line);
    if (txq_.size(coord.channel) >= cfg_.prefetchDropDepth) {
        ++pfDropped_;
        if (auto *o = obs::session())
            o->prefetchDrop(when, pt_entry.req.walkId, line);
        return;
    }
    ++pfIssued_;
    pendingPrefetch_.try_emplace(line);
    if (auto *o = obs::session())
        o->prefetchIssue(when, pt_entry.req.walkId, line);

    eq_.schedule(when + cfg_.prefetchEngineDelay,
                 [this, line, coord, app = pt_entry.req.app,
                  walk = pt_entry.req.walkId] {
                     MemRequest pf;
                     pf.paddr = line;
                     pf.isWrite = false;
                     pf.kind = ReqKind::TempoPrefetch;
                     pf.app = app;
                     pf.walkId = walk;
                     submitDecoded(std::move(pf), coord);
                 });
}

bool
MemoryController::mergeWithPendingPrefetch(Addr line, Waiter waiter)
{
    const auto it = pendingPrefetch_.find(lineAddr(line));
    if (it == pendingPrefetch_.end())
        return false;
    it->second.push_back(std::move(waiter));
    return true;
}

std::size_t
MemoryController::queueOccupancy() const
{
    return txq_.totalOccupancy();
}

std::uint64_t
MemoryController::served(ReqKind kind) const
{
    return servedCount_[static_cast<std::size_t>(kind)];
}

std::uint64_t
MemoryController::rowHitsFor(ReqKind kind) const
{
    return rowHitCount_[static_cast<std::size_t>(kind)];
}

double
MemoryController::avgQueueDelay(ReqKind kind) const
{
    const auto idx = static_cast<std::size_t>(kind);
    return servedCount_[idx]
        ? queueDelaySum_[idx] / static_cast<double>(servedCount_[idx])
        : 0.0;
}

void
MemoryController::resetStats()
{
    for (std::size_t i = 0; i < kKinds; ++i) {
        servedCount_[i] = 0;
        rowHitCount_[i] = 0;
        rowMissCount_[i] = 0;
        rowConflictCount_[i] = 0;
        queueDelaySum_[i] = 0;
    }
    pfIssued_ = 0;
    pfDropped_ = 0;
    pfFaults_ = 0;
    highWater_ = 0;
}

void
MemoryController::report(stats::Report &out) const
{
    static const ReqKind kinds[] = {
        ReqKind::Regular, ReqKind::Replay, ReqKind::PtWalk,
        ReqKind::TempoPrefetch, ReqKind::ImpPrefetch,
        ReqKind::Writeback};
    for (ReqKind kind : kinds) {
        const auto idx = static_cast<std::size_t>(kind);
        const std::string prefix = std::string(reqKindName(kind)) + ".";
        out.add(prefix + "served", servedCount_[idx]);
        out.add(prefix + "row_hits", rowHitCount_[idx]);
        out.add(prefix + "row_conflicts", rowConflictCount_[idx]);
        out.add(prefix + "avg_queue_delay", avgQueueDelay(kind));
    }
    out.add("tempo.prefetches_issued", pfIssued_);
    out.add("tempo.prefetches_dropped", pfDropped_);
    out.add("tempo.fault_suppressed", pfFaults_);
    out.add("queue_high_water", static_cast<std::uint64_t>(highWater_));
}

} // namespace tempo
