#include "mc/tx_queue.hh"

#include <algorithm>

namespace tempo {

TxQueue::TxQueue(DramDevice &dram, bool per_app_index)
    : dram_(dram),
      subRowFactor_(dram.config().subRowAlloc == SubRowAlloc::None
                        ? 1
                        : dram.config().subRowCount),
      perAppIndex_(per_app_index)
{
    channels_.resize(dram.config().channels);
    banks_.resize(dram.config().totalBanks());
    activeBanks_.resize(dram.config().channels);
    dram_.setRowListener(this);
    // A device constructed before the controller may already hold open
    // rows (tests warm the row buffer directly); start synchronized.
    dram_.visitOpenRows([this](unsigned fb, Addr row, unsigned segment) {
        rowOpened(fb, row, segment);
    });
}

TxQueue::~TxQueue()
{
    dram_.setRowListener(nullptr);
}

std::uint32_t
TxQueue::alloc()
{
    if (freeHead_ == kNone) {
        slots_.emplace_back();
        return static_cast<std::uint32_t>(slots_.size() - 1);
    }
    const std::uint32_t id = freeHead_;
    freeHead_ = slots_[id].nextFree;
    return id;
}

std::uint16_t
TxQueue::appIndex(AppId app)
{
    if (!perAppIndex_)
        return 0;
    const auto it = appIdx_.find(app);
    if (it != appIdx_.end())
        return it->second;
    const auto idx = static_cast<std::uint16_t>(appIdx_.size());
    TEMPO_ASSERT(idx < 0xffff, "app index overflows its slot field");
    appIdx_.emplace(app, idx);
    return idx;
}

std::uint32_t
TxQueue::enqueue(QueuedRequest entry, const DramCoord &coord)
{
    const std::uint32_t id = alloc();
    Slot &slot = slots_[id];
    slot.entry = std::move(entry);
    slot.coord = coord;
    const unsigned segment =
        dram_.config().subRowAlloc == SubRowAlloc::None
        ? 0
        : dram_.map().segmentOfCol(coord.col,
                                   dram_.config().subRowCount);
    slot.rowKey = rowKeyOf(coord.row, segment);
    slot.flatBank = coord.flatBank(dram_.config());
    slot.appIdx = appIndex(slot.entry.req.app);
    slot.group = txGroupOf(slot.entry.req.kind);
    slot.queued = true;
    slot.seqPrev = slot.seqNext = kNone;
    slot.fifoPrev = slot.fifoNext = kNone;
    slot.rowPrev = slot.rowNext = kNone;

    // Channel seq list: append (submission order == age order).
    ChannelIndex &ch = channels_[coord.channel];
    if (ch.seqTail == kNone) {
        ch.seqHead = ch.seqTail = id;
    } else {
        TEMPO_ASSERT(slots_[ch.seqTail].entry.seq < slot.entry.seq
                         && slots_[ch.seqTail].entry.arrival
                             <= slot.entry.arrival,
                     "out-of-order enqueue breaks the age index");
        slot.seqPrev = ch.seqTail;
        slots_[ch.seqTail].seqNext = id;
        ch.seqTail = id;
    }
    ch.count += 1;
    const std::size_t slots_used = slot.entry.req.tempo.tagged ? 2 : 1;
    ch.occupancy += slots_used;
    totalCount_ += 1;
    totalOccupancy_ += slots_used;

    // (bank, app, group) sub-FIFO: append at tail.
    BankIndex &bank = banks_[slot.flatBank];
    const std::uint32_t pair_idx =
        slot.appIdx * kNumTxGroups + slot.group;
    if (bank.pairs.size() <= pair_idx)
        bank.pairs.resize((slot.appIdx + 1u) * kNumTxGroups);
    Pair &pair = bank.pairs[pair_idx];
    if (pair.fifo.tail == kNone) {
        // Sole entry: it is the head, and forEachCandidate checks the
        // head's row-hit status directly — skip the bucket (the lazy-
        // bucket invariant; the shallow-queue common case pays no
        // lookaside maintenance at all).
        pair.fifo.head = pair.fifo.tail = id;
        slot.inRowBucket = false;
    } else {
        slot.fifoPrev = pair.fifo.tail;
        slots_[pair.fifo.tail].fifoNext = id;
        pair.fifo.tail = id;

        // Row-hit lookaside bucket for this entry's (row, segment).
        RowBucket *bucket = nullptr;
        for (RowBucket &candidate : pair.rows) {
            if (candidate.key == slot.rowKey) {
                bucket = &candidate;
                break;
            }
        }
        if (bucket == nullptr) {
            pair.rows.push_back(RowBucket{slot.rowKey, List{}});
            bucket = &pair.rows.back();
        }
        if (bucket->list.tail == kNone) {
            bucket->list.head = bucket->list.tail = id;
        } else {
            slot.rowPrev = bucket->list.tail;
            slots_[bucket->list.tail].rowNext = id;
            bucket->list.tail = id;
        }
        slot.inRowBucket = true;
    }

    if (pair.count++ == 0) {
        pair.activePos =
            static_cast<std::uint32_t>(bank.activePairs.size());
        bank.activePairs.push_back(pair_idx);
    }
    if (bank.count++ == 0) {
        bank.activePos =
            static_cast<std::uint32_t>(activeBanks_[coord.channel].size());
        activeBanks_[coord.channel].push_back(slot.flatBank);
    }
    return id;
}

void
TxQueue::remove(std::uint32_t id)
{
    Slot &slot = slots_[id];
    TEMPO_ASSERT(slot.queued, "remove of a non-queued slot");
    slot.queued = false;
    const unsigned ch_id = slot.coord.channel;
    ChannelIndex &ch = channels_[ch_id];

    // Seq list.
    if (slot.seqPrev != kNone)
        slots_[slot.seqPrev].seqNext = slot.seqNext;
    else
        ch.seqHead = slot.seqNext;
    if (slot.seqNext != kNone)
        slots_[slot.seqNext].seqPrev = slot.seqPrev;
    else
        ch.seqTail = slot.seqPrev;

    BankIndex &bank = banks_[slot.flatBank];
    const std::uint32_t pair_idx =
        slot.appIdx * kNumTxGroups + slot.group;
    Pair &pair = bank.pairs[pair_idx];

    // Sub-FIFO.
    if (slot.fifoPrev != kNone)
        slots_[slot.fifoPrev].fifoNext = slot.fifoNext;
    else
        pair.fifo.head = slot.fifoNext;
    if (slot.fifoNext != kNone)
        slots_[slot.fifoNext].fifoPrev = slot.fifoPrev;
    else
        pair.fifo.tail = slot.fifoPrev;

    // Row-hit lookaside; drop the bucket once empty. A head that was
    // enqueued into an empty FIFO never joined a bucket.
    if (slot.inRowBucket) {
        std::size_t bucket_pos = pair.rows.size();
        for (std::size_t i = 0; i < pair.rows.size(); ++i) {
            if (pair.rows[i].key == slot.rowKey) {
                bucket_pos = i;
                break;
            }
        }
        TEMPO_ASSERT(bucket_pos < pair.rows.size(),
                     "slot missing its row bucket");
        List &row_list = pair.rows[bucket_pos].list;
        if (slot.rowPrev != kNone)
            slots_[slot.rowPrev].rowNext = slot.rowNext;
        else
            row_list.head = slot.rowNext;
        if (slot.rowNext != kNone)
            slots_[slot.rowNext].rowPrev = slot.rowPrev;
        else
            row_list.tail = slot.rowPrev;
        if (row_list.head == kNone) {
            pair.rows[bucket_pos] = pair.rows.back();
            pair.rows.pop_back();
        }
        slot.inRowBucket = false;
    }

    if (--pair.count == 0) {
        // Swap-remove from the bank's active-pair list.
        const std::uint32_t moved = bank.activePairs.back();
        bank.activePairs[pair.activePos] = moved;
        bank.pairs[moved].activePos = pair.activePos;
        bank.activePairs.pop_back();
        pair.activePos = kNone;
    }
    if (--bank.count == 0) {
        // Swap-remove from the channel's active-bank list.
        std::vector<std::uint32_t> &active = activeBanks_[ch_id];
        const std::uint32_t moved = active.back();
        active[bank.activePos] = moved;
        banks_[moved].activePos = bank.activePos;
        active.pop_back();
        bank.activePos = kNone;
    }

    ch.count -= 1;
    const std::size_t slots_used = slot.entry.req.tempo.tagged ? 2 : 1;
    ch.occupancy -= slots_used;
    totalCount_ -= 1;
    totalOccupancy_ -= slots_used;
}

void
TxQueue::release(std::uint32_t id)
{
    TEMPO_ASSERT(!slots_[id].queued, "release of a queued slot");
    // The caller did not take the entry: clear it so captured
    // resources (completion-callback state) don't outlive the request
    // in the freelist.
    slots_[id].entry = QueuedRequest{};
    slots_[id].nextFree = freeHead_;
    freeHead_ = id;
}

QueuedRequest
TxQueue::take(std::uint32_t id)
{
    TEMPO_ASSERT(!slots_[id].queued, "take of a queued slot");
    QueuedRequest entry = std::move(slots_[id].entry);
    // Moved-from fields hold no resources; skip release()'s clearing
    // reassignment on this per-completion path and push the slot
    // straight onto the freelist.
    slots_[id].nextFree = freeHead_;
    freeHead_ = id;
    return entry;
}

std::size_t
TxQueue::bruteForceOccupancy() const
{
    std::size_t total = 0;
    for (unsigned ch = 0; ch < channels(); ++ch) {
        for (std::uint32_t id = seqHead(ch); id != kNone;
             id = seqNext(id)) {
            total += slots_[id].entry.req.tempo.tagged ? 2 : 1;
        }
    }
    return total;
}

std::uint32_t
TxQueue::minSeqPrefetch(unsigned ch, AppId app) const
{
    TEMPO_ASSERT(perAppIndex_,
                 "minSeqPrefetch needs the per-app index");
    const auto it = appIdx_.find(app);
    if (it == appIdx_.end())
        return kNone;
    const std::uint32_t pair_idx =
        static_cast<std::uint32_t>(it->second) * kNumTxGroups
        + kGroupTempoPf;
    std::uint32_t best = kNone;
    for (const std::uint32_t fb : activeBanks_[ch]) {
        const BankIndex &bank = banks_[fb];
        if (bank.pairs.size() <= pair_idx)
            continue;
        const std::uint32_t head = bank.pairs[pair_idx].fifo.head;
        if (head == kNone)
            continue;
        if (best == kNone
            || slots_[head].entry.seq < slots_[best].entry.seq) {
            best = head;
        }
    }
    return best;
}

void
TxQueue::rowOpened(unsigned flat_bank, Addr row, unsigned segment)
{
    banks_[flat_bank].openRows.push_back(rowKeyOf(row, segment));
}

void
TxQueue::rowClosed(unsigned flat_bank, Addr row, unsigned segment)
{
    std::vector<std::uint64_t> &open = banks_[flat_bank].openRows;
    const auto it =
        std::find(open.begin(), open.end(), rowKeyOf(row, segment));
    TEMPO_ASSERT(it != open.end(), "close of a row not tracked open");
    *it = open.back();
    open.pop_back();
}

} // namespace tempo
