#include "trace/trace.hh"

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "common/log.hh"

namespace tempo {
namespace {

constexpr char kMagic[4] = {'T', 'M', 'P', 'O'};
constexpr std::uint32_t kVersion = 1;

struct FileCloser {
    void
    operator()(std::FILE *file) const
    {
        if (file)
            std::fclose(file);
    }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

template <typename T>
void
writeScalar(std::FILE *file, T value)
{
    if (std::fwrite(&value, sizeof(value), 1, file) != 1)
        TEMPO_FATAL("short write to trace file");
}

template <typename T>
T
readScalar(std::FILE *file)
{
    T value{};
    if (std::fread(&value, sizeof(value), 1, file) != 1)
        TEMPO_FATAL("short read from trace file");
    return value;
}

} // namespace

Trace
recordTrace(Workload &workload, std::uint64_t count)
{
    Trace trace;
    trace.name = workload.name();
    trace.refs.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i)
        trace.refs.push_back(workload.next());
    return trace;
}

void
writeTrace(const Trace &trace, const std::string &path)
{
    FilePtr file(std::fopen(path.c_str(), "wb"));
    if (!file)
        TEMPO_FATAL("cannot open trace file for writing: ", path);

    if (std::fwrite(kMagic, sizeof(kMagic), 1, file.get()) != 1)
        TEMPO_FATAL("short write to trace file");
    writeScalar(file.get(), kVersion);
    writeScalar(file.get(),
                static_cast<std::uint64_t>(trace.refs.size()));
    writeScalar(file.get(),
                static_cast<std::uint32_t>(trace.name.size()));
    if (!trace.name.empty()
        && std::fwrite(trace.name.data(), trace.name.size(), 1,
                       file.get()) != 1) {
        TEMPO_FATAL("short write to trace file");
    }

    for (const MemRef &ref : trace.refs) {
        writeScalar(file.get(), ref.vaddr);
        writeScalar(file.get(), ref.indirectFuture);
        writeScalar(file.get(), ref.stream);
        const std::uint8_t flags =
            static_cast<std::uint8_t>(ref.isWrite ? 1 : 0)
            | static_cast<std::uint8_t>(ref.indirect ? 2 : 0);
        writeScalar(file.get(), flags);
    }
}

Trace
readTrace(const std::string &path)
{
    FilePtr file(std::fopen(path.c_str(), "rb"));
    if (!file)
        TEMPO_FATAL("cannot open trace file: ", path);

    char magic[4];
    if (std::fread(magic, sizeof(magic), 1, file.get()) != 1
        || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
        TEMPO_FATAL("not a TEMPO trace file: ", path);
    }
    const auto version = readScalar<std::uint32_t>(file.get());
    if (version != kVersion)
        TEMPO_FATAL("unsupported trace version ", version);

    Trace trace;
    const auto count = readScalar<std::uint64_t>(file.get());
    const auto name_len = readScalar<std::uint32_t>(file.get());
    trace.name.resize(name_len);
    if (name_len > 0
        && std::fread(trace.name.data(), name_len, 1, file.get())
            != 1) {
        TEMPO_FATAL("short read from trace file");
    }

    trace.refs.resize(count);
    for (MemRef &ref : trace.refs) {
        ref.vaddr = readScalar<std::uint64_t>(file.get());
        ref.indirectFuture = readScalar<std::uint64_t>(file.get());
        ref.stream = readScalar<std::uint32_t>(file.get());
        const auto flags = readScalar<std::uint8_t>(file.get());
        ref.isWrite = (flags & 1) != 0;
        ref.indirect = (flags & 2) != 0;
    }
    return trace;
}

TraceWorkload::TraceWorkload(Trace trace, unsigned mlp_hint)
    : trace_(std::move(trace)), mlpHint_(mlp_hint)
{
    TEMPO_ASSERT(!trace_.refs.empty(), "empty trace");
}

MemRef
TraceWorkload::next()
{
    if (cursor_ >= trace_.refs.size()) {
        if (!warnedWrap_) {
            TEMPO_WARN("trace '", trace_.name,
                       "' wrapped around; statistics past this point "
                       "replay earlier behaviour");
            warnedWrap_ = true;
        }
        cursor_ = 0;
    }
    return trace_.refs[cursor_++];
}

Addr
TraceWorkload::footprintBytes() const
{
    if (footprintCache_ == 0) {
        Addr lo = ~Addr{0}, hi = 0;
        for (const MemRef &ref : trace_.refs) {
            lo = std::min(lo, ref.vaddr);
            hi = std::max(hi, ref.vaddr);
        }
        footprintCache_ = hi >= lo ? hi - lo + 1 : 0;
    }
    return footprintCache_;
}

} // namespace tempo
