/**
 * @file
 * Trace capture and replay.
 *
 * The paper's methodology collects Pin memory traces once and feeds
 * them to the timing simulator many times (Sec. 5.2). This module
 * provides the same workflow for the synthetic generators (or any
 * Workload): record a reference stream to a compact binary file, then
 * replay it as a Workload — bit-identical across runs and machines, so
 * traces can be shared between experiments.
 *
 * File format (little-endian):
 *   header:  magic "TMPO" | u32 version | u64 count | u32 name_len |
 *            name bytes
 *   records: u64 vaddr | u64 indirectFuture | u32 stream | u8 flags
 *            (bit0 = isWrite, bit1 = indirect)
 */

#ifndef TEMPO_TRACE_TRACE_HH
#define TEMPO_TRACE_TRACE_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "workloads/workload.hh"

namespace tempo {

/** In-memory trace: a named sequence of references. */
struct Trace {
    std::string name;
    std::vector<MemRef> refs;
};

/** Capture @p count references from @p workload. */
Trace recordTrace(Workload &workload, std::uint64_t count);

/** Serialize @p trace to @p path. Fatal on I/O failure. */
void writeTrace(const Trace &trace, const std::string &path);

/** Load a trace file. Fatal on missing/corrupt files. */
Trace readTrace(const std::string &path);

/**
 * A Workload that replays a trace, looping when the simulator asks for
 * more references than the trace holds (with a warning the first
 * time). mlpHint can be supplied since the file does not carry it.
 */
class TraceWorkload : public Workload
{
  public:
    explicit TraceWorkload(Trace trace, unsigned mlp_hint = 4);

    const std::string &name() const override { return trace_.name; }
    MemRef next() override;
    Addr footprintBytes() const override;
    unsigned mlpHint() const override { return mlpHint_; }

    std::uint64_t size() const { return trace_.refs.size(); }

  private:
    Trace trace_;
    std::size_t cursor_ = 0;
    unsigned mlpHint_;
    bool warnedWrap_ = false;
    mutable Addr footprintCache_ = 0;
};

} // namespace tempo

#endif // TEMPO_TRACE_TRACE_HH
