/**
 * @file
 * tempo_sweep: sweep one configuration key (any key the INI config
 * files accept) across a list of values and print a CSV of runtime,
 * energy, and the headline statistics — optionally with a TEMPO
 * comparison column per point.
 *
 *   tempo_sweep --workload xsbench --key dram.row_policy \
 *               --values open,closed,adaptive --compare
 *   tempo_sweep --workload mcf --key mc.pt_row_hold --values 0,5,10,15 \
 *               --tempo --jobs 8 --json sweep.json
 *   tempo_sweep --workload graph500 --key vm.frag \
 *               --values 0,0.25,0.5,0.75 --compare --refs 200000
 *
 * The key syntax is "<section>.<key>" from src/cli/config_file.hh.
 * All points run concurrently on the experiment engine (--jobs N,
 * default all cores); output is byte-identical for any job count.
 */

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "cli/config_file.hh"
#include "cli/strings.hh"
#include "common/profiler.hh"
#include "core/experiment.hh"
#include "fabric/http.hh"
#include "fabric/snapshot.hh"
#include "obs/obs.hh"

namespace {

using namespace tempo;

struct SweepArgs {
    std::string workload = "xsbench";
    std::string key;
    std::vector<std::string> values;
    std::uint64_t refs = 150000;
    std::uint64_t warmup = 0;
    unsigned jobs = 0;
    unsigned shards = 0;
    unsigned retries = 0;
    double pointTimeout = 0;
    std::string checkpointPath;
    std::string jsonPath;
    bool tempo = false;
    bool compare = false;
    bool profile = false;
    bool referenceTranslator = false;
    bool referenceCache = false;
    unsigned progressEvery = 0;
    bool serve = false;
    std::string serveAddr; //!< "" = 127.0.0.1:8377
};

[[noreturn]] void
usage(int status)
{
    std::fputs(
        "usage: tempo_sweep --key SECTION.KEY --values V1,V2,...\n"
        "  [--workload NAME] [--refs N] [--warmup N]\n"
        "  [--jobs N] [--shards N] [--json PATH] [--profile]\n"
        "  [--reference-translator] [--reference-cache]\n"
        "  [--retries N] [--point-timeout S] [--checkpoint PATH]\n"
        "  [--progress [N]] [--serve [ADDR:PORT]]\n"
        "  [--tempo | --compare]\n"
        "Keys are the INI config keys (src/cli/config_file.hh),\n"
        "e.g. dram.row_policy, mc.pt_row_hold, vm.frag.\n"
        "Points run in parallel (--jobs N, default all cores or the\n"
        "TEMPO_JOBS env var); results are identical at any job count.\n"
        "A failing or timed-out point does not kill the sweep: its row\n"
        "shows the status, details go to stderr and the JSON failures\n"
        "array, and --checkpoint lets a killed sweep resume without\n"
        "re-running finished points.\n"
        "--progress [N] prints a stderr line (done/failed/total,\n"
        "elapsed, ETA) every N completed points (default 10).\n"
        "--serve [ADDR:PORT] starts an embedded HTTP status server\n"
        "(default 127.0.0.1:8377, port 0 = ephemeral): / is a live\n"
        "dashboard, /snapshot.json the machine-readable snapshot.\n"
        "Scale-out: with TEMPO_FABRIC_DIR/TEMPO_FABRIC_ROLE set (see\n"
        "EXPERIMENTS.md \"Fabric sweeps\"), several worker processes\n"
        "share one sweep; --serve then reports the whole fabric (and\n"
        "implies the coordinator role when none is set).\n"
        "Exit status: 0 when at least one\n"
        "point succeeded, 3 when all failed, 2 on usage errors.\n",
        status == 0 ? stdout : stderr);
    std::exit(status);
}

SweepArgs
parseArgs(int argc, char **argv)
{
    SweepArgs args;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                usage(2);
            return argv[++i];
        };
        if (arg == "--workload")
            args.workload = next();
        else if (arg == "--key")
            args.key = next();
        else if (arg == "--values")
            args.values = cli::splitCommas(next());
        else if (arg == "--refs")
            args.refs = std::strtoull(next().c_str(), nullptr, 10);
        else if (arg == "--warmup")
            args.warmup = std::strtoull(next().c_str(), nullptr, 10);
        else if (arg == "--jobs")
            args.jobs = static_cast<unsigned>(
                std::strtoul(next().c_str(), nullptr, 10));
        else if (arg == "--shards")
            args.shards = static_cast<unsigned>(
                std::strtoul(next().c_str(), nullptr, 10));
        else if (arg == "--retries")
            args.retries = static_cast<unsigned>(
                std::strtoul(next().c_str(), nullptr, 10));
        else if (arg == "--point-timeout")
            args.pointTimeout = std::strtod(next().c_str(), nullptr);
        else if (arg == "--checkpoint")
            args.checkpointPath = next();
        else if (arg == "--json")
            args.jsonPath = next();
        else if (arg == "--tempo")
            args.tempo = true;
        else if (arg == "--compare")
            args.compare = true;
        else if (arg == "--profile")
            args.profile = true;
        else if (arg == "--progress") {
            // Optional period: consume the next token only when it is
            // a number (so "--progress --serve" parses).
            args.progressEvery = 10;
            if (i + 1 < argc && argv[i + 1][0] != '\0' &&
                std::string(argv[i + 1]).find_first_not_of(
                    "0123456789") == std::string::npos)
                args.progressEvery = static_cast<unsigned>(
                    std::strtoul(next().c_str(), nullptr, 10));
            if (args.progressEvery == 0)
                args.progressEvery = 10;
        } else if (arg == "--serve") {
            args.serve = true;
            if (i + 1 < argc && argv[i + 1][0] != '-')
                args.serveAddr = next();
        }
        else if (arg == "--reference-translator")
            args.referenceTranslator = true;
        else if (arg == "--reference-cache")
            args.referenceCache = true;
        else if (arg == "--help" || arg == "-h")
            usage(0);
        else
            usage(2);
    }
    if (args.key.empty() || args.values.empty())
        usage(2);
    const std::size_t dot = args.key.find('.');
    if (dot == std::string::npos || dot == 0
        || dot + 1 == args.key.size()) {
        std::fprintf(stderr, "error: --key must be SECTION.KEY\n");
        std::exit(2);
    }
    return args;
}

SystemConfig
configFor(const SweepArgs &args, const std::string &value, bool tempo)
{
    SystemConfig cfg = SystemConfig::skylakeScaled();
    cfg.withTempo(tempo);
    cfg.translator.useReferenceTranslator = args.referenceTranslator;
    cfg.cache.useReferenceCache = args.referenceCache;
    const std::size_t dot = args.key.find('.');
    const std::string ini = "[" + args.key.substr(0, dot) + "]\n"
        + args.key.substr(dot + 1) + " = " + value + "\n";
    cli::applyConfigText(ini, cfg);
    return cfg;
}

} // namespace

int
main(int argc, char **argv)
{
    const SweepArgs args = parseArgs(argc, argv);
    prof::setEnabled(args.profile);
    // Observability is environment-driven here (TEMPO_TRACE_DIR,
    // TEMPO_TRACE_FILTER, TEMPO_TIMESERIES_WINDOW); time series land in
    // the --json output, traces in TEMPO_TRACE_DIR.
    obs::configure(obs::configFromEnv());

    // One point per value, plus the TEMPO twin when comparing. All
    // points are independent: each builds its own config and workload
    // (seeded from the config), so the engine may run them in any
    // order on any thread.
    std::vector<ExperimentPoint> points;
    std::vector<std::vector<std::pair<std::string, std::string>>>
        overrides;
    try {
        for (const std::string &value : args.values) {
            ExperimentPoint base;
            base.workload = args.workload;
            base.config = configFor(args, value, args.tempo);
            base.refs = args.refs;
            base.warmup = args.warmup;
            points.push_back(std::move(base));
            overrides.push_back(
                {{args.key, value},
                 {"mc.tempo", args.tempo ? "true" : "false"}});
            if (args.compare) {
                ExperimentPoint with_tempo;
                with_tempo.workload = args.workload;
                with_tempo.config = configFor(args, value, true);
                with_tempo.refs = args.refs;
                with_tempo.warmup = args.warmup;
                points.push_back(std::move(with_tempo));
                overrides.push_back(
                    {{args.key, value}, {"mc.tempo", "true"}});
            }
        }
    } catch (const std::invalid_argument &error) {
        std::fprintf(stderr, "error: %s\n", error.what());
        return 2;
    }

    // Engine options: environment first (so CI can inject faults), then
    // explicit flags on top.
    ExperimentOptions opts = ExperimentOptions::fromEnv();
    opts.jobs = args.jobs;
    if (args.retries)
        opts.retries = args.retries;
    if (args.pointTimeout > 0)
        opts.pointTimeoutSec = args.pointTimeout;
    if (!args.checkpointPath.empty())
        opts.checkpointPath = args.checkpointPath;
    if (args.shards)
        opts.shards = args.shards;
    // Sharded runs record the domain count (1 app + 1 shared machine)
    // per point; it is invariant across worker counts, so the JSON is
    // byte-identical for --shards 1/2/8.
    if (opts.shards.value_or(0) > 0) {
        for (auto &pairs : overrides)
            pairs.emplace_back("shards", "2");
    }

    if (args.progressEvery)
        opts.progressEvery = args.progressEvery;
    opts.progressLabel = args.workload + ":" + args.key;

    // --serve: embedded status server. With a fabric directory the
    // snapshot merges the whole directory (and absent an explicit
    // role, this process supervises as the coordinator); without one
    // it reports this process's own progress tracker.
    fabric::SweepProgress progress;
    std::unique_ptr<fabric::HttpServer> server;
    if (args.serve) {
        if (!opts.fabricDir.empty() &&
            opts.fabricRole == ExperimentOptions::FabricRole::None)
            opts.fabricRole =
                ExperimentOptions::FabricRole::Coordinator;
        opts.progress = &progress;
        try {
            const auto [host, port] =
                cli::splitHostPort(args.serveAddr, "127.0.0.1", 8377);
            fabric::HttpServer::Provider provider;
            if (!opts.fabricDir.empty()) {
                const std::string dir = opts.fabricDir;
                const double stale = opts.fabricStaleSec;
                provider = [dir, stale] {
                    return fabric::buildDirSnapshotJson(dir, stale);
                };
            } else {
                provider = [&progress] {
                    return progress.snapshotJson();
                };
            }
            server = std::make_unique<fabric::HttpServer>(
                host, port, std::move(provider));
        } catch (const std::exception &error) {
            std::fprintf(stderr, "error: %s\n", error.what());
            return 2;
        }
        std::fprintf(stderr, "serving http://%s:%u/\n",
                     server->host().c_str(), server->port());
    }

    std::vector<RunResult> results;
    try {
        results = runExperiments(points, opts);
    } catch (const std::exception &error) {
        // Only infrastructure errors (bad TEMPO_FAULT_INJECT spec, an
        // unwritable journal) reach here; point failures are captured
        // in the results.
        std::fprintf(stderr, "error: %s\n", error.what());
        return 2;
    }

    std::size_t num_ok = 0;
    for (std::size_t i = 0; i < results.size(); ++i) {
        const RunStatus &status = results[i].status;
        if (status.ok()) {
            ++num_ok;
            continue;
        }
        std::fprintf(stderr,
                     "point %zu (%s, %s=%s): %s after %u attempt(s): "
                     "%s\n",
                     i, points[i].workload.c_str(), args.key.c_str(),
                     args.values[i / (args.compare ? 2 : 1)].c_str(),
                     status.codeName(), status.attempts,
                     status.error.c_str());
    }

    // Pipeline traces (TEMPO_TRACE_DIR only; no --trace flag here).
    if (!obs::config().traceDir.empty()) {
        for (std::size_t i = 0; i < results.size(); ++i) {
            const auto &run_obs = results[i].obs;
            if (!run_obs || !run_obs->cfg.trace)
                continue; // obs off, or point restored from a checkpoint
            const std::string path = obs::config().traceDir
                + "/TRACE_tempo_sweep_" + std::to_string(i) + ".json";
            try {
                obs::writeChromeTrace(path, *run_obs);
            } catch (const std::exception &error) {
                std::fprintf(stderr, "error: %s\n", error.what());
                return 1;
            }
            std::fprintf(stderr, "wrote %s\n", path.c_str());
        }
    }

    std::printf("%s,runtime,energy,tlb_miss_rate,dram_ptw_frac,"
                "superpage_coverage%s\n",
                args.key.c_str(),
                args.compare ? ",tempo_runtime,tempo_perf_gain" : "");

    const std::size_t stride = args.compare ? 2 : 1;
    for (std::size_t v = 0; v < args.values.size(); ++v) {
        const RunResult &base = results[v * stride];
        if (base.status.ok()) {
            std::printf("%s,%llu,%.1f,%.4f,%.4f,%.4f",
                        args.values[v].c_str(),
                        static_cast<unsigned long long>(base.runtime),
                        base.energy.total(),
                        base.report.get("tlb.miss_rate"),
                        base.fracDramPtw(), base.superpageCoverage);
        } else {
            // Keep the column count: status marker in the runtime
            // column, zeros for the measurements.
            std::printf("%s,%s,0,0,0,0", args.values[v].c_str(),
                        base.status.codeName());
        }
        if (args.compare) {
            const RunResult &with_tempo = results[v * stride + 1];
            if (with_tempo.status.ok() && base.status.ok()) {
                std::printf(",%llu,%.4f",
                            static_cast<unsigned long long>(
                                with_tempo.runtime),
                            with_tempo.speedupOver(base));
            } else if (with_tempo.status.ok()) {
                std::printf(",%llu,0",
                            static_cast<unsigned long long>(
                                with_tempo.runtime));
            } else {
                std::printf(",%s,0", with_tempo.status.codeName());
            }
        }
        std::printf("\n");
    }

    if (!args.jsonPath.empty()) {
        std::vector<stats::BenchPoint> bench_points;
        for (std::size_t i = 0; i < results.size(); ++i)
            bench_points.push_back(toBenchPoint(
                points[i].workload, overrides[i], results[i]));
        try {
            stats::writeBenchJson(args.jsonPath, "tempo_sweep",
                                  args.refs,
                                  SystemConfig::skylakeScaled().seed,
                                  bench_points);
        } catch (const std::exception &error) {
            std::fprintf(stderr, "error: %s\n", error.what());
            return 1;
        }
        std::fprintf(stderr, "wrote %s\n", args.jsonPath.c_str());
    }
    return (num_ok == 0 && !results.empty()) ? 3 : 0;
}
