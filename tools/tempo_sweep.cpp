/**
 * @file
 * tempo_sweep: sweep one configuration key (any key the INI config
 * files accept) across a list of values and print a CSV of runtime,
 * energy, and the headline statistics — optionally with a TEMPO
 * comparison column per point.
 *
 *   tempo_sweep --workload xsbench --key dram.row_policy \
 *               --values open,closed,adaptive --compare
 *   tempo_sweep --workload mcf --key mc.pt_row_hold --values 0,5,10,15 \
 *               --tempo
 *   tempo_sweep --workload graph500 --key vm.frag \
 *               --values 0,0.25,0.5,0.75 --compare --refs 200000
 *
 * The key syntax is "<section>.<key>" from src/cli/config_file.hh.
 */

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <vector>

#include "cli/config_file.hh"
#include "core/tempo_system.hh"

namespace {

using namespace tempo;

std::vector<std::string>
splitCommas(const std::string &s)
{
    std::vector<std::string> out;
    std::size_t begin = 0;
    while (begin <= s.size()) {
        const std::size_t comma = s.find(',', begin);
        if (comma == std::string::npos) {
            out.push_back(s.substr(begin));
            break;
        }
        out.push_back(s.substr(begin, comma - begin));
        begin = comma + 1;
    }
    return out;
}

struct SweepArgs {
    std::string workload = "xsbench";
    std::string key;
    std::vector<std::string> values;
    std::uint64_t refs = 150000;
    std::uint64_t warmup = 0;
    bool tempo = false;
    bool compare = false;
};

[[noreturn]] void
usage(int status)
{
    std::fputs(
        "usage: tempo_sweep --key SECTION.KEY --values V1,V2,...\n"
        "  [--workload NAME] [--refs N] [--warmup N]\n"
        "  [--tempo | --compare]\n"
        "Keys are the INI config keys (src/cli/config_file.hh),\n"
        "e.g. dram.row_policy, mc.pt_row_hold, vm.frag.\n",
        status == 0 ? stdout : stderr);
    std::exit(status);
}

SweepArgs
parseArgs(int argc, char **argv)
{
    SweepArgs args;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                usage(2);
            return argv[++i];
        };
        if (arg == "--workload")
            args.workload = next();
        else if (arg == "--key")
            args.key = next();
        else if (arg == "--values")
            args.values = splitCommas(next());
        else if (arg == "--refs")
            args.refs = std::strtoull(next().c_str(), nullptr, 10);
        else if (arg == "--warmup")
            args.warmup = std::strtoull(next().c_str(), nullptr, 10);
        else if (arg == "--tempo")
            args.tempo = true;
        else if (arg == "--compare")
            args.compare = true;
        else if (arg == "--help" || arg == "-h")
            usage(0);
        else
            usage(2);
    }
    if (args.key.empty() || args.values.empty())
        usage(2);
    const std::size_t dot = args.key.find('.');
    if (dot == std::string::npos || dot == 0
        || dot + 1 == args.key.size()) {
        std::fprintf(stderr, "error: --key must be SECTION.KEY\n");
        std::exit(2);
    }
    return args;
}

SystemConfig
configFor(const SweepArgs &args, const std::string &value, bool tempo)
{
    SystemConfig cfg = SystemConfig::skylakeScaled();
    cfg.withTempo(tempo);
    const std::size_t dot = args.key.find('.');
    const std::string ini = "[" + args.key.substr(0, dot) + "]\n"
        + args.key.substr(dot + 1) + " = " + value + "\n";
    cli::applyConfigText(ini, cfg);
    return cfg;
}

RunResult
runPoint(const SweepArgs &args, const SystemConfig &cfg)
{
    TempoSystem system(cfg, makeWorkload(args.workload, cfg.seed));
    return system.run(args.refs, args.warmup);
}

} // namespace

int
main(int argc, char **argv)
{
    const SweepArgs args = parseArgs(argc, argv);

    std::printf("%s,runtime,energy,tlb_miss_rate,dram_ptw_frac,"
                "superpage_coverage%s\n",
                args.key.c_str(),
                args.compare ? ",tempo_runtime,tempo_perf_gain" : "");

    for (const std::string &value : args.values) {
        try {
            const SystemConfig base_cfg =
                configFor(args, value, args.tempo);
            const RunResult base = runPoint(args, base_cfg);
            std::printf("%s,%llu,%.1f,%.4f,%.4f,%.4f", value.c_str(),
                        static_cast<unsigned long long>(base.runtime),
                        base.energy.total(),
                        base.report.get("tlb.miss_rate"),
                        base.fracDramPtw(), base.superpageCoverage);
            if (args.compare) {
                const SystemConfig tempo_cfg =
                    configFor(args, value, true);
                const RunResult with_tempo =
                    runPoint(args, tempo_cfg);
                std::printf(",%llu,%.4f",
                            static_cast<unsigned long long>(
                                with_tempo.runtime),
                            with_tempo.speedupOver(base));
            }
            std::printf("\n");
        } catch (const std::invalid_argument &error) {
            std::fprintf(stderr, "error at value '%s': %s\n",
                         value.c_str(), error.what());
            return 2;
        }
    }
    return 0;
}
