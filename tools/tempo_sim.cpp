/**
 * @file
 * tempo_sim: the command-line simulator driver.
 *
 *   tempo_sim --workload xsbench --refs 500000 --compare
 *   tempo_sim --workload graph500 --tempo --sched bliss --full-report
 *   tempo_sim --workload spmv --trace-out spmv.trace --refs 1000000
 *   tempo_sim --trace-in spmv.trace --compare
 */

#include <cstdio>
#include <fstream>
#include <iostream>
#include <stdexcept>

#include "cli/options.hh"
#include "core/tempo_system.hh"
#include "trace/trace.hh"

namespace {

using namespace tempo;

std::unique_ptr<Workload>
buildWorkload(const cli::Options &options, std::uint64_t seed)
{
    if (!options.traceIn.empty())
        return std::make_unique<TraceWorkload>(
            readTrace(options.traceIn));
    return makeWorkload(options.workload, seed);
}

void
printSummary(const char *label, const RunResult &result)
{
    std::printf("%s:\n", label);
    std::printf("  runtime              : %llu cycles\n",
                static_cast<unsigned long long>(result.runtime));
    std::printf("  energy               : %.1f\n",
                result.energy.total());
    std::printf("  TLB miss rate        : %.2f%%\n",
                100.0 * result.report.get("tlb.miss_rate"));
    std::printf("  DRAM refs PTW/replay : %.1f%% / %.1f%%\n",
                100.0 * result.fracDramPtw(),
                100.0 * result.fracDramReplay());
    std::printf("  superpage coverage   : %.1f%%\n",
                100.0 * result.superpageCoverage);
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace tempo::cli;

    Options options;
    try {
        options = parse({argv + 1, argv + argc});
    } catch (const std::invalid_argument &error) {
        std::fprintf(stderr, "error: %s\n", error.what());
        return 2;
    }
    if (options.help) {
        std::fputs(usage().c_str(), stdout);
        return 0;
    }

    const SystemConfig cfg = toConfig(options);

    if (!options.traceOut.empty()) {
        auto workload = buildWorkload(options, cfg.seed);
        const Trace trace = recordTrace(*workload, options.refs);
        writeTrace(trace, options.traceOut);
        std::printf("recorded %llu refs of %s to %s\n",
                    static_cast<unsigned long long>(trace.refs.size()),
                    trace.name.c_str(), options.traceOut.c_str());
        return 0;
    }

    TempoSystem system(cfg, buildWorkload(options, cfg.seed));
    const RunResult result = system.run(options.refs);
    printSummary(cfg.mc.tempoEnabled ? "TEMPO" : "baseline", result);

    if (options.compare) {
        SystemConfig tempo_cfg = cfg;
        tempo_cfg.withTempo(true);
        TempoSystem tempo_system(tempo_cfg,
                                 buildWorkload(options, tempo_cfg.seed));
        const RunResult with_tempo = tempo_system.run(options.refs);
        printSummary("TEMPO", with_tempo);
        std::printf("\nTEMPO improvement: performance %+.1f%%, "
                    "energy %+.1f%%\n",
                    100.0 * with_tempo.speedupOver(result),
                    100.0 * with_tempo.energySavingOver(result));
    }

    if (options.fullReport) {
        std::printf("\nfull report:\n");
        result.report.printText(std::cout);
    }
    if (!options.csvPath.empty()) {
        std::ofstream csv(options.csvPath);
        if (!csv) {
            std::fprintf(stderr, "error: cannot write %s\n",
                         options.csvPath.c_str());
            return 1;
        }
        result.report.printCsv(csv);
        std::printf("wrote %s\n", options.csvPath.c_str());
    }
    return 0;
}
