/**
 * @file
 * tempo_sim: the command-line simulator driver.
 *
 *   tempo_sim --workload xsbench --refs 500000 --compare
 *   tempo_sim --workload graph500 --tempo --sched bliss --full-report
 *   tempo_sim --workload spmv --trace-out spmv.trace --refs 1000000
 *   tempo_sim --trace-in spmv.trace --compare --json result.json
 *
 * --compare runs baseline and TEMPO as two points on the parallel
 * experiment engine (--jobs N); results are identical at any job
 * count.
 */

#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <stdexcept>

#include "cli/options.hh"
#include "common/profiler.hh"
#include "core/experiment.hh"
#include "obs/obs.hh"
#include "trace/trace.hh"

namespace {

using namespace tempo;

/** A thread-safe workload factory for one engine point. Traces are
 * loaded once, up front, and copied per point. */
std::function<std::unique_ptr<Workload>()>
workloadFactory(const cli::Options &options, std::uint64_t seed)
{
    if (!options.traceIn.empty()) {
        auto trace = std::make_shared<Trace>(readTrace(options.traceIn));
        return [trace] {
            return std::make_unique<TraceWorkload>(*trace);
        };
    }
    const std::string name = options.workload;
    return [name, seed] { return makeWorkload(name, seed); };
}

void
printProfile(const RunResult &result)
{
    std::printf("profile (wall-clock, nondeterministic):\n");
    for (std::size_t i = 0; i < prof::kNumComponents; ++i) {
        const std::string name =
            prof::componentName(static_cast<prof::Component>(i));
        std::printf("  %-9s : %9.2f ms  (%llu scopes)\n", name.c_str(),
                    result.report.get("profile." + name + "_ms"),
                    static_cast<unsigned long long>(result.report.get(
                        "profile." + name + "_calls")));
    }
    std::printf("  %-9s : %9.2f ms  (%llu events)\n", "total",
                result.report.get("profile.total_ms"),
                static_cast<unsigned long long>(
                    result.report.get("profile.events_executed")));
}

void
printSummary(const char *label, const RunResult &result)
{
    std::printf("%s:\n", label);
    std::printf("  runtime              : %llu cycles\n",
                static_cast<unsigned long long>(result.runtime));
    std::printf("  energy               : %.1f\n",
                result.energy.total());
    std::printf("  TLB miss rate        : %.2f%%\n",
                100.0 * result.report.get("tlb.miss_rate"));
    std::printf("  DRAM refs PTW/replay : %.1f%% / %.1f%%\n",
                100.0 * result.fracDramPtw(),
                100.0 * result.fracDramReplay());
    std::printf("  superpage coverage   : %.1f%%\n",
                100.0 * result.superpageCoverage);
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace tempo::cli;

    Options options;
    try {
        options = parse({argv + 1, argv + argc});
    } catch (const std::invalid_argument &error) {
        std::fprintf(stderr, "error: %s\n", error.what());
        return 2;
    }
    if (options.help) {
        std::fputs(usage().c_str(), stdout);
        return 0;
    }

    const SystemConfig cfg = toConfig(options);
    prof::setEnabled(options.profile);

    // Observability: environment first, explicit flags on top.
    obs::Config obs_cfg = obs::configFromEnv();
    if (!options.tracePath.empty())
        obs_cfg.trace = true;
    if (!options.traceFilter.empty())
        obs_cfg.categories = obs::parseCategories(options.traceFilter);
    if (options.timeseriesWindow > 0)
        obs_cfg.timeseriesWindow = options.timeseriesWindow;
    obs::configure(obs_cfg);

    if (!options.traceOut.empty()) {
        auto workload = workloadFactory(options, cfg.seed)();
        const Trace trace = recordTrace(*workload, options.refs);
        writeTrace(trace, options.traceOut);
        std::printf("recorded %llu refs of %s to %s\n",
                    static_cast<unsigned long long>(trace.refs.size()),
                    trace.name.c_str(), options.traceOut.c_str());
        return 0;
    }

    // Point 0: the configured run. Point 1 (--compare): TEMPO on the
    // same machine. Both run concurrently on the experiment engine.
    std::vector<ExperimentPoint> points;
    ExperimentPoint first;
    first.workload = options.workload;
    first.config = cfg;
    first.refs = options.refs;
    first.makeWorkloadFn = workloadFactory(options, cfg.seed);
    points.push_back(std::move(first));
    if (options.compare) {
        SystemConfig tempo_cfg = cfg;
        tempo_cfg.withTempo(true);
        ExperimentPoint second;
        second.workload = options.workload;
        second.config = tempo_cfg;
        second.refs = options.refs;
        second.makeWorkloadFn = workloadFactory(options, tempo_cfg.seed);
        points.push_back(std::move(second));
    }

    // Engine options: environment first (so CI can inject faults), then
    // explicit flags on top. A failing point no longer kills the run —
    // its status is reported and the other point still completes.
    ExperimentOptions engine_opts = ExperimentOptions::fromEnv();
    engine_opts.jobs = options.jobs;
    if (options.retries)
        engine_opts.retries = options.retries;
    if (options.pointTimeout > 0)
        engine_opts.pointTimeoutSec = options.pointTimeout;
    if (!options.checkpointPath.empty())
        engine_opts.checkpointPath = options.checkpointPath;
    if (options.shards)
        engine_opts.shards = options.shards;
    // The engine that actually runs: the TEMPO_SHARDS/--shards
    // override if present, else whatever the config carries.
    const unsigned shard_workers = engine_opts.shards
        ? *engine_opts.shards
        : cfg.shards;

    std::vector<RunResult> results;
    try {
        results = runExperiments(points, engine_opts);
    } catch (const std::exception &error) {
        std::fprintf(stderr, "error: %s\n", error.what());
        return 2;
    }

    std::size_t num_ok = 0;
    for (std::size_t i = 0; i < results.size(); ++i) {
        const RunStatus &status = results[i].status;
        if (status.ok()) {
            ++num_ok;
            continue;
        }
        std::fprintf(stderr,
                     "point %zu (%s): %s after %u attempt(s): %s\n", i,
                     points[i].workload.c_str(), status.codeName(),
                     status.attempts, status.error.c_str());
    }

    // Pipeline traces: the explicit --trace path names point 0; extra
    // points (--compare) get ".1", ".2", ... suffixes. With only
    // TEMPO_TRACE_DIR set, files land there as TRACE_tempo_sim_<i>.json.
    for (std::size_t i = 0; i < results.size(); ++i) {
        const auto &run_obs = results[i].obs;
        if (!run_obs || !run_obs->cfg.trace)
            continue; // obs off, or point restored from a checkpoint
        std::string path = options.tracePath;
        if (!path.empty()) {
            if (i > 0)
                path += "." + std::to_string(i);
        } else if (!obs::config().traceDir.empty()) {
            path = obs::config().traceDir + "/TRACE_tempo_sim_"
                + std::to_string(i) + ".json";
        } else {
            continue;
        }
        try {
            obs::writeChromeTrace(path, *run_obs);
        } catch (const std::exception &error) {
            std::fprintf(stderr, "error: %s\n", error.what());
            return 1;
        }
        std::printf("wrote %s (%llu events, %llu dropped)\n",
                    path.c_str(),
                    static_cast<unsigned long long>(
                        run_obs->events.size()),
                    static_cast<unsigned long long>(
                        run_obs->droppedEvents));
    }

    const RunResult &result = results.front();
    if (result.status.ok())
        printSummary(cfg.mc.tempoEnabled ? "TEMPO" : "baseline", result);

    if (options.compare) {
        const RunResult &with_tempo = results.back();
        if (with_tempo.status.ok())
            printSummary("TEMPO", with_tempo);
        if (result.status.ok() && with_tempo.status.ok())
            std::printf("\nTEMPO improvement: performance %+.1f%%, "
                        "energy %+.1f%%\n",
                        100.0 * with_tempo.speedupOver(result),
                        100.0 * with_tempo.energySavingOver(result));
    }

    if (options.profile && result.status.ok()) {
        std::printf("\n");
        printProfile(result);
        if (options.compare && results.back().status.ok()) {
            std::printf("\n");
            printProfile(results.back());
        }
    }

    if (options.fullReport && result.status.ok()) {
        std::printf("\nfull report:\n");
        result.report.printText(std::cout);
    }
    if (!options.csvPath.empty()) {
        std::ofstream csv(options.csvPath);
        if (!csv) {
            std::fprintf(stderr, "error: cannot write %s\n",
                         options.csvPath.c_str());
            return 1;
        }
        result.report.printCsv(csv);
        std::printf("wrote %s\n", options.csvPath.c_str());
    }
    if (!options.jsonPath.empty()) {
        std::vector<stats::BenchPoint> bench_points;
        for (std::size_t i = 0; i < results.size(); ++i) {
            const bool tempo_on =
                points[i].config.mc.tempoEnabled;
            std::vector<std::pair<std::string, std::string>> pairs = {
                {"mc.tempo", tempo_on ? "true" : "false"}};
            // Sharded runs record the DOMAIN count (1 app + 1 shared
            // machine), which is invariant across worker counts, so
            // shards=1/2/8 produce byte-identical files.
            if (shard_workers > 0)
                pairs.emplace_back("shards", "2");
            bench_points.push_back(toBenchPoint(
                points[i].workload, std::move(pairs), results[i]));
        }
        try {
            stats::writeBenchJson(options.jsonPath, "tempo_sim",
                                  options.refs, cfg.seed, bench_points);
        } catch (const std::exception &error) {
            std::fprintf(stderr, "error: %s\n", error.what());
            return 1;
        }
        std::printf("wrote %s\n", options.jsonPath.c_str());
    }
    return num_ok == 0 ? 3 : 0;
}
