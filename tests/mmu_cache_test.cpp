#include <gtest/gtest.h>

#include "vm/mmu_cache.hh"

namespace tempo {
namespace {

TEST(MmuCache, ColdLookupReturnsFive)
{
    MmuCache mmu(MmuCacheConfig{});
    EXPECT_EQ(mmu.deepestCached(0x12345678), 5);
    EXPECT_EQ(mmu.misses(), 1u);
}

TEST(MmuCache, FillEnablesSkip)
{
    MmuCache mmu(MmuCacheConfig{});
    const Addr vaddr = 0x7fff12345000ull;
    mmu.fill(vaddr, 4);
    EXPECT_EQ(mmu.deepestCached(vaddr), 4);
    mmu.fill(vaddr, 3);
    EXPECT_EQ(mmu.deepestCached(vaddr), 3);
    mmu.fill(vaddr, 2);
    EXPECT_EQ(mmu.deepestCached(vaddr), 2);
}

TEST(MmuCache, DeepestWins)
{
    MmuCache mmu(MmuCacheConfig{});
    const Addr vaddr = 0x7fff12345000ull;
    mmu.fill(vaddr, 2);
    mmu.fill(vaddr, 4);
    // The L2-level entry lets the walk skip straight to the leaf.
    EXPECT_EQ(mmu.deepestCached(vaddr), 2);
}

TEST(MmuCache, EntryCoversItsRegion)
{
    MmuCache mmu(MmuCacheConfig{});
    const Addr base = 0x40000000ull; // 1GB-aligned
    mmu.fill(base, 3); // L3 entry covers a 1GB region
    EXPECT_EQ(mmu.deepestCached(base + 123 * kPageBytes), 3);
    EXPECT_EQ(mmu.deepestCached(base + kPage1GBytes), 5);
}

TEST(MmuCache, L2EntryCoversTwoMegRegion)
{
    MmuCache mmu(MmuCacheConfig{});
    const Addr base = 0x40000000ull;
    mmu.fill(base, 2);
    EXPECT_EQ(mmu.deepestCached(base + kPage2MBytes - 1), 2);
    EXPECT_EQ(mmu.deepestCached(base + kPage2MBytes), 5);
}

TEST(MmuCache, DistinctRegionsIndependent)
{
    MmuCache mmu(MmuCacheConfig{});
    mmu.fill(0x0ull, 2);
    EXPECT_EQ(mmu.deepestCached(0x0ull), 2);
    EXPECT_EQ(mmu.deepestCached(0x10000000000ull), 5);
}

TEST(MmuCache, ResetForgets)
{
    MmuCache mmu(MmuCacheConfig{});
    mmu.fill(0x1000, 4);
    mmu.reset();
    EXPECT_EQ(mmu.deepestCached(0x1000), 5);
}

TEST(MmuCache, CapacityEviction)
{
    MmuCacheConfig cfg;
    cfg.entriesPerLevel = 4;
    cfg.assoc = 4;
    MmuCache mmu(cfg);
    // Fill 8 distinct L4 regions into a 4-entry cache.
    for (Addr i = 0; i < 8; ++i)
        mmu.fill(i << 39, 4);
    int cached = 0;
    for (Addr i = 0; i < 8; ++i) {
        if (mmu.deepestCached(i << 39) == 4)
            ++cached;
    }
    EXPECT_EQ(cached, 4);
}

TEST(MmuCacheDeathTest, RejectsLeafFills)
{
    MmuCache mmu(MmuCacheConfig{});
    EXPECT_DEATH(mmu.fill(0x1000, 1), "upper levels");
}

TEST(MmuCache, ReportHasHitRate)
{
    MmuCache mmu(MmuCacheConfig{});
    mmu.deepestCached(0x1000);
    mmu.fill(0x1000, 4);
    mmu.deepestCached(0x1000);
    stats::Report report;
    mmu.report(report);
    EXPECT_DOUBLE_EQ(report.get("hit_rate"), 0.5);
}

} // namespace
} // namespace tempo
