#include <gtest/gtest.h>

#include "dram/row_policy.hh"

namespace tempo {
namespace {

DramConfig
withPolicy(RowPolicyKind kind)
{
    DramConfig cfg;
    cfg.rowPolicy = kind;
    return cfg;
}

TEST(RowPolicy, OpenAlwaysKeepsOpen)
{
    RowPolicy policy(withPolicy(RowPolicyKind::Open));
    for (Addr row = 0; row < 100; ++row)
        EXPECT_TRUE(policy.keepOpenAfterAccess(row));
}

TEST(RowPolicy, ClosedAlwaysCloses)
{
    RowPolicy policy(withPolicy(RowPolicyKind::Closed));
    for (Addr row = 0; row < 100; ++row)
        EXPECT_FALSE(policy.keepOpenAfterAccess(row));
}

TEST(RowPolicy, AdaptiveDefaultsToOpen)
{
    RowPolicy policy(withPolicy(RowPolicyKind::Adaptive));
    // Unknown rows are optimistically kept open.
    EXPECT_TRUE(policy.keepOpenAfterAccess(42));
}

TEST(RowPolicy, AdaptiveLearnsDeadRows)
{
    RowPolicy policy(withPolicy(RowPolicyKind::Adaptive));
    // Repeatedly close row 7 with zero hits: the predictor should learn
    // to close it.
    for (int i = 0; i < 4; ++i)
        policy.rowClosed(7, 0);
    EXPECT_FALSE(policy.keepOpenAfterAccess(7));
}

TEST(RowPolicy, AdaptiveLearnsLiveRows)
{
    RowPolicy policy(withPolicy(RowPolicyKind::Adaptive));
    for (int i = 0; i < 4; ++i)
        policy.rowClosed(9, 0);
    ASSERT_FALSE(policy.keepOpenAfterAccess(9));
    // Row 9 starts earning hits again: predictor recovers.
    for (int i = 0; i < 4; ++i)
        policy.rowClosed(9, 3);
    EXPECT_TRUE(policy.keepOpenAfterAccess(9));
}

TEST(RowPredictor, IndependentRows)
{
    RowPredictor pred(16, 2);
    for (int i = 0; i < 4; ++i)
        pred.update(1, 0);
    pred.update(2, 5);
    EXPECT_FALSE(pred.predictKeepOpen(1));
    EXPECT_TRUE(pred.predictKeepOpen(2));
}

TEST(RowPredictor, EvictsLruWithinSet)
{
    // 1 set, 2 ways: training a third row evicts the least recently
    // used one, which then falls back to the optimistic default.
    RowPredictor pred(1, 2);
    for (int i = 0; i < 4; ++i)
        pred.update(10, 0);
    for (int i = 0; i < 4; ++i)
        pred.update(11, 0);
    EXPECT_FALSE(pred.predictKeepOpen(10));
    EXPECT_FALSE(pred.predictKeepOpen(11));
    pred.update(12, 0); // evicts row 10 (LRU)
    EXPECT_TRUE(pred.predictKeepOpen(10)); // forgotten -> default open
    EXPECT_FALSE(pred.predictKeepOpen(11));
}

TEST(RowPredictor, SaturatingCounterRecovery)
{
    RowPredictor pred(8, 4);
    // Drive to the bottom, then verify two good closures flip it back.
    for (int i = 0; i < 10; ++i)
        pred.update(3, 0);
    EXPECT_FALSE(pred.predictKeepOpen(3));
    pred.update(3, 1);
    pred.update(3, 1);
    EXPECT_TRUE(pred.predictKeepOpen(3));
}

class RowPolicyKindSweep
    : public ::testing::TestWithParam<RowPolicyKind>
{
};

TEST_P(RowPolicyKindSweep, NameIsNonEmpty)
{
    EXPECT_STRNE(rowPolicyName(GetParam()), "");
    EXPECT_STRNE(rowPolicyName(GetParam()), "?");
}

TEST_P(RowPolicyKindSweep, PolicyConstructsAndAnswers)
{
    RowPolicy policy(withPolicy(GetParam()));
    policy.rowClosed(1, 1);
    (void)policy.keepOpenAfterAccess(1);
    EXPECT_EQ(policy.kind(), GetParam());
}

INSTANTIATE_TEST_SUITE_P(AllKinds, RowPolicyKindSweep,
                         ::testing::Values(RowPolicyKind::Open,
                                           RowPolicyKind::Closed,
                                           RowPolicyKind::Adaptive));

} // namespace
} // namespace tempo
