#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "stats/stats.hh"

namespace tempo::stats {
namespace {

TEST(Scalar, IncrementAndReset)
{
    Scalar s;
    EXPECT_EQ(s.value(), 0u);
    s.inc();
    s.inc(4);
    ++s;
    s += 10;
    EXPECT_EQ(s.value(), 16u);
    s.reset();
    EXPECT_EQ(s.value(), 0u);
    s.set(99);
    EXPECT_EQ(s.value(), 99u);
}

TEST(Distribution, TracksMinMaxMean)
{
    Distribution d;
    EXPECT_EQ(d.count(), 0u);
    EXPECT_EQ(d.mean(), 0.0);
    d.sample(10);
    d.sample(20);
    d.sample(0);
    EXPECT_EQ(d.count(), 3u);
    EXPECT_DOUBLE_EQ(d.mean(), 10.0);
    EXPECT_DOUBLE_EQ(d.min(), 0.0);
    EXPECT_DOUBLE_EQ(d.max(), 20.0);
    d.reset();
    EXPECT_EQ(d.count(), 0u);
}

TEST(Distribution, IgnoresNan)
{
    // A NaN sample would poison sum/min/max for the rest of the run;
    // windowed samplers can legitimately produce one from an empty
    // window's ratio, so it must be dropped, not asserted on.
    Distribution d;
    d.sample(std::nan(""));
    EXPECT_EQ(d.count(), 0u);
    d.sample(4);
    d.sample(std::nan(""));
    d.sample(8);
    EXPECT_EQ(d.count(), 2u);
    EXPECT_DOUBLE_EQ(d.mean(), 6.0);
    EXPECT_DOUBLE_EQ(d.min(), 4.0);
    EXPECT_DOUBLE_EQ(d.max(), 8.0);
}

TEST(Distribution, MergeFoldsWindows)
{
    Distribution total;
    Distribution window;

    // Empty into empty, and empty into full: nothing changes, and the
    // empty side's zero-initialised min/max never leak into extrema.
    total.merge(window);
    EXPECT_EQ(total.count(), 0u);
    total.sample(5);
    total.sample(7);
    total.merge(window);
    EXPECT_EQ(total.count(), 2u);
    EXPECT_DOUBLE_EQ(total.min(), 5.0);

    // Full into empty copies the source.
    Distribution fresh;
    fresh.merge(total);
    EXPECT_EQ(fresh.count(), 2u);
    EXPECT_DOUBLE_EQ(fresh.min(), 5.0);
    EXPECT_DOUBLE_EQ(fresh.max(), 7.0);

    // Full into full sums counts and widens the extrema.
    window.sample(1);
    window.sample(20);
    total.merge(window);
    EXPECT_EQ(total.count(), 4u);
    EXPECT_DOUBLE_EQ(total.sum(), 33.0);
    EXPECT_DOUBLE_EQ(total.min(), 1.0);
    EXPECT_DOUBLE_EQ(total.max(), 20.0);
}

TEST(Histogram, BucketsSamples)
{
    // Pins in-range behaviour: bucket edges are [i*w, (i+1)*w) and an
    // out-of-range sample must NOT inflate the last bin.
    Histogram h(10.0, 4);
    h.sample(0);
    h.sample(9.9);
    h.sample(10);
    h.sample(35);
    h.sample(1000); // out of range: counted in the overflow bucket
    EXPECT_EQ(h.count(), 5u);
    EXPECT_EQ(h.bucket(0), 2u);
    EXPECT_EQ(h.bucket(1), 1u);
    EXPECT_EQ(h.bucket(2), 0u);
    EXPECT_EQ(h.bucket(3), 1u);
    EXPECT_EQ(h.overflow(), 1u);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.overflow(), 0u);
}

TEST(Histogram, NegativeSamplesClampToFirstBucket)
{
    // Casting a negative double to std::size_t is UB; sample() must
    // range-check in double first and clamp below-range values to
    // bucket 0 (they arise from, e.g., negative latency deltas when a
    // merged request completes before its nominal issue).
    Histogram h(10.0, 4);
    h.sample(-0.5);
    h.sample(-1e18); // far below any bucket
    h.sample(5);
    EXPECT_EQ(h.count(), 3u);
    EXPECT_EQ(h.bucket(0), 3u);
    EXPECT_EQ(h.bucket(1), 0u);
    EXPECT_EQ(h.bucket(3), 0u);
}

TEST(Histogram, HugeSamplesLandInOverflow)
{
    // Values whose scaled index exceeds the bucket range are counted in
    // the overflow bucket without ever performing an out-of-range
    // float->int conversion.
    Histogram h(1.0, 4);
    h.sample(1e30);
    h.sample(4.0); // exactly one past the last edge
    EXPECT_EQ(h.count(), 2u);
    EXPECT_EQ(h.overflow(), 2u);
    EXPECT_EQ(h.bucket(3), 0u);
    h.sample(3.999);
    EXPECT_EQ(h.bucket(3), 1u);
}

TEST(Histogram, AddToEmitsBucketsAndOverflow)
{
    Histogram h(10.0, 2);
    h.sample(5);
    h.sample(15);
    h.sample(99); // overflow
    Report r;
    h.addTo(r, "lat.");
    EXPECT_DOUBLE_EQ(r.get("lat.bucket_0"), 1.0);
    EXPECT_DOUBLE_EQ(r.get("lat.bucket_1"), 1.0);
    EXPECT_DOUBLE_EQ(r.get("lat.overflow"), 1.0);
    EXPECT_DOUBLE_EQ(r.get("lat.count"), 3.0);
    EXPECT_DOUBLE_EQ(r.get("lat.bucket_width"), 10.0);
}

TEST(Ratio, HandlesZeroDenominator)
{
    EXPECT_EQ(ratio(std::uint64_t{5}, std::uint64_t{0}), 0.0);
    EXPECT_DOUBLE_EQ(ratio(std::uint64_t{1}, std::uint64_t{4}), 0.25);
    EXPECT_EQ(ratio(1.0, 0.0), 0.0);
    EXPECT_DOUBLE_EQ(ratio(3.0, 6.0), 0.5);
}

TEST(Report, AddAndGet)
{
    Report r;
    r.add("alpha", 1.5);
    r.add("beta", std::uint64_t{7});
    EXPECT_DOUBLE_EQ(r.get("alpha"), 1.5);
    EXPECT_DOUBLE_EQ(r.get("beta"), 7.0);
    EXPECT_TRUE(r.has("alpha"));
    EXPECT_FALSE(r.has("gamma"));
}

TEST(ReportDeathTest, GetMissingPanics)
{
    Report r;
    EXPECT_DEATH(r.get("nope"), "no stat named");
}

TEST(Report, MergeAddsPrefix)
{
    Report inner;
    inner.add("x", 1.0);
    Report outer;
    outer.add("y", 2.0);
    outer.merge("sub.", inner);
    EXPECT_DOUBLE_EQ(outer.get("sub.x"), 1.0);
    EXPECT_DOUBLE_EQ(outer.get("y"), 2.0);
}

TEST(Report, PreservesInsertionOrder)
{
    Report r;
    r.add("z", 1.0);
    r.add("a", 2.0);
    ASSERT_EQ(r.entries().size(), 2u);
    EXPECT_EQ(r.entries()[0].first, "z");
    EXPECT_EQ(r.entries()[1].first, "a");
}

TEST(Report, TextOutputContainsNames)
{
    Report r;
    r.add("runtime", 123.0);
    std::ostringstream os;
    r.printText(os);
    EXPECT_NE(os.str().find("runtime"), std::string::npos);
    EXPECT_NE(os.str().find("123"), std::string::npos);
}

TEST(Report, CsvOutputHasHeaderAndRow)
{
    Report r;
    r.add("a", 1.0);
    r.add("b", 2.0);
    std::ostringstream os;
    r.printCsv(os);
    EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

} // namespace
} // namespace tempo::stats
