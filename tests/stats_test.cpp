#include <gtest/gtest.h>

#include <sstream>

#include "stats/stats.hh"

namespace tempo::stats {
namespace {

TEST(Scalar, IncrementAndReset)
{
    Scalar s;
    EXPECT_EQ(s.value(), 0u);
    s.inc();
    s.inc(4);
    ++s;
    s += 10;
    EXPECT_EQ(s.value(), 16u);
    s.reset();
    EXPECT_EQ(s.value(), 0u);
    s.set(99);
    EXPECT_EQ(s.value(), 99u);
}

TEST(Distribution, TracksMinMaxMean)
{
    Distribution d;
    EXPECT_EQ(d.count(), 0u);
    EXPECT_EQ(d.mean(), 0.0);
    d.sample(10);
    d.sample(20);
    d.sample(0);
    EXPECT_EQ(d.count(), 3u);
    EXPECT_DOUBLE_EQ(d.mean(), 10.0);
    EXPECT_DOUBLE_EQ(d.min(), 0.0);
    EXPECT_DOUBLE_EQ(d.max(), 20.0);
    d.reset();
    EXPECT_EQ(d.count(), 0u);
}

TEST(Histogram, BucketsSamples)
{
    Histogram h(10.0, 4);
    h.sample(0);
    h.sample(9.9);
    h.sample(10);
    h.sample(35);
    h.sample(1000); // clamps to last bucket
    EXPECT_EQ(h.count(), 5u);
    EXPECT_EQ(h.bucket(0), 2u);
    EXPECT_EQ(h.bucket(1), 1u);
    EXPECT_EQ(h.bucket(2), 0u);
    EXPECT_EQ(h.bucket(3), 2u);
}

TEST(Histogram, NegativeSamplesClampToFirstBucket)
{
    // Casting a negative double to std::size_t is UB; sample() must
    // range-check in double first and clamp below-range values to
    // bucket 0 (they arise from, e.g., negative latency deltas when a
    // merged request completes before its nominal issue).
    Histogram h(10.0, 4);
    h.sample(-0.5);
    h.sample(-1e18); // far below any bucket
    h.sample(5);
    EXPECT_EQ(h.count(), 3u);
    EXPECT_EQ(h.bucket(0), 3u);
    EXPECT_EQ(h.bucket(1), 0u);
    EXPECT_EQ(h.bucket(3), 0u);
}

TEST(Histogram, HugeSamplesClampToLastBucket)
{
    // Values whose scaled index exceeds size_t range must also clamp
    // without ever performing an out-of-range float->int conversion.
    Histogram h(1.0, 4);
    h.sample(1e30);
    EXPECT_EQ(h.bucket(3), 1u);
}

TEST(Ratio, HandlesZeroDenominator)
{
    EXPECT_EQ(ratio(std::uint64_t{5}, std::uint64_t{0}), 0.0);
    EXPECT_DOUBLE_EQ(ratio(std::uint64_t{1}, std::uint64_t{4}), 0.25);
    EXPECT_EQ(ratio(1.0, 0.0), 0.0);
    EXPECT_DOUBLE_EQ(ratio(3.0, 6.0), 0.5);
}

TEST(Report, AddAndGet)
{
    Report r;
    r.add("alpha", 1.5);
    r.add("beta", std::uint64_t{7});
    EXPECT_DOUBLE_EQ(r.get("alpha"), 1.5);
    EXPECT_DOUBLE_EQ(r.get("beta"), 7.0);
    EXPECT_TRUE(r.has("alpha"));
    EXPECT_FALSE(r.has("gamma"));
}

TEST(ReportDeathTest, GetMissingPanics)
{
    Report r;
    EXPECT_DEATH(r.get("nope"), "no stat named");
}

TEST(Report, MergeAddsPrefix)
{
    Report inner;
    inner.add("x", 1.0);
    Report outer;
    outer.add("y", 2.0);
    outer.merge("sub.", inner);
    EXPECT_DOUBLE_EQ(outer.get("sub.x"), 1.0);
    EXPECT_DOUBLE_EQ(outer.get("y"), 2.0);
}

TEST(Report, PreservesInsertionOrder)
{
    Report r;
    r.add("z", 1.0);
    r.add("a", 2.0);
    ASSERT_EQ(r.entries().size(), 2u);
    EXPECT_EQ(r.entries()[0].first, "z");
    EXPECT_EQ(r.entries()[1].first, "a");
}

TEST(Report, TextOutputContainsNames)
{
    Report r;
    r.add("runtime", 123.0);
    std::ostringstream os;
    r.printText(os);
    EXPECT_NE(os.str().find("runtime"), std::string::npos);
    EXPECT_NE(os.str().find("123"), std::string::npos);
}

TEST(Report, CsvOutputHasHeaderAndRow)
{
    Report r;
    r.add("a", 1.0);
    r.add("b", 2.0);
    std::ostringstream os;
    r.printCsv(os);
    EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

} // namespace
} // namespace tempo::stats
