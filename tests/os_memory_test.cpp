#include <gtest/gtest.h>

#include <set>

#include "vm/os_memory.hh"

namespace tempo {
namespace {

TEST(OsMemory, FourKFramesAreSequentialWithinBlocks)
{
    OsMemory os{OsMemoryConfig{}};
    const Addr a = os.allocFrame(PageSize::Page4K);
    const Addr b = os.allocFrame(PageSize::Page4K);
    EXPECT_EQ(b, a + kPageBytes);
}

TEST(OsMemory, FramesAreAligned)
{
    OsMemory os{OsMemoryConfig{}};
    EXPECT_EQ(os.allocFrame(PageSize::Page4K) % kPageBytes, 0u);
    EXPECT_EQ(os.allocFrame(PageSize::Page2M) % kPage2MBytes, 0u);
    EXPECT_EQ(os.allocFrame(PageSize::Page1G) % kPage1GBytes, 0u);
}

TEST(OsMemory, FramesNeverOverlap)
{
    OsMemory os{OsMemoryConfig{}};
    std::set<Addr> blocks;
    for (int i = 0; i < 2000; ++i) {
        const Addr frame = os.allocFrame(PageSize::Page4K);
        EXPECT_TRUE(blocks.insert(frame).second);
    }
    for (int i = 0; i < 50; ++i) {
        const Addr frame = os.allocFrame(PageSize::Page2M);
        // A 2MB frame must not collide with any prior 4KB frame.
        for (Addr f : blocks)
            EXPECT_TRUE(f < frame || f >= frame + kPage2MBytes);
    }
}

TEST(OsMemory, PtNodesInterleaveWithDataFrames)
{
    // Page-table pages come from the same carving pool as 4KB data
    // pages, so they land in the same DRAM neighbourhoods — the layout
    // property TEMPO's row-conflict story depends on.
    OsMemory os{OsMemoryConfig{}};
    const Addr d1 = os.allocFrame(PageSize::Page4K);
    const Addr pt = os.allocPtNode();
    const Addr d2 = os.allocFrame(PageSize::Page4K);
    EXPECT_EQ(pt, d1 + kPageBytes);
    EXPECT_EQ(d2, pt + kPageBytes);
    EXPECT_EQ(os.ptBytesAllocated(), kPageBytes);
}

TEST(OsMemory, NoFragmentationMeansSuperpagesAlwaysSucceed)
{
    OsMemory os{OsMemoryConfig{}};
    for (int i = 0; i < 100; ++i)
        EXPECT_NE(os.allocFrame(PageSize::Page2M), kInvalidAddr);
    EXPECT_NE(os.allocFrame(PageSize::Page1G), kInvalidAddr);
    EXPECT_EQ(os.superpageFailures(), 0u);
}

TEST(OsMemory, HeavyFragmentationFails1G)
{
    OsMemoryConfig cfg;
    cfg.fragLevel = 0.25;
    OsMemory os(cfg);
    // (1-0.25)^512 ~ 0: 1GB allocations must essentially always fail.
    int failures = 0;
    for (int i = 0; i < 20; ++i) {
        if (os.allocFrame(PageSize::Page1G) == kInvalidAddr)
            ++failures;
    }
    EXPECT_EQ(failures, 20);
    EXPECT_EQ(os.superpageFailures(), 20u);
}

TEST(OsMemory, FragmentationDegrades2MSuccess)
{
    // Property: higher memhog levels make 2MB allocation fail more.
    auto failure_rate = [](double frag) {
        OsMemoryConfig cfg;
        cfg.fragLevel = frag;
        cfg.seed = 99;
        OsMemory os(cfg);
        int failures = 0;
        const int trials = 400;
        for (int i = 0; i < trials; ++i) {
            if (os.allocFrame(PageSize::Page2M) == kInvalidAddr)
                ++failures;
        }
        return static_cast<double>(failures) / trials;
    };
    const double f0 = failure_rate(0.0);
    const double f50 = failure_rate(0.5);
    const double f75 = failure_rate(0.75);
    EXPECT_EQ(f0, 0.0);
    EXPECT_GT(f75, f50);
}

TEST(OsMemory, FrameCountersTrackAllocations)
{
    OsMemory os{OsMemoryConfig{}};
    os.allocFrame(PageSize::Page4K);
    os.allocFrame(PageSize::Page4K);
    os.allocFrame(PageSize::Page2M);
    EXPECT_EQ(os.framesAllocated(PageSize::Page4K), 2u);
    EXPECT_EQ(os.framesAllocated(PageSize::Page2M), 1u);
    EXPECT_EQ(os.framesAllocated(PageSize::Page1G), 0u);
    EXPECT_EQ(os.dataBytesAllocated(), 2 * kPageBytes + kPage2MBytes);
}

TEST(OsMemory, DeterministicForSeed)
{
    OsMemoryConfig cfg;
    cfg.fragLevel = 0.3;
    cfg.seed = 42;
    OsMemory a(cfg), b(cfg);
    for (int i = 0; i < 500; ++i)
        EXPECT_EQ(a.allocFrame(PageSize::Page4K),
                  b.allocFrame(PageSize::Page4K));
}

TEST(OsMemory, ReportIsComplete)
{
    OsMemory os{OsMemoryConfig{}};
    os.allocFrame(PageSize::Page4K);
    stats::Report report;
    os.report(report);
    EXPECT_TRUE(report.has("data_bytes"));
    EXPECT_TRUE(report.has("pt_bytes"));
    EXPECT_TRUE(report.has("superpage_failures"));
}

TEST(OsMemoryDeathTest, RejectsBadFragLevel)
{
    OsMemoryConfig cfg;
    cfg.fragLevel = 1.5;
    EXPECT_DEATH(OsMemory{cfg}, "fragmentation");
}

} // namespace
} // namespace tempo
