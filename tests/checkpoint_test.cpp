/**
 * @file
 * Sweep checkpointing tests: the RunResult JSON encoding must round-trip
 * byte-exactly, the journal must restore by digest and tolerate the
 * truncated tail a mid-append kill leaves behind, and a resumed sweep
 * must reproduce an uninterrupted run's output byte for byte without
 * re-simulating journaled points.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <thread>

#include "core/checkpoint.hh"
#include "core/experiment.hh"

namespace tempo {
namespace {

constexpr std::uint64_t kRefs = 4000;

/** A scratch file removed on scope exit. */
struct TempFile {
    std::string path;
    explicit TempFile(const std::string &name)
        : path("checkpoint_test_" + name + ".jsonl")
    {
        std::remove(path.c_str());
    }
    ~TempFile() { std::remove(path.c_str()); }
};

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

RunResult
sampleResult()
{
    SystemConfig cfg = SystemConfig::skylakeScaled();
    cfg.withTempo(true);
    return runWorkload(cfg, "mcf", kRefs);
}

std::vector<ExperimentPoint>
sweepPoints()
{
    std::vector<ExperimentPoint> points;
    for (const char *name : {"mcf", "xsbench", "canneal", "spmv"}) {
        ExperimentPoint p;
        p.workload = name;
        p.config = SystemConfig::skylakeScaled();
        p.refs = kRefs;
        points.push_back(std::move(p));
    }
    return points;
}

/** Flatten a sweep to the full tempo-bench-1 document for byte
 * comparisons (status, failures array and all). */
std::string
emitJson(const std::vector<RunResult> &results)
{
    std::vector<stats::BenchPoint> points;
    for (std::size_t i = 0; i < results.size(); ++i)
        points.push_back(
            toBenchPoint("p" + std::to_string(i), {}, results[i]));
    return stats::benchJson("resume", kRefs, 42, points).dump();
}

TEST(Checkpoint, RunResultEncodingRoundTripsByteExactly)
{
    const RunResult original = sampleResult();
    const std::string encoded = encodeRunResult(original).dumpCompact();
    const RunResult decoded = decodeRunResult(stats::parseJson(encoded));
    // Every CoreStats counter and report entry survives: re-encoding
    // the decoded result reproduces the exact bytes.
    EXPECT_EQ(encodeRunResult(decoded).dumpCompact(), encoded);
    EXPECT_EQ(decoded.runtime, original.runtime);
    EXPECT_EQ(decoded.core.walks, original.core.walks);
    EXPECT_DOUBLE_EQ(decoded.energy.total(), original.energy.total());
    ASSERT_EQ(decoded.report.entries().size(),
              original.report.entries().size());
    for (std::size_t i = 0; i < original.report.entries().size(); ++i) {
        EXPECT_EQ(decoded.report.entries()[i].first,
                  original.report.entries()[i].first);
        EXPECT_EQ(decoded.report.entries()[i].second,
                  original.report.entries()[i].second);
    }
}

TEST(Checkpoint, DecodeRejectsForeignSchema)
{
    EXPECT_THROW(decodeRunResult(stats::parseJson("{\"v\":99}")),
                 std::runtime_error);
}

TEST(Checkpoint, JournalRestoresByDigest)
{
    TempFile file("restore");
    const RunResult result = sampleResult();
    {
        SweepJournal journal(file.path);
        EXPECT_EQ(journal.loadedCount(), 0u);
        journal.record(0xabcdef12u, result);
    }
    SweepJournal reopened(file.path);
    EXPECT_EQ(reopened.loadedCount(), 1u);
    RunResult out;
    EXPECT_FALSE(reopened.restore(0x999u, out));
    ASSERT_TRUE(reopened.restore(0xabcdef12u, out));
    EXPECT_EQ(encodeRunResult(out).dumpCompact(),
              encodeRunResult(result).dumpCompact());
    EXPECT_EQ(out.status.digest, 0xabcdef12u);
    EXPECT_TRUE(out.status.ok());
}

TEST(Checkpoint, TruncatedTailIsTolerated)
{
    TempFile file("truncated");
    const RunResult result = sampleResult();
    {
        SweepJournal journal(file.path);
        journal.record(1, result);
        journal.record(2, result);
    }
    // Chop into the middle of the second line — the shape a kill
    // mid-append leaves behind.
    std::string bytes = slurp(file.path);
    const std::size_t first_end = bytes.find('\n');
    ASSERT_NE(first_end, std::string::npos);
    bytes.resize(first_end + 1 + (bytes.size() - first_end) / 2);
    std::ofstream(file.path, std::ios::binary | std::ios::trunc)
        << bytes;

    SweepJournal journal(file.path);
    EXPECT_EQ(journal.loadedCount(), 1u);
    RunResult out;
    EXPECT_TRUE(journal.restore(1, out));
    EXPECT_FALSE(journal.restore(2, out));
    // The journal stays appendable after the repair.
    journal.record(3, result);
    SweepJournal after(file.path);
    EXPECT_EQ(after.loadedCount(), 2u);
}

TEST(Checkpoint, ResumedSweepIsByteIdenticalAndSkipsJournaledPoints)
{
    TempFile file("resume");
    std::vector<ExperimentPoint> points = sweepPoints();
    // Count actual simulations via the factory hook (it does not enter
    // the point digest, so restores still match).
    auto calls = std::make_shared<std::atomic<int>>(0);
    for (ExperimentPoint &p : points) {
        const std::string name = p.workload;
        p.makeWorkloadFn = [calls, name] {
            calls->fetch_add(1);
            return makeWorkload(name, 42);
        };
    }

    ExperimentOptions opts;
    opts.jobs = 1; // deterministic journal line order
    opts.checkpointPath = file.path;
    const std::vector<RunResult> full = runExperiments(points, opts);
    EXPECT_EQ(calls->load(), 4);
    const std::string full_json = emitJson(full);

    // Interrupt after two completed points: keep the first two lines.
    std::string bytes = slurp(file.path);
    std::size_t cut = bytes.find('\n');
    cut = bytes.find('\n', cut + 1);
    ASSERT_NE(cut, std::string::npos);
    std::ofstream(file.path, std::ios::binary | std::ios::trunc)
        << bytes.substr(0, cut + 1);

    calls->store(0);
    const std::vector<RunResult> resumed = runExperiments(points, opts);
    // Only the two missing points re-simulated...
    EXPECT_EQ(calls->load(), 2);
    // ...and the merged output is exactly the uninterrupted bytes.
    EXPECT_EQ(emitJson(resumed), full_json);
    // The journal is whole again: a third run simulates nothing.
    calls->store(0);
    runExperiments(points, opts);
    EXPECT_EQ(calls->load(), 0);
}

TEST(Checkpoint, FailuresAreNotJournaledAndReproduceOnResume)
{
    TempFile file("failures");
    std::vector<ExperimentPoint> points = sweepPoints();

    ExperimentOptions opts;
    opts.jobs = 2;
    opts.checkpointPath = file.path;
    opts.inject = {{2, FaultInjection::Kind::Throw}};
    const std::vector<RunResult> first = runExperiments(points, opts);
    EXPECT_EQ(first[2].status.code, RunStatus::Code::Failed);
    EXPECT_EQ(SweepJournal(file.path).loadedCount(), 3u);

    // Resume with the fault still present: the failure reproduces and
    // the document matches byte for byte (the resume guarantee covers
    // the failures array too).
    const std::vector<RunResult> resumed = runExperiments(points, opts);
    EXPECT_EQ(resumed[2].status.code, RunStatus::Code::Failed);
    EXPECT_EQ(emitJson(resumed), emitJson(first));

    // Resume with the fault gone (a transient): the point finally
    // completes and joins the journal.
    opts.inject.clear();
    const std::vector<RunResult> healed = runExperiments(points, opts);
    EXPECT_TRUE(healed[2].status.ok());
    EXPECT_EQ(SweepJournal(file.path).loadedCount(), 4u);
}

TEST(Checkpoint, ConfigChangeInvalidatesRestore)
{
    TempFile file("invalidate");
    std::vector<ExperimentPoint> points = sweepPoints();
    ExperimentOptions opts;
    opts.jobs = 2;
    opts.checkpointPath = file.path;
    runExperiments(points, opts);

    // A different config digests differently: nothing restores and the
    // sweep re-runs (results land under the new digests).
    for (ExperimentPoint &p : points)
        p.config.withTempo(true);
    const std::vector<RunResult> rerun = runExperiments(points, opts);
    for (const RunResult &result : rerun)
        EXPECT_TRUE(result.status.ok());
    EXPECT_EQ(SweepJournal(file.path).loadedCount(), 8u);
}

TEST(Checkpoint, ConcurrentWritersNeverInterleaveLines)
{
    // Two journal instances on one path (the fabric: two processes
    // appending to a shared file) write from two threads at once.
    // AtomicAppendFile's single-write O_APPEND appends must keep every
    // line whole: a reload parses all of them.
    TempFile file("concurrent");
    const RunResult result = sampleResult();
    constexpr int kPerWriter = 50;
    {
        SweepJournal a(file.path);
        SweepJournal b(file.path);
        std::thread ta([&] {
            for (int i = 0; i < kPerWriter; ++i)
                a.record(0x1000u + i, result);
        });
        std::thread tb([&] {
            for (int i = 0; i < kPerWriter; ++i)
                b.record(0x2000u + i, result);
        });
        ta.join();
        tb.join();
    }
    SweepJournal reopened(file.path);
    EXPECT_EQ(reopened.loadedCount(), 2u * kPerWriter);
    RunResult out;
    for (int i = 0; i < kPerWriter; ++i) {
        EXPECT_TRUE(reopened.restore(0x1000u + i, out));
        EXPECT_TRUE(reopened.restore(0x2000u + i, out));
    }
}

TEST(Checkpoint, TruncatedTailRepairSurvivesConcurrentAppends)
{
    // A kill mid-append leaves a truncated tail; the next TWO journals
    // to open the file concurrently both tolerate it (the first
    // repairs, the second sees a clean file) and their interleaved
    // appends still reload completely.
    TempFile file("torn_concurrent");
    const RunResult result = sampleResult();
    {
        SweepJournal journal(file.path);
        journal.record(1, result);
        journal.record(2, result);
    }
    // Chop the final line in half.
    std::string bytes = slurp(file.path);
    bytes.resize(bytes.size() - bytes.size() / 4);
    {
        std::ofstream out(file.path,
                          std::ios::binary | std::ios::trunc);
        out << bytes;
    }
    {
        SweepJournal a(file.path); // repairs the tail
        EXPECT_EQ(a.loadedCount(), 1u);
        SweepJournal b(file.path); // already clean
        EXPECT_EQ(b.loadedCount(), 1u);
        std::thread ta([&] {
            for (int i = 0; i < 20; ++i)
                a.record(0x100u + i, result);
        });
        std::thread tb([&] {
            for (int i = 0; i < 20; ++i)
                b.record(0x200u + i, result);
        });
        ta.join();
        tb.join();
    }
    EXPECT_EQ(SweepJournal(file.path).loadedCount(), 41u);
}

} // namespace
} // namespace tempo
