/**
 * @file
 * Differential tests for the memoized translation fast path
 * (vm/translator.hh). The reference is the functional PageTable walk
 * itself: the memo must agree with it on every PTE, permission bit,
 * and page size at every instant, across arbitrary interleavings of
 * translations and page-table mutations (map/unmap/remap/protect/
 * superpage promotion), multiple address spaces, and all three page
 * sizes. TranslatorByteIdentity additionally pins the end-to-end
 * guarantee: full simulation results are byte-identical with the memo
 * on or off.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "core/experiment.hh"
#include "core/tempo_system.hh"
#include "stats/json.hh"
#include "vm/os_memory.hh"
#include "vm/page_table.hh"
#include "vm/translator.hh"

namespace tempo {
namespace {

void
expectSameXlate(const Translation &got, const Translation &want,
                const char *what, Addr vaddr)
{
    EXPECT_EQ(got.valid, want.valid) << what << " @ " << vaddr;
    if (!got.valid || !want.valid)
        return;
    EXPECT_EQ(got.writable, want.writable) << what << " @ " << vaddr;
    EXPECT_EQ(got.pframe, want.pframe) << what << " @ " << vaddr;
    EXPECT_EQ(got.size, want.size) << what << " @ " << vaddr;
}

void
expectSameWalk(const CachedWalk &got, const WalkResult &want,
               const char *what, Addr vaddr)
{
    expectSameXlate(got.xlate, want.xlate, what, vaddr);
    ASSERT_EQ(static_cast<std::size_t>(got.count), want.steps.size())
        << what << " @ " << vaddr;
    for (int i = 0; i < got.count; ++i) {
        EXPECT_EQ(got.steps[i].level, want.steps[i].level)
            << what << " step " << i << " @ " << vaddr;
        EXPECT_EQ(got.steps[i].pteAddr, want.steps[i].pteAddr)
            << what << " step " << i << " @ " << vaddr;
    }
}

TranslatorConfig
referenceConfig()
{
    TranslatorConfig cfg;
    cfg.useReferenceTranslator = true;
    return cfg;
}

/**
 * One address space under differential test: the table, a memoized
 * translator, a reference-path translator over the same table, and a
 * model of the mapped leaves so the harness only generates legal
 * mutations (map() asserts on double mapping; promotion cannot split
 * an existing larger superpage).
 */
struct DiffSpace {
    PageTable table;
    Translator memo;
    Translator ref;
    std::map<Addr, PageSize> leaves; //!< leaf base -> page size

    DiffSpace(OsMemory &os, const TranslatorConfig &memo_cfg)
        : table(os), memo(table, memo_cfg),
          ref(table, referenceConfig())
    {
    }

    /** Any mapped leaf intersecting [base, base+bytes)? */
    bool
    overlaps(Addr base, Addr bytes) const
    {
        auto it = leaves.lower_bound(base);
        if (it != leaves.end() && it->first < base + bytes)
            return true;
        if (it != leaves.begin()) {
            --it;
            if (it->first + pageBytes(it->second) > base)
                return true;
        }
        return false;
    }

    /** Is [base, base+bytes) inside a mapped leaf *larger* than bytes?
     * Promoting such a region would split a superpage — illegal. */
    bool
    insideLargerLeaf(Addr base, Addr bytes) const
    {
        auto it = leaves.lower_bound(base);
        if (it != leaves.end() && it->first == base)
            return pageBytes(it->second) > bytes;
        if (it != leaves.begin()) {
            --it;
            return it->first + pageBytes(it->second) > base
                   && pageBytes(it->second) > bytes;
        }
        return false;
    }

    /** Random mapped leaf, or leaves.end() when empty. */
    std::map<Addr, PageSize>::iterator
    randomLeaf(Rng &rng)
    {
        if (leaves.empty())
            return leaves.end();
        auto it = leaves.begin();
        std::advance(it, static_cast<long>(rng.below(leaves.size())));
        return it;
    }
};

struct HarnessParam {
    std::uint64_t seed;
    /** Shrink the memo to 2 slots so direct-mapped collisions and
     * evictions happen constantly. */
    bool tiny;

    friend std::ostream &
    operator<<(std::ostream &os, const HarnessParam &p)
    {
        return os << "seed" << p.seed << (p.tiny ? "Tiny" : "Full");
    }
};

class TranslatorDifferential
    : public ::testing::TestWithParam<HarnessParam>
{
};

/**
 * The centerpiece: >=10k randomized interleaved translate/mutate ops
 * per seed, across two address spaces sharing one frame allocator
 * (cross-AS aliasing), all three page sizes, with the functional
 * PageTable as the oracle on every single operation plus periodic full
 * sweeps of every mapped leaf.
 */
TEST_P(TranslatorDifferential, MemoMatchesFunctionalWalkUnderMutation)
{
    const HarnessParam param = GetParam();
    Rng rng(param.seed);
    OsMemory os{OsMemoryConfig{}};

    TranslatorConfig memo_cfg;
    if (param.tiny) {
        memo_cfg.memoSlots = 2;
        memo_cfg.walkSlots = 2;
    }
    DiffSpace space_a(os, memo_cfg);
    DiffSpace space_b(os, memo_cfg);
    DiffSpace *spaces[] = {&space_a, &space_b};

    ASSERT_FALSE(space_a.memo.usingReference());
    ASSERT_TRUE(space_a.ref.usingReference());

    constexpr Addr kUniverse = Addr{8} << 30; // 8 x 1GB regions
    constexpr int kOps = 12000;

    auto pickSize = [&]() -> PageSize {
        const std::uint64_t roll = rng.below(100);
        if (roll < 80)
            return PageSize::Page4K;
        if (roll < 96)
            return PageSize::Page2M;
        return PageSize::Page1G;
    };
    // Bias probes toward mapped pages so hits, same-page streaks, and
    // stale-entry hazards are exercised, not just cold misses.
    auto pickVaddr = [&](DiffSpace &s) -> Addr {
        if (!s.leaves.empty() && rng.chance(0.7)) {
            const auto it = s.randomLeaf(rng);
            return it->first + rng.below(pageBytes(it->second));
        }
        return rng.below(kUniverse);
    };
    auto probe = [&](DiffSpace &s, Addr vaddr) {
        const Translation want = s.table.translate(vaddr);
        expectSameXlate(s.memo.translate(vaddr), want, "memo", vaddr);
        expectSameXlate(s.ref.translate(vaddr), want, "ref", vaddr);
    };

    for (int op = 0; op < kOps; ++op) {
        DiffSpace &s = *spaces[rng.below(2)];
        const std::uint64_t action = rng.below(100);

        if (action < 40) {
            // Pure translation, often twice so the last-slot path and
            // the memo-hit path both fire.
            const Addr vaddr = pickVaddr(s);
            probe(s, vaddr);
            if (rng.chance(0.5))
                probe(s, vaddr);
        } else if (action < 55) {
            // Structural walk (valid or faulting).
            const Addr vaddr = pickVaddr(s);
            const WalkResult want = s.table.walk(vaddr);
            expectSameWalk(s.memo.walk(vaddr), want, "walk", vaddr);
            expectSameWalk(s.memo.walk(vaddr), want, "rewalk", vaddr);
        } else if (action < 67) {
            // map() a fresh page. Probe the address *before* mapping
            // too: a memoized negative must not mask the new mapping.
            const PageSize size = pickSize();
            const Addr base =
                alignDown(rng.below(kUniverse), pageBytes(size));
            if (s.overlaps(base, pageBytes(size)))
                continue;
            probe(s, base);
            const Addr frame = os.allocFrame(size);
            if (frame == kInvalidAddr)
                continue;
            s.table.map(base, size, frame, rng.chance(0.8));
            s.leaves.emplace(base, size);
            probe(s, base + rng.below(pageBytes(size)));
        } else if (action < 76) {
            // unmap() a live leaf (probed warm first).
            const auto it = s.randomLeaf(rng);
            if (it == s.leaves.end())
                continue;
            const Addr base = it->first;
            const Addr bytes = pageBytes(it->second);
            probe(s, base);
            EXPECT_TRUE(s.table.unmap(base + rng.below(bytes)));
            s.leaves.erase(it);
            probe(s, base);
        } else if (action < 84) {
            // remap() a live leaf to a different frame.
            const auto it = s.randomLeaf(rng);
            if (it == s.leaves.end())
                continue;
            const Addr base = it->first;
            const PageSize size = it->second;
            probe(s, base);
            const Addr frame = os.allocFrame(size);
            if (frame == kInvalidAddr)
                continue;
            s.table.remap(base, size, frame, rng.chance(0.8));
            probe(s, base + rng.below(pageBytes(size)));
        } else if (action < 90) {
            // protect(): flip the permission bit under a warm memo.
            const auto it = s.randomLeaf(rng);
            if (it == s.leaves.end())
                continue;
            const Addr base = it->first;
            probe(s, base);
            EXPECT_TRUE(s.table.protect(base, rng.chance(0.5)));
            probe(s, base);
        } else if (action < 96) {
            // Superpage promotion over whatever is mapped inside.
            const PageSize size =
                rng.chance(0.85) ? PageSize::Page2M : PageSize::Page1G;
            const Addr bytes = pageBytes(size);
            const Addr base = alignDown(rng.below(kUniverse), bytes);
            if (s.insideLargerLeaf(base, bytes))
                continue;
            const Addr frame = os.allocFrame(size);
            if (frame == kInvalidAddr)
                continue;
            // Warm the memo on a soon-to-be-covered 4K leaf.
            const auto it = s.leaves.lower_bound(base);
            if (it != s.leaves.end() && it->first < base + bytes)
                probe(s, it->first);
            s.table.promote(base, size, frame, rng.chance(0.8));
            s.leaves.erase(s.leaves.lower_bound(base),
                           s.leaves.lower_bound(base + bytes));
            s.leaves.emplace(base, size);
            probe(s, base + rng.below(bytes));
        } else if (action < 98) {
            // touched-bit fast path: may only claim "touched" for a
            // live mapping.
            const Addr vaddr = pickVaddr(s);
            if (s.memo.touchedFast(vaddr))
                EXPECT_TRUE(s.table.translate(vaddr).valid);
            if (s.table.translate(vaddr).valid) {
                s.memo.noteTouched(vaddr);
                EXPECT_TRUE(s.memo.touchedFast(vaddr));
            }
            probe(s, vaddr);
        } else {
            s.memo.invalidateAll();
            probe(s, pickVaddr(s));
        }

        // Full invalidation-completeness sweep: every mapped leaf in
        // both spaces, through the memo, against a fresh walk.
        if ((op + 1) % 3000 == 0) {
            for (DiffSpace *sp : spaces) {
                for (const auto &[base, size] : sp->leaves) {
                    probe(*sp, base);
                    probe(*sp, base + rng.below(pageBytes(size)));
                    const WalkResult want = sp->table.walk(base);
                    expectSameWalk(sp->memo.walk(base), want, "sweep",
                                   base);
                }
            }
        }
    }

    // The memo actually memoized (the harness would pass vacuously if
    // every lookup took the reference path).
    EXPECT_GT(space_a.memo.hits() + space_b.memo.hits(), 0u);
    EXPECT_GT(space_a.memo.misses() + space_b.memo.misses(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Suite, TranslatorDifferential,
    ::testing::Values(HarnessParam{1, false}, HarnessParam{2, false},
                      HarnessParam{3, false}, HarnessParam{1, true},
                      HarnessParam{2, true}, HarnessParam{3, true}));

// ---------------------------------------------------------------------
// Directed edge cases.

struct TranslatorFixture : public ::testing::Test {
    OsMemory os{OsMemoryConfig{}};
    PageTable table{os};
    Translator memo{table};

    Addr
    map4K(Addr vaddr, bool writable = true)
    {
        const Addr frame = os.allocFrame(PageSize::Page4K);
        table.map(alignDown(vaddr, kPageBytes), PageSize::Page4K, frame,
                  writable);
        return frame;
    }
};

TEST_F(TranslatorFixture, UnmapThenRemapDifferentFrameSameCycle)
{
    const Addr va = 0x1234000;
    map4K(va);
    const Translation before = memo.translate(va);
    ASSERT_TRUE(before.valid);

    // Back-to-back mutation with no intervening lookup: the warm memo
    // entry must not survive into the remapped world.
    ASSERT_TRUE(table.unmap(va));
    const Addr fresh = os.allocFrame(PageSize::Page4K);
    table.map(va, PageSize::Page4K, fresh);

    const Translation after = memo.translate(va);
    ASSERT_TRUE(after.valid);
    EXPECT_EQ(after.pframe, fresh);
    EXPECT_NE(after.pframe, before.pframe);

    // Same via remap() in one call.
    const Addr fresh2 = os.allocFrame(PageSize::Page4K);
    memo.translate(va); // re-warm
    table.remap(va, PageSize::Page4K, fresh2);
    EXPECT_EQ(memo.translate(va).pframe, fresh2);
}

TEST_F(TranslatorFixture, PromotionCoversWarm4KEntries)
{
    const Addr region = 0x40000000; // 2MB-aligned
    std::vector<Addr> vas;
    for (int i = 0; i < 8; ++i)
        vas.push_back(region + static_cast<Addr>(i) * kPageBytes);
    for (const Addr va : vas) {
        map4K(va);
        ASSERT_TRUE(memo.translate(va).valid); // warm the memo
        memo.walk(va);                         // and the walk memo
    }

    const Addr super = os.allocFrame(PageSize::Page2M);
    table.promote(region, PageSize::Page2M, super);

    for (const Addr va : vas) {
        const Translation t = memo.translate(va);
        ASSERT_TRUE(t.valid) << va;
        EXPECT_EQ(t.size, PageSize::Page2M) << va;
        EXPECT_EQ(t.pframe, super) << va;
        const CachedWalk &walk = memo.walk(va);
        EXPECT_EQ(walk.count, 3) << va; // walk now ends at L2
        EXPECT_EQ(walk.steps[walk.count - 1].level, 2) << va;
    }
}

TEST_F(TranslatorFixture, CrossAddressSpaceAliasing)
{
    PageTable other_table{os};
    Translator other{other_table};
    const Addr va = 0x1234000;

    const Addr frame_a = map4K(va);
    const Addr frame_b = os.allocFrame(PageSize::Page4K);
    other_table.map(va, PageSize::Page4K, frame_b);
    ASSERT_NE(frame_a, frame_b);

    EXPECT_EQ(memo.translate(va).pframe, frame_a);
    EXPECT_EQ(other.translate(va).pframe, frame_b);

    // Mutating one space must neither corrupt nor invalidate the
    // other's memo.
    ASSERT_TRUE(other_table.unmap(va));
    EXPECT_FALSE(other.translate(va).valid);
    EXPECT_EQ(memo.translate(va).pframe, frame_a);

    const Addr frame_c = os.allocFrame(PageSize::Page4K);
    other_table.map(va, PageSize::Page4K, frame_c);
    EXPECT_EQ(other.translate(va).pframe, frame_c);
    EXPECT_EQ(memo.translate(va).pframe, frame_a);
}

TEST_F(TranslatorFixture, NegativeResultsAreNeverMemoized)
{
    const Addr va = 0x7654000;
    // Miss on an unmapped page, repeatedly: nothing may be cached.
    EXPECT_FALSE(memo.translate(va).valid);
    EXPECT_FALSE(memo.translate(va).valid);
    const CachedWalk &faulting = memo.walk(va);
    EXPECT_FALSE(faulting.xlate.valid);

    // map() does not bump the mutation epoch — only the no-negative-
    // memoization invariant makes this correct.
    const Addr frame = map4K(va);
    const Translation t = memo.translate(va);
    ASSERT_TRUE(t.valid);
    EXPECT_EQ(t.pframe, frame);
    const CachedWalk &walk = memo.walk(va);
    ASSERT_TRUE(walk.xlate.valid);
    EXPECT_EQ(walk.count, 4);
}

TEST_F(TranslatorFixture, MapDoesNotInvalidateWarmEntries)
{
    const Addr va = 0x1234000;
    map4K(va);
    memo.translate(va); // miss, fills
    const std::uint64_t epoch = table.mutationEpoch();
    const std::uint64_t hits = memo.hits();

    map4K(0x9999000); // unrelated map: no epoch bump, no memo flush
    EXPECT_EQ(table.mutationEpoch(), epoch);
    ASSERT_TRUE(memo.translate(va).valid);
    EXPECT_GT(memo.hits(), hits);
}

TEST_F(TranslatorFixture, InvalidateAllFlushesButStaysCorrect)
{
    const Addr va = 0x1234000;
    const Addr frame = map4K(va);
    memo.translate(va);
    const std::uint64_t misses = memo.misses();

    memo.invalidateAll();
    const Translation t = memo.translate(va);
    ASSERT_TRUE(t.valid);
    EXPECT_EQ(t.pframe, frame);
    EXPECT_GT(memo.misses(), misses); // the flush really flushed
}

TEST_F(TranslatorFixture, ProtectFlipsPermissionBitUnderWarmMemo)
{
    const Addr va = 0x1234000;
    map4K(va, /*writable=*/true);
    ASSERT_TRUE(memo.translate(va).writable);

    ASSERT_TRUE(table.protect(va, false));
    EXPECT_FALSE(memo.translate(va).writable);
    ASSERT_TRUE(table.protect(va, true));
    EXPECT_TRUE(memo.translate(va).writable);
}

TEST_F(TranslatorFixture, DirectMappedCollisionsStayCorrect)
{
    TranslatorConfig tiny;
    tiny.memoSlots = 2;
    tiny.walkSlots = 2;
    Translator small{table, tiny};

    // Four pages whose 4K VPNs all collide in a 2-slot memo.
    std::vector<Addr> vas;
    std::vector<Addr> frames;
    for (int i = 0; i < 4; ++i) {
        const Addr va = static_cast<Addr>(i) * 2 * kPageBytes;
        vas.push_back(va);
        frames.push_back(map4K(va));
    }
    for (int round = 0; round < 16; ++round) {
        const std::size_t i = static_cast<std::size_t>(round) % 4;
        const Translation t = small.translate(vas[i]);
        ASSERT_TRUE(t.valid);
        EXPECT_EQ(t.pframe, frames[i]);
    }
    EXPECT_GT(small.misses(), 4u); // evictions actually happened
}

TEST_F(TranslatorFixture, TouchedBitTracksMappingLifetime)
{
    const Addr va = 0x1234000;
    EXPECT_FALSE(memo.touchedFast(va)); // unmapped: nothing to claim

    map4K(va);
    EXPECT_FALSE(memo.touchedFast(va)); // mapped but never noted
    memo.noteTouched(va);
    EXPECT_TRUE(memo.touchedFast(va));
    EXPECT_TRUE(memo.touchedFast(va + 0x123)); // same granule

    ASSERT_TRUE(table.unmap(va));
    EXPECT_FALSE(memo.touchedFast(va)); // stale touched bit is dead
}

TEST_F(TranslatorFixture, ReferencePathMatchesTableExactly)
{
    TranslatorConfig cfg;
    cfg.useReferenceTranslator = true;
    Translator ref{table, cfg};
    ASSERT_TRUE(ref.usingReference());

    const Addr va = 0x1234000;
    const Addr frame = map4K(va);
    EXPECT_EQ(ref.translate(va).pframe, frame);
    const WalkResult want = table.walk(va);
    expectSameWalk(ref.walk(va), want, "ref walk", va);
    EXPECT_EQ(ref.hits(), 0u); // the reference path never memoizes
}

TEST(TranslatorEnv, EnvVarForcesReferencePath)
{
    OsMemory os{OsMemoryConfig{}};
    PageTable table{os};

    ASSERT_EQ(setenv("TEMPO_REFERENCE_TRANSLATOR", "1", 1), 0);
    Translator forced{table};
    ASSERT_EQ(setenv("TEMPO_REFERENCE_TRANSLATOR", "0", 1), 0);
    Translator off{table};
    ASSERT_EQ(unsetenv("TEMPO_REFERENCE_TRANSLATOR"), 0);
    Translator plain{table};

    EXPECT_TRUE(forced.usingReference());
    EXPECT_FALSE(off.usingReference());
    EXPECT_FALSE(plain.usingReference());
}

// ---------------------------------------------------------------------
// End-to-end byte identity: full simulations of two paper workloads,
// serialized through the bench JSON writer, must be byte-identical
// with the memo on and off — the memo is invisible to the timing
// model, not merely statistically close.

TEST(TranslatorByteIdentity, BenchJsonIdenticalMemoVsReference)
{
    constexpr std::uint64_t kRefs = 20000;
    for (const char *workload : {"mcf", "astar.small"}) {
        for (const bool tempo_on : {false, true}) {
            SystemConfig cfg = SystemConfig::skylakeScaled();
            cfg.withTempo(tempo_on);
            cfg.translator.useReferenceTranslator = false;
            SystemConfig ref_cfg = cfg;
            ref_cfg.translator.useReferenceTranslator = true;

            const RunResult memo_run = runWorkload(cfg, workload, kRefs);
            const RunResult ref_run =
                runWorkload(ref_cfg, workload, kRefs);

            const auto dumpOf = [&](const RunResult &r) {
                std::vector<stats::BenchPoint> points;
                points.push_back(toBenchPoint(
                    workload, {{"tempo", tempo_on ? "on" : "off"}}, r));
                return stats::benchJson("translator_identity", kRefs,
                                        42, points)
                    .dump();
            };
            EXPECT_EQ(dumpOf(memo_run), dumpOf(ref_run))
                << workload << " tempo=" << tempo_on;
        }
    }
}

} // namespace
} // namespace tempo
