#include <gtest/gtest.h>

#include "dram/address_map.hh"

namespace tempo {
namespace {

DramConfig
defaultConfig()
{
    return DramConfig{};
}

TEST(AddressMap, AdjacentLinesShareRow)
{
    const DramConfig cfg = defaultConfig();
    AddressMap map(cfg);
    // An aligned row-buffer-sized block maps to a single row.
    const Addr base = 16 * cfg.rowBufferBytes;
    for (Addr off = 0; off < cfg.rowBufferBytes; off += kLineBytes)
        EXPECT_TRUE(map.sameRow(base, base + off)) << off;
}

TEST(AddressMap, AdjacentPagesShareRowWith8KRows)
{
    // The paper's Fig. 8 layout: 8KB rows, 4KB pages => two
    // spatially-adjacent physical pages share a DRAM row.
    DramConfig cfg = defaultConfig();
    cfg.rowBufferBytes = 8192;
    AddressMap map(cfg);
    const Addr page0 = 0x40000;
    EXPECT_TRUE(map.sameRow(page0, page0 + kPageBytes));
    EXPECT_FALSE(map.sameRow(page0, page0 + 2 * kPageBytes));
}

TEST(AddressMap, ConsecutiveRowsInterleaveChannels)
{
    DramConfig cfg = defaultConfig();
    ASSERT_GT(cfg.channels, 1u);
    AddressMap map(cfg);
    const DramCoord a = map.decode(0);
    const DramCoord b = map.decode(cfg.rowBufferBytes);
    EXPECT_NE(a.channel, b.channel);
}

TEST(AddressMap, DecodeFieldsInRange)
{
    const DramConfig cfg = defaultConfig();
    AddressMap map(cfg);
    for (Addr addr = 0; addr < (1ull << 34); addr += 0x3fff1) {
        const DramCoord coord = map.decode(addr);
        EXPECT_LT(coord.channel, cfg.channels);
        EXPECT_LT(coord.rank, cfg.ranksPerChannel);
        EXPECT_LT(coord.bank, cfg.banksPerRank);
        EXPECT_LT(coord.col, cfg.rowBufferBytes / kLineBytes);
        EXPECT_LT(coord.flatBank(cfg), cfg.totalBanks());
    }
}

TEST(AddressMap, DecodeIsInjectivePerLine)
{
    const DramConfig cfg = defaultConfig();
    AddressMap map(cfg);
    const DramCoord a = map.decode(0x12340);
    const DramCoord b = map.decode(0x12340 + kLineBytes);
    EXPECT_FALSE(a == b);
}

TEST(AddressMap, SegmentsPartitionTheRow)
{
    const DramConfig cfg = defaultConfig();
    AddressMap map(cfg);
    const unsigned subrows = 8;
    const Addr base = 128 * cfg.rowBufferBytes; // row-aligned
    const Addr seg_bytes = cfg.rowBufferBytes / subrows;
    for (Addr off = 0; off < cfg.rowBufferBytes; off += kLineBytes) {
        EXPECT_EQ(map.segment(base + off, subrows), off / seg_bytes)
            << off;
    }
}

TEST(AddressMap, SegmentOfMonolithicRowIsZero)
{
    const DramConfig cfg = defaultConfig();
    AddressMap map(cfg);
    EXPECT_EQ(map.segment(0xabcdef, 1), 0u);
}

struct GeometryParam {
    unsigned channels, ranks, banks;
    Addr rowBytes;
};

class AddressMapGeometry : public ::testing::TestWithParam<GeometryParam>
{
};

TEST_P(AddressMapGeometry, RoundTripFieldsStayInRange)
{
    const GeometryParam p = GetParam();
    DramConfig cfg;
    cfg.channels = p.channels;
    cfg.ranksPerChannel = p.ranks;
    cfg.banksPerRank = p.banks;
    cfg.rowBufferBytes = p.rowBytes;
    AddressMap map(cfg);
    for (Addr addr = 0; addr < (1ull << 32); addr += 0x10003f) {
        const DramCoord coord = map.decode(addr);
        EXPECT_LT(coord.channel, p.channels);
        EXPECT_LT(coord.rank, p.ranks);
        EXPECT_LT(coord.bank, p.banks);
        EXPECT_LT(coord.col, p.rowBytes / kLineBytes);
    }
}

TEST_P(AddressMapGeometry, SameRowIsReflexive)
{
    const GeometryParam p = GetParam();
    DramConfig cfg;
    cfg.channels = p.channels;
    cfg.ranksPerChannel = p.ranks;
    cfg.banksPerRank = p.banks;
    cfg.rowBufferBytes = p.rowBytes;
    AddressMap map(cfg);
    for (Addr addr = 0; addr < (1ull << 30); addr += 0x7ffff)
        EXPECT_TRUE(map.sameRow(addr, addr));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AddressMapGeometry,
    ::testing::Values(GeometryParam{1, 1, 8, 8192},
                      GeometryParam{2, 1, 8, 8192},
                      GeometryParam{4, 2, 16, 4096},
                      GeometryParam{2, 2, 8, 16384},
                      GeometryParam{8, 1, 4, 2048}));

} // namespace
} // namespace tempo
