#include <gtest/gtest.h>

#include <memory>

#include "dram/bank.hh"

namespace tempo {
namespace {

struct BankFixture : public ::testing::Test {
    DramConfig cfg;
    std::unique_ptr<RowPolicy> policy;
    std::unique_ptr<Bank> bank;
    EnergyCounters energy;

    void
    build(RowPolicyKind kind = RowPolicyKind::Open,
          SubRowAlloc alloc = SubRowAlloc::None, unsigned dedicated = 0)
    {
        cfg.rowPolicy = kind;
        cfg.subRowAlloc = alloc;
        cfg.subRowsForPrefetch = dedicated;
        policy = std::make_unique<RowPolicy>(cfg);
        bank = std::make_unique<Bank>(cfg, 0, policy.get());
    }

    BankAccess
    access(Addr row, Cycle when = 0, unsigned segment = 0,
           bool prefetch = false, AppId app = 0, Cycle hold = 0)
    {
        return bank->access(row, segment, false, prefetch, app, when,
                            hold, energy);
    }
};

TEST_F(BankFixture, FirstAccessIsMiss)
{
    build();
    const BankAccess result = access(5);
    EXPECT_EQ(result.event, RowEvent::Miss);
    EXPECT_EQ(result.complete - result.start, cfg.missLatency());
    EXPECT_EQ(energy.activates, 1u);
    EXPECT_EQ(energy.precharges, 0u);
}

TEST_F(BankFixture, SecondAccessSameRowHits)
{
    build();
    access(5);
    const BankAccess result = access(5, 200);
    EXPECT_EQ(result.event, RowEvent::Hit);
    EXPECT_EQ(result.complete - result.start, cfg.hitLatency());
}

TEST_F(BankFixture, DifferentRowConflicts)
{
    build();
    access(5);
    const BankAccess result = access(6, 500);
    EXPECT_EQ(result.event, RowEvent::Conflict);
    EXPECT_EQ(result.complete - result.start, cfg.conflictLatency());
    EXPECT_EQ(energy.precharges, 1u);
    EXPECT_EQ(energy.activates, 2u);
}

TEST_F(BankFixture, HitLatencyIsFasterThanConflict)
{
    build();
    // Paper Sec. 2.3: row buffer hits cut access time by as much as 66%.
    EXPECT_LT(cfg.hitLatency() * 2, cfg.conflictLatency());
}

TEST_F(BankFixture, ClosedPolicyAlwaysMisses)
{
    build(RowPolicyKind::Closed);
    access(5);
    const BankAccess result = access(5, 1000);
    // Same row, but the closed policy precharged it: a miss, not a hit,
    // and crucially not a conflict either.
    EXPECT_EQ(result.event, RowEvent::Miss);
}

TEST_F(BankFixture, ClosedPolicyPrechargeOffCriticalPath)
{
    build(RowPolicyKind::Closed);
    const BankAccess first = access(5);
    // The bank is busy with the background precharge after the access.
    EXPECT_GT(bank->readyAt(), first.complete);
    // A much later access pays only the miss latency.
    const BankAccess second = access(6, 10000);
    EXPECT_EQ(second.event, RowEvent::Miss);
    EXPECT_EQ(second.complete - second.start, cfg.missLatency());
}

TEST_F(BankFixture, BankBusyDelaysNextAccess)
{
    build();
    const BankAccess first = access(5, 0);
    const BankAccess second = access(5, 1); // arrives while busy
    EXPECT_GE(second.start, first.complete);
}

TEST_F(BankFixture, TrasEnforcedBeforeConflictPrecharge)
{
    build();
    const BankAccess first = access(5, 0);
    // Immediately conflicting access: the open row cannot be precharged
    // until tRAS after its activation.
    const BankAccess second = access(6, first.complete);
    EXPECT_GE(second.start, first.start + cfg.tRAS);
}

TEST_F(BankFixture, HoldKeepsRowOpenPastPolicy)
{
    build(RowPolicyKind::Closed);
    // With a hold the closed policy must not precharge.
    access(5, 0, 0, false, 0, /*hold=*/50);
    const BankAccess result = access(5, 10);
    EXPECT_EQ(result.event, RowEvent::Hit);
}

TEST_F(BankFixture, HoldDelaysConflictingEviction)
{
    build();
    const BankAccess first = access(5, 0, 0, false, 0, /*hold=*/500);
    const BankAccess conflicting = access(6, first.complete + 1);
    // The conflicting access must wait for the hold to expire.
    EXPECT_GE(conflicting.start, first.complete + 500);
}

TEST_F(BankFixture, WouldHitReflectsState)
{
    build();
    EXPECT_FALSE(bank->wouldHit(5, 0));
    access(5);
    EXPECT_TRUE(bank->wouldHit(5, 0));
    EXPECT_FALSE(bank->wouldHit(6, 0));
}

TEST_F(BankFixture, OpenRowVisible)
{
    build();
    EXPECT_EQ(bank->openRow(0), kInvalidAddr);
    access(17);
    EXPECT_EQ(bank->openRow(0), 17u);
}

// --- Sub-row buffers ---

TEST_F(BankFixture, SubRowsHoldMultipleSegments)
{
    build(RowPolicyKind::Open, SubRowAlloc::POA);
    EXPECT_EQ(bank->numSlots(), cfg.subRowCount);
    access(5, 0, /*segment=*/0);
    access(5, 300, /*segment=*/1);
    // Both segments of row 5 are now buffered.
    EXPECT_TRUE(bank->wouldHit(5, 0));
    EXPECT_TRUE(bank->wouldHit(5, 1));
    EXPECT_EQ(access(5, 600, 0).event, RowEvent::Hit);
    EXPECT_EQ(access(5, 900, 1).event, RowEvent::Hit);
}

TEST_F(BankFixture, SubRowSegmentMissIsNotAHit)
{
    build(RowPolicyKind::Open, SubRowAlloc::POA);
    access(5, 0, 0);
    // Same row, different segment: must activate that segment.
    EXPECT_EQ(access(5, 300, 2).event, RowEvent::Miss);
}

TEST_F(BankFixture, DedicatedPrefetchSubRowsAreReserved)
{
    build(RowPolicyKind::Open, SubRowAlloc::POA, /*dedicated=*/2);
    // Fill all demand slots (slots 2..7) with distinct rows.
    for (unsigned i = 0; i < cfg.subRowCount - 2; ++i)
        access(100 + i, i * 500, 0, false, 0);
    // A prefetch goes into the reserved slots, evicting none of the
    // demand rows.
    access(999, 10000, 0, /*prefetch=*/true, 0);
    for (unsigned i = 0; i < cfg.subRowCount - 2; ++i)
        EXPECT_TRUE(bank->wouldHit(100 + i, 0)) << i;
    EXPECT_TRUE(bank->wouldHit(999, 0));
}

TEST_F(BankFixture, DemandNeverEvictsDedicatedPrefetchRows)
{
    build(RowPolicyKind::Open, SubRowAlloc::POA, /*dedicated=*/2);
    access(999, 0, 0, /*prefetch=*/true, 0);
    // Flood with demand rows: the prefetched row must survive.
    for (unsigned i = 0; i < 4 * cfg.subRowCount; ++i)
        access(200 + i, 1000 + i * 500, 0, false, 0);
    EXPECT_TRUE(bank->wouldHit(999, 0));
}

TEST_F(BankFixture, DemandCanStillHitPrefetchedSubRow)
{
    build(RowPolicyKind::Open, SubRowAlloc::POA, /*dedicated=*/2);
    access(999, 0, 0, /*prefetch=*/true, 0);
    // The replay (a demand access) hits the dedicated sub-row.
    EXPECT_EQ(access(999, 500, 0, false, 0).event, RowEvent::Hit);
}

TEST_F(BankFixture, FoaPartitionsSlotsByApp)
{
    build(RowPolicyKind::Open, SubRowAlloc::FOA);
    // App 0 and app 1 map to different preferred slots; filling app 0's
    // slot should not evict app 1's row once slots run out.
    access(10, 0, 0, false, /*app=*/0);
    access(20, 500, 0, false, /*app=*/1);
    EXPECT_TRUE(bank->wouldHit(10, 0));
    EXPECT_TRUE(bank->wouldHit(20, 0));
}

TEST_F(BankFixture, EnergyCountsReadsAndWrites)
{
    build();
    bank->access(5, 0, /*write=*/true, false, 0, 0, 0, energy);
    bank->access(5, 0, /*write=*/false, false, 0, 500, 0, energy);
    EXPECT_EQ(energy.colWrites, 1u);
    EXPECT_EQ(energy.colReads, 1u);
}

} // namespace
} // namespace tempo
