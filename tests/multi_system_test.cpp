#include <gtest/gtest.h>

#include <cmath>

#include "core/multi_system.hh"

namespace tempo {
namespace {

constexpr std::uint64_t kRefs = 15000;

std::vector<std::string>
smallMix()
{
    return {"xsbench", "astar.small", "mcf", "hmmer.small"};
}

TEST(MultiSystem, AllAppsFinish)
{
    SystemConfig cfg = SystemConfig::skylakeScaled();
    MultiSystem system(cfg, makeMix(smallMix(), cfg.seed));
    const MultiResult result = system.run(kRefs);
    ASSERT_EQ(result.appFinish.size(), 4u);
    for (std::size_t i = 0; i < 4; ++i) {
        EXPECT_GT(result.appFinish[i], 0u);
        EXPECT_EQ(result.appStats[i].refs, kRefs);
    }
    EXPECT_EQ(result.runtime,
              *std::max_element(result.appFinish.begin(),
                                result.appFinish.end()));
}

TEST(MultiSystem, SharingSlowsAppsDown)
{
    SystemConfig cfg = SystemConfig::skylakeScaled();
    const auto alone = aloneRuntimes(cfg, smallMix(), kRefs);
    MultiSystem system(cfg, makeMix(smallMix(), cfg.seed));
    const MultiResult shared = system.run(kRefs);
    // Contention can only hurt: every app is at least as slow shared.
    for (std::size_t i = 0; i < alone.size(); ++i)
        EXPECT_GE(shared.appFinish[i] * 100, alone[i] * 95) << i;
    EXPECT_GE(shared.maxSlowdown(alone), 1.0);
}

TEST(MultiSystem, WeightedSpeedupBounded)
{
    SystemConfig cfg = SystemConfig::skylakeScaled();
    const auto alone = aloneRuntimes(cfg, smallMix(), kRefs);
    MultiSystem system(cfg, makeMix(smallMix(), cfg.seed));
    const MultiResult result = system.run(kRefs);
    const double ws = result.weightedSpeedup(alone);
    EXPECT_GT(ws, 0.0);
    // Weighted speedup cannot exceed N (every app running alone-speed),
    // modulo tiny constructive-interference effects.
    EXPECT_LE(ws, 4.2);
}

TEST(MultiSystem, DeterministicAcrossRuns)
{
    SystemConfig cfg = SystemConfig::skylakeScaled();
    MultiSystem a(cfg, makeMix(smallMix(), cfg.seed));
    MultiSystem b(cfg, makeMix(smallMix(), cfg.seed));
    const MultiResult ra = a.run(kRefs);
    const MultiResult rb = b.run(kRefs);
    EXPECT_EQ(ra.appFinish, rb.appFinish);
}

TEST(MultiSystem, BlissRunsAndBlacklists)
{
    SystemConfig cfg = SystemConfig::skylakeScaled();
    cfg.withSched(SchedKind::Bliss);
    MultiSystem system(cfg, makeMix(smallMix(), cfg.seed));
    const MultiResult result = system.run(kRefs);
    EXPECT_GT(result.runtime, 0u);
    auto *bliss =
        dynamic_cast<BlissScheduler *>(&system.machine().mc.scheduler());
    ASSERT_NE(bliss, nullptr);
    // With a memory-hungry app in the mix, blacklisting must trigger.
    EXPECT_GT(bliss->blacklistEvents(), 0u);
}

TEST(MultiSystem, TempoHelpsUnderBliss)
{
    SystemConfig cfg = SystemConfig::skylakeScaled();
    cfg.withSched(SchedKind::Bliss);
    MultiSystem base(cfg, makeMix(smallMix(), cfg.seed));
    const MultiResult rb = base.run(kRefs);

    SystemConfig tempo_cfg = cfg;
    tempo_cfg.withTempo(true);
    MultiSystem tempo(tempo_cfg, makeMix(smallMix(), tempo_cfg.seed));
    const MultiResult rt = tempo.run(kRefs);

    const auto alone = aloneRuntimes(cfg, smallMix(), kRefs);
    EXPECT_GE(rt.weightedSpeedup(alone), rb.weightedSpeedup(alone));
}

TEST(MultiSystem, SubRowBuffersWork)
{
    SystemConfig cfg = SystemConfig::skylakeScaled();
    cfg.withSubRows(SubRowAlloc::FOA, 2).withTempo(true);
    MultiSystem system(cfg, makeMix(smallMix(), cfg.seed));
    const MultiResult result = system.run(kRefs);
    EXPECT_GT(result.runtime, 0u);
}

TEST(MultiSystem, PerAppStatsAreIndependent)
{
    SystemConfig cfg = SystemConfig::skylakeScaled();
    MultiSystem system(cfg, makeMix(smallMix(), cfg.seed));
    const MultiResult result = system.run(kRefs);
    // xsbench (app 0) must walk far more than astar.small (app 1).
    EXPECT_GT(result.appStats[0].walks, result.appStats[1].walks * 2);
}

TEST(MultiSystem, WarmupWindowsWork)
{
    SystemConfig cfg = SystemConfig::skylakeScaled();
    MultiSystem cold(cfg, makeMix(smallMix(), cfg.seed));
    const MultiResult cold_result = cold.run(kRefs);

    MultiSystem warmed(cfg, makeMix(smallMix(), cfg.seed));
    const MultiResult warm_result = warmed.run(kRefs / 2, kRefs / 2);
    ASSERT_EQ(warm_result.appFinish.size(), 4u);
    for (std::size_t i = 0; i < 4; ++i) {
        // Per-app measured windows are shorter than the full cold run.
        EXPECT_LT(warm_result.appFinish[i], cold_result.appFinish[i]);
        EXPECT_GT(warm_result.appFinish[i], 0u);
    }
}

// The fairness metrics must tolerate ragged alone-runtime input: an
// alone run that failed or was skipped leaves a zero or a missing
// entry, and the mix summary must stay finite instead of dividing by
// zero or walking off the end.
TEST(MultiResultMetrics, WeightedSpeedupSkipsDegenerateEntries)
{
    MultiResult result;
    result.appFinish = {100, 200, 0, 50};
    result.runtime = 200;

    // App 0 is the only clean pair: alone[1] is zero (failed alone
    // run), alone has no entry for app 3, and app 2 never finished.
    const std::vector<Cycle> alone = {200, 0, 300};
    const double ws = result.weightedSpeedup(alone);
    EXPECT_TRUE(std::isfinite(ws));
    EXPECT_DOUBLE_EQ(ws, 2.0);

    const double slow = result.maxSlowdown(alone);
    EXPECT_TRUE(std::isfinite(slow));
    EXPECT_DOUBLE_EQ(slow, 0.5);
}

TEST(MultiResultMetrics, MetricsToleratEmptyAndOversizedAlone)
{
    MultiResult result;
    result.appFinish = {100, 200};

    EXPECT_DOUBLE_EQ(result.weightedSpeedup({}), 0.0);
    EXPECT_DOUBLE_EQ(result.maxSlowdown({}), 0.0);

    // More alone entries than apps: the tail is ignored, not read out
    // of bounds.
    const std::vector<Cycle> oversized = {100, 100, 999, 999};
    EXPECT_DOUBLE_EQ(result.weightedSpeedup(oversized), 1.5);
    EXPECT_DOUBLE_EQ(result.maxSlowdown(oversized), 2.0);

    // All-degenerate input collapses to zero, never NaN.
    const std::vector<Cycle> zeros = {0, 0};
    EXPECT_DOUBLE_EQ(result.weightedSpeedup(zeros), 0.0);
    EXPECT_DOUBLE_EQ(result.maxSlowdown(zeros), 0.0);
}

TEST(MultiSystemDeathTest, EmptyMixRejected)
{
    SystemConfig cfg = SystemConfig::skylakeScaled();
    std::vector<std::unique_ptr<Workload>> empty;
    EXPECT_DEATH(MultiSystem(cfg, std::move(empty)), "empty");
}

} // namespace
} // namespace tempo
