/**
 * @file
 * Fault-isolation tests for the experiment engine: an injected throw
 * or hang must be captured into that point's RunStatus while every
 * other point completes bit-identically; retries must reseed and be
 * counted; the legacy entry points must still rethrow.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <stdexcept>

#include "core/experiment.hh"

namespace tempo {
namespace {

constexpr std::uint64_t kRefs = 4000;

std::vector<ExperimentPoint>
smallSweep(std::size_t n)
{
    std::vector<ExperimentPoint> points;
    const char *workloads[] = {"mcf", "xsbench", "canneal", "spmv"};
    for (std::size_t i = 0; i < n; ++i) {
        ExperimentPoint p;
        p.workload = workloads[i % std::size(workloads)];
        p.config = SystemConfig::skylakeScaled();
        p.config.withTempo(i % 2 == 1);
        p.refs = kRefs;
        points.push_back(std::move(p));
    }
    return points;
}

TEST(ExperimentFault, ThrowInjectionIsolatesThePoint)
{
    ExperimentOptions opts;
    opts.jobs = 4;
    opts.inject = {{1, FaultInjection::Kind::Throw}};
    const std::vector<RunResult> faulty =
        runExperiments(smallSweep(4), opts);
    const std::vector<RunResult> clean = runExperiments(smallSweep(4), 4);

    ASSERT_EQ(faulty.size(), 4u);
    EXPECT_EQ(faulty[1].status.code, RunStatus::Code::Failed);
    EXPECT_EQ(faulty[1].status.error, "injected fault");
    EXPECT_EQ(faulty[1].status.attempts, 1u);
    // A failed point reports zeroed measurements, never partial ones.
    EXPECT_EQ(faulty[1].runtime, 0u);
    EXPECT_TRUE(faulty[1].report.entries().empty());
    // Every other point is untouched, bit for bit.
    for (const std::size_t i : {0u, 2u, 3u}) {
        SCOPED_TRACE(i);
        EXPECT_TRUE(faulty[i].status.ok());
        EXPECT_EQ(faulty[i].runtime, clean[i].runtime);
        EXPECT_EQ(faulty[i].core.refs, clean[i].core.refs);
        EXPECT_EQ(faulty[i].dramPtw, clean[i].dramPtw);
    }
}

TEST(ExperimentFault, HangInjectionTimesOutUnderWatchdog)
{
    ExperimentOptions opts;
    opts.jobs = 2;
    opts.pointTimeoutSec = 0.2;
    opts.inject = {{0, FaultInjection::Kind::Hang}};
    const std::vector<RunResult> results =
        runExperiments(smallSweep(2), opts);
    EXPECT_EQ(results[0].status.code, RunStatus::Code::TimedOut);
    EXPECT_EQ(results[0].runtime, 0u);
    EXPECT_TRUE(results[1].status.ok());
}

TEST(ExperimentFault, HangWithoutTimeoutFailsLoudly)
{
    // A hang with no armed watchdog would stall the suite forever, so
    // the injector refuses it instead.
    ExperimentOptions opts;
    opts.jobs = 1;
    opts.inject = {{0, FaultInjection::Kind::Hang}};
    const std::vector<RunResult> results =
        runExperiments(smallSweep(1), opts);
    EXPECT_EQ(results[0].status.code, RunStatus::Code::Failed);
    EXPECT_NE(results[0].status.error.find("hang"), std::string::npos);
}

TEST(ExperimentFault, RetriesReseedAndAreCounted)
{
    // Deterministic failure: every attempt throws; all retries burn.
    ExperimentPoint p;
    p.workload = "always-fails";
    p.config = SystemConfig::skylakeScaled();
    p.refs = kRefs;
    p.makeWorkloadFn = []() -> std::unique_ptr<Workload> {
        throw std::runtime_error("boom");
    };
    ExperimentOptions opts;
    opts.jobs = 1;
    opts.retries = 2;
    const RunResult dead = runExperiments({p}, opts)[0];
    EXPECT_EQ(dead.status.code, RunStatus::Code::Failed);
    EXPECT_EQ(dead.status.attempts, 3u);
    EXPECT_EQ(dead.status.error, "boom");
    // The final attempt ran from a reseeded (decorrelated) seed.
    EXPECT_NE(dead.status.seedUsed, p.config.seed);

    // Transient failure: the first attempt throws, the retry succeeds.
    auto calls = std::make_shared<std::atomic<int>>(0);
    p.makeWorkloadFn = [calls]() -> std::unique_ptr<Workload> {
        if (calls->fetch_add(1) == 0)
            throw std::runtime_error("transient");
        return makeWorkload("mcf", 7);
    };
    const RunResult revived = runExperiments({p}, opts)[0];
    EXPECT_TRUE(revived.status.ok());
    EXPECT_EQ(revived.status.attempts, 2u);
    EXPECT_EQ(calls->load(), 2);
    EXPECT_GT(revived.runtime, 0u);
}

TEST(ExperimentFault, OnPointDoneSeesEveryPoint)
{
    ExperimentOptions opts;
    opts.jobs = 4;
    std::vector<int> seen(4, 0);
    int ok = 0;
    opts.onPointDone = [&](std::size_t i, const RunResult &result) {
        ++seen[i];
        if (result.status.ok())
            ++ok;
    };
    runExperiments(smallSweep(4), opts);
    for (const int count : seen)
        EXPECT_EQ(count, 1);
    EXPECT_EQ(ok, 4);
}

TEST(ExperimentFault, MixPointsAreIsolatedToo)
{
    std::vector<MixPoint> points;
    MixPoint mix;
    mix.workloads = {"mcf", "xsbench"};
    mix.config = SystemConfig::skylakeScaled();
    mix.refsPerApp = kRefs / 2;
    points.push_back(mix);
    points.push_back(mix);

    ExperimentOptions opts;
    opts.jobs = 2;
    opts.inject = {{0, FaultInjection::Kind::Throw}};
    const std::vector<MultiResult> results =
        runMixExperiments(points, opts);
    EXPECT_EQ(results[0].status.code, RunStatus::Code::Failed);
    EXPECT_TRUE(results[1].status.ok());
    EXPECT_GT(results[1].runtime, 0u);
}

TEST(ExperimentFault, LegacyOverloadStillRethrows)
{
    ExperimentPoint p;
    p.workload = "mcf";
    p.config = SystemConfig::skylakeScaled();
    p.refs = 100;
    p.makeWorkloadFn = []() -> std::unique_ptr<Workload> {
        throw std::invalid_argument("no such workload");
    };
    EXPECT_THROW(runExperiments({p}, 2), std::invalid_argument);
}

TEST(ExperimentFault, OptionsFromEnvParsesKnobs)
{
    ::setenv("TEMPO_RETRIES", "3", 1);
    ::setenv("TEMPO_POINT_TIMEOUT", "2.5", 1);
    ::setenv("TEMPO_FAULT_INJECT", "1:throw,4:hang", 1);
    const ExperimentOptions opts = ExperimentOptions::fromEnv();
    EXPECT_EQ(opts.retries, 3u);
    EXPECT_DOUBLE_EQ(opts.pointTimeoutSec, 2.5);
    ASSERT_EQ(opts.inject.size(), 2u);
    EXPECT_EQ(opts.inject[0].index, 1u);
    EXPECT_EQ(opts.inject[0].kind, FaultInjection::Kind::Throw);
    EXPECT_EQ(opts.inject[1].index, 4u);
    EXPECT_EQ(opts.inject[1].kind, FaultInjection::Kind::Hang);

    ::setenv("TEMPO_FAULT_INJECT", "1:explode", 1);
    EXPECT_THROW(ExperimentOptions::fromEnv(), std::invalid_argument);

    ::unsetenv("TEMPO_RETRIES");
    ::unsetenv("TEMPO_POINT_TIMEOUT");
    ::unsetenv("TEMPO_FAULT_INJECT");
}

TEST(ExperimentFault, PointDigestIsStableAndDiscriminating)
{
    const std::vector<ExperimentPoint> points = smallSweep(2);
    EXPECT_EQ(pointDigest(points[0], 0), pointDigest(points[0], 0));
    EXPECT_NE(pointDigest(points[0], 0), pointDigest(points[1], 1));
    EXPECT_NE(pointDigest(points[0], 0), pointDigest(points[0], 1));
    // An explicit seed 0 hashes differently from no seed at all.
    ExperimentPoint seeded = points[0];
    seeded.seed = 0;
    EXPECT_NE(pointDigest(points[0], 0), pointDigest(seeded, 0));
}

} // namespace
} // namespace tempo
