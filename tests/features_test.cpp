/**
 * @file
 * Tests for the substrate features beyond the paper's core mechanism:
 * warmup measurement windows, dirty-line writeback traffic, and DRAM
 * refresh.
 */

#include <gtest/gtest.h>

#include "core/tempo_system.hh"
#include "dram/dram.hh"

namespace tempo {
namespace {

// --- Dirty bits / writebacks ---

TEST(DirtyTracking, InsertTrackedReportsDirtyVictims)
{
    SetAssocCache cache(256, 2); // 2 sets x 2 ways
    const Addr a = 0 * 128, b = 2 * 128, c = 4 * 128; // same set
    cache.insertTracked(a, true);
    cache.insertTracked(b, false);
    const SetAssocCache::Victim victim = cache.insertTracked(c, false);
    EXPECT_EQ(victim.addr, a);
    EXPECT_TRUE(victim.dirty);
}

TEST(DirtyTracking, MarkDirtySticks)
{
    SetAssocCache cache(4096, 4);
    cache.insert(0x1000);
    EXPECT_FALSE(cache.isDirty(0x1000));
    EXPECT_TRUE(cache.markDirty(0x1000));
    EXPECT_TRUE(cache.isDirty(0x1000));
    EXPECT_FALSE(cache.markDirty(0x9999000)); // absent
}

TEST(DirtyTracking, ReinsertMergesDirtiness)
{
    SetAssocCache cache(4096, 4);
    cache.insertTracked(0x1000, true);
    cache.insertTracked(0x1000, false); // refresh must not clean it
    EXPECT_TRUE(cache.isDirty(0x1000));
}

TEST(DirtyTracking, HierarchyWriteMakesLlcEvictionDirty)
{
    CacheHierarchyConfig cfg;
    SharedLlc llc(cfg.llc);
    CacheHierarchy hierarchy(cfg, &llc);
    hierarchy.fill(0x4000, /*is_write=*/true);
    EXPECT_TRUE(llc.cache().isDirty(lineAddr(Addr{0x4000})));
}

TEST(DirtyTracking, FillReturnsDirtyLlcVictim)
{
    CacheHierarchyConfig cfg;
    cfg.llc = {4096, 1, 42}; // direct-mapped tiny LLC: easy conflicts
    cfg.l1 = {4096, 1, 4};
    cfg.l2 = {4096, 1, 14};
    SharedLlc llc(cfg.llc);
    CacheHierarchy hierarchy(cfg, &llc);
    const Addr a = 0x0;
    const Addr b = 0x1000; // same LLC set (64 sets * 64B = 4096 span)
    hierarchy.fill(a, true);
    const Addr writeback = hierarchy.fill(b, false);
    EXPECT_EQ(writeback, a);
}

TEST(Writebacks, WriteHeavyWorkloadGeneratesThem)
{
    SystemConfig cfg = SystemConfig::skylakeScaled();
    TempoSystem system(cfg, makeWorkload("canneal", cfg.seed));
    system.run(20000);
    EXPECT_GT(system.machine().mc.served(ReqKind::Writeback), 0u);
}

TEST(Writebacks, ReadOnlyWorkloadGeneratesNone)
{
    SystemConfig cfg = SystemConfig::skylakeScaled();
    TempoSystem system(cfg, makeWorkload("lsh", cfg.seed));
    system.run(20000);
    EXPECT_EQ(system.machine().mc.served(ReqKind::Writeback), 0u);
}

// --- Refresh ---

TEST(Refresh, ClosesOpenRows)
{
    DramConfig cfg;
    cfg.rowPolicy = RowPolicyKind::Open;
    cfg.refreshEnabled = true;
    DramDevice dram(cfg);
    dram.access(0x4000, false, false, 0, 0, 0);
    ASSERT_TRUE(dram.wouldRowHit(0x4000));
    // Access long after a refresh interval: the row must have closed.
    const DramResult result = dram.access(
        0x4000, false, false, 0, cfg.tREFI * cfg.totalBanks(), 0);
    EXPECT_EQ(result.event, RowEvent::Miss);
    EXPECT_GT(dram.energy().refreshes, 0u);
}

TEST(Refresh, DisabledMeansNoRefreshes)
{
    DramConfig cfg;
    cfg.rowPolicy = RowPolicyKind::Open;
    cfg.refreshEnabled = false;
    DramDevice dram(cfg);
    dram.access(0x4000, false, false, 0, 0, 0);
    const DramResult result =
        dram.access(0x4000, false, false, 0, cfg.tREFI * 100, 0);
    EXPECT_EQ(result.event, RowEvent::Hit);
    EXPECT_EQ(dram.energy().refreshes, 0u);
}

TEST(Refresh, BankBusyDuringRefresh)
{
    DramConfig cfg;
    cfg.refreshEnabled = true;
    DramDevice dram(cfg);
    // First refresh of bank 0 occurs at tREFI. An access arriving just
    // then waits out tRFC.
    const DramResult result =
        dram.access(0, false, false, 0, cfg.tREFI, 0);
    EXPECT_GE(result.start, cfg.tREFI + cfg.tRFC);
}

TEST(Refresh, CostsRuntimeButPreservesTempoWin)
{
    SystemConfig off_cfg = SystemConfig::skylakeScaled();
    off_cfg.dram.refreshEnabled = false;
    SystemConfig on_cfg = SystemConfig::skylakeScaled();
    on_cfg.dram.refreshEnabled = true;
    const RunResult without = runWorkload(off_cfg, "mcf", 20000);
    const RunResult with = runWorkload(on_cfg, "mcf", 20000);
    EXPECT_GE(with.runtime, without.runtime);
}

// --- Warmup windows ---

TEST(Warmup, MeasuredWindowIsShorterThanFullRun)
{
    SystemConfig cfg = SystemConfig::skylakeScaled();
    TempoSystem cold(cfg, makeWorkload("mcf", cfg.seed));
    const RunResult cold_result = cold.run(30000);

    TempoSystem warmed(cfg, makeWorkload("mcf", cfg.seed));
    const RunResult warm_result = warmed.run(20000, /*warmup=*/10000);
    EXPECT_LT(warm_result.runtime, cold_result.runtime);
    // Roughly the measured refs (the window boundary is fuzzy by the
    // MLP window's worth of in-flight references).
    EXPECT_NEAR(static_cast<double>(warm_result.core.refs), 20000.0,
                64.0);
}

TEST(Warmup, ReducesApparentColdMissRates)
{
    SystemConfig cfg = SystemConfig::skylakeScaled();
    TempoSystem cold(cfg, makeWorkload("gobmk.small", cfg.seed));
    const RunResult cold_result = cold.run(20000);

    TempoSystem warmed(cfg, makeWorkload("gobmk.small", cfg.seed));
    const RunResult warm_result = warmed.run(20000, 20000);
    // A small, cacheable workload looks much better once warmed.
    EXPECT_LT(warm_result.report.get("tlb.miss_rate"),
              cold_result.report.get("tlb.miss_rate"));
}

TEST(Warmup, ZeroWarmupIsIdentityPath)
{
    SystemConfig cfg = SystemConfig::skylakeScaled();
    TempoSystem a(cfg, makeWorkload("sgms", cfg.seed));
    TempoSystem b(cfg, makeWorkload("sgms", cfg.seed));
    EXPECT_EQ(a.run(15000).runtime, b.run(15000, 0).runtime);
}

TEST(Warmup, StatsExcludeWarmupTraffic)
{
    SystemConfig cfg = SystemConfig::skylakeScaled();
    TempoSystem system(cfg, makeWorkload("xsbench", cfg.seed));
    const RunResult result = system.run(10000, 10000);
    // Walk counts reflect only the measured window (about half of what
    // a 20000-ref cold run would report).
    EXPECT_LT(result.core.walks, 10200u);
}

} // namespace
} // namespace tempo
