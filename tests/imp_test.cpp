#include <gtest/gtest.h>

#include "prefetch/imp.hh"

namespace tempo {
namespace {

ImpConfig
enabled()
{
    ImpConfig cfg;
    cfg.enabled = true;
    // Deterministic behaviour for the structural tests; the
    // coverage/accuracy knobs get their own tests below.
    cfg.coverage = 1.0;
    cfg.accuracy = 1.0;
    return cfg;
}

TEST(Imp, DisabledNeverPrefetches)
{
    ImpPrefetcher imp{ImpConfig{}};
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(imp.observe(1, true, 0x1000), kInvalidAddr);
    EXPECT_EQ(imp.issued(), 0u);
}

TEST(Imp, IgnoresNonIndirectRefs)
{
    ImpPrefetcher imp(enabled());
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(imp.observe(1, false, 0x1000), kInvalidAddr);
    EXPECT_EQ(imp.trainedStreams(), 0u);
}

TEST(Imp, TrainsThenPrefetches)
{
    ImpConfig cfg = enabled();
    cfg.trainThreshold = 4;
    ImpPrefetcher imp(cfg);
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(imp.observe(1, true, 0x1000 + i), kInvalidAddr) << i;
    EXPECT_EQ(imp.trainedStreams(), 1u);
    EXPECT_EQ(imp.observe(1, true, 0x5000), 0x5000u);
    EXPECT_EQ(imp.issued(), 1u);
}

TEST(Imp, StreamsTrainIndependently)
{
    ImpConfig cfg = enabled();
    cfg.trainThreshold = 2;
    ImpPrefetcher imp(cfg);
    imp.observe(1, true, 0x1);
    imp.observe(1, true, 0x2);
    // Stream 1 trained; stream 2 still cold.
    EXPECT_NE(imp.observe(1, true, 0x3), kInvalidAddr);
    EXPECT_EQ(imp.observe(2, true, 0x4), kInvalidAddr);
}

TEST(Imp, TableCapacityEvictsLru)
{
    ImpConfig cfg = enabled();
    cfg.prefetchTableEntries = 2;
    cfg.trainThreshold = 1;
    ImpPrefetcher imp(cfg);
    imp.observe(1, true, 0x1); // trains stream 1
    imp.observe(2, true, 0x2); // trains stream 2
    imp.observe(3, true, 0x3); // evicts stream 1 (LRU)
    // Stream 1 must retrain from scratch.
    EXPECT_EQ(imp.observe(1, true, 0x5), kInvalidAddr);
}

TEST(Imp, UnknownFutureYieldsNoPrefetch)
{
    ImpConfig cfg = enabled();
    cfg.trainThreshold = 1;
    ImpPrefetcher imp(cfg);
    imp.observe(1, true, 0x1);
    EXPECT_EQ(imp.observe(1, true, kInvalidAddr), kInvalidAddr);
}

TEST(Imp, ReportCountsIssued)
{
    ImpConfig cfg = enabled();
    cfg.trainThreshold = 1;
    ImpPrefetcher imp(cfg);
    imp.observe(1, true, 0x1);
    imp.observe(1, true, 0x2);
    imp.observe(1, true, 0x3);
    stats::Report report;
    imp.report(report);
    EXPECT_EQ(report.get("issued"), 2.0);
    EXPECT_EQ(report.get("trained_streams"), 1.0);
}

TEST(Imp, CoverageLimitsIssueRate)
{
    ImpConfig cfg = enabled();
    cfg.trainThreshold = 1;
    cfg.coverage = 0.5;
    ImpPrefetcher imp(cfg);
    imp.observe(1, true, 0x1000);
    const int trials = 4000;
    for (int i = 0; i < trials; ++i)
        imp.observe(1, true, 0x1000 + i);
    EXPECT_NEAR(static_cast<double>(imp.issued()) / trials, 0.5, 0.05);
}

TEST(Imp, AccuracyPerturbsTargets)
{
    ImpConfig cfg = enabled();
    cfg.trainThreshold = 1;
    cfg.accuracy = 0.0; // every prefetch is wrong
    ImpPrefetcher imp(cfg);
    imp.observe(1, true, 0x100000);
    int wrong = 0, total = 0;
    for (int i = 0; i < 200; ++i) {
        const Addr target = imp.observe(1, true, 0x100000);
        if (target == kInvalidAddr)
            continue;
        ++total;
        if (target != 0x100000) {
            ++wrong;
            // Wrong targets land on a different page — the TLB-thrash
            // property the TEMPO paper attributes to IMP.
            EXPECT_NE(vpn4K(target), vpn4K(Addr{0x100000}));
        }
    }
    EXPECT_GT(total, 0);
    EXPECT_EQ(wrong, total);
    EXPECT_EQ(imp.mispredicted(), static_cast<std::uint64_t>(wrong));
}

TEST(Imp, FullAccuracyNeverMispredicts)
{
    ImpConfig cfg = enabled();
    cfg.trainThreshold = 1;
    ImpPrefetcher imp(cfg);
    imp.observe(1, true, 0x100000);
    for (int i = 0; i < 200; ++i) {
        const Addr target = imp.observe(1, true, Addr{0x100000} + i);
        EXPECT_EQ(target, Addr{0x100000} + i);
    }
    EXPECT_EQ(imp.mispredicted(), 0u);
}

TEST(Imp, EvictionPressureSeparatesTrainEventsFromLiveStreams)
{
    // Regression: "trained_streams" used to count training completions
    // cumulatively, so under table pressure an evicted-then-retrained
    // stream was double-counted and the stat could exceed the table
    // size. Live residency and cumulative completions are now separate.
    ImpConfig cfg = enabled();
    cfg.prefetchTableEntries = 2;
    cfg.trainThreshold = 1;
    ImpPrefetcher imp(cfg);
    for (std::uint32_t stream = 1; stream <= 5; ++stream)
        imp.observe(stream, true, 0x1000 + stream);
    EXPECT_EQ(imp.trainEvents(), 5u);
    EXPECT_EQ(imp.trainedStreams(), 2u); // bounded by the table
    stats::Report report;
    imp.report(report);
    EXPECT_EQ(report.get("train_events"), 5.0);
    EXPECT_EQ(report.get("trained_streams"), 2.0);
}

TEST(Imp, RetrainAfterEvictionCountsANewEvent)
{
    ImpConfig cfg = enabled();
    cfg.prefetchTableEntries = 1;
    cfg.trainThreshold = 1;
    ImpPrefetcher imp(cfg);
    imp.observe(1, true, 0x1); // trains stream 1
    imp.observe(2, true, 0x2); // evicts 1, trains 2
    imp.observe(1, true, 0x3); // retrains 1: a second event for it
    EXPECT_EQ(imp.trainEvents(), 3u);
    EXPECT_EQ(imp.trainedStreams(), 1u);
}

class ImpThresholdSweep : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(ImpThresholdSweep, ExactlyThresholdObservationsToTrain)
{
    ImpConfig cfg = enabled();
    cfg.trainThreshold = GetParam();
    ImpPrefetcher imp(cfg);
    for (unsigned i = 0; i < GetParam(); ++i)
        EXPECT_EQ(imp.observe(9, true, 0x100), kInvalidAddr);
    EXPECT_NE(imp.observe(9, true, 0x100), kInvalidAddr);
}

INSTANTIATE_TEST_SUITE_P(Thresholds, ImpThresholdSweep,
                         ::testing::Values(1u, 2u, 4u, 8u, 16u));

} // namespace
} // namespace tempo
