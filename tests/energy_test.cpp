#include <gtest/gtest.h>

#include "core/energy.hh"

namespace tempo {
namespace {

TEST(Energy, StaticScalesWithRuntime)
{
    EnergyConfig cfg;
    DramDevice dram{DramConfig{}};
    const EnergyBreakdown short_run =
        computeEnergy(cfg, 1000, dram, 0, false);
    const EnergyBreakdown long_run =
        computeEnergy(cfg, 2000, dram, 0, false);
    EXPECT_DOUBLE_EQ(long_run.coreStatic, 2 * short_run.coreStatic);
    EXPECT_DOUBLE_EQ(long_run.dramStatic, 2 * short_run.dramStatic);
}

TEST(Energy, DynamicScalesWithTraffic)
{
    EnergyConfig cfg;
    DramDevice dram{DramConfig{}};
    const double before =
        computeEnergy(cfg, 1000, dram, 10, false).total();
    dram.access(0, false, false, 0, 0, 0);
    const double after =
        computeEnergy(cfg, 1000, dram, 10, false).total();
    EXPECT_GT(after, before);
}

TEST(Energy, TempoChargesHardwareOverhead)
{
    EnergyConfig cfg;
    DramDevice dram{DramConfig{}};
    const EnergyBreakdown off =
        computeEnergy(cfg, 10000, dram, 1000, false);
    const EnergyBreakdown on =
        computeEnergy(cfg, 10000, dram, 1000, true);
    // +0.5% on core static (walker), +3% on MC dynamic.
    EXPECT_NEAR(on.coreStatic / off.coreStatic, 1.005, 1e-9);
    EXPECT_NEAR(on.mcDynamic / off.mcDynamic, 1.03, 1e-9);
}

TEST(Energy, OverheadIsSmallRelativeToRuntimeSavings)
{
    // The paper's argument: TEMPO's added hardware costs far less than
    // the static energy a 10% runtime reduction saves.
    EnergyConfig cfg;
    DramDevice dram{DramConfig{}};
    const double baseline =
        computeEnergy(cfg, 100000, dram, 5000, false).total();
    const double tempo_10pct_faster =
        computeEnergy(cfg, 90000, dram, 5000, true).total();
    EXPECT_LT(tempo_10pct_faster, baseline);
}

TEST(Energy, BreakdownSumsToTotal)
{
    EnergyConfig cfg;
    DramDevice dram{DramConfig{}};
    dram.access(0, false, false, 0, 0, 0);
    const EnergyBreakdown e = computeEnergy(cfg, 5000, dram, 77, true);
    EXPECT_DOUBLE_EQ(e.total(), e.coreStatic + e.dramStatic
                                    + e.dramDynamic + e.mcDynamic);
    stats::Report report;
    e.report(report);
    EXPECT_DOUBLE_EQ(report.get("total"), e.total());
}

} // namespace
} // namespace tempo
