#include <gtest/gtest.h>

#include "cache/hierarchy.hh"
#include "cache/set_assoc.hh"

namespace tempo {
namespace {

TEST(SetAssocCache, MissThenHit)
{
    SetAssocCache cache(4096, 4);
    EXPECT_FALSE(cache.lookup(0x1000));
    cache.insert(0x1000);
    EXPECT_TRUE(cache.lookup(0x1000));
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_EQ(cache.misses(), 1u);
}

TEST(SetAssocCache, LineGranularity)
{
    SetAssocCache cache(4096, 4);
    cache.insert(0x1000);
    // Same line, different byte offsets.
    EXPECT_TRUE(cache.lookup(0x1001));
    EXPECT_TRUE(cache.lookup(0x103f));
    EXPECT_FALSE(cache.lookup(0x1040));
}

TEST(SetAssocCache, LruEviction)
{
    // 2 sets x 2 ways. Lines mapping to set 0: multiples of 2 lines.
    SetAssocCache cache(256, 2);
    ASSERT_EQ(cache.numSets(), 2u);
    const Addr a = 0 * 128, b = 2 * 128, c = 4 * 128; // all set 0
    cache.insert(a);
    cache.insert(b);
    cache.lookup(a);          // a becomes MRU
    const Addr evicted = cache.insert(c);
    EXPECT_EQ(evicted, b);    // b was LRU
    EXPECT_TRUE(cache.contains(a));
    EXPECT_FALSE(cache.contains(b));
    EXPECT_TRUE(cache.contains(c));
}

TEST(SetAssocCache, InsertExistingRefreshesWithoutEviction)
{
    SetAssocCache cache(256, 2);
    cache.insert(0);
    EXPECT_EQ(cache.insert(0), kInvalidAddr);
}

TEST(SetAssocCache, InvalidateRemovesLine)
{
    SetAssocCache cache(4096, 4);
    cache.insert(0x2000);
    ASSERT_TRUE(cache.contains(0x2000));
    cache.invalidate(0x2000);
    EXPECT_FALSE(cache.contains(0x2000));
    cache.invalidate(0x2000); // idempotent
}

TEST(SetAssocCache, ResetClearsEverything)
{
    SetAssocCache cache(4096, 4);
    cache.insert(0x3000);
    cache.lookup(0x3000);
    cache.reset();
    EXPECT_FALSE(cache.contains(0x3000));
    EXPECT_EQ(cache.hits(), 0u);
    EXPECT_EQ(cache.misses(), 0u);
}

TEST(SetAssocCache, EvictedAddressRoundTrips)
{
    // Property: the reported evicted address maps to the same set as
    // the inserted address and was previously present.
    SetAssocCache cache(8192, 2);
    const unsigned sets = cache.numSets();
    std::uint64_t x = 12345;
    for (int i = 0; i < 2000; ++i) {
        x = x * 6364136223846793005ull + 1442695040888963407ull;
        const Addr addr = (x % (1ull << 24)) & ~(kLineBytes - 1);
        const Addr evicted = cache.insert(addr);
        if (evicted != kInvalidAddr) {
            EXPECT_EQ((evicted / kLineBytes) & (sets - 1),
                      (addr / kLineBytes) & (sets - 1));
        }
    }
}

TEST(SetAssocCacheDeathTest, RejectsNonsenseGeometry)
{
    EXPECT_DEATH(SetAssocCache(64, 4), "");
}

struct HierarchyFixture : public ::testing::Test {
    CacheHierarchyConfig cfg;
    std::unique_ptr<SharedLlc> llc;
    std::unique_ptr<CacheHierarchy> hierarchy;

    void
    SetUp() override
    {
        llc = std::make_unique<SharedLlc>(cfg.llc);
        hierarchy = std::make_unique<CacheHierarchy>(cfg, llc.get());
    }
};

TEST_F(HierarchyFixture, ColdAccessMissesEverywhere)
{
    const CacheOutcome outcome = hierarchy->access(0x10000);
    EXPECT_EQ(outcome.level, CacheLevel::Memory);
    EXPECT_EQ(outcome.latency,
              cfg.l1.latency + cfg.l2.latency + cfg.llc.latency);
}

TEST_F(HierarchyFixture, FillMakesL1Hit)
{
    hierarchy->fill(0x10000);
    const CacheOutcome outcome = hierarchy->access(0x10000);
    EXPECT_EQ(outcome.level, CacheLevel::L1);
    EXPECT_EQ(outcome.latency, cfg.l1.latency);
}

TEST_F(HierarchyFixture, L2HitPromotesToL1)
{
    hierarchy->fill(0x10000);
    hierarchy->l1().invalidate(lineAddr(Addr{0x10000}));
    const CacheOutcome first = hierarchy->access(0x10000);
    EXPECT_EQ(first.level, CacheLevel::L2);
    EXPECT_EQ(first.latency, cfg.l1.latency + cfg.l2.latency);
    const CacheOutcome second = hierarchy->access(0x10000);
    EXPECT_EQ(second.level, CacheLevel::L1);
}

TEST_F(HierarchyFixture, LlcHitPromotesToPrivates)
{
    llc->cache().insert(lineAddr(Addr{0x20000}));
    const CacheOutcome first = hierarchy->access(0x20000);
    EXPECT_EQ(first.level, CacheLevel::LLC);
    const CacheOutcome second = hierarchy->access(0x20000);
    EXPECT_EQ(second.level, CacheLevel::L1);
}

TEST_F(HierarchyFixture, PrefetchFillLandsOnlyInLlc)
{
    // TEMPO's LLC prefetch port must not pollute the private levels.
    llc->prefetchFill(0x30000);
    EXPECT_EQ(llc->prefetchFills(), 1u);
    EXPECT_FALSE(hierarchy->l1().contains(lineAddr(Addr{0x30000})));
    EXPECT_FALSE(hierarchy->l2().contains(lineAddr(Addr{0x30000})));
    const CacheOutcome outcome = hierarchy->access(0x30000);
    EXPECT_EQ(outcome.level, CacheLevel::LLC);
}

TEST_F(HierarchyFixture, FillPrivateSkipsLlc)
{
    hierarchy->fillPrivate(0x40000);
    EXPECT_TRUE(hierarchy->l1().contains(lineAddr(Addr{0x40000})));
    EXPECT_FALSE(llc->cache().contains(lineAddr(Addr{0x40000})));
}

TEST_F(HierarchyFixture, TwoCoresShareTheLlc)
{
    CacheHierarchy other(cfg, llc.get());
    hierarchy->fill(0x50000);
    // The other core misses its privates but hits the shared LLC.
    const CacheOutcome outcome = other.access(0x50000);
    EXPECT_EQ(outcome.level, CacheLevel::LLC);
}

TEST_F(HierarchyFixture, ReportContainsAllLevels)
{
    hierarchy->access(0x1234);
    stats::Report report;
    hierarchy->report(report);
    EXPECT_TRUE(report.has("l1.hit_rate"));
    EXPECT_TRUE(report.has("l2.misses"));
    EXPECT_TRUE(report.has("llc.hits"));
    EXPECT_TRUE(report.has("llc.prefetch_fills"));
}

} // namespace
} // namespace tempo
