/**
 * @file
 * Golden-statistics regression tests: headline counters for fixed-seed
 * runs of the committed INI presets are pinned to exact values, so a
 * future PR cannot silently shift simulation results. The runs execute
 * on the parallel experiment engine — the same path the benches use —
 * so these goldens also pin the engine's determinism.
 *
 * When an INTENTIONAL model change lands, regenerate the table by
 * running the same points and pasting the new numbers (see
 * docs/MODEL.md "Golden statistics" for the procedure), and call the
 * shift out in the PR description.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "cli/config_file.hh"
#include "core/experiment.hh"
#include "stats/json.hh"

#ifndef TEMPO_CONFIG_DIR
#error "TEMPO_CONFIG_DIR must point at the committed configs/"
#endif

namespace tempo {
namespace {

constexpr std::uint64_t kRefs = 20000;

struct GoldenRun {
    const char *config;   //!< INI file under configs/
    const char *workload; //!< fixed-seed workload (seed 42)
    // Headline counters (exact).
    std::uint64_t runtime;
    std::uint64_t walks;
    std::uint64_t ptDramAccesses;
    std::uint64_t leafPtDramAccesses;
    std::uint64_t replayAfterDramWalk;
    std::uint64_t replayLlcHits;
    std::uint64_t dramPtw;
    std::uint64_t dramReplay;
    std::uint64_t tempoPrefetchesIssued;
    // Headline rates (tight tolerance).
    double tlbMissRate;
    double energyTotal;
};

// Golden values for seed 42, 20000 refs, generated on the committed
// model. paper_baseline.ini is the no-TEMPO machine (prefetches must
// stay exactly zero); tempo_full.ini enables every TEMPO mechanism.
const GoldenRun kGolden[] = {
    {"paper_baseline.ini", "mcf",
     2461555ull, 4984ull, 4811ull, 3689ull, 3689ull, 0ull,
     4811ull, 4984ull, 0ull,
     0.2492, 747106.44999999995},
    {"paper_baseline.ini", "astar.small",
     1417976ull, 1739ull, 602ull, 591ull, 591ull, 0ull,
     602ull, 1739ull, 0ull,
     0.08695, 438392.91999999998},
    {"tempo_full.ini", "mcf",
     2231059ull, 5016ull, 4811ull, 3688ull, 3688ull, 3285ull,
     4811ull, 1328ull, 3688ull,
     0.25080000000000002, 682422.36975000007},
    {"tempo_full.ini", "astar.small",
     1386867ull, 1739ull, 602ull, 591ull, 591ull, 490ull,
     602ull, 1148ull, 591ull,
     0.08695, 431115.17675000004},
    // stride_tempo.ini selects the stride engine through the
    // prefetcher registry (explicit [prefetch] engines list), pinning
    // the registry dispatch path alongside the legacy-flag presets.
    {"stride_tempo.ini", "mcf",
     2473477ull, 5011ull, 4945ull, 3769ull, 3759ull, 3397ull,
     4945ull, 1252ull, 3759ull,
     0.12609964382268377, 757947.01324999996},
    {"stride_tempo.ini", "sgms",
     1895110ull, 9073ull, 5815ull, 5169ull, 5169ull, 4418ull,
     5815ull, 3903ull, 5169ull,
     0.31377092267256884, 616658.75249999994},
};

/** Exact per-engine taxonomy pins for the registry preset rows
 * (workload -> issued, useful, late, useless). */
struct GoldenTaxonomy {
    const char *workload;
    std::size_t row; //!< index into kGolden
    std::uint64_t issued, useful, late, useless;
};

const GoldenTaxonomy kGoldenTaxonomy[] = {
    {"mcf", 4, 26606ull, 6829ull, 545ull, 19232ull},
    {"sgms", 5, 8916ull, 554ull, 0ull, 8362ull},
};

SystemConfig
configFor(const GoldenRun &golden)
{
    SystemConfig cfg = SystemConfig::skylakeScaled();
    cli::applyConfigFile(
        std::string(TEMPO_CONFIG_DIR) + "/" + golden.config, cfg);
    return cfg;
}

/** All golden points, run through the parallel engine at once. */
const std::vector<RunResult> &
goldenResults()
{
    static const std::vector<RunResult> results = [] {
        std::vector<ExperimentPoint> points;
        for (const GoldenRun &golden : kGolden) {
            ExperimentPoint p;
            p.workload = golden.workload;
            p.config = configFor(golden);
            p.refs = kRefs;
            points.push_back(std::move(p));
        }
        return runExperiments(points, 4);
    }();
    return results;
}

class GoldenStats : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(GoldenStats, HeadlineCountersMatch)
{
    const GoldenRun &golden = kGolden[GetParam()];
    const RunResult &r = goldenResults()[GetParam()];
    SCOPED_TRACE(std::string(golden.config) + " / " + golden.workload);

    EXPECT_EQ(r.runtime, golden.runtime);
    EXPECT_EQ(r.core.walks, golden.walks);
    EXPECT_EQ(r.core.ptDramAccesses, golden.ptDramAccesses);
    EXPECT_EQ(r.core.leafPtDramAccesses, golden.leafPtDramAccesses);
    EXPECT_EQ(r.core.replayAfterDramWalk, golden.replayAfterDramWalk);
    EXPECT_EQ(r.core.replayLlcHits, golden.replayLlcHits);
    EXPECT_EQ(r.dramPtw, golden.dramPtw);
    EXPECT_EQ(r.dramReplay, golden.dramReplay);
    EXPECT_EQ(static_cast<std::uint64_t>(
                  r.report.get("mc.tempo.prefetches_issued")),
              golden.tempoPrefetchesIssued);
    EXPECT_NEAR(r.report.get("tlb.miss_rate"), golden.tlbMissRate,
                1e-12);
    EXPECT_NEAR(r.energy.total(), golden.energyTotal,
                golden.energyTotal * 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Suite, GoldenStats,
                         ::testing::Range<std::size_t>(
                             0, std::size(kGolden)));

// The registry preset also pins its per-engine prefetch taxonomy: the
// useful/late/useless split must stay exact AND sum to issued.
TEST(GoldenStatsTaxonomy, StrideTaxonomyMatches)
{
    for (const GoldenTaxonomy &golden : kGoldenTaxonomy) {
        const RunResult &r = goldenResults()[golden.row];
        SCOPED_TRACE(golden.workload);
        EXPECT_EQ(r.report.get("prefetch.stride.issued"),
                  static_cast<double>(golden.issued));
        EXPECT_EQ(r.report.get("prefetch.stride.useful"),
                  static_cast<double>(golden.useful));
        EXPECT_EQ(r.report.get("prefetch.stride.late"),
                  static_cast<double>(golden.late));
        EXPECT_EQ(r.report.get("prefetch.stride.useless"),
                  static_cast<double>(golden.useless));
        EXPECT_EQ(golden.useful + golden.late + golden.useless,
                  golden.issued);
    }
}

// The JSON documents the benches emit (BENCH_*.json) must carry the
// tempo-bench-1 schema with every required key, and emission must be
// deterministic: the golden runs above, flattened twice, produce the
// same bytes.
TEST(BenchJson, SchemaHasRequiredKeysAndIsDeterministic)
{
    std::vector<stats::BenchPoint> points;
    for (std::size_t i = 0; i < std::size(kGolden); ++i) {
        points.push_back(toBenchPoint(
            kGolden[i].workload,
            {{"config_file", kGolden[i].config}}, goldenResults()[i]));
    }
    const std::string dump =
        stats::benchJson("golden", kRefs, 42, points).dump();

    for (const char *key :
         {"\"schema\": \"tempo-bench-1\"", "\"bench\": \"golden\"",
          "\"refs\": 20000", "\"seed\": 42", "\"points\"",
          "\"workload\": \"mcf\"", "\"workload\": \"astar.small\"",
          "\"config_file\": \"paper_baseline.ini\"",
          "\"runtime_cycles\": 2231059", "\"energy\"", "\"total\"",
          "\"counters\"", "\"walks\": 5016",
          "\"report.mc.tempo.prefetches_issued\": 3688"}) {
        EXPECT_NE(dump.find(key), std::string::npos)
            << "missing from BENCH json: " << key;
    }

    const std::string again =
        stats::benchJson("golden", kRefs, 42, points).dump();
    EXPECT_EQ(dump, again);
}

// The golden table itself pins values; this pins the *config files*:
// renaming or breaking a committed preset must fail loudly here, not
// in a bench run.
TEST(BenchJson, CommittedPresetsLoad)
{
    for (const char *file : {"paper_baseline.ini", "tempo_full.ini",
                             "subrow_tempo.ini", "stride_tempo.ini"}) {
        SystemConfig cfg = SystemConfig::skylakeScaled();
        EXPECT_NO_THROW(cli::applyConfigFile(
            std::string(TEMPO_CONFIG_DIR) + "/" + file, cfg))
            << file;
    }
}

} // namespace
} // namespace tempo
