#include <gtest/gtest.h>

#include "vm/address_space.hh"

namespace tempo {
namespace {

AddressSpaceConfig
withPolicy(PagePolicy policy)
{
    AddressSpaceConfig cfg;
    cfg.policy = policy;
    return cfg;
}

TEST(AddressSpace, FirstTouchFaultsSecondDoesNot)
{
    OsMemory os{OsMemoryConfig{}};
    AddressSpace as(os, withPolicy(PagePolicy::Base4K));
    EXPECT_TRUE(as.touch(0x1234567));
    EXPECT_FALSE(as.touch(0x1234568));
    EXPECT_EQ(as.faults(), 1u);
}

TEST(AddressSpace, TranslateAfterTouch)
{
    OsMemory os{OsMemoryConfig{}};
    AddressSpace as(os, withPolicy(PagePolicy::Base4K));
    as.touch(0x1234567);
    const Translation xlate = as.translate(0x1234567);
    ASSERT_TRUE(xlate.valid);
    EXPECT_EQ(xlate.size, PageSize::Page4K);
    EXPECT_EQ(xlate.physAddr(0x1234567) % kPageBytes, 0x567u);
}

TEST(AddressSpace, TranslateUntouchedIsInvalid)
{
    OsMemory os{OsMemoryConfig{}};
    AddressSpace as(os, withPolicy(PagePolicy::Base4K));
    EXPECT_FALSE(as.translate(0xdead000).valid);
}

TEST(AddressSpace, Base4KNeverCreatesSuperpages)
{
    OsMemory os{OsMemoryConfig{}};
    AddressSpace as(os, withPolicy(PagePolicy::Base4K));
    for (Addr i = 0; i < 4096; ++i)
        as.touch(i * kPageBytes);
    EXPECT_EQ(as.superpageCoverage(), 0.0);
}

TEST(AddressSpace, ThpCoverageNearEligibleFraction)
{
    OsMemory os{OsMemoryConfig{}};
    AddressSpaceConfig cfg = withPolicy(PagePolicy::Thp);
    AddressSpace as(os, cfg);
    // Touch every page of a 512MB region: coverage approaches the
    // THP-eligible fraction (paper Fig. 10 right: >50%).
    for (Addr i = 0; i < (512ull << 20) / kPageBytes; i += 7)
        as.touch(0x40000000ull + i * kPageBytes);
    EXPECT_NEAR(as.coverage2M(), cfg.thpEligibleFrac, 0.08);
    EXPECT_EQ(as.coverage1G(), 0.0);
}

TEST(AddressSpace, GranulesOfSuperpageShareFrame)
{
    OsMemory os{OsMemoryConfig{}};
    AddressSpaceConfig cfg = withPolicy(PagePolicy::Hugetlbfs2M);
    cfg.hugetlbfs2MFrac = 1.0;
    AddressSpace as(os, cfg);
    as.touch(0x40000000ull);
    as.touch(0x40000000ull + 5 * kPageBytes);
    const Translation a = as.translate(0x40000000ull);
    const Translation b = as.translate(0x40000000ull + 5 * kPageBytes);
    ASSERT_TRUE(a.valid && b.valid);
    EXPECT_EQ(a.pframe, b.pframe);
    EXPECT_EQ(a.size, PageSize::Page2M);
    // Only ONE fault: the superpage mapped the whole region.
    EXPECT_EQ(as.faults(), 1u);
}

TEST(AddressSpace, FragmentationReducesThpCoverage)
{
    auto coverage_at = [](double frag) {
        OsMemoryConfig os_cfg;
        os_cfg.fragLevel = frag;
        OsMemory os(os_cfg);
        AddressSpace as(os, withPolicy(PagePolicy::Thp));
        for (Addr i = 0; i < 40000; i += 3)
            as.touch(0x40000000ull + i * kPageBytes);
        return as.superpageCoverage();
    };
    const double c0 = coverage_at(0.0);
    const double c50 = coverage_at(0.5);
    const double c75 = coverage_at(0.75);
    EXPECT_GT(c0, c50);
    EXPECT_GT(c50, c75);
}

TEST(AddressSpace, Hugetlbfs2MBeatsThpCoverage)
{
    OsMemory os1{OsMemoryConfig{}}, os2{OsMemoryConfig{}};
    AddressSpace thp(os1, withPolicy(PagePolicy::Thp));
    AddressSpace huge(os2, withPolicy(PagePolicy::Hugetlbfs2M));
    for (Addr i = 0; i < 40000; i += 3) {
        thp.touch(0x40000000ull + i * kPageBytes);
        huge.touch(0x40000000ull + i * kPageBytes);
    }
    EXPECT_GT(huge.superpageCoverage(), thp.superpageCoverage());
}

TEST(AddressSpace, OneGigPolicyProducesGigPages)
{
    OsMemory os{OsMemoryConfig{}};
    AddressSpaceConfig cfg = withPolicy(PagePolicy::Hugetlbfs1G);
    cfg.hugetlbfs1GFrac = 1.0;
    AddressSpace as(os, cfg);
    as.touch(0x80000000ull);
    const Translation xlate = as.translate(0x80000000ull);
    ASSERT_TRUE(xlate.valid);
    EXPECT_EQ(xlate.size, PageSize::Page1G);
    EXPECT_DOUBLE_EQ(as.coverage1G(), 1.0);
}

TEST(AddressSpace, EligibilityIsDeterministicPerRegion)
{
    OsMemory os1{OsMemoryConfig{}}, os2{OsMemoryConfig{}};
    AddressSpaceConfig cfg = withPolicy(PagePolicy::Thp);
    AddressSpace a(os1, cfg), b(os2, cfg);
    for (Addr i = 0; i < 5000; ++i) {
        const Addr vaddr = 0x10000000ull + i * kPageBytes * 513;
        a.touch(vaddr);
        b.touch(vaddr);
        EXPECT_EQ(a.translate(vaddr).size, b.translate(vaddr).size);
    }
}

TEST(AddressSpace, TouchedBytesCountsDistinctGranules)
{
    OsMemory os{OsMemoryConfig{}};
    AddressSpace as(os, withPolicy(PagePolicy::Base4K));
    as.touch(0x1000);
    as.touch(0x1fff); // same granule
    as.touch(0x2000);
    EXPECT_EQ(as.touchedBytes(), 2 * kPageBytes);
}

TEST(AddressSpace, ReportIsComplete)
{
    OsMemory os{OsMemoryConfig{}};
    AddressSpace as(os, withPolicy(PagePolicy::Thp));
    as.touch(0x40000000ull);
    stats::Report report;
    as.report(report);
    EXPECT_TRUE(report.has("superpage_coverage"));
    EXPECT_TRUE(report.has("faults"));
    EXPECT_TRUE(report.has("pt_nodes"));
}

class PolicySweep : public ::testing::TestWithParam<PagePolicy>
{
};

TEST_P(PolicySweep, TouchAlwaysYieldsValidTranslation)
{
    OsMemory os{OsMemoryConfig{}};
    AddressSpace as(os, withPolicy(GetParam()));
    for (Addr i = 0; i < 3000; ++i) {
        const Addr vaddr = 0x40000000ull + i * 0x5011;
        as.touch(vaddr);
        const Translation xlate = as.translate(vaddr);
        ASSERT_TRUE(xlate.valid);
        // Physical offset within the page matches the virtual offset.
        EXPECT_EQ(xlate.physAddr(vaddr) % kPageBytes,
                  vaddr % kPageBytes);
    }
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, PolicySweep,
                         ::testing::Values(PagePolicy::Base4K,
                                           PagePolicy::Thp,
                                           PagePolicy::Hugetlbfs2M,
                                           PagePolicy::Hugetlbfs1G));

} // namespace
} // namespace tempo
