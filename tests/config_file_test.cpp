#include <gtest/gtest.h>

#include <stdexcept>

#include "cli/config_file.hh"

namespace tempo::cli {
namespace {

SystemConfig
apply(const std::string &text)
{
    SystemConfig cfg = SystemConfig::skylakeScaled();
    applyConfigText(text, cfg);
    return cfg;
}

TEST(ConfigFile, EmptyTextIsNoop)
{
    const SystemConfig cfg = apply("");
    EXPECT_EQ(cfg.caches.llc.sizeBytes,
              SystemConfig::skylakeScaled().caches.llc.sizeBytes);
}

TEST(ConfigFile, CommentsAndBlanksIgnored)
{
    apply("# a comment\n\n; another\n[dram]\nchannels = 4 # inline\n");
}

TEST(ConfigFile, SetsCacheGeometry)
{
    const SystemConfig cfg = apply(
        "[caches]\nllc_bytes = 2097152\nllc_assoc = 8\nl1_latency = 5\n");
    EXPECT_EQ(cfg.caches.llc.sizeBytes, 2097152u);
    EXPECT_EQ(cfg.caches.llc.assoc, 8u);
    EXPECT_EQ(cfg.caches.l1.latency, 5u);
}

TEST(ConfigFile, SetsDramAndEnums)
{
    const SystemConfig cfg = apply(
        "[dram]\nchannels = 4\nrow_policy = closed\nrefresh = false\n"
        "subrow_alloc = foa\nsubrows_for_prefetch = 2\n");
    EXPECT_EQ(cfg.dram.channels, 4u);
    EXPECT_EQ(cfg.dram.rowPolicy, RowPolicyKind::Closed);
    EXPECT_FALSE(cfg.dram.refreshEnabled);
    EXPECT_EQ(cfg.dram.subRowAlloc, SubRowAlloc::FOA);
    EXPECT_EQ(cfg.dram.subRowsForPrefetch, 2u);
}

TEST(ConfigFile, SetsTempoKnobs)
{
    const SystemConfig cfg = apply(
        "[mc]\ntempo = true\npt_row_hold = 7\ngrace_period = 21\n"
        "llc_fill = false\nsched = bliss\n");
    EXPECT_TRUE(cfg.mc.tempoEnabled);
    EXPECT_EQ(cfg.mc.tempoPtRowHold, 7u);
    EXPECT_EQ(cfg.mc.tempoGracePeriod, 21u);
    EXPECT_FALSE(cfg.mc.tempoLlcFill);
    EXPECT_EQ(cfg.mc.sched, SchedKind::Bliss);
}

TEST(ConfigFile, SetsVmAndImpAndCore)
{
    const SystemConfig cfg = apply(
        "[vm]\npage_policy = hugetlbfs1g\nfrag = 0.25\n"
        "[imp]\nenabled = true\ncoverage = 0.5\n"
        "[core]\nmlp_window = 12\nissue_gap = 2\nseed = 777\n");
    EXPECT_EQ(cfg.vm.policy, PagePolicy::Hugetlbfs1G);
    EXPECT_DOUBLE_EQ(cfg.os.fragLevel, 0.25);
    EXPECT_TRUE(cfg.imp.enabled);
    EXPECT_DOUBLE_EQ(cfg.imp.coverage, 0.5);
    EXPECT_EQ(cfg.mlpWindow, 12u);
    EXPECT_FALSE(cfg.useWorkloadMlpHint);
    EXPECT_EQ(cfg.issueGap, 2u);
    EXPECT_EQ(cfg.seed, 777u);
}

TEST(ConfigFile, SetsPrefetchSections)
{
    const SystemConfig cfg = apply(
        "[prefetch]\nengines = tskid,misb\n"
        "[stride]\nenabled = true\ntable_entries = 32\n"
        "confidence_threshold = 3\ndegree = 1\ndistance = 8\n"
        "[tskid]\ntable_entries = 16\nconfidence_threshold = 1\n"
        "degree = 4\ndistance = 2\nlead_cycles = 123\n"
        "max_pending = 7\n"
        "[misb]\npair_entries = 1024\nmetadata_cache_entries = 64\n"
        "degree = 3\ntrain_threshold = 5\nmax_metadata_inflight = 4\n"
        "[temporal]\ntable_entries = 2048\nconfidence_threshold = 2\n"
        "degree = 1\ntrain_threshold = 6\n");
    EXPECT_EQ(cfg.prefetch.engines,
              (std::vector<std::string>{"tskid", "misb"}));
    EXPECT_TRUE(cfg.stride.enabled);
    EXPECT_EQ(cfg.stride.tableEntries, 32u);
    EXPECT_EQ(cfg.stride.confidenceThreshold, 3u);
    EXPECT_EQ(cfg.stride.degree, 1u);
    EXPECT_EQ(cfg.stride.distance, 8u);
    EXPECT_EQ(cfg.tskid.tableEntries, 16u);
    EXPECT_EQ(cfg.tskid.confidenceThreshold, 1u);
    EXPECT_EQ(cfg.tskid.degree, 4u);
    EXPECT_EQ(cfg.tskid.distance, 2u);
    EXPECT_EQ(cfg.tskid.leadCycles, 123u);
    EXPECT_EQ(cfg.tskid.maxPending, 7u);
    EXPECT_EQ(cfg.misb.pairEntries, 1024u);
    EXPECT_EQ(cfg.misb.metadataCacheEntries, 64u);
    EXPECT_EQ(cfg.misb.degree, 3u);
    EXPECT_EQ(cfg.misb.trainThreshold, 5u);
    EXPECT_EQ(cfg.misb.maxMetadataInflight, 4u);
    EXPECT_EQ(cfg.temporal.tableEntries, 2048u);
    EXPECT_EQ(cfg.temporal.confidenceThreshold, 2u);
    EXPECT_EQ(cfg.temporal.degree, 1u);
    EXPECT_EQ(cfg.temporal.trainThreshold, 6u);
}

TEST(ConfigFile, BadPrefetchEnginesNameTheLine)
{
    try {
        apply("[prefetch]\nengines = stride,warp\n");
        FAIL() << "expected an exception";
    } catch (const std::invalid_argument &error) {
        const std::string what = error.what();
        EXPECT_NE(what.find("line 2"), std::string::npos) << what;
        EXPECT_NE(what.find("warp"), std::string::npos) << what;
    }
}

TEST(ConfigFile, UnknownPrefetchKeysAreErrors)
{
    EXPECT_THROW(apply("[prefetch]\nengine = stride\n"),
                 std::invalid_argument);
    EXPECT_THROW(apply("[stride]\nstride = 64\n"),
                 std::invalid_argument);
    EXPECT_THROW(apply("[tskid]\nlead = 10\n"), std::invalid_argument);
    EXPECT_THROW(apply("[misb]\ndepth = 2\n"), std::invalid_argument);
    EXPECT_THROW(apply("[temporal]\nsize = 8\n"),
                 std::invalid_argument);
}

TEST(ConfigFile, UnknownKeyIsAnError)
{
    EXPECT_THROW(apply("[dram]\nchanels = 4\n"),
                 std::invalid_argument);
}

TEST(ConfigFile, UnknownSectionIsAnError)
{
    EXPECT_THROW(apply("[nonsense]\nx = 1\n"), std::invalid_argument);
}

TEST(ConfigFile, KeyBeforeSectionIsAnError)
{
    EXPECT_THROW(apply("channels = 4\n"), std::invalid_argument);
}

TEST(ConfigFile, MalformedLinesAreErrors)
{
    EXPECT_THROW(apply("[dram\n"), std::invalid_argument);
    EXPECT_THROW(apply("[dram]\nchannels\n"), std::invalid_argument);
    EXPECT_THROW(apply("[dram]\nchannels =\n"), std::invalid_argument);
    EXPECT_THROW(apply("[dram]\nchannels = four\n"),
                 std::invalid_argument);
    EXPECT_THROW(apply("[mc]\ntempo = maybe\n"),
                 std::invalid_argument);
}

TEST(ConfigFile, ErrorsNameTheLine)
{
    try {
        apply("[dram]\nchannels = 2\nbogus = 1\n");
        FAIL() << "expected an exception";
    } catch (const std::invalid_argument &error) {
        EXPECT_NE(std::string(error.what()).find("line 3"),
                  std::string::npos);
    }
}

TEST(ConfigFile, MissingFileThrows)
{
    SystemConfig cfg = SystemConfig::skylakeScaled();
    EXPECT_THROW(applyConfigFile("/no/such/file.ini", cfg),
                 std::invalid_argument);
}

} // namespace
} // namespace tempo::cli
