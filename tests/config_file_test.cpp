#include <gtest/gtest.h>

#include <stdexcept>

#include "cli/config_file.hh"

namespace tempo::cli {
namespace {

SystemConfig
apply(const std::string &text)
{
    SystemConfig cfg = SystemConfig::skylakeScaled();
    applyConfigText(text, cfg);
    return cfg;
}

TEST(ConfigFile, EmptyTextIsNoop)
{
    const SystemConfig cfg = apply("");
    EXPECT_EQ(cfg.caches.llc.sizeBytes,
              SystemConfig::skylakeScaled().caches.llc.sizeBytes);
}

TEST(ConfigFile, CommentsAndBlanksIgnored)
{
    apply("# a comment\n\n; another\n[dram]\nchannels = 4 # inline\n");
}

TEST(ConfigFile, SetsCacheGeometry)
{
    const SystemConfig cfg = apply(
        "[caches]\nllc_bytes = 2097152\nllc_assoc = 8\nl1_latency = 5\n");
    EXPECT_EQ(cfg.caches.llc.sizeBytes, 2097152u);
    EXPECT_EQ(cfg.caches.llc.assoc, 8u);
    EXPECT_EQ(cfg.caches.l1.latency, 5u);
}

TEST(ConfigFile, SetsDramAndEnums)
{
    const SystemConfig cfg = apply(
        "[dram]\nchannels = 4\nrow_policy = closed\nrefresh = false\n"
        "subrow_alloc = foa\nsubrows_for_prefetch = 2\n");
    EXPECT_EQ(cfg.dram.channels, 4u);
    EXPECT_EQ(cfg.dram.rowPolicy, RowPolicyKind::Closed);
    EXPECT_FALSE(cfg.dram.refreshEnabled);
    EXPECT_EQ(cfg.dram.subRowAlloc, SubRowAlloc::FOA);
    EXPECT_EQ(cfg.dram.subRowsForPrefetch, 2u);
}

TEST(ConfigFile, SetsTempoKnobs)
{
    const SystemConfig cfg = apply(
        "[mc]\ntempo = true\npt_row_hold = 7\ngrace_period = 21\n"
        "llc_fill = false\nsched = bliss\n");
    EXPECT_TRUE(cfg.mc.tempoEnabled);
    EXPECT_EQ(cfg.mc.tempoPtRowHold, 7u);
    EXPECT_EQ(cfg.mc.tempoGracePeriod, 21u);
    EXPECT_FALSE(cfg.mc.tempoLlcFill);
    EXPECT_EQ(cfg.mc.sched, SchedKind::Bliss);
}

TEST(ConfigFile, SetsVmAndImpAndCore)
{
    const SystemConfig cfg = apply(
        "[vm]\npage_policy = hugetlbfs1g\nfrag = 0.25\n"
        "[imp]\nenabled = true\ncoverage = 0.5\n"
        "[core]\nmlp_window = 12\nissue_gap = 2\nseed = 777\n");
    EXPECT_EQ(cfg.vm.policy, PagePolicy::Hugetlbfs1G);
    EXPECT_DOUBLE_EQ(cfg.os.fragLevel, 0.25);
    EXPECT_TRUE(cfg.imp.enabled);
    EXPECT_DOUBLE_EQ(cfg.imp.coverage, 0.5);
    EXPECT_EQ(cfg.mlpWindow, 12u);
    EXPECT_FALSE(cfg.useWorkloadMlpHint);
    EXPECT_EQ(cfg.issueGap, 2u);
    EXPECT_EQ(cfg.seed, 777u);
}

TEST(ConfigFile, UnknownKeyIsAnError)
{
    EXPECT_THROW(apply("[dram]\nchanels = 4\n"),
                 std::invalid_argument);
}

TEST(ConfigFile, UnknownSectionIsAnError)
{
    EXPECT_THROW(apply("[nonsense]\nx = 1\n"), std::invalid_argument);
}

TEST(ConfigFile, KeyBeforeSectionIsAnError)
{
    EXPECT_THROW(apply("channels = 4\n"), std::invalid_argument);
}

TEST(ConfigFile, MalformedLinesAreErrors)
{
    EXPECT_THROW(apply("[dram\n"), std::invalid_argument);
    EXPECT_THROW(apply("[dram]\nchannels\n"), std::invalid_argument);
    EXPECT_THROW(apply("[dram]\nchannels =\n"), std::invalid_argument);
    EXPECT_THROW(apply("[dram]\nchannels = four\n"),
                 std::invalid_argument);
    EXPECT_THROW(apply("[mc]\ntempo = maybe\n"),
                 std::invalid_argument);
}

TEST(ConfigFile, ErrorsNameTheLine)
{
    try {
        apply("[dram]\nchannels = 2\nbogus = 1\n");
        FAIL() << "expected an exception";
    } catch (const std::invalid_argument &error) {
        EXPECT_NE(std::string(error.what()).find("line 3"),
                  std::string::npos);
    }
}

TEST(ConfigFile, MissingFileThrows)
{
    SystemConfig cfg = SystemConfig::skylakeScaled();
    EXPECT_THROW(applyConfigFile("/no/such/file.ini", cfg),
                 std::invalid_argument);
}

} // namespace
} // namespace tempo::cli
