/**
 * @file
 * Unit tests for the shared CLI string helpers (formerly a tool-local
 * copy in tempo_sweep that accepted empty values).
 */

#include <gtest/gtest.h>

#include <stdexcept>

#include "cli/strings.hh"

namespace tempo::cli {
namespace {

TEST(Trim, StripsAsciiWhitespace)
{
    EXPECT_EQ(trim("  a b  "), "a b");
    EXPECT_EQ(trim("\tx\n"), "x");
    EXPECT_EQ(trim("noop"), "noop");
    EXPECT_EQ(trim(""), "");
    EXPECT_EQ(trim("   \t\r\n"), "");
}

TEST(SplitCommas, SplitsSimpleLists)
{
    EXPECT_EQ(splitCommas("a,b,c"),
              (std::vector<std::string>{"a", "b", "c"}));
    EXPECT_EQ(splitCommas("single"),
              (std::vector<std::string>{"single"}));
    EXPECT_EQ(splitCommas("0,0.25,0.5"),
              (std::vector<std::string>{"0", "0.25", "0.5"}));
}

TEST(SplitCommas, TrimsWhitespaceAroundValues)
{
    EXPECT_EQ(splitCommas(" a , b ,c "),
              (std::vector<std::string>{"a", "b", "c"}));
    EXPECT_EQ(splitCommas("open,\tclosed , adaptive"),
              (std::vector<std::string>{"open", "closed", "adaptive"}));
}

TEST(SplitCommas, RejectsEmptyValues)
{
    EXPECT_THROW(splitCommas(""), std::invalid_argument);
    EXPECT_THROW(splitCommas(","), std::invalid_argument);
    EXPECT_THROW(splitCommas("a,,b"), std::invalid_argument);
    EXPECT_THROW(splitCommas("a,b,"), std::invalid_argument);
    EXPECT_THROW(splitCommas(",a"), std::invalid_argument);
    EXPECT_THROW(splitCommas("a, ,b"), std::invalid_argument);
    EXPECT_THROW(splitCommas("   "), std::invalid_argument);
}

} // namespace
} // namespace tempo::cli
