/**
 * @file
 * Property tests of the paper's headline claims, parameterized over the
 * full big-data workload suite. These are the invariants DESIGN.md
 * Sec. 6 commits to:
 *
 *  1. TEMPO never slows a workload down (big or small).
 *  2. The vast majority of DRAM page-table accesses are for leaf PTEs
 *     (paper: 96%+).
 *  3. When a walk's leaf PTE comes from DRAM, the replay almost always
 *     needs DRAM too in the baseline (paper: 98%+).
 *  4. With TEMPO, replays are predominantly serviced by the LLC, and
 *     LLC misses mostly land in prefetched rows/merges (paper Fig. 11).
 *  5. TEMPO's prefetches are non-speculative: issued count == eligible
 *     triggers.
 */

#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "common/event_queue.hh"
#include "common/rng.hh"
#include "common/shard.hh"
#include "core/tempo_system.hh"
#include "vm/translator.hh"

namespace tempo {
namespace {

constexpr std::uint64_t kRefs = 40000;

struct RunPair {
    RunResult base;
    RunResult tempo;
};

const RunPair &
cachedRun(const std::string &name)
{
    static std::map<std::string, RunPair> cache;
    auto it = cache.find(name);
    if (it == cache.end()) {
        SystemConfig base_cfg = SystemConfig::skylakeScaled();
        SystemConfig tempo_cfg = SystemConfig::skylakeScaled();
        tempo_cfg.withTempo(true);
        RunPair pair{runWorkload(base_cfg, name, kRefs),
                     runWorkload(tempo_cfg, name, kRefs)};
        it = cache.emplace(name, std::move(pair)).first;
    }
    return it->second;
}

class BigDataProperty : public ::testing::TestWithParam<std::string>
{
};

TEST_P(BigDataProperty, TempoNeverHurtsPerformance)
{
    const RunPair &runs = cachedRun(GetParam());
    EXPECT_LE(runs.tempo.runtime, runs.base.runtime);
}

TEST_P(BigDataProperty, TempoNeverHurtsEnergy)
{
    const RunPair &runs = cachedRun(GetParam());
    EXPECT_LE(runs.tempo.energy.total(), runs.base.energy.total() * 1.001);
}

TEST_P(BigDataProperty, LeafPtesDominateDramPtTraffic)
{
    const RunPair &runs = cachedRun(GetParam());
    const CoreStats &core = runs.base.core;
    ASSERT_GT(core.ptDramAccesses, 0u);
    // Paper Sec. 2.2: 96%+ of DRAM page table accesses are leaf PTEs.
    // Our scaled LLC evicts non-leaf L2 PTE lines more often than the
    // paper's 32MB LLC, so the measured fraction sits at 0.75-0.90
    // (see EXPERIMENTS.md); the property asserted here is dominance.
    EXPECT_GT(stats::ratio(core.leafPtDramAccesses,
                           core.ptDramAccesses),
              0.70);
}

TEST_P(BigDataProperty, ReplaysFollowDramWalks)
{
    const RunPair &runs = cachedRun(GetParam());
    const CoreStats &core = runs.base.core;
    ASSERT_GT(core.replayAfterDramWalk, 0u);
    // Paper Sec. 1: 98%+ of DRAM page table walks are followed by a
    // DRAM replay. (Cache-resident replays barely exist for cold data.)
    EXPECT_GT(stats::ratio(core.replayDramAfterDramWalk,
                           core.replayAfterDramWalk),
              0.90);
}

TEST_P(BigDataProperty, TempoServesReplaysFromLlcOrRow)
{
    const RunPair &runs = cachedRun(GetParam());
    const CoreStats &core = runs.tempo.core;
    ASSERT_GT(core.replayAfterDramWalk, 0u);
    const double aided = stats::ratio(
        core.replayLlcHits + core.replayMerged + core.replayRowHits
            + core.replayPrivateHits,
        core.replayAfterDramWalk);
    // Paper Fig. 11: only a tiny pathological fraction is unaided.
    EXPECT_GT(aided, 0.85);
    // And on-chip caches are the dominant service point (paper: 75%+
    // LLC; we fold in L1/L2 hits — canneal's swap pattern re-touches
    // lines its own walk filled — and relax for merge-vs-hit
    // classification differences).
    EXPECT_GT(stats::ratio(core.replayLlcHits + core.replayPrivateHits,
                           core.replayAfterDramWalk),
              0.5);
}

TEST_P(BigDataProperty, EveryReplayIsClassified)
{
    // Core TEMPO invariant, part 1: with TEMPO on, every replayed
    // reference after a DRAM walk is accounted for by exactly one
    // service point — LLC hit, private-cache hit, merge with the
    // in-flight prefetch, DRAM row-buffer hit, or DRAM array access.
    // Nothing is dropped and nothing is double-counted.
    const RunPair &runs = cachedRun(GetParam());
    const CoreStats &core = runs.tempo.core;
    ASSERT_GT(core.replayAfterDramWalk, 0u);
    EXPECT_EQ(core.replayLlcHits + core.replayPrivateHits
                  + core.replayMerged + core.replayRowHits
                  + core.replayArray,
              core.replayAfterDramWalk);
    // Part 2: the unaided residue (full DRAM array access, paying the
    // ACT+CAS the prefetch was supposed to hide) is a small tail.
    EXPECT_LE(stats::ratio(core.replayArray, core.replayAfterDramWalk),
              0.15);
}

TEST_P(BigDataProperty, PrefetchesNeverExceedTaggedLeafAccesses)
{
    // Core TEMPO invariant, part 3: prefetches are triggered only by
    // tagged leaf-PTE DRAM accesses, so the issue count can never
    // exceed them (it may fall short when the line is already cached
    // or the prefetch is dropped).
    const RunPair &runs = cachedRun(GetParam());
    const auto issued = static_cast<std::uint64_t>(
        runs.tempo.report.get("mc.tempo.prefetches_issued"));
    EXPECT_LE(issued, runs.tempo.core.leafPtDramAccesses);
    EXPECT_GT(issued, 0u);
    // And the baseline machine must never prefetch at all.
    EXPECT_EQ(runs.base.report.get("mc.tempo.prefetches_issued"), 0.0);
}

TEST_P(BigDataProperty, PrefetchesAreNonSpeculative)
{
    SystemConfig cfg = SystemConfig::skylakeScaled();
    cfg.withTempo(true);
    TempoSystem system(cfg, makeWorkload(GetParam(), cfg.seed));
    const RunResult result = system.run(kRefs);
    const auto &mc = system.machine().mc;
    EXPECT_EQ(mc.tempoPrefetchesIssued() + mc.tempoPrefetchesDropped()
                  + mc.tempoFaultSuppressed(),
              result.core.leafPtDramAccesses);
    // Demand walks never fault in the MC (pages are touched first).
    EXPECT_EQ(mc.tempoFaultSuppressed(), 0u);
}

TEST_P(BigDataProperty, DramPtwShareIsSubstantial)
{
    const RunPair &runs = cachedRun(GetParam());
    // Paper Fig. 4: page-table walks are 20-40% of DRAM references for
    // big-data workloads; we accept a wider 10-50% band.
    EXPECT_GT(runs.base.fracDramPtw(), 0.10);
    EXPECT_LT(runs.base.fracDramPtw(), 0.50);
}

TEST_P(BigDataProperty, RowPolicySweepNeverBreaksTempoWin)
{
    // Fig. 14 property: TEMPO helps under open, closed, and adaptive
    // row policies alike.
    for (RowPolicyKind kind :
         {RowPolicyKind::Open, RowPolicyKind::Closed,
          RowPolicyKind::Adaptive}) {
        SystemConfig base_cfg = SystemConfig::skylakeScaled();
        base_cfg.withRowPolicy(kind);
        SystemConfig tempo_cfg = base_cfg;
        tempo_cfg.withTempo(true);
        const RunResult base =
            runWorkload(base_cfg, GetParam(), kRefs / 2);
        const RunResult with_tempo =
            runWorkload(tempo_cfg, GetParam(), kRefs / 2);
        EXPECT_LE(with_tempo.runtime, base.runtime)
            << rowPolicyName(kind);
    }
}

INSTANTIATE_TEST_SUITE_P(Suite, BigDataProperty,
                         ::testing::ValuesIn(bigDataWorkloadNames()));

class SmallFootprintProperty
    : public ::testing::TestWithParam<std::string>
{
};

TEST_P(SmallFootprintProperty, TempoDoesNoHarm)
{
    // Paper Fig. 11 right: not a single smaller-footprint workload
    // becomes slower or consumes more energy. Measured at steady state
    // (warmup window), like the paper's traces.
    SystemConfig base_cfg = SystemConfig::skylakeScaled();
    SystemConfig tempo_cfg = SystemConfig::skylakeScaled();
    tempo_cfg.withTempo(true);
    TempoSystem base_sys(base_cfg, makeWorkload(GetParam(),
                                                base_cfg.seed));
    const RunResult base = base_sys.run(kRefs / 2, kRefs / 4);
    TempoSystem tempo_sys(tempo_cfg, makeWorkload(GetParam(),
                                                  tempo_cfg.seed));
    const RunResult with_tempo = tempo_sys.run(kRefs / 2, kRefs / 4);
    EXPECT_LE(with_tempo.runtime, base.runtime * 101 / 100);
    EXPECT_LE(with_tempo.energy.total(), base.energy.total() * 1.015);
}

INSTANTIATE_TEST_SUITE_P(Suite, SmallFootprintProperty,
                         ::testing::ValuesIn(smallWorkloadNames()));

TEST(TempoProperty, SuperpagesReduceButDontEliminateBenefit)
{
    // Fig. 13 shape: 4K-only > THP > heavy fragmentation... inverted:
    // benefit declines as superpage coverage rises, stays positive.
    auto benefit = [](PagePolicy policy, double frag) {
        SystemConfig base_cfg = SystemConfig::skylakeScaled();
        base_cfg.withPagePolicy(policy, frag);
        SystemConfig tempo_cfg = base_cfg;
        tempo_cfg.withTempo(true);
        const RunResult base = runWorkload(base_cfg, "xsbench", kRefs);
        const RunResult with_tempo =
            runWorkload(tempo_cfg, "xsbench", kRefs);
        return with_tempo.speedupOver(base);
    };
    const double b4k = benefit(PagePolicy::Base4K, 0.0);
    const double bthp = benefit(PagePolicy::Thp, 0.0);
    const double b1g = benefit(PagePolicy::Hugetlbfs1G, 0.0);
    EXPECT_GT(b4k, 0.0);
    EXPECT_GT(bthp, 0.0);
    EXPECT_GT(b1g, 0.0); // paper: even 1GB pages leave 5%+ on the table
    // 4K-only is comparably helped (paper: more; our scaled LLC makes
    // the 4K-only walk itself costlier, which dilutes the replay share
    // — see EXPERIMENTS.md).
    EXPECT_GE(b4k, bthp * 0.75);
    // 1GB pages shrink the benefit substantially.
    EXPECT_LT(b1g, bthp);
}

TEST(TranslatorProperty, MemoEqualsFunctionalWalkAfterAnyMutations)
{
    // Invalidation-completeness property for the memoized translation
    // fast path (vm/translator.hh): after ANY randomized sequence of
    // page-table mutations, a full sweep of the memoized translator
    // over every mapped VPN — with the memo deliberately warmed before
    // each mutation burst — equals a fresh functional walk. A single
    // stale PTE served anywhere fails the sweep.
    for (const std::uint64_t seed : {11ull, 12ull, 13ull}) {
        Rng rng(seed);
        OsMemory os{OsMemoryConfig{}};
        PageTable table{os};
        Translator memo{table};
        std::map<Addr, PageSize> leaves;

        constexpr Addr kUniverse = Addr{4} << 30;
        auto mapFresh = [&](PageSize size) {
            const Addr bytes = pageBytes(size);
            const Addr base = alignDown(rng.below(kUniverse), bytes);
            auto it = leaves.lower_bound(base);
            if (it != leaves.end() && it->first < base + bytes)
                return;
            if (it != leaves.begin()
                && std::prev(it)->first
                           + pageBytes(std::prev(it)->second)
                       > base)
                return;
            const Addr frame = os.allocFrame(size);
            if (frame == kInvalidAddr)
                return;
            table.map(base, size, frame, rng.chance(0.8));
            leaves.emplace(base, size);
        };

        for (int burst = 0; burst < 20; ++burst) {
            // Warm the memo on everything currently mapped, so the
            // mutations below hit live entries.
            for (const auto &[base, size] : leaves)
                memo.translate(base + rng.below(pageBytes(size)));

            for (int m = 0; m < 30; ++m) {
                const std::uint64_t roll = rng.below(100);
                if (roll < 40) {
                    mapFresh(rng.chance(0.8) ? PageSize::Page4K
                                             : PageSize::Page2M);
                } else if (roll < 60 && !leaves.empty()) {
                    auto it = leaves.begin();
                    std::advance(it, static_cast<long>(
                                         rng.below(leaves.size())));
                    table.unmap(it->first);
                    leaves.erase(it);
                } else if (roll < 75 && !leaves.empty()) {
                    auto it = leaves.begin();
                    std::advance(it, static_cast<long>(
                                         rng.below(leaves.size())));
                    const Addr frame = os.allocFrame(it->second);
                    if (frame != kInvalidAddr)
                        table.remap(it->first, it->second, frame,
                                    rng.chance(0.8));
                } else if (roll < 90 && !leaves.empty()) {
                    auto it = leaves.begin();
                    std::advance(it, static_cast<long>(
                                         rng.below(leaves.size())));
                    table.protect(it->first, rng.chance(0.5));
                } else {
                    const Addr bytes = pageBytes(PageSize::Page2M);
                    const Addr base =
                        alignDown(rng.below(kUniverse), bytes);
                    auto it = leaves.lower_bound(base);
                    const bool split_super =
                        it != leaves.begin()
                        && std::prev(it)->first
                                   + pageBytes(std::prev(it)->second)
                               > base
                        && pageBytes(std::prev(it)->second) > bytes;
                    if (split_super)
                        continue;
                    const Addr frame = os.allocFrame(PageSize::Page2M);
                    if (frame == kInvalidAddr)
                        continue;
                    table.promote(base, PageSize::Page2M, frame,
                                  rng.chance(0.8));
                    leaves.erase(leaves.lower_bound(base),
                                 leaves.lower_bound(base + bytes));
                    leaves.emplace(base, PageSize::Page2M);
                }
            }

            // The sweep: every mapped 4K VPN, memo vs fresh walk.
            for (const auto &[base, size] : leaves) {
                const Addr bytes = pageBytes(size);
                // Every VPN of 4K pages; sampled stride for superpages
                // (identical coverage guarantees, bounded cost).
                const Addr stride =
                    size == PageSize::Page4K ? kPageBytes : bytes / 16;
                for (Addr off = 0; off < bytes; off += stride) {
                    const Addr va = base + off;
                    const Translation want = table.translate(va);
                    const Translation got = memo.translate(va);
                    ASSERT_EQ(got.valid, want.valid) << va;
                    ASSERT_TRUE(got.valid) << va;
                    ASSERT_EQ(got.pframe, want.pframe) << va;
                    ASSERT_EQ(got.size, want.size) << va;
                    ASSERT_EQ(got.writable, want.writable) << va;
                }
            }
        }
    }
}

// Sharded execution property (DESIGN commitment 6 extension): the
// cross-domain message order a destination observes is canonical —
// (when, srcDomain, srcSeq) — a pure function of the simulation state.
// Randomized traffic over six domains must therefore produce
// byte-identical per-domain execution and delivery logs at every
// worker count, with the 1-worker run as the oracle.
TEST(ShardMessageOrdering, RandomizedTrafficIsWorkerCountInvariant)
{
    constexpr Cycle kQuantum = 7;
    constexpr std::size_t kDomains = 6;

    struct Delivery {
        DomainId src;
        std::uint64_t seq;
        Cycle when;

        bool
        operator==(const Delivery &other) const
        {
            return src == other.src && seq == other.seq
                && when == other.when;
        }
    };

    // Every random draw belongs to exactly one domain and happens in
    // that domain's deterministic event order, so the traffic pattern
    // itself is identical across worker counts; only the delivery
    // machinery is under test.
    auto run = [&](unsigned workers) {
        std::vector<EventQueue> eqs(kDomains);
        std::vector<Rng> rngs;
        for (std::size_t d = 0; d < kDomains; ++d)
            rngs.emplace_back(0x5eed0000ull + d);
        std::vector<std::vector<Delivery>> log(kDomains);
        std::vector<std::uint64_t> sent(kDomains, 0);

        ShardEngine engine(kQuantum, workers);
        for (EventQueue &eq : eqs)
            engine.addDomain(&eq);

        // Each activation fans out 0-2 messages to random domains at
        // random legal delivery times, chaining to a bounded depth.
        std::function<void(DomainId, int)> act = [&](DomainId self,
                                                     int depth) {
            if (depth == 0)
                return;
            Rng &rng = rngs[self];
            const std::uint64_t fanout = rng.below(3);
            for (std::uint64_t i = 0; i < fanout; ++i) {
                const DomainId dst =
                    static_cast<DomainId>(rng.below(kDomains));
                const Cycle when =
                    eqs[self].now() + kQuantum + rng.below(25);
                const std::uint64_t seq = sent[self]++;
                engine.post(dst, when, [&, self, dst, seq, depth] {
                    log[dst].push_back(
                        Delivery{self, seq, eqs[dst].now()});
                    act(dst, depth - 1);
                });
            }
        };

        for (std::size_t d = 0; d < kDomains; ++d) {
            for (int e = 0; e < 3; ++e) {
                const Cycle t = rngs[d].below(20);
                const DomainId self = static_cast<DomainId>(d);
                eqs[d].schedule(t, [&act, self] { act(self, 4); });
            }
        }
        engine.run();
        return log;
    };

    const auto oracle = run(1);
    std::size_t total = 0;
    for (const auto &dst_log : oracle)
        total += dst_log.size();
    ASSERT_GT(total, 0u) << "property test generated no traffic";
    for (const unsigned workers : {2u, 3u, 4u}) {
        const auto got = run(workers);
        for (std::size_t d = 0; d < kDomains; ++d) {
            EXPECT_TRUE(got[d] == oracle[d])
                << workers << " workers: delivery log of domain " << d
                << " diverged from the 1-worker oracle";
        }
    }
}

} // namespace
} // namespace tempo
