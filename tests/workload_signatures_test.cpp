/**
 * @file
 * Signature tests for the workload generators: the distributional
 * properties DESIGN.md says each generator must reproduce (these are
 * what make the TEMPO results meaningful, so they are pinned here —
 * a refactor that silently changes a generator's locality would
 * otherwise invalidate EXPERIMENTS.md without failing any test).
 */

#include <gtest/gtest.h>

#include <set>

#include "workloads/workload.hh"

namespace tempo {
namespace {

struct Signature {
    double writeRatio = 0;
    double indirectRatio = 0;
    std::size_t distinctPages = 0;
    /** Fraction of refs whose page was seen in the prior 64 refs —
     * a cheap short-range locality proxy. */
    double shortReuse = 0;
};

Signature
measure(const std::string &name, int refs = 40000)
{
    auto workload = makeWorkload(name, 11);
    Signature sig;
    std::set<Addr> pages;
    std::vector<Addr> window;
    int writes = 0, indirect = 0, reuse = 0;
    for (int i = 0; i < refs; ++i) {
        const MemRef ref = workload->next();
        writes += ref.isWrite;
        indirect += ref.indirect;
        const Addr vpn = vpn4K(ref.vaddr);
        pages.insert(vpn);
        for (const Addr recent : window) {
            if (recent == vpn) {
                ++reuse;
                break;
            }
        }
        window.push_back(vpn);
        if (window.size() > 64)
            window.erase(window.begin());
    }
    sig.writeRatio = static_cast<double>(writes) / refs;
    sig.indirectRatio = static_cast<double>(indirect) / refs;
    sig.distinctPages = pages.size();
    sig.shortReuse = static_cast<double>(reuse) / refs;
    return sig;
}

TEST(WorkloadSignature, XsbenchIsTheColdest)
{
    // xsbench: the paper's worst-locality workload — it must touch
    // more distinct pages than anything else in the suite.
    const std::size_t xs = measure("xsbench").distinctPages;
    for (const std::string &other : bigDataWorkloadNames()) {
        if (other == "xsbench" || other == "illustris")
            continue;
        EXPECT_GT(xs, measure(other).distinctPages) << other;
    }
}

TEST(WorkloadSignature, IndirectStreamsWhereThePaperNeedsThem)
{
    // spmv/xsbench/graph500/sgms feed the IMP study (Fig. 12); the
    // pointer-chasers do not expose A[B[i]] patterns.
    EXPECT_GT(measure("spmv").indirectRatio, 0.2);
    EXPECT_GT(measure("xsbench").indirectRatio, 0.4);
    EXPECT_GT(measure("graph500").indirectRatio, 0.2);
    EXPECT_EQ(measure("mcf").indirectRatio, 0.0);
    EXPECT_EQ(measure("illustris").indirectRatio, 0.0);
}

TEST(WorkloadSignature, CannealWritesItsSwaps)
{
    // Two of every four swap-phase refs are writes.
    const Signature sig = measure("canneal");
    EXPECT_GT(sig.writeRatio, 0.25);
    EXPECT_LT(sig.writeRatio, 0.55);
}

TEST(WorkloadSignature, LshNeverWrites)
{
    EXPECT_EQ(measure("lsh").writeRatio, 0.0);
}

TEST(WorkloadSignature, SmallWorkloadsHaveStrongLocality)
{
    // The Fig. 11R family must re-touch recent pages far more often
    // than the big-data suite.
    const double small = measure("gobmk.small").shortReuse;
    const double big = measure("illustris").shortReuse;
    EXPECT_GT(small, 0.5);
    EXPECT_LT(big, 0.35);
}

TEST(WorkloadSignature, SequentialSweepsReusePages)
{
    // sgms's row sweep revisits its cursor page between off-diagonal
    // gathers: short-range reuse stays well above zero despite the
    // huge footprint, but far below the small-footprint family.
    const double reuse = measure("sgms").shortReuse;
    EXPECT_GT(reuse, 0.15);
    EXPECT_LT(reuse, 0.5);
}

TEST(WorkloadSignature, BigDataTouchGrowthIsUnbounded)
{
    // Doubling the trace must keep discovering new pages (no workload
    // quietly saturates a small footprint).
    for (const std::string &name : bigDataWorkloadNames()) {
        const std::size_t at40k = measure(name, 40000).distinctPages;
        const std::size_t at80k = measure(name, 80000).distinctPages;
        EXPECT_GT(at80k, at40k * 5 / 4) << name;
    }
}

TEST(WorkloadSignature, SmallWorkloadsSaturateTheirFootprints)
{
    // swaptions at 24MB: by 80k refs nearly every page is touched, so
    // growth flattens (in contrast to the big-data suite).
    const std::size_t at40k =
        measure("swaptions.small", 40000).distinctPages;
    const std::size_t at80k =
        measure("swaptions.small", 80000).distinctPages;
    EXPECT_LT(at80k, at40k * 2);
}

} // namespace
} // namespace tempo
