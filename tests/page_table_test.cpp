#include <gtest/gtest.h>

#include "vm/page_table.hh"

namespace tempo {
namespace {

struct PageTableFixture : public ::testing::Test {
    OsMemory os{OsMemoryConfig{}};
    PageTable table{os};
};

TEST_F(PageTableFixture, IndexAtSlicesNineBitsPerLevel)
{
    // vaddr bit layout: [47:39]=L4, [38:30]=L3, [29:21]=L2, [20:12]=L1.
    const Addr vaddr = (Addr{3} << 39) | (Addr{5} << 30)
        | (Addr{7} << 21) | (Addr{9} << 12) | 0x123;
    EXPECT_EQ(PageTable::indexAt(vaddr, 4), 3u);
    EXPECT_EQ(PageTable::indexAt(vaddr, 3), 5u);
    EXPECT_EQ(PageTable::indexAt(vaddr, 2), 7u);
    EXPECT_EQ(PageTable::indexAt(vaddr, 1), 9u);
}

TEST_F(PageTableFixture, UnmappedTranslateIsInvalid)
{
    EXPECT_FALSE(table.translate(0x1234000).valid);
}

TEST_F(PageTableFixture, MapThenTranslate4K)
{
    const Addr frame = os.allocFrame(PageSize::Page4K);
    table.map(0x1234000, PageSize::Page4K, frame);
    const Translation xlate = table.translate(0x1234567);
    ASSERT_TRUE(xlate.valid);
    EXPECT_EQ(xlate.pframe, frame);
    EXPECT_EQ(xlate.size, PageSize::Page4K);
    EXPECT_EQ(xlate.physAddr(0x1234567), frame + 0x567);
}

TEST_F(PageTableFixture, MapThenTranslate2M)
{
    const Addr frame = os.allocFrame(PageSize::Page2M);
    table.map(0x40000000, PageSize::Page2M, frame);
    const Translation xlate = table.translate(0x40123456);
    ASSERT_TRUE(xlate.valid);
    EXPECT_EQ(xlate.size, PageSize::Page2M);
    EXPECT_EQ(xlate.physAddr(0x40123456), frame + 0x123456);
}

TEST_F(PageTableFixture, FullWalkHasFourLevels)
{
    const Addr frame = os.allocFrame(PageSize::Page4K);
    table.map(0x1234000, PageSize::Page4K, frame);
    const WalkResult walk = table.walk(0x1234000);
    ASSERT_TRUE(walk.xlate.valid);
    ASSERT_EQ(walk.steps.size(), 4u);
    EXPECT_EQ(walk.steps[0].level, 4);
    EXPECT_EQ(walk.steps[1].level, 3);
    EXPECT_EQ(walk.steps[2].level, 2);
    EXPECT_EQ(walk.steps[3].level, 1);
    // The first step reads the root node.
    EXPECT_EQ(alignDown(walk.steps[0].pteAddr, kPageBytes),
              table.rootAddr());
}

TEST_F(PageTableFixture, SuperpageWalksAreShorter)
{
    table.map(0x40000000, PageSize::Page2M,
              os.allocFrame(PageSize::Page2M));
    EXPECT_EQ(table.walk(0x40000000).steps.size(), 3u);

    table.map(0x80000000ull, PageSize::Page1G,
              os.allocFrame(PageSize::Page1G));
    EXPECT_EQ(table.walk(0x80000000ull).steps.size(), 2u);
}

TEST_F(PageTableFixture, PteAddressesMatchIndices)
{
    const Addr vaddr = 0x1234000;
    table.map(vaddr, PageSize::Page4K, os.allocFrame(PageSize::Page4K));
    const WalkResult walk = table.walk(vaddr);
    for (const WalkStep &step : walk.steps) {
        // Each PTE sits at node_base + index*8; check the offset part.
        const unsigned index = PageTable::indexAt(vaddr, step.level);
        EXPECT_EQ(step.pteAddr % kPageBytes, index * kPteBytes)
            << "level " << step.level;
    }
}

TEST_F(PageTableFixture, FaultingWalkStopsAtMissingLevel)
{
    // Map one page; a cousin address sharing only the L4 entry walks
    // down to the missing L3 entry and stops.
    table.map(0x0, PageSize::Page4K, os.allocFrame(PageSize::Page4K));
    const Addr cousin = Addr{1} << 30; // same L4 index, different L3
    const WalkResult walk = table.walk(cousin);
    EXPECT_FALSE(walk.xlate.valid);
    EXPECT_EQ(walk.steps.size(), 2u); // read L4 (present), L3 (absent)
}

TEST_F(PageTableFixture, NodesGetDistinctFrames)
{
    table.map(0x0, PageSize::Page4K, os.allocFrame(PageSize::Page4K));
    const WalkResult walk = table.walk(0x0);
    for (std::size_t i = 0; i < walk.steps.size(); ++i) {
        for (std::size_t j = i + 1; j < walk.steps.size(); ++j) {
            EXPECT_NE(alignDown(walk.steps[i].pteAddr, kPageBytes),
                      alignDown(walk.steps[j].pteAddr, kPageBytes));
        }
    }
}

TEST_F(PageTableFixture, NodeCountGrowsOnDemand)
{
    EXPECT_EQ(table.nodeCount(), 1u); // root
    table.map(0x0, PageSize::Page4K, os.allocFrame(PageSize::Page4K));
    EXPECT_EQ(table.nodeCount(), 4u); // root + L3 + L2 + L1 nodes
    // A sibling page in the same 2MB region reuses every node.
    table.map(kPageBytes, PageSize::Page4K,
              os.allocFrame(PageSize::Page4K));
    EXPECT_EQ(table.nodeCount(), 4u);
    // A distant page needs a whole new subtree.
    table.map(Addr{1} << 39, PageSize::Page4K,
              os.allocFrame(PageSize::Page4K));
    EXPECT_EQ(table.nodeCount(), 7u);
}

TEST_F(PageTableFixture, PtNodesConsumeOsMemory)
{
    const Addr before = os.ptBytesAllocated();
    table.map(0x5555000, PageSize::Page4K,
              os.allocFrame(PageSize::Page4K));
    EXPECT_GT(os.ptBytesAllocated(), before);
}

TEST_F(PageTableFixture, AdjacentPagesShareLeafPteLine)
{
    // 8 PTEs per 64B line: pages 0..7 of a 2MB region share a line —
    // the spatial-locality property the paper's Fig. 8 exploits.
    for (Addr page = 0; page < 8; ++page) {
        table.map(page * kPageBytes, PageSize::Page4K,
                  os.allocFrame(PageSize::Page4K));
    }
    const Addr line0 = lineAddr(table.walk(0).steps.back().pteAddr);
    for (Addr page = 1; page < 8; ++page) {
        EXPECT_EQ(lineAddr(table.walk(page * kPageBytes)
                               .steps.back()
                               .pteAddr),
                  line0);
    }
    table.map(8 * kPageBytes, PageSize::Page4K,
              os.allocFrame(PageSize::Page4K));
    EXPECT_NE(lineAddr(table.walk(8 * kPageBytes).steps.back().pteAddr),
              line0);
}

TEST_F(PageTableFixture, DoubleMapDies)
{
    table.map(0x9000, PageSize::Page4K, os.allocFrame(PageSize::Page4K));
    EXPECT_DEATH(table.map(0x9000, PageSize::Page4K,
                           os.allocFrame(PageSize::Page4K)),
                 "double mapping");
}

TEST_F(PageTableFixture, MisalignedFrameDies)
{
    EXPECT_DEATH(table.map(0x40000000, PageSize::Page2M, 0x1000),
                 "aligned");
}

TEST_F(PageTableFixture, UnmapRemovesLeafKeepsNodes)
{
    table.map(0x1234000, PageSize::Page4K,
              os.allocFrame(PageSize::Page4K));
    const std::uint64_t nodes = table.nodeCount();
    const std::uint64_t epoch = table.mutationEpoch();

    EXPECT_TRUE(table.unmap(0x1234abc)); // any addr inside the page
    EXPECT_FALSE(table.translate(0x1234000).valid);
    // pte_clear semantics: the intermediate nodes stay allocated...
    EXPECT_EQ(table.nodeCount(), nodes);
    // ...and the epoch moved, so memoized translators drop the leaf.
    EXPECT_GT(table.mutationEpoch(), epoch);
    // A walk now faults at the (kept) L1 node's empty slot.
    EXPECT_EQ(table.walk(0x1234000).steps.size(), 4u);

    // Unmapping nothing is a no-op that reports false, no epoch bump.
    const std::uint64_t after = table.mutationEpoch();
    EXPECT_FALSE(table.unmap(0x1234000));
    EXPECT_EQ(table.mutationEpoch(), after);
}

TEST_F(PageTableFixture, RemapReplacesFrame)
{
    const Addr first = os.allocFrame(PageSize::Page4K);
    table.map(0x1234000, PageSize::Page4K, first);
    const Addr second = os.allocFrame(PageSize::Page4K);
    table.remap(0x1234000, PageSize::Page4K, second);
    const Translation t = table.translate(0x1234000);
    ASSERT_TRUE(t.valid);
    EXPECT_EQ(t.pframe, second);
}

TEST_F(PageTableFixture, ProtectTogglesWritableAndEpoch)
{
    table.map(0x1234000, PageSize::Page4K,
              os.allocFrame(PageSize::Page4K), /*writable=*/true);
    const std::uint64_t epoch = table.mutationEpoch();
    EXPECT_TRUE(table.protect(0x1234000, false));
    EXPECT_FALSE(table.translate(0x1234000).writable);
    EXPECT_GT(table.mutationEpoch(), epoch);

    // Setting the bit to its current value must not bump the epoch.
    const std::uint64_t settled = table.mutationEpoch();
    EXPECT_TRUE(table.protect(0x1234000, false));
    EXPECT_EQ(table.mutationEpoch(), settled);
    EXPECT_FALSE(table.protect(0x9999000, false)); // unmapped
}

TEST_F(PageTableFixture, PromoteCollapsesSubtree)
{
    // Populate a 2MB region with 4K pages, then promote it.
    for (int i = 0; i < 4; ++i)
        table.map(0x40000000 + static_cast<Addr>(i) * kPageBytes,
                  PageSize::Page4K, os.allocFrame(PageSize::Page4K));
    const std::uint64_t nodes = table.nodeCount();
    const Addr super = os.allocFrame(PageSize::Page2M);
    table.promote(0x40000000, PageSize::Page2M, super);

    const Translation t = table.translate(0x40000000 + 3 * kPageBytes);
    ASSERT_TRUE(t.valid);
    EXPECT_EQ(t.size, PageSize::Page2M);
    EXPECT_EQ(t.pframe, super);
    EXPECT_EQ(table.nodeCount(), nodes - 1); // L1 node discarded
    EXPECT_EQ(table.walk(0x40000000).steps.back().level, 2);
}

TEST_F(PageTableFixture, SuperpageMapReclaimsEmptiedSubtree)
{
    // 4K structure whose leaves are all unmapped leaves empty PT nodes
    // behind; a 2MB map over the region must reclaim them rather than
    // report a double mapping (a real OS reuses freed PT pages).
    table.map(0x40001000, PageSize::Page4K,
              os.allocFrame(PageSize::Page4K));
    EXPECT_TRUE(table.unmap(0x40001000));
    const std::uint64_t nodes = table.nodeCount();

    const Addr super = os.allocFrame(PageSize::Page2M);
    table.map(0x40000000, PageSize::Page2M, super);
    const Translation t = table.translate(0x40001000);
    ASSERT_TRUE(t.valid);
    EXPECT_EQ(t.size, PageSize::Page2M);
    EXPECT_EQ(table.nodeCount(), nodes - 1); // the empty L1 node

    // But mapping over a *live* translation still dies.
    EXPECT_DEATH(table.map(0x40000000, PageSize::Page2M,
                           os.allocFrame(PageSize::Page2M)),
                 "double mapping");
}

} // namespace
} // namespace tempo
