/**
 * @file
 * Determinism-under-concurrency tests for the parallel experiment
 * engine: the same sweep run at 1, 2, and 8 threads must produce
 * identical per-point statistics, and the thread pool itself must
 * execute every task exactly once and propagate failures.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>

#include "common/thread_pool.hh"
#include "core/experiment.hh"
#include "stats/json.hh"

namespace tempo {
namespace {

constexpr std::uint64_t kRefs = 8000;

TEST(ThreadPool, RunsEveryTaskExactlyOnce)
{
    constexpr std::size_t kTasks = 64;
    std::vector<std::atomic<int>> hits(kTasks);
    ThreadPool pool(4);
    for (std::size_t i = 0; i < kTasks; ++i)
        pool.submit([&hits, i] { ++hits[i]; });
    pool.wait();
    for (std::size_t i = 0; i < kTasks; ++i)
        EXPECT_EQ(hits[i].load(), 1) << "task " << i;
}

TEST(ThreadPool, WaitIsReusable)
{
    ThreadPool pool(2);
    std::atomic<int> count{0};
    pool.submit([&] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 1);
    pool.submit([&] { ++count; });
    pool.submit([&] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 3);
}

TEST(ThreadPool, PropagatesFirstException)
{
    ThreadPool pool(2);
    std::atomic<int> completed{0};
    for (int i = 0; i < 8; ++i) {
        pool.submit([&completed, i] {
            if (i == 3)
                throw std::runtime_error("task 3 failed");
            ++completed;
        });
    }
    EXPECT_THROW(pool.wait(), std::runtime_error);
    // The other tasks still ran to completion.
    EXPECT_EQ(completed.load(), 7);
}

TEST(ThreadPool, ParallelForWritesByIndex)
{
    constexpr std::size_t kN = 100;
    std::vector<std::size_t> out(kN, 0);
    parallelFor(kN, 8, [&](std::size_t i) { out[i] = i * i; });
    for (std::size_t i = 0; i < kN; ++i)
        EXPECT_EQ(out[i], i * i);
}

TEST(ThreadPool, DefaultThreadsIsPositive)
{
    EXPECT_GE(ThreadPool::defaultThreads(), 1u);
}

TEST(Experiment, DerivedSeedsDecorrelate)
{
    EXPECT_NE(derivedSeed(42, 0), derivedSeed(42, 1));
    EXPECT_NE(derivedSeed(42, 0), derivedSeed(43, 0));
    EXPECT_EQ(derivedSeed(42, 7), derivedSeed(42, 7));
}

/** An 8-point sweep mixing workloads and TEMPO on/off. */
std::vector<ExperimentPoint>
sweepPoints()
{
    std::vector<ExperimentPoint> points;
    const char *workloads[] = {"mcf", "xsbench", "canneal", "spmv"};
    for (const char *name : workloads) {
        for (const bool tempo : {false, true}) {
            ExperimentPoint p;
            p.workload = name;
            p.config = SystemConfig::skylakeScaled();
            p.config.withTempo(tempo);
            p.refs = kRefs;
            points.push_back(std::move(p));
        }
    }
    return points;
}

void
expectIdentical(const RunResult &a, const RunResult &b)
{
    EXPECT_EQ(a.runtime, b.runtime);
    EXPECT_EQ(a.core.refs, b.core.refs);
    EXPECT_EQ(a.core.walks, b.core.walks);
    EXPECT_EQ(a.core.ptDramAccesses, b.core.ptDramAccesses);
    EXPECT_EQ(a.core.leafPtDramAccesses, b.core.leafPtDramAccesses);
    EXPECT_EQ(a.core.replayAfterDramWalk, b.core.replayAfterDramWalk);
    EXPECT_EQ(a.core.replayLlcHits, b.core.replayLlcHits);
    EXPECT_EQ(a.dramPtw, b.dramPtw);
    EXPECT_EQ(a.dramReplay, b.dramReplay);
    EXPECT_EQ(a.dramOther, b.dramOther);
    EXPECT_DOUBLE_EQ(a.energy.total(), b.energy.total());
    // The full report must match entry by entry, bit for bit.
    ASSERT_EQ(a.report.entries().size(), b.report.entries().size());
    for (std::size_t i = 0; i < a.report.entries().size(); ++i) {
        EXPECT_EQ(a.report.entries()[i].first,
                  b.report.entries()[i].first);
        EXPECT_EQ(a.report.entries()[i].second,
                  b.report.entries()[i].second)
            << a.report.entries()[i].first;
    }
}

TEST(Experiment, SweepIsDeterministicAcrossThreadCounts)
{
    const std::vector<RunResult> at1 = runExperiments(sweepPoints(), 1);
    const std::vector<RunResult> at2 = runExperiments(sweepPoints(), 2);
    const std::vector<RunResult> at8 = runExperiments(sweepPoints(), 8);
    ASSERT_EQ(at1.size(), 8u);
    ASSERT_EQ(at2.size(), 8u);
    ASSERT_EQ(at8.size(), 8u);
    for (std::size_t i = 0; i < at1.size(); ++i) {
        SCOPED_TRACE("point " + std::to_string(i));
        expectIdentical(at1[i], at2[i]);
        expectIdentical(at1[i], at8[i]);
    }
}

TEST(Experiment, JsonEmissionIsByteIdenticalAcrossThreadCounts)
{
    auto emit = [](const std::vector<RunResult> &results) {
        std::vector<stats::BenchPoint> points;
        for (std::size_t i = 0; i < results.size(); ++i)
            points.push_back(toBenchPoint(
                "p" + std::to_string(i), {}, results[i]));
        return stats::benchJson("determinism", kRefs, 42, points)
            .dump();
    };
    const std::string at1 = emit(runExperiments(sweepPoints(), 1));
    const std::string at8 = emit(runExperiments(sweepPoints(), 8));
    EXPECT_EQ(at1, at8);
}

TEST(Experiment, MixPointsAreDeterministicAcrossThreadCounts)
{
    auto run = [](unsigned jobs) {
        std::vector<MixPoint> points;
        MixPoint mix;
        mix.workloads = {"mcf", "xsbench"};
        mix.config = SystemConfig::skylakeScaled();
        mix.refsPerApp = kRefs / 2;
        points.push_back(mix);
        mix.config.withTempo(true);
        points.push_back(mix);
        return runMixExperiments(points, jobs);
    };
    const std::vector<MultiResult> at1 = run(1);
    const std::vector<MultiResult> at8 = run(8);
    ASSERT_EQ(at1.size(), at8.size());
    for (std::size_t i = 0; i < at1.size(); ++i) {
        EXPECT_EQ(at1[i].runtime, at8[i].runtime);
        ASSERT_EQ(at1[i].appFinish.size(), at8[i].appFinish.size());
        for (std::size_t a = 0; a < at1[i].appFinish.size(); ++a)
            EXPECT_EQ(at1[i].appFinish[a], at8[i].appFinish[a]);
        EXPECT_DOUBLE_EQ(at1[i].energy.total(), at8[i].energy.total());
    }
}

TEST(Experiment, EngineMatchesDirectSerialRun)
{
    SystemConfig cfg = SystemConfig::skylakeScaled();
    cfg.withTempo(true);
    const RunResult direct = runWorkload(cfg, "mcf", kRefs);

    ExperimentPoint p;
    p.workload = "mcf";
    p.config = cfg;
    p.refs = kRefs;
    const std::vector<RunResult> engine = runExperiments({p}, 4);
    ASSERT_EQ(engine.size(), 1u);
    expectIdentical(direct, engine[0]);
}

TEST(Experiment, ExplicitSeedZeroIsARealSeed)
{
    // Regression: seed 0 historically meant "unset" and silently fell
    // back to config.seed, making seed 0 unusable. With the optional
    // seed, nullopt selects config.seed and an explicit 0 seeds the
    // workload with 0.
    ExperimentPoint p;
    p.workload = "mcf";
    p.config = SystemConfig::skylakeScaled();
    p.config.seed = 12345;
    p.refs = kRefs;

    const RunResult fallback = runExperiments({p}, 2)[0];
    EXPECT_EQ(fallback.status.seedUsed, 12345u);

    p.seed = 0;
    const RunResult zero = runExperiments({p}, 2)[0];
    EXPECT_EQ(zero.status.seedUsed, 0u);

    // The explicit 0 reaches the workload generator: the run matches a
    // direct simulation whose workload is seeded 0 under the same
    // config (config.seed still feeds the prefetcher RNG etc.).
    TempoSystem direct(p.config, makeWorkload("mcf", 0));
    expectIdentical(direct.run(kRefs), zero);
}

TEST(Experiment, PropagatesBadWorkloadName)
{
    ExperimentPoint p;
    p.workload = "mcf";
    p.config = SystemConfig::skylakeScaled();
    p.refs = 100;
    p.makeWorkloadFn = []() -> std::unique_ptr<Workload> {
        throw std::invalid_argument("no such workload");
    };
    EXPECT_THROW(runExperiments({p}, 2), std::invalid_argument);
}

} // namespace
} // namespace tempo
