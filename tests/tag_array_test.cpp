/**
 * @file
 * Tests for the packed tag-array core (cache/tag_array.hh): directed
 * LRU-order cases, the invalidate-dirty contract, and randomized
 * differential runs pitting the packed SetAssocCache / AssocArray
 * against the retained linear-scan reference implementation across
 * associativities 1/2/4/8/16.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "cache/set_assoc.hh"
#include "cache/tag_array.hh"
#include "common/rng.hh"
#include "vm/assoc_array.hh"

namespace tempo {
namespace {

CacheConfig
refConfig()
{
    CacheConfig cfg;
    cfg.useReferenceCache = true;
    return cfg;
}

// --- TagArray geometry and selection ---

TEST(TagArray, Packability)
{
    EXPECT_TRUE(TagArray::packable(1, 1));
    EXPECT_TRUE(TagArray::packable(64, 8));
    EXPECT_TRUE(TagArray::packable(1024, 16));
    EXPECT_FALSE(TagArray::packable(3, 4));   // non-pow2 sets
    EXPECT_FALSE(TagArray::packable(64, 17)); // too wide
    EXPECT_FALSE(TagArray::packable(64, 0));
}

TEST(TagArray, UnpackableGeometryFallsBackToReference)
{
    // 32 ways exceeds kMaxWays: the cache must silently run the
    // reference path rather than refuse the geometry.
    SetAssocCache wide(64 * 1024, 32);
    EXPECT_TRUE(wide.usingReference());
    wide.insert(0x1000);
    EXPECT_TRUE(wide.lookup(0x1000));

    SetAssocCache normal(64 * 1024, 16);
    EXPECT_FALSE(normal.usingReference());
}

TEST(TagArray, ConfigForcesReference)
{
    SetAssocCache cache(4096, 4, refConfig());
    EXPECT_TRUE(cache.usingReference());

    AssocArray<std::uint8_t> arr(64, 4, refConfig());
    EXPECT_TRUE(arr.usingReference());
}

// --- Directed LRU-order cases, run on both implementations ---

class LruOrder : public ::testing::TestWithParam<bool>
{
  protected:
    CacheConfig
    impl() const
    {
        CacheConfig cfg;
        cfg.useReferenceCache = GetParam();
        return cfg;
    }
};

TEST_P(LruOrder, HitPromotesToMru)
{
    // One set, 4 ways: after touching a, the eviction order of the
    // rest must be untouched (b, then c, then d).
    SetAssocCache cache(4 * kLineBytes, 4, impl());
    ASSERT_EQ(cache.numSets(), 1u);
    const Addr a = 0 * kLineBytes, b = 1 * kLineBytes * 1,
               c = 2 * kLineBytes, d = 3 * kLineBytes;
    // One set means every line maps to set 0 regardless of address.
    cache.insert(a);
    cache.insert(b);
    cache.insert(c);
    cache.insert(d);
    ASSERT_TRUE(cache.lookup(a)); // a: LRU -> MRU
    EXPECT_EQ(cache.insert(4 * kLineBytes), b);
    EXPECT_EQ(cache.insert(5 * kLineBytes), c);
    EXPECT_EQ(cache.insert(6 * kLineBytes), d);
    EXPECT_EQ(cache.insert(7 * kLineBytes), a);
}

TEST_P(LruOrder, VictimOfFullSetIsTrueLru)
{
    SetAssocCache cache(8 * kLineBytes, 8, impl());
    ASSERT_EQ(cache.numSets(), 1u);
    for (Addr i = 0; i < 8; ++i)
        cache.insert(i * kLineBytes);
    // Touch in an order that scrambles insertion order.
    const Addr touch[] = {3, 0, 7, 1, 6, 2, 5, 4};
    for (Addr i : touch)
        ASSERT_TRUE(cache.lookup(i * kLineBytes));
    // Evictions must now follow the touch order exactly.
    for (unsigned n = 0; n < 8; ++n) {
        EXPECT_EQ(cache.insert((100 + n) * kLineBytes),
                  touch[n] * kLineBytes);
    }
}

TEST_P(LruOrder, InvalidWayFillsBeforeEviction)
{
    SetAssocCache cache(4 * kLineBytes, 4, impl());
    ASSERT_EQ(cache.numSets(), 1u);
    for (Addr i = 0; i < 4; ++i)
        cache.insert(i * kLineBytes);
    cache.invalidate(1 * kLineBytes);
    // The freed way must absorb the next insert with no victim...
    EXPECT_EQ(cache.insert(10 * kLineBytes), kInvalidAddr);
    // ...and the LRU order of the surviving lines is unchanged.
    EXPECT_EQ(cache.insert(11 * kLineBytes), 0 * kLineBytes);
    EXPECT_EQ(cache.insert(12 * kLineBytes), 2 * kLineBytes);
}

INSTANTIATE_TEST_SUITE_P(Impls, LruOrder, ::testing::Bool(),
                         [](const auto &info) {
                             return info.param ? "Reference" : "Packed";
                         });

// --- invalidate() dirty contract (the lost-writeback fix) ---

TEST(SetAssocCacheInvalidate, ReportsDroppedDirtyState)
{
    for (bool use_ref : {false, true}) {
        CacheConfig cfg;
        cfg.useReferenceCache = use_ref;
        SetAssocCache cache(4096, 4, cfg);

        cache.insert(0x1000);
        EXPECT_FALSE(cache.invalidate(0x1000)) << "clean line";

        cache.insertTracked(0x2000, true);
        EXPECT_TRUE(cache.invalidate(0x2000)) << "dirty at install";

        cache.insert(0x3000);
        cache.markDirty(0x3000);
        EXPECT_TRUE(cache.invalidate(0x3000)) << "dirtied later";

        EXPECT_FALSE(cache.invalidate(0x4000)) << "absent line";
        EXPECT_FALSE(cache.invalidate(0x3000)) << "already gone";
    }
}

TEST(SetAssocCacheInvalidate, ReinsertAfterDirtyInvalidateIsClean)
{
    SetAssocCache cache(4096, 4);
    cache.insertTracked(0x5000, true);
    ASSERT_TRUE(cache.invalidate(0x5000));
    cache.insert(0x5000);
    EXPECT_FALSE(cache.isDirty(0x5000));
    EXPECT_FALSE(cache.invalidate(0x5000));
}

// --- Randomized differential: packed vs reference ---

/** Drive a packed and a reference SetAssocCache through one random
 * interleaving of operations, asserting identical observables at
 * every step. */
void
diffSetAssoc(Addr size_bytes, unsigned assoc, std::uint64_t seed,
             unsigned ops)
{
    SetAssocCache packed(size_bytes, assoc);
    SetAssocCache ref(size_bytes, assoc, refConfig());
    ASSERT_FALSE(packed.usingReference());
    ASSERT_TRUE(ref.usingReference());

    Rng rng(seed);
    // Footprint ~4x capacity so hits, misses, and evictions all occur.
    const Addr lines = 4 * (size_bytes / kLineBytes);
    for (unsigned i = 0; i < ops; ++i) {
        const Addr addr = (rng.next() % lines) * kLineBytes;
        switch (rng.next() % 8) {
          case 0:
          case 1:
          case 2:
            ASSERT_EQ(packed.lookup(addr), ref.lookup(addr)) << i;
            break;
          case 3:
          case 4: {
            const bool dirty = rng.next() & 1;
            const auto pv = packed.insertTracked(addr, dirty);
            const auto rv = ref.insertTracked(addr, dirty);
            ASSERT_EQ(pv.addr, rv.addr) << i;
            ASSERT_EQ(pv.dirty, rv.dirty) << i;
            break;
          }
          case 5:
            ASSERT_EQ(packed.markDirty(addr), ref.markDirty(addr)) << i;
            break;
          case 6:
            ASSERT_EQ(packed.invalidate(addr), ref.invalidate(addr))
                << i;
            break;
          case 7:
            ASSERT_EQ(packed.isDirty(addr), ref.isDirty(addr)) << i;
            ASSERT_EQ(packed.contains(addr), ref.contains(addr)) << i;
            break;
        }
        if (i % 1024 == 0) {
            ASSERT_EQ(packed.hits(), ref.hits()) << i;
            ASSERT_EQ(packed.misses(), ref.misses()) << i;
        }
    }
    EXPECT_EQ(packed.hits(), ref.hits());
    EXPECT_EQ(packed.misses(), ref.misses());

    // reset() must bring both back to the same (empty) state.
    packed.reset();
    ref.reset();
    EXPECT_EQ(packed.lookup(0), ref.lookup(0));
}

TEST(TagArrayDifferential, SetAssocAcrossAssociativities)
{
    std::uint64_t seed = 0x7e3a11;
    for (unsigned assoc : {1u, 2u, 4u, 8u, 16u}) {
        SCOPED_TRACE(assoc);
        diffSetAssoc(assoc * 8 * kLineBytes, assoc, seed++, 20000);
    }
}

TEST(TagArrayDifferential, SetAssocSingleSet)
{
    // Degenerate single-set geometry exercises the full rank word.
    for (unsigned assoc : {1u, 4u, 16u}) {
        SCOPED_TRACE(assoc);
        diffSetAssoc(assoc * kLineBytes, assoc, 0xbee5 + assoc, 20000);
    }
}

/** Same differential for the generic AssocArray, including payload
 * refresh semantics. */
void
diffAssocArray(unsigned entries, unsigned assoc, std::uint64_t seed,
               unsigned ops)
{
    AssocArray<std::uint32_t> packed(entries, assoc);
    AssocArray<std::uint32_t> ref(entries, assoc, refConfig());
    ASSERT_FALSE(packed.usingReference());
    ASSERT_TRUE(ref.usingReference());
    ASSERT_EQ(packed.capacity(), ref.capacity());

    Rng rng(seed);
    const std::uint64_t keys = 4 * packed.capacity();
    for (unsigned i = 0; i < ops; ++i) {
        const std::uint64_t key = rng.next() % keys;
        switch (rng.next() % 8) {
          case 0:
          case 1:
          case 2: {
            const std::uint32_t *p = packed.lookup(key);
            const std::uint32_t *r = ref.lookup(key);
            ASSERT_EQ(p != nullptr, r != nullptr) << i;
            if (p)
                ASSERT_EQ(*p, *r) << i;
            break;
          }
          case 3:
          case 4:
          case 5: {
            const auto payload =
                static_cast<std::uint32_t>(rng.next());
            packed.insert(key, payload);
            ref.insert(key, payload);
            break;
          }
          case 6:
            packed.invalidate(key);
            ref.invalidate(key);
            break;
          case 7:
            ASSERT_EQ(packed.contains(key), ref.contains(key)) << i;
            break;
        }
    }
    EXPECT_EQ(packed.hits(), ref.hits());
    EXPECT_EQ(packed.misses(), ref.misses());
}

TEST(TagArrayDifferential, AssocArrayAcrossAssociativities)
{
    std::uint64_t seed = 0x51de;
    for (unsigned assoc : {1u, 2u, 4u, 8u, 16u}) {
        SCOPED_TRACE(assoc);
        diffAssocArray(assoc * 16, assoc, seed++, 20000);
    }
}

TEST(TagArrayDifferential, TlbLikeGeometry)
{
    // The STLB's 1536/12 geometry (128 sets, 12 ways — a non-pow2,
    // non-multiple-of-4 way count exercising the padded rank lanes).
    diffAssocArray(1536, 12, 0xd0c5, 40000);
}

} // namespace
} // namespace tempo
