#include <gtest/gtest.h>

#include "common/types.hh"

namespace tempo {
namespace {

TEST(Types, PageBytes)
{
    EXPECT_EQ(pageBytes(PageSize::Page4K), 4096u);
    EXPECT_EQ(pageBytes(PageSize::Page2M), 2ull << 20);
    EXPECT_EQ(pageBytes(PageSize::Page1G), 1ull << 30);
}

TEST(Types, LeafLevelPerSize)
{
    EXPECT_EQ(leafLevel(PageSize::Page4K), 1);
    EXPECT_EQ(leafLevel(PageSize::Page2M), 2);
    EXPECT_EQ(leafLevel(PageSize::Page1G), 3);
}

TEST(Types, PageSizeNames)
{
    EXPECT_STREQ(pageSizeName(PageSize::Page4K), "4KB");
    EXPECT_STREQ(pageSizeName(PageSize::Page2M), "2MB");
    EXPECT_STREQ(pageSizeName(PageSize::Page1G), "1GB");
}

TEST(Types, AlignDown)
{
    EXPECT_EQ(alignDown(0x1234, 0x1000), 0x1000u);
    EXPECT_EQ(alignDown(0x1000, 0x1000), 0x1000u);
    EXPECT_EQ(alignDown(0xfff, 0x1000), 0u);
}

TEST(Types, AlignUp)
{
    EXPECT_EQ(alignUp(0x1234, 0x1000), 0x2000u);
    EXPECT_EQ(alignUp(0x1000, 0x1000), 0x1000u);
    EXPECT_EQ(alignUp(1, 0x1000), 0x1000u);
    EXPECT_EQ(alignUp(0, 0x1000), 0u);
}

TEST(Types, LineAddr)
{
    EXPECT_EQ(lineAddr(0), 0u);
    EXPECT_EQ(lineAddr(63), 0u);
    EXPECT_EQ(lineAddr(64), 64u);
    EXPECT_EQ(lineAddr(0x12345), 0x12340u);
}

TEST(Types, LineInPage)
{
    EXPECT_EQ(lineInPage(0), 0u);
    EXPECT_EQ(lineInPage(63), 0u);
    EXPECT_EQ(lineInPage(64), 1u);
    EXPECT_EQ(lineInPage(4095), 63u);
    // The replay's line index is page-relative: the paper's walker
    // appends exactly these 6 bits for 4KB pages.
    EXPECT_EQ(lineInPage(0x2001), 0u);
    EXPECT_EQ(lineInPage(0x2041), 1u);
}

TEST(Types, Vpn4K)
{
    EXPECT_EQ(vpn4K(0), 0u);
    EXPECT_EQ(vpn4K(4095), 0u);
    EXPECT_EQ(vpn4K(4096), 1u);
}

TEST(Types, Log2Exact)
{
    EXPECT_EQ(log2Exact(1), 0u);
    EXPECT_EQ(log2Exact(2), 1u);
    EXPECT_EQ(log2Exact(64), 6u);
    EXPECT_EQ(log2Exact(1ull << 40), 40u);
}

TEST(Types, IsPow2)
{
    EXPECT_TRUE(isPow2(1));
    EXPECT_TRUE(isPow2(2));
    EXPECT_TRUE(isPow2(1ull << 33));
    EXPECT_FALSE(isPow2(0));
    EXPECT_FALSE(isPow2(3));
    EXPECT_FALSE(isPow2(6));
}

class LineInPageProperty : public ::testing::TestWithParam<Addr>
{
};

TEST_P(LineInPageProperty, ConsistentWithArithmetic)
{
    const Addr addr = GetParam();
    EXPECT_EQ(lineInPage(addr),
              (addr % kPageBytes) / kLineBytes);
    EXPECT_LT(lineInPage(addr), kPageBytes / kLineBytes);
    EXPECT_LE(lineAddr(addr), addr);
    EXPECT_LT(addr - lineAddr(addr), kLineBytes);
}

INSTANTIATE_TEST_SUITE_P(Sweep, LineInPageProperty,
                         ::testing::Values(0ull, 1ull, 4095ull, 4096ull,
                                           0xdeadbeefull,
                                           0x123456789abull,
                                           ~Addr{0} - 63));

} // namespace
} // namespace tempo
