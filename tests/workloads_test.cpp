#include <gtest/gtest.h>

#include <deque>
#include <set>

#include "workloads/workload.hh"

namespace tempo {
namespace {

std::vector<std::string>
allWorkloadNames()
{
    std::vector<std::string> names = bigDataWorkloadNames();
    for (const std::string &name : smallWorkloadNames())
        names.push_back(name);
    return names;
}

class EveryWorkload : public ::testing::TestWithParam<std::string>
{
};

TEST_P(EveryWorkload, Constructs)
{
    auto workload = makeWorkload(GetParam(), 1);
    ASSERT_NE(workload, nullptr);
    EXPECT_EQ(workload->name(), GetParam());
    EXPECT_GT(workload->footprintBytes(), 0u);
    EXPECT_GE(workload->mlpHint(), 1u);
}

TEST_P(EveryWorkload, DeterministicForSeed)
{
    auto a = makeWorkload(GetParam(), 77);
    auto b = makeWorkload(GetParam(), 77);
    for (int i = 0; i < 5000; ++i) {
        const MemRef ra = a->next();
        const MemRef rb = b->next();
        ASSERT_EQ(ra.vaddr, rb.vaddr) << i;
        ASSERT_EQ(ra.isWrite, rb.isWrite) << i;
        ASSERT_EQ(ra.indirectFuture, rb.indirectFuture) << i;
    }
}

TEST_P(EveryWorkload, SeedsChangeTheTrace)
{
    auto a = makeWorkload(GetParam(), 1);
    auto b = makeWorkload(GetParam(), 2);
    int same = 0;
    for (int i = 0; i < 1000; ++i) {
        if (a->next().vaddr == b->next().vaddr)
            ++same;
    }
    EXPECT_LT(same, 1000);
}

TEST_P(EveryWorkload, TouchesManyDistinctPages)
{
    auto workload = makeWorkload(GetParam(), 3);
    std::set<Addr> pages;
    for (int i = 0; i < 20000; ++i)
        pages.insert(vpn4K(workload->next().vaddr));
    // Every workload, even the small ones, exercises a real footprint.
    EXPECT_GT(pages.size(), 50u);
}

TEST_P(EveryWorkload, IndirectFutureActuallyArrives)
{
    // Property: when a ref announces indirectFuture, the same stream
    // must reference exactly that address kImpDistance indirect-refs
    // later — otherwise the IMP model would be prefetching garbage.
    auto workload = makeWorkload(GetParam(), 5);
    std::deque<Addr> promised;
    int checked = 0;
    for (int i = 0; i < 50000 && checked < 500; ++i) {
        const MemRef ref = workload->next();
        if (!ref.indirect)
            continue;
        if (promised.size() >= kImpDistance) {
            EXPECT_EQ(ref.vaddr, promised.front());
            promised.pop_front();
            ++checked;
        }
        if (ref.indirectFuture != kInvalidAddr)
            promised.push_back(ref.indirectFuture);
        else
            promised.clear(); // stream broke; restart matching
    }
    // Workloads without indirect streams simply check nothing.
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, EveryWorkload,
                         ::testing::ValuesIn(allWorkloadNames()));

TEST(Workloads, BigDataListMatchesPaper)
{
    const auto &names = bigDataWorkloadNames();
    ASSERT_EQ(names.size(), 8u);
    EXPECT_EQ(names[0], "mcf");
    EXPECT_EQ(names[6], "xsbench");
}

TEST(WorkloadsDeathTest, UnknownNameIsFatal)
{
    EXPECT_DEATH((void)makeWorkload("not_a_workload", 1),
                 "unknown workload");
}

TEST(Workloads, BigDataFootprintsDwarfSmallOnes)
{
    for (const std::string &big : bigDataWorkloadNames()) {
        for (const std::string &small : smallWorkloadNames()) {
            EXPECT_GT(makeWorkload(big, 1)->footprintBytes(),
                      makeWorkload(small, 1)->footprintBytes() * 10)
                << big << " vs " << small;
        }
    }
}

TEST(Workloads, DistinctRegionsPerWorkload)
{
    // Each workload lives in its own VA region; in multiprogrammed
    // mixes each app has its own address space anyway, but distinct
    // bases keep single-system composition sane.
    std::set<Addr> bases;
    for (const std::string &name : allWorkloadNames()) {
        auto workload = makeWorkload(name, 1);
        bases.insert(alignDown(workload->next().vaddr, 1ull << 38));
    }
    EXPECT_GE(bases.size(), allWorkloadNames().size() - 2);
}

TEST(IndirectStream, DeliversDistancePairs)
{
    int counter = 0;
    IndirectStream stream([&] { return Addr(counter++) * 64; }, 4);
    const auto [c0, f0] = stream.next();
    EXPECT_EQ(c0, 0u);
    EXPECT_EQ(f0, 4u * 64);
    const auto [c1, f1] = stream.next();
    EXPECT_EQ(c1, 64u);
    EXPECT_EQ(f1, 5u * 64);
}

} // namespace
} // namespace tempo
