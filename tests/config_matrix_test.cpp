/**
 * @file
 * Configuration-matrix property tests: the full system must run
 * correctly — and TEMPO must keep its invariants — across a sweep of
 * hardware geometries, not just the default preset.
 */

#include <gtest/gtest.h>

#include "core/tempo_system.hh"

namespace tempo {
namespace {

struct MatrixPoint {
    const char *label;
    unsigned channels;
    unsigned banks;
    Addr rowBytes;
    Addr llcBytes;
    unsigned stlbEntries;
    RowPolicyKind rowPolicy;
};

class ConfigMatrix : public ::testing::TestWithParam<MatrixPoint>
{
  protected:
    SystemConfig
    make() const
    {
        const MatrixPoint &p = GetParam();
        SystemConfig cfg = SystemConfig::skylakeScaled();
        cfg.dram.channels = p.channels;
        cfg.dram.banksPerRank = p.banks;
        cfg.dram.rowBufferBytes = p.rowBytes;
        cfg.caches.llc.sizeBytes = p.llcBytes;
        cfg.tlb.l2Entries = p.stlbEntries;
        cfg.dram.rowPolicy = p.rowPolicy;
        return cfg;
    }
};

TEST_P(ConfigMatrix, RunsToCompletion)
{
    const RunResult result = runWorkload(make(), "graph500", 15000);
    EXPECT_EQ(result.core.refs, 15000u);
    EXPECT_GT(result.runtime, 0u);
}

TEST_P(ConfigMatrix, Deterministic)
{
    const RunResult a = runWorkload(make(), "canneal", 10000);
    const RunResult b = runWorkload(make(), "canneal", 10000);
    EXPECT_EQ(a.runtime, b.runtime);
}

TEST_P(ConfigMatrix, TempoNeverHurts)
{
    SystemConfig base = make();
    SystemConfig tempo_cfg = make();
    tempo_cfg.withTempo(true);
    const RunResult off = runWorkload(base, "xsbench", 15000);
    const RunResult on = runWorkload(tempo_cfg, "xsbench", 15000);
    EXPECT_LE(on.runtime, off.runtime * 101 / 100)
        << GetParam().label;
}

TEST_P(ConfigMatrix, TempoPrefetchAccountingHolds)
{
    SystemConfig cfg = make();
    cfg.withTempo(true);
    TempoSystem system(cfg, makeWorkload("illustris", cfg.seed));
    const RunResult result = system.run(15000);
    const auto &mc = system.machine().mc;
    EXPECT_EQ(mc.tempoPrefetchesIssued() + mc.tempoPrefetchesDropped()
                  + mc.tempoFaultSuppressed(),
              result.core.leafPtDramAccesses);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, ConfigMatrix,
    ::testing::Values(
        MatrixPoint{"default", 2, 8, 8192, 256 * 1024, 1536,
                    RowPolicyKind::Adaptive},
        MatrixPoint{"one-channel", 1, 8, 8192, 256 * 1024, 1536,
                    RowPolicyKind::Adaptive},
        MatrixPoint{"four-channel", 4, 8, 8192, 256 * 1024, 1536,
                    RowPolicyKind::Open},
        MatrixPoint{"small-rows", 2, 16, 2048, 256 * 1024, 1536,
                    RowPolicyKind::Closed},
        MatrixPoint{"big-rows", 2, 4, 16384, 256 * 1024, 1536,
                    RowPolicyKind::Adaptive},
        MatrixPoint{"big-llc", 2, 8, 8192, 2 * 1024 * 1024, 1536,
                    RowPolicyKind::Adaptive},
        MatrixPoint{"tiny-llc", 2, 8, 8192, 64 * 1024, 1536,
                    RowPolicyKind::Adaptive},
        MatrixPoint{"small-stlb", 2, 8, 8192, 256 * 1024, 192,
                    RowPolicyKind::Adaptive},
        MatrixPoint{"huge-stlb", 2, 8, 8192, 256 * 1024, 12288,
                    RowPolicyKind::Adaptive}),
    [](const ::testing::TestParamInfo<MatrixPoint> &info) {
        std::string name = info.param.label;
        for (char &c : name) {
            if (c == '-')
                c = '_';
        }
        return name;
    });

class SubRowMatrix : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(SubRowMatrix, SubRowCountsAllWork)
{
    for (SubRowAlloc alloc : {SubRowAlloc::FOA, SubRowAlloc::POA}) {
        SystemConfig cfg = SystemConfig::skylakeScaled();
        cfg.dram.subRowAlloc = alloc;
        cfg.dram.subRowCount = GetParam();
        cfg.dram.subRowsForPrefetch =
            GetParam() > 2 ? 2 : GetParam() - 1;
        cfg.withTempo(true);
        const RunResult result = runWorkload(cfg, "mcf", 10000);
        EXPECT_EQ(result.core.refs, 10000u);
    }
}

INSTANTIATE_TEST_SUITE_P(Counts, SubRowMatrix,
                         ::testing::Values(2u, 4u, 8u, 16u));

} // namespace
} // namespace tempo
