#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>

#include "core/tempo_system.hh"
#include "trace/trace.hh"
#include "workloads/workload.hh"

namespace tempo {
namespace {

std::string
tempPath(const char *name)
{
    return std::string(::testing::TempDir()) + name;
}

TEST(Trace, RecordCapturesExactStream)
{
    auto a = makeWorkload("xsbench", 5);
    auto b = makeWorkload("xsbench", 5);
    const Trace trace = recordTrace(*a, 1000);
    ASSERT_EQ(trace.refs.size(), 1000u);
    EXPECT_EQ(trace.name, "xsbench");
    for (const MemRef &ref : trace.refs) {
        const MemRef expect = b->next();
        ASSERT_EQ(ref.vaddr, expect.vaddr);
        ASSERT_EQ(ref.isWrite, expect.isWrite);
        ASSERT_EQ(ref.indirect, expect.indirect);
        ASSERT_EQ(ref.indirectFuture, expect.indirectFuture);
    }
}

TEST(Trace, WriteReadRoundTrip)
{
    auto workload = makeWorkload("spmv", 9);
    const Trace original = recordTrace(*workload, 2000);
    const std::string path = tempPath("roundtrip.trace");
    writeTrace(original, path);
    const Trace loaded = readTrace(path);
    EXPECT_EQ(loaded.name, original.name);
    ASSERT_EQ(loaded.refs.size(), original.refs.size());
    for (std::size_t i = 0; i < loaded.refs.size(); ++i) {
        ASSERT_EQ(loaded.refs[i].vaddr, original.refs[i].vaddr) << i;
        ASSERT_EQ(loaded.refs[i].isWrite, original.refs[i].isWrite);
        ASSERT_EQ(loaded.refs[i].stream, original.refs[i].stream);
        ASSERT_EQ(loaded.refs[i].indirect, original.refs[i].indirect);
        ASSERT_EQ(loaded.refs[i].indirectFuture,
                  original.refs[i].indirectFuture);
    }
    std::remove(path.c_str());
}

TEST(Trace, WorkloadReplaysInOrder)
{
    Trace trace;
    trace.name = "toy";
    for (Addr i = 0; i < 10; ++i)
        trace.refs.push_back(MemRef{i * kPageBytes, false, 0, false,
                                    kInvalidAddr});
    TraceWorkload replay(trace);
    for (Addr i = 0; i < 10; ++i)
        EXPECT_EQ(replay.next().vaddr, i * kPageBytes);
    // Wraps around.
    EXPECT_EQ(replay.next().vaddr, 0u);
}

TEST(Trace, WorkloadFootprintSpansAddresses)
{
    Trace trace;
    trace.name = "toy";
    trace.refs.push_back(MemRef{0x1000, false, 0, false, kInvalidAddr});
    trace.refs.push_back(MemRef{0x9000, false, 0, false, kInvalidAddr});
    TraceWorkload replay(trace);
    EXPECT_EQ(replay.footprintBytes(), 0x8001u);
}

TEST(Trace, ReplayedRunMatchesGeneratorRun)
{
    // The trace workflow must be timing-transparent: simulating a
    // recorded trace gives the same runtime as the live generator,
    // provided the replay uses the same MLP hint.
    const std::uint64_t refs = 20000;
    SystemConfig cfg = SystemConfig::skylakeScaled();

    TempoSystem live(cfg, makeWorkload("mcf", cfg.seed));
    const RunResult live_result = live.run(refs);

    auto source = makeWorkload("mcf", cfg.seed);
    Trace trace = recordTrace(*source, refs);
    TempoSystem replay(cfg, std::make_unique<TraceWorkload>(
                                std::move(trace), source->mlpHint()));
    const RunResult replay_result = replay.run(refs);

    EXPECT_EQ(replay_result.runtime, live_result.runtime);
    EXPECT_EQ(replay_result.core.walks, live_result.core.walks);
}

TEST(TraceDeathTest, MissingFileIsFatal)
{
    EXPECT_DEATH((void)readTrace("/nonexistent/path/x.trace"),
                 "cannot open");
}

TEST(TraceDeathTest, CorruptMagicIsFatal)
{
    const std::string path = tempPath("corrupt.trace");
    std::FILE *file = std::fopen(path.c_str(), "wb");
    ASSERT_NE(file, nullptr);
    std::fputs("JUNKJUNKJUNKJUNK", file);
    std::fclose(file);
    EXPECT_DEATH((void)readTrace(path), "not a TEMPO trace");
    std::remove(path.c_str());
}

TEST(TraceDeathTest, EmptyTraceWorkloadRejected)
{
    Trace trace;
    trace.name = "empty";
    EXPECT_DEATH(TraceWorkload{std::move(trace)}, "empty trace");
}

} // namespace
} // namespace tempo
