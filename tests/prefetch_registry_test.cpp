/**
 * @file
 * Registry conformance suite: every engine behind the Prefetcher
 * interface must parse, build, report a self-consistent taxonomy, and
 * stay deterministic across repeated runs and shard counts.
 */

#include <gtest/gtest.h>

#include <stdexcept>

#include "cli/config_file.hh"
#include "core/tempo_system.hh"
#include "prefetch/registry.hh"

namespace tempo {
namespace {

TEST(PrefetcherRegistry, NamesAreRegistered)
{
    const std::vector<std::string> &names = registeredPrefetcherNames();
    ASSERT_EQ(names.size(), 5u);
    for (const char *name :
         {"stride", "imp", "tskid", "misb", "temporal"}) {
        EXPECT_TRUE(isRegisteredPrefetcher(name)) << name;
    }
    EXPECT_FALSE(isRegisteredPrefetcher("nextline"));
    EXPECT_FALSE(isRegisteredPrefetcher(""));
}

TEST(PrefetcherRegistry, ParseListVariants)
{
    EXPECT_TRUE(parsePrefetcherList("").empty());
    EXPECT_TRUE(parsePrefetcherList("none").empty());
    EXPECT_EQ(parsePrefetcherList("stride"),
              (std::vector<std::string>{"stride"}));
    // Order is dispatch order and must be preserved.
    EXPECT_EQ(parsePrefetcherList("temporal,stride,misb"),
              (std::vector<std::string>{"temporal", "stride", "misb"}));
}

TEST(PrefetcherRegistry, ParseRejectsBadLists)
{
    EXPECT_THROW((void)parsePrefetcherList("bogus"),
                 std::invalid_argument);
    EXPECT_THROW((void)parsePrefetcherList("stride,stride"),
                 std::invalid_argument);
    EXPECT_THROW((void)parsePrefetcherList("stride,,imp"),
                 std::invalid_argument);
    EXPECT_THROW((void)parsePrefetcherList("stride,none"),
                 std::invalid_argument);
}

TEST(PrefetcherRegistry, LegacyFlagsSelectEngines)
{
    SystemConfig cfg = SystemConfig::skylakeScaled();
    EXPECT_TRUE(buildPrefetchers(cfg).empty());

    cfg.imp.enabled = true;
    cfg.stride.enabled = true;
    const auto engines = buildPrefetchers(cfg);
    // imp before stride: the pre-registry dispatch order the
    // byte-identity goldens pin.
    ASSERT_EQ(engines.size(), 2u);
    EXPECT_EQ(engines[0]->name(), "imp");
    EXPECT_EQ(engines[1]->name(), "stride");
}

TEST(PrefetcherRegistry, ExplicitListBuildsInOrderAndForcesEnabled)
{
    SystemConfig cfg = SystemConfig::skylakeScaled();
    // Flags stay false: an explicit list must not depend on them.
    cfg.withPrefetchers("temporal,stride,tskid,misb,imp");
    const auto engines = buildPrefetchers(cfg);
    ASSERT_EQ(engines.size(), 5u);
    EXPECT_EQ(engines[0]->name(), "temporal");
    EXPECT_EQ(engines[1]->name(), "stride");
    EXPECT_EQ(engines[2]->name(), "tskid");
    EXPECT_EQ(engines[3]->name(), "misb");
    EXPECT_EQ(engines[4]->name(), "imp");
}

TEST(PrefetcherRegistry, WithPrefetchersRoundTrip)
{
    SystemConfig cfg = SystemConfig::skylakeScaled();
    cfg.withPrefetchers("tskid,temporal");
    EXPECT_EQ(cfg.prefetch.engines,
              (std::vector<std::string>{"tskid", "temporal"}));
    cfg.withPrefetchers("none");
    EXPECT_TRUE(cfg.prefetch.engines.empty());
    EXPECT_THROW((void)cfg.withPrefetchers("bogus"),
                 std::invalid_argument);
}

TEST(PrefetcherRegistry, ConfigFileRoundTrip)
{
    SystemConfig cfg = SystemConfig::skylakeScaled();
    cli::applyConfigText("[prefetch]\n"
                         "engines = stride,misb\n"
                         "[stride]\n"
                         "degree = 3\n"
                         "[tskid]\n"
                         "lead_cycles = 250\n"
                         "[misb]\n"
                         "max_metadata_inflight = 2\n"
                         "[temporal]\n"
                         "train_threshold = 9\n",
                         cfg);
    EXPECT_EQ(cfg.prefetch.engines,
              (std::vector<std::string>{"stride", "misb"}));
    EXPECT_EQ(cfg.stride.degree, 3u);
    EXPECT_EQ(cfg.tskid.leadCycles, 250u);
    EXPECT_EQ(cfg.misb.maxMetadataInflight, 2u);
    EXPECT_EQ(cfg.temporal.trainThreshold, 9u);

    // The engine selection survives a digest round trip: two configs
    // differing only in engines must hash differently.
    SystemConfig other = SystemConfig::skylakeScaled();
    other.withPrefetchers("stride,misb");
    EXPECT_NE(SystemConfig::skylakeScaled().digest(), other.digest());
}

TEST(PrefetcherRegistry, ConfigFileNoneDisablesLegacyFlags)
{
    SystemConfig cfg = SystemConfig::skylakeScaled();
    cfg.imp.enabled = true;
    cfg.stride.enabled = true;
    cli::applyConfigText("[prefetch]\nengines = none\n", cfg);
    EXPECT_FALSE(cfg.imp.enabled);
    EXPECT_FALSE(cfg.stride.enabled);
    EXPECT_TRUE(buildPrefetchers(cfg).empty());
}

/** All-engines config used by the system-level conformance tests. */
SystemConfig
allEnginesConfig()
{
    SystemConfig cfg = SystemConfig::skylakeScaled();
    cfg.withPrefetchers("stride,imp,tskid,misb,temporal");
    return cfg;
}

TEST(PrefetcherRegistry, TaxonomySumsToIssued)
{
    const RunResult result =
        runWorkload(allEnginesConfig(), "xsbench", 20000);
    ASSERT_EQ(result.core.prefetchEngines.size(), 5u);
    std::uint64_t total_issued = 0;
    for (const PrefetchEngineStats &es : result.core.prefetchEngines) {
        // useful/late classify completed prefetches; whatever remains
        // is useless. The partition must be exact, engine by engine.
        EXPECT_LE(es.useful + es.late, es.issued) << es.name;
        EXPECT_EQ(es.useful + es.late + es.useless(), es.issued)
            << es.name;
        const std::string prefix = "prefetch." + es.name + ".";
        EXPECT_EQ(result.report.get(prefix + "issued"),
                  static_cast<double>(es.issued));
        EXPECT_EQ(result.report.get(prefix + "useful")
                      + result.report.get(prefix + "late")
                      + result.report.get(prefix + "useless"),
                  result.report.get(prefix + "issued"))
            << es.name;
        total_issued += es.issued;
    }
    // The workload has stride and indirect phases: the suite only
    // means something if the engines actually fire.
    EXPECT_GT(total_issued, 0u);
}

TEST(PrefetcherRegistry, DeterministicAcrossRepeats)
{
    const SystemConfig cfg = allEnginesConfig();
    const RunResult a = runWorkload(cfg, "xsbench", 15000);
    const RunResult b = runWorkload(cfg, "xsbench", 15000);
    EXPECT_EQ(a.runtime, b.runtime);
    ASSERT_EQ(a.core.prefetchEngines.size(),
              b.core.prefetchEngines.size());
    for (std::size_t i = 0; i < a.core.prefetchEngines.size(); ++i) {
        const PrefetchEngineStats &ea = a.core.prefetchEngines[i];
        const PrefetchEngineStats &eb = b.core.prefetchEngines[i];
        EXPECT_EQ(ea.issued, eb.issued) << ea.name;
        EXPECT_EQ(ea.useful, eb.useful) << ea.name;
        EXPECT_EQ(ea.late, eb.late) << ea.name;
        EXPECT_EQ(ea.dropped, eb.dropped) << ea.name;
        EXPECT_EQ(ea.metadataFetches, eb.metadataFetches) << ea.name;
    }
}

TEST(PrefetcherRegistry, DeterministicAcrossShardCounts)
{
    SystemConfig one = allEnginesConfig();
    one.withShards(1);
    SystemConfig four = allEnginesConfig();
    four.withShards(4);
    const RunResult a = runWorkload(one, "xsbench", 15000);
    const RunResult b = runWorkload(four, "xsbench", 15000);
    EXPECT_EQ(a.runtime, b.runtime);
    ASSERT_EQ(a.core.prefetchEngines.size(),
              b.core.prefetchEngines.size());
    for (std::size_t i = 0; i < a.core.prefetchEngines.size(); ++i) {
        const PrefetchEngineStats &ea = a.core.prefetchEngines[i];
        const PrefetchEngineStats &eb = b.core.prefetchEngines[i];
        EXPECT_EQ(ea.issued, eb.issued) << ea.name;
        EXPECT_EQ(ea.useful, eb.useful) << ea.name;
        EXPECT_EQ(ea.late, eb.late) << ea.name;
    }
}

TEST(PrefetcherRegistry, ExplicitImpMatchesLegacyFlag)
{
    SystemConfig legacy = SystemConfig::skylakeScaled();
    legacy.withImp(true);
    SystemConfig registry = SystemConfig::skylakeScaled();
    registry.withPrefetchers("imp");
    const RunResult a = runWorkload(legacy, "xsbench", 15000);
    const RunResult b = runWorkload(registry, "xsbench", 15000);
    // Same engine, same dispatch: timing and headline counters agree;
    // only the report gains the per-engine taxonomy keys.
    EXPECT_EQ(a.runtime, b.runtime);
    EXPECT_EQ(a.core.impIssued, b.core.impIssued);
    EXPECT_EQ(a.core.impFaults, b.core.impFaults);
    EXPECT_FALSE(a.report.has("prefetch.imp.issued"));
    EXPECT_TRUE(b.report.has("prefetch.imp.issued"));
}

TEST(PrefetcherRegistry, ExplicitStrideMatchesLegacyFlag)
{
    SystemConfig legacy = SystemConfig::skylakeScaled();
    legacy.stride.enabled = true;
    SystemConfig registry = SystemConfig::skylakeScaled();
    registry.withPrefetchers("stride");
    const RunResult a = runWorkload(legacy, "sgms", 15000);
    const RunResult b = runWorkload(registry, "sgms", 15000);
    EXPECT_EQ(a.runtime, b.runtime);
    EXPECT_EQ(a.core.strideIssued, b.core.strideIssued);
}

TEST(PrefetcherRegistry, WarmupResetKeepsTaxonomyConsistent)
{
    SystemConfig cfg = SystemConfig::skylakeScaled();
    cfg.withPrefetchers("stride");
    TempoSystem system(cfg, makeWorkload("sgms", cfg.seed));
    // The warmup reset must leave the taxonomy covering only the
    // measured window: no stale pre-warmup prefetch may classify as a
    // measured useful/late, which would break the partition.
    const RunResult measured = system.run(5000, 5000);
    ASSERT_EQ(measured.core.prefetchEngines.size(), 1u);
    const PrefetchEngineStats &es = measured.core.prefetchEngines[0];
    EXPECT_EQ(es.useful + es.late + es.useless(), es.issued);
    EXPECT_EQ(es.issued, measured.core.strideIssued);
}

} // namespace
} // namespace tempo
