#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/event_queue.hh"
#include "common/heap_event_queue.hh"

namespace tempo {
namespace {

TEST(EventQueue, StartsEmptyAtZero)
{
    EventQueue eq;
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.now(), 0u);
    EXPECT_FALSE(eq.step());
}

TEST(EventQueue, RunsInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    eq.runAll();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueue, SameCycleIsFifo)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        eq.schedule(5, [&order, i] { order.push_back(i); });
    eq.runAll();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueue, CallbackMaySchedule)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(1, [&] {
        eq.schedule(2, [&] {
            ++fired;
            eq.scheduleIn(3, [&] { ++fired; });
        });
    });
    eq.runAll();
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(eq.now(), 5u);
}

TEST(EventQueue, CallbackMayScheduleSameCycle)
{
    EventQueue eq;
    bool nested = false;
    eq.schedule(7, [&] { eq.schedule(7, [&] { nested = true; }); });
    eq.runAll();
    EXPECT_TRUE(nested);
    EXPECT_EQ(eq.now(), 7u);
}

TEST(EventQueue, RunUntilStopsAtBoundary)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&] { ++fired; });
    eq.schedule(20, [&] { ++fired; });
    eq.runUntil(15);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.now(), 15u);
    eq.runAll();
    EXPECT_EQ(fired, 2);
}

TEST(EventQueue, RunUntilAdvancesTimeWhenIdle)
{
    EventQueue eq;
    eq.runUntil(100);
    EXPECT_EQ(eq.now(), 100u);
}

TEST(EventQueue, NextTimeReportsEarliest)
{
    EventQueue eq;
    eq.schedule(42, [] {});
    eq.schedule(17, [] {});
    EXPECT_EQ(eq.nextTime(), 17u);
}

TEST(EventQueue, ExecutedCountsEvents)
{
    EventQueue eq;
    for (int i = 0; i < 5; ++i)
        eq.schedule(i, [] {});
    eq.runAll();
    EXPECT_EQ(eq.executed(), 5u);
}

TEST(EventQueueDeathTest, SchedulingInThePastPanics)
{
    EventQueue eq;
    eq.schedule(10, [] {});
    eq.runAll();
    EXPECT_DEATH(eq.schedule(5, [] {}), "past");
}

TEST(EventQueue, ManyInterleavedEventsStaySorted)
{
    EventQueue eq;
    Cycle last = 0;
    bool monotone = true;
    // Pseudo-random times, inserted out of order.
    for (std::uint64_t i = 0; i < 1000; ++i) {
        const Cycle when = (i * 7919) % 5000;
        eq.schedule(when, [&, when] {
            if (when < last)
                monotone = false;
            last = when;
        });
    }
    eq.runAll();
    EXPECT_TRUE(monotone);
}

// --- Calendar-queue invariants ------------------------------------
//
// The wheel has 1024 slots, so cycles T and T+1024 share a bucket and
// events farther than 1024 cycles out live in the overflow tier. These
// tests pin the determinism contract across those internal boundaries.

TEST(EventQueue, SameBucketDifferentCycleStaysSorted)
{
    // 100 and 1124 map to the same wheel slot (1124 = 100 + 1024);
    // insertion in reverse time order must not reorder execution.
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(1124, [&] { order.push_back(2); });
    eq.schedule(100, [&] { order.push_back(1); });
    eq.schedule(2148, [&] { order.push_back(3); }); // 100 + 2*1024
    eq.runAll();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, SameCycleFifoAcrossWheelWrap)
{
    // Events at a cycle beyond the wheel horizon go to the overflow
    // tier; once time wraps the wheel around to their slot they must
    // still run in insertion order.
    EventQueue eq;
    std::vector<int> order;
    const Cycle far = 5000; // > kWheelSlots away from now = 0
    for (int i = 0; i < 8; ++i)
        eq.schedule(far, [&order, i] { order.push_back(i); });
    // Keep time moving so the wheel actually rotates through the wrap.
    for (Cycle t = 100; t < far; t += 100)
        eq.schedule(t, [] {});
    eq.runAll();
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueue, OverflowPromotionPreservesFifoWithLateInsert)
{
    // A overflows in at t=2000 (far from now=0). A filler at t=1500
    // brings t=2000 within the wheel horizon — A is promoted at that
    // advance — and then schedules B, also at t=2000. A was inserted
    // first globally, so A must run before B.
    EventQueue eq;
    std::vector<char> order;
    eq.schedule(2000, [&] { order.push_back('A'); });
    eq.schedule(1500, [&] {
        eq.schedule(2000, [&] { order.push_back('B'); });
    });
    eq.runAll();
    EXPECT_EQ(order, (std::vector<char>{'A', 'B'}));
}

TEST(EventQueue, RunUntilBoundaryAcrossOverflowTier)
{
    // runUntil must execute events exactly at the boundary, including
    // ones that start out in the overflow tier, and not touch later
    // ones even when they share a wheel slot with executed ones.
    EventQueue eq;
    int fired = 0;
    eq.schedule(3000, [&] { ++fired; });        // overflow at insert
    eq.schedule(3000 + 1024, [&] { ++fired; }); // same slot, later
    eq.runUntil(3000);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.now(), 3000u);
    eq.runAll();
    EXPECT_EQ(fired, 2);
}

TEST(EventQueue, RandomizedStressMatchesReferenceHeap)
{
    // Differential test: run the same script — including events that
    // schedule more events — on the calendar queue and on the plain
    // binary-heap reference; execution (id, time) sequences must be
    // identical. Deltas are drawn so the run crosses wheel wraps and
    // the overflow tier many times; same-cycle collisions are common.
    struct Step {
        int id;
        Cycle delta;
        int children; // events this one schedules when it runs
    };
    std::vector<Step> script;
    std::uint64_t state = 99;
    auto rnd = [&state](std::uint64_t mod) {
        state = state * 6364136223846793005ULL + 1442695040888963407ULL;
        return (state >> 33) % mod;
    };
    for (int i = 0; i < 2000; ++i) {
        Cycle delta = rnd(64); // mostly near: frequent collisions
        if (rnd(10) == 0)
            delta = 900 + rnd(4000); // sometimes straddles the horizon
        script.push_back({i, delta,
                          static_cast<int>(rnd(4) == 0 ? rnd(3) : 0)});
    }

    auto run = [&script](auto &eq) {
        std::vector<std::pair<int, Cycle>> trace;
        std::size_t next = 0;
        // One "driver" chain pulls steps off the script; each step may
        // recursively schedule children (depth-first off the script).
        struct Driver {
            static void
            fire(decltype(eq) &q, std::vector<Step> &steps,
                 std::size_t &cursor,
                 std::vector<std::pair<int, Cycle>> &out, int children)
            {
                for (int c = 0; c < children; ++c) {
                    if (cursor >= steps.size())
                        return;
                    const Step s = steps[cursor++];
                    q.scheduleIn(s.delta, [&q, &steps, &cursor, &out, s] {
                        out.emplace_back(s.id, q.now());
                        fire(q, steps, cursor, out, s.children);
                    });
                }
            }
        };
        while (next < script.size()) {
            // Seed in bursts of 5 from whatever "now" is, then drain.
            for (int b = 0; b < 5 && next < script.size(); ++b) {
                const Step s = script[next++];
                eq.scheduleIn(s.delta, [&eq, &script, &next, &trace, s] {
                    trace.emplace_back(s.id, eq.now());
                    Driver::fire(eq, script, next, trace, s.children);
                });
            }
            eq.runAll();
        }
        return trace;
    };

    EventQueue calendar;
    HeapEventQueue heap;
    const auto calendar_trace = run(calendar);
    const auto heap_trace = run(heap);
    ASSERT_EQ(calendar_trace.size(), heap_trace.size());
    EXPECT_EQ(calendar_trace, heap_trace);
    EXPECT_EQ(calendar.now(), heap.now());
    EXPECT_EQ(calendar.executed(), heap.executed());
}

TEST(EventQueue, InlineCallbacksDoNotAllocatePerEvent)
{
    // Capture sizes up to EventQueue::kInlineBytes stay in the node's
    // inline buffer (the hot path's allocation-free guarantee).
    struct Big {
        std::uint64_t words[12]; // 96 bytes < kInlineBytes
    };
    EventQueue::Callback cb{[big = Big{}] { (void)big; }};
    EXPECT_TRUE(cb.inlineStored());

    struct TooBig {
        std::uint64_t words[32]; // 256 bytes > kInlineBytes
    };
    EventQueue::Callback fat{[big = TooBig{}] { (void)big; }};
    EXPECT_FALSE(fat.inlineStored());
}

} // namespace
} // namespace tempo
