#include <gtest/gtest.h>

#include <vector>

#include "common/event_queue.hh"

namespace tempo {
namespace {

TEST(EventQueue, StartsEmptyAtZero)
{
    EventQueue eq;
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.now(), 0u);
    EXPECT_FALSE(eq.step());
}

TEST(EventQueue, RunsInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    eq.runAll();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueue, SameCycleIsFifo)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        eq.schedule(5, [&order, i] { order.push_back(i); });
    eq.runAll();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueue, CallbackMaySchedule)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(1, [&] {
        eq.schedule(2, [&] {
            ++fired;
            eq.scheduleIn(3, [&] { ++fired; });
        });
    });
    eq.runAll();
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(eq.now(), 5u);
}

TEST(EventQueue, CallbackMayScheduleSameCycle)
{
    EventQueue eq;
    bool nested = false;
    eq.schedule(7, [&] { eq.schedule(7, [&] { nested = true; }); });
    eq.runAll();
    EXPECT_TRUE(nested);
    EXPECT_EQ(eq.now(), 7u);
}

TEST(EventQueue, RunUntilStopsAtBoundary)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&] { ++fired; });
    eq.schedule(20, [&] { ++fired; });
    eq.runUntil(15);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.now(), 15u);
    eq.runAll();
    EXPECT_EQ(fired, 2);
}

TEST(EventQueue, RunUntilAdvancesTimeWhenIdle)
{
    EventQueue eq;
    eq.runUntil(100);
    EXPECT_EQ(eq.now(), 100u);
}

TEST(EventQueue, NextTimeReportsEarliest)
{
    EventQueue eq;
    eq.schedule(42, [] {});
    eq.schedule(17, [] {});
    EXPECT_EQ(eq.nextTime(), 17u);
}

TEST(EventQueue, ExecutedCountsEvents)
{
    EventQueue eq;
    for (int i = 0; i < 5; ++i)
        eq.schedule(i, [] {});
    eq.runAll();
    EXPECT_EQ(eq.executed(), 5u);
}

TEST(EventQueueDeathTest, SchedulingInThePastPanics)
{
    EventQueue eq;
    eq.schedule(10, [] {});
    eq.runAll();
    EXPECT_DEATH(eq.schedule(5, [] {}), "past");
}

TEST(EventQueue, ManyInterleavedEventsStaySorted)
{
    EventQueue eq;
    Cycle last = 0;
    bool monotone = true;
    // Pseudo-random times, inserted out of order.
    for (std::uint64_t i = 0; i < 1000; ++i) {
        const Cycle when = (i * 7919) % 5000;
        eq.schedule(when, [&, when] {
            if (when < last)
                monotone = false;
            last = when;
        });
    }
    eq.runAll();
    EXPECT_TRUE(monotone);
}

} // namespace
} // namespace tempo
