#include <gtest/gtest.h>

#include <optional>

#include "common/event_queue.hh"
#include "mc/memory_controller.hh"

namespace tempo {
namespace {

struct McFixture : public ::testing::Test {
    EventQueue eq;
    DramConfig dram_cfg;
    std::unique_ptr<DramDevice> dram;
    std::unique_ptr<MemoryController> mc;

    void
    build(McConfig cfg = McConfig{})
    {
        dram_cfg.rowPolicy = RowPolicyKind::Open;
        dram = std::make_unique<DramDevice>(dram_cfg);
        mc = std::make_unique<MemoryController>(eq, *dram, cfg);
    }

    /** Submit and run to completion; returns the MemResult. */
    MemResult
    roundTrip(Addr paddr, ReqKind kind = ReqKind::Regular,
              TempoTag tag = {})
    {
        std::optional<MemResult> result;
        MemRequest req;
        req.paddr = paddr;
        req.kind = kind;
        req.tempo = tag;
        req.onComplete = [&](const MemResult &r) { result = r; };
        mc->submit(std::move(req));
        eq.runAll();
        EXPECT_TRUE(result.has_value());
        return *result;
    }
};

TEST_F(McFixture, SingleRequestCompletesWithMissLatency)
{
    build();
    const MemResult result = roundTrip(0x4000);
    EXPECT_EQ(result.complete, dram_cfg.missLatency());
    EXPECT_EQ(result.queueDelay, 0u);
    EXPECT_EQ(mc->served(ReqKind::Regular), 1u);
}

TEST_F(McFixture, BackToBackSameRowIsRowHit)
{
    build();
    roundTrip(0x4000);
    const MemResult second = roundTrip(0x4040);
    EXPECT_EQ(second.rowEvent, static_cast<std::uint8_t>(RowEvent::Hit));
    EXPECT_EQ(mc->rowHitsFor(ReqKind::Regular), 1u);
}

TEST_F(McFixture, ChannelBusSerializesDispatch)
{
    build();
    std::vector<Cycle> completions;
    // Two requests to the same channel, different banks.
    for (Addr addr : {Addr{0}, Addr{1} << 14}) {
        MemRequest req;
        req.paddr = addr;
        req.onComplete = [&](const MemResult &r) {
            completions.push_back(r.complete);
        };
        mc->submit(std::move(req));
    }
    eq.runAll();
    ASSERT_EQ(completions.size(), 2u);
    // The second dispatch waits one burst slot.
    EXPECT_GE(completions[1], completions[0] + dram_cfg.tBurst
              || completions[0] >= completions[1] + dram_cfg.tBurst);
}

TEST_F(McFixture, TempoDisabledIgnoresTaggedRequests)
{
    McConfig cfg;
    cfg.tempoEnabled = false;
    build(cfg);
    TempoTag tag;
    tag.tagged = true;
    tag.pteValid = true;
    tag.replayPaddr = 0x123400;
    roundTrip(0x8000, ReqKind::PtWalk, tag);
    eq.runAll();
    EXPECT_EQ(mc->tempoPrefetchesIssued(), 0u);
    EXPECT_EQ(mc->served(ReqKind::TempoPrefetch), 0u);
}

TEST_F(McFixture, TaggedPtTriggersPrefetch)
{
    McConfig cfg;
    cfg.tempoEnabled = true;
    build(cfg);
    TempoTag tag;
    tag.tagged = true;
    tag.pteValid = true;
    tag.replayPaddr = 0x123440;
    roundTrip(0x8000, ReqKind::PtWalk, tag);
    eq.runAll();
    EXPECT_EQ(mc->tempoPrefetchesIssued(), 1u);
    EXPECT_EQ(mc->served(ReqKind::TempoPrefetch), 1u);
}

TEST_F(McFixture, PrefetchTargetsExactReplayLine)
{
    McConfig cfg;
    cfg.tempoEnabled = true;
    build(cfg);
    Addr filled = kInvalidAddr;
    mc->onTempoPrefetchFill = [&](Addr paddr, AppId) { filled = paddr; };
    TempoTag tag;
    tag.tagged = true;
    tag.pteValid = true;
    tag.replayPaddr = 0x123456; // unaligned on purpose
    roundTrip(0x8000, ReqKind::PtWalk, tag);
    eq.runAll();
    // Non-speculative accuracy: the prefetch is the replay's line.
    EXPECT_EQ(filled, lineAddr(Addr{0x123456}));
}

TEST_F(McFixture, PageFaultSuppressesPrefetch)
{
    McConfig cfg;
    cfg.tempoEnabled = true;
    build(cfg);
    TempoTag tag;
    tag.tagged = true;
    tag.pteValid = false; // unallocated translation (paper Sec. 4.5)
    roundTrip(0x8000, ReqKind::PtWalk, tag);
    eq.runAll();
    EXPECT_EQ(mc->tempoPrefetchesIssued(), 0u);
    EXPECT_EQ(mc->tempoFaultSuppressed(), 1u);
}

TEST_F(McFixture, LlcFillCanBeDisabled)
{
    McConfig cfg;
    cfg.tempoEnabled = true;
    cfg.tempoLlcFill = false; // row-buffer-only ablation
    build(cfg);
    int fills = 0;
    mc->onTempoPrefetchFill = [&](Addr, AppId) { ++fills; };
    TempoTag tag;
    tag.tagged = true;
    tag.pteValid = true;
    tag.replayPaddr = 0x40000;
    roundTrip(0x8000, ReqKind::PtWalk, tag);
    eq.runAll();
    EXPECT_EQ(mc->tempoPrefetchesIssued(), 1u);
    EXPECT_EQ(fills, 0);
}

TEST_F(McFixture, PrefetchOpensTargetRow)
{
    McConfig cfg;
    cfg.tempoEnabled = true;
    build(cfg);
    TempoTag tag;
    tag.tagged = true;
    tag.pteValid = true;
    tag.replayPaddr = 0x200000;
    roundTrip(0x8000, ReqKind::PtWalk, tag);
    eq.runAll();
    // After the prefetch, the replay's row is open in its bank.
    EXPECT_TRUE(dram->wouldRowHit(0x200000));
}

TEST_F(McFixture, DeepQueueDropsPrefetches)
{
    McConfig cfg;
    cfg.tempoEnabled = true;
    cfg.prefetchDropDepth = 0; // everything drops
    build(cfg);
    TempoTag tag;
    tag.tagged = true;
    tag.pteValid = true;
    tag.replayPaddr = 0x40000;
    roundTrip(0x8000, ReqKind::PtWalk, tag);
    eq.runAll();
    EXPECT_EQ(mc->tempoPrefetchesIssued(), 0u);
    EXPECT_EQ(mc->tempoPrefetchesDropped(), 1u);
}

TEST_F(McFixture, MergeFindsPendingPrefetch)
{
    McConfig cfg;
    cfg.tempoEnabled = true;
    build(cfg);
    TempoTag tag;
    tag.tagged = true;
    tag.pteValid = true;
    tag.replayPaddr = 0x40000;

    MemRequest req;
    req.paddr = 0x8000;
    req.kind = ReqKind::PtWalk;
    req.tempo = tag;
    std::optional<Cycle> merged_done;
    req.onComplete = [&](const MemResult &) {
        // At PT completion the prefetch is registered; merge now.
        EXPECT_TRUE(mc->mergeWithPendingPrefetch(
            0x40000, [&](Cycle done) { merged_done = done; }));
    };
    mc->submit(std::move(req));
    eq.runAll();
    ASSERT_TRUE(merged_done.has_value());
    EXPECT_GT(*merged_done, 0u);
    // After completion nothing is pending anymore.
    EXPECT_FALSE(mc->mergeWithPendingPrefetch(0x40000, [](Cycle) {}));
}

TEST_F(McFixture, MergeMissesWithoutPrefetch)
{
    build();
    EXPECT_FALSE(mc->mergeWithPendingPrefetch(0x999999, [](Cycle) {}));
}

TEST_F(McFixture, TaggedRequestCountsTwoQueueSlots)
{
    McConfig cfg;
    cfg.tempoEnabled = true;
    build(cfg);
    TempoTag tag;
    tag.tagged = true;
    tag.pteValid = true;
    tag.replayPaddr = 0x40000;
    MemRequest req;
    req.paddr = 0x8000;
    req.kind = ReqKind::PtWalk;
    req.tempo = tag;
    mc->submit(std::move(req));
    // The split Tx Q encoding (paper Sec. 4.1) occupies two slots.
    EXPECT_GE(mc->queueHighWater(), 2u);
    eq.runAll();
}

TEST_F(McFixture, ReportHasPerKindStats)
{
    build();
    roundTrip(0x4000);
    stats::Report report;
    mc->report(report);
    EXPECT_TRUE(report.has("regular.served"));
    EXPECT_TRUE(report.has("pt_walk.served"));
    EXPECT_TRUE(report.has("tempo.prefetches_issued"));
    EXPECT_EQ(report.get("regular.served"), 1.0);
}

TEST_F(McFixture, QueueOccupancyCountsTaggedSplitsIncrementally)
{
    McConfig cfg;
    cfg.tempoEnabled = true;
    build(cfg);
    EXPECT_EQ(mc->queueOccupancy(), 0u);
    TempoTag tag;
    tag.tagged = true;
    tag.pteValid = true;
    tag.replayPaddr = 0x40000;
    MemRequest pt;
    pt.paddr = 0x8000;
    pt.kind = ReqKind::PtWalk;
    pt.tempo = tag;
    mc->submit(std::move(pt));
    MemRequest regular;
    regular.paddr = 0x20000;
    mc->submit(std::move(regular));
    // Nothing dispatches until the event queue runs: the tagged PT holds
    // two slots (split encoding) and the demand request one.
    EXPECT_EQ(mc->queueOccupancy(), 3u);
    eq.runAll();
    EXPECT_EQ(mc->queueOccupancy(), 0u);
}

TEST_F(McFixture, ReferenceSchedulerMatchesIndexedTimings)
{
    // The retained flat-scan schedulers must schedule the exact same
    // transactions at the exact same cycles as the indexed paths.
    auto run = [](bool use_ref, SchedKind sched_kind) {
        EventQueue local_eq;
        DramConfig local_dram_cfg;
        local_dram_cfg.rowPolicy = RowPolicyKind::Open;
        DramDevice local_dram(local_dram_cfg);
        McConfig cfg;
        cfg.tempoEnabled = true;
        cfg.sched = sched_kind;
        cfg.scheduler.useReferenceScheduler = use_ref;
        MemoryController local_mc(local_eq, local_dram, cfg);
        std::vector<Cycle> completions;
        for (int i = 0; i < 48; ++i) {
            MemRequest req;
            req.paddr = (static_cast<Addr>(i % 5) << 16)
                | (static_cast<Addr>(i % 7) << 13)
                | (static_cast<Addr>(i) << 6);
            req.app = static_cast<AppId>(i % 3);
            if (i % 6 == 0) {
                req.kind = ReqKind::PtWalk;
                req.tempo.tagged = true;
                req.tempo.pteValid = true;
                req.tempo.replayPaddr = 0x200000 + (static_cast<Addr>(i) << 6);
            }
            const int idx = i;
            req.onComplete = [&completions, idx](const MemResult &r) {
                completions.push_back(r.complete ^ static_cast<Cycle>(idx));
            };
            local_mc.submit(std::move(req));
        }
        local_eq.runAll();
        return completions;
    };
    EXPECT_EQ(run(false, SchedKind::FrFcfs), run(true, SchedKind::FrFcfs));
    EXPECT_EQ(run(false, SchedKind::Bliss), run(true, SchedKind::Bliss));
}

TEST_F(McFixture, QueueDelayAccumulatesUnderLoad)
{
    build();
    int completions = 0;
    for (int i = 0; i < 32; ++i) {
        MemRequest req;
        req.paddr = static_cast<Addr>(i) << 14;
        req.onComplete = [&](const MemResult &) { ++completions; };
        mc->submit(std::move(req));
    }
    eq.runAll();
    EXPECT_EQ(completions, 32);
    EXPECT_GT(mc->avgQueueDelay(ReqKind::Regular), 0.0);
    EXPECT_GE(mc->queueHighWater(), 16u);
}

} // namespace
} // namespace tempo
