#include <gtest/gtest.h>

#include "core/tempo_system.hh"
#include "prefetch/stride.hh"

namespace tempo {
namespace {

StrideConfig
enabled()
{
    StrideConfig cfg;
    cfg.enabled = true;
    return cfg;
}

TEST(Stride, DisabledIssuesNothing)
{
    StridePrefetcher pf{StrideConfig{}};
    std::vector<Addr> out;
    for (int i = 0; i < 100; ++i) {
        pf.observe(1, 0x1000 + i * 64, out);
        EXPECT_TRUE(out.empty());
    }
}

TEST(Stride, DetectsConstantStride)
{
    StrideConfig cfg = enabled();
    cfg.confidenceThreshold = 2;
    cfg.degree = 1;
    cfg.distance = 4;
    StridePrefetcher pf(cfg);
    std::vector<Addr> out;
    // addr, addr+64, addr+128: two matching strides -> confident.
    pf.observe(1, 0x1000, out);
    EXPECT_TRUE(out.empty());
    pf.observe(1, 0x1040, out);
    EXPECT_TRUE(out.empty()); // first stride observation
    pf.observe(1, 0x1080, out);
    EXPECT_TRUE(out.empty()); // confidence 1 < 2
    pf.observe(1, 0x10c0, out);
    ASSERT_EQ(out.size(), 1u); // confidence 2: prefetch
    EXPECT_EQ(out[0], 0x10c0 + 4 * 64u);
}

TEST(Stride, DegreeIssuesConsecutiveSteps)
{
    StrideConfig cfg = enabled();
    cfg.confidenceThreshold = 1;
    cfg.degree = 3;
    cfg.distance = 2;
    StridePrefetcher pf(cfg);
    std::vector<Addr> out;
    pf.observe(1, 0x1000, out);
    pf.observe(1, 0x1100, out);
    pf.observe(1, 0x1200, out);
    ASSERT_EQ(out.size(), 3u);
    EXPECT_EQ(out[0], 0x1200 + 2 * 0x100u);
    EXPECT_EQ(out[1], 0x1200 + 3 * 0x100u);
    EXPECT_EQ(out[2], 0x1200 + 4 * 0x100u);
}

TEST(Stride, IrregularStreamNeverTriggers)
{
    StridePrefetcher pf(enabled());
    std::vector<Addr> out;
    std::uint64_t x = 99;
    for (int i = 0; i < 500; ++i) {
        x = x * 6364136223846793005ull + 1;
        pf.observe(1, x % (1ull << 30), out);
        EXPECT_TRUE(out.empty()) << i;
    }
}

TEST(Stride, StrideChangeResetsConfidence)
{
    StrideConfig cfg = enabled();
    cfg.confidenceThreshold = 2;
    StridePrefetcher pf(cfg);
    std::vector<Addr> out;
    pf.observe(1, 0x1000, out);
    pf.observe(1, 0x1040, out);
    pf.observe(1, 0x1080, out);
    pf.observe(1, 0x2000, out); // break the pattern
    EXPECT_TRUE(out.empty());
    pf.observe(1, 0x2040, out);
    EXPECT_TRUE(out.empty()); // must retrain
}

TEST(Stride, NegativeStridesWork)
{
    StrideConfig cfg = enabled();
    cfg.confidenceThreshold = 1;
    cfg.degree = 1;
    cfg.distance = 1;
    StridePrefetcher pf(cfg);
    std::vector<Addr> out;
    pf.observe(1, 0x10000, out);
    pf.observe(1, 0x10000 - 64, out);
    pf.observe(1, 0x10000 - 128, out);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0], 0x10000 - 192u);
}

TEST(Stride, HighAddressesTrainAndIssue)
{
    // Regression: the target checks used signed comparisons, so any
    // vaddr at or above 2^63 looked negative and streams up there never
    // prefetched. Addresses have no sign.
    StrideConfig cfg = enabled();
    cfg.confidenceThreshold = 1;
    cfg.degree = 1;
    cfg.distance = 1;
    StridePrefetcher pf(cfg);
    std::vector<Addr> out;
    const Addr base = Addr{1} << 63;
    pf.observe(1, base, out);
    pf.observe(1, base + 64, out);
    pf.observe(1, base + 128, out);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0], base + 192);
}

TEST(Stride, NegativeStrideCrossingZeroDropsWrap)
{
    // Regression: a descending stream near address 0 used to wrap
    // below zero and prefetch a bogus top-of-address-space target; the
    // wrap is now detected and the target dropped (counted).
    StrideConfig cfg = enabled();
    cfg.confidenceThreshold = 1;
    cfg.degree = 1;
    cfg.distance = 4;
    StridePrefetcher pf(cfg);
    std::vector<Addr> out;
    pf.observe(1, 0x140, out);
    pf.observe(1, 0x100, out);
    pf.observe(1, 0xc0, out); // target 0xc0 - 4*64 underflows
    EXPECT_TRUE(out.empty());
    EXPECT_EQ(pf.issued(), 0u);
    stats::Report report;
    pf.report(report);
    EXPECT_EQ(report.get("wrap_dropped"), 1.0);
}

TEST(Stride, PositiveStrideWrappingTopIsDropped)
{
    StrideConfig cfg = enabled();
    cfg.confidenceThreshold = 1;
    cfg.degree = 1;
    cfg.distance = 4;
    StridePrefetcher pf(cfg);
    std::vector<Addr> out;
    const Addr top = ~Addr{0} - 255; // 256 bytes below 2^64
    pf.observe(1, top - 128, out);
    pf.observe(1, top - 64, out);
    pf.observe(1, top, out); // target top + 256 wraps past 2^64
    EXPECT_TRUE(out.empty());
    stats::Report report;
    pf.report(report);
    EXPECT_EQ(report.get("wrap_dropped"), 1.0);
}

TEST(Stride, StreamStartingAtZeroTrains)
{
    // Regression: lastAddr == 0 doubled as the "no history" sentinel,
    // so a stream whose first demand hit vaddr 0 trained one step late
    // (and a later touch OF address 0 reset the stream). History is
    // now tracked explicitly.
    StrideConfig cfg = enabled();
    cfg.confidenceThreshold = 1;
    cfg.degree = 1;
    cfg.distance = 1;
    StridePrefetcher pf(cfg);
    std::vector<Addr> out;
    pf.observe(1, 0, out);
    EXPECT_TRUE(out.empty()); // first touch: history only
    pf.observe(1, 64, out);
    EXPECT_TRUE(out.empty()); // first stride observation
    pf.observe(1, 128, out);
    ASSERT_EQ(out.size(), 1u); // trained exactly like any other base
    EXPECT_EQ(out[0], 192u);
}

TEST(Stride, StreamsAreIndependent)
{
    StrideConfig cfg = enabled();
    cfg.confidenceThreshold = 1;
    StridePrefetcher pf(cfg);
    std::vector<Addr> out;
    // Interleave two streams with different strides; both must train.
    for (int i = 1; i <= 4; ++i) {
        pf.observe(1, 0x1000 + i * 64ull, out);
        pf.observe(2, 0x900000 + i * 4096ull, out);
    }
    EXPECT_EQ(pf.confidentStreams(), 2u);
}

TEST(Stride, SystemRunWithStrideWorks)
{
    SystemConfig cfg = SystemConfig::skylakeScaled();
    cfg.stride.enabled = true;
    TempoSystem system(cfg, makeWorkload("sgms", cfg.seed));
    const RunResult result = system.run(20000);
    // sgms has sequential sweeps: the stride prefetcher must fire.
    EXPECT_GT(result.core.strideIssued, 0u);
}

TEST(Stride, TempoStillWinsWithStride)
{
    SystemConfig base = SystemConfig::skylakeScaled();
    base.stride.enabled = true;
    SystemConfig tempo_cfg = base;
    tempo_cfg.withTempo(true);
    const RunResult off = runWorkload(base, "xsbench", 20000);
    const RunResult on = runWorkload(tempo_cfg, "xsbench", 20000);
    EXPECT_LE(on.runtime, off.runtime);
}

TEST(TlbPrefetch, ExtensionFiresOnSequentialWorkloads)
{
    SystemConfig cfg = SystemConfig::skylakeScaled();
    cfg.tlbPrefetchNext = true;
    TempoSystem system(cfg, makeWorkload("sgms", cfg.seed));
    const RunResult result = system.run(20000);
    EXPECT_GT(result.core.tlbPrefetches, 0u);
}

TEST(TlbPrefetch, OffByDefault)
{
    SystemConfig cfg = SystemConfig::skylakeScaled();
    const RunResult result = runWorkload(cfg, "sgms", 10000);
    EXPECT_EQ(result.core.tlbPrefetches, 0u);
}

} // namespace
} // namespace tempo
