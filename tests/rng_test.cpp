#include <gtest/gtest.h>

#include "common/rng.hh"

namespace tempo {
namespace {

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(12345), b(12345);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i) {
        if (a.next() == b.next())
            ++same;
    }
    EXPECT_LT(same, 2);
}

TEST(Rng, BelowStaysInBounds)
{
    Rng rng(7);
    for (std::uint64_t bound : {1ull, 2ull, 3ull, 1000ull, 1ull << 40}) {
        for (int i = 0; i < 200; ++i)
            EXPECT_LT(rng.below(bound), bound);
    }
}

TEST(Rng, BelowOneIsAlwaysZero)
{
    Rng rng(9);
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(11);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    // Mean should be near 0.5.
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ChanceExtremes)
{
    Rng rng(13);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
}

TEST(Rng, ChanceApproximatesProbability)
{
    Rng rng(17);
    int hits = 0;
    for (int i = 0; i < 10000; ++i) {
        if (rng.chance(0.3))
            ++hits;
    }
    EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(Rng, SkewedBelowRespectsBound)
{
    Rng rng(19);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.skewedBelow(100, 10, 0.5), 100u);
}

TEST(Rng, SkewedBelowConcentratesOnHotSet)
{
    Rng rng(23);
    int hot = 0;
    const int trials = 20000;
    for (int i = 0; i < trials; ++i) {
        if (rng.skewedBelow(1000000, 10, 0.8) < 10)
            ++hot;
    }
    // ~80% should land in the hot set (plus a negligible uniform tail).
    EXPECT_GT(hot, trials * 7 / 10);
}

TEST(Rng, SkewedBelowDegeneratesToUniform)
{
    Rng rng(29);
    // hot_count == count disables the hot path entirely.
    int low = 0;
    for (int i = 0; i < 10000; ++i) {
        if (rng.skewedBelow(100, 100, 0.9) < 10)
            ++low;
    }
    EXPECT_NEAR(low / 10000.0, 0.1, 0.03);
}

} // namespace
} // namespace tempo
