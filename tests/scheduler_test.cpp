#include <gtest/gtest.h>

#include "mc/scheduler.hh"

namespace tempo {
namespace {

struct SchedulerFixture : public ::testing::Test {
    DramConfig dram_cfg;
    std::unique_ptr<DramDevice> dram;
    std::unique_ptr<TxQueue> txq;
    SchedulerConfig cfg;
    std::uint64_t seq = 0;

    void
    SetUp() override
    {
        dram_cfg.rowPolicy = RowPolicyKind::Open;
        // One channel: every test address lands in channel 0, so the
        // fixture's flat enqueue order is the channel's age order.
        dram_cfg.channels = 1;
        dram = std::make_unique<DramDevice>(dram_cfg);
        txq = std::make_unique<TxQueue>(*dram);
    }

    void
    TearDown() override
    {
        txq.reset(); // detach the row listener before the device dies
    }

    std::uint32_t
    add(Addr paddr, ReqKind kind = ReqKind::Regular, Cycle arrival = 0,
        AppId app = 0)
    {
        QueuedRequest entry;
        entry.req.paddr = paddr;
        entry.req.kind = kind;
        entry.req.app = app;
        entry.arrival = arrival;
        entry.seq = seq++;
        return txq->enqueue(std::move(entry));
    }

    /** Open the row containing @p paddr. */
    void
    openRow(Addr paddr)
    {
        dram->access(paddr, false, false, 0, 0, 0);
    }
};

TEST_F(SchedulerFixture, PrefersRowHit)
{
    FrFcfsScheduler sched(cfg);
    openRow(0x10000);
    add(0x900000);                          // older, row closed
    const std::uint32_t hit = add(0x10040); // row hit
    EXPECT_EQ(sched.pick(*txq, 0, *dram, 1000), hit);
}

TEST_F(SchedulerFixture, OldestWinsWithoutRowHits)
{
    FrFcfsScheduler sched(cfg);
    const std::uint32_t oldest = add(0x900000);
    add(0xa00000);
    EXPECT_EQ(sched.pick(*txq, 0, *dram, 1000), oldest);
}

TEST_F(SchedulerFixture, StarvationGuardOverridesRowHit)
{
    cfg.starvationLimit = 100;
    FrFcfsScheduler sched(cfg);
    openRow(0x10000);
    const std::uint32_t starved =
        add(0x900000, ReqKind::Regular, /*arrival=*/0);
    add(0x10040, ReqKind::Regular, /*arrival=*/990);
    // At t=1000 the first request has waited 1000 > 100 cycles.
    EXPECT_EQ(sched.pick(*txq, 0, *dram, 1000), starved);
}

TEST_F(SchedulerFixture, TempoGroupingPrioritizesPtAccesses)
{
    cfg.tempoGrouping = true;
    FrFcfsScheduler sched(cfg);
    openRow(0x10000);
    add(0x10040, ReqKind::Regular); // row hit, older
    const std::uint32_t pt = add(0x900000, ReqKind::PtWalk); // no hit
    EXPECT_EQ(sched.pick(*txq, 0, *dram, 100), pt);
}

TEST_F(SchedulerFixture, TempoGroupingGroupsPtByRow)
{
    cfg.tempoGrouping = true;
    FrFcfsScheduler sched(cfg);
    openRow(0x10000);
    add(0x900000, ReqKind::PtWalk); // PT, row closed
    const std::uint32_t pt_hit = add(0x10040, ReqKind::PtWalk);
    // Row-hitting PT access wins even though it is younger: this is the
    // paper's Fig. 8 same-row PT grouping. (t=500: the bank that served
    // openRow() is ready again, so no busy-bank demotion applies.)
    EXPECT_EQ(sched.pick(*txq, 0, *dram, 500), pt_hit);
}

TEST_F(SchedulerFixture, TempoGroupingPutsPrefetchAboveRegularRowHit)
{
    cfg.tempoGrouping = true;
    FrFcfsScheduler sched(cfg);
    openRow(0x10000);
    add(0x10040, ReqKind::Regular); // row hit
    const std::uint32_t pf = add(0x900000, ReqKind::TempoPrefetch);
    EXPECT_EQ(sched.pick(*txq, 0, *dram, 100), pf);
}

TEST_F(SchedulerFixture, WithoutGroupingPtIsNotSpecial)
{
    cfg.tempoGrouping = false;
    FrFcfsScheduler sched(cfg);
    openRow(0x10000);
    const std::uint32_t hit = add(0x10040, ReqKind::Regular);
    add(0x900000, ReqKind::PtWalk);
    EXPECT_EQ(sched.pick(*txq, 0, *dram, 100), hit);
}

TEST_F(SchedulerFixture, BusyBankLosesToReadyBank)
{
    FrFcfsScheduler sched(cfg);
    // Make bank 0 busy until far future (and leave row 0 open there).
    dram->access(0, false, false, 0, 0, 0);
    // Same bank as the in-flight access (row conflict and bank busy).
    add(1ull << 22, ReqKind::Regular);
    // Bank 1 of the same channel: idle, row closed.
    const std::uint32_t ready = add((1ull << 22) | (1ull << 13));
    EXPECT_EQ(sched.pick(*txq, 0, *dram, 10), ready);
}

TEST_F(SchedulerFixture, SingleEntryQueueAlwaysPicksIt)
{
    FrFcfsScheduler sched(cfg);
    const std::uint32_t only = add(0x1234000);
    EXPECT_EQ(sched.pick(*txq, 0, *dram, 0), only);
}

// --- Priority-class ordering matrix (TEMPO grouping, Sec. 4.3b) ---

TEST_F(SchedulerFixture, StarvationBeatsEveryTempoGroup)
{
    cfg.tempoGrouping = true;
    cfg.starvationLimit = 100;
    FrFcfsScheduler sched(cfg);
    openRow(0x10000);
    // The starved ordinary request must beat even a fresh row-hitting
    // PT access (class 15 vs class 7).
    const std::uint32_t starved =
        add(0x900000, ReqKind::Regular, /*arrival=*/0);
    add(0x100c0, ReqKind::PtWalk, /*arrival=*/990);
    EXPECT_EQ(sched.pick(*txq, 0, *dram, 1000), starved);
}

TEST_F(SchedulerFixture, FullGroupingLadderDrainsInClassOrder)
{
    cfg.tempoGrouping = true;
    FrFcfsScheduler sched(cfg);
    openRow(0x10000);
    // One entry per priority class, enqueued in ascending class order so
    // age never agrees with class. Expected drain: descending class
    //   PT+hit(7) > PT(6) > prefetch+hit(5) > prefetch(4)
    //   > row hit(3) > rest(2).
    std::vector<std::uint32_t> expect;
    expect.push_back(add(0x900000, ReqKind::Regular));       // class 2
    expect.push_back(add(0x10040, ReqKind::Regular));        // class 3
    expect.push_back(add(0xa00000, ReqKind::TempoPrefetch)); // class 4
    expect.push_back(add(0x10080, ReqKind::TempoPrefetch));  // class 5
    expect.push_back(add(0xb00000, ReqKind::PtWalk));        // class 6
    expect.push_back(add(0x100c0, ReqKind::PtWalk));         // class 7
    for (auto it = expect.rbegin(); it != expect.rend(); ++it) {
        const std::uint32_t picked = sched.pick(*txq, 0, *dram, 1000);
        EXPECT_EQ(picked, *it);
        txq->remove(picked);
        txq->release(picked);
    }
    EXPECT_TRUE(txq->empty(0));
}

TEST_F(SchedulerFixture, TiesWithinClassBreakBySubmissionOrder)
{
    cfg.tempoGrouping = true;
    FrFcfsScheduler sched(cfg);
    openRow(0x10000);
    // Three same-class (PT, row-hit) entries: strict seq order.
    const std::uint32_t first = add(0x10040, ReqKind::PtWalk);
    const std::uint32_t second = add(0x10080, ReqKind::PtWalk);
    const std::uint32_t third = add(0x100c0, ReqKind::PtWalk);
    EXPECT_EQ(sched.pick(*txq, 0, *dram, 1000), first);
    txq->remove(first);
    txq->release(first);
    EXPECT_EQ(sched.pick(*txq, 0, *dram, 1000), second);
    txq->remove(second);
    txq->release(second);
    EXPECT_EQ(sched.pick(*txq, 0, *dram, 1000), third);
}

TEST_F(SchedulerFixture, LargeSeqAgeDoesNotWrap)
{
    // Regression: the old packed score kept only the low 32 age bits
    // (~seq & 0xffffffff), so once seq passed 2^32 a brand-new request
    // looked "older" than one submitted eons earlier. The widened
    // SchedKey compares the full 64-bit seq.
    FrFcfsScheduler sched(cfg);
    seq = 5;
    const std::uint32_t old_req = add(0x900000);
    seq = (1ull << 32) + 1;
    add(0xa00000); // same class; wrapped encoding ranked this first
    EXPECT_EQ(sched.pick(*txq, 0, *dram, 100), old_req);
}

} // namespace
} // namespace tempo
