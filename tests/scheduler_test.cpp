#include <gtest/gtest.h>

#include "mc/scheduler.hh"

namespace tempo {
namespace {

struct SchedulerFixture : public ::testing::Test {
    DramConfig dram_cfg;
    std::unique_ptr<DramDevice> dram;
    SchedulerConfig cfg;
    std::uint64_t seq = 0;

    void
    SetUp() override
    {
        dram_cfg.rowPolicy = RowPolicyKind::Open;
        dram = std::make_unique<DramDevice>(dram_cfg);
    }

    QueuedRequest
    make(Addr paddr, ReqKind kind = ReqKind::Regular, Cycle arrival = 0,
         AppId app = 0)
    {
        QueuedRequest entry;
        entry.req.paddr = paddr;
        entry.req.kind = kind;
        entry.req.app = app;
        entry.arrival = arrival;
        entry.seq = seq++;
        return entry;
    }

    /** Open the row containing @p paddr. */
    void
    openRow(Addr paddr)
    {
        dram->access(paddr, false, false, 0, 0, 0);
    }
};

TEST_F(SchedulerFixture, PrefersRowHit)
{
    FrFcfsScheduler sched(cfg);
    openRow(0x10000);
    std::vector<QueuedRequest> queue;
    queue.push_back(make(0x900000));        // older, row closed
    queue.push_back(make(0x10040));         // row hit
    EXPECT_EQ(sched.pick(queue, *dram, 1000), 1u);
}

TEST_F(SchedulerFixture, OldestWinsWithoutRowHits)
{
    FrFcfsScheduler sched(cfg);
    std::vector<QueuedRequest> queue;
    queue.push_back(make(0x900000));
    queue.push_back(make(0xa00000));
    EXPECT_EQ(sched.pick(queue, *dram, 1000), 0u);
}

TEST_F(SchedulerFixture, StarvationGuardOverridesRowHit)
{
    cfg.starvationLimit = 100;
    FrFcfsScheduler sched(cfg);
    openRow(0x10000);
    std::vector<QueuedRequest> queue;
    queue.push_back(make(0x900000, ReqKind::Regular, /*arrival=*/0));
    queue.push_back(make(0x10040, ReqKind::Regular, /*arrival=*/990));
    // At t=1000 the first request has waited 1000 > 100 cycles.
    EXPECT_EQ(sched.pick(queue, *dram, 1000), 0u);
}

TEST_F(SchedulerFixture, TempoGroupingPrioritizesPtAccesses)
{
    cfg.tempoGrouping = true;
    FrFcfsScheduler sched(cfg);
    openRow(0x10000);
    std::vector<QueuedRequest> queue;
    queue.push_back(make(0x10040, ReqKind::Regular)); // row hit, older
    queue.push_back(make(0x900000, ReqKind::PtWalk)); // PT, no row hit
    EXPECT_EQ(sched.pick(queue, *dram, 100), 1u);
}

TEST_F(SchedulerFixture, TempoGroupingGroupsPtByRow)
{
    cfg.tempoGrouping = true;
    FrFcfsScheduler sched(cfg);
    openRow(0x10000);
    std::vector<QueuedRequest> queue;
    queue.push_back(make(0x900000, ReqKind::PtWalk)); // PT, row closed
    queue.push_back(make(0x10040, ReqKind::PtWalk));  // PT, row hit
    // Row-hitting PT access wins even though it is younger: this is the
    // paper's Fig. 8 same-row PT grouping. (t=500: the bank that served
    // openRow() is ready again, so no busy-bank demotion applies.)
    EXPECT_EQ(sched.pick(queue, *dram, 500), 1u);
}

TEST_F(SchedulerFixture, TempoGroupingPutsPrefetchAboveRegularRowHit)
{
    cfg.tempoGrouping = true;
    FrFcfsScheduler sched(cfg);
    openRow(0x10000);
    std::vector<QueuedRequest> queue;
    queue.push_back(make(0x10040, ReqKind::Regular));        // row hit
    queue.push_back(make(0x900000, ReqKind::TempoPrefetch)); // no hit
    EXPECT_EQ(sched.pick(queue, *dram, 100), 1u);
}

TEST_F(SchedulerFixture, WithoutGroupingPtIsNotSpecial)
{
    cfg.tempoGrouping = false;
    FrFcfsScheduler sched(cfg);
    openRow(0x10000);
    std::vector<QueuedRequest> queue;
    queue.push_back(make(0x10040, ReqKind::Regular)); // row hit
    queue.push_back(make(0x900000, ReqKind::PtWalk));
    EXPECT_EQ(sched.pick(queue, *dram, 100), 0u);
}

TEST_F(SchedulerFixture, BusyBankLosesToReadyBank)
{
    FrFcfsScheduler sched(cfg);
    // Make bank of 0x0 busy until far future.
    dram->access(0, false, false, 0, 0, 0);
    std::vector<QueuedRequest> queue;
    // Same bank as the in-flight access (row conflict and bank busy).
    queue.push_back(make(1ull << 22, ReqKind::Regular));
    // Different channel: its bank is idle. (Row closed for both.)
    queue.push_back(make(dram_cfg.rowBufferBytes + (1ull << 22)));
    EXPECT_EQ(sched.pick(queue, *dram, 10), 1u);
}

TEST_F(SchedulerFixture, SingleEntryQueueAlwaysPicksIt)
{
    FrFcfsScheduler sched(cfg);
    std::vector<QueuedRequest> queue;
    queue.push_back(make(0x1234000));
    EXPECT_EQ(sched.pick(queue, *dram, 0), 0u);
}

} // namespace
} // namespace tempo
